// skewless_sim — command-line driver for the simulation engine.
//
// Runs any workload/strategy combination and prints per-interval CSV, so
// new scenarios can be explored without writing code:
//
//   skewless_sim --workload zipf --planner mixed --keys 50000 --instances 10 --theta 0.08 --intervals 30
//
// Strategies: mixed | mintable | minmig | mixedbf | compact | readj |
//             dkg | hash | shuffle | pkg
// Workloads:  zipf (Table II generator) | social | stock |
//             adversarial (--attack rotating|skew-flip|pareto|churn|collision)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/dkg.h"
#include "baselines/readj.h"
#include "common/cpu_topology.h"
#include "core/compact.h"
#include "core/controller.h"
#include "core/planners.h"
#include "engine/sim_engine.h"
#include "engine/threaded_engine.h"
#include "net/net_engine.h"
#include "sketch/simd/sketch_kernels.h"
#include "workload/adversarial.h"
#include "workload/operators.h"
#include "workload/social.h"
#include "workload/stock.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

struct Args {
  std::string workload = "zipf";
  std::string planner = "mixed";
  std::uint64_t keys = 50'000;
  InstanceId instances = 10;
  double theta = 0.08;
  int intervals = 20;
  double skew = 0.85;
  double fluctuation = 1.0;
  int fluctuate_every = 1;
  std::size_t amax = 0;
  int window = 1;
  std::uint64_t tuples = 1'000'000;
  Cost tuple_cost_us = 4.0;
  std::uint64_t seed = 7;
  StatsMode stats_mode = StatsMode::kExact;
  SketchStatsConfig sketch = {};
  /// Sketch mode: key-domain shards for the sharded controller (0 =
  /// legacy single window; 1 = sharded identity case, byte-identical).
  std::size_t shards = 0;
  /// Adversarial workload: which attack pattern to run.
  std::string attack = "rotating";
  int rotation_period = 3;
  /// "sim" = deterministic simulation engine; "threaded" = real worker
  /// threads (one per instance) over bounded queues; "net" = forked
  /// worker processes over loopback sockets (framed wire protocol).
  std::string engine = "sim";
  std::size_t batch = 256;
  /// Net engine: worker process count override (0 = --instances).
  InstanceId workers_proc = 0;
  /// Net engine: deterministic fault schedule, e.g.
  /// "kill:w=1,epoch=3;wedge:w=0,epoch=5,sticky" (empty = none).
  std::string fault;
  /// Net engine: checkpoint/replay crash recovery (--no-recovery turns
  /// the engine fail-stop, the pre-fault-tolerance behaviour).
  bool net_recovery = true;
  /// Net engine: control receive deadline / channel I/O timeout.
  int net_timeout_ms = 30'000;
  /// Threaded engine only: pin worker w to core w mod hw_concurrency
  /// (pthread_setaffinity_np where available) so each worker's slab
  /// pair stays resident in its owner's private L2.
  bool pin = false;
  /// Threaded sketch mode: double-buffered slabs + asynchronous
  /// boundary merge (default) vs the inline quiesce-and-merge baseline.
  bool async_merge = true;
  /// Force the scalar sketch kernels (skip the SIMD dispatch). The run
  /// is bit-identical either way — this flag exists for A/B timing and
  /// for proving exactly that.
  bool no_simd = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload zipf|social|stock|adversarial] [--planner NAME]\n"
      "          [--keys N] [--instances N] [--theta X] [--intervals N]\n"
      "          [--skew Z] [--fluctuation F] [--fluctuate-every N]\n"
      "          [--amax N] [--window W] [--tuples N] [--cost US]\n"
      "          [--seed N] [--stats exact|sketch] [--sketch-eps X]\n"
      "          [--sketch-delta X] [--heavy N] [--shards S]\n"
      "          [--no-decay] [--decay-beta B] [--demote-fraction X]\n"
      "          [--attack rotating|skew-flip|pareto|churn|collision]\n"
      "          [--rotation-period N]\n"
      "          [--engine sim|threaded|net] [--batch N] [--pin]\n"
      "          [--inline-merge] [--workers-proc N] [--no-simd]\n"
      "          [--fault SPEC] [--no-recovery] [--net-timeout-ms N]\n"
      "fault spec: kind:w=W,epoch=E[,sticky][;...] with kind one of\n"
      "          kill|wedge|garble|drop (net engine only)\n"
      "planners: mixed mintable minmig mixedbf compact readj dkg\n"
      "          hash shuffle pkg (shuffle/pkg: sim engine only)\n",
      argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--workload") {
      args.workload = need_value();
    } else if (flag == "--planner") {
      args.planner = need_value();
    } else if (flag == "--keys") {
      args.keys = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--instances") {
      args.instances = std::atoi(need_value());
    } else if (flag == "--theta") {
      args.theta = std::atof(need_value());
    } else if (flag == "--intervals") {
      args.intervals = std::atoi(need_value());
    } else if (flag == "--skew") {
      args.skew = std::atof(need_value());
    } else if (flag == "--fluctuation") {
      args.fluctuation = std::atof(need_value());
    } else if (flag == "--fluctuate-every") {
      args.fluctuate_every = std::atoi(need_value());
    } else if (flag == "--amax") {
      args.amax = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--window") {
      args.window = std::atoi(need_value());
    } else if (flag == "--tuples") {
      args.tuples = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--cost") {
      args.tuple_cost_us = std::atof(need_value());
    } else if (flag == "--seed") {
      args.seed = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--stats") {
      const std::string mode = need_value();
      if (mode == "exact") {
        args.stats_mode = StatsMode::kExact;
      } else if (mode == "sketch") {
        args.stats_mode = StatsMode::kSketch;
      } else {
        std::fprintf(stderr, "unknown stats mode: %s\n", mode.c_str());
        usage(argv[0]);
      }
    } else if (flag == "--shards") {
      args.shards = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--sketch-eps") {
      args.sketch.epsilon = std::atof(need_value());
    } else if (flag == "--sketch-delta") {
      args.sketch.delta = std::atof(need_value());
    } else if (flag == "--heavy") {
      args.sketch.heavy_capacity = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--no-decay") {
      args.sketch.decay = false;
    } else if (flag == "--decay-beta") {
      args.sketch.decay_beta = std::atof(need_value());
    } else if (flag == "--demote-fraction") {
      args.sketch.demote_fraction = std::atof(need_value());
    } else if (flag == "--attack") {
      args.attack = need_value();
      if (!parse_attack(args.attack)) {
        std::fprintf(stderr, "unknown attack: %s\n", args.attack.c_str());
        usage(argv[0]);
      }
    } else if (flag == "--rotation-period") {
      args.rotation_period = std::atoi(need_value());
    } else if (flag == "--engine") {
      args.engine = need_value();
      if (args.engine != "sim" && args.engine != "threaded" &&
          args.engine != "net") {
        std::fprintf(stderr, "unknown engine: %s\n", args.engine.c_str());
        usage(argv[0]);
      }
    } else if (flag == "--workers-proc") {
      args.workers_proc = std::atoi(need_value());
      if (args.workers_proc < 1) usage(argv[0]);
    } else if (flag == "--fault") {
      args.fault = need_value();
    } else if (flag == "--no-recovery") {
      args.net_recovery = false;
    } else if (flag == "--net-timeout-ms") {
      args.net_timeout_ms = std::atoi(need_value());
      if (args.net_timeout_ms < 1) usage(argv[0]);
    } else if (flag == "--batch") {
      args.batch = std::strtoull(need_value(), nullptr, 10);
    } else if (flag == "--pin") {
      args.pin = true;
    } else if (flag == "--inline-merge") {
      args.async_merge = false;
    } else if (flag == "--no-simd") {
      args.no_simd = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(argv[0]);
    }
  }
  if (args.instances < 1 || args.intervals < 1 || args.keys < 1 ||
      args.window < 1 || args.batch < 1) {
    usage(argv[0]);
  }
  if (args.sketch.heavy_capacity < 1 || args.sketch.epsilon <= 0.0 ||
      args.sketch.epsilon >= 1.0 || args.sketch.delta <= 0.0 ||
      args.sketch.delta >= 1.0) {
    std::fprintf(stderr,
                 "invalid sketch tuning: need --heavy >= 1 and "
                 "--sketch-eps/--sketch-delta in (0, 1)\n");
    usage(argv[0]);
  }
  if (args.rotation_period < 1 ||
      (args.sketch.decay &&
       (args.sketch.decay_beta <= 0.0 || args.sketch.decay_beta >= 1.0)) ||
      args.sketch.demote_fraction < 0.0 || args.sketch.demote_fraction >= 1.0) {
    std::fprintf(stderr,
                 "invalid decay/attack tuning: need --rotation-period >= 1, "
                 "--decay-beta in (0, 1), --demote-fraction in [0, 1)\n");
    usage(argv[0]);
  }
  return args;
}

std::unique_ptr<WorkloadSource> make_source(const Args& args) {
  if (args.workload == "zipf") {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = args.keys;
    opts.skew = args.skew;
    opts.tuples_per_interval = args.tuples;
    opts.fluctuation = args.fluctuation;
    opts.fluctuate_every = args.fluctuate_every;
    opts.reference_instances = args.instances;
    opts.seed = args.seed;
    return std::make_unique<ZipfFluctuatingSource>(opts);
  }
  if (args.workload == "social") {
    SocialSource::Options opts;
    opts.num_words = args.keys;
    opts.skew = args.skew;
    opts.tuples_per_interval = args.tuples;
    opts.seed = args.seed;
    return std::make_unique<SocialSource>(opts);
  }
  if (args.workload == "stock") {
    StockSource::Options opts;
    opts.num_symbols = args.keys;
    opts.base_skew = args.skew;
    opts.tuples_per_interval = args.tuples;
    opts.seed = args.seed;
    return std::make_unique<StockSource>(opts);
  }
  if (args.workload == "adversarial") {
    AdversarialSource::Options opts;
    opts.attack = *parse_attack(args.attack);
    opts.num_keys = args.keys;
    opts.tuples_per_interval = args.tuples;
    opts.seed = args.seed;
    opts.rotation_period = args.rotation_period;
    // The collision attack engineers keys against the run's own sketch
    // family; with the fine default ε the bounded scan finds few full
    // collisions (see adversarial.cpp) — pass a coarse --sketch-eps to
    // make it bite.
    opts.sketch = args.sketch;
    return std::make_unique<AdversarialSource>(opts);
  }
  std::fprintf(stderr, "unknown workload: %s\n", args.workload.c_str());
  std::exit(2);
}

PlannerPtr make_planner(const std::string& name) {
  if (name == "mixed") return std::make_unique<MixedPlanner>();
  if (name == "mintable") return std::make_unique<MinTablePlanner>();
  if (name == "minmig") return std::make_unique<MinMigPlanner>();
  if (name == "mixedbf") return std::make_unique<MixedBfPlanner>(128);
  if (name == "compact") return std::make_unique<CompactMixedPlanner>(3);
  if (name == "readj") return std::make_unique<ReadjPlanner>();
  if (name == "dkg") return std::make_unique<DkgPlanner>();
  return nullptr;
}

/// Real-thread run: one worker per instance, WordCount operator state,
/// per-interval CSV from the ThreadedIntervalReport fields.
int run_threaded(const Args& args, char* argv0) {
  auto source = make_source(args);
  const std::size_t num_keys = source->num_keys();

  ThreadedConfig tcfg;
  tcfg.num_workers = args.instances;
  tcfg.batch_size = args.batch;
  tcfg.stats_mode = args.stats_mode;
  tcfg.sketch = args.sketch;
  tcfg.pin_workers = args.pin;
  tcfg.async_merge = args.async_merge;

  // WordCount state with the requested per-tuple cost, so --cost means
  // the same thing it does on the sim engine.
  auto logic = std::make_shared<WordCountLogic>(args.tuple_cost_us);
  std::unique_ptr<ThreadedEngine> engine;
  if (args.planner == "hash") {
    engine =
        std::make_unique<ThreadedEngine>(tcfg, logic, args.instances, args.seed);
  } else if (args.planner == "shuffle" || args.planner == "pkg") {
    std::fprintf(stderr, "planner %s needs the sim engine (keyless routing)\n",
                 args.planner.c_str());
    usage(argv0);
  } else {
    auto planner = make_planner(args.planner);
    if (planner == nullptr) {
      std::fprintf(stderr, "unknown planner: %s\n", args.planner.c_str());
      usage(argv0);
    }
    ControllerConfig ccfg;
    ccfg.planner.theta_max = args.theta;
    ccfg.planner.max_table_entries = args.amax;
    ccfg.window = args.window;
    ccfg.stats_mode = args.stats_mode;
    ccfg.sketch = args.sketch;
    ccfg.shards = args.shards;
    auto controller = std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(args.instances), args.amax),
        std::move(planner), ccfg, num_keys);
    engine =
        std::make_unique<ThreadedEngine>(tcfg, logic, std::move(controller));
  }

  const auto reports = engine->run(*source, args.intervals, args.seed);
  // `pinned` is the number of workers whose core pin took effect (0 with
  // --pin absent or on platforms without affinity support) and `kernel`
  // the dispatched SIMD tier — constant per run, carried per-row so
  // downstream CSV tooling keeps one schema.
  std::printf(
      "interval,throughput_tps,latency_ms,max_theta,migrated,moves,"
      "migration_bytes,gen_ms,stall_ms,merge_ms,stats_memory_bytes,pinned,"
      "kernel\n");
  for (const auto& r : reports) {
    std::printf("%lld,%.0f,%.3f,%.4f,%d,%zu,%.0f,%.2f,%.3f,%.3f,%zu,%d,%s\n",
                static_cast<long long>(r.interval), r.throughput_tps,
                r.avg_latency_ms, r.max_theta, r.migrated ? 1 : 0, r.moves,
                r.migration_bytes,
                static_cast<double>(r.generation_micros) / 1000.0,
                r.stall_ms, r.merge_ms, r.stats_memory_bytes,
                static_cast<int>(engine->pinned_workers()),
                simd::active_kernels().name);
  }
  const auto* ctrl = engine->controller();
  double stall_total = 0.0;
  double merge_total = 0.0;
  for (const auto& r : reports) {
    stall_total += r.stall_ms;
    merge_total += r.merge_ms;
  }
  engine->shutdown();
  const CpuTopology& topo = cpu_topology();
  std::fprintf(stderr,
               "# engine=threaded stats=%s merge=%s stats_memory_bytes=%zu "
               "pinned=%d kernel=%s cores=%u smt_threads=%u numa=%s "
               "total_stall_ms=%.3f total_merge_ms=%.3f\n",
               args.stats_mode == StatsMode::kSketch ? "sketch" : "exact",
               args.async_merge ? "async" : "inline",
               reports.empty() ? 0 : reports.back().stats_memory_bytes,
               static_cast<int>(engine->pinned_workers()),
               simd::active_kernels().name, topo.physical_cores,
               topo.smt ? topo.hardware_threads - topo.physical_cores : 0,
               numa_support_compiled() ? "on" : "off", stall_total,
               merge_total);
  if (ctrl != nullptr) {
    std::fprintf(stderr,
                 "# rebalances=%zu total_generation_micros=%lld "
                 "total_migrated_bytes=%.0f controller_merge_ms=%.3f "
                 "controller_stall_ms=%.3f promotions=%llu demotions=%llu\n",
                 ctrl->rebalance_count(),
                 static_cast<long long>(ctrl->total_generation_micros()),
                 ctrl->total_migrated_bytes(), ctrl->total_merge_ms(),
                 ctrl->total_stall_ms(),
                 static_cast<unsigned long long>(ctrl->heavy_promotions()),
                 static_cast<unsigned long long>(ctrl->heavy_demotions()));
  }
  return 0;
}

/// Multi-process run: N forked workers over loopback sockets. Same CSV
/// schema as the threaded engine (pinned is always 0 — processes are not
/// pinned) plus the per-interval wire-byte columns only sockets have.
int run_net(const Args& args, char* argv0) {
  if (args.stats_mode != StatsMode::kSketch) {
    std::fprintf(stderr,
                 "--engine net needs --stats sketch (the boundary summary "
                 "is the serialized sketch slab)\n");
    usage(argv0);
  }
  if (args.planner == "hash" || args.planner == "shuffle" ||
      args.planner == "pkg") {
    std::fprintf(stderr,
                 "--engine net needs a controller planner (%s is keyless "
                 "or controller-free)\n",
                 args.planner.c_str());
    usage(argv0);
  }
  auto planner = make_planner(args.planner);
  if (planner == nullptr) {
    std::fprintf(stderr, "unknown planner: %s\n", args.planner.c_str());
    usage(argv0);
  }
  auto source = make_source(args);
  const std::size_t num_keys = source->num_keys();
  const InstanceId workers =
      args.workers_proc > 0 ? args.workers_proc : args.instances;

  ControllerConfig ccfg;
  ccfg.planner.theta_max = args.theta;
  ccfg.planner.max_table_entries = args.amax;
  ccfg.window = args.window;
  ccfg.stats_mode = StatsMode::kSketch;
  ccfg.sketch = args.sketch;
  ccfg.shards = args.shards;
  auto controller = std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(workers), args.amax),
      std::move(planner), ccfg, num_keys);

  NetConfig ncfg;
  ncfg.batch_size = args.batch;
  ncfg.recovery_enabled = args.net_recovery;
  ncfg.ctrl_timeout_ms = args.net_timeout_ms;
  if (!args.fault.empty()) {
    std::string err;
    if (!parse_fault_plan(args.fault, ncfg.fault, err)) {
      std::fprintf(stderr, "bad --fault spec: %s\n", err.c_str());
      usage(argv0);
    }
  }
  auto logic = std::make_shared<WordCountLogic>(args.tuple_cost_us);
  NetEngine engine(ncfg, logic, std::move(controller));

  const auto reports = engine.run(*source, args.intervals, args.seed);
  std::printf(
      "interval,throughput_tps,latency_ms,max_theta,migrated,moves,"
      "migration_bytes,gen_ms,stall_ms,merge_ms,stats_memory_bytes,pinned,"
      "kernel,data_wire_bytes,ctrl_wire_bytes\n");
  for (const auto& r : reports) {
    std::printf(
        "%lld,%.0f,%.3f,%.4f,%d,%zu,%.0f,%.2f,%.3f,%.3f,%zu,0,%s,%llu,%llu\n",
        static_cast<long long>(r.interval), r.throughput_tps,
        r.avg_latency_ms, r.max_theta, r.migrated ? 1 : 0, r.moves,
        r.migration_bytes, static_cast<double>(r.generation_micros) / 1000.0,
        r.stall_ms, r.merge_ms, r.stats_memory_bytes,
        simd::active_kernels().name,
        static_cast<unsigned long long>(r.data_wire_bytes),
        static_cast<unsigned long long>(r.ctrl_wire_bytes));
  }
  const auto* ctrl = engine.controller();
  double stall_total = 0.0;
  double merge_total = 0.0;
  std::uint64_t wire_total = 0;
  for (const auto& r : reports) {
    stall_total += r.stall_ms;
    merge_total += r.merge_ms;
    wire_total += r.data_wire_bytes + r.ctrl_wire_bytes;
  }
  engine.shutdown();
  if (!engine.ok()) {
    std::fprintf(stderr, "net engine failed: %s\n", engine.error().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "# engine=net workers=%d stats=sketch stats_memory_bytes=%zu "
               "kernel=%s total_stall_ms=%.3f total_merge_ms=%.3f "
               "wire_bytes=%llu state_checksum=%016llx state_entries=%zu "
               "recoveries=%llu degraded=%d recovery_ms=%.3f "
               "live_workers=%zu\n",
               static_cast<int>(workers),
               reports.empty() ? 0 : reports.back().stats_memory_bytes,
               simd::active_kernels().name, stall_total, merge_total,
               static_cast<unsigned long long>(wire_total),
               static_cast<unsigned long long>(engine.state_checksum()),
               engine.total_state_entries(),
               static_cast<unsigned long long>(engine.recoveries()),
               engine.degraded() ? 1 : 0, engine.total_recovery_ms(),
               engine.live_workers());
  if (ctrl != nullptr) {
    std::fprintf(stderr,
                 "# rebalances=%zu total_generation_micros=%lld "
                 "total_migrated_bytes=%.0f plan_digest=%016llx "
                 "promotions=%llu demotions=%llu\n",
                 ctrl->rebalance_count(),
                 static_cast<long long>(ctrl->total_generation_micros()),
                 ctrl->total_migrated_bytes(),
                 static_cast<unsigned long long>(ctrl->plan_history_digest()),
                 static_cast<unsigned long long>(ctrl->heavy_promotions()),
                 static_cast<unsigned long long>(ctrl->heavy_demotions()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.no_simd) simd::force_scalar();
  if (args.engine == "threaded") return run_threaded(args, argv[0]);
  if (args.engine == "net") return run_net(args, argv[0]);
  auto source = make_source(args);
  const std::size_t num_keys = source->num_keys();

  SimConfig scfg;
  scfg.num_instances = args.instances;
  scfg.state_window = args.window;
  scfg.stats_mode = args.stats_mode;
  scfg.sketch = args.sketch;

  std::unique_ptr<SimEngine> engine;
  if (args.planner == "hash") {
    engine = std::make_unique<SimEngine>(
        scfg, std::make_unique<UniformCostOperator>(args.tuple_cost_us, 8.0),
        std::move(source), RoutingMode::kHashOnly);
  } else if (args.planner == "shuffle") {
    engine = std::make_unique<SimEngine>(
        scfg, std::make_unique<UniformCostOperator>(args.tuple_cost_us, 8.0),
        std::move(source), RoutingMode::kShuffle);
  } else if (args.planner == "pkg") {
    engine = std::make_unique<SimEngine>(
        scfg, std::make_unique<UniformCostOperator>(args.tuple_cost_us, 8.0),
        std::move(source), RoutingMode::kPkg);
  } else {
    auto planner = make_planner(args.planner);
    if (planner == nullptr) {
      std::fprintf(stderr, "unknown planner: %s\n", args.planner.c_str());
      usage(argv[0]);
    }
    ControllerConfig ccfg;
    ccfg.planner.theta_max = args.theta;
    ccfg.planner.max_table_entries = args.amax;
    ccfg.window = args.window;
    ccfg.stats_mode = args.stats_mode;
    ccfg.sketch = args.sketch;
    ccfg.shards = args.shards;
    auto controller = std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(args.instances), args.amax),
        std::move(planner), ccfg, num_keys);
    engine = std::make_unique<SimEngine>(
        scfg, std::make_unique<UniformCostOperator>(args.tuple_cost_us, 8.0),
        std::move(source), std::move(controller));
  }

  std::printf(
      "interval,throughput_tps,latency_ms,max_theta,skewness,migrated,"
      "moves,migration_pct,table_size,gen_ms\n");
  for (int i = 0; i < args.intervals; ++i) {
    const auto m = engine->step();
    std::printf("%d,%.0f,%.3f,%.4f,%.4f,%d,%zu,%.2f,%zu,%.2f\n", i,
                m.throughput_tps, m.avg_latency_ms, m.max_theta,
                m.load_skewness, m.migrated ? 1 : 0, m.moves, m.migration_pct,
                m.table_size,
                static_cast<double>(m.generation_micros) / 1000.0);
  }
  // Stats-memory and planning-time summary on stderr so the CSV on
  // stdout stays parseable. Per-rebalance planning time is the gen_ms
  // CSV column; the cumulative figure is the paper's "generation time"
  // trajectory number.
  const auto* ctrl = engine->controller();
  std::fprintf(stderr, "# stats=%s stats_memory_bytes=%zu\n",
               args.stats_mode == StatsMode::kSketch ? "sketch" : "exact",
               ctrl != nullptr ? ctrl->stats_memory_bytes()
                               : engine->state_tracker().memory_bytes());
  if (ctrl != nullptr) {
    std::fprintf(stderr,
                 "# rebalances=%zu total_generation_micros=%lld "
                 "total_migrated_bytes=%.0f promotions=%llu demotions=%llu\n",
                 ctrl->rebalance_count(),
                 static_cast<long long>(ctrl->total_generation_micros()),
                 ctrl->total_migrated_bytes(),
                 static_cast<unsigned long long>(ctrl->heavy_promotions()),
                 static_cast<unsigned long long>(ctrl->heavy_demotions()));
  }
  return 0;
}
