#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against the committed
baselines and fail on a regression.

Usage: tools/check_bench_regression.py [--ref HEAD] [BENCH_file...]

Run AFTER bench/run_benches.sh has refreshed the BENCH_*.json files in
the working tree: for every file given (default: all BENCH_*.json at the
repository root) the committed copy is read with `git show REF:file` and
the two JSON trees are walked side by side. Two metric families are
checked, both higher-is-better:

  * throughput family -- any numeric leaf whose key contains "tps" or is
    one of the named ratio/speedup metrics. A fresh value more than 20%
    below the committed baseline is a regression.
  * memory-ratio family -- the sketch-vs-exact memory ratios. More than
    10% below baseline is a regression (memory ratios are not wall-clock
    noisy, so the band is tighter).

A file with no committed baseline (first run of a new bench) is skipped
with a note -- committing the fresh file IS the baseline-setting act.
Absolute wall-clock milliseconds are deliberately NOT compared: they
move with the runner hardware; the gated quantities are ratios and
within-run throughput numbers whose baselines came from the same class
of runner.

Every bench records the environment it ran under ("hardware_threads"
and the dispatched SIMD "kernel_tier"). When both sides carry one of
those fields and they DIFFER, the file is skipped with a note instead of
compared: a scalar-vs-avx2 or 2-thread-vs-32-thread comparison measures
the machines, not the code. Same-tier baselines remain fully enforced.

Exit status: 0 when no metric regressed, 1 otherwise. Stdlib only.
"""

import argparse
import glob
import json
import os
import subprocess
import sys

# (predicate over key name, tolerated fractional drop, family label)
THROUGHPUT_KEYS = {
    "throughput_ratio",
    "stall_reduction",
    "merge_speedup_4x",
    "merge_speedup_8x",
    "speedup",     # BENCH_plan: compact vs dense planning path
    "reduction",   # BENCH_churn: decayed vs no-decay heavy-set churn
    "interleaved_speedup",  # BENCH_simd: vectorized add_interleaved
    "probe_speedup",        # BENCH_simd: batched K-M probe generation
    "mttr_headroom",  # BENCH_fault: 5x boundary stall / mean time to repair
}

# Environment fields stamped into every bench JSON; a mismatch between
# baseline and fresh run means the numbers are not comparable.
ENV_KEYS = ("kernel_tier", "hardware_threads")
MEMORY_RATIO_KEYS = {"memory_ratio", "ratio"}
THROUGHPUT_TOLERANCE = 0.20
MEMORY_TOLERANCE = 0.10


def classify(path):
    """Returns (tolerance, family) for a JSON path, or None if the leaf
    is not a tracked metric."""
    key = path[-1]
    if "tps" in key or key in THROUGHPUT_KEYS:
        return THROUGHPUT_TOLERANCE, "throughput"
    if key in MEMORY_RATIO_KEYS and any("memory" in p for p in path):
        return MEMORY_TOLERANCE, "memory-ratio"
    return None


def walk(node, path=()):
    """Yields (path_tuple, numeric_value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from walk(value, path + (key,))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def committed_copy(ref, path):
    """The file's contents at `ref`, or None if it does not exist there."""
    try:
        out = subprocess.run(
            ["git", "show", "%s:%s" % (ref, path)],
            capture_output=True,
            check=True,
        )
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    return out.stdout.decode()


def check_file(path, ref):
    """Returns a list of regression strings for one bench file."""
    with open(path) as f:
        fresh = json.load(f)
    baseline_text = committed_copy(ref, path)
    if baseline_text is None:
        print("-- %s: no committed baseline at %s, skipping" % (path, ref))
        return []
    baseline = json.loads(baseline_text)

    for env_key in ENV_KEYS:
        base_env = baseline.get(env_key)
        fresh_env = fresh.get(env_key)
        if base_env is not None and fresh_env is not None \
                and base_env != fresh_env:
            print(
                "-- %s: %s differs (baseline %r, fresh %r) -- different "
                "machine class, skipping" % (path, env_key, base_env,
                                             fresh_env)
            )
            return []

    fresh_leaves = dict(walk(fresh))
    regressions = []
    compared = 0
    for leaf_path, base_value in walk(baseline):
        rule = classify(leaf_path)
        if rule is None or base_value <= 0.0:
            continue
        fresh_value = fresh_leaves.get(leaf_path)
        if fresh_value is None:
            continue  # metric removed/renamed: a review concern, not a gate
        compared += 1
        tolerance, family = rule
        floor = base_value * (1.0 - tolerance)
        if fresh_value < floor:
            regressions.append(
                "%s: %s (%s) regressed %.3f -> %.3f (floor %.3f, -%d%%)"
                % (
                    path,
                    ".".join(leaf_path),
                    family,
                    base_value,
                    fresh_value,
                    floor,
                    round(100 * (1 - fresh_value / base_value)),
                )
            )
    print(
        "-- %s: %d metrics compared, %d regressed"
        % (path, compared, len(regressions))
    )
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ref", default="HEAD", help="baseline git ref")
    parser.add_argument("files", nargs="*", help="BENCH_*.json files")
    args = parser.parse_args()

    os.chdir(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1

    regressions = []
    for path in files:
        regressions.extend(check_file(path, args.ref))
    for line in regressions:
        print("!! %s" % line, file=sys.stderr)
    if regressions:
        return 1
    print("bench trajectory: no regressions vs %s" % args.ref)
    return 0


if __name__ == "__main__":
    sys.exit(main())
