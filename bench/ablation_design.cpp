// Ablation study for the design choices DESIGN.md calls out:
//
//  A. LLFD's Adjust exchangeable-set repair — on vs off, across skews
//     (the "re-overloading problem" of Section III-A).
//  B. Cleaning degree n: the Mixed spectrum's two extremes (MinTable:
//     n = N_A, MinMig: n = 0) versus Mixed's adaptive n.
//  C. HLHE greedy error cancellation vs nearest-representative rounding
//     (load-estimation error of the resulting plans).
//
// Not a paper figure; complements Figs. 8-12 by isolating each mechanism.
#include "bench_common.h"
#include "core/compact.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

PartitionSnapshot snapshot_with_skew(double z, std::uint64_t seed) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 50'000;
  opts.skew = z;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 0.0;
  opts.seed = seed;
  ZipfFluctuatingSource source(opts);
  const auto load = source.next_interval();
  const ConsistentHashRing ring(10, 128, seed ^ 0x77);

  PartitionSnapshot snap;
  snap.num_instances = 10;
  snap.cost.resize(opts.num_keys);
  snap.state.resize(opts.num_keys);
  snap.hash_dest.resize(opts.num_keys);
  for (std::size_t k = 0; k < opts.num_keys; ++k) {
    snap.cost[k] = static_cast<Cost>(load.counts[k]);
    snap.state[k] = 8.0 * static_cast<Bytes>(load.counts[k]);
    snap.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
  }
  snap.current = snap.hash_dest;
  return snap;
}

}  // namespace

int main() {
  PlannerConfig cfg;
  cfg.theta_max = 0.0;  // demand absolute balance: stresses Adjust
  cfg.max_table_entries = 0;

  // ---- A: Adjust on/off across skews.
  ResultTable adjust_table(
      "Ablation A: achieved theta with / without LLFD's Adjust",
      {"zipf_z", "with_adjust", "without_adjust", "ratio"});
  for (const double z : {0.5, 0.7, 0.85, 1.0, 1.2}) {
    const auto snap = snapshot_with_skew(z, 5);
    MinTablePlanner with_adjust;
    LlfdNoAdjustPlanner without;
    const double theta_with = with_adjust.plan(snap, cfg).achieved_theta;
    const double theta_without = without.plan(snap, cfg).achieved_theta;
    adjust_table.add_row(
        {fmt(z, 2), fmt(theta_with, 5), fmt(theta_without, 5),
         fmt(theta_without / std::max(theta_with, 1e-12), 1)});
  }
  adjust_table.print();

  // ---- B: the cleaning-degree spectrum.
  ResultTable clean_table(
      "Ablation B: cleaning degree (MinMig n=0, Mixed adaptive, MinTable "
      "n=NA)",
      {"algorithm", "migration_pct", "table_size", "gen_ms"});
  {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 50'000;
    opts.skew = 0.85;
    opts.tuples_per_interval = 1'000'000;
    opts.fluctuation = 1.0;
    opts.seed = 23;
    for (int which = 0; which < 3; ++which) {
      ZipfFluctuatingSource source(opts);
      DriverOptions dopts;
      dopts.theta_max = 0.08;
      dopts.max_table_entries = which == 0 ? 0 : 2000;  // MinMig unbounded
      dopts.window = 5;
      dopts.intervals = 10;
      PlannerPtr planner;
      const char* name;
      switch (which) {
        case 0:
          planner = std::make_unique<MinMigPlanner>();
          name = "MinMig (n=0)";
          break;
        case 1:
          planner = std::make_unique<MixedPlanner>();
          name = "Mixed (adaptive n)";
          break;
        default:
          planner = std::make_unique<MinTablePlanner>();
          name = "MinTable (n=NA)";
          break;
      }
      const auto result = drive_planner(source, std::move(planner), dopts);
      clean_table.add_row({name, fmt(result.migration_pct.mean(), 2),
                           fmt(result.table_size.mean(), 0),
                           fmt(result.generation_ms.mean(), 2)});
    }
  }
  clean_table.print();

  // ---- C: discretizer variants.
  ResultTable disc_table(
      "Ablation C: HLHE greedy vs nearest rounding (load estimation error %)",
      {"R", "hlhe_greedy", "nearest"});
  const auto snap = snapshot_with_skew(0.85, 9);
  PlannerConfig dcfg;
  dcfg.theta_max = 0.08;
  for (const int r : {1, 2, 3, 4, 6}) {
    CompactMixedPlanner greedy(r, true);
    CompactMixedPlanner nearest(r, false);
    (void)greedy.plan(snap, dcfg);
    (void)nearest.plan(snap, dcfg);
    disc_table.add_row({"R=" + std::to_string(1 << r),
                        fmt(greedy.last_load_estimation_error_pct(), 4),
                        fmt(nearest.last_load_estimation_error_pct(), 4)});
  }
  disc_table.print();
  return 0;
}
