#!/usr/bin/env bash
# Runs the machine-readable benches and refreshes the BENCH_*.json
# trajectory files at the repository root.
#
#   bench/run_benches.sh [BUILD_DIR]     (default: build)
#
# Benches and their acceptance gates (each bench enforces its own gates
# through its exit status; this script runs every bench and fails if ANY
# gate failed, so CI gets one pass/fail for the whole trajectory):
#
#   bench_micro_sketch   -> BENCH_sketch.json
#       stats memory >= 10x smaller than exact, plan-quality theta
#       within tolerance of the exact plan.
#   bench_micro_threaded -> BENCH_threaded.json
#       real-thread 1M-key run: sketch-mode stats memory >= 8x smaller
#       than exact, throughput >= 0.97x the exact mutex-drain path, and
#       the asynchronous boundary merge's ingestion stall >= 5x smaller
#       than the inline-merge baseline (per-boundary stall_ms is in the
#       JSON; a stall regression past the gate fails the bench, and with
#       it this script and CI).
#   bench_micro_plan     -> BENCH_plan.json
#       compact planning path at 1M keys / 4096 heavy: snapshot + plan
#       generation >= 20x faster than the dense path, no O(|K|)
#       structures on the planning path.
#   bench_micro_churn    -> BENCH_churn.json
#       adversarial workloads: under the rotating-hot-set attack the
#       decayed tracker's heavy-set churn rate is >= 2x lower than the
#       --no-decay baseline, and its realized post-rebalance theta stays
#       within the sketch-vs-exact tolerance.
#   bench_micro_net      -> BENCH_net.json
#       socket engine: forked-worker 1M-key run sustains >= 0.5x the
#       threaded engine's throughput with IDENTICAL plan digests, and a
#       plan broadcast on the control channel round-trips >= 5x faster
#       than the saturated data channel drains.
#   bench_micro_fault    -> BENCH_fault.json
#       fault tolerance: a worker SIGKILLed at an early and a late
#       interval boundary is checkpoint-restored and replayed with ZERO
#       digest divergence vs the crash-free run (plan digest, state
#       checksum, processed count), and mean time to repair stays within
#       5x the crash-free run's per-boundary stall.
#   bench_micro_shard    -> BENCH_shard.json
#       sharded controller at a 10M-key domain: the boundary merge
#       (absorb + roll) is >= 2x faster at 4 shards than the single
#       window, masses conserved exactly across every shard count. On a
#       single-core host the speedup gate reports SKIPPED (there is no
#       parallelism to demonstrate); CI's multi-core runners enforce it.
#   bench_micro_simd     -> BENCH_simd.json
#       SIMD kernel layer: vectorized add_interleaved >= 2x scalar and
#       batched probe generation >= 1.5x scalar on AVX2 hosts (speedup
#       gates SKIPPED, and recorded as such, when the host lacks AVX2 or
#       has a single hardware thread); the scalar-vs-vector bit-identity
#       digest gates are enforced on EVERY host, never skipped.
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

BENCHES=(
  bench_micro_sketch:BENCH_sketch.json
  bench_micro_threaded:BENCH_threaded.json
  bench_micro_plan:BENCH_plan.json
  bench_micro_churn:BENCH_churn.json
  bench_micro_net:BENCH_net.json
  bench_micro_fault:BENCH_fault.json
  bench_micro_shard:BENCH_shard.json
  bench_micro_simd:BENCH_simd.json
)

status=0
for spec in "${BENCHES[@]}"; do
  bench="${spec%%:*}"
  out="${spec##*:}"
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    echo "hint: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
  fi
  echo "== ${bench} -> ${out}" >&2
  if ! "$bin" > "$out"; then
    # One retry: these are wall-clock perf gates, and a sustained noisy
    # phase on a shared/steal-prone runner can sink a whole invocation.
    # A genuine regression fails both attempts — clean-machine
    # measurements sit well clear of every gate.
    echo "-- ${bench} gates failed, retrying once" >&2
    if ! "$bin" > "$out"; then
      echo "!! ${bench} gates FAILED (see ${out})" >&2
      status=1
    fi
  fi
  cat "$out"
done
exit "$status"
