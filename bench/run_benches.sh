#!/usr/bin/env bash
# Runs the machine-readable benches and refreshes the BENCH_*.json
# trajectory files at the repository root.
#
#   bench/run_benches.sh [BUILD_DIR]     (default: build)
#
# Currently: bench_micro_sketch -> BENCH_sketch.json. The bench's own
# acceptance gates (stats memory >= 10x smaller than exact, plan-quality
# theta within tolerance) propagate through this script's exit status,
# so CI can treat it as a check.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "${BUILD_DIR}/bench/bench_micro_sketch" ]]; then
  echo "error: ${BUILD_DIR}/bench/bench_micro_sketch not built" >&2
  echo "hint: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

echo "== bench_micro_sketch -> BENCH_sketch.json" >&2
"${BUILD_DIR}/bench/bench_micro_sketch" > BENCH_sketch.json
cat BENCH_sketch.json
