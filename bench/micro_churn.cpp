// micro_churn — heavy-set churn under adversarial workloads, decayed vs
// single-interval promotion (the --no-decay A/B anchor, mirroring the
// --inline-merge pattern of the boundary-merge bench).
//
// For every attack in the adversarial catalog the same stream drives
// three controllers:
//
//   exact     — ground-truth statistics (θ reference; no churn exists),
//   decay     — sketch provider with decayed candidate tracking (default),
//   no-decay  — sketch provider with the legacy single-interval tracker.
//
// Recorded per run: heavy-set churn rate
// (promotions + demotions) / (intervals · heavy_capacity), post-rebalance
// θ (the REALIZED imbalance observed in the interval after each
// rebalance — see realized_post_rebalance_theta), rebalance count and
// stats memory. Output: human-readable table on stderr, JSON on stdout
// (bench/run_benches.sh redirects it into BENCH_churn.json).
//
// Exit-code gates (CI runs this as a check):
//   * under the rotating-hot-set attack, decayed tracking cuts the churn
//     rate by ≥ 2× vs --no-decay — the tentpole claim: a rotated-out
//     group's standing survives its idle phase instead of thrashing
//     through demote/re-promote every cycle;
//   * rotating post-rebalance θ under decay stays within the existing
//     sketch-vs-exact tolerance (max(5% relative, 0.005 absolute) — the
//     micro_sketch gate).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/planners.h"
#include "workload/adversarial.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

struct RunStats {
  double churn_rate = 0.0;
  double theta_post = 0.0;  // realized θ after rebalances (see below)
  double theta_pred = 0.0;  // planner's own mean predicted achieved θ
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::size_t rebalances = 0;
  std::size_t memory_bytes = 0;
};

// Realized post-rebalance θ: the observed imbalance during the interval
// FOLLOWING each rebalance — the load the system actually ran at under
// the new assignment. This, not the plan's own predicted achieved θ, is
// the like-for-like number across stats modes: at a hot-set jump the
// sketch's compact snapshot momentarily carries cold residual not yet
// debited for freshly promoted keys (Space-Saving error keeps the
// guaranteed backfill below the true count), so the planner *predicts* a
// worse θ than the assignment actually delivers. Intervals where the
// attack shifts its hot set between plan and measurement
// (interval % shift_period == 0) are excluded: no assignment computed
// before the shift can score on them — they measure the attack, not the
// plan.
double realized_post_rebalance_theta(const DriverResult& r,
                                     int shift_period) {
  double acc = 0.0;
  int n = 0;
  for (std::size_t i = 0; i + 1 < r.theta_trajectory.size(); ++i) {
    if (!r.rebalanced_at[i]) continue;
    const std::size_t next = i + 1;
    if (shift_period > 0 && next % static_cast<std::size_t>(shift_period) == 0)
      continue;
    acc += r.theta_trajectory[next];
    ++n;
  }
  // No usable sample (never rebalanced, or every rebalance ran into a
  // shift): the observed mean stands.
  return n > 0 ? acc / n : r.theta_before.mean();
}

// Intervals at which each attack moves its hot set (0 = stationary).
int attack_shift_period(AttackKind attack,
                        const AdversarialSource::Options& opts) {
  switch (attack) {
    case AttackKind::kRotatingHotSet:
      return opts.rotation_period;
    case AttackKind::kSkewFlip:
      return opts.flip_period;
    case AttackKind::kKeyChurnFlood:
      return 0;  // shifts EVERY interval — all modes equally polluted
    case AttackKind::kParetoTail:
    case AttackKind::kHashCollision:
      return 0;  // stationary
  }
  return 0;
}

struct BenchConfig {
  std::uint64_t num_keys = 20'000;
  std::uint64_t tuples = 200'000;
  // Long enough for the decayed tracker's one-time transient (initial
  // fill + one displacement wave per rotation group) to amortize into
  // its zero steady-state churn; the no-decay baseline thrashes at a
  // constant per-cycle rate regardless of run length.
  int intervals = 48;
  InstanceId instances = 8;
  int window = 2;
  double theta_max = 0.08;
  std::size_t heavy_capacity = 512;
  double decay_beta = 0.8;
  std::uint64_t seed = 7;
};

AdversarialSource::Options attack_options(const BenchConfig& cfg,
                                          AttackKind attack,
                                          const SketchStatsConfig& sketch) {
  AdversarialSource::Options opts;
  opts.attack = attack;
  opts.num_keys = cfg.num_keys;
  opts.tuples_per_interval = cfg.tuples;
  opts.seed = cfg.seed;
  // Rotating geometry: 4 groups × period 3 → a rotated-out group is idle
  // for 9 intervals, well past the no-decay idle-demotion fuse
  // (max(window, 2)), so the legacy policy demotes and re-promotes every
  // cycle while the decayed tracker holds the group's standing.
  opts.rotation_period = 3;
  opts.hot_groups = 4;
  opts.hot_keys_per_group = 64;
  opts.sketch = sketch;  // collision attack targets the run's own family
  return opts;
}

bool g_trace = false;

RunStats run_one(const BenchConfig& cfg, AttackKind attack,
                 StatsMode stats_mode, bool decay,
                 const SketchStatsConfig& sketch_base) {
  DriverOptions opts;
  opts.num_instances = cfg.instances;
  opts.theta_max = cfg.theta_max;
  opts.window = cfg.window;
  opts.intervals = cfg.intervals;
  opts.stats_mode = stats_mode;
  opts.sketch = sketch_base;
  opts.sketch.decay = decay;
  AdversarialSource source(attack_options(cfg, attack, opts.sketch));
  const DriverResult r =
      drive_planner(source, std::make_unique<MixedPlanner>(), opts);

  RunStats out;
  out.promotions = r.promotions;
  out.demotions = r.demotions;
  out.rebalances = r.rebalances;
  out.memory_bytes = r.stats_memory_bytes;
  out.churn_rate =
      static_cast<double>(r.promotions + r.demotions) /
      (static_cast<double>(cfg.intervals) *
       static_cast<double>(opts.sketch.heavy_capacity));
  out.theta_post = realized_post_rebalance_theta(
      r, attack_shift_period(attack, attack_options(cfg, attack, opts.sketch)));
  if (g_trace) {
    std::fprintf(stderr, "[trace] %s %s:", attack_name(attack),
                 stats_mode == StatsMode::kExact ? "exact"
                 : decay                         ? "decay"
                                                 : "nodecay");
    for (std::size_t i = 0; i < r.theta_trajectory.size(); ++i) {
      std::fprintf(stderr, " %s%.3f", r.rebalanced_at[i] ? "*" : "",
                   r.theta_trajectory[i]);
    }
    std::fprintf(stderr, "\n");
  }
  out.theta_pred =
      r.rebalances > 0 ? r.theta_after.mean() : r.theta_before.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--keys N] [--tuples N] [--intervals N]\n",
                     argv[0]);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      cfg.num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      cfg.tuples = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      cfg.intervals = static_cast<int>(need());
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      g_trace = true;
    } else {
      std::fprintf(stderr, "usage: %s [--keys N] [--tuples N] [--intervals N]\n",
                   argv[0]);
      return 2;
    }
  }

  SketchStatsConfig sketch;
  sketch.heavy_capacity = cfg.heavy_capacity;
  sketch.decay_beta = cfg.decay_beta;

  double rotating_churn_decay = 0.0;
  double rotating_churn_nodecay = 0.0;
  double rotating_theta_delta = 0.0;
  double rotating_theta_tolerance = 0.0;

  std::string attack_json;
  std::fprintf(stderr, "%-10s %10s %10s %10s %10s %10s %10s\n", "attack",
               "chrn_dec", "chrn_nodec", "th_exact", "th_decay", "th_nodec",
               "reb_decay");
  for (const AttackKind attack : all_attacks()) {
    // The collision attack only bites a coarse family (full
    // Kirsch–Mitzenmacher collisions need a small width); every run of
    // this attack — including the exact reference's workload — uses the
    // same coarse ε so all three see the identical stream.
    SketchStatsConfig attack_sketch = sketch;
    if (attack == AttackKind::kHashCollision) attack_sketch.epsilon = 0.05;

    const RunStats exact =
        run_one(cfg, attack, StatsMode::kExact, true, attack_sketch);
    const RunStats decay =
        run_one(cfg, attack, StatsMode::kSketch, true, attack_sketch);
    const RunStats nodecay =
        run_one(cfg, attack, StatsMode::kSketch, false, attack_sketch);

    std::fprintf(stderr, "%-10s %10.4f %10.4f %10.4f %10.4f %10.4f %10zu\n",
                 attack_name(attack), decay.churn_rate, nodecay.churn_rate,
                 exact.theta_post, decay.theta_post, nodecay.theta_post,
                 decay.rebalances);

    if (attack == AttackKind::kRotatingHotSet) {
      rotating_churn_decay = decay.churn_rate;
      rotating_churn_nodecay = nodecay.churn_rate;
      rotating_theta_delta = std::abs(decay.theta_post - exact.theta_post);
      rotating_theta_tolerance = std::max(0.05 * exact.theta_post, 0.005);
    }

    char buf[1280];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"attack\": \"%s\",\n"
        "     \"exact\":    {\"theta_post\": %.6f, \"rebalances\": %zu},\n"
        "     \"decay\":    {\"churn_rate\": %.6f, \"promotions\": %llu, "
        "\"demotions\": %llu, \"theta_post\": %.6f, \"theta_pred\": %.6f, "
        "\"rebalances\": %zu, \"memory_bytes\": %zu},\n"
        "     \"no_decay\": {\"churn_rate\": %.6f, \"promotions\": %llu, "
        "\"demotions\": %llu, \"theta_post\": %.6f, \"theta_pred\": %.6f, "
        "\"rebalances\": %zu, \"memory_bytes\": %zu}}",
        attack_name(attack), exact.theta_post, exact.rebalances,
        decay.churn_rate, static_cast<unsigned long long>(decay.promotions),
        static_cast<unsigned long long>(decay.demotions), decay.theta_post,
        decay.theta_pred, decay.rebalances, decay.memory_bytes,
        nodecay.churn_rate,
        static_cast<unsigned long long>(nodecay.promotions),
        static_cast<unsigned long long>(nodecay.demotions),
        nodecay.theta_post, nodecay.theta_pred, nodecay.rebalances,
        nodecay.memory_bytes);
    if (!attack_json.empty()) attack_json += ",\n";
    attack_json += buf;
  }

  // ---- Gates (rotating attack: the tentpole claim).
  const bool pass_churn =
      rotating_churn_nodecay >= 2.0 * rotating_churn_decay &&
      rotating_churn_nodecay > 0.0;
  const bool pass_theta = rotating_theta_delta <= rotating_theta_tolerance;
  const double reduction = rotating_churn_decay > 0.0
                               ? rotating_churn_nodecay / rotating_churn_decay
                               : std::numeric_limits<double>::infinity();
  std::fprintf(stderr,
               "rotating churn %.4f (decay) vs %.4f (no-decay): %.1fx "
               "reduction (gate >= 2x: %s)\n"
               "rotating theta delta %.4f (gate <= %.4f: %s)\n",
               rotating_churn_decay, rotating_churn_nodecay, reduction,
               pass_churn ? "PASS" : "FAIL", rotating_theta_delta,
               rotating_theta_tolerance, pass_theta ? "PASS" : "FAIL");

  std::printf(
      "{\n"
      "  \"bench\": \"micro_churn\",\n"
      "%s"
      "  \"config\": {\"keys\": %llu, \"tuples_per_interval\": %llu, "
      "\"intervals\": %d, \"instances\": %d, \"window\": %d, "
      "\"heavy_capacity\": %zu, \"decay_beta\": %.2f, "
      "\"rotation_period\": 3, \"hot_groups\": 4},\n"
      "  \"attacks\": [\n%s\n  ],\n"
      "  \"rotating\": {\"churn_decay\": %.6f, \"churn_no_decay\": %.6f, "
      "\"reduction\": %.2f, \"theta_delta\": %.6f, "
      "\"theta_tolerance\": %.6f},\n"
      "  \"gates\": {\"rotating_churn_reduction_ge_2x\": %s, "
      "\"rotating_theta_within_tolerance\": %s}\n"
      "}\n",
      bench::env_json().c_str(),
      static_cast<unsigned long long>(cfg.num_keys),
      static_cast<unsigned long long>(cfg.tuples), cfg.intervals,
      static_cast<int>(cfg.instances), cfg.window, cfg.heavy_capacity,
      cfg.decay_beta, attack_json.c_str(), rotating_churn_decay,
      rotating_churn_nodecay, reduction, rotating_theta_delta,
      rotating_theta_tolerance, pass_churn ? "true" : "false",
      pass_theta ? "true" : "false");

  return (pass_churn && pass_theta) ? 0 : 1;
}
