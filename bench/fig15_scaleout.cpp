// Fig. 15 — throughput dynamics during scale-out: the system runs to a
// balanced state, then one instance is added and the balancing algorithms
// must shift load onto it. Time series on Social (a) and Stock (b) for
// Mixed / Readj at θmax ∈ {0.1, 0.2}, plus PKG (Social only) and Storm.
//
// Expected shape (paper): Mixed re-converges within a couple of
// intervals; Readj needs much longer (its plan generation alone took
// ~5 minutes on Social); Storm never uses the new instance effectively;
// PKG adapts but stays below Mixed.
#include "baselines/readj.h"
#include "bench_common.h"
#include "core/planners.h"
#include "workload/social.h"
#include "workload/stock.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

constexpr InstanceId kInstances = 9;  // +1 during the run -> 10
constexpr int kWarmup = 6;
constexpr int kAfter = 14;

std::unique_ptr<WorkloadSource> social_source() {
  SocialSource::Options opts;
  opts.num_words = 50'000;
  opts.skew = 0.95;
  // Saturated at 9 workers (ρ̄ ≈ 1.06), relieved once the 10th arrives
  // and the balancer shifts load onto it (ρ̄ ≈ 0.95).
  opts.tuples_per_interval = 1'900'000;
  opts.drift_fraction = 0.01;
  return std::make_unique<SocialSource>(opts);
}

std::unique_ptr<WorkloadSource> stock_source() {
  StockSource::Options opts;
  opts.tuples_per_interval = 900'000;
  opts.burst_probability = 0.3;
  // Keep bursts within one instance's capacity: the self-join cost is
  // quadratic in a symbol's volume, so unbounded bursts would exceed any
  // placement (nothing to reproduce there).
  opts.burst_min_factor = 4.0;
  opts.burst_max_factor = 10.0;
  return std::make_unique<StockSource>(opts);
}

/// Runs warmup -> add_instance -> recovery; returns throughput series.
std::vector<double> run_series(std::unique_ptr<SimEngine> engine) {
  std::vector<double> series;
  for (int i = 0; i < kWarmup; ++i) {
    series.push_back(engine->step().throughput_tps / 1000.0);
  }
  engine->add_instance();
  for (int i = 0; i < kAfter; ++i) {
    series.push_back(engine->step().throughput_tps / 1000.0);
  }
  return series;
}

std::unique_ptr<SimEngine> make_engine(bool social, int which, double theta) {
  SimConfig cfg;
  cfg.num_instances = kInstances;
  if (!social) cfg.state_window = 3;
  auto source = social ? social_source() : stock_source();
  const std::size_t keys = source->num_keys();
  std::unique_ptr<SimOperator> op;
  if (social) {
    op = std::make_unique<UniformCostOperator>(5.0, 8.0);
  } else {
    // Base cost dominates; the probe term concentrates load on the hot
    // symbols without letting any single symbol exceed ~0.8 instances.
    op = std::make_unique<SelfJoinCostOperator>(8.0, 16.0, 0.00002);
  }
  switch (which) {
    case 0:  // Mixed
      return std::make_unique<SimEngine>(
          cfg, std::move(op), std::move(source),
          make_controller(std::make_unique<MixedPlanner>(), kInstances, keys,
                          theta, 0, social ? 1 : 3));
    case 1:  // Readj
      return std::make_unique<SimEngine>(
          cfg, std::move(op), std::move(source),
          make_controller(std::make_unique<ReadjPlanner>(), kInstances, keys,
                          theta, 0, social ? 1 : 3));
    case 2:  // PKG
      return std::make_unique<SimEngine>(cfg, std::move(op),
                                         std::move(source),
                                         RoutingMode::kPkg);
    default:  // Storm
      return std::make_unique<SimEngine>(cfg, std::move(op),
                                         std::move(source),
                                         RoutingMode::kHashOnly);
  }
}

void print_series(const std::string& title,
                  const std::vector<std::pair<std::string,
                                              std::vector<double>>>& series) {
  std::vector<std::string> cols = {"interval"};
  for (const auto& [name, values] : series) cols.push_back(name);
  ResultTable table(title, cols);
  const std::size_t n = series.front().second.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row = {
        std::to_string(i) + (i == kWarmup ? "*" : "")};
    for (const auto& [name, values] : series) row.push_back(fmt(values[i], 1));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("(* = instance added at this interval)\n");
}

}  // namespace

int main() {
  {
    std::vector<std::pair<std::string, std::vector<double>>> series;
    series.emplace_back("Mixed(0.1)", run_series(make_engine(true, 0, 0.1)));
    series.emplace_back("Readj(0.1)", run_series(make_engine(true, 1, 0.1)));
    series.emplace_back("Mixed(0.2)", run_series(make_engine(true, 0, 0.2)));
    series.emplace_back("Readj(0.2)", run_series(make_engine(true, 1, 0.2)));
    series.emplace_back("PKG", run_series(make_engine(true, 2, 0.1)));
    series.emplace_back("Storm", run_series(make_engine(true, 3, 0.1)));
    print_series("Fig 15(a) Social scale-out throughput (k tuples/s)",
                 series);
  }
  {
    std::vector<std::pair<std::string, std::vector<double>>> series;
    series.emplace_back("Mixed(0.1)", run_series(make_engine(false, 0, 0.1)));
    series.emplace_back("Readj(0.1)", run_series(make_engine(false, 1, 0.1)));
    series.emplace_back("Mixed(0.2)", run_series(make_engine(false, 0, 0.2)));
    series.emplace_back("Readj(0.2)", run_series(make_engine(false, 1, 0.2)));
    series.emplace_back("Storm", run_series(make_engine(false, 3, 0.1)));
    print_series("Fig 15(b) Stock scale-out throughput (k tuples/s)",
                 series);
  }
  return 0;
}
