// Fig. 18 (appendix) — routing-table size versus the number of balance
// adjustments when running MinMig (no table bound), K = 10^4.
//
// Expected shape (paper): smaller θmax grows the table faster; all θmax
// curves converge toward K · (N_D − 1) / N_D (~9000 entries at N_D = 10)
// after many adjustments, because an unbounded MinMig eventually routes
// almost every key explicitly.
#include "bench_common.h"
#include "common/consistent_hash.h"
#include "core/controller.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

constexpr std::uint64_t kNumKeys = 10'000;
constexpr InstanceId kInstances = 10;

std::vector<std::pair<int, std::size_t>> run(double theta,
                                             int max_adjustments) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = kNumKeys;
  opts.skew = 0.85;
  opts.tuples_per_interval = 500'000;
  opts.fluctuation = 1.0;
  opts.seed = 37;
  ZipfFluctuatingSource source(opts);

  ControllerConfig cfg;
  cfg.planner.theta_max = theta;
  cfg.planner.max_table_entries = 0;  // MinMig cannot bound the table
  Controller controller(
      AssignmentFunction(ConsistentHashRing(kInstances, 128, 21), 0),
      std::make_unique<MinMigPlanner>(), cfg, kNumKeys);

  std::vector<std::pair<int, std::size_t>> growth;
  int adjustments = 0;
  int guard = 0;
  while (adjustments < max_adjustments && guard < max_adjustments * 4) {
    ++guard;
    const auto load = source.next_interval();
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      if (load.counts[k] == 0) continue;
      controller.record(static_cast<KeyId>(k),
                        static_cast<double>(load.counts[k]),
                        8.0 * static_cast<double>(load.counts[k]));
    }
    if (controller.end_interval().has_value()) {
      ++adjustments;
      if ((adjustments & (adjustments - 1)) == 0) {  // powers of two
        growth.emplace_back(adjustments,
                            controller.assignment().table().size());
      }
    }
  }
  return growth;
}

}  // namespace

int main() {
  constexpr int kMaxAdjustments = 1024;
  ResultTable table(
      "Fig 18 routing-table size vs #adjustments (MinMig, K=1e4)",
      {"adjustments", "theta=0.02", "theta=0.08", "theta=0.15",
       "theta=0.30"});
  const auto g002 = run(0.02, kMaxAdjustments);
  const auto g008 = run(0.08, kMaxAdjustments);
  const auto g015 = run(0.15, kMaxAdjustments);
  const auto g030 = run(0.30, kMaxAdjustments);
  const auto value_at = [](const std::vector<std::pair<int, std::size_t>>& g,
                           int adj) -> std::string {
    for (const auto& [a, size] : g) {
      if (a == adj) return std::to_string(size);
    }
    return "-";
  };
  for (int adj = 1; adj <= kMaxAdjustments; adj *= 2) {
    table.add_row({std::to_string(adj), value_at(g002, adj),
                   value_at(g008, adj), value_at(g015, adj),
                   value_at(g030, adj)});
  }
  table.print();
  std::printf("convergence bound K*(ND-1)/ND = %.0f entries\n",
              static_cast<double>(kNumKeys) * (kInstances - 1) / kInstances);
  return 0;
}
