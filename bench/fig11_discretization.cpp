// Fig. 11 — effect of the compact representation's discretization degree
// R ∈ {1 .. 256} on (a) plan-generation time versus the "Original key
// space" (exact Mixed), and (b) the load-estimation error for several
// θmax values. An extra column ablates the HLHE greedy error-cancelling
// step against plain nearest-representative rounding.
//
// Expected shape (paper): generation time drops by about an order of
// magnitude once R ≥ 8 versus the original key space; estimation error
// grows with R but stays below ~1%.
#include "bench_common.h"
#include "common/clock.h"
#include "core/compact.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

PartitionSnapshot build_snapshot(std::uint64_t num_keys, InstanceId nd) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = num_keys;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 0.0;
  opts.seed = 19;
  ZipfFluctuatingSource source(opts);
  const auto load = source.next_interval();
  const ConsistentHashRing ring(nd, 128, 21);

  PartitionSnapshot snap;
  snap.num_instances = nd;
  snap.cost.resize(num_keys);
  snap.state.resize(num_keys);
  snap.hash_dest.resize(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    snap.cost[k] = static_cast<Cost>(load.counts[k]);
    snap.state[k] = 8.0 * static_cast<Bytes>(load.counts[k]);
    snap.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
  }
  snap.current = snap.hash_dest;
  return snap;
}

}  // namespace

int main() {
  constexpr std::uint64_t kNumKeys = 100'000;
  const auto snap = build_snapshot(kNumKeys, 10);
  PlannerConfig cfg;
  cfg.theta_max = 0.08;
  cfg.max_table_entries = 0;

  // Generation time = controller-side planning. For the compact planner
  // the record build happens at the reporting instances (Fig. 5 step 1)
  // and is listed separately in the build_ms column.
  ResultTable time_table(
      "Fig 11(a) avg generation time (ms) vs discretization degree R",
      {"R", "gen_ms", "build_ms", "records"});
  {
    MixedPlanner exact;
    const auto plan = exact.plan(snap, cfg);
    time_table.add_row({"original-key-space",
                        fmt(static_cast<double>(plan.generation_micros) /
                                1000.0,
                            2),
                        "-", std::to_string(kNumKeys)});
  }
  for (const int r : {0, 1, 2, 3, 4, 5, 6, 7, 8}) {
    CompactMixedPlanner planner(r);
    const auto plan = planner.plan(snap, cfg);
    time_table.add_row(
        {"R=" + std::to_string(1 << r),
         fmt(static_cast<double>(plan.generation_micros) / 1000.0, 2),
         fmt(static_cast<double>(planner.last_build_micros()) / 1000.0, 2),
         std::to_string(planner.last_num_records())});
  }
  time_table.print();

  ResultTable err_table(
      "Fig 11(b) load estimation error (%) vs R, per theta_max",
      {"R", "theta=0", "theta=0.02", "theta=0.08", "theta=0.15",
       "nearest(0.08)"});
  for (const int r : {0, 1, 2, 3, 4, 5, 6, 7, 8}) {
    std::vector<std::string> row = {"R=" + std::to_string(1 << r)};
    for (const double theta : {0.0, 0.02, 0.08, 0.15}) {
      PlannerConfig tcfg = cfg;
      tcfg.theta_max = theta;
      CompactMixedPlanner planner(r);
      (void)planner.plan(snap, tcfg);
      row.push_back(fmt(planner.last_load_estimation_error_pct(), 4));
    }
    // Ablation: nearest-representative rounding instead of HLHE greedy.
    CompactMixedPlanner nearest(r, /*greedy=*/false);
    PlannerConfig ncfg = cfg;
    (void)nearest.plan(snap, ncfg);
    row.push_back(fmt(nearest.last_load_estimation_error_pct(), 4));
    err_table.add_row(std::move(row));
  }
  err_table.print();
  return 0;
}
