// micro_fault — the fault-tolerance layer's acceptance harness.
//
// Two claims are gated, both against a crash-free run of the SAME
// recovery-enabled engine:
//
//   1. ZERO DIGEST DIVERGENCE — a worker SIGKILLed at an interval
//      boundary is respawned, restored from its checkpoint and replayed
//      the open epoch's recorded batches verbatim; the run must finish
//      with the SAME plan-history digest, state checksum and processed
//      count as the crash-free run. Recovery that loses or double-counts
//      so much as one tuple fails this gate.
//   2. MTTR — mean time to repair (reap -> respawn -> restore -> replay,
//      NetEngine::total_recovery_ms / recoveries) stays within 5x the
//      crash-free run's mean per-boundary stall. Recovery rides the
//      normal epoch machinery; if repairing a worker costs more than a
//      handful of interval boundaries, the checkpoint/replay path has
//      regressed into a restart-the-world.
//
// Output: summary on stderr, JSON on stdout (run_benches.sh redirects
// into BENCH_fault.json). Non-zero exit if any gate fails.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"
#include "core/planners.h"
#include "net/fault_injector.h"
#include "net/net_engine.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

struct Scenario {
  std::uint64_t num_keys = 200'000;
  std::uint64_t tuples_per_interval = 400'000;
  int intervals = 5;
  InstanceId workers = 4;
  std::size_t batch = 1024;
  SketchStatsConfig sketch;
};

struct RunResult {
  std::uint64_t plan_digest = 0;
  std::uint64_t state_checksum = 0;
  std::size_t state_entries = 0;
  std::uint64_t processed = 0;
  std::uint64_t recoveries = 0;
  bool degraded = false;
  double total_stall_ms = 0.0;
  double total_recovery_ms = 0.0;
  double total_wall_ms = 0.0;
};

std::unique_ptr<Controller> make_controller(const Scenario& sc) {
  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.08;
  ccfg.stats_mode = StatsMode::kSketch;
  ccfg.sketch = sc.sketch;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(sc.workers), 0),
      std::make_unique<MixedPlanner>(), ccfg, sc.num_keys);
}

RunResult run_one(const Scenario& sc, const FaultPlan& fault) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = sc.num_keys;
  opts.skew = 1.2;
  opts.tuples_per_interval = sc.tuples_per_interval;
  opts.fluctuation = 0.0;
  opts.fluctuate_every = sc.intervals + 1;
  opts.seed = 0x5eed;
  ZipfFluctuatingSource source(opts);

  NetConfig cfg;
  cfg.batch_size = sc.batch;
  cfg.recovery_enabled = true;
  cfg.fault = fault;
  NetEngine engine(cfg, std::make_shared<WordCountLogic>(),
                   make_controller(sc));
  const auto reports = engine.run(source, sc.intervals, /*seed=*/1);

  RunResult res;
  for (const auto& r : reports) {
    res.total_stall_ms += r.stall_ms;
    res.total_wall_ms += r.wall_ms;
  }
  res.plan_digest = engine.controller()->plan_history_digest();
  engine.shutdown();
  if (!engine.ok()) {
    std::fprintf(stderr, "net engine failed: %s\n", engine.error().c_str());
    std::exit(1);
  }
  res.state_checksum = engine.state_checksum();
  res.state_entries = engine.total_state_entries();
  res.processed = engine.total_processed();
  res.recoveries = engine.recoveries();
  res.degraded = engine.degraded();
  res.total_recovery_ms = engine.total_recovery_ms();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  sc.sketch.epsilon = 1e-3;
  sc.sketch.delta = 0.05;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [--keys N] [--tuples N] [--intervals N] "
                 "[--workers N] [--batch N]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) usage();
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      sc.num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      sc.tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      sc.intervals = static_cast<int>(need());
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      sc.workers = static_cast<InstanceId>(need());
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      sc.batch = static_cast<std::size_t>(need());
    } else {
      usage();
    }
  }
  if (sc.intervals < 4 || sc.workers < 2) {
    std::fprintf(stderr, "need --intervals >= 4 and --workers >= 2\n");
    return 2;
  }

  std::fprintf(stderr,
               "fault tolerance, %llu-key Zipf(1.2), %llu tuples/interval, "
               "%d intervals, %d workers\n",
               static_cast<unsigned long long>(sc.num_keys),
               static_cast<unsigned long long>(sc.tuples_per_interval),
               sc.intervals, static_cast<int>(sc.workers));

  std::fprintf(stderr, "crash-free baseline (recovery enabled)...\n");
  const RunResult clean = run_one(sc, FaultPlan{});
  const std::uint64_t expected =
      sc.tuples_per_interval * static_cast<std::uint64_t>(sc.intervals);
  if (clean.recoveries != 0 || clean.degraded ||
      clean.processed != expected) {
    std::fprintf(stderr, "baseline run is not clean\n");
    return 1;
  }
  const double clean_boundary_stall_ms =
      clean.total_stall_ms / static_cast<double>(sc.intervals);

  // SIGKILL worker 1 at an early and a late boundary (separate runs):
  // the early kill replays into a still-cold state, the late one
  // restores a full checkpoint across a history of migrations.
  const std::uint64_t kill_epochs[2] = {
      2, static_cast<std::uint64_t>(sc.intervals) - 1};
  RunResult faulted[2];
  bool identical = true;
  bool recovered = true;
  double recovery_ms_sum = 0.0;
  std::uint64_t recovery_count = 0;
  for (int i = 0; i < 2; ++i) {
    std::fprintf(stderr, "kill worker 1 at epoch %llu...\n",
                 static_cast<unsigned long long>(kill_epochs[i]));
    FaultPlan plan;
    plan.events.push_back(FaultEvent{FaultKind::kKill, /*worker=*/1,
                                     kill_epochs[i], /*sticky=*/false});
    faulted[i] = run_one(sc, plan);
    identical &= faulted[i].plan_digest == clean.plan_digest &&
                 faulted[i].state_checksum == clean.state_checksum &&
                 faulted[i].state_entries == clean.state_entries &&
                 faulted[i].processed == clean.processed;
    recovered &= faulted[i].recoveries == 1 && !faulted[i].degraded;
    recovery_ms_sum += faulted[i].total_recovery_ms;
    recovery_count += faulted[i].recoveries;
  }

  const double mttr_ms =
      recovery_count > 0 ? recovery_ms_sum / static_cast<double>(recovery_count)
                         : 1e18;
  // Headroom > 1 means MTTR sits under the 5x-boundary-stall gate; the
  // regression checker tracks this ratio (both sides are wall clocks on
  // the same host, so the ratio survives machine drift).
  const double mttr_headroom =
      mttr_ms > 0.0 ? (5.0 * clean_boundary_stall_ms) / mttr_ms : 1e18;

  const bool pass_identity = identical;
  const bool pass_recovered = recovered;
  const bool pass_mttr = mttr_ms <= 5.0 * clean_boundary_stall_ms;

  std::fprintf(stderr,
               "\nplan digest %016llx, state checksum %016llx, "
               "%zu state entries, %llu processed\n"
               "digest divergence across kills: %s\n"
               "recoveries clean (1 per kill, no degrade): %s\n"
               "MTTR %.3f ms vs clean boundary stall %.3f ms "
               "(gate mttr <= 5x stall, headroom %.2f): %s\n",
               static_cast<unsigned long long>(clean.plan_digest),
               static_cast<unsigned long long>(clean.state_checksum),
               clean.state_entries,
               static_cast<unsigned long long>(clean.processed),
               pass_identity ? "NONE (PASS)" : "DIVERGED (FAIL)",
               pass_recovered ? "PASS" : "FAIL", mttr_ms,
               clean_boundary_stall_ms, mttr_headroom,
               pass_mttr ? "PASS" : "FAIL");

  std::printf(
      "{\n"
      "  \"bench\": \"micro_fault\",\n"
      "%s"
      "  \"workload\": {\"distribution\": \"zipf\", \"skew\": 1.2, "
      "\"keys\": %llu, \"tuples_per_interval\": %llu, \"intervals\": %d, "
      "\"workers\": %d, \"batch\": %zu},\n"
      "  \"clean\": {\"plan_digest\": \"%016llx\", "
      "\"state_checksum\": \"%016llx\", \"state_entries\": %zu, "
      "\"processed\": %llu, \"boundary_stall_ms\": %.3f, "
      "\"wall_ms\": %.1f},\n"
      "  \"kill_early\": {\"epoch\": %llu, \"plan_digest\": \"%016llx\", "
      "\"recoveries\": %llu, \"recovery_ms\": %.3f},\n"
      "  \"kill_late\": {\"epoch\": %llu, \"plan_digest\": \"%016llx\", "
      "\"recoveries\": %llu, \"recovery_ms\": %.3f},\n"
      "  \"mttr_ms\": %.3f,\n"
      "  \"mttr_headroom\": %.3f,\n"
      "  \"gates\": {\"zero_digest_divergence\": %s, "
      "\"single_recovery_no_degrade\": %s, "
      "\"mttr_5x_under_boundary_stall\": %s}\n"
      "}\n",
      bench::env_json().c_str(),
      static_cast<unsigned long long>(sc.num_keys),
      static_cast<unsigned long long>(sc.tuples_per_interval), sc.intervals,
      static_cast<int>(sc.workers), sc.batch,
      static_cast<unsigned long long>(clean.plan_digest),
      static_cast<unsigned long long>(clean.state_checksum),
      clean.state_entries, static_cast<unsigned long long>(clean.processed),
      clean_boundary_stall_ms, clean.total_wall_ms,
      static_cast<unsigned long long>(kill_epochs[0]),
      static_cast<unsigned long long>(faulted[0].plan_digest),
      static_cast<unsigned long long>(faulted[0].recoveries),
      faulted[0].total_recovery_ms,
      static_cast<unsigned long long>(kill_epochs[1]),
      static_cast<unsigned long long>(faulted[1].plan_digest),
      static_cast<unsigned long long>(faulted[1].recoveries),
      faulted[1].total_recovery_ms, mttr_ms, mttr_headroom,
      pass_identity ? "true" : "false", pass_recovered ? "true" : "false",
      pass_mttr ? "true" : "false");

  return (pass_identity && pass_recovered && pass_mttr) ? 0 : 1;
}
