// Fig. 12 — scheduling efficiency and migration cost with varying
// distribution-change frequency f ∈ {0.1 .. 0.9} for Mixed, MinTable,
// Readj and MixedBF (θmax = 0.08).
//
// Expected shape (paper): Readj's generation time is orders of magnitude
// above Mixed's and grows with f; MixedBF is the slowest; Mixed's
// migration cost grows more slowly with f than Readj's, and MixedBF
// tracks Mixed closely.
//
// The Mixed-Sk column repeats Mixed over the sketch statistics provider
// (decayed heavy-hitter tracking): it should track the exact-stats Mixed
// column closely at every fluctuation level.
#include "baselines/readj.h"
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

DriverResult run(double fluctuation, int which) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 50'000;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = fluctuation;
  opts.seed = 23;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.theta_max = 0.08;
  dopts.max_table_entries = 3000;
  dopts.intervals = 5;
  PlannerPtr planner;
  switch (which) {
    case 0:
      planner = std::make_unique<MixedPlanner>();
      break;
    case 1:
      planner = std::make_unique<MinTablePlanner>();
      break;
    case 2:
      planner = std::make_unique<ReadjPlanner>();
      break;
    case 3:
      planner = std::make_unique<MixedBfPlanner>(/*max_trials=*/128);
      break;
    default:
      // Mixed again, planning over the sketch provider instead of exact
      // per-key statistics.
      dopts.stats_mode = StatsMode::kSketch;
      planner = std::make_unique<MixedPlanner>();
      break;
  }
  return drive_planner(source, std::move(planner), dopts);
}

}  // namespace

int main() {
  ResultTable time_table(
      "Fig 12(a) avg generation time (ms) vs f",
      {"f", "Mixed", "MinTable", "Readj", "MixedBF", "Mixed-Sk"});
  ResultTable cost_table(
      "Fig 12(b) migration cost (%) vs f",
      {"f", "Mixed", "MinTable", "Readj", "MixedBF", "Mixed-Sk"});

  for (const double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<std::string> trow = {fmt(f, 1)};
    std::vector<std::string> crow = {fmt(f, 1)};
    for (int which = 0; which < 5; ++which) {
      const auto result = run(f, which);
      trow.push_back(fmt(result.generation_ms.mean(), 2));
      crow.push_back(fmt(result.migration_pct.mean(), 2));
    }
    time_table.add_row(std::move(trow));
    cost_table.add_row(std::move(crow));
  }
  time_table.print();
  cost_table.print();
  return 0;
}
