// Shared machinery for the figure-reproduction benches.
//
// Two drivers:
//  * PlannerDriver — feeds per-interval workloads straight into a
//    Controller and aggregates planning metrics (generation time,
//    migration cost %, routing-table size). Used by the figures that
//    study the rebalance algorithms themselves (Figs. 8-12, 17-21).
//  * sim helpers — build SimEngine configurations for the end-to-end
//    throughput/latency figures (Figs. 13-16).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/controller.h"
#include "core/plan.h"
#include "engine/sim_engine.h"
#include "engine/workload_source.h"

namespace skewless::bench {

struct DriverOptions {
  InstanceId num_instances = 10;
  double theta_max = 0.08;
  std::size_t max_table_entries = 0;  // Amax (0 = unbounded)
  double beta = 1.5;
  int window = 1;
  int intervals = 8;
  /// Per-tuple CPU cost and state growth fed into the statistics.
  Cost cost_per_tuple = 1.0;
  Bytes bytes_per_tuple = 8.0;
  /// Per-key state heterogeneity: key k appends
  /// bytes_per_tuple · (1 + state_heterogeneity · u(k)) bytes per tuple,
  /// u(k) ∈ [0, 1) a per-key hash. 0 = homogeneous (state strictly
  /// proportional to cost); > 0 spreads the cost-per-byte ratios, which
  /// the γ = c^β / S criterion trades off.
  double state_heterogeneity = 0.0;
  std::uint64_t ring_seed = 21;
  /// Statistics storage for the driven controller: exact (default) or
  /// the sketch provider — the knob the sketch-mode bench columns flip.
  StatsMode stats_mode = StatsMode::kExact;
  SketchStatsConfig sketch = {};
};

struct DriverResult {
  Welford generation_ms;    // per rebalance
  Welford migration_pct;    // migrated bytes / total windowed state * 100
  Welford table_size;       // N_A' after each rebalance
  Welford moves;            // |∆(F, F')|
  Welford theta_before;     // imbalance observed at each interval boundary
  Welford theta_after;      // plan's achieved balance
  std::size_t rebalances = 0;
  std::size_t intervals = 0;
  /// Heavy-set churn over the run (sketch mode; zeros in exact mode).
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  /// Statistics memory after the final interval.
  std::size_t stats_memory_bytes = 0;
  /// Per-interval observed θ and whether that boundary rebalanced —
  /// theta_trajectory[i+1] is the REALIZED imbalance of the assignment
  /// installed at boundary i (the number a plan should be judged by,
  /// rather than its own predicted achieved θ).
  std::vector<double> theta_trajectory;
  std::vector<char> rebalanced_at;
};

/// Runs `planner` against `source` through a Controller for
/// `opts.intervals` intervals and aggregates the planning metrics.
DriverResult drive_planner(WorkloadSource& source, PlannerPtr planner,
                           const DriverOptions& opts);

/// Builds a controller for sim-engine experiments.
std::unique_ptr<Controller> make_controller(PlannerPtr planner,
                                            InstanceId num_instances,
                                            std::size_t num_keys,
                                            double theta_max,
                                            std::size_t max_table_entries = 0,
                                            int window = 1,
                                            std::uint64_t ring_seed = 21);

/// Mean of a metric over intervals [skip, end).
double mean_of(const std::vector<IntervalMetrics>& ms,
               double (*extract)(const IntervalMetrics&), int skip = 2);

/// The environment stanza every BENCH_*.json carries — the host's
/// hardware thread count and the SIMD kernel tier the run dispatched to
/// (tools/check_bench_regression.py refuses to compare numbers produced
/// under different tiers or thread counts). Returns
///   "  \"hardware_threads\": N,\n  \"kernel_tier\": \"avx2\",\n"
/// ready to splice into a printf JSON template via %s.
std::string env_json();

inline double throughput_of(const IntervalMetrics& m) {
  return m.throughput_tps;
}
inline double latency_of(const IntervalMetrics& m) { return m.avg_latency_ms; }

}  // namespace skewless::bench
