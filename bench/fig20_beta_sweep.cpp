// Figs. 20 & 21 (appendix) — routing-table size and migration cost versus
// the migration-selection factor β ∈ [1.0, 2.0] (MinMig, average over 10
// balance adjustments), for θmax ∈ {0.02, 0.08, 0.15, 0.3}.
//
// Expected shape (paper): β = 1 selects small-load keys (γ = load per
// byte) producing large tables; as β grows the criterion favours heavy
// keys, the table shrinks and stabilizes for β ∈ [1.5, 2.0] — the basis
// for the paper's default β = 1.5. Migration cost varies mildly with β.
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

DriverResult run(double beta, double theta) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 100'000;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 1.0;
  opts.seed = 43;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.theta_max = theta;
  dopts.max_table_entries = 0;  // MinMig: unbounded table
  dopts.beta = beta;
  // w = 5 decorrelates S(k, w) (five intervals of history) from c(k)
  // (last interval only): keys' cost-per-byte ratios spread out and the
  // beta trade-off becomes visible, as with the paper's real traces.
  dopts.window = 5;
  dopts.intervals = 14;  // ~10 balance adjustments after warmup
  // Real traces carry different state volumes per key (tweet text vs
  // trade records); heterogeneity makes the beta trade-off non-trivial.
  dopts.state_heterogeneity = 8.0;
  return drive_planner(source, std::make_unique<MinMigPlanner>(), dopts);
}

}  // namespace

int main() {
  ResultTable size_table(
      "Fig 20 routing-table size vs beta (MinMig)",
      {"beta", "theta=0.02", "theta=0.08", "theta=0.15", "theta=0.30"});
  ResultTable cost_table(
      "Fig 21 migration cost (%) vs beta (MinMig)",
      {"beta", "theta=0.02", "theta=0.08", "theta=0.15", "theta=0.30"});

  for (const double beta : {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8,
                            1.9, 2.0}) {
    std::vector<std::string> srow = {fmt(beta, 1)};
    std::vector<std::string> crow = {fmt(beta, 1)};
    for (const double theta : {0.02, 0.08, 0.15, 0.30}) {
      const auto result = run(beta, theta);
      srow.push_back(fmt(result.table_size.mean(), 0));
      crow.push_back(fmt(result.migration_pct.mean(), 2));
    }
    size_table.add_row(std::move(srow));
    cost_table.add_row(std::move(crow));
  }
  size_table.print();
  cost_table.print();
  return 0;
}
