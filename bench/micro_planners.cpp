// Google-benchmark microbenchmarks of the planning algorithms: per-plan
// latency of LLFD-based planners, the compact representation build, and
// the end-to-end Mixed pass across key-domain sizes. Complements the
// figure benches with statistically robust single-operation timings.
#include <benchmark/benchmark.h>

#include "baselines/readj.h"
#include "common/consistent_hash.h"
#include "core/compact.h"
#include "core/planners.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

PartitionSnapshot snapshot_for(std::uint64_t num_keys) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = num_keys;
  opts.skew = 0.85;
  opts.tuples_per_interval = num_keys * 10;
  opts.fluctuation = 0.0;
  opts.seed = 47;
  ZipfFluctuatingSource source(opts);
  const auto load = source.next_interval();
  const ConsistentHashRing ring(10, 128, 21);

  PartitionSnapshot snap;
  snap.num_instances = 10;
  snap.cost.resize(num_keys);
  snap.state.resize(num_keys);
  snap.hash_dest.resize(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    snap.cost[k] = static_cast<Cost>(load.counts[k]);
    snap.state[k] = 8.0 * static_cast<Bytes>(load.counts[k]);
    snap.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
  }
  snap.current = snap.hash_dest;
  return snap;
}

PlannerConfig default_config() {
  PlannerConfig cfg;
  cfg.theta_max = 0.08;
  cfg.max_table_entries = 0;
  return cfg;
}

void BM_MixedPlan(benchmark::State& state) {
  const auto snap = snapshot_for(static_cast<std::uint64_t>(state.range(0)));
  const auto cfg = default_config();
  MixedPlanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(snap, cfg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MixedPlan)->Range(1'000, 100'000)->Complexity();

void BM_MinTablePlan(benchmark::State& state) {
  const auto snap = snapshot_for(static_cast<std::uint64_t>(state.range(0)));
  const auto cfg = default_config();
  MinTablePlanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(snap, cfg));
  }
}
BENCHMARK(BM_MinTablePlan)->Range(1'000, 100'000);

void BM_ReadjPlan(benchmark::State& state) {
  const auto snap = snapshot_for(static_cast<std::uint64_t>(state.range(0)));
  const auto cfg = default_config();
  ReadjPlanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(snap, cfg));
  }
}
BENCHMARK(BM_ReadjPlan)->Range(1'000, 32'000);

void BM_CompactBuild(benchmark::State& state) {
  const auto snap = snapshot_for(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompactSpace::build(snap, 3));
  }
}
BENCHMARK(BM_CompactBuild)->Range(1'000, 100'000);

void BM_CompactMixedPlan(benchmark::State& state) {
  const auto snap = snapshot_for(static_cast<std::uint64_t>(state.range(0)));
  const auto cfg = default_config();
  CompactMixedPlanner planner(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(snap, cfg));
  }
}
BENCHMARK(BM_CompactMixedPlan)->Range(1'000, 100'000);

void BM_HashRingOwner(benchmark::State& state) {
  const ConsistentHashRing ring(static_cast<InstanceId>(state.range(0)), 128);
  KeyId key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(key++));
  }
}
BENCHMARK(BM_HashRingOwner)->Arg(5)->Arg(10)->Arg(40);

}  // namespace
}  // namespace skewless

BENCHMARK_MAIN();
