// Fig. 17 (appendix) — Mixed's migration cost versus the routing-table
// bound N_A = 2^i, for θmax ∈ {0.02, 0.08, 0.15, 0.3}.
//
// Expected shape (paper): with a tight table bound the algorithm is
// forced into MinTable-like cleaning and migration cost is high; once
// N_A crosses the knee (~2000 entries at θmax = 0.08) migration cost
// drops sharply; stricter θmax needs a larger minimum N_A.
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

double run(std::size_t amax, double theta) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 100'000;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 1.0;
  opts.seed = 31;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.theta_max = theta;
  dopts.max_table_entries = amax;
  // w = 5: the window separates Mixed's cheap-migration selection from
  // MinTable-style full cleaning, which is exactly what a tight table
  // bound forces Mixed into.
  dopts.window = 5;
  dopts.intervals = 14;
  const auto result =
      drive_planner(source, std::make_unique<MixedPlanner>(), dopts);
  return result.migration_pct.mean();
}

}  // namespace

int main() {
  ResultTable table("Fig 17 migration cost (%) vs NA = 2^i (Mixed)",
                    {"NA", "theta=0.02", "theta=0.08", "theta=0.15",
                     "theta=0.30"});
  for (int i = 1; i <= 13; i += 2) {
    const auto amax = static_cast<std::size_t>(1) << i;
    table.add_row({std::to_string(amax), fmt(run(amax, 0.02), 2),
                   fmt(run(amax, 0.08), 2), fmt(run(amax, 0.15), 2),
                   fmt(run(amax, 0.30), 2)});
  }
  table.print();
  return 0;
}
