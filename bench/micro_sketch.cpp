// micro_sketch — the exact-vs-sketch statistics accuracy harness.
//
// Scenario: a 1M-key Zipf(1.2) synthetic workload (the ROADMAP's
// "millions of users" regime). Both providers ingest the identical
// stream; we then measure
//
//   1. MEMORY   — resident bytes of the statistics structures,
//   2. ACCURACY — cost-weighted relative error of the sketch's dense
//                 synthesized view against the exact one, plus the error
//                 over the top-K hottest keys (which should be ~0: the
//                 hot tier is exact),
//   3. PLAN QUALITY — the Mixed planner runs once on each provider's
//                 snapshot; both plans are evaluated under the EXACT
//                 statistics (the ground truth the system would really
//                 experience): post-rebalance max_theta and migration %.
//
// Output: a human-readable summary on stderr and machine-readable JSON
// on stdout (bench/run_benches.sh redirects it into BENCH_sketch.json).
// Exit status is non-zero if the acceptance gates fail (memory ratio
// ≥ 10x, |theta_sketch − theta_exact| ≤ 5% relative with a 0.005
// absolute floor), so CI can run it as a check.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/consistent_hash.h"
#include "common/zipf.h"
#include "core/controller.h"
#include "core/planners.h"
#include "core/snapshot.h"
#include "core/stats_window.h"
#include "sketch/sketch_stats_window.h"

using namespace skewless;

namespace {

struct PlanEval {
  double theta_before = 0.0;
  double theta_after = 0.0;   // under EXACT costs
  double migration_pct = 0.0; // exact migrated bytes / exact total state
  std::size_t moves = 0;
  std::size_t table_size = 0;
  double generation_ms = 0.0;
};

/// Evaluates `assignment` under the ground-truth snapshot.
PlanEval evaluate(const PartitionSnapshot& truth, const RebalancePlan& plan,
                  double theta_before) {
  PlanEval ev;
  ev.theta_before = theta_before;
  ev.theta_after =
      PartitionSnapshot::max_theta(truth.loads_under(plan.assignment));
  Bytes moved = 0.0;
  for (const KeyMove& mv : plan.moves) {
    moved += truth.state[static_cast<std::size_t>(mv.key)];
  }
  Bytes total_state = 0.0;
  for (const Bytes b : truth.state) total_state += b;
  ev.migration_pct = total_state > 0.0 ? moved / total_state * 100.0 : 0.0;
  ev.moves = plan.moves.size();
  ev.table_size = plan.table_size;
  ev.generation_ms = static_cast<double>(plan.generation_micros) / 1000.0;
  return ev;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults reproduce the acceptance scenario; smaller values are
  // available for quick runs (--keys, --tuples, --intervals).
  std::uint64_t num_keys = 1'000'000;
  std::uint64_t tuples_per_interval = 4'000'000;
  int intervals = 4;
  const InstanceId num_instances = 10;
  const int window = 2;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--keys N] [--tuples N] [--intervals N]\n",
                     argv[0]);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      intervals = static_cast<int>(need());
    } else {
      std::fprintf(stderr, "usage: %s [--keys N] [--tuples N] [--intervals N]\n",
                   argv[0]);
      return 2;
    }
  }

  const double kCostPerTuple = 2.0;   // us
  const double kBytesPerTuple = 16.0;

  std::fprintf(stderr, "generating Zipf(1.2) over %llu keys...\n",
               static_cast<unsigned long long>(num_keys));
  const ZipfDistribution zipf(num_keys, 1.2, true, 0x217f);
  const auto counts = zipf.expected_counts(tuples_per_interval);

  StatsWindow exact(num_keys, window);
  SketchStatsWindow sketch(num_keys, window);  // default SketchStatsConfig

  WallTimer ingest_timer;
  for (int interval = 0; interval < intervals; ++interval) {
    for (std::size_t k = 0; k < counts.size(); ++k) {
      const auto n = counts[k];
      if (n == 0) continue;
      const auto key = static_cast<KeyId>(k);
      const double nd = static_cast<double>(n);
      exact.record(key, kCostPerTuple * nd, kBytesPerTuple * nd, n);
      sketch.record(key, kCostPerTuple * nd, kBytesPerTuple * nd, n);
    }
    exact.roll();
    sketch.roll();
  }
  const double ingest_ms = ingest_timer.elapsed_millis();

  // ---- 1. Memory.
  const std::size_t exact_bytes = exact.memory_bytes();
  const std::size_t sketch_bytes = sketch.memory_bytes();
  const double memory_ratio = static_cast<double>(exact_bytes) /
                              static_cast<double>(sketch_bytes);

  // ---- 2. Accuracy of the synthesized dense view.
  std::vector<Cost> cost_e, cost_s;
  std::vector<Bytes> state_e, state_s;
  exact.synthesize_dense(cost_e, state_e);
  sketch.synthesize_dense(cost_s, state_s);

  double weighted_err_num = 0.0, weighted_err_den = 0.0;
  for (std::size_t k = 0; k < cost_e.size(); ++k) {
    weighted_err_num += std::abs(cost_s[k] - cost_e[k]);
    weighted_err_den += cost_e[k];
  }
  const double weighted_cost_err =
      weighted_err_den > 0.0 ? weighted_err_num / weighted_err_den : 0.0;

  const std::uint64_t kTop = 1000;
  double top_err_num = 0.0, top_err_den = 0.0;
  for (std::uint64_t r = 0; r < kTop && r < num_keys; ++r) {
    const auto k = static_cast<std::size_t>(zipf.key_at_rank(r));
    top_err_num += std::abs(cost_s[k] - cost_e[k]);
    top_err_den += cost_e[k];
  }
  const double top1000_cost_err =
      top_err_den > 0.0 ? top_err_num / top_err_den : 0.0;

  // ---- 3. Plan quality: Mixed on each view, both judged by the truth.
  PartitionSnapshot truth;
  truth.num_instances = num_instances;
  truth.cost = std::move(cost_e);
  truth.state = std::move(state_e);
  {
    const ConsistentHashRing ring(num_instances, 128, 21);
    truth.hash_dest.resize(truth.cost.size());
    for (std::size_t k = 0; k < truth.cost.size(); ++k) {
      truth.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
    }
  }
  truth.current = truth.hash_dest;

  PartitionSnapshot approx = truth;  // same routing view...
  approx.cost = std::move(cost_s);   // ...sketch-synthesized statistics
  approx.state = std::move(state_s);

  PlannerConfig pcfg;
  pcfg.theta_max = 0.08;
  pcfg.max_table_entries = 3000;

  const double theta_before =
      PartitionSnapshot::max_theta(truth.current_loads());

  MixedPlanner planner_e, planner_s;
  std::fprintf(stderr, "planning (exact view)...\n");
  const RebalancePlan plan_e = planner_e.plan(truth, pcfg);
  std::fprintf(stderr, "planning (sketch view)...\n");
  const RebalancePlan plan_s = planner_s.plan(approx, pcfg);

  const PlanEval ev_e = evaluate(truth, plan_e, theta_before);
  const PlanEval ev_s = evaluate(truth, plan_s, theta_before);

  // ---- Acceptance gates.
  const double theta_delta = std::abs(ev_s.theta_after - ev_e.theta_after);
  const double theta_tolerance = std::max(0.05 * ev_e.theta_after, 0.005);
  const bool pass_memory = memory_ratio >= 10.0;
  const bool pass_theta = theta_delta <= theta_tolerance;

  std::fprintf(stderr,
               "\n%-28s %15s %15s\n"
               "%-28s %15zu %15zu\n"
               "%-28s %15.4f %15.4f\n"
               "%-28s %15.4f %15.4f\n"
               "%-28s %15.2f %15.2f\n"
               "%-28s %15zu %15zu\n"
               "%-28s %15zu %15zu\n",
               "", "exact", "sketch",
               "stats memory (bytes)", exact_bytes, sketch_bytes,
               "theta before", ev_e.theta_before, ev_s.theta_before,
               "theta after (true eval)", ev_e.theta_after, ev_s.theta_after,
               "migration % (true eval)", ev_e.migration_pct,
               ev_s.migration_pct,
               "moves", ev_e.moves, ev_s.moves,
               "table size", ev_e.table_size, ev_s.table_size);
  std::fprintf(stderr,
               "memory ratio %.1fx (gate >= 10x: %s), theta delta %.4f "
               "(gate <= %.4f: %s)\n"
               "weighted cost err %.4f, top-1000 cost err %.6f, heavy keys "
               "%zu, ingest %.0f ms\n",
               memory_ratio, pass_memory ? "PASS" : "FAIL", theta_delta,
               theta_tolerance, pass_theta ? "PASS" : "FAIL",
               weighted_cost_err, top1000_cost_err, sketch.heavy_count(),
               ingest_ms);

  // ---- Machine-readable record (stdout).
  std::printf(
      "{\n"
      "  \"bench\": \"micro_sketch\",\n"
      "%s"
      "  \"workload\": {\"distribution\": \"zipf\", \"skew\": 1.2, "
      "\"keys\": %llu, \"tuples_per_interval\": %llu, \"intervals\": %d, "
      "\"window\": %d, \"instances\": %d},\n"
      "  \"memory\": {\"exact_bytes\": %zu, \"sketch_bytes\": %zu, "
      "\"ratio\": %.2f},\n"
      "  \"accuracy\": {\"weighted_cost_rel_err\": %.6f, "
      "\"top1000_cost_rel_err\": %.8f, \"heavy_keys\": %zu},\n"
      "  \"plan_quality\": {\n"
      "    \"theta_before\": %.6f,\n"
      "    \"exact\":  {\"theta_after\": %.6f, \"migration_pct\": %.4f, "
      "\"moves\": %zu, \"table_size\": %zu, \"generation_ms\": %.2f},\n"
      "    \"sketch\": {\"theta_after\": %.6f, \"migration_pct\": %.4f, "
      "\"moves\": %zu, \"table_size\": %zu, \"generation_ms\": %.2f},\n"
      "    \"theta_delta\": %.6f, \"theta_tolerance\": %.6f\n"
      "  },\n"
      "  \"gates\": {\"memory_ratio_ge_10x\": %s, "
      "\"theta_within_tolerance\": %s}\n"
      "}\n",
      bench::env_json().c_str(),
      static_cast<unsigned long long>(num_keys),
      static_cast<unsigned long long>(tuples_per_interval), intervals, window,
      static_cast<int>(num_instances), exact_bytes, sketch_bytes, memory_ratio,
      weighted_cost_err, top1000_cost_err, sketch.heavy_count(),
      ev_e.theta_before, ev_e.theta_after, ev_e.migration_pct, ev_e.moves,
      ev_e.table_size, ev_e.generation_ms, ev_s.theta_after,
      ev_s.migration_pct, ev_s.moves, ev_s.table_size, ev_s.generation_ms,
      theta_delta, theta_tolerance, pass_memory ? "true" : "false",
      pass_theta ? "true" : "false");

  return (pass_memory && pass_theta) ? 0 : 1;
}
