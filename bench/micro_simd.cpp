// micro_simd — the SIMD kernel layer's gate bench: vectorized sketch
// kernels vs the scalar reference, plus the bit-identity digests that
// justify dispatching them at all.
//
// Measured (within-round ratios, max over rounds — machine drift between
// rounds cancels, and interference only ever slows a side down):
//   * add_strided — CountMinSketch::add_interleaved's inner loop, the
//     boundary-merge bottleneck. Gate: >= 2x scalar on AVX2 hosts.
//   * make_probes — the batched K–M probe generation feeding
//     WorkerSketchSlab::add_batch. Gate: >= 1.5x scalar.
// Both speedup gates are honestly SKIPPED (recorded in the JSON) when
// the host lacks AVX2 or has a single hardware thread; the BIT-IDENTITY
// gates are NEVER skipped — a vector kernel that returns different bytes
// than the scalar loop is wrong on every host.
//
// Emits a JSON report to stdout (bench/run_benches.sh redirects it into
// BENCH_simd.json) and gates by exit code.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "sketch/simd/sketch_kernels.h"

namespace {

using skewless::Xoshiro256;
using namespace skewless::simd;

constexpr std::size_t kWidth = 1 << 15;  // 32768 cells/row
constexpr std::size_t kDepth = 4;
constexpr std::size_t kCells = kWidth * kDepth;
constexpr std::size_t kStride = 4;  // the fused-cell layout's stride
constexpr std::size_t kBatch = 1 << 14;
constexpr int kInterleavedIters = 60;
constexpr int kProbeIters = 400;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// FNV-1a over raw bytes: the digest both tiers must agree on.
std::uint64_t digest(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return h;
}

struct Workload {
  std::vector<double> dst;
  std::vector<double> interleaved;  // kCells * kStride source
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> h1, h2;
};

Workload make_workload() {
  Workload w;
  Xoshiro256 rng(0x51d5eedULL);
  w.dst.resize(kCells);
  w.interleaved.resize(kCells * kStride);
  for (double& v : w.dst) v = static_cast<double>(rng.next_below(1000));
  for (double& v : w.interleaved) {
    v = static_cast<double>(rng.next_below(1000));
  }
  w.keys.resize(kBatch);
  for (auto& k : w.keys) k = rng.next();
  w.h1.resize(kBatch);
  w.h2.resize(kBatch);
  return w;
}

/// ms per kInterleavedIters add_strided sweeps with `k` (dst reset each
/// run so both tiers do identical work on identical values).
double time_interleaved(const SketchKernels& k, Workload& w,
                        const std::vector<double>& dst0) {
  w.dst = dst0;
  const double t0 = now_ms();
  for (int it = 0; it < kInterleavedIters; ++it) {
    k.add_strided(w.dst.data(), w.interleaved.data(), kStride, kCells);
  }
  return now_ms() - t0;
}

double time_probes(const SketchKernels& k, Workload& w) {
  const double t0 = now_ms();
  for (int it = 0; it < kProbeIters; ++it) {
    k.make_probes(w.keys.data(), kBatch,
                  0x5eedc0deULL + static_cast<std::uint64_t>(it),
                  w.h1.data(), w.h2.data());
  }
  return now_ms() - t0;
}

/// Runs every kernel op under `k` on a deterministic workload and
/// digests all outputs together.
std::uint64_t op_digest(const SketchKernels& k) {
  Xoshiro256 rng(0xd16e57ULL);
  std::vector<double> cells(kCells);
  std::vector<double> src(kCells * kStride);
  for (double& v : cells) v = static_cast<double>(rng.next_below(512));
  for (double& v : src) v = static_cast<double>(rng.next_below(512));
  std::vector<std::uint64_t> keys(kBatch);
  for (auto& key : keys) key = rng.next();
  std::vector<std::uint64_t> h1(kBatch), h2(kBatch), hashes(kBatch);

  k.make_probes(keys.data(), kBatch, 0x5eedULL, h1.data(), h2.data());
  k.hash64_batch(keys.data(), kBatch, 0xabcdefULL, hashes.data());
  k.add_strided(cells.data(), src.data(), kStride, kCells);
  k.add_cells(cells.data(), src.data(), kCells);
  k.sub_cells_clamped(cells.data(), src.data() + kCells, kCells);
  for (std::size_t i = 0; i < 64; ++i) {
    k.fold_fused_rows(cells.data(), kWidth / 4, kWidth / 4 - 1, kDepth,
                      h1[i], h2[i], 1.5, 1.0, 8.0);
  }
  double est_acc = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    est_acc += k.estimate_min(cells.data(), kWidth, kWidth - 1, kDepth,
                              h1[i], h2[i]);
  }
  std::uint64_t d = digest(cells.data(), cells.size() * sizeof(double));
  d ^= digest(h1.data(), h1.size() * sizeof(std::uint64_t));
  d ^= digest(h2.data(), h2.size() * sizeof(std::uint64_t));
  d ^= digest(hashes.data(), hashes.size() * sizeof(std::uint64_t));
  d ^= digest(&est_acc, sizeof(est_acc));
  return d;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const KernelTier max_tier = max_supported_tier();
  const SketchKernels& scalar = scalar_kernels();
  const SketchKernels& best = kernels_for(max_tier);
  std::fprintf(stderr,
               "simd kernels: max tier %s, active tier %s, %u hardware "
               "threads\n",
               best.name, active_kernels().name, hw);

  // Bit-identity digests — every selectable tier must reproduce the
  // scalar bytes exactly. Never skipped.
  const std::uint64_t scalar_digest = op_digest(scalar);
  bool identity_ok = true;
  for (int t = 0; t <= static_cast<int>(max_tier); ++t) {
    const SketchKernels& k = kernels_for(static_cast<KernelTier>(t));
    const std::uint64_t d = op_digest(k);
    const bool ok = d == scalar_digest;
    identity_ok = identity_ok && ok;
    std::fprintf(stderr, "bit-identity %-6s digest %016llx %s\n", k.name,
                 static_cast<unsigned long long>(d), ok ? "PASS" : "FAIL");
  }

  Workload w = make_workload();
  const std::vector<double> dst0 = w.dst;
  constexpr int kRounds = 2;
  constexpr int kMaxRounds = 5;
  double interleaved_speedup = 0.0;
  double probe_speedup = 0.0;
  double best_scalar_interleaved = 0.0, best_vector_interleaved = 0.0;
  double best_scalar_probes = 0.0, best_vector_probes = 0.0;
  const bool speedup_skipped = max_tier < KernelTier::kAvx2 || hw < 2;
  for (int round = 0; round < kMaxRounds; ++round) {
    if (round >= kRounds &&
        (speedup_skipped ||
         (interleaved_speedup >= 2.0 && probe_speedup >= 1.5))) {
      break;
    }
    const double si = time_interleaved(scalar, w, dst0);
    const double vi = time_interleaved(best, w, dst0);
    const double sp = time_probes(scalar, w);
    const double vp = time_probes(best, w);
    std::fprintf(stderr,
                 "round %d: interleaved scalar %.2f ms vs %s %.2f ms, "
                 "probes scalar %.2f ms vs %s %.2f ms\n",
                 round, si, best.name, vi, sp, best.name, vp);
    if (vi > 0.0) interleaved_speedup = std::max(interleaved_speedup, si / vi);
    if (vp > 0.0) probe_speedup = std::max(probe_speedup, sp / vp);
    const auto keep_min = [round](double& slot, double v) {
      if (round == 0 || v < slot) slot = v;
    };
    keep_min(best_scalar_interleaved, si);
    keep_min(best_vector_interleaved, vi);
    keep_min(best_scalar_probes, sp);
    keep_min(best_vector_probes, vp);
  }

  const bool interleaved_ok = speedup_skipped || interleaved_speedup >= 2.0;
  const bool probes_ok = speedup_skipped || probe_speedup >= 1.5;
  std::fprintf(
      stderr,
      "interleaved %.2fx (gate >= 2x: %s), probes %.2fx (gate >= 1.5x: %s), "
      "bit-identity: %s\n",
      interleaved_speedup,
      speedup_skipped ? "SKIPPED" : (interleaved_ok ? "PASS" : "FAIL"),
      probe_speedup,
      speedup_skipped ? "SKIPPED" : (probes_ok ? "PASS" : "FAIL"),
      identity_ok ? "PASS" : "FAIL");
  if (speedup_skipped) {
    std::fprintf(stderr,
                 "speedup gates skipped: %s (identity gates still "
                 "enforced)\n",
                 max_tier < KernelTier::kAvx2 ? "host lacks AVX2 kernels"
                                              : "single hardware thread");
  }

  std::printf(
      "{\n"
      "  \"bench\": \"micro_simd\",\n"
      "  \"workload\": {\"cells\": %zu, \"stride\": %zu, \"batch\": %zu, "
      "\"interleaved_iters\": %d, \"probe_iters\": %d},\n"
      "  \"hardware_threads\": %u,\n"
      "  \"kernel_tier\": \"%s\",\n"
      "  \"max_tier\": \"%s\",\n"
      "  \"interleaved_scalar_ms\": %.3f,\n"
      "  \"interleaved_vector_ms\": %.3f,\n"
      "  \"probes_scalar_ms\": %.3f,\n"
      "  \"probes_vector_ms\": %.3f,\n"
      "  \"interleaved_speedup\": %.3f,\n"
      "  \"probe_speedup\": %.3f,\n"
      "  \"gates\": {\"interleaved_speedup_ge_2x\": %s, "
      "\"probe_speedup_ge_1p5x\": %s, \"speedup_skipped\": %s, "
      "\"bit_identity\": %s}\n"
      "}\n",
      kCells, kStride, kBatch, kInterleavedIters, kProbeIters, hw,
      active_kernels().name, best.name, best_scalar_interleaved,
      best_vector_interleaved, best_scalar_probes, best_vector_probes,
      interleaved_speedup, probe_speedup, interleaved_ok ? "true" : "false",
      probes_ok ? "true" : "false", speedup_skipped ? "true" : "false",
      identity_ok ? "true" : "false");

  return (identity_ok && interleaved_ok && probes_ok) ? 0 : 1;
}
