// Fig. 9 — scheduling efficiency and migration cost with varying
// imbalance tolerance θmax ∈ {0.02 .. 0.5}, Mixed vs MinTable, w ∈ {1,5}.
//
// Expected shape (paper): larger θmax -> faster planning and less
// migration; MinTable migrates ~3x more than Mixed at equal θmax; even at
// θmax = 0.02 the plan generates well under a second.
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

DriverResult run(double theta_max, int window, bool mixed) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 100'000;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 1.0;
  opts.seed = 13;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.theta_max = theta_max;
  dopts.max_table_entries = 3000;
  dopts.window = window;
  dopts.intervals = 12;
  PlannerPtr planner = mixed ? PlannerPtr(std::make_unique<MixedPlanner>())
                             : PlannerPtr(std::make_unique<MinTablePlanner>());
  return drive_planner(source, std::move(planner), dopts);
}

}  // namespace

int main() {
  ResultTable time_table("Fig 9(a) avg generation time (ms) vs theta_max",
                         {"theta_max", "Mixed", "MinTable"});
  ResultTable cost_table(
      "Fig 9(b) migration cost (%) vs theta_max",
      {"theta_max", "Mixed w=1", "MinTable w=1", "Mixed w=5",
       "MinTable w=5"});

  for (const double theta : {0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.2, 0.3,
                             0.4, 0.5}) {
    const auto mixed_w1 = run(theta, 1, true);
    const auto mintable_w1 = run(theta, 1, false);
    const auto mixed_w5 = run(theta, 5, true);
    const auto mintable_w5 = run(theta, 5, false);
    time_table.add_row({fmt(theta, 2), fmt(mixed_w1.generation_ms.mean(), 2),
                        fmt(mintable_w1.generation_ms.mean(), 2)});
    cost_table.add_row({fmt(theta, 2), fmt(mixed_w1.migration_pct.mean(), 2),
                        fmt(mintable_w1.migration_pct.mean(), 2),
                        fmt(mixed_w5.migration_pct.mean(), 2),
                        fmt(mintable_w5.migration_pct.mean(), 2)});
  }
  time_table.print();
  cost_table.print();
  return 0;
}
