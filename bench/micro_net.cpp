// micro_net — the socket engine's acceptance harness.
//
// Two claims are gated, both against the in-process engines the net
// engine must not regress:
//
//   1. THROUGHPUT — a 1M-key Zipf(1.2) controller+sketch run through N
//      forked worker PROCESSES on loopback sockets sustains >= 0.5x the
//      throughput of the same run through ThreadedEngine's in-process
//      worker threads. (Half is the honest bar: every tuple is
//      serialized, crosses two kernel socket buffers and is decoded —
//      work the in-process engine never does.)
//   2. CONTROL LATENCY — with the DATA channel saturated (a deliberately
//      slow operator leaves the kernel socket buffers full of undrained
//      batches), a sparse plan broadcast on the CONTROL channel
//      round-trips to every worker and back without waiting for the
//      data backlog: RTT must be at least 5x smaller than the time the
//      backlog takes to drain. This is the force_push lesson measured
//      on real sockets — a separate channel, not a priority flag.
//
// The throughput section also re-checks the headline determinism
// contract at scale: the threaded and net runs must finish with the
// SAME plan-history digest (they planned byte-identical plans from
// byte-identical absorbed statistics).
//
// Output: summary on stderr, JSON on stdout (run_benches.sh redirects
// into BENCH_net.json). Non-zero exit if any gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/controller.h"
#include "core/planners.h"
#include "engine/threaded_engine.h"
#include "net/net_engine.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

struct Scenario {
  std::uint64_t num_keys = 1'000'000;
  std::uint64_t tuples_per_interval = 2'000'000;
  int intervals = 5;
  InstanceId workers = 4;
  std::size_t batch = 1024;
  SketchStatsConfig sketch;
};

struct ModeResult {
  double steady_tps = 0.0;
  double best_interval_tps = 0.0;
  double total_wall_ms = 0.0;
  std::uint64_t processed = 0;
  std::uint64_t plan_digest = 0;
  std::size_t rebalances = 0;
  std::uint64_t wire_bytes = 0;  // net only
};

std::unique_ptr<Controller> make_controller(const Scenario& sc) {
  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.08;
  ccfg.stats_mode = StatsMode::kSketch;
  ccfg.sketch = sc.sketch;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(sc.workers), 0),
      std::make_unique<MixedPlanner>(), ccfg, sc.num_keys);
}

ZipfFluctuatingSource make_source(const Scenario& sc) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = sc.num_keys;
  opts.skew = 1.2;
  opts.tuples_per_interval = sc.tuples_per_interval;
  opts.fluctuation = 0.0;
  opts.fluctuate_every = sc.intervals + 1;  // stable distribution
  opts.seed = 0x5eed;
  return ZipfFluctuatingSource(opts);
}

template <typename Report>
void fold_reports(const std::vector<Report>& reports, int intervals,
                  ModeResult& res) {
  double steady_wall_ms = 0.0;
  std::uint64_t steady_processed = 0;
  for (const auto& r : reports) {
    res.processed += r.processed;
    res.total_wall_ms += r.wall_ms;
    if (r.interval > 0) {
      steady_wall_ms += r.wall_ms;
      steady_processed += r.processed;
      if (r.interval < intervals - 1) {
        res.best_interval_tps =
            std::max(res.best_interval_tps, r.throughput_tps);
      }
    }
  }
  res.steady_tps = steady_wall_ms > 0.0
                       ? static_cast<double>(steady_processed) /
                             (steady_wall_ms / 1000.0)
                       : 0.0;
}

ModeResult run_threaded(const Scenario& sc) {
  auto source = make_source(sc);
  ThreadedConfig cfg;
  cfg.num_workers = sc.workers;
  cfg.batch_size = sc.batch;
  cfg.stats_mode = StatsMode::kSketch;
  cfg.sketch = sc.sketch;
  ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                        make_controller(sc));
  const auto reports = engine.run(source, sc.intervals, /*seed=*/1);
  ModeResult res;
  fold_reports(reports, sc.intervals, res);
  res.plan_digest = engine.controller()->plan_history_digest();
  res.rebalances = engine.controller()->rebalance_count();
  engine.shutdown();
  return res;
}

ModeResult run_net(const Scenario& sc) {
  auto source = make_source(sc);
  NetConfig cfg;
  cfg.batch_size = sc.batch;
  // This bench gates the raw engine-vs-engine ratio; the per-epoch
  // checkpoint and replay-recording overhead is micro_fault's subject.
  cfg.recovery_enabled = false;
  NetEngine engine(cfg, std::make_shared<WordCountLogic>(),
                   make_controller(sc));
  const auto reports = engine.run(source, sc.intervals, /*seed=*/1);
  ModeResult res;
  fold_reports(reports, sc.intervals, res);
  res.plan_digest = engine.controller()->plan_history_digest();
  res.rebalances = engine.controller()->rebalance_count();
  for (const auto& r : reports) {
    res.wire_bytes += r.data_wire_bytes + r.ctrl_wire_bytes;
  }
  engine.shutdown();
  if (!engine.ok()) {
    std::fprintf(stderr, "net engine failed: %s\n", engine.error().c_str());
    std::exit(1);
  }
  return res;
}

/// WordCount that BUSY-SPINS per tuple: makes the workers the
/// bottleneck, so routed batches pile up in the kernel socket buffers —
/// the saturated-data-channel condition the control-latency gate needs.
class SpinWordCountLogic final : public OperatorLogic {
 public:
  explicit SpinWordCountLogic(double spin_us) : spin_us_(spin_us) {}

  [[nodiscard]] std::unique_ptr<KeyState> make_state() const override {
    return std::make_unique<WordCountState>();
  }
  [[nodiscard]] std::unique_ptr<KeyState> deserialize_state(
      ByteReader& in) const override {
    return WordCountState::deserialize(in);
  }
  Cost process(const Tuple& tuple, KeyState& state,
               Collector& /*out*/) const override {
    auto& wc = static_cast<WordCountState&>(state);
    wc.add(tuple.emit_micros, tuple.value);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::nanoseconds(static_cast<long long>(spin_us_ * 1000.0));
    while (std::chrono::steady_clock::now() < deadline) {
    }
    return spin_us_;
  }

 private:
  double spin_us_;
};

struct ControlProbe {
  double rtt_ms = 0.0;    // plan broadcast round trip, all workers acked
  double drain_ms = 0.0;  // boundary completion after the probe
};

/// Saturates the data channel of a small net engine with slow workers,
/// then broadcasts a plan mid-interval and measures (a) the control
/// round-trip and (b) how long the queued data actually took to drain.
ControlProbe run_control_probe() {
  const InstanceId kWorkers = 2;
  const std::uint64_t kKeys = 2'000;
  const std::uint64_t kTuples = 30'000;
  Scenario sc;
  sc.workers = kWorkers;
  sc.num_keys = kKeys;
  sc.sketch.heavy_capacity = 256;

  NetConfig cfg;
  cfg.batch_size = 64;
  cfg.recovery_enabled = false;
  NetEngine engine(cfg, std::make_shared<SpinWordCountLogic>(/*spin_us=*/20.0),
                   make_controller(sc));

  // One interval of tuples, routed but NOT sealed. With 20 us/tuple
  // workers the drain rate is ~50k tuples/s/worker, so by the time
  // ingest returns (last byte accepted by the kernel), each worker still
  // has a socket buffer full of undrained batches.
  std::vector<Tuple> tuples(kTuples);
  Xoshiro256 rng(7);
  for (auto& t : tuples) {
    t.key = rng.next() % kKeys;
    t.value = 1;
  }
  auto report = engine.ingest(tuples);

  // The probe: a sparse plan down every CONTROL channel. It must come
  // back while the data channels are still backlogged.
  RebalancePlan plan;
  plan.assignment.assign(static_cast<std::size_t>(kWorkers), 0);
  for (KeyId k = 0; k < 32; ++k) {
    KeyMove move;
    move.key = k;
    move.from = 0;
    move.to = 1;
    move.state_bytes = 64.0;
    plan.moves.push_back(move);
  }
  ControlProbe probe;
  probe.rtt_ms = engine.broadcast_plan(plan, /*seq=*/1);

  WallTimer drain;
  engine.finish_interval(report);
  probe.drain_ms = static_cast<double>(drain.elapsed_micros()) / 1000.0;
  engine.shutdown();
  if (!engine.ok() || probe.rtt_ms < 0.0) {
    std::fprintf(stderr, "control probe failed: %s\n",
                 engine.error().c_str());
    std::exit(1);
  }
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  sc.sketch.epsilon = 1e-3;  // same geometry rationale as micro_threaded
  sc.sketch.delta = 0.05;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [--keys N] [--tuples N] [--intervals N] "
                 "[--workers N] [--batch N]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) usage();
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      sc.num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      sc.tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      sc.intervals = static_cast<int>(need());
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      sc.workers = static_cast<InstanceId>(need());
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      sc.batch = static_cast<std::size_t>(need());
    } else {
      usage();
    }
  }
  if (sc.intervals < 4 || sc.workers < 1) {
    std::fprintf(stderr, "need --intervals >= 4 and --workers >= 1\n");
    return 2;
  }

  std::fprintf(stderr,
               "net-vs-threaded %llu-key Zipf(1.2), %llu tuples/interval, "
               "%d intervals, %d workers\n",
               static_cast<unsigned long long>(sc.num_keys),
               static_cast<unsigned long long>(sc.tuples_per_interval),
               sc.intervals, static_cast<int>(sc.workers));

  // Alternating rounds, paired within a round so machine drift cancels
  // out of the ratio; adaptive extension because interference only ever
  // LOWERS the estimators (see micro_threaded for the full argument).
  constexpr int kRounds = 3;
  constexpr int kMaxRounds = 6;
  ModeResult threaded, net;
  double tput_ratio = 0.0;
  double global_best_t = 0.0;
  double global_best_n = 0.0;
  bool digests_match = true;
  for (int round = 0; round < kMaxRounds; ++round) {
    if (round >= kRounds && tput_ratio >= 0.5) break;
    std::fprintf(stderr, "round %d: threaded engine...\n", round);
    const ModeResult t = run_threaded(sc);
    std::fprintf(stderr, "round %d: net engine (forked workers)...\n", round);
    const ModeResult n = run_net(sc);
    digests_match &= t.plan_digest == n.plan_digest &&
                     t.rebalances == n.rebalances && t.rebalances > 0;
    if (t.best_interval_tps > 0.0) {
      tput_ratio =
          std::max(tput_ratio, n.best_interval_tps / t.best_interval_tps);
    }
    global_best_t = std::max(global_best_t, t.best_interval_tps);
    global_best_n = std::max(global_best_n, n.best_interval_tps);
    if (global_best_t > 0.0) {
      tput_ratio = std::max(tput_ratio, global_best_n / global_best_t);
    }
    if (round == 0 || t.steady_tps > threaded.steady_tps) threaded = t;
    if (round == 0 || n.steady_tps > net.steady_tps) net = n;
  }

  // Control-latency probe: best RTT over a few attempts against the
  // LARGEST observed drain (the backlog is identical per attempt; a
  // long drain only strengthens the denominator).
  std::fprintf(stderr, "control-latency probe (saturated data channel)...\n");
  double best_rtt_ms = 1e18;
  double drain_ms = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const ControlProbe probe = run_control_probe();
    best_rtt_ms = std::min(best_rtt_ms, probe.rtt_ms);
    drain_ms = std::max(drain_ms, probe.drain_ms);
  }

  const std::uint64_t expected =
      sc.tuples_per_interval * static_cast<std::uint64_t>(sc.intervals);
  const bool pass_processed =
      threaded.processed == expected && net.processed == expected;
  const bool pass_tput = tput_ratio >= 0.5;
  const bool pass_digest = digests_match;
  const bool pass_ctrl = best_rtt_ms * 5.0 <= drain_ms;

  std::fprintf(stderr,
               "\n%-28s %15s %15s\n"
               "%-28s %15.0f %15.0f\n"
               "%-28s %15.0f %15.0f\n"
               "%-28s %15.0f %15.0f\n"
               "%-28s %15s %15llu\n",
               "", "threaded", "net",
               "steady throughput (t/s)", threaded.steady_tps, net.steady_tps,
               "best interval (t/s)", threaded.best_interval_tps,
               net.best_interval_tps,
               "total wall (ms)", threaded.total_wall_ms, net.total_wall_ms,
               "wire bytes", "-",
               static_cast<unsigned long long>(net.wire_bytes));
  std::fprintf(stderr,
               "throughput ratio %.3f (gate >= 0.5: %s), plan digests "
               "%016llx/%016llx (gate equal: %s), control rtt %.3f ms vs "
               "drain %.1f ms (gate rtt*5 <= drain: %s), processed %s\n",
               tput_ratio, pass_tput ? "PASS" : "FAIL",
               static_cast<unsigned long long>(threaded.plan_digest),
               static_cast<unsigned long long>(net.plan_digest),
               pass_digest ? "PASS" : "FAIL", best_rtt_ms, drain_ms,
               pass_ctrl ? "PASS" : "FAIL",
               pass_processed ? "PASS" : "FAIL");

  std::printf(
      "{\n"
      "  \"bench\": \"micro_net\",\n"
      "%s"
      "  \"workload\": {\"distribution\": \"zipf\", \"skew\": 1.2, "
      "\"keys\": %llu, \"tuples_per_interval\": %llu, \"intervals\": %d, "
      "\"workers\": %d, \"batch\": %zu},\n"
      "  \"threaded\": {\"steady_tps\": %.0f, \"best_interval_tps\": %.0f, "
      "\"wall_ms\": %.1f, \"processed\": %llu, \"plan_digest\": \"%016llx\", "
      "\"rebalances\": %zu},\n"
      "  \"net\": {\"steady_tps\": %.0f, \"best_interval_tps\": %.0f, "
      "\"wall_ms\": %.1f, \"processed\": %llu, \"plan_digest\": \"%016llx\", "
      "\"rebalances\": %zu, \"wire_bytes\": %llu},\n"
      "  \"throughput_ratio\": %.3f,\n"
      "  \"control\": {\"plan_rtt_ms\": %.3f, \"data_drain_ms\": %.1f},\n"
      "  \"gates\": {\"net_tput_ge_0_5x_threaded\": %s, "
      "\"plan_digests_identical\": %s, \"ctrl_rtt_5x_under_drain\": %s, "
      "\"all_tuples_processed\": %s}\n"
      "}\n",
      bench::env_json().c_str(),
      static_cast<unsigned long long>(sc.num_keys),
      static_cast<unsigned long long>(sc.tuples_per_interval), sc.intervals,
      static_cast<int>(sc.workers), sc.batch, threaded.steady_tps,
      threaded.best_interval_tps, threaded.total_wall_ms,
      static_cast<unsigned long long>(threaded.processed),
      static_cast<unsigned long long>(threaded.plan_digest),
      threaded.rebalances, net.steady_tps, net.best_interval_tps,
      net.total_wall_ms, static_cast<unsigned long long>(net.processed),
      static_cast<unsigned long long>(net.plan_digest), net.rebalances,
      static_cast<unsigned long long>(net.wire_bytes), tput_ratio,
      best_rtt_ms, drain_ms, pass_tput ? "true" : "false",
      pass_digest ? "true" : "false", pass_ctrl ? "true" : "false",
      pass_processed ? "true" : "false");

  return (pass_tput && pass_digest && pass_ctrl && pass_processed) ? 0 : 1;
}
