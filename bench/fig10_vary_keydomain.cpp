// Fig. 10 — scheduling efficiency and migration cost with varying
// key-domain size K ∈ {5e3, 1e4, 1e5, 1e6}, Mixed vs MinTable, w ∈ {1,5}.
//
// Expected shape (paper): generation time grows with K (Mixed somewhat
// above MinTable at the top end), migration cost decreases with K (larger
// domains hash more evenly, Fig. 7b) and decreases with w.
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

DriverResult run(std::uint64_t num_keys, int window, bool mixed) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = num_keys;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 1.0;
  opts.seed = 17;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.theta_max = 0.08;
  dopts.max_table_entries = 3000;
  dopts.window = window;
  dopts.intervals = 8;
  PlannerPtr planner = mixed ? PlannerPtr(std::make_unique<MixedPlanner>())
                             : PlannerPtr(std::make_unique<MinTablePlanner>());
  return drive_planner(source, std::move(planner), dopts);
}

}  // namespace

int main() {
  ResultTable time_table("Fig 10(a) avg generation time (ms) vs K",
                         {"K", "Mixed", "MinTable"});
  ResultTable cost_table(
      "Fig 10(b) migration cost (%) vs K",
      {"K", "Mixed w=1", "MinTable w=1", "Mixed w=5", "MinTable w=5"});

  for (const std::uint64_t k : {5'000ULL, 10'000ULL, 100'000ULL,
                                1'000'000ULL}) {
    const auto mixed_w1 = run(k, 1, true);
    const auto mintable_w1 = run(k, 1, false);
    const auto mixed_w5 = run(k, 5, true);
    const auto mintable_w5 = run(k, 5, false);
    time_table.add_row({std::to_string(k),
                        fmt(mixed_w1.generation_ms.mean(), 2),
                        fmt(mintable_w1.generation_ms.mean(), 2)});
    cost_table.add_row({std::to_string(k),
                        fmt(mixed_w1.migration_pct.mean(), 2),
                        fmt(mintable_w1.migration_pct.mean(), 2),
                        fmt(mixed_w5.migration_pct.mean(), 2),
                        fmt(mintable_w5.migration_pct.mean(), 2)});
  }
  time_table.print();
  cost_table.print();
  return 0;
}
