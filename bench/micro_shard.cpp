// micro_shard — the sharded-controller boundary-merge scaling harness.
//
// Scenario: a 10M-key domain streamed into W = 4 worker
// ShardedWorkerSlabs (50% of tuples on a 4096-key hot head, the rest
// uniform over the domain), then the interval boundary driven directly —
// absorb_slab for every worker, roll, synthesize_compact — against a
// ShardedSketchStats with S ∈ {1, 2, 4, 8} shards. The slab FILL is
// untimed (it is the workers' steady-state cost, identical machinery at
// every S); the MERGE is what sharding parallelizes, and what this bench
// times.
//
// Measured, per shard count:
//   1. MERGE      — wall time of absorb(all W slabs) + roll, minimum
//                   over the steady intervals (boundary work is
//                   identical each interval, so spread is scheduler
//                   noise and the minimum is the intrinsic cost);
//   2. COMPACT    — wall time of synthesize_compact (the planner's
//                   snapshot view, O(k + S·N_D));
//   3. MEMORY     — provider + slab bytes (should stay roughly flat
//                   across S: per-shard geometry divides by S);
//   4. FIDELITY   — total windowed state must agree with S = 1 exactly
//                   (integer masses; sharding is a partition, not an
//                   approximation) and the heavy tier must be populated.
//
// Gate: merge(S=1) / merge(S=4) >= 2x — the near-linear boundary-merge
// scaling claim, demonstrated with the within-round ratio (configurations
// run back-to-back; machine drift cancels). The pool cannot beat the
// hardware: on a single-core host the gate is reported as SKIPPED (and
// the JSON says so) instead of failing — there is no parallelism to
// demonstrate, the same way the TSan leg skips fork-based suites.
//
// Output: human-readable summary on stderr, machine-readable JSON on
// stdout (bench/run_benches.sh redirects it into BENCH_shard.json).
// Non-zero exit if a gate fails, so CI can run it as a check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/sharded_controller.h"
#include "sketch/sharded_worker_slab.h"

using namespace skewless;

namespace {

struct Scenario {
  std::uint64_t num_keys = 10'000'000;
  std::uint64_t tuples_per_interval = 2'000'000;
  int intervals = 4;
  std::size_t workers = 4;
  std::size_t hot_keys = 4096;
  SketchStatsConfig sketch;
};

struct ShardResult {
  std::size_t shards = 1;
  double merge_ms = 0.0;    // min over steady intervals
  double compact_ms = 0.0;  // min over steady intervals
  std::size_t memory_bytes = 0;
  std::size_t heavy_keys = 0;
  double windowed_state = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

ShardResult run_config(const Scenario& sc, std::size_t shards) {
  ShardedSketchStats stats(sc.num_keys, /*window=*/2, sc.sketch, shards);
  std::vector<ShardedWorkerSlab> slabs;
  slabs.reserve(static_cast<std::size_t>(sc.workers));
  for (std::size_t w = 0; w < sc.workers; ++w) {
    slabs.emplace_back(sc.sketch, shards);
  }

  ShardResult res;
  res.shards = shards;
  Xoshiro256 rng(0x5eed);
  for (int interval = 0; interval < sc.intervals; ++interval) {
    // Untimed fill: the workers' steady-state accumulation. Heavy-set
    // refresh mirrors the engines (driver pushes the promoted set down
    // at each boundary).
    const auto heavy = stats.heavy_keys();
    for (auto& slab : slabs) {
      slab.clear();
      slab.set_heavy_keys(heavy);
    }
    for (std::uint64_t i = 0; i < sc.tuples_per_interval; ++i) {
      const KeyId key =
          rng.next_below(2) == 0
              ? static_cast<KeyId>(rng.next_below(sc.hot_keys))
              : static_cast<KeyId>(rng.next_below(sc.num_keys));
      const std::size_t w = i % sc.workers;
      slabs[w].add(key, static_cast<double>(1 + rng.next_below(4)),
                   static_cast<double>(rng.next_below(16)), 1);
    }

    // Timed boundary: the sharded absorb fan-out plus the roll.
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t w = 0; w < sc.workers; ++w) {
      stats.absorb_slab(slabs[w], static_cast<InstanceId>(w));
    }
    stats.roll();
    const double merge = ms_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    std::vector<KeyId> keys;
    std::vector<Cost> cost, cold_cost;
    std::vector<Bytes> state, cold_state;
    stats.synthesize_compact(static_cast<InstanceId>(sc.workers), keys, cost,
                             state, cold_cost, cold_state);
    const double compact = ms_since(t1);

    // Interval 0 is warm-up (empty heavy set, cold-path-only fill).
    if (interval > 0) {
      res.merge_ms = res.merge_ms == 0.0 ? merge : std::min(res.merge_ms,
                                                            merge);
      res.compact_ms = res.compact_ms == 0.0
                           ? compact
                           : std::min(res.compact_ms, compact);
    }
  }
  std::size_t slab_bytes = 0;
  for (const auto& slab : slabs) slab_bytes += slab.memory_bytes();
  res.memory_bytes = stats.memory_bytes() + slab_bytes;
  res.heavy_keys = stats.heavy_keys().size();
  res.windowed_state = stats.total_windowed_state();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [--keys N] [--tuples N] [--intervals N] "
                 "[--workers N]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) usage();
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      sc.num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      sc.tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      sc.intervals = static_cast<int>(need());
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      sc.workers = static_cast<std::size_t>(need());
    } else {
      usage();
    }
  }
  if (sc.intervals < 2 || sc.workers < 1) {
    std::fprintf(stderr, "need --intervals >= 2 and --workers >= 1\n");
    return 2;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t shard_counts[] = {1, 2, 4, 8};
  std::fprintf(stderr,
               "shard merge: %llu-key domain, %llu tuples/interval, %d "
               "intervals, %zu workers, %u hardware threads\n",
               static_cast<unsigned long long>(sc.num_keys),
               static_cast<unsigned long long>(sc.tuples_per_interval),
               sc.intervals, sc.workers, hw);

  // Alternating measurement rounds, all configurations back-to-back per
  // round so the gated RATIO is a within-round comparison (machine drift
  // between rounds cancels). Interference only ever slows a
  // configuration down, so the max-over-rounds ratio and min-over-rounds
  // absolute times can only converge TOWARD the true values; extra
  // rounds are added only while the gate is unmet, bounded so a real
  // regression fails in finite time.
  constexpr int kRounds = 2;
  constexpr int kMaxRounds = 5;
  ShardResult best[4];
  double speedup_4x = 0.0;
  double speedup_8x = 0.0;
  for (int round = 0; round < kMaxRounds; ++round) {
    if (round >= kRounds && (speedup_4x >= 2.0 || hw < 2)) break;
    ShardResult r[4];
    for (int c = 0; c < 4; ++c) {
      std::fprintf(stderr, "round %d: %zu shard(s)...\n", round,
                   shard_counts[c]);
      r[c] = run_config(sc, shard_counts[c]);
      if (round == 0 || r[c].merge_ms < best[c].merge_ms) best[c] = r[c];
    }
    if (r[2].merge_ms > 0.0) {
      speedup_4x = std::max(speedup_4x, r[0].merge_ms / r[2].merge_ms);
    }
    if (r[3].merge_ms > 0.0) {
      speedup_8x = std::max(speedup_8x, r[0].merge_ms / r[3].merge_ms);
    }
  }

  // The partition invariant: identical integer masses at every S.
  bool mass_ok = true;
  for (int c = 1; c < 4; ++c) {
    mass_ok = mass_ok && best[c].windowed_state == best[0].windowed_state;
  }
  const bool heavy_ok = best[2].heavy_keys > 0;
  // A single-core host has no parallelism to demonstrate: report the
  // ratio but skip the gate (CI's multi-core runners enforce it).
  const bool speedup_skipped = hw < 2;
  const bool speedup_ok = speedup_skipped || speedup_4x >= 2.0;

  std::fprintf(stderr, "\n%-24s %12s %12s %12s %12s\n", "", "S=1", "S=2",
               "S=4", "S=8");
  std::fprintf(stderr, "%-24s %12.3f %12.3f %12.3f %12.3f\n",
               "boundary merge (ms)", best[0].merge_ms, best[1].merge_ms,
               best[2].merge_ms, best[3].merge_ms);
  std::fprintf(stderr, "%-24s %12.3f %12.3f %12.3f %12.3f\n",
               "compact synth (ms)", best[0].compact_ms, best[1].compact_ms,
               best[2].compact_ms, best[3].compact_ms);
  std::fprintf(stderr, "%-24s %12zu %12zu %12zu %12zu\n", "memory (bytes)",
               best[0].memory_bytes, best[1].memory_bytes,
               best[2].memory_bytes, best[3].memory_bytes);
  std::fprintf(stderr, "%-24s %12zu %12zu %12zu %12zu\n", "heavy keys",
               best[0].heavy_keys, best[1].heavy_keys, best[2].heavy_keys,
               best[3].heavy_keys);
  std::fprintf(stderr,
               "merge speedup S=4 %.2fx (gate >= 2x: %s), S=8 %.2fx, "
               "mass conserved: %s, heavy keys: %s\n",
               speedup_4x,
               speedup_skipped ? "SKIPPED (single-core host)"
                               : (speedup_ok ? "PASS" : "FAIL"),
               speedup_8x, mass_ok ? "PASS" : "FAIL",
               heavy_ok ? "PASS" : "FAIL");

  std::printf(
      "{\n"
      "  \"bench\": \"micro_shard\",\n"
      "  \"workload\": {\"keys\": %llu, \"tuples_per_interval\": %llu, "
      "\"intervals\": %d, \"workers\": %zu, \"hot_keys\": %zu},\n"
      "%s"
      "  \"configs\": {\n"
      "    \"s1\": {\"merge_ms\": %.3f, \"compact_ms\": %.3f, "
      "\"memory_bytes\": %zu, \"heavy_keys\": %zu},\n"
      "    \"s2\": {\"merge_ms\": %.3f, \"compact_ms\": %.3f, "
      "\"memory_bytes\": %zu, \"heavy_keys\": %zu},\n"
      "    \"s4\": {\"merge_ms\": %.3f, \"compact_ms\": %.3f, "
      "\"memory_bytes\": %zu, \"heavy_keys\": %zu},\n"
      "    \"s8\": {\"merge_ms\": %.3f, \"compact_ms\": %.3f, "
      "\"memory_bytes\": %zu, \"heavy_keys\": %zu}\n"
      "  },\n"
      "  \"merge_speedup_4x\": %.3f,\n"
      "  \"merge_speedup_8x\": %.3f,\n"
      "  \"gates\": {\"merge_speedup_ge_2x\": %s, "
      "\"speedup_gate_skipped_single_core\": %s, \"mass_conserved\": %s, "
      "\"heavy_keys_nonzero\": %s}\n"
      "}\n",
      static_cast<unsigned long long>(sc.num_keys),
      static_cast<unsigned long long>(sc.tuples_per_interval), sc.intervals,
      sc.workers, sc.hot_keys, bench::env_json().c_str(),
      best[0].merge_ms, best[0].compact_ms,
      best[0].memory_bytes, best[0].heavy_keys, best[1].merge_ms,
      best[1].compact_ms, best[1].memory_bytes, best[1].heavy_keys,
      best[2].merge_ms, best[2].compact_ms, best[2].memory_bytes,
      best[2].heavy_keys, best[3].merge_ms, best[3].compact_ms,
      best[3].memory_bytes, best[3].heavy_keys, speedup_4x, speedup_8x,
      speedup_ok ? "true" : "false", speedup_skipped ? "true" : "false",
      mass_ok ? "true" : "false", heavy_ok ? "true" : "false");

  return (speedup_ok && mass_ok && heavy_ok) ? 0 : 1;
}
