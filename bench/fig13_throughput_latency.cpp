// Fig. 13 — end-to-end throughput and processing latency with varying
// distribution-change frequency f ∈ {0.1 .. 2.0} for Storm (plain
// hashing), Readj, Mixed, and the key-oblivious Ideal shuffle bound.
//
// Expected shape (paper): Ideal is flat and best; Mixed tracks Ideal
// closely across all f; Readj degrades as f grows; Storm sits lowest
// with the highest latency.
#include "baselines/readj.h"
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

constexpr InstanceId kInstances = 10;
constexpr std::uint64_t kNumKeys = 1'000;  // skewed-hash regime (Fig. 7b)
constexpr int kIntervals = 60;
constexpr int kSkip = 10;

std::unique_ptr<WorkloadSource> source_with(double f) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = kNumKeys;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'750'000;  // ~0.7 average utilization
  opts.fluctuation = f;
  // The paper's testbed reacts within a fraction of its 10 s interval;
  // with 1 s intervals we apply each distribution change once per 10
  // intervals so the balanced fraction of time matches.
  opts.fluctuate_every = 10;
  opts.seed = 29;
  return std::make_unique<ZipfFluctuatingSource>(opts);
}

std::pair<double, double> run_mode(double f, int which) {
  SimConfig cfg;
  cfg.num_instances = kInstances;
  auto op = std::make_unique<UniformCostOperator>(4.0, 8.0);
  std::unique_ptr<SimEngine> engine;
  switch (which) {
    case 0:  // Storm
      engine = std::make_unique<SimEngine>(cfg, std::move(op),
                                           source_with(f),
                                           RoutingMode::kHashOnly);
      break;
    case 1:  // Readj
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), source_with(f),
          make_controller(std::make_unique<ReadjPlanner>(), kInstances,
                          kNumKeys, 0.08));
      break;
    case 2:  // Mixed
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), source_with(f),
          make_controller(std::make_unique<MixedPlanner>(), kInstances,
                          kNumKeys, 0.08));
      break;
    default:  // Ideal
      engine = std::make_unique<SimEngine>(cfg, std::move(op),
                                           source_with(f),
                                           RoutingMode::kShuffle);
      break;
  }
  const auto ms = engine->run(kIntervals);
  return {mean_of(ms, throughput_of, kSkip) / 1000.0,
          mean_of(ms, latency_of, kSkip)};
}

}  // namespace

int main() {
  ResultTable thr_table("Fig 13(a) throughput (k tuples/s) vs f",
                        {"f", "Storm", "Readj", "Mixed", "Ideal"});
  ResultTable lat_table("Fig 13(b) processing latency (ms) vs f",
                        {"f", "Storm", "Readj", "Mixed", "Ideal"});
  for (const double f : {0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 2.0}) {
    std::vector<std::string> trow = {fmt(f, 1)};
    std::vector<std::string> lrow = {fmt(f, 1)};
    for (int which = 0; which < 4; ++which) {
      const auto [thr, lat] = run_mode(f, which);
      trow.push_back(fmt(thr, 1));
      lrow.push_back(fmt(lat, 2));
    }
    thr_table.add_row(std::move(trow));
    lat_table.add_row(std::move(lrow));
  }
  thr_table.print();
  lat_table.print();
  return 0;
}
