// Fig. 19 (appendix) — migration cost versus window size w ∈ {1 .. 15},
// Mixed vs MinTable.
//
// Expected shape (paper): Mixed's migration cost stays below MinTable's
// at every window size; larger windows give the γ criterion more state
// history to find cheap migration candidates.
//
// The Mixed-Sk column repeats Mixed over the sketch statistics provider
// (decayed heavy-hitter tracking): the window size governs how much ring
// history the sketch keeps, and its cost should track exact Mixed.
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

double run(int window, bool mixed, bool sketch_stats = false) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 100'000;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 1.0;
  opts.seed = 41;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.theta_max = 0.08;
  dopts.max_table_entries = 3000;
  dopts.window = window;
  dopts.intervals = window + 5;  // enough intervals to fill the window
  if (sketch_stats) dopts.stats_mode = StatsMode::kSketch;
  PlannerPtr planner = mixed ? PlannerPtr(std::make_unique<MixedPlanner>())
                             : PlannerPtr(std::make_unique<MinTablePlanner>());
  return drive_planner(source, std::move(planner), dopts)
      .migration_pct.mean();
}

}  // namespace

int main() {
  ResultTable table("Fig 19 migration cost (%) vs window size w",
                    {"w", "Mixed", "MinTable", "Mixed-Sk"});
  for (const int w : {1, 3, 5, 7, 9, 11, 13, 15}) {
    table.add_row({std::to_string(w), fmt(run(w, true), 2),
                   fmt(run(w, false), 2),
                   fmt(run(w, true, /*sketch_stats=*/true), 2)});
  }
  table.print();
  return 0;
}
