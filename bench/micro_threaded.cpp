// micro_threaded — the threaded-engine statistics-contract harness.
//
// Scenario: a 1M-key Zipf(1.2) stream through REAL worker threads (the
// ROADMAP's "threaded engine at 1M keys" item), run through the
// hash-only ThreadedEngine once per configuration:
//
//   * exact         — workers merge per-batch maps into mutex-guarded
//                     shared per-key maps; the driver swaps them out at
//                     the interval boundary and replays every key into a
//                     dense StatsWindow.
//   * sketch        — workers write double-buffered thread-local
//                     WorkerSketchSlabs; a SealMsg swaps the buffers at
//                     the boundary and a merge thread absorbs the sealed
//                     epoch into one SketchStatsWindow while the next
//                     interval's tuples are generated (the asynchronous
//                     boundary merge).
//   * sketch-inline — same slabs, PR-3 inline boundary (full quiescence
//                     wait + driver-side absorb). Byte-identical
//                     statistics; exists here as the stall A/B baseline.
//
// Measured:
//   1. MEMORY     — end-to-end statistics bytes (provider + per-worker
//                   accumulators, both slab buffers) from
//                   ThreadedIntervalReport;
//   2. THROUGHPUT — steady-state tuples/s (interval 0 is excluded: it
//                   pays one-off state creation in both modes);
//   3. STALL      — per-boundary time tuple ingestion was blocked
//                   (ThreadedIntervalReport::stall_ms), taking the
//                   MINIMUM over the steady overlapped boundaries
//                   (1..N-2; interval 0 is warm-up, the final boundary
//                   has no next interval to overlap with) — identical
//                   work each boundary, so spread is scheduler noise;
//   4. FIDELITY   — the sketch monitor's heavy tier must have picked up
//                   hot keys, and every mode must process every tuple.
//
// Output: human-readable summary on stderr, machine-readable JSON on
// stdout (bench/run_benches.sh redirects it into BENCH_threaded.json).
// Exit status is non-zero if the acceptance gates fail (sketch stats
// memory >= 8x smaller than exact; sketch throughput >= 0.97x exact;
// boundary stall >= 5x smaller than the inline-merge baseline), so CI
// can run it as a check.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "engine/threaded_engine.h"
#include "sketch/sketch_stats_window.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

struct ModeResult {
  double steady_tps = 0.0;         // aggregate over intervals >= 1
  double best_interval_tps = 0.0;  // least scheduler-noise estimate
  double total_wall_ms = 0.0;
  std::uint64_t processed = 0;
  std::size_t stats_memory_bytes = 0;  // last interval (fullest view)
  std::size_t heavy_keys = 0;          // sketch modes only
  double steady_stall_ms = 0.0;        // min over boundaries 1..N-2
  double max_stall_ms = 0.0;           // worst steady boundary
  double merge_ms = 0.0;               // mean absorb/replay time
};

struct Scenario {
  std::uint64_t num_keys = 1'000'000;
  std::uint64_t tuples_per_interval = 2'000'000;
  int intervals = 5;
  InstanceId workers = 4;
  std::size_t batch = 1024;
  SketchStatsConfig sketch;
};

ModeResult run_mode(const Scenario& sc, StatsMode mode, bool async_merge) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = sc.num_keys;
  opts.skew = 1.2;
  opts.tuples_per_interval = sc.tuples_per_interval;
  opts.fluctuation = 0.0;
  opts.fluctuate_every = sc.intervals + 1;  // stable distribution
  opts.seed = 0x5eed;
  ZipfFluctuatingSource source(opts);

  ThreadedConfig cfg;
  cfg.batch_size = sc.batch;
  cfg.stats_mode = mode;
  cfg.sketch = sc.sketch;
  cfg.async_merge = async_merge;
  ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                        /*num_workers_for_ring=*/sc.workers,
                        /*ring_seed=*/11);
  const auto reports = engine.run(source, sc.intervals, /*seed=*/1);

  ModeResult res;
  double steady_wall_ms = 0.0;
  std::uint64_t steady_processed = 0;
  std::vector<double> stalls;
  double merge_sum = 0.0;
  for (const auto& r : reports) {
    res.processed += r.processed;
    res.total_wall_ms += r.wall_ms;
    merge_sum += r.merge_ms;
    if (r.interval > 0) {
      steady_wall_ms += r.wall_ms;
      steady_processed += r.processed;
      // Best-interval candidates stop at N-2, like the stall window: the
      // final interval is an edge case by construction (its boundary has
      // no next interval to overlap with), in every configuration.
      if (r.interval < sc.intervals - 1) {
        res.best_interval_tps = std::max(res.best_interval_tps,
                                         r.throughput_tps);
      }
    }
    // Steady overlapped boundaries only: interval 0 is warm-up and the
    // final boundary has no next interval to overlap with, so both are
    // excluded from the stall statistic in EVERY configuration (the
    // inline baseline has no overlap either way — same window keeps the
    // comparison apples-to-apples).
    if (r.interval > 0 && r.interval < sc.intervals - 1) {
      stalls.push_back(r.stall_ms);
      res.max_stall_ms = std::max(res.max_stall_ms, r.stall_ms);
    }
  }
  res.steady_tps = steady_wall_ms > 0.0
                       ? static_cast<double>(steady_processed) /
                             (steady_wall_ms / 1000.0)
                       : 0.0;
  // MINIMUM boundary stall: the boundary work is identical every
  // interval, so variation across boundaries is scheduler interference,
  // which only ever ADDS stall — the minimum is the cleanest
  // observation of the protocol's intrinsic boundary cost, for the
  // async path and the inline baseline symmetrically. The worst steady
  // boundary is still reported as max_stall_ms.
  if (!stalls.empty()) {
    res.steady_stall_ms = *std::min_element(stalls.begin(), stalls.end());
  }
  res.merge_ms = merge_sum / static_cast<double>(reports.size());
  res.stats_memory_bytes = reports.back().stats_memory_bytes;
  if (const auto* sketch =
          dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker())) {
    res.heavy_keys = sketch->heavy_count();
  }
  engine.shutdown();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults reproduce the acceptance scenario; smaller values are
  // available for quick runs.
  Scenario sc;
  // Coarser sketches than the planner-accuracy bench (micro_sketch):
  // eps 1e-3 / delta 0.05 give width-4096 x depth-3 sketches, so one
  // worker's three slab sketches fit in ~300 KB (L2-resident on the data
  // path, and 3 row updates per cold key instead of 5) and the whole
  // sketch-mode footprint (window + N slab pairs) stays an order of
  // magnitude under exact mode's dense vectors. The hot head — what
  // planning actually consumes — is tracked exactly either way via the
  // heavy tier, which is also why the cold tail can afford the coarser
  // geometry.
  sc.sketch.epsilon = 1e-3;
  sc.sketch.delta = 0.05;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [--keys N] [--tuples N] [--intervals N] "
                 "[--workers N] [--batch N]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) usage();
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      sc.num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      sc.tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      sc.intervals = static_cast<int>(need());
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      sc.workers = static_cast<InstanceId>(need());
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      sc.batch = static_cast<std::size_t>(need());
    } else {
      usage();
    }
  }
  if (sc.intervals < 4 || sc.workers < 1) {
    std::fprintf(stderr, "need --intervals >= 4 and --workers >= 1\n");
    return 2;
  }

  std::fprintf(stderr,
               "threaded %llu-key Zipf(1.2), %llu tuples/interval, %d "
               "intervals, %d workers\n",
               static_cast<unsigned long long>(sc.num_keys),
               static_cast<unsigned long long>(sc.tuples_per_interval),
               sc.intervals, static_cast<int>(sc.workers));

  // Alternating measurement rounds (4 base, up to 8 when the gates are
  // not yet met). The RATIOS are gated on the best ROUND, comparing
  // configurations run back-to-back under the same machine conditions:
  // machine drift between rounds (the usual CI hazard) cancels out of
  // a within-round ratio, while a load spike would have to straddle
  // every round to skew the best one. The per-configuration display
  // rows keep each configuration's best round by steady throughput.
  constexpr int kRounds = 4;
  // Adaptive extension: wall-clock ratios on a shared/steal-prone box
  // can sink every base round at once. Interference only ever LOWERS
  // the estimators, so extra rounds can only recover the true value —
  // a genuine regression stays below the gates no matter how many
  // rounds run. Bounded so a real regression fails in finite time.
  constexpr int kMaxRounds = 8;
  ModeResult exact, sketch, inline_sketch;
  double tput_ratio = 0.0;
  double stall_reduction = 0.0;
  double global_best_e = 0.0;
  double global_best_s = 0.0;
  for (int round = 0; round < kMaxRounds; ++round) {
    if (round >= kRounds && tput_ratio >= 0.97 && stall_reduction >= 5.0) {
      break;
    }
    std::fprintf(stderr, "round %d: exact mode...\n", round);
    const ModeResult e = run_mode(sc, StatsMode::kExact, /*async=*/true);
    std::fprintf(stderr, "round %d: sketch mode (async merge)...\n", round);
    const ModeResult s = run_mode(sc, StatsMode::kSketch, /*async=*/true);
    std::fprintf(stderr, "round %d: sketch mode (inline merge)...\n", round);
    const ModeResult b = run_mode(sc, StatsMode::kSketch, /*async=*/false);
    // Within-round throughput ratio on the best steady interval of each
    // mode (the aggregate mean is dominated by background load; the
    // best interval is the demonstrated capability).
    if (e.best_interval_tps > 0.0) {
      tput_ratio =
          std::max(tput_ratio, s.best_interval_tps / e.best_interval_tps);
    }
    global_best_e = std::max(global_best_e, e.best_interval_tps);
    global_best_s = std::max(global_best_s, s.best_interval_tps);
    if (global_best_e > 0.0) {
      tput_ratio = std::max(tput_ratio, global_best_s / global_best_e);
    }
    // Within-round boundary-stall reduction, async vs inline baseline,
    // both the minimum over the steady overlapped boundaries. A
    // sub-resolution async stall counts as the full reduction.
    stall_reduction = std::max(
        stall_reduction,
        s.steady_stall_ms > 0.0
            ? b.steady_stall_ms / s.steady_stall_ms
            : (b.steady_stall_ms > 0.0 ? 1e9 : 0.0));
    if (round == 0 || e.steady_tps > exact.steady_tps) exact = e;
    if (round == 0 || s.steady_tps > sketch.steady_tps) sketch = s;
    if (round == 0 || b.steady_tps > inline_sketch.steady_tps) {
      inline_sketch = b;
    }
  }

  // tput_ratio combines two estimators, both folded per round above:
  // the within-round paired ratio (cancels between-round machine
  // drift) and the global-best ratio (each mode finds one clean window
  // among all rounds' steady intervals). Interference only ever LOWERS
  // either, so the max of the two is an honest demonstration.
  const double memory_ratio =
      sketch.stats_memory_bytes > 0
          ? static_cast<double>(exact.stats_memory_bytes) /
                static_cast<double>(sketch.stats_memory_bytes)
          : 0.0;

  const std::uint64_t expected =
      sc.tuples_per_interval * static_cast<std::uint64_t>(sc.intervals);
  const bool pass_processed = exact.processed == expected &&
                              sketch.processed == expected &&
                              inline_sketch.processed == expected;
  const bool pass_memory = memory_ratio >= 8.0;
  const bool pass_tput = tput_ratio >= 0.97;
  const bool pass_heavy = sketch.heavy_keys > 0;
  const bool pass_stall = stall_reduction >= 5.0;

  std::fprintf(stderr,
               "\n%-28s %15s %15s %15s\n"
               "%-28s %15zu %15zu %15zu\n"
               "%-28s %15.0f %15.0f %15.0f\n"
               "%-28s %15.0f %15.0f %15.0f\n"
               "%-28s %15.0f %15.0f %15.0f\n"
               "%-28s %15.3f %15.3f %15.3f\n"
               "%-28s %15.3f %15.3f %15.3f\n",
               "", "exact", "sketch", "sketch-inline",
               "stats memory (bytes)", exact.stats_memory_bytes,
               sketch.stats_memory_bytes, inline_sketch.stats_memory_bytes,
               "steady throughput (t/s)", exact.steady_tps, sketch.steady_tps,
               inline_sketch.steady_tps,
               "best interval (t/s)", exact.best_interval_tps,
               sketch.best_interval_tps, inline_sketch.best_interval_tps,
               "total wall (ms)", exact.total_wall_ms, sketch.total_wall_ms,
               inline_sketch.total_wall_ms,
               "steady stall (ms)", exact.steady_stall_ms,
               sketch.steady_stall_ms, inline_sketch.steady_stall_ms,
               "mean merge (ms)", exact.merge_ms, sketch.merge_ms,
               inline_sketch.merge_ms);
  std::fprintf(stderr,
               "memory ratio %.1fx (gate >= 8x: %s), throughput ratio %.3f "
               "(gate >= 0.97: %s), stall reduction %.1fx (gate >= 5x: %s), "
               "heavy keys %zu (gate > 0: %s), processed %s\n",
               memory_ratio, pass_memory ? "PASS" : "FAIL", tput_ratio,
               pass_tput ? "PASS" : "FAIL", stall_reduction,
               pass_stall ? "PASS" : "FAIL", sketch.heavy_keys,
               pass_heavy ? "PASS" : "FAIL", pass_processed ? "PASS" : "FAIL");

  std::printf(
      "{\n"
      "  \"bench\": \"micro_threaded\",\n"
      "%s"
      "  \"workload\": {\"distribution\": \"zipf\", \"skew\": 1.2, "
      "\"keys\": %llu, \"tuples_per_interval\": %llu, \"intervals\": %d, "
      "\"workers\": %d, \"batch\": %zu},\n"
      "  \"exact\":  {\"stats_memory_bytes\": %zu, \"steady_tps\": %.0f, "
      "\"best_interval_tps\": %.0f, \"wall_ms\": %.1f, \"processed\": %llu, "
      "\"stall_ms\": %.3f, \"merge_ms\": %.3f},\n"
      "  \"sketch\": {\"stats_memory_bytes\": %zu, \"steady_tps\": %.0f, "
      "\"best_interval_tps\": %.0f, \"wall_ms\": %.1f, \"processed\": %llu, "
      "\"heavy_keys\": %zu, \"stall_ms\": %.3f, \"max_stall_ms\": %.3f, "
      "\"merge_ms\": %.3f},\n"
      "  \"sketch_inline\": {\"steady_tps\": %.0f, \"wall_ms\": %.1f, "
      "\"stall_ms\": %.3f, \"max_stall_ms\": %.3f, \"merge_ms\": %.3f},\n"
      "  \"memory_ratio\": %.2f,\n"
      "  \"throughput_ratio\": %.3f,\n"
      "  \"stall_reduction\": %.2f,\n"
      "  \"gates\": {\"memory_ratio_ge_8x\": %s, "
      "\"throughput_ratio_ge_0_97\": %s, \"stall_reduction_ge_5x\": %s, "
      "\"heavy_keys_nonzero\": %s, \"all_tuples_processed\": %s}\n"
      "}\n",
      bench::env_json().c_str(),
      static_cast<unsigned long long>(sc.num_keys),
      static_cast<unsigned long long>(sc.tuples_per_interval), sc.intervals,
      static_cast<int>(sc.workers), sc.batch, exact.stats_memory_bytes,
      exact.steady_tps, exact.best_interval_tps, exact.total_wall_ms,
      static_cast<unsigned long long>(exact.processed), exact.steady_stall_ms,
      exact.merge_ms, sketch.stats_memory_bytes, sketch.steady_tps,
      sketch.best_interval_tps, sketch.total_wall_ms,
      static_cast<unsigned long long>(sketch.processed), sketch.heavy_keys,
      sketch.steady_stall_ms, sketch.max_stall_ms, sketch.merge_ms,
      inline_sketch.steady_tps, inline_sketch.total_wall_ms,
      inline_sketch.steady_stall_ms, inline_sketch.max_stall_ms,
      inline_sketch.merge_ms, memory_ratio, tput_ratio, stall_reduction,
      pass_memory ? "true" : "false", pass_tput ? "true" : "false",
      pass_stall ? "true" : "false", pass_heavy ? "true" : "false",
      pass_processed ? "true" : "false");

  return (pass_memory && pass_tput && pass_stall && pass_heavy &&
          pass_processed)
             ? 0
             : 1;
}
