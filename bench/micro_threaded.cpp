// micro_threaded — the threaded-engine statistics-contract harness.
//
// Scenario: a 1M-key Zipf(1.2) stream through REAL worker threads (the
// ROADMAP's "threaded engine at 1M keys" item), run twice through the
// hash-only ThreadedEngine — once per stats mode:
//
//   * exact  — workers merge per-batch maps into mutex-guarded shared
//              per-key maps; the driver swaps them out at the interval
//              boundary and replays every key into a dense StatsWindow.
//   * sketch — workers write thread-local WorkerSketchSlabs; the driver
//              cell-wise merges them into one SketchStatsWindow at the
//              boundary. No per-key hash traffic crosses threads.
//
// Measured:
//   1. MEMORY     — end-to-end statistics bytes (provider + per-worker
//                   accumulators) from ThreadedIntervalReport;
//   2. THROUGHPUT — steady-state tuples/s (interval 0 is excluded: it
//                   pays one-off state creation in both modes);
//   3. FIDELITY   — the sketch monitor's heavy tier must have picked up
//                   hot keys, and both modes must process every tuple.
//
// Output: human-readable summary on stderr, machine-readable JSON on
// stdout (bench/run_benches.sh redirects it into BENCH_threaded.json).
// Exit status is non-zero if the acceptance gates fail (sketch stats
// memory >= 8x smaller than exact; sketch throughput >= 0.9x exact —
// the tolerance absorbs scheduler noise, the point is "no worse"), so
// CI can run it as a check.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "engine/threaded_engine.h"
#include "sketch/sketch_stats_window.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

struct ModeResult {
  double steady_tps = 0.0;       // aggregate over intervals >= 1
  double best_interval_tps = 0.0;  // least scheduler-noise estimate
  double total_wall_ms = 0.0;
  std::uint64_t processed = 0;
  std::size_t stats_memory_bytes = 0;  // last interval (fullest view)
  std::size_t heavy_keys = 0;          // sketch mode only
};

struct Scenario {
  std::uint64_t num_keys = 1'000'000;
  std::uint64_t tuples_per_interval = 2'000'000;
  int intervals = 5;
  InstanceId workers = 4;
  std::size_t batch = 1024;
  SketchStatsConfig sketch;
};

ModeResult run_mode(const Scenario& sc, StatsMode mode) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = sc.num_keys;
  opts.skew = 1.2;
  opts.tuples_per_interval = sc.tuples_per_interval;
  opts.fluctuation = 0.0;
  opts.fluctuate_every = sc.intervals + 1;  // stable distribution
  opts.seed = 0x5eed;
  ZipfFluctuatingSource source(opts);

  ThreadedConfig cfg;
  cfg.batch_size = sc.batch;
  cfg.stats_mode = mode;
  cfg.sketch = sc.sketch;
  ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                        /*num_workers_for_ring=*/sc.workers,
                        /*ring_seed=*/11);
  const auto reports = engine.run(source, sc.intervals, /*seed=*/1);

  ModeResult res;
  double steady_wall_ms = 0.0;
  std::uint64_t steady_processed = 0;
  for (const auto& r : reports) {
    res.processed += r.processed;
    res.total_wall_ms += r.wall_ms;
    if (r.interval > 0) {
      steady_wall_ms += r.wall_ms;
      steady_processed += r.processed;
      res.best_interval_tps = std::max(res.best_interval_tps,
                                       r.throughput_tps);
    }
  }
  res.steady_tps = steady_wall_ms > 0.0
                       ? static_cast<double>(steady_processed) /
                             (steady_wall_ms / 1000.0)
                       : 0.0;
  res.stats_memory_bytes = reports.back().stats_memory_bytes;
  if (const auto* sketch =
          dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker())) {
    res.heavy_keys = sketch->heavy_count();
  }
  engine.shutdown();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults reproduce the acceptance scenario; smaller values are
  // available for quick runs.
  Scenario sc;
  // Coarser sketches than the planner-accuracy bench (micro_sketch):
  // eps 1e-3 / delta 0.05 give width-4096 x depth-3 sketches, so one
  // worker's three slab sketches fit in ~300 KB (L2-resident on the data
  // path, and 3 row updates per cold key instead of 5) and the whole
  // sketch-mode footprint (window + N slabs) stays an order of magnitude
  // under exact mode's dense vectors. The hot head — what planning
  // actually consumes — is tracked exactly either way via the heavy
  // tier, which is also why the cold tail can afford the coarser
  // geometry.
  sc.sketch.epsilon = 1e-3;
  sc.sketch.delta = 0.05;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s [--keys N] [--tuples N] [--intervals N] "
                 "[--workers N] [--batch N]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) usage();
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      sc.num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      sc.tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--intervals") == 0) {
      sc.intervals = static_cast<int>(need());
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      sc.workers = static_cast<InstanceId>(need());
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      sc.batch = static_cast<std::size_t>(need());
    } else {
      usage();
    }
  }
  if (sc.intervals < 2 || sc.workers < 1) {
    std::fprintf(stderr, "need --intervals >= 2 and --workers >= 1\n");
    return 2;
  }

  std::fprintf(stderr,
               "threaded %llu-key Zipf(1.2), %llu tuples/interval, %d "
               "intervals, %d workers\n",
               static_cast<unsigned long long>(sc.num_keys),
               static_cast<unsigned long long>(sc.tuples_per_interval),
               sc.intervals, static_cast<int>(sc.workers));

  // Two alternating measurement rounds per mode, keeping each mode's
  // best: a transient load spike on the machine (the usual CI hazard)
  // would have to hit the SAME mode in BOTH rounds to skew the ratio.
  ModeResult exact, sketch;
  for (int round = 0; round < 2; ++round) {
    std::fprintf(stderr, "round %d: exact mode...\n", round);
    const ModeResult e = run_mode(sc, StatsMode::kExact);
    std::fprintf(stderr, "round %d: sketch mode...\n", round);
    const ModeResult s = run_mode(sc, StatsMode::kSketch);
    // Best interval is tracked across BOTH rounds, independent of which
    // round wins on steady throughput.
    const double best_e = std::max(exact.best_interval_tps, e.best_interval_tps);
    const double best_s =
        std::max(sketch.best_interval_tps, s.best_interval_tps);
    if (e.steady_tps > exact.steady_tps) exact = e;
    if (s.steady_tps > sketch.steady_tps) sketch = s;
    exact.best_interval_tps = best_e;
    sketch.best_interval_tps = best_s;
  }

  const double memory_ratio =
      sketch.stats_memory_bytes > 0
          ? static_cast<double>(exact.stats_memory_bytes) /
                static_cast<double>(sketch.stats_memory_bytes)
          : 0.0;
  // Gate on the best steady interval of each mode: the aggregate mean is
  // dominated by whatever else the CI machine was doing, while the best
  // interval is each mode's demonstrated capability under this workload.
  const double tput_ratio =
      exact.best_interval_tps > 0.0
          ? sketch.best_interval_tps / exact.best_interval_tps
          : 0.0;

  const std::uint64_t expected =
      sc.tuples_per_interval * static_cast<std::uint64_t>(sc.intervals);
  const bool pass_processed =
      exact.processed == expected && sketch.processed == expected;
  const bool pass_memory = memory_ratio >= 8.0;
  const bool pass_tput = tput_ratio >= 0.9;
  const bool pass_heavy = sketch.heavy_keys > 0;

  std::fprintf(stderr,
               "\n%-28s %15s %15s\n"
               "%-28s %15zu %15zu\n"
               "%-28s %15.0f %15.0f\n"
               "%-28s %15.0f %15.0f\n"
               "%-28s %15.0f %15.0f\n",
               "", "exact", "sketch",
               "stats memory (bytes)", exact.stats_memory_bytes,
               sketch.stats_memory_bytes,
               "steady throughput (t/s)", exact.steady_tps, sketch.steady_tps,
               "best interval (t/s)", exact.best_interval_tps,
               sketch.best_interval_tps,
               "total wall (ms)", exact.total_wall_ms, sketch.total_wall_ms);
  std::fprintf(stderr,
               "memory ratio %.1fx (gate >= 8x: %s), throughput ratio %.2f "
               "(gate >= 0.9: %s), heavy keys %zu (gate > 0: %s), processed "
               "%s\n",
               memory_ratio, pass_memory ? "PASS" : "FAIL", tput_ratio,
               pass_tput ? "PASS" : "FAIL", sketch.heavy_keys,
               pass_heavy ? "PASS" : "FAIL", pass_processed ? "PASS" : "FAIL");

  std::printf(
      "{\n"
      "  \"bench\": \"micro_threaded\",\n"
      "  \"workload\": {\"distribution\": \"zipf\", \"skew\": 1.2, "
      "\"keys\": %llu, \"tuples_per_interval\": %llu, \"intervals\": %d, "
      "\"workers\": %d, \"batch\": %zu},\n"
      "  \"exact\":  {\"stats_memory_bytes\": %zu, \"steady_tps\": %.0f, "
      "\"best_interval_tps\": %.0f, \"wall_ms\": %.1f, \"processed\": "
      "%llu},\n"
      "  \"sketch\": {\"stats_memory_bytes\": %zu, \"steady_tps\": %.0f, "
      "\"best_interval_tps\": %.0f, \"wall_ms\": %.1f, \"processed\": %llu, "
      "\"heavy_keys\": %zu},\n"
      "  \"memory_ratio\": %.2f,\n"
      "  \"throughput_ratio\": %.3f,\n"
      "  \"gates\": {\"memory_ratio_ge_8x\": %s, "
      "\"throughput_ratio_ge_0_9\": %s, \"heavy_keys_nonzero\": %s, "
      "\"all_tuples_processed\": %s}\n"
      "}\n",
      static_cast<unsigned long long>(sc.num_keys),
      static_cast<unsigned long long>(sc.tuples_per_interval), sc.intervals,
      static_cast<int>(sc.workers), sc.batch, exact.stats_memory_bytes,
      exact.steady_tps, exact.best_interval_tps, exact.total_wall_ms,
      static_cast<unsigned long long>(exact.processed),
      sketch.stats_memory_bytes, sketch.steady_tps,
      sketch.best_interval_tps, sketch.total_wall_ms,
      static_cast<unsigned long long>(sketch.processed), sketch.heavy_keys,
      memory_ratio, tput_ratio, pass_memory ? "true" : "false",
      pass_tput ? "true" : "false", pass_heavy ? "true" : "false",
      pass_processed ? "true" : "false");

  return (pass_memory && pass_tput && pass_heavy && pass_processed) ? 0 : 1;
}
