// micro_plan — the compact-planning-path latency harness.
//
// Scenario: a 1M-key Zipf(1.2) workload (the ROADMAP's "millions of
// users" regime) with a 4096-entry heavy tier. Both statistics providers
// ingest the identical stream; we then time the full planning path —
// snapshot synthesis + Mixed planning — through each representation:
//
//   EXACT  — StatsWindow::synthesize_dense materializes O(|K|) vectors
//            and the planner scans all |K| keys per phase;
//   SKETCH — SketchStatsWindow::synthesize_compact emits the heavy set
//            plus per-instance cold residuals, and the planner touches
//            only k = heavy_capacity entries (O(k log k)).
//
// Gates (exit status, so CI can run this as a check):
//   1. SPEEDUP  — the sketch-mode planning path is >= 20x faster;
//   2. COMPACT  — the compact path provably allocates nothing O(|K|):
//                 entry count <= heavy capacity, the plan's assignment is
//                 entry-aligned, and every structure the planner builds
//                 is sized by entries (checked structurally here).
//
// Output: human-readable summary on stderr, machine-readable JSON on
// stdout (bench/run_benches.sh redirects it into BENCH_plan.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/consistent_hash.h"
#include "common/zipf.h"
#include "core/planners.h"
#include "core/snapshot.h"
#include "core/stats_window.h"
#include "sketch/sketch_stats_window.h"

using namespace skewless;

namespace {

struct PathTiming {
  Micros snapshot_micros = 0;  // snapshot synthesis
  Micros plan_micros = 0;      // planner->plan
  [[nodiscard]] Micros total() const { return snapshot_micros + plan_micros; }
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t num_keys = 1'000'000;
  std::uint64_t tuples_per_interval = 4'000'000;
  std::size_t heavy_capacity = 4096;
  int rounds = 3;
  const InstanceId num_instances = 10;
  const int window = 2;
  for (int i = 1; i < argc; ++i) {
    const auto need = [&]() -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s [--keys N] [--tuples N] [--heavy N]\n",
                     argv[0]);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--keys") == 0) {
      num_keys = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--tuples") == 0) {
      tuples_per_interval = static_cast<std::uint64_t>(need());
    } else if (std::strcmp(argv[i], "--heavy") == 0) {
      heavy_capacity = static_cast<std::size_t>(need());
    } else {
      std::fprintf(stderr, "usage: %s [--keys N] [--tuples N] [--heavy N]\n",
                   argv[0]);
      return 2;
    }
  }

  const double kCostPerTuple = 2.0;   // us
  const double kBytesPerTuple = 16.0;

  std::fprintf(stderr, "generating Zipf(1.2) over %llu keys...\n",
               static_cast<unsigned long long>(num_keys));
  const ZipfDistribution zipf(num_keys, 1.2, true, 0x217f);
  const auto counts = zipf.expected_counts(tuples_per_interval);
  const ConsistentHashRing ring(num_instances, 128, 21);

  StatsWindow exact(num_keys, window);
  SketchStatsConfig scfg;
  scfg.heavy_capacity = heavy_capacity;
  SketchStatsWindow sketch(num_keys, window, scfg);

  // Two identical intervals: interval 1 nominates the heavy set, interval
  // 2 gives it exact statistics. Destinations (needed for the sketch's
  // per-instance cold residuals) are the hash placement — the usual
  // "skewed workload just arrived, table still empty" planning input.
  WallTimer ingest_timer;
  for (int interval = 0; interval < 2; ++interval) {
    for (std::size_t k = 0; k < counts.size(); ++k) {
      const auto n = counts[k];
      if (n == 0) continue;
      const auto key = static_cast<KeyId>(k);
      const double nd = static_cast<double>(n);
      const InstanceId dest = ring.owner(key);
      exact.record(key, kCostPerTuple * nd, kBytesPerTuple * nd, n, dest);
      sketch.record(key, kCostPerTuple * nd, kBytesPerTuple * nd, n, dest);
    }
    exact.roll();
    sketch.roll();
  }
  const double ingest_ms = ingest_timer.elapsed_millis();

  PlannerConfig pcfg;
  pcfg.theta_max = 0.08;
  pcfg.max_table_entries = 3000;

  // ---- Exact-mode dense planning path, best of `rounds`.
  PathTiming best_exact;
  PartitionSnapshot dense;
  for (int r = 0; r < rounds; ++r) {
    PathTiming t;
    WallTimer snap_timer;
    PartitionSnapshot snap;
    snap.num_instances = num_instances;
    exact.synthesize_dense(snap.cost, snap.state);
    snap.hash_dest.resize(snap.cost.size());
    for (std::size_t k = 0; k < snap.cost.size(); ++k) {
      snap.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
    }
    snap.current = snap.hash_dest;
    t.snapshot_micros = snap_timer.elapsed_micros();

    MixedPlanner planner;
    WallTimer plan_timer;
    const RebalancePlan plan = planner.plan(snap, pcfg);
    t.plan_micros = plan_timer.elapsed_micros();
    if (r == 0 || t.total() < best_exact.total()) best_exact = t;
    if (r == rounds - 1) dense = std::move(snap);
    (void)plan;
  }

  // ---- Sketch-mode compact planning path, best of `rounds`.
  PathTiming best_sketch;
  std::size_t entries = 0;
  std::size_t compact_moves = 0;
  double theta_after_true = 0.0;
  double theta_before = 0.0;
  bool compact_structural_ok = true;
  for (int r = 0; r < rounds; ++r) {
    PathTiming t;
    WallTimer snap_timer;
    PartitionSnapshot snap;
    snap.num_instances = num_instances;
    sketch.synthesize_compact(num_instances, snap.keys, snap.cost, snap.state,
                              snap.cold_cost, snap.cold_state);
    snap.total_keys = num_keys;
    snap.hash_dest.resize(snap.keys.size());
    for (std::size_t e = 0; e < snap.keys.size(); ++e) {
      snap.hash_dest[e] = ring.owner(snap.keys[e]);
    }
    snap.current = snap.hash_dest;
    t.snapshot_micros = snap_timer.elapsed_micros();

    MixedPlanner planner;
    WallTimer plan_timer;
    const RebalancePlan plan = planner.plan(snap, pcfg);
    t.plan_micros = plan_timer.elapsed_micros();
    if (r == 0 || t.total() < best_sketch.total()) best_sketch = t;

    if (r == rounds - 1) {
      entries = snap.num_entries();
      compact_moves = plan.moves.size();
      theta_before = PartitionSnapshot::max_theta(dense.current_loads());
      // Structural no-O(|K|) checks: every planning-path structure is
      // entry-aligned, and entries are bounded by the heavy capacity.
      compact_structural_ok =
          !snap.keys.empty() && snap.num_entries() <= heavy_capacity &&
          plan.assignment.size() == snap.num_entries() &&
          plan.moves.size() <= snap.num_entries() &&
          snap.cold_cost.size() == static_cast<std::size_t>(num_instances);
      // Judge the compact plan under the exact ground truth: apply its
      // moves to the dense current assignment.
      std::vector<InstanceId> applied = dense.current;
      for (const KeyMove& mv : plan.moves) {
        applied[static_cast<std::size_t>(mv.key)] = mv.to;
      }
      theta_after_true =
          PartitionSnapshot::max_theta(dense.loads_under(applied));
    }
  }

  const double speedup = best_sketch.total() > 0
                             ? static_cast<double>(best_exact.total()) /
                                   static_cast<double>(best_sketch.total())
                             : 0.0;
  const bool pass_speedup = speedup >= 20.0;
  const bool pass_compact = compact_structural_ok;

  std::fprintf(stderr,
               "\n%-28s %15s %15s\n"
               "%-28s %15lld %15lld\n"
               "%-28s %15lld %15lld\n"
               "%-28s %15lld %15lld\n"
               "%-28s %15llu %15zu\n",
               "", "exact", "sketch",
               "snapshot micros",
               static_cast<long long>(best_exact.snapshot_micros),
               static_cast<long long>(best_sketch.snapshot_micros),
               "plan micros", static_cast<long long>(best_exact.plan_micros),
               static_cast<long long>(best_sketch.plan_micros),
               "total micros", static_cast<long long>(best_exact.total()),
               static_cast<long long>(best_sketch.total()),
               "planning entries",
               static_cast<unsigned long long>(num_keys), entries);
  std::fprintf(stderr,
               "speedup %.1fx (gate >= 20x: %s), compact structure: %s\n"
               "theta %.4f -> %.4f (true eval of the compact plan, %zu "
               "moves), ingest %.0f ms\n",
               speedup, pass_speedup ? "PASS" : "FAIL",
               pass_compact ? "PASS" : "FAIL", theta_before, theta_after_true,
               compact_moves, ingest_ms);

  std::printf(
      "{\n"
      "  \"bench\": \"micro_plan\",\n"
      "%s"
      "  \"workload\": {\"distribution\": \"zipf\", \"skew\": 1.2, "
      "\"keys\": %llu, \"tuples_per_interval\": %llu, \"instances\": %d, "
      "\"window\": %d, \"heavy_capacity\": %zu},\n"
      "  \"exact\":  {\"snapshot_micros\": %lld, \"plan_micros\": %lld, "
      "\"total_micros\": %lld},\n"
      "  \"sketch\": {\"snapshot_micros\": %lld, \"plan_micros\": %lld, "
      "\"total_micros\": %lld, \"entries\": %zu, \"moves\": %zu},\n"
      "  \"quality\": {\"theta_before\": %.6f, "
      "\"theta_after_true_eval\": %.6f},\n"
      "  \"speedup\": %.2f,\n"
      "  \"gates\": {\"speedup_ge_20x\": %s, \"no_dense_allocations\": %s}\n"
      "}\n",
      bench::env_json().c_str(),
      static_cast<unsigned long long>(num_keys),
      static_cast<unsigned long long>(tuples_per_interval),
      static_cast<int>(num_instances), window, heavy_capacity,
      static_cast<long long>(best_exact.snapshot_micros),
      static_cast<long long>(best_exact.plan_micros),
      static_cast<long long>(best_exact.total()),
      static_cast<long long>(best_sketch.snapshot_micros),
      static_cast<long long>(best_sketch.plan_micros),
      static_cast<long long>(best_sketch.total()), entries, compact_moves,
      theta_before, theta_after_true, speedup,
      pass_speedup ? "true" : "false", pass_compact ? "true" : "false");

  return (pass_speedup && pass_compact) ? 0 : 1;
}
