// Fig. 7 — "Load Skewness Phenomenon": cumulative distribution of
// per-instance workload skewness (max L(d) / L̄ per interval, collected
// over 50 intervals) under the pure hash-based scheme.
//   (a) varying the number of task instances N_D ∈ {5, 10, 20, 40}
//   (b) varying the key-domain size K ∈ {5e3, 1e4, 1e5, 1e6}
//
// Expected shape (paper): skewness grows with N_D; smaller key domains
// are far more skewed (K = 5000 reaches ~4x the average at the tail).
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/consistent_hash.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

/// Per-interval skewness samples (max load / average load) of hashing the
/// synthetic Zipf workload onto nd instances.
std::vector<double> skew_samples(InstanceId nd, std::uint64_t num_keys,
                                 int intervals) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = num_keys;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 0.0;
  opts.sample_noise = true;  // natural per-interval variation
  opts.seed = 7 + num_keys + static_cast<std::uint64_t>(nd);
  ZipfFluctuatingSource source(opts);
  const ConsistentHashRing ring(nd, 128, 5);

  std::vector<InstanceId> dest(static_cast<std::size_t>(num_keys));
  for (std::size_t k = 0; k < dest.size(); ++k) {
    dest[k] = ring.owner(static_cast<KeyId>(k));
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(intervals));
  for (int i = 0; i < intervals; ++i) {
    const auto load = source.next_interval();
    std::vector<double> inst(static_cast<std::size_t>(nd), 0.0);
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      inst[static_cast<std::size_t>(dest[k])] +=
          static_cast<double>(load.counts[k]);
    }
    double total = 0.0;
    double max = 0.0;
    for (const double l : inst) {
      total += l;
      max = std::max(max, l);
    }
    samples.push_back(max / (total / static_cast<double>(nd)));
  }
  return samples;
}

void print_cdf(const std::string& title,
               const std::vector<std::pair<std::string, std::vector<double>>>&
                   series) {
  std::vector<std::string> cols = {"percentile"};
  for (const auto& [name, values] : series) cols.push_back(name);
  ResultTable table(title, cols);
  for (const double q : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<std::string> row = {fmt(q * 100.0, 0) + "%"};
    for (const auto& [name, values] : series) {
      row.push_back(fmt(percentile(values, q), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
}

}  // namespace

int main() {
  constexpr int kIntervals = 50;

  std::vector<std::pair<std::string, std::vector<double>>> by_nd;
  for (const InstanceId nd : {5, 10, 20, 40}) {
    by_nd.emplace_back("ND=" + std::to_string(nd),
                       skew_samples(nd, 100'000, kIntervals));
  }
  print_cdf("Fig 7(a) workload skewness CDF vs #instances (K=1e5)", by_nd);

  std::vector<std::pair<std::string, std::vector<double>>> by_k;
  for (const std::uint64_t k : {5'000ULL, 10'000ULL, 100'000ULL,
                                1'000'000ULL}) {
    by_k.emplace_back("K=" + std::to_string(k),
                      skew_samples(10, k, kIntervals));
  }
  print_cdf("Fig 7(b) workload skewness CDF vs key-domain size (ND=10)",
            by_k);
  return 0;
}
