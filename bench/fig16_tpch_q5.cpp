// Fig. 16 — dynamic adjustment on the streaming TPC-H Q5 pipeline
// (DBGen-mini with Zipf z = 0.8 foreign keys, distribution change every
// 15 minutes, one-hour run, window = 5 minutes), θmax ∈ {0.1, 0.2}, for
// Mixed / Readj / Storm / MinTable.
//
// Expected shape (paper): Storm's throughput collapses at every
// distribution change and stays low; Mixed recovers quickly and holds
// the best throughput under both tolerances; Readj and MinTable recover
// more slowly / with deeper dips.
#include "baselines/readj.h"
#include "bench_common.h"
#include "core/planners.h"
#include "engine/sim_pipeline.h"
#include "workload/tpch.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

constexpr std::int64_t kIntervalSeconds = 60;  // 60 intervals over 1 hour
constexpr InstanceId kStageInstances = 8;
// Per-stage per-tuple costs calibrated so the pipeline runs near
// saturation at the generated rates (~2000 orders and ~8000 lineitems
// per 60 s interval over 8 instances of 1 virtual CPU-second each).
constexpr double kStageCost[3] = {3'600.0, 900.0, 850.0};

const tpch::Tables& tables() {
  static const tpch::Tables t = [] {
    tpch::Scale scale;
    scale.customers = 15'000;
    scale.suppliers = 1'000;
    scale.orders = 120'000;
    scale.lineitems_per_order = 4;
    scale.run_seconds = 3'600;
    scale.epoch_seconds = 900;  // distribution change every 15 min
    auto generated = tpch::Tables::generate(scale);
    generated.validate();
    return generated;
  }();
  return t;
}

enum class Mode { kMixed, kReadj, kStorm, kMinTable };

std::unique_ptr<SimEngine> make_stage(const tpch::Q5Workload& workload,
                                      int stage, Mode mode, double theta) {
  SimConfig cfg;
  cfg.num_instances = kStageInstances;
  cfg.interval_micros = 1'000'000;
  cfg.state_window = 5;  // 5-minute window over 1-minute intervals
  auto op = std::make_unique<UniformCostOperator>(
      kStageCost[static_cast<std::size_t>(stage)], 24.0);
  auto source = workload.stage_source(stage);
  const std::size_t keys = workload.stage_num_keys(stage);
  switch (mode) {
    case Mode::kStorm:
      return std::make_unique<SimEngine>(cfg, std::move(op),
                                         std::move(source),
                                         RoutingMode::kHashOnly);
    case Mode::kMixed:
      return std::make_unique<SimEngine>(
          cfg, std::move(op), std::move(source),
          make_controller(std::make_unique<MixedPlanner>(), kStageInstances,
                          keys, theta, 0, 5));
    case Mode::kReadj:
      return std::make_unique<SimEngine>(
          cfg, std::move(op), std::move(source),
          make_controller(std::make_unique<ReadjPlanner>(), kStageInstances,
                          keys, theta, 0, 5));
    case Mode::kMinTable:
      return std::make_unique<SimEngine>(
          cfg, std::move(op), std::move(source),
          make_controller(std::make_unique<MinTablePlanner>(),
                          kStageInstances, keys, theta, 0, 5));
  }
  return nullptr;
}

std::vector<double> run_pipeline(Mode mode, double theta) {
  const tpch::Q5Workload workload(tables(), kIntervalSeconds);
  std::vector<std::unique_ptr<SimEngine>> stages;
  for (int s = 0; s < 3; ++s) {
    stages.push_back(make_stage(workload, s, mode, theta));
  }
  SimPipeline pipeline(std::move(stages));
  std::vector<double> series;
  for (int i = 0; i < workload.num_intervals(); ++i) {
    series.push_back(pipeline.step().throughput_tps);
  }
  return series;
}

void print_theta(double theta) {
  ResultTable table("Fig 16 TPC-H Q5 throughput (tuples/s), theta_max=" +
                        fmt(theta, 1),
                    {"t_sec", "Mixed", "Readj", "Storm", "MinTable"});
  const auto mixed = run_pipeline(Mode::kMixed, theta);
  const auto readj = run_pipeline(Mode::kReadj, theta);
  const auto storm = run_pipeline(Mode::kStorm, theta);
  const auto mintable = run_pipeline(Mode::kMinTable, theta);
  for (std::size_t i = 0; i < mixed.size(); i += 3) {
    table.add_row({std::to_string((i + 1) * kIntervalSeconds),
                   fmt(mixed[i], 0), fmt(readj[i], 0), fmt(storm[i], 0),
                   fmt(mintable[i], 0)});
  }
  table.print();
  // Summary row: run averages.
  const auto avg = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (const double x : v) acc += x;
    return acc / static_cast<double>(v.size());
  };
  std::printf("run averages: Mixed=%.0f Readj=%.0f Storm=%.0f MinTable=%.0f\n",
              avg(mixed), avg(readj), avg(storm), avg(mintable));
}

}  // namespace

int main() {
  print_theta(0.1);
  print_theta(0.2);
  return 0;
}
