// Fig. 8 — scheduling efficiency and migration cost with varying number
// of task instances N_D ∈ {5..40}, Mixed vs MinTable, windows w ∈ {1, 5}.
//
// Expected shape (paper): generation time grows with N_D for both
// algorithms (Mixed slightly above MinTable); Mixed's migration cost is
// much lower than MinTable's for N_D ≤ 35 and approaches it at N_D = 40
// (table-bound degeneration); w = 5 migrates less than w = 1.
#include "bench_common.h"
#include "core/planners.h"
#include "workload/synthetic.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

DriverResult run(InstanceId nd, int window, bool mixed) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 100'000;
  opts.skew = 0.85;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 1.0;
  opts.reference_instances = nd;
  opts.seed = 11;
  ZipfFluctuatingSource source(opts);

  DriverOptions dopts;
  dopts.num_instances = nd;
  dopts.theta_max = 0.08;
  // Amax scales with the expected number of displaced hot keys.
  dopts.max_table_entries = 3000;
  dopts.window = window;
  dopts.intervals = 12;
  PlannerPtr planner = mixed ? PlannerPtr(std::make_unique<MixedPlanner>())
                             : PlannerPtr(std::make_unique<MinTablePlanner>());
  return drive_planner(source, std::move(planner), dopts);
}

}  // namespace

int main() {
  ResultTable time_table(
      "Fig 8(a) avg generation time (ms) vs ND",
      {"ND", "Mixed", "MinTable"});
  ResultTable cost_table(
      "Fig 8(b) migration cost (%) vs ND",
      {"ND", "Mixed w=1", "MinTable w=1", "Mixed w=5", "MinTable w=5"});

  for (const InstanceId nd : {5, 10, 15, 20, 25, 30, 35, 40}) {
    const auto mixed_w1 = run(nd, 1, true);
    const auto mintable_w1 = run(nd, 1, false);
    const auto mixed_w5 = run(nd, 5, true);
    const auto mintable_w5 = run(nd, 5, false);
    time_table.add_row({std::to_string(nd),
                        fmt(mixed_w1.generation_ms.mean(), 2),
                        fmt(mintable_w1.generation_ms.mean(), 2)});
    cost_table.add_row({std::to_string(nd),
                        fmt(mixed_w1.migration_pct.mean(), 2),
                        fmt(mintable_w1.migration_pct.mean(), 2),
                        fmt(mixed_w5.migration_pct.mean(), 2),
                        fmt(mintable_w5.migration_pct.mean(), 2)});
  }
  time_table.print();
  cost_table.print();
  return 0;
}
