// Fig. 14 — throughput on the "real" workloads versus θmax:
//   (a) Social (word count; Storm / Readj / Mixed / PKG / MinTable)
//   (b) Stock (windowed self-join; Storm / Readj / Mixed / MinTable —
//       PKG cannot run joins, exactly as in the paper).
//
// Expected shape (paper): best throughput at the strictest θmax = 0.02
// for Mixed; Readj catches up only at relaxed θmax (0.3 / 0.15); PKG is
// θ-insensitive, below Mixed by ~10%; MinTable pays its migration volume.
#include "baselines/readj.h"
#include "bench_common.h"
#include "core/planners.h"
#include "workload/social.h"
#include "workload/stock.h"

using namespace skewless;
using namespace skewless::bench;

namespace {

constexpr InstanceId kInstances = 10;
constexpr int kIntervals = 20;
constexpr int kSkip = 5;

std::unique_ptr<WorkloadSource> social_source() {
  SocialSource::Options opts;
  opts.num_words = 50'000;
  opts.skew = 0.95;
  // Saturation point: 1.9M tuples x 5 us / 10 instances = 0.95 average
  // utilization (the paper "force[s] the system to reach a saturation
  // point ... with the requirement of absolute load balancing").
  opts.tuples_per_interval = 1'900'000;
  opts.drift_fraction = 0.03;
  return std::make_unique<SocialSource>(opts);
}

std::unique_ptr<WorkloadSource> stock_source() {
  StockSource::Options opts;
  opts.tuples_per_interval = 900'000;
  opts.burst_probability = 0.5;
  return std::make_unique<StockSource>(opts);
}

double run_social(int which, double theta) {
  SimConfig cfg;
  cfg.num_instances = kInstances;
  // Modest migration bandwidth so migration volume has a visible price
  // (separates MinTable's clean-everything strategy from Mixed).
  cfg.migration_bytes_per_sec = 10.0 * 1024 * 1024;
  auto op = std::make_unique<UniformCostOperator>(5.0, 8.0);
  std::unique_ptr<SimEngine> engine;
  switch (which) {
    case 0:
      engine = std::make_unique<SimEngine>(cfg, std::move(op),
                                           social_source(),
                                           RoutingMode::kHashOnly);
      break;
    case 1:
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), social_source(),
          make_controller(std::make_unique<ReadjPlanner>(), kInstances,
                          50'000, theta));
      break;
    case 2:
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), social_source(),
          make_controller(std::make_unique<MixedPlanner>(), kInstances,
                          50'000, theta));
      break;
    case 3:
      engine = std::make_unique<SimEngine>(cfg, std::move(op),
                                           social_source(),
                                           RoutingMode::kPkg);
      break;
    default:
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), social_source(),
          make_controller(std::make_unique<MinTablePlanner>(), kInstances,
                          50'000, theta));
      break;
  }
  return mean_of(engine->run(kIntervals), throughput_of, kSkip) / 1000.0;
}

double run_stock(int which, double theta) {
  SimConfig cfg;
  cfg.num_instances = kInstances;
  cfg.state_window = 3;
  cfg.migration_bytes_per_sec = 10.0 * 1024 * 1024;
  // Self-join: per-tuple cost grows with in-window state. The probe
  // factor is calibrated so that a burst symbol's work approaches (but
  // does not exceed) one instance's capacity — the regime where moving
  // the hot symbol is both necessary and sufficient.
  auto op = std::make_unique<SelfJoinCostOperator>(2.0, 16.0, 0.0002);
  std::unique_ptr<SimEngine> engine;
  switch (which) {
    case 0:
      engine = std::make_unique<SimEngine>(cfg, std::move(op),
                                           stock_source(),
                                           RoutingMode::kHashOnly);
      break;
    case 1:
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), stock_source(),
          make_controller(std::make_unique<ReadjPlanner>(), kInstances,
                          1'036, theta, 0, 3));
      break;
    case 2:
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), stock_source(),
          make_controller(std::make_unique<MixedPlanner>(), kInstances,
                          1'036, theta, 0, 3));
      break;
    default:
      engine = std::make_unique<SimEngine>(
          cfg, std::move(op), stock_source(),
          make_controller(std::make_unique<MinTablePlanner>(), kInstances,
                          1'036, theta, 0, 3));
      break;
  }
  return mean_of(engine->run(kIntervals), throughput_of, kSkip) / 1000.0;
}

}  // namespace

int main() {
  ResultTable social_table(
      "Fig 14(a) Social word-count throughput (k tuples/s)",
      {"theta_max", "Storm", "Readj", "Mixed", "PKG", "MinTable"});
  for (const double theta : {0.02, 0.08, 0.15, 0.3}) {
    social_table.add_row({fmt(theta, 2), fmt(run_social(0, theta), 1),
                          fmt(run_social(1, theta), 1),
                          fmt(run_social(2, theta), 1),
                          fmt(run_social(3, theta), 1),
                          fmt(run_social(4, theta), 1)});
  }
  social_table.print();

  ResultTable stock_table(
      "Fig 14(b) Stock self-join throughput (k tuples/s)",
      {"theta_max", "Storm", "Readj", "Mixed", "MinTable"});
  for (const double theta : {0.02, 0.08, 0.15, 0.3}) {
    stock_table.add_row({fmt(theta, 2), fmt(run_stock(0, theta), 1),
                         fmt(run_stock(1, theta), 1),
                         fmt(run_stock(2, theta), 1),
                         fmt(run_stock(3, theta), 1)});
  }
  stock_table.print();
  return 0;
}
