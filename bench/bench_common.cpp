#include "bench_common.h"

#include <algorithm>
#include <thread>

#include "common/consistent_hash.h"
#include "common/hash.h"
#include "sketch/simd/sketch_kernels.h"

namespace skewless::bench {

std::string env_json() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::string out = "  \"hardware_threads\": ";
  out += std::to_string(hw);
  out += ",\n  \"kernel_tier\": \"";
  out += simd::active_kernels().name;
  out += "\",\n";
  return out;
}

DriverResult drive_planner(WorkloadSource& source, PlannerPtr planner,
                           const DriverOptions& opts) {
  ControllerConfig cfg;
  cfg.planner.theta_max = opts.theta_max;
  cfg.planner.max_table_entries = opts.max_table_entries;
  cfg.planner.beta = opts.beta;
  cfg.window = opts.window;
  cfg.stats_mode = opts.stats_mode;
  cfg.sketch = opts.sketch;
  Controller controller(
      AssignmentFunction(
          ConsistentHashRing(opts.num_instances, 128, opts.ring_seed),
          opts.max_table_entries),
      std::move(planner), cfg, source.num_keys());

  DriverResult result;
  for (int i = 0; i < opts.intervals; ++i) {
    const IntervalWorkload load = source.next_interval();
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      if (load.counts[k] == 0) continue;
      const auto n = static_cast<double>(load.counts[k]);
      double per_tuple_bytes = opts.bytes_per_tuple;
      if (opts.state_heterogeneity > 0.0) {
        const double u =
            static_cast<double>(hash64(static_cast<KeyId>(k), 0xb17e) >> 11) *
            0x1.0p-53;
        per_tuple_bytes *= 1.0 + opts.state_heterogeneity * u;
      }
      // Destination-attributed, like the engines' record paths: sketch
      // mode needs it for exact per-instance cold residuals (the compact
      // planning view); the exact provider ignores it.
      controller.record(static_cast<KeyId>(k), opts.cost_per_tuple * n,
                        per_tuple_bytes * n, 1,
                        controller.assignment()(static_cast<KeyId>(k)));
    }
    const auto plan = controller.end_interval();
    result.theta_before.add(controller.last_observed_theta());
    result.theta_trajectory.push_back(controller.last_observed_theta());
    result.rebalanced_at.push_back(plan.has_value() ? 1 : 0);
    ++result.intervals;
    if (plan.has_value()) {
      ++result.rebalances;
      result.generation_ms.add(
          static_cast<double>(plan->generation_micros) / 1000.0);
      const Bytes total = controller.stats().total_windowed_state();
      result.migration_pct.add(
          total > 0.0 ? plan->migration_bytes / total * 100.0 : 0.0);
      result.table_size.add(static_cast<double>(plan->table_size));
      result.moves.add(static_cast<double>(plan->moves.size()));
      result.theta_after.add(plan->achieved_theta);
    }
  }
  result.promotions = controller.heavy_promotions();
  result.demotions = controller.heavy_demotions();
  result.stats_memory_bytes = controller.stats_memory_bytes();
  return result;
}

std::unique_ptr<Controller> make_controller(PlannerPtr planner,
                                            InstanceId num_instances,
                                            std::size_t num_keys,
                                            double theta_max,
                                            std::size_t max_table_entries,
                                            int window,
                                            std::uint64_t ring_seed) {
  ControllerConfig cfg;
  cfg.planner.theta_max = theta_max;
  cfg.planner.max_table_entries = max_table_entries;
  cfg.window = window;
  return std::make_unique<Controller>(
      AssignmentFunction(
          ConsistentHashRing(num_instances, 128, ring_seed),
          max_table_entries),
      std::move(planner), cfg, num_keys);
}

double mean_of(const std::vector<IntervalMetrics>& ms,
               double (*extract)(const IntervalMetrics&), int skip) {
  double acc = 0.0;
  int n = 0;
  for (std::size_t i = static_cast<std::size_t>(skip); i < ms.size(); ++i) {
    acc += extract(ms[i]);
    ++n;
  }
  return n > 0 ? acc / n : 0.0;
}

}  // namespace skewless::bench
