// Partitioner playground: plan one rebalance step with every algorithm in
// the library and compare the trade-offs the paper studies — balance
// achieved, migration volume, routing-table size, planning time.
//
//   $ ./partitioner_playground [num_keys] [instances] [skew] [theta_max]
#include <cstdio>
#include <cstdlib>

#include "baselines/dkg.h"
#include "baselines/readj.h"
#include "common/consistent_hash.h"
#include "common/table.h"
#include "common/zipf.h"
#include "core/compact.h"
#include "core/planners.h"

using namespace skewless;

int main(int argc, char** argv) {
  const std::uint64_t num_keys =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 50'000;
  const InstanceId nd = argc > 2 ? std::atoi(argv[2]) : 10;
  const double skew = argc > 3 ? std::atof(argv[3]) : 0.85;
  const double theta_max = argc > 4 ? std::atof(argv[4]) : 0.08;

  // A single statistics snapshot: Zipf tuple counts hashed over nd
  // instances, state proportional to per-key volume.
  const ZipfDistribution zipf(num_keys, skew, true, 99);
  const auto counts = zipf.expected_counts(num_keys * 10);
  const ConsistentHashRing ring(nd);
  PartitionSnapshot snap;
  snap.num_instances = nd;
  snap.cost.resize(num_keys);
  snap.state.resize(num_keys);
  snap.hash_dest.resize(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    snap.cost[k] = static_cast<Cost>(counts[k]);
    snap.state[k] = 8.0 * static_cast<Bytes>(counts[k]);
    snap.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
  }
  snap.current = snap.hash_dest;
  snap.validate();

  const auto initial_loads = snap.current_loads();
  std::printf("snapshot: K=%llu, ND=%d, z=%.2f -> initial max theta %.3f\n\n",
              static_cast<unsigned long long>(num_keys), nd, skew,
              PartitionSnapshot::max_theta(initial_loads));

  PlannerConfig cfg;
  cfg.theta_max = theta_max;
  cfg.max_table_entries = 3'000;

  std::vector<PlannerPtr> planners;
  planners.push_back(std::make_unique<MinTablePlanner>());
  planners.push_back(std::make_unique<MinMigPlanner>());
  planners.push_back(std::make_unique<MixedPlanner>());
  planners.push_back(std::make_unique<MixedBfPlanner>(64));
  planners.push_back(std::make_unique<CompactMixedPlanner>(3));
  planners.push_back(std::make_unique<ReadjPlanner>());
  planners.push_back(std::make_unique<DkgPlanner>());
  planners.push_back(std::make_unique<LlfdNoAdjustPlanner>());

  ResultTable table("one-shot rebalance comparison (theta_max=" +
                        fmt(theta_max, 2) + ")",
                    {"algorithm", "theta'", "balanced", "moves",
                     "migration_bytes", "table_size", "gen_ms"});
  for (const auto& planner : planners) {
    const auto plan = planner->plan(snap, cfg);
    table.add_row({planner->name(), fmt(plan.achieved_theta, 4),
                   plan.balanced ? "yes" : "no",
                   std::to_string(plan.moves.size()),
                   fmt(plan.migration_bytes, 0),
                   std::to_string(plan.table_size),
                   fmt(static_cast<double>(plan.generation_micros) / 1000.0,
                       2)});
  }
  table.print();
  std::printf(
      "\nreading guide: MinMig minimizes migration but cannot bound the\n"
      "table; MinTable minimizes the table but migrates more; Mixed lands\n"
      "between per the paper's Eq. (3); LLFD-NoAdjust shows the\n"
      "re-overloading problem the Adjust subroutine repairs.\n");
  return 0;
}
