// Quickstart: dynamic key-based load balancing in ~80 lines.
//
// Builds a word-count operator on the real threaded engine, feeds it a
// skewed Zipf stream whose distribution fluctuates, and lets the Mixed
// rebalancer keep the workers balanced. Prints per-interval imbalance and
// the migrations the controller decided.
//
//   $ ./quickstart [workers] [intervals]
#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "core/controller.h"
#include "core/planners.h"
#include "engine/threaded_engine.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

using namespace skewless;

int main(int argc, char** argv) {
  const InstanceId workers =
      argc > 1 ? static_cast<InstanceId>(std::atoi(argv[1])) : 4;
  const int intervals = argc > 2 ? std::atoi(argv[2]) : 8;
  set_log_level(LogLevel::kInfo);  // narrate the rebalance protocol

  // 1. A skewed, fluctuating workload: 50k words, Zipf z = 0.9, the
  //    distribution shifts by up to 40% of the mean load per interval.
  ZipfFluctuatingSource::Options wopts;
  wopts.num_keys = 50'000;
  wopts.skew = 0.9;
  wopts.tuples_per_interval = 200'000;
  wopts.fluctuation = 0.4;
  ZipfFluctuatingSource source(wopts);

  // 2. The rebalance controller: consistent-hash default placement plus a
  //    bounded explicit routing table, re-planned by the Mixed algorithm
  //    whenever some worker's load deviates more than 10% from the mean.
  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.10;
  ccfg.planner.max_table_entries = 2'000;  // Amax
  auto controller = std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(workers), 2'000),
      std::make_unique<MixedPlanner>(), ccfg, wopts.num_keys);

  // 3. The engine: one router/controller thread (this one) plus `workers`
  //    stateful worker threads running the word-count logic.
  ThreadedEngine engine(ThreadedConfig{.num_workers = workers},
                        std::make_shared<WordCountLogic>(),
                        std::move(controller));

  std::printf("interval  processed  throughput(k/s)  latency(ms)  theta  migrated\n");
  const auto reports = engine.run(source, intervals);
  for (const auto& r : reports) {
    std::printf("%8lld  %9llu  %15.1f  %11.2f  %5.3f  %s\n",
                static_cast<long long>(r.interval),
                static_cast<unsigned long long>(r.processed),
                r.throughput_tps / 1000.0, r.avg_latency_ms, r.max_theta,
                r.migrated
                    ? ("yes (" + std::to_string(r.moves) + " keys)").c_str()
                    : "no");
  }

  engine.shutdown();
  std::printf("\ntotal tuples processed: %llu, distinct keys with state: %zu\n",
              static_cast<unsigned long long>(engine.total_processed()),
              engine.total_state_entries());
  return 0;
}
