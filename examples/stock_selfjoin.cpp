// Stock self-join example: the paper's second real-world scenario.
//
// A windowed self-join over a 1,036-symbol exchange feed ("find potential
// high-frequency players with dense buying and selling behavior"). The
// feed is bursty: random symbols multiply their volume for a few
// intervals, which melts whichever worker holds them — until the Mixed
// rebalancer migrates the hot symbols (and their in-window state) away.
//
// Runs the same feed twice on the threaded engine — plain hashing vs the
// Mixed controller — and compares worker imbalance and throughput.
//
//   $ ./stock_selfjoin [workers] [intervals]
#include <cstdio>
#include <cstdlib>

#include "core/controller.h"
#include "core/planners.h"
#include "engine/threaded_engine.h"
#include "workload/operators.h"
#include "workload/stock.h"

using namespace skewless;

namespace {

StockSource make_feed() {
  StockSource::Options opts;
  opts.tuples_per_interval = 150'000;
  opts.burst_probability = 0.8;
  opts.burst_min_factor = 15.0;
  opts.burst_max_factor = 40.0;
  return StockSource(opts);
}

struct RunSummary {
  double mean_theta = 0.0;
  double mean_throughput = 0.0;
  std::uint64_t matches = 0;
  int migrations = 0;
};

RunSummary run(bool balanced, InstanceId workers, int intervals) {
  auto feed = make_feed();
  auto logic = std::make_shared<SelfJoinLogic>(1.0, 0.005, 8192);

  std::unique_ptr<ThreadedEngine> engine;
  if (balanced) {
    ControllerConfig ccfg;
    ccfg.planner.theta_max = 0.10;
    ccfg.planner.max_table_entries = 0;
    ccfg.window = 3;
    auto controller = std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(workers), 0),
        std::make_unique<MixedPlanner>(), ccfg, feed.num_keys());
    engine = std::make_unique<ThreadedEngine>(
        ThreadedConfig{.num_workers = workers}, logic, std::move(controller));
  } else {
    engine = std::make_unique<ThreadedEngine>(
        ThreadedConfig{.num_workers = workers}, logic, workers,
        /*ring_seed=*/0x5eed);
  }

  RunSummary summary;
  const auto reports = engine->run(feed, intervals);
  for (const auto& r : reports) {
    summary.mean_theta += r.max_theta;
    summary.mean_throughput += r.throughput_tps;
    summary.migrations += r.migrated ? 1 : 0;
  }
  summary.mean_theta /= static_cast<double>(reports.size());
  summary.mean_throughput /= static_cast<double>(reports.size());
  engine->shutdown();
  summary.matches = engine->total_output_tuples();
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  const InstanceId workers =
      argc > 1 ? static_cast<InstanceId>(std::atoi(argv[1])) : 4;
  const int intervals = argc > 2 ? std::atoi(argv[2]) : 6;

  std::printf("running bursty stock self-join on %d workers, %d intervals\n\n",
              workers, intervals);
  const auto hash = run(/*balanced=*/false, workers, intervals);
  const auto mixed = run(/*balanced=*/true, workers, intervals);

  std::printf("%-22s %14s %14s\n", "", "hash-only", "Mixed");
  std::printf("%-22s %14.3f %14.3f\n", "mean imbalance theta", hash.mean_theta,
              mixed.mean_theta);
  std::printf("%-22s %14.1f %14.1f\n", "mean throughput (k/s)",
              hash.mean_throughput / 1000.0, mixed.mean_throughput / 1000.0);
  std::printf("%-22s %14llu %14llu\n", "join matches",
              static_cast<unsigned long long>(hash.matches),
              static_cast<unsigned long long>(mixed.matches));
  std::printf("%-22s %14d %14d\n", "migrations", hash.migrations,
              mixed.migrations);
  std::printf("\n(hash-only imbalance spikes with every burst; Mixed tracks"
              " it back under theta_max while join state follows the keys)\n");
  return 0;
}
