// Streaming TPC-H Q5: a multi-operator pipeline on the simulation engine.
//
// Generates a mini-DBGen dataset (Zipf-skewed foreign keys, hotness
// re-drawn every epoch), validates it, cross-checks the Q5 answer with a
// naive in-memory join, then streams the three keyed join stages through
// SimPipeline twice — plain hashing vs Mixed — and reports per-epoch
// throughput. Demonstrates the Fig. 1 effect: one imbalanced upstream
// join stalls the whole pipeline.
//
//   $ ./tpch_q5_pipeline [orders] [interval_seconds]
#include <cstdio>
#include <cstdlib>

#include "core/controller.h"
#include "core/planners.h"
#include "engine/sim_pipeline.h"
#include "workload/tpch.h"

using namespace skewless;

namespace {

constexpr InstanceId kStageInstances = 8;
constexpr double kStageCost[3] = {3'600.0, 900.0, 850.0};

std::unique_ptr<Controller> stage_controller(std::size_t num_keys) {
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.1;
  cfg.planner.max_table_entries = 0;
  cfg.window = 5;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(kStageInstances), 0),
      std::make_unique<MixedPlanner>(), cfg, num_keys);
}

std::vector<double> run(const tpch::Q5Workload& workload, bool balanced) {
  std::vector<std::unique_ptr<SimEngine>> stages;
  for (int s = 0; s < 3; ++s) {
    SimConfig cfg;
    cfg.num_instances = kStageInstances;
    cfg.state_window = 5;
    auto op = std::make_unique<UniformCostOperator>(
        kStageCost[static_cast<std::size_t>(s)], 24.0);
    if (balanced) {
      stages.push_back(std::make_unique<SimEngine>(
          cfg, std::move(op), workload.stage_source(s),
          stage_controller(workload.stage_num_keys(s))));
    } else {
      stages.push_back(std::make_unique<SimEngine>(
          cfg, std::move(op), workload.stage_source(s),
          RoutingMode::kHashOnly));
    }
  }
  SimPipeline pipeline(std::move(stages));
  std::vector<double> series;
  for (int i = 0; i < workload.num_intervals(); ++i) {
    series.push_back(pipeline.step().throughput_tps);
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  tpch::Scale scale;
  scale.orders = argc > 1 ? std::atoll(argv[1]) : 60'000;
  scale.run_seconds = 1'800;
  scale.epoch_seconds = 450;
  const std::int64_t interval_sec = argc > 2 ? std::atoll(argv[2]) : 60;

  std::printf("generating mini TPC-H (orders=%lld, %d customers, %d suppliers)"
              "...\n",
              static_cast<long long>(scale.orders), scale.customers,
              scale.suppliers);
  const auto tables = tpch::Tables::generate(scale);
  tables.validate();
  std::printf("generated %zu lineitems; referential integrity OK\n",
              tables.lineitems.size());

  const auto revenue = tables.q5_revenue_by_nation();
  double best = 0.0;
  std::size_t best_nation = 0;
  for (std::size_t n = 0; n < revenue.size(); ++n) {
    if (revenue[n] > best) {
      best = revenue[n];
      best_nation = n;
    }
  }
  std::printf("Q5 reference answer: top nation %s, revenue %.0f\n\n",
              tables.nations[best_nation].name.c_str(), best);

  const tpch::Q5Workload workload(tables, interval_sec);
  const auto hash_series = run(workload, /*balanced=*/false);
  const auto mixed_series = run(workload, /*balanced=*/true);

  std::printf("%8s %14s %14s\n", "t (s)", "hash (tup/s)", "Mixed (tup/s)");
  for (std::size_t i = 0; i < hash_series.size(); i += 2) {
    std::printf("%8lld %14.0f %14.0f\n",
                static_cast<long long>((i + 1) * interval_sec),
                hash_series[i], mixed_series[i]);
  }
  double hash_avg = 0.0;
  double mixed_avg = 0.0;
  for (std::size_t i = 0; i < hash_series.size(); ++i) {
    hash_avg += hash_series[i];
    mixed_avg += mixed_series[i];
  }
  hash_avg /= static_cast<double>(hash_series.size());
  mixed_avg /= static_cast<double>(mixed_series.size());
  std::printf("\nrun averages: hash=%.0f  Mixed=%.0f  (%.1f%% improvement)\n",
              hash_avg, mixed_avg, (mixed_avg / hash_avg - 1.0) * 100.0);
  return 0;
}
