// Elastic scaling example: short-term fluctuation handled by the Mixed
// rebalancer, long-term workload growth handled by the ElasticityAdvisor
// (the paper's future-work mechanism, see src/core/elasticity.h).
//
// The offered load ramps up over time; the advisor detects the sustained
// overload, the engine adds an instance, the controller pins placements
// (no implicit state movement) and Mixed shifts load onto the newcomer.
//
//   $ ./elastic_scaling [intervals]
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "core/controller.h"
#include "core/elasticity.h"
#include "core/planners.h"
#include "engine/sim_engine.h"
#include "workload/synthetic.h"

using namespace skewless;

namespace {

/// Zipf workload whose volume grows ~6% per interval (a long-term shift).
class GrowingZipfSource final : public WorkloadSource {
 public:
  GrowingZipfSource(std::uint64_t num_keys, std::uint64_t base_tuples)
      : zipf_(num_keys, 0.85, true, 3), base_(base_tuples) {}

  [[nodiscard]] std::size_t num_keys() const override {
    return static_cast<std::size_t>(zipf_.num_keys());
  }

  [[nodiscard]] IntervalWorkload next_interval() override {
    const auto total = static_cast<std::uint64_t>(
        static_cast<double>(base_) * std::pow(1.06, interval_++));
    IntervalWorkload load;
    load.counts = zipf_.expected_counts(total);
    return load;
  }

 private:
  ZipfDistribution zipf_;
  std::uint64_t base_;
  int interval_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int intervals = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::size_t num_keys = 20'000;
  InstanceId nd = 4;

  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.08;
  auto controller = std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(nd), 0),
      std::make_unique<MixedPlanner>(), ccfg, num_keys);

  SimConfig scfg;
  scfg.num_instances = nd;
  SimEngine engine(scfg, std::make_unique<UniformCostOperator>(4.0, 8.0),
                   std::make_unique<GrowingZipfSource>(num_keys, 400'000),
                   std::move(controller));

  ElasticityAdvisor::Options eopts;
  eopts.sustain_intervals = 3;
  eopts.cooldown_intervals = 4;
  ElasticityAdvisor advisor(eopts);

  std::printf("interval  instances  util   throughput(k/s)  advice\n");
  for (int i = 0; i < intervals; ++i) {
    const auto m = engine.step();
    double total_work = 0.0;
    for (const double w : m.instance_work) total_work += w;
    const double util =
        total_work / (static_cast<double>(engine.num_instances()) * 1e6);

    const auto advice = advisor.observe(util, engine.num_instances());
    const char* advice_str = "-";
    if (advice == ScalingAdvice::kScaleOut) {
      engine.add_instance();
      advice_str = "SCALE OUT";
    } else if (advice == ScalingAdvice::kScaleIn) {
      advice_str = "scale in (ignored in this demo)";
    }
    std::printf("%8d  %9d  %5.2f  %15.1f  %s\n", i, engine.num_instances(),
                util, m.throughput_tps / 1000.0, advice_str);
  }

  std::printf("\nfinal size suggestion for the last interval's work: %d "
              "instances at 80%% target utilization\n",
              suggest_instances(
                  static_cast<double>(engine.num_instances()) * 1e6 *
                      advisor.utilization_ewma(),
                  1e6, 0.8));
  return 0;
}
