#include "sketch/sketch_stats_window.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/controller.h"
#include "core/planners.h"
#include "core/sharded_controller.h"
#include "core/stats_window.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {
namespace {

SketchStatsConfig tiny_config(std::size_t heavy_capacity = 64,
                              double promote_fraction = 0.0) {
  SketchStatsConfig cfg;
  cfg.epsilon = 1e-3;
  cfg.delta = 0.01;
  cfg.heavy_capacity = heavy_capacity;
  cfg.promote_fraction = promote_fraction;
  return cfg;
}

TEST(SketchStatsWindow, FreshWindowIsZero) {
  const SketchStatsWindow w(100, 3, tiny_config());
  EXPECT_EQ(w.num_keys(), 100u);
  EXPECT_EQ(w.window(), 3);
  EXPECT_EQ(w.closed_intervals(), 0);
  EXPECT_EQ(w.total_windowed_state(), 0.0);
  EXPECT_EQ(w.heavy_count(), 0u);
  EXPECT_EQ(w.mode(), StatsMode::kSketch);
}

// With heavy capacity ≥ |K| and promote_fraction = 0, every active key is
// promoted at the first roll and tracked exactly from then on: the sketch
// window must agree with the exact window (w = 1 so the backfilled ring
// slot matches the exact expiry schedule).
TEST(SketchStatsWindow, AllKeysHeavyMatchesExactWindow) {
  const std::size_t kKeys = 40;
  StatsWindow exact(kKeys, 1);
  SketchStatsWindow sketch(kKeys, 1, tiny_config(64));
  Xoshiro256 rng(5);
  for (int interval = 0; interval < 4; ++interval) {
    for (KeyId k = 0; k < kKeys; ++k) {
      const Cost c = 1.0 + static_cast<double>(rng.next_below(50));
      const Bytes b = static_cast<double>(rng.next_below(100));
      exact.record(k, c, b, 2);
      sketch.record(k, c, b, 2);
    }
    exact.roll();
    sketch.roll();
    EXPECT_NEAR(sketch.total_windowed_state(), exact.total_windowed_state(),
                1e-6);
  }
  EXPECT_EQ(sketch.heavy_count(), kKeys);
  std::vector<Cost> cost_e, cost_s;
  std::vector<Bytes> state_e, state_s;
  exact.synthesize_dense(cost_e, state_e);
  sketch.synthesize_dense(cost_s, state_s);
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_NEAR(cost_s[k], cost_e[k], 1e-9) << "key " << k;
    EXPECT_NEAR(state_s[k], state_e[k], 1e-9) << "key " << k;
    EXPECT_EQ(sketch.last_cost_of(k), exact.last_cost_of(k));
    EXPECT_EQ(sketch.last_frequency_of(k), exact.last_frequency_of(k));
    EXPECT_EQ(sketch.windowed_state_of(k), exact.windowed_state_of(k));
  }
}

// With promotion disabled the provider is pure sketch — but the interval
// totals are tracked as scalars and must stay exact.
TEST(SketchStatsWindow, TotalsExactEvenWithoutHeavyTier) {
  const std::size_t kKeys = 500;
  SketchStatsConfig cfg = tiny_config(1, /*promote_fraction=*/1e9);
  StatsWindow exact(kKeys, 2);
  SketchStatsWindow sketch(kKeys, 2, cfg);
  const ZipfDistribution zipf(kKeys, 1.0, true, 7);
  for (int interval = 0; interval < 5; ++interval) {
    const auto counts = zipf.expected_counts(20'000);
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (counts[k] == 0) continue;
      const auto n = static_cast<double>(counts[k]);
      exact.record(static_cast<KeyId>(k), 2.0 * n, 8.0 * n, counts[k]);
      sketch.record(static_cast<KeyId>(k), 2.0 * n, 8.0 * n, counts[k]);
    }
    exact.roll();
    sketch.roll();
    EXPECT_EQ(sketch.heavy_count(), 0u);
    EXPECT_NEAR(sketch.total_windowed_state(), exact.total_windowed_state(),
                1e-6)
        << "interval " << interval;
  }
}

// The dense synthesized view must preserve aggregate mass: the cold tail
// is normalized against the exactly-tracked cold totals, heavy keys are
// exact, so column sums match the exact window's.
TEST(SketchStatsWindow, SynthesisPreservesAggregateMass) {
  const std::size_t kKeys = 2000;
  SketchStatsConfig cfg = tiny_config(16, 1e-3);
  cfg.epsilon = 5e-3;  // force collisions so normalization matters
  StatsWindow exact(kKeys, 1);
  SketchStatsWindow sketch(kKeys, 1, cfg);
  const ZipfDistribution zipf(kKeys, 1.1, true, 13);
  for (int interval = 0; interval < 3; ++interval) {
    const auto counts = zipf.expected_counts(50'000);
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (counts[k] == 0) continue;
      const auto n = static_cast<double>(counts[k]);
      exact.record(static_cast<KeyId>(k), 1.5 * n, 8.0 * n, counts[k]);
      sketch.record(static_cast<KeyId>(k), 1.5 * n, 8.0 * n, counts[k]);
    }
    exact.roll();
    sketch.roll();
  }
  std::vector<Cost> cost_e, cost_s;
  std::vector<Bytes> state_e, state_s;
  exact.synthesize_dense(cost_e, state_e);
  sketch.synthesize_dense(cost_s, state_s);
  const double sum_cost_e =
      std::accumulate(cost_e.begin(), cost_e.end(), 0.0);
  const double sum_cost_s =
      std::accumulate(cost_s.begin(), cost_s.end(), 0.0);
  const double sum_state_e =
      std::accumulate(state_e.begin(), state_e.end(), 0.0);
  const double sum_state_s =
      std::accumulate(state_s.begin(), state_s.end(), 0.0);
  // Promotion backfills shift a bounded sliver between tiers; aggregate
  // mass stays within a fraction of a percent.
  EXPECT_NEAR(sum_cost_s, sum_cost_e, 0.005 * sum_cost_e);
  EXPECT_NEAR(sum_state_s, sum_state_e, 0.005 * sum_state_e);
}

TEST(SketchStatsWindow, HeavyHittersAreTrackedExactlyAfterWarmup) {
  const std::size_t kKeys = 10'000;
  SketchStatsWindow sketch(kKeys, 1, tiny_config(64, 1e-3));
  const ZipfDistribution zipf(kKeys, 1.2, true, 3);
  const auto counts = zipf.expected_counts(100'000);
  // Interval 1: all keys cold; hot ones get promoted at the roll.
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    sketch.record(static_cast<KeyId>(k), static_cast<double>(counts[k]), 8.0,
                  counts[k]);
  }
  sketch.roll();
  EXPECT_GT(sketch.heavy_count(), 0u);
  // Interval 2: identical load; the hottest keys must now be exact.
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    sketch.record(static_cast<KeyId>(k), static_cast<double>(counts[k]), 8.0,
                  counts[k]);
  }
  sketch.roll();
  for (std::uint64_t rank = 0; rank < 10; ++rank) {
    const KeyId hot = zipf.key_at_rank(rank);
    ASSERT_TRUE(sketch.is_heavy(hot)) << "rank " << rank;
    EXPECT_DOUBLE_EQ(sketch.last_cost_of(hot),
                     static_cast<double>(counts[hot]));
    EXPECT_EQ(sketch.last_frequency_of(hot), counts[hot]);
  }
}

TEST(SketchStatsWindow, WindowedStateExpires) {
  SketchStatsWindow w(10, 2, tiny_config(16));
  w.record(3, 1.0, 100.0);
  w.roll();
  EXPECT_NEAR(w.total_windowed_state(), 100.0, 1e-9);
  w.record(3, 1.0, 50.0);
  w.roll();
  EXPECT_NEAR(w.total_windowed_state(), 150.0, 1e-9);
  w.roll();  // 100 expires
  EXPECT_NEAR(w.total_windowed_state(), 50.0, 1e-9);
  w.roll();  // 50 expires
  EXPECT_NEAR(w.total_windowed_state(), 0.0, 1e-9);
}

// Unlike StatsWindow (which asserts), the sketch provider auto-grows the
// logical domain: it allocates nothing per key.
TEST(SketchStatsWindow, RecordBeyondDomainAutoGrows) {
  SketchStatsWindow w(4, 1, tiny_config());
  w.record(1'000'000, 5.0, 8.0);
  EXPECT_EQ(w.num_keys(), 1'000'001u);
  w.roll();
  EXPECT_GE(w.last_cost_of(1'000'000), 5.0);
  std::vector<Cost> cost;
  std::vector<Bytes> state;
  w.synthesize_dense(cost, state);
  EXPECT_EQ(cost.size(), 1'000'001u);
}

TEST(SketchStatsWindow, MemoryIndependentOfDomainSize) {
  const SketchStatsWindow small(100, 1);
  const SketchStatsWindow large(10'000'000, 1);
  EXPECT_EQ(small.memory_bytes(), large.memory_bytes());
}

TEST(SketchStatsWindow, DefaultConfigAtLeastTenTimesSmallerThanExactAt1M) {
  const std::size_t kKeys = 1'000'000;
  const StatsWindow exact(kKeys, 1);
  const SketchStatsWindow sketch(kKeys, 1);
  EXPECT_GE(exact.memory_bytes(), 10 * sketch.memory_bytes());
}

// Idle demotion is the LEGACY policy (decay = false): under decayed
// tracking a briefly idle key keeps its standing on purpose — that
// retention is what stops a rotating hot set from thrashing the tier.
TEST(SketchStatsWindow, IdleHeavyKeysAreDemoted) {
  SketchStatsConfig cfg = tiny_config(16, 0.0);
  cfg.decay = false;
  SketchStatsWindow w(100, 1, cfg);
  w.record(7, 10.0, 4.0);
  w.roll();
  ASSERT_TRUE(w.is_heavy(7));
  // Silent for enough intervals with no windowed state -> demoted.
  for (int i = 0; i < 4; ++i) w.roll();
  EXPECT_FALSE(w.is_heavy(7));
  EXPECT_EQ(w.heavy_count(), 0u);
}

// The decay-mode counterpart: the same idle key survives those few
// intervals (its decayed standing has not collapsed), so the heavy tier
// keeps the key's exact history across the gap.
TEST(SketchStatsWindow, DecayedIdleHeavyKeyKeepsStanding) {
  SketchStatsWindow w(100, 1, tiny_config(16, 0.0));
  w.record(7, 10.0, 4.0);
  w.roll();
  ASSERT_TRUE(w.is_heavy(7));
  for (int i = 0; i < 4; ++i) w.roll();
  EXPECT_TRUE(w.is_heavy(7));
  EXPECT_EQ(w.heavy_count(), 1u);
}

// End-to-end: a controller in sketch mode must detect the imbalance and
// produce a plan that fixes it, through the same planner code path.
TEST(SketchStatsWindow, ControllerInSketchModeRebalances) {
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.08;
  cfg.planner.max_table_entries = 0;
  cfg.stats_mode = StatsMode::kSketch;
  cfg.sketch = tiny_config(32, 0.0);
  Controller ctrl(AssignmentFunction(ConsistentHashRing(2, 128, 9), 0),
                  std::make_unique<MixedPlanner>(), cfg, 10);

  const InstanceId hot = ctrl.assignment()(0);
  ctrl.record(0, 10.0, 4.0);
  KeyId other = 1;
  while (ctrl.assignment()(other) != hot) ++other;
  ctrl.record(other, 10.0, 4.0);

  const auto plan = ctrl.end_interval();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->moves.size(), 1u);
  EXPECT_GT(ctrl.last_observed_theta(), 0.5);
  EXPECT_EQ(ctrl.stats().mode(), StatsMode::kSketch);

  // Identical load under the new assignment: balanced, no further plan.
  ctrl.record(0, 10.0, 4.0);
  ctrl.record(other, 10.0, 4.0);
  EXPECT_FALSE(ctrl.end_interval().has_value());
  EXPECT_NEAR(ctrl.last_observed_theta(), 0.0, 1e-9);
}

// Absorbing N worker slabs must preserve everything the window tracks
// exactly: the cold scalar aggregates, the total windowed state, the
// domain bound, and — for keys in the distributed heavy set — exact
// per-key statistics, regardless of which worker saw which share.
TEST(SketchStatsWindow, AbsorbPreservesExactAggregatesAndHotTier) {
  const auto cfg = tiny_config(16);
  SketchStatsWindow direct(200, 2, cfg);   // single-stream reference
  SketchStatsWindow merged(200, 2, cfg);   // slab-fed

  // Warm-up: promote key 7 in both windows so interval 2 exercises the
  // hot path. (promote_fraction 0 promotes every candidate up to
  // capacity; key 7 dominates the stream.)
  const auto warm = [](SketchStatsWindow& w) {
    w.record(7, 500.0, 64.0, 10);
    w.roll();
  };
  warm(direct);
  warm(merged);
  ASSERT_TRUE(direct.is_heavy(7));
  ASSERT_TRUE(merged.is_heavy(7));

  // One interval of traffic split across 3 workers vs fed directly.
  std::vector<WorkerSketchSlab> slabs;
  slabs.reserve(3);
  for (int w = 0; w < 3; ++w) slabs.emplace_back(cfg);
  const auto heavy = merged.heavy_keys();
  ASSERT_EQ(heavy, std::vector<KeyId>{7});
  for (auto& slab : slabs) slab.set_heavy_keys(heavy);

  Xoshiro256 rng(11);
  for (int i = 0; i < 3000; ++i) {
    KeyId key = rng.next_below(150);
    if (key == 7) key = 8;  // keep the heavy key's totals hand-computable
    const Cost c = 1.0 + static_cast<double>(rng.next_below(8));
    const Bytes b = static_cast<double>(rng.next_below(32));
    direct.record(key, c, b, 1);
    slabs[key % 3].add(key, c, b, 1);
  }
  // Hot traffic on the heavy key through all three workers.
  for (int w = 0; w < 3; ++w) slabs[w].add(7, 100.0, 16.0, 5);
  direct.record(7, 300.0, 48.0, 15);

  for (const auto& slab : slabs) merged.absorb(slab);
  direct.roll();
  merged.roll();

  // Exact quantities agree to the bit where summation order is shared,
  // and to rounding where it is not.
  EXPECT_EQ(merged.num_keys(), direct.num_keys());
  EXPECT_NEAR(merged.total_windowed_state(), direct.total_windowed_state(),
              1e-6);
  // Hot tier: exact regardless of the worker partition.
  EXPECT_DOUBLE_EQ(merged.last_cost_of(7), direct.last_cost_of(7));
  EXPECT_DOUBLE_EQ(merged.last_cost_of(7), 300.0);
  EXPECT_EQ(merged.last_frequency_of(7), 15u);
  EXPECT_DOUBLE_EQ(merged.windowed_state_of(7), direct.windowed_state_of(7));
  // Aggregate mass of the dense views matches (cold estimates differ per
  // key — classic vs conservative updates — but both normalize to the
  // same exactly-tracked cold aggregate).
  std::vector<Cost> cost_d, cost_m;
  std::vector<Bytes> state_d, state_m;
  direct.synthesize_dense(cost_d, state_d);
  merged.synthesize_dense(cost_m, state_m);
  const double mass_d = std::accumulate(cost_d.begin(), cost_d.end(), 0.0);
  const double mass_m = std::accumulate(cost_m.begin(), cost_m.end(), 0.0);
  EXPECT_NEAR(mass_m, mass_d, 1e-6 * mass_d);
}

// A slab whose heavy snapshot went stale (key demoted between the
// distribution and the absorb) must not lose the mass: record() re-routes
// it to the cold tier.
TEST(SketchStatsWindow, AbsorbWithStaleHeavySnapshotKeepsMass) {
  const auto cfg = tiny_config(8);
  SketchStatsWindow window(50, 1, cfg);
  WorkerSketchSlab slab(cfg);
  slab.set_heavy_keys({42});  // never heavy in the window
  slab.add(42, 10.0, 4.0, 2);
  slab.add(1, 5.0, 2.0, 1);
  window.absorb(slab);
  window.roll();
  // All 15 cost units survived the merge (42's through the cold tier).
  std::vector<Cost> cost;
  std::vector<Bytes> state;
  window.synthesize_dense(cost, state);
  EXPECT_NEAR(std::accumulate(cost.begin(), cost.end(), 0.0), 15.0, 1e-9);
  EXPECT_NEAR(window.total_windowed_state(), 6.0, 1e-9);
}

// Decayed tracking must not care in which order an interval's
// observations arrived: in the eviction-free regime the candidate
// tracker is exact, so ascending and descending record orders must
// leave byte-identical windows — heavy set, decayed standing, counters
// and the synthesized dense view.
TEST(SketchStatsWindow, DecayedRollIsRecordOrderIndependent) {
  constexpr std::size_t kKeys = 200;
  SketchStatsConfig cfg = tiny_config(256, 0.01);
  cfg.decay = true;
  cfg.decay_beta = 0.5;
  SketchStatsWindow asc(kKeys, 2, cfg);
  SketchStatsWindow desc(kKeys, 2, cfg);
  for (int interval = 0; interval < 3; ++interval) {
    const auto count_of = [interval](std::size_t k) {
      return static_cast<double>((k * 7 + static_cast<std::size_t>(interval)) %
                                 5);
    };
    for (std::size_t k = 0; k < kKeys; ++k) {
      if (count_of(k) == 0.0) continue;
      asc.record(static_cast<KeyId>(k), count_of(k), 4.0 * count_of(k));
    }
    for (std::size_t k = kKeys; k-- > 0;) {
      if (count_of(k) == 0.0) continue;
      desc.record(static_cast<KeyId>(k), count_of(k), 4.0 * count_of(k));
    }
    asc.roll();
    desc.roll();
    ASSERT_EQ(asc.heavy_keys(), desc.heavy_keys()) << "interval " << interval;
    EXPECT_EQ(asc.decayed_total_cost(), desc.decayed_total_cost());
    EXPECT_EQ(asc.total_promotions(), desc.total_promotions());
    EXPECT_EQ(asc.total_demotions(), desc.total_demotions());
    std::vector<Cost> cost_a, cost_d;
    std::vector<Bytes> state_a, state_d;
    asc.synthesize_dense(cost_a, state_a);
    desc.synthesize_dense(cost_d, state_d);
    EXPECT_EQ(cost_a, cost_d) << "interval " << interval;
    EXPECT_EQ(state_a, state_d) << "interval " << interval;
  }
}

// Displacement demotion returns the victim's mass to the cold tier
// EXACTLY: scalar totals, the per-instance residual at the victim's
// recorded destination, and the windowed-state schedule (credited ring
// slots expire when the originals would have).
TEST(SketchStatsWindow, DemotedKeyMassReturnsToColdTierExactly) {
  SketchStatsConfig cfg = tiny_config(2, 0.1);
  cfg.decay = true;
  cfg.decay_beta = 0.5;
  SketchStatsWindow w(16, 2, cfg);
  StatsWindow exact(16, 2);
  const auto both = [&](KeyId key, Cost cost, Bytes bytes, std::uint64_t freq,
                        InstanceId dest) {
    w.record(key, cost, bytes, freq, dest);
    exact.record(key, cost, bytes, freq, dest);
  };

  // Interval 0: X and Z fill the two heavy slots.
  both(/*X=*/3, 10.0, 40.0, 10, /*dest=*/0);
  both(/*Z=*/5, 8.0, 32.0, 8, /*dest=*/1);
  w.roll();
  exact.roll();
  ASSERT_TRUE(w.is_heavy(3));
  ASSERT_TRUE(w.is_heavy(5));

  // Interval 1: Y arrives far stronger than the weakest incumbent Z
  // (decayed standing 0.5·8 = 4 < guaranteed 100 / kDisplaceMargin), so
  // the roll displaces Z for Y while Z still holds windowed state.
  both(/*Y=*/7, 100.0, 400.0, 100, /*dest=*/0);
  both(3, 6.0, 24.0, 6, 0);
  w.roll();
  exact.roll();
  EXPECT_TRUE(w.is_heavy(3));
  EXPECT_TRUE(w.is_heavy(7));
  EXPECT_FALSE(w.is_heavy(5));
  EXPECT_EQ(w.last_promotions(), 1u);
  EXPECT_EQ(w.last_demotions(), 1u);
  EXPECT_EQ(w.total_promotions(), 3u);
  EXPECT_EQ(w.total_demotions(), 1u);

  // Z's 32 bytes of windowed state survived the demotion: the aggregate
  // totals stay exactly equal to the exact window's. The per-key cold
  // estimate only promises the upper-bound side — promotion cannot debit
  // individual Count-Min cells, so the demotion credit stacks on the
  // original residue.
  EXPECT_EQ(w.total_windowed_state(), exact.total_windowed_state());
  EXPECT_GE(w.windowed_state_of(5), 32.0);

  // Compact residuals: Z's state sits on its recorded destination; the
  // hot tier carries everything else, so cold cost is zero.
  std::vector<KeyId> keys;
  std::vector<Cost> hot_cost, cold_cost;
  std::vector<Bytes> hot_state, cold_state;
  w.synthesize_compact(2, keys, hot_cost, hot_state, cold_cost, cold_state);
  EXPECT_EQ(keys, (std::vector<KeyId>{3, 7}));
  EXPECT_EQ(cold_cost, (std::vector<Cost>{0.0, 0.0}));
  EXPECT_EQ(cold_state, (std::vector<Bytes>{0.0, 32.0}));

  // One more idle interval rolls Z's credited slot out of the w = 2
  // window on the schedule the mass originally accrued on.
  w.roll();
  exact.roll();
  EXPECT_EQ(w.total_windowed_state(), exact.total_windowed_state());
  EXPECT_EQ(w.windowed_state_of(5), 0.0);
}

// A marginally stronger candidate must NOT displace an incumbent — the
// kDisplaceMargin hysteresis requires a clear gap — but sustained mass
// accumulates decayed standing until the gap is clear.
TEST(SketchStatsWindow, DisplacementRequiresClearMargin) {
  SketchStatsConfig cfg = tiny_config(1, 0.0);
  cfg.decay = true;
  cfg.decay_beta = 0.5;
  SketchStatsWindow w(16, 1, cfg);
  w.record(3, 10.0, 0.0);
  w.roll();
  ASSERT_TRUE(w.is_heavy(3));

  // X's standing decays to 5; Y's guaranteed 9 ≤ 2 · 5: no displacement.
  w.record(7, 9.0, 0.0);
  w.roll();
  EXPECT_TRUE(w.is_heavy(3));
  EXPECT_FALSE(w.is_heavy(7));
  EXPECT_EQ(w.total_demotions(), 0u);

  // Another 9 compounds Y's standing to 0.5·9 + 9 = 13.5 against X's
  // 2.5: the gap is clear and Y takes the slot.
  w.record(7, 9.0, 0.0);
  w.roll();
  EXPECT_FALSE(w.is_heavy(3));
  EXPECT_TRUE(w.is_heavy(7));
  EXPECT_EQ(w.total_demotions(), 1u);
  EXPECT_EQ(w.total_promotions(), 2u);
}

// The two promotion modes backfill the promotion interval differently,
// and the difference is exactly the Space-Saving inherited error: the
// legacy path writes the upper bound (count, over-debiting the cold
// aggregates by the error), the decayed path writes the guaranteed
// observation (count − error, never an over-debit).
TEST(SketchStatsWindow, BackfillUpperBoundWithoutDecayGuaranteedWithIt) {
  const auto feed = [](SketchStatsWindow& w) {
    // Six unit-weight keys against capacity 4 force evictions; key 9
    // then inserts by evicting the minimum entry (count 1), inheriting
    // error 1: tracked count 51 for 50 of true mass.
    for (KeyId k = 0; k < 6; ++k) w.record(k, 1.0, 0.0);
    w.record(9, 50.0, 0.0);
    w.roll();
  };
  SketchStatsConfig cfg = tiny_config(4, 0.1);
  cfg.decay = false;
  SketchStatsWindow legacy(16, 1, cfg);
  feed(legacy);
  ASSERT_TRUE(legacy.is_heavy(9));
  EXPECT_EQ(legacy.last_cost_of(9), 51.0);

  cfg.decay = true;
  SketchStatsWindow decayed(16, 1, cfg);
  feed(decayed);
  ASSERT_TRUE(decayed.is_heavy(9));
  EXPECT_EQ(decayed.last_cost_of(9), 50.0);
}

// With decay disabled the decay-only knobs must be inert: the legacy
// path's behavior is a function of the legacy configuration alone.
TEST(SketchStatsWindow, NoDecayIgnoresDecayKnobs) {
  const auto run = [](double beta, double demote_fraction,
                      std::vector<Cost>& cost, std::vector<Bytes>& state) {
    SketchStatsConfig cfg = tiny_config(8, 0.05);
    cfg.decay = false;
    cfg.decay_beta = beta;
    cfg.demote_fraction = demote_fraction;
    SketchStatsWindow w(64, 2, cfg);
    const ZipfDistribution zipf(64, 1.0, true, 3);
    Xoshiro256 rng(17);
    for (int interval = 0; interval < 4; ++interval) {
      for (int i = 0; i < 2000; ++i) w.record(zipf.sample(rng), 1.0, 4.0);
      w.roll();
    }
    w.synthesize_dense(cost, state);
  };
  std::vector<Cost> cost_a, cost_b;
  std::vector<Bytes> state_a, state_b;
  run(0.3, 0.0, cost_a, state_a);
  run(0.9, 0.7, cost_b, state_b);
  EXPECT_EQ(cost_a, cost_b);
  EXPECT_EQ(state_a, state_b);
}

TEST(SketchStatsWindowDeath, NegativeCostRejected) {
  SketchStatsWindow w(10, 1);
  EXPECT_DEATH(w.record(0, -1.0, 1.0), "precondition");
}

// Sharded boundary absorb conserves mass: feeding one stream through
// per-shard slab sections into S shard-local windows (the sharded
// controller's merge path) keeps every EXACT aggregate equal to a single
// window fed the same stream directly — total cost/state scalars, the
// per-instance cold residual vectors of the compact view, and the hot
// tier's exact per-key values. Sketch estimates may differ (each shard
// has its own Count-Min geometry); the exactly-tracked mass must not.
TEST(SketchStatsWindow, ShardedAbsorbConservesMass) {
  constexpr std::size_t kShards = 4;
  constexpr InstanceId kWorkers = 3;
  // Eviction-free capacity: 256 globally, ceil(256/4)=64 per shard, both
  // comfortably above the ~150 distinct keys (~37 per shard). Every
  // observed key promotes on both sides, so the heavy sets — and the
  // promotion backfill debited from the cold residuals — are identical,
  // and the per-entry equality assertions below are exact.
  const auto cfg = tiny_config(256);
  SketchStatsWindow direct(200, 2, cfg);  // single-window reference
  ShardedSketchStats sharded(200, 2, cfg, kShards);

  // Warm-up: promote key 7 everywhere so the hot path is exercised.
  direct.record(7, 500.0, 64.0, 10);
  direct.roll();
  sharded.record(7, 500.0, 64.0, 10);
  sharded.roll();
  ASSERT_TRUE(direct.is_heavy(7));
  ASSERT_EQ(sharded.heavy_keys(), std::vector<KeyId>{7});

  std::vector<ShardedWorkerSlab> slabs;
  slabs.reserve(static_cast<std::size_t>(kWorkers));
  for (int w = 0; w < kWorkers; ++w) slabs.emplace_back(cfg, kShards);
  const auto heavy = sharded.heavy_keys();
  for (auto& slab : slabs) slab.set_heavy_keys(heavy);

  Xoshiro256 rng(11);
  double cold_mass = 0.0;
  for (int i = 0; i < 3000; ++i) {
    KeyId key = rng.next_below(150);
    if (key == 7) key = 8;
    // Integer costs/states: exact in any summation order, so "conserved"
    // can be asserted with EXPECT_DOUBLE_EQ, not a tolerance.
    const Cost c = 1.0 + static_cast<double>(rng.next_below(8));
    const Bytes b = static_cast<double>(rng.next_below(32));
    const auto w = static_cast<InstanceId>(key % kWorkers);
    direct.record(key, c, b, 1, w);
    slabs[static_cast<std::size_t>(w)].add(key, c, b, 1);
    cold_mass += c;
  }
  for (InstanceId w = 0; w < kWorkers; ++w) {
    slabs[static_cast<std::size_t>(w)].add(7, 100.0, 16.0, 5);
    direct.record(7, 100.0, 16.0, 5, w);
  }

  for (InstanceId w = 0; w < kWorkers; ++w) {
    sharded.absorb_slab(slabs[static_cast<std::size_t>(w)], w);
  }
  direct.roll();
  sharded.roll();

  EXPECT_EQ(sharded.num_keys(), direct.num_keys());
  EXPECT_DOUBLE_EQ(sharded.total_windowed_state(),
                   direct.total_windowed_state());
  // Hot tier: exact regardless of the shard partition.
  EXPECT_DOUBLE_EQ(sharded.last_cost_of(7), direct.last_cost_of(7));
  EXPECT_DOUBLE_EQ(sharded.last_cost_of(7), 300.0);
  EXPECT_EQ(sharded.last_frequency_of(7), 15u);
  EXPECT_DOUBLE_EQ(sharded.windowed_state_of(7), direct.windowed_state_of(7));

  // Compact view: the concatenated entries and the shard-summed
  // per-instance cold residuals must equal the single window's, and the
  // residual total must be exactly the recorded cold mass (minus any
  // promotion backfill, which both sides debit identically).
  std::vector<KeyId> keys_d, keys_s;
  std::vector<Cost> cost_d, cost_s, cc_d, cc_s;
  std::vector<Bytes> state_d, state_s, cs_d, cs_s;
  direct.synthesize_compact(kWorkers, keys_d, cost_d, state_d, cc_d, cs_d);
  sharded.synthesize_compact(kWorkers, keys_s, cost_s, state_s, cc_s, cs_s);
  EXPECT_EQ(keys_d, keys_s);
  ASSERT_EQ(cc_d.size(), cc_s.size());
  const double cold_d = std::accumulate(cc_d.begin(), cc_d.end(), 0.0);
  const double cold_s = std::accumulate(cc_s.begin(), cc_s.end(), 0.0);
  EXPECT_DOUBLE_EQ(cold_s, cold_d);
  for (std::size_t d = 0; d < cc_d.size(); ++d) {
    EXPECT_DOUBLE_EQ(cc_s[d], cc_d[d]) << "instance " << d;
    EXPECT_DOUBLE_EQ(cs_s[d], cs_d[d]) << "instance " << d;
  }
  // Dense synthesis conserves the same aggregate mass.
  std::vector<Cost> dense_cost_d, dense_cost_s;
  std::vector<Bytes> dense_state_d, dense_state_s;
  direct.synthesize_dense(dense_cost_d, dense_state_d);
  sharded.synthesize_dense(dense_cost_s, dense_state_s);
  const double mass_d =
      std::accumulate(dense_cost_d.begin(), dense_cost_d.end(), 0.0);
  const double mass_s =
      std::accumulate(dense_cost_s.begin(), dense_cost_s.end(), 0.0);
  EXPECT_NEAR(mass_s, mass_d, 1e-9 * mass_d);
  (void)cold_mass;
}

}  // namespace
}  // namespace skewless
