#include "workload/tpch.h"

#include <gtest/gtest.h>

#include <numeric>

namespace skewless {
namespace {

tpch::Scale small_scale() {
  tpch::Scale s;
  s.customers = 500;
  s.suppliers = 100;
  s.orders = 2'000;
  s.lineitems_per_order = 3;
  s.run_seconds = 600;
  s.epoch_seconds = 150;
  return s;
}

TEST(TpchGenerate, TableCardinalities) {
  const auto t = tpch::Tables::generate(small_scale());
  EXPECT_EQ(t.regions.size(), 5u);
  EXPECT_EQ(t.nations.size(), 25u);
  EXPECT_EQ(t.suppliers.size(), 100u);
  EXPECT_EQ(t.customers.size(), 500u);
  EXPECT_EQ(t.orders.size(), 2'000u);
  EXPECT_GT(t.lineitems.size(), t.orders.size());
}

TEST(TpchGenerate, ReferentialIntegrity) {
  const auto t = tpch::Tables::generate(small_scale());
  t.validate();  // aborts on violation
}

TEST(TpchGenerate, DeterministicForSeed) {
  const auto a = tpch::Tables::generate(small_scale());
  const auto b = tpch::Tables::generate(small_scale());
  ASSERT_EQ(a.lineitems.size(), b.lineitems.size());
  EXPECT_EQ(a.orders[7].cust_key, b.orders[7].cust_key);
  EXPECT_EQ(a.lineitems[99].supp_key, b.lineitems[99].supp_key);
}

TEST(TpchGenerate, ForeignKeysAreZipfSkewed) {
  auto scale = small_scale();
  scale.orders = 20'000;
  const auto t = tpch::Tables::generate(scale);
  std::vector<int> per_cust(static_cast<std::size_t>(scale.customers), 0);
  for (const auto& o : t.orders) {
    ++per_cust[static_cast<std::size_t>(o.cust_key)];
  }
  std::sort(per_cust.rbegin(), per_cust.rend());
  const double uniform =
      static_cast<double>(scale.orders) / scale.customers;  // = 40
  // The hottest customer receives far more than the uniform share.
  EXPECT_GT(per_cust.front(), 4 * static_cast<int>(uniform));
}

TEST(TpchGenerate, EpochsShiftHotCustomers) {
  auto scale = small_scale();
  scale.orders = 20'000;
  const auto t = tpch::Tables::generate(scale);
  // Hottest customer in epoch 0 vs epoch 1 should differ (fresh
  // permutation per epoch).
  std::vector<int> epoch0(static_cast<std::size_t>(scale.customers), 0);
  std::vector<int> epoch1(static_cast<std::size_t>(scale.customers), 0);
  for (const auto& o : t.orders) {
    const auto epoch = o.timestamp_sec / scale.epoch_seconds;
    if (epoch == 0) ++epoch0[static_cast<std::size_t>(o.cust_key)];
    if (epoch == 1) ++epoch1[static_cast<std::size_t>(o.cust_key)];
  }
  const auto hot0 = std::max_element(epoch0.begin(), epoch0.end());
  const auto hot1 = std::max_element(epoch1.begin(), epoch1.end());
  EXPECT_NE(hot0 - epoch0.begin(), hot1 - epoch1.begin());
}

TEST(TpchQ5, RevenueRespectsRegionPredicate) {
  const auto t = tpch::Tables::generate(small_scale());
  const auto revenue = t.q5_revenue_by_nation();
  ASSERT_EQ(revenue.size(), 25u);
  double total = 0.0;
  for (const double r : revenue) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  EXPECT_GT(total, 0.0);
  // Cross-check: recompute the total revenue with the predicate inverted;
  // combined they must equal the unconditional revenue.
  double unconditional = 0.0;
  for (const auto& li : t.lineitems) {
    unconditional += li.extended_price * (1.0 - li.discount);
  }
  EXPECT_LT(total, unconditional);
}

TEST(TpchQ5Workload, IntervalCountsConserveRows) {
  const auto t = tpch::Tables::generate(small_scale());
  const tpch::Q5Workload workload(t, /*interval_seconds=*/30, 500);
  EXPECT_EQ(workload.num_intervals(), 20);

  auto s0 = workload.stage_source(0);
  auto s1 = workload.stage_source(1);
  auto s2 = workload.stage_source(2);
  std::uint64_t orders = 0;
  std::uint64_t items1 = 0;
  std::uint64_t items2 = 0;
  for (int i = 0; i < workload.num_intervals(); ++i) {
    orders += s0->next_interval().total();
    items1 += s1->next_interval().total();
    items2 += s2->next_interval().total();
  }
  EXPECT_EQ(orders, t.orders.size());
  EXPECT_EQ(items1, t.lineitems.size());
  EXPECT_EQ(items2, t.lineitems.size());
}

TEST(TpchQ5Workload, StageKeyDomains) {
  const auto t = tpch::Tables::generate(small_scale());
  const tpch::Q5Workload workload(t, 60, 256);
  EXPECT_EQ(workload.stage_num_keys(0), 500u);   // custkey
  EXPECT_EQ(workload.stage_num_keys(1), 256u);   // order buckets
  EXPECT_EQ(workload.stage_num_keys(2), 100u);   // suppkey
}

TEST(TpchQ5Workload, ReplayPastEndRepeatsLastInterval) {
  const auto t = tpch::Tables::generate(small_scale());
  const tpch::Q5Workload workload(t, 300, 64);
  auto src = workload.stage_source(0);
  for (int i = 0; i < workload.num_intervals(); ++i) (void)src->next_interval();
  const auto extra = src->next_interval();  // beyond the end
  EXPECT_EQ(extra.counts.size(), 500u);
}

}  // namespace
}  // namespace skewless
