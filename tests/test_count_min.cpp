#include "sketch/count_min.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace skewless {
namespace {

CountMinSketch::Params small_params(double eps = 1e-2, double delta = 0.01,
                                    std::uint64_t seed = 42) {
  CountMinSketch::Params p;
  p.epsilon = eps;
  p.delta = delta;
  p.seed = seed;
  return p;
}

TEST(CountMin, DimensionsFromEpsilonDelta) {
  const CountMinSketch cms(small_params(1e-2, 0.01));
  // width = next pow2 of ceil(e / 0.01) = next pow2 of 272 = 512.
  EXPECT_EQ(cms.width(), 512u);
  // depth = ceil(ln 100) = 5.
  EXPECT_EQ(cms.depth(), 5u);
  EXPECT_LE(cms.effective_epsilon(), 1e-2);
  EXPECT_GT(cms.memory_bytes(), 512u * 5u * sizeof(double));
}

TEST(CountMin, EstimateNeverUnderestimates) {
  CountMinSketch cms(small_params());
  Xoshiro256 rng(7);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 5000; ++i) {
    const KeyId key = rng.next_below(2000);
    const double amount = static_cast<double>(rng.next_below(100));
    cms.add(key, amount);
    truth[key] += amount;
  }
  for (const auto& [key, true_count] : truth) {
    EXPECT_GE(cms.estimate(key), true_count - 1e-9) << "key " << key;
  }
}

TEST(CountMin, ErrorBoundHoldsForMostKeys) {
  // The CM guarantee: P[est − true > ε·W] ≤ δ per query. With a fixed
  // seed we check the empirical violation rate stays under δ with slack.
  CountMinSketch cms(small_params(1e-2, 0.01, 1234));
  const ZipfDistribution zipf(5000, 1.0, true, 99);
  const auto counts = zipf.expected_counts(200'000);
  double total = 0.0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    cms.add(static_cast<KeyId>(k), static_cast<double>(counts[k]));
    total += static_cast<double>(counts[k]);
  }
  const double bound = cms.effective_epsilon() * total;
  std::size_t violations = 0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double err =
        cms.estimate(static_cast<KeyId>(k)) - static_cast<double>(counts[k]);
    if (err > bound) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations),
            2.0 * 0.01 * static_cast<double>(counts.size()));
}

TEST(CountMin, ConservativeUpdateNeverLooserThanClassic) {
  CountMinSketch classic(small_params(5e-2, 0.05, 3));
  CountMinSketch conservative(small_params(5e-2, 0.05, 3));
  Xoshiro256 rng(11);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 20'000; ++i) {
    const KeyId key = rng.next_below(3000);
    classic.add(key, 1.0);
    conservative.add_conservative(key, 1.0);
    truth[key] += 1.0;
  }
  for (const auto& [key, true_count] : truth) {
    EXPECT_GE(conservative.estimate(key), true_count - 1e-9);
    EXPECT_LE(conservative.estimate(key), classic.estimate(key) + 1e-9);
  }
}

TEST(CountMin, AddSubtractSketchMaintainsWindow) {
  // window = i1 + i2 − i1 must equal a sketch holding only i2's stream.
  const auto params = small_params(1e-2, 0.01, 5);
  CountMinSketch i1(params), i2(params), window(params);
  Xoshiro256 rng(21);
  for (int i = 0; i < 1000; ++i) i1.add(rng.next_below(500), 2.0);
  for (int i = 0; i < 1000; ++i) i2.add(rng.next_below(500), 3.0);
  window.add_sketch(i1);
  window.add_sketch(i2);
  EXPECT_DOUBLE_EQ(window.total(), i1.total() + i2.total());
  window.subtract_sketch(i1);
  for (KeyId key = 0; key < 500; ++key) {
    EXPECT_NEAR(window.estimate(key), i2.estimate(key), 1e-6) << key;
  }
  EXPECT_NEAR(window.total(), i2.total(), 1e-6);
}

TEST(CountMin, ClearZeroesEverything) {
  CountMinSketch cms(small_params());
  cms.add(1, 10.0);
  cms.add_conservative(2, 5.0);
  EXPECT_GT(cms.total(), 0.0);
  cms.clear();
  EXPECT_EQ(cms.total(), 0.0);
  EXPECT_EQ(cms.estimate(1), 0.0);
  EXPECT_EQ(cms.estimate(2), 0.0);
}

TEST(CountMin, TotalTracksMassExactly) {
  CountMinSketch cms(small_params());
  cms.add(1, 10.0);
  cms.add_conservative(1, 2.5);
  cms.add(7, 0.5);
  EXPECT_DOUBLE_EQ(cms.total(), 13.0);
}

TEST(CountMin, SeededDeterminism) {
  CountMinSketch a(small_params(1e-2, 0.01, 77));
  CountMinSketch b(small_params(1e-2, 0.01, 77));
  Xoshiro256 rng_a(5), rng_b(5);
  for (int i = 0; i < 3000; ++i) {
    a.add_conservative(rng_a.next_below(800), 1.0);
    b.add_conservative(rng_b.next_below(800), 1.0);
  }
  for (KeyId key = 0; key < 800; ++key) {
    ASSERT_EQ(a.estimate(key), b.estimate(key)) << key;
  }
}

TEST(CountMinDeath, NegativeAmountRejected) {
  CountMinSketch cms(small_params());
  EXPECT_DEATH(cms.add(0, -1.0), "precondition");
  EXPECT_DEATH(cms.add_conservative(0, -1.0), "precondition");
}

TEST(CountMinDeath, MismatchedSketchMergeRejected) {
  CountMinSketch a(small_params(1e-2, 0.01, 1));
  CountMinSketch b(small_params(1e-2, 0.01, 2));  // different hash family
  EXPECT_DEATH(a.add_sketch(b), "precondition");
}

}  // namespace
}  // namespace skewless
