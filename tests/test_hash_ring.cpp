#include "common/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/hash.h"

namespace skewless {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash64, SeedChangesOutput) {
  EXPECT_NE(hash64(42, 0), hash64(42, 1));
  EXPECT_EQ(hash64(42, 7), hash64(42, 7));
}

TEST(ConsistentHashRing, OwnersInRange) {
  const ConsistentHashRing ring(7);
  for (KeyId k = 0; k < 10'000; ++k) {
    const InstanceId d = ring.owner(k);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 7);
  }
}

TEST(ConsistentHashRing, Deterministic) {
  const ConsistentHashRing a(5, 128, 99);
  const ConsistentHashRing b(5, 128, 99);
  for (KeyId k = 0; k < 1000; ++k) EXPECT_EQ(a.owner(k), b.owner(k));
}

TEST(ConsistentHashRing, DifferentSeedsGiveDifferentPlacements) {
  const ConsistentHashRing a(5, 128, 1);
  const ConsistentHashRing b(5, 128, 2);
  int differing = 0;
  for (KeyId k = 0; k < 1000; ++k) {
    if (a.owner(k) != b.owner(k)) ++differing;
  }
  EXPECT_GT(differing, 500);
}

TEST(ConsistentHashRing, RoughBalanceOverManyKeys) {
  const InstanceId nd = 10;
  const ConsistentHashRing ring(nd, 256);
  std::vector<int> counts(static_cast<std::size_t>(nd), 0);
  const int keys = 100'000;
  for (KeyId k = 0; k < static_cast<KeyId>(keys); ++k) {
    ++counts[static_cast<std::size_t>(ring.owner(k))];
  }
  const double expected = static_cast<double>(keys) / nd;
  for (const int c : counts) {
    EXPECT_GT(c, expected * 0.6);
    EXPECT_LT(c, expected * 1.4);
  }
}

TEST(ConsistentHashRing, AddInstanceMovesOnlyFraction) {
  ConsistentHashRing ring(10, 128, 5);
  const int keys = 50'000;
  std::vector<InstanceId> before(keys);
  for (int k = 0; k < keys; ++k) before[static_cast<std::size_t>(k)] =
      ring.owner(static_cast<KeyId>(k));

  ring.add_instance();
  int moved = 0;
  int moved_to_new = 0;
  for (int k = 0; k < keys; ++k) {
    const InstanceId after = ring.owner(static_cast<KeyId>(k));
    if (after != before[static_cast<std::size_t>(k)]) {
      ++moved;
      if (after == 10) ++moved_to_new;
    }
  }
  // Consistent hashing: every moved key moves to the new instance, and
  // roughly 1/11 of keys move.
  EXPECT_EQ(moved, moved_to_new);
  EXPECT_GT(moved, keys / 22);
  EXPECT_LT(moved, keys / 5);
}

TEST(ConsistentHashRing, RemoveLastInstanceRestoresPriorPlacement) {
  ConsistentHashRing ring(10, 128, 5);
  const int keys = 10'000;
  std::vector<InstanceId> before(keys);
  for (int k = 0; k < keys; ++k) before[static_cast<std::size_t>(k)] =
      ring.owner(static_cast<KeyId>(k));
  ring.add_instance();
  ring.remove_last_instance();
  for (int k = 0; k < keys; ++k) {
    EXPECT_EQ(ring.owner(static_cast<KeyId>(k)),
              before[static_cast<std::size_t>(k)]);
  }
}

TEST(ConsistentHashRing, SingleInstanceOwnsEverything) {
  const ConsistentHashRing ring(1);
  for (KeyId k = 0; k < 100; ++k) EXPECT_EQ(ring.owner(k), 0);
}

class RingBalanceParam : public ::testing::TestWithParam<InstanceId> {};

TEST_P(RingBalanceParam, EveryInstanceOwnsSomeKeys) {
  const InstanceId nd = GetParam();
  const ConsistentHashRing ring(nd, 128);
  std::map<InstanceId, int> counts;
  for (KeyId k = 0; k < 20'000; ++k) ++counts[ring.owner(k)];
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(nd));
}

INSTANTIATE_TEST_SUITE_P(VaryInstances, RingBalanceParam,
                         ::testing::Values(2, 3, 5, 10, 20, 40));

}  // namespace
}  // namespace skewless
