// Randomized robustness suite for the wire layer, run under the `fuzz`
// CTest label: every decoder that parses peer bytes is fed (a) every
// truncation prefix and (b) hundreds of seeded single/multi-byte
// corruptions of valid encodings. The contract under test is uniform —
// a decoder either accepts the input or returns false with the reader's
// sticky error flag set; it NEVER aborts, over-allocates, or reads out
// of bounds (ASan enforces the last one on the CI debug-asan leg).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/serde.h"
#include "net/frame.h"
#include "net/wire.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {
namespace {

/// One valid encoding of every payload kind, by index. Returning a fresh
/// copy per call keeps corruption runs independent.
std::vector<std::vector<std::uint8_t>> valid_payloads() {
  std::vector<std::vector<std::uint8_t>> out;
  {
    std::vector<Tuple> tuples;
    for (int i = 0; i < 40; ++i) {
      Tuple t;
      t.key = static_cast<KeyId>(i * 2654435761u);
      t.value = i - 20;
      t.emit_micros = i * 777;
      t.stream = static_cast<std::uint32_t>(i & 1);
      tuples.push_back(t);
    }
    ByteWriter w;
    encode_tuple_batch(w, tuples);
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_hello(w, HelloPayload{2, 6});
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_seal(w, SealPayload{314});
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_key_list(w, {1, 2, 3, 0xdeadbeefULL, 5, 6, 7});
    out.push_back(w.bytes());
  }
  {
    std::vector<WireKeyState> states;
    for (int i = 0; i < 6; ++i) {
      WireKeyState s;
      s.key = static_cast<KeyId>(i);
      s.blob.assign(static_cast<std::size_t>(3 + i * 5), std::uint8_t(0xa0 + i));
      states.push_back(std::move(s));
    }
    ByteWriter w;
    encode_key_states(w, states);
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_expire(w, Micros{987654321});
    out.push_back(w.bytes());
  }
  {
    PlanPayload plan;
    plan.seq = 55;
    for (int i = 0; i < 9; ++i) {
      KeyMove m;
      m.key = static_cast<KeyId>(i * 101);
      m.from = i % 3;
      m.to = (i + 2) % 3;
      m.state_bytes = 64.0 * i;
      plan.moves.push_back(m);
    }
    ByteWriter w;
    encode_plan(w, plan);
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_ack(w, AckPayload{12345});
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_fin(w, FinPayload{1, 2, 3, 4});
    out.push_back(w.bytes());
  }
  {
    CheckpointPayload cp;
    cp.epoch = 6;
    cp.processed = 6'000;
    cp.outputs = 5'900;
    cp.local_buckets = 512;
    cp.state_checksum = 0x1122334455667788ULL;
    for (int i = 0; i < 5; ++i) {
      WireKeyState s;
      s.key = static_cast<KeyId>(i * 31);
      s.blob.assign(static_cast<std::size_t>(4 + i * 7), std::uint8_t(0xc0 + i));
      cp.states.push_back(std::move(s));
    }
    ByteWriter w;
    encode_checkpoint(w, cp);
    out.push_back(w.bytes());
  }
  {
    ByteWriter w;
    encode_heartbeat(w, HeartbeatPayload{17});
    out.push_back(w.bytes());
  }
  return out;
}

/// Runs every payload decoder over `bytes`; the assertion is simply that
/// none of them aborts (gtest would report the crash) and the reader's
/// flag agrees with the return value.
void decode_all(const std::vector<std::uint8_t>& bytes) {
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    std::vector<Tuple> tuples;
    const bool ok = decode_tuple_batch(r, tuples);
    if (!ok) {
      EXPECT_FALSE(r.ok());
    }
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    HelloPayload hello;
    (void)decode_hello(r, hello);
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    SealPayload seal;
    (void)decode_seal(r, seal);
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    std::vector<KeyId> keys;
    const bool ok = decode_key_list(r, keys);
    if (!ok) {
      EXPECT_FALSE(r.ok());
    }
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    std::vector<WireKeyState> states;
    const bool ok = decode_key_states(r, states);
    if (!ok) {
      EXPECT_FALSE(r.ok());
    }
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    Micros watermark = 0;
    (void)decode_expire(r, watermark);
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    PlanPayload plan;
    const bool ok = decode_plan(r, plan);
    if (!ok) {
      EXPECT_FALSE(r.ok());
    }
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    AckPayload ack;
    (void)decode_ack(r, ack);
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    FinPayload fin;
    (void)decode_fin(r, fin);
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    CheckpointPayload cp;
    const bool ok = decode_checkpoint(r, cp);
    if (!ok) {
      EXPECT_FALSE(r.ok());
    }
  }
  {
    ByteReader r(bytes, ByteReader::Untrusted{});
    HeartbeatPayload hb;
    (void)decode_heartbeat(r, hb);
  }
}

// Every truncation prefix of every valid payload, through every decoder.
// A prefix fed to the decoder that PRODUCED it must be rejected (except
// the full length); fed to any other decoder it must merely not crash.
TEST(NetFuzz, TruncationPrefixesNeverAbort) {
  const auto payloads = valid_payloads();
  for (std::size_t p = 0; p < payloads.size(); ++p) {
    const auto& full = payloads[p];
    for (std::size_t keep = 0; keep <= full.size(); ++keep) {
      decode_all(std::vector<std::uint8_t>(full.begin(),
                                           full.begin() + keep));
    }
  }
}

// Seeded random corruptions: flip 1..8 bytes of a valid payload and run
// every decoder. Accept-or-reject are both fine; crashing is not.
TEST(NetFuzz, RandomCorruptionsNeverAbort) {
  const auto payloads = valid_payloads();
  std::mt19937_64 rng(0xfeedface);
  for (int round = 0; round < 400; ++round) {
    auto bytes = payloads[round % payloads.size()];
    if (bytes.empty()) continue;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    decode_all(bytes);
  }
}

// Random garbage (not derived from any encoder) through every decoder.
TEST(NetFuzz, PureGarbageNeverAborts) {
  std::mt19937_64 rng(0xbadc0de);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes(rng() % 300);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    decode_all(bytes);
  }
}

// Frame headers: every truncation and corruption of a valid header must
// decode false with a non-empty reason — never abort, never accept a
// payload size beyond the cap.
TEST(NetFuzz, FrameHeaderCorruptionsRejectCleanly) {
  std::mt19937_64 rng(0x5eed);
  for (int round = 0; round < 500; ++round) {
    ByteWriter w;
    encode_frame_header(w, static_cast<FrameType>(
                               kMinFrameType + rng() % kMaxFrameType),
                        rng(), static_cast<std::uint32_t>(rng()));
    auto bytes = w.bytes();
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    FrameHeader header;
    std::string error;
    if (!decode_frame_header(bytes.data(), bytes.size(), header, error)) {
      EXPECT_FALSE(error.empty());
    } else {
      EXPECT_LE(header.payload_size, kMaxFramePayload);
    }
  }
}

// Boundary summaries: the slab decoder guards geometry, counts, value
// ranges and the raw cell block. Corrupt/truncated summaries must fail
// without aborting OR poisoning the target slab into a crash — a target
// that rejected an input must still absorb a clean one afterwards.
TEST(NetFuzz, SlabSummaryCorruptionsRejectOrRoundTrip) {
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 32;
  cfg.epsilon = 0.01;

  WorkerSketchSlab source(cfg);
  std::unordered_map<KeyId, WorkerSketchSlab::KeyAgg> batch;
  for (std::uint64_t i = 0; i < 300; ++i) {
    auto& agg = batch[i * 7919];
    agg.cost = 1.0 + static_cast<double>(i % 11);
    agg.state_bytes = 8.0 * (i % 5);
    agg.frequency = 1;
  }
  source.add_batch(batch);
  source.set_epoch(4);
  ByteWriter w;
  source.serialize(w);
  const auto& valid = w.bytes();

  std::mt19937_64 rng(0xabcdef);
  WorkerSketchSlab target(cfg);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> bytes = valid;
    if (round % 3 == 0) {
      bytes.resize(rng() % valid.size());  // truncation
    } else {
      const int flips = 1 + static_cast<int>(rng() % 6);
      for (int f = 0; f < flips; ++f) {
        bytes[rng() % bytes.size()] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
      }
    }
    ByteReader r(bytes, ByteReader::Untrusted{});
    const bool ok = target.deserialize_from(r);
    if (!ok) {
      EXPECT_FALSE(r.ok());
    }
    // The target must remain usable either way: a clean decode succeeds.
    ByteReader clean(valid, ByteReader::Untrusted{});
    ASSERT_TRUE(target.deserialize_from(clean)) << "round " << round;
    ByteWriter again;
    target.serialize(again);
    ASSERT_EQ(again.size(), valid.size());
    EXPECT_EQ(0, std::memcmp(again.bytes().data(), valid.data(),
                             valid.size()));
  }
}

}  // namespace
}  // namespace skewless
