#include "core/llfd.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;

// The running example of Fig. 4 / Section III-A: two instances,
// d1 = {k1:7, k2:4, k5:5} (load 16), d2 = {k3:2, k4:1, k6:1} (load 4),
// θmax = 0 (absolute balance, L̄ = 10).
PartitionSnapshot fig4_snapshot() {
  // KeyIds: k1=0, k2=1, k3=2, k4=3, k5=4, k6=5.
  return make_snapshot(2, {7.0, 4.0, 2.0, 1.0, 5.0, 1.0},
                       {0, 0, 1, 1, 0, 1});
}

TEST(Llfd, Fig4ReachesPerfectBalance) {
  const auto snap = fig4_snapshot();
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  auto candidates = prepare_candidates(wa, psi, /*theta_max=*/0.0);
  // Only d1 is overloaded; removing k1 (highest cost) brings it to 9 <= 10.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), 0u);  // k1

  const auto outcome = llfd_assign(wa, std::move(candidates), psi, 0.0);
  EXPECT_TRUE(outcome.fully_placed);
  EXPECT_FALSE(outcome.budget_exhausted);
  EXPECT_EQ(wa.load(0), 10.0);
  EXPECT_EQ(wa.load(1), 10.0);
  // The Adjust chain of the paper: k1 evicts k3 from d2; k3 cannot fit on
  // d1 (no smaller-cost keys), re-enters d2 evicting k4; k4 lands on d1.
  EXPECT_GE(outcome.evictions, 2u);
  const auto result = wa.to_assignment();
  EXPECT_EQ(result[0], 1);  // k1 moved to d2
  EXPECT_EQ(result[3], 0);  // k4 moved to d1
  EXPECT_EQ(result[2], 1);  // k3 stays on d2 after the exchange dance
}

TEST(Llfd, AdjustPreventsReOverloading) {
  // Without Adjust, moving the heavy key to the least-loaded instance
  // would overload it (the "re-overloading" problem).
  const auto snap = fig4_snapshot();
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  auto candidates = prepare_candidates(wa, psi, 0.0);
  llfd_assign(wa, std::move(candidates), psi, 0.0);
  const Cost lmax = snap.overload_threshold(0.0);
  EXPECT_LE(wa.load(0), lmax + 1e-9);
  EXPECT_LE(wa.load(1), lmax + 1e-9);
}

TEST(Llfd, NoCandidatesWhenAlreadyBalanced) {
  const auto snap = make_snapshot(2, {5.0, 5.0}, {0, 1});
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  const auto candidates = prepare_candidates(wa, psi, 0.1);
  EXPECT_TRUE(candidates.empty());
}

TEST(Llfd, SingleGiantKeyFallsBackToLeastLoaded) {
  // One key heavier than Lmax can never fit; LLFD places it least-loaded
  // and reports fully_placed = false.
  const auto snap = make_snapshot(2, {100.0, 1.0, 1.0}, {0, 0, 1});
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  auto candidates = prepare_candidates(wa, psi, 0.0);
  const auto outcome = llfd_assign(wa, std::move(candidates), psi, 0.0);
  EXPECT_FALSE(outcome.fully_placed);
  const auto result = wa.to_assignment();
  for (const InstanceId d : result) EXPECT_NE(d, kNilInstance);
}

TEST(Llfd, PrepareNeverStripsInstanceBare) {
  const auto snap = make_snapshot(2, {100.0, 1.0}, {0, 1});
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  (void)prepare_candidates(wa, psi, 0.0);
  EXPECT_GE(wa.keys_of(0).size(), 1u);
}

TEST(Llfd, EmptyCandidateSetIsNoop) {
  const auto snap = fig4_snapshot();
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  const auto outcome = llfd_assign(wa, {}, psi, 0.0);
  EXPECT_TRUE(outcome.fully_placed);
  EXPECT_EQ(outcome.placements, 0u);
  EXPECT_EQ(wa.to_assignment(), snap.current);
}

TEST(SimpleAssign, PerfectlySplittableInstance) {
  const auto snap = make_snapshot(2, {4.0, 3.0, 2.0, 1.0}, {0, 0, 0, 0});
  const auto assignment = simple_assign(snap);
  const auto loads = snap.loads_under(assignment);
  EXPECT_EQ(loads[0], 5.0);
  EXPECT_EQ(loads[1], 5.0);
}

TEST(SimpleAssign, DecreasingOrderPlacement) {
  // FFD behaviour: 6 goes first, then 5 on the other instance, then 4
  // joins 5? No: least-loaded is the 5-instance? 5<6 so 4 joins 5 -> 9.
  const auto snap = make_snapshot(2, {6.0, 5.0, 4.0}, {0, 0, 0});
  const auto assignment = simple_assign(snap);
  const auto loads = snap.loads_under(assignment);
  const double max_load = std::max(loads[0], loads[1]);
  EXPECT_EQ(max_load, 9.0);
}

TEST(SimpleAssign, AllKeysAssigned) {
  const auto snap = testutil::random_zipf_snapshot(5, 1000, 0.85, 3);
  const auto assignment = simple_assign(snap);
  ASSERT_EQ(assignment.size(), 1000u);
  for (const InstanceId d : assignment) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 5);
  }
}

class LlfdRandomParam
    : public ::testing::TestWithParam<std::tuple<InstanceId, double>> {};

TEST_P(LlfdRandomParam, MeetsThetaOnRandomZipfWorkloads) {
  const auto [nd, theta_max] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto snap = testutil::random_zipf_snapshot(nd, 2000, 0.85, seed);
    WorkingAssignment wa(snap);
    const Criterion psi(CriterionKind::kHighestCostFirst);
    auto candidates = prepare_candidates(wa, psi, theta_max);
    const auto outcome = llfd_assign(wa, std::move(candidates), psi,
                                     theta_max);
    const Cost lmax = snap.overload_threshold(theta_max);
    if (outcome.fully_placed) {
      for (InstanceId d = 0; d < nd; ++d) {
        EXPECT_LE(wa.load(d), lmax + 1e-6)
            << "instance " << d << " overloaded, seed " << seed;
      }
    }
    // Conservation: total load unchanged.
    Cost total = 0.0;
    for (InstanceId d = 0; d < nd; ++d) total += wa.load(d);
    Cost expected = 0.0;
    for (const Cost c : snap.cost) expected += c;
    EXPECT_NEAR(total, expected, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LlfdRandomParam,
    ::testing::Combine(::testing::Values<InstanceId>(2, 5, 10, 20),
                       ::testing::Values(0.0, 0.08, 0.3)));

}  // namespace
}  // namespace skewless
