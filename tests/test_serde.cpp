#include "common/serde.h"

#include <gtest/gtest.h>

#include "workload/operators.h"

namespace skewless {
namespace {

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(123456);
  w.u64(0xdeadbeefcafeULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(ByteCodecDeath, OverrunAborts) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_DEATH(r.u32(), "precondition");
}

TEST(ByteCodecDeath, TruncatedStringAborts) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_DEATH(r.str(), "precondition");
}

// Checked (Untrusted) mode: the same reader over peer-supplied bytes
// must turn every overrun into a sticky ok()==false instead of an abort.
TEST(ByteCodecChecked, TruncatedReadFailsWithoutAborting) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  EXPECT_EQ(r.u8(), 1);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // overrun: zero-valued, not fatal
  EXPECT_FALSE(r.ok());
}

TEST(ByteCodecChecked, FailureIsSticky) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  r.u64();  // overrun
  EXPECT_FALSE(r.ok());
  // Later reads that WOULD fit still fail: a decoder can check ok()
  // once at the end instead of after every field.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ByteCodecChecked, TruncatedStringFailsCleanly) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(ByteCodecChecked, FitsRejectsOversizedClaims) {
  ByteWriter w;
  w.u32(1'000'000);  // element count far beyond the payload
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  const std::uint32_t n = r.u32();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.fits(n, /*min_elem_bytes=*/8));
  // An impossible count poisons the reader like any overrun: decoders
  // get one error channel per payload.
  EXPECT_FALSE(r.ok());
}

TEST(ByteCodecChecked, ExplicitFailPoisons) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  r.fail();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);
}

TEST(ByteCodecChecked, ReadIntoValidatesLength) {
  ByteWriter w;
  w.u64(0x1122334455667788ULL);
  std::uint8_t buf[16] = {};
  ByteReader ok_reader(w.bytes(), ByteReader::Untrusted{});
  EXPECT_TRUE(ok_reader.read_into(buf, 8));
  EXPECT_TRUE(ok_reader.ok());
  EXPECT_TRUE(ok_reader.exhausted());
  ByteReader bad_reader(w.bytes(), ByteReader::Untrusted{});
  EXPECT_FALSE(bad_reader.read_into(buf, 16));
  EXPECT_FALSE(bad_reader.ok());
}

TEST(ByteCodecChecked, CleanPayloadReadsIdenticallyToTrusted) {
  ByteWriter w;
  w.u8(7);
  w.u32(123456);
  w.u64(0xdeadbeefcafeULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(r.ok());
}

TEST(StateSerde, WordCountRoundTripPreservesEverything) {
  WordCountState state;
  state.add(100, 5);
  state.add(200, -3);
  state.add(300, 7);
  state.expire_before(150);

  ByteWriter w;
  state.serialize(w);
  ByteReader r(w.bytes());
  const auto restored = WordCountState::deserialize(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored->count(), state.count());
  EXPECT_EQ(restored->buffered(), state.buffered());
  EXPECT_EQ(restored->checksum(), state.checksum());
  EXPECT_EQ(restored->bytes(), state.bytes());
}

TEST(StateSerde, SelfJoinRoundTripPreservesWindow) {
  SelfJoinState state;
  for (int i = 0; i < 100; ++i) {
    state.append(i * 10, i * i - 7);
  }
  ByteWriter w;
  state.serialize(w);
  ByteReader r(w.bytes());
  const auto restored = SelfJoinState::deserialize(r);
  EXPECT_TRUE(r.exhausted());
  ASSERT_EQ(restored->window_size(), state.window_size());
  EXPECT_EQ(restored->checksum(), state.checksum());
  // Element-wise equality, not just checksum.
  for (std::size_t i = 0; i < state.window().size(); ++i) {
    EXPECT_EQ(restored->window()[i], state.window()[i]);
  }
}

TEST(StateSerde, EmptyStatesRoundTrip) {
  WordCountState wc;
  ByteWriter w1;
  wc.serialize(w1);
  ByteReader r1(w1.bytes());
  EXPECT_EQ(WordCountState::deserialize(r1)->count(), 0u);

  SelfJoinState sj;
  ByteWriter w2;
  sj.serialize(w2);
  ByteReader r2(w2.bytes());
  EXPECT_EQ(SelfJoinState::deserialize(r2)->window_size(), 0u);
}

TEST(StateSerde, LogicDeserializeDispatch) {
  const WordCountLogic logic;
  auto state = logic.make_state();
  auto& wc = static_cast<WordCountState&>(*state);
  wc.add(1, 2);
  ByteWriter w;
  state->serialize(w);
  ByteReader r(w.bytes());
  const auto restored = logic.deserialize_state(r);
  EXPECT_EQ(restored->checksum(), state->checksum());
}

}  // namespace
}  // namespace skewless
