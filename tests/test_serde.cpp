#include "engine/serde.h"

#include <gtest/gtest.h>

#include "workload/operators.h"

namespace skewless {
namespace {

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(123456);
  w.u64(0xdeadbeefcafeULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(ByteCodecDeath, OverrunAborts) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_DEATH(r.u32(), "precondition");
}

TEST(ByteCodecDeath, TruncatedStringAborts) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_DEATH(r.str(), "precondition");
}

TEST(StateSerde, WordCountRoundTripPreservesEverything) {
  WordCountState state;
  state.add(100, 5);
  state.add(200, -3);
  state.add(300, 7);
  state.expire_before(150);

  ByteWriter w;
  state.serialize(w);
  ByteReader r(w.bytes());
  const auto restored = WordCountState::deserialize(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored->count(), state.count());
  EXPECT_EQ(restored->buffered(), state.buffered());
  EXPECT_EQ(restored->checksum(), state.checksum());
  EXPECT_EQ(restored->bytes(), state.bytes());
}

TEST(StateSerde, SelfJoinRoundTripPreservesWindow) {
  SelfJoinState state;
  for (int i = 0; i < 100; ++i) {
    state.append(i * 10, i * i - 7);
  }
  ByteWriter w;
  state.serialize(w);
  ByteReader r(w.bytes());
  const auto restored = SelfJoinState::deserialize(r);
  EXPECT_TRUE(r.exhausted());
  ASSERT_EQ(restored->window_size(), state.window_size());
  EXPECT_EQ(restored->checksum(), state.checksum());
  // Element-wise equality, not just checksum.
  for (std::size_t i = 0; i < state.window().size(); ++i) {
    EXPECT_EQ(restored->window()[i], state.window()[i]);
  }
}

TEST(StateSerde, EmptyStatesRoundTrip) {
  WordCountState wc;
  ByteWriter w1;
  wc.serialize(w1);
  ByteReader r1(w1.bytes());
  EXPECT_EQ(WordCountState::deserialize(r1)->count(), 0u);

  SelfJoinState sj;
  ByteWriter w2;
  sj.serialize(w2);
  ByteReader r2(w2.bytes());
  EXPECT_EQ(SelfJoinState::deserialize(r2)->window_size(), 0u);
}

TEST(StateSerde, LogicDeserializeDispatch) {
  const WordCountLogic logic;
  auto state = logic.make_state();
  auto& wc = static_cast<WordCountState&>(*state);
  wc.add(1, 2);
  ByteWriter w;
  state->serialize(w);
  ByteReader r(w.bytes());
  const auto restored = logic.deserialize_state(r);
  EXPECT_EQ(restored->checksum(), state->checksum());
}

}  // namespace
}  // namespace skewless
