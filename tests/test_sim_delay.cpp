// Tests for the simulation engine's plan-generation-delay model: while a
// plan is "being computed" (Fig. 5 step 2), tuples keep routing under the
// old assignment; the migration pause lands when the plan installs.
#include <gtest/gtest.h>

#include "core/planners.h"
#include "engine/sim_engine.h"

namespace skewless {
namespace {

/// Wraps a real planner but reports an inflated generation time — models
/// a slow planner (e.g. Readj at large K) without burning CPU.
class SlowPlanner final : public Planner {
 public:
  SlowPlanner(PlannerPtr inner, Micros fake_generation)
      : inner_(std::move(inner)), fake_generation_(fake_generation) {}

  RebalancePlan plan(const PartitionSnapshot& snap,
                     const PlannerConfig& config) override {
    auto result = inner_->plan(snap, config);
    result.generation_micros = fake_generation_;
    return result;
  }
  [[nodiscard]] std::string name() const override { return "Slow"; }

 private:
  PlannerPtr inner_;
  Micros fake_generation_;
};

class FixedSource final : public WorkloadSource {
 public:
  explicit FixedSource(std::vector<std::uint64_t> counts)
      : counts_(std::move(counts)) {}
  [[nodiscard]] std::size_t num_keys() const override {
    return counts_.size();
  }
  [[nodiscard]] IntervalWorkload next_interval() override {
    return IntervalWorkload{counts_};
  }

 private:
  std::vector<std::uint64_t> counts_;
};

std::unique_ptr<Controller> controller_with(PlannerPtr planner,
                                            std::size_t num_keys) {
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.08;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(4, 128, 3), 0),
      std::move(planner), cfg, num_keys);
}

std::vector<std::uint64_t> skewed_counts(std::size_t num_keys) {
  // Eight hot keys (balanceable across 4 instances — a single hot key
  // would dominate any placement) over a cold tail.
  std::vector<std::uint64_t> counts(num_keys, 100);
  for (std::size_t k = 0; k < 8; ++k) counts[k] = 25'000;
  return counts;
}

TEST(SimDelay, FastPlannerLandsNextInterval) {
  SimConfig cfg;
  cfg.num_instances = 4;
  SimEngine engine(cfg, std::make_unique<UniformCostOperator>(1.0, 8.0),
                   std::make_unique<FixedSource>(skewed_counts(500)),
                   controller_with(std::make_unique<MixedPlanner>(), 500));
  const auto first = engine.step();
  EXPECT_TRUE(first.migrated);
  EXPECT_GT(first.max_theta, 0.08);
  const auto second = engine.step();
  EXPECT_LE(second.max_theta, 0.15);  // already routed by the new F
}

TEST(SimDelay, SlowPlannerKeepsOldRoutingWhileGenerating) {
  SimConfig cfg;
  cfg.num_instances = 4;
  // Generation takes 3 intervals of virtual time.
  const Micros gen = 3 * cfg.interval_micros + 1000;
  SimEngine engine(
      cfg, std::make_unique<UniformCostOperator>(1.0, 8.0),
      std::make_unique<FixedSource>(skewed_counts(500)),
      controller_with(std::make_unique<SlowPlanner>(
                          std::make_unique<MixedPlanner>(), gen),
                      500));
  const auto first = engine.step();
  ASSERT_TRUE(first.migrated);
  const double imbalanced = first.max_theta;
  // Intervals 1..3: plan in flight, routing unchanged, imbalance persists.
  for (int i = 0; i < 3; ++i) {
    const auto m = engine.step();
    EXPECT_NEAR(m.max_theta, imbalanced, 0.05) << "interval " << i + 1;
    EXPECT_FALSE(m.migrated);
  }
  // Interval 4: plan landed, routing switched.
  const auto after = engine.step();
  EXPECT_LT(after.max_theta, imbalanced / 2.0);
}

TEST(SimDelay, DisablingGenerationChargeInstallsImmediately) {
  SimConfig cfg;
  cfg.num_instances = 4;
  cfg.charge_generation_time = false;
  const Micros gen = 10 * cfg.interval_micros;
  SimEngine engine(
      cfg, std::make_unique<UniformCostOperator>(1.0, 8.0),
      std::make_unique<FixedSource>(skewed_counts(500)),
      controller_with(std::make_unique<SlowPlanner>(
                          std::make_unique<MixedPlanner>(), gen),
                      500));
  const auto first = engine.step();
  ASSERT_TRUE(first.migrated);
  const auto second = engine.step();
  EXPECT_LT(second.max_theta, first.max_theta / 2.0);
}

TEST(SimDelay, NoReplanningWhilePlanInFlight) {
  SimConfig cfg;
  cfg.num_instances = 4;
  const Micros gen = 2 * cfg.interval_micros + 1000;
  SimEngine engine(
      cfg, std::make_unique<UniformCostOperator>(1.0, 8.0),
      std::make_unique<FixedSource>(skewed_counts(500)),
      controller_with(std::make_unique<SlowPlanner>(
                          std::make_unique<MixedPlanner>(), gen),
                      500));
  int migrations = 0;
  for (int i = 0; i < 6; ++i) {
    migrations += engine.step().migrated ? 1 : 0;
  }
  // One plan decided at interval 0, in flight for 2 intervals, landed at
  // interval 3; the workload is then balanced, so exactly one migration.
  EXPECT_EQ(migrations, 1);
}

}  // namespace
}  // namespace skewless
