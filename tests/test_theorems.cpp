// Property tests for the paper's theoretical results.
//
//  * Theorem 1: when a perfect assignment exists and no key exceeds the
//    average load, LLFD's balance indicator is at most 1/3 · (1 − 1/N_D).
//  * Theorems 2/4: the Mixed algorithm's balance status is no worse than
//    the Simple algorithm's.
//  * Theorem 3: HLHE discretization keeps the accumulated deviation ~0
//    (covered in test_discretize.cpp; cross-checked here via plan loads).
#include <gtest/gtest.h>

#include "core/llfd.h"
#include "core/planners.h"
#include "test_util.h"

namespace skewless {
namespace {

class Theorem1Param
    : public ::testing::TestWithParam<std::tuple<InstanceId, std::uint64_t>> {
};

TEST_P(Theorem1Param, LlfdBoundOnPlantedPerfectInstances) {
  const auto [nd, seed] = GetParam();
  // Planted: each instance's target sum is exactly 100, at least 3 keys
  // per instance so no key exceeds L̄ (Theorem 1's precondition).
  const auto snap =
      testutil::planted_perfect_snapshot(nd, /*per_instance=*/6, 100.0, seed);

  // Run the full clean + LLFD pipeline from scratch (MinTable workflow
  // with θmax = 0, the setting of the theorem).
  MinTablePlanner planner;
  PlannerConfig cfg;
  cfg.theta_max = 0.0;
  cfg.max_table_entries = 0;
  const auto plan = planner.plan(snap, cfg);

  const double bound =
      (1.0 / 3.0) * (1.0 - 1.0 / static_cast<double>(nd));
  EXPECT_LE(plan.achieved_theta, bound + 1e-9)
      << "N_D=" << nd << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Param,
    ::testing::Combine(::testing::Values<InstanceId>(2, 3, 5, 8, 13, 20),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8)));

class Theorem2Param : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem2Param, MixedNoWorseThanSimple) {
  const std::uint64_t seed = GetParam();
  const auto snap = testutil::random_zipf_snapshot(10, 3000, 0.9, seed);

  // Simple algorithm (Algorithm 5) baseline balance.
  const auto simple = simple_assign(snap);
  const double theta_simple =
      PartitionSnapshot::max_theta(snap.loads_under(simple));

  MixedPlanner planner;
  PlannerConfig cfg;
  cfg.theta_max = 0.0;  // ask for the best balance Mixed can deliver
  cfg.max_table_entries = 0;
  const auto plan = planner.plan(snap, cfg);

  EXPECT_LE(plan.achieved_theta, theta_simple + 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem2Param,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                          8, 9, 10));

TEST(Theorem1Precondition, BoundCanFailWithoutPerfectAssignment) {
  // Sanity check that the bound is meaningful: one key holding nearly all
  // the load violates the c(k1) < L̄ precondition, and no algorithm can
  // balance it — θ exceeds the bound. This guards the test harness
  // against a trivially-passing bound.
  PartitionSnapshot snap;
  snap.num_instances = 4;
  snap.cost = {1000.0, 1.0, 1.0, 1.0};
  snap.state = {1.0, 1.0, 1.0, 1.0};
  snap.hash_dest = {0, 0, 0, 0};
  snap.current = {0, 0, 0, 0};
  snap.validate();

  MinTablePlanner planner;
  PlannerConfig cfg;
  cfg.theta_max = 0.0;
  const auto plan = planner.plan(snap, cfg);
  const double bound = (1.0 / 3.0) * (1.0 - 1.0 / 4.0);
  EXPECT_GT(plan.achieved_theta, bound);
}

}  // namespace
}  // namespace skewless
