#include "core/compact.h"

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;
using testutil::random_zipf_snapshot;

TEST(CompactSpace, GroupsIdenticalKeysIntoOneRecord) {
  // Four keys, all cost 4 / state 4, same current and hash destination:
  // a single record with # = 4.
  const auto snap = make_snapshot(2, {4.0, 4.0, 4.0, 4.0}, {0, 0, 0, 0},
                                  {4.0, 4.0, 4.0, 4.0});
  const auto space = CompactSpace::build(snap, 2);
  ASSERT_EQ(space.num_records(), 1u);
  EXPECT_EQ(space.records().front().count(), 4u);
  EXPECT_EQ(space.records().front().curr, 0);
  EXPECT_EQ(space.records().front().next, 0);
}

TEST(CompactSpace, SeparatesByDestinationPair) {
  // Same values but different hash destinations -> separate records.
  const auto snap = make_snapshot(2, {4.0, 4.0}, {0, 0}, {4.0, 4.0},
                                  /*hash=*/{0, 1});
  const auto space = CompactSpace::build(snap, 2);
  EXPECT_EQ(space.num_records(), 2u);
}

TEST(CompactSpace, RecordCountFarBelowKeyCount) {
  const auto snap = random_zipf_snapshot(5, 20'000, 0.85, 3);
  const auto space = CompactSpace::build(snap, 3);
  // The compaction is the whole point: thousands of cold keys share the
  // few small representative values.
  EXPECT_LT(space.num_records(), snap.num_keys() / 10);
}

TEST(CompactSpace, CoarserDegreeFewerRecords) {
  const auto snap = random_zipf_snapshot(5, 10'000, 0.85, 4);
  const auto fine = CompactSpace::build(snap, 0);
  const auto coarse = CompactSpace::build(snap, 5);
  EXPECT_LE(coarse.num_records(), fine.num_records());
}

TEST(CompactSpace, EveryKeyInExactlyOneRecord) {
  const auto snap = random_zipf_snapshot(4, 5000, 0.9, 5);
  const auto space = CompactSpace::build(snap, 2);
  std::vector<int> seen(snap.num_keys(), 0);
  for (const auto& rec : space.records()) {
    for (const KeyId k : rec.keys) ++seen[static_cast<std::size_t>(k)];
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(CompactSpace, EstimatedLoadsCloseToTrueLoads) {
  const auto snap = random_zipf_snapshot(6, 10'000, 0.85, 6);
  const auto space = CompactSpace::build(snap, 2);
  const auto est = space.estimated_loads(snap.num_instances);
  const auto real = snap.current_loads();
  double total = 0.0;
  for (const Cost l : real) total += l;
  for (std::size_t d = 0; d < est.size(); ++d) {
    EXPECT_NEAR(est[d], real[d], 0.02 * total) << "instance " << d;
  }
}

TEST(CompactMixedPlanner, ProducesBalancedValidPlan) {
  const auto snap = random_zipf_snapshot(8, 10'000, 0.85, 7);
  CompactMixedPlanner planner(/*r_degree=*/3);
  PlannerConfig cfg;
  cfg.theta_max = 0.08;
  cfg.max_table_entries = 0;
  const auto plan = planner.plan(snap, cfg);
  ASSERT_EQ(plan.assignment.size(), snap.num_keys());
  // The compact planner balances the *estimated* loads; the true balance
  // can overshoot θmax by the discretization's load-estimation error
  // (Fig. 11b reports <1% — allow 2 points of slack).
  EXPECT_LE(plan.achieved_theta, cfg.theta_max + 0.02)
      << "theta " << plan.achieved_theta;
  EXPECT_GT(planner.last_num_records(), 0u);
  EXPECT_LT(planner.last_load_estimation_error_pct(), 2.0);
}

TEST(CompactMixedPlanner, RespectsTableBound) {
  auto snap = random_zipf_snapshot(6, 4000, 0.9, 8);
  for (std::size_t k = 0; k < snap.num_keys(); k += 3) {
    snap.current[k] = static_cast<InstanceId>((snap.hash_dest[k] + 1) % 6);
  }
  CompactMixedPlanner planner(3);
  PlannerConfig cfg;
  cfg.theta_max = 0.1;
  cfg.max_table_entries = 300;
  const auto plan = planner.plan(snap, cfg);
  EXPECT_LE(plan.table_size, 300u);
}

TEST(CompactMixedPlanner, NearestVariantStillValid) {
  const auto snap = random_zipf_snapshot(5, 5000, 0.85, 9);
  CompactMixedPlanner planner(3, /*greedy=*/false);
  PlannerConfig cfg;
  cfg.theta_max = 0.1;
  const auto plan = planner.plan(snap, cfg);
  ASSERT_EQ(plan.assignment.size(), snap.num_keys());
  for (const InstanceId d : plan.assignment) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 5);
  }
}

class CompactDegreeParam : public ::testing::TestWithParam<int> {};

TEST_P(CompactDegreeParam, LoadErrorBoundedAcrossDegrees) {
  const int r = GetParam();
  const auto snap = random_zipf_snapshot(8, 20'000, 0.85, 10);
  CompactMixedPlanner planner(r);
  PlannerConfig cfg;
  cfg.theta_max = 0.08;
  const auto plan = planner.plan(snap, cfg);
  ASSERT_EQ(plan.assignment.size(), snap.num_keys());
  // Fig. 11(b): estimation error stays below ~1% for all tested degrees.
  EXPECT_LT(planner.last_load_estimation_error_pct(), 3.0) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(DegreeSweep, CompactDegreeParam,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace skewless
