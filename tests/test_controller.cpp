#include "core/controller.h"

#include <gtest/gtest.h>

#include "core/planners.h"

namespace skewless {
namespace {

Controller make_controller(InstanceId nd, std::size_t num_keys,
                           double theta_max, int window = 1,
                           bool enabled = true) {
  ControllerConfig cfg;
  cfg.planner.theta_max = theta_max;
  cfg.planner.max_table_entries = 0;
  cfg.window = window;
  cfg.enabled = enabled;
  return Controller(AssignmentFunction(ConsistentHashRing(nd, 128, 9), 0),
                    std::make_unique<MixedPlanner>(), cfg, num_keys);
}

TEST(Controller, NoTriggerWhenBalanced) {
  auto ctrl = make_controller(2, 10, 0.5);
  // Two keys on different instances with equal cost.
  KeyId k0 = 0;
  while (ctrl.assignment()(k0) != 0) ++k0;
  KeyId k1 = 0;
  while (ctrl.assignment()(k1) != 1) ++k1;
  ctrl.record(k0, 10.0, 1.0);
  ctrl.record(k1, 10.0, 1.0);
  EXPECT_FALSE(ctrl.end_interval().has_value());
  EXPECT_NEAR(ctrl.last_observed_theta(), 0.0, 1e-9);
}

TEST(Controller, TriggersAndInstallsOnImbalance) {
  auto ctrl = make_controller(2, 10, 0.08);
  // Load two keys onto whatever instance key 0 maps to; leave the other
  // instance idle -> max theta = 1.
  const InstanceId hot = ctrl.assignment()(0);
  ctrl.record(0, 10.0, 4.0);
  KeyId other = 1;
  while (ctrl.assignment()(other) != hot) ++other;
  ctrl.record(other, 10.0, 4.0);

  const auto plan = ctrl.end_interval();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->moves.size(), 1u);
  EXPECT_EQ(ctrl.rebalance_count(), 1u);
  EXPECT_GT(ctrl.total_migrated_bytes(), 0.0);
  // The live assignment now routes the moved key to the other instance.
  const KeyId moved = plan->moves.front().key;
  EXPECT_EQ(ctrl.assignment()(moved), plan->moves.front().to);
}

TEST(Controller, DisabledControllerNeverPlans) {
  auto ctrl = make_controller(2, 10, 0.08, 1, /*enabled=*/false);
  const InstanceId hot = ctrl.assignment()(0);
  ctrl.record(0, 10.0, 1.0);
  KeyId other = 1;
  while (ctrl.assignment()(other) != hot) ++other;
  ctrl.record(other, 10.0, 1.0);
  EXPECT_FALSE(ctrl.end_interval().has_value());
  EXPECT_GT(ctrl.last_observed_theta(), 0.5);  // imbalance observed
  EXPECT_EQ(ctrl.rebalance_count(), 0u);
}

TEST(Controller, RepeatedIntervalsConverge) {
  auto ctrl = make_controller(4, 100, 0.1);
  // Skewed load: key k costs ~1/(rank+1).
  for (int interval = 0; interval < 5; ++interval) {
    for (KeyId k = 0; k < 100; ++k) {
      ctrl.record(k, 1000.0 / (1.0 + static_cast<double>(k)), 8.0);
    }
    ctrl.end_interval();
  }
  // After rebalancing, one more identical interval must be balanced.
  for (KeyId k = 0; k < 100; ++k) {
    ctrl.record(k, 1000.0 / (1.0 + static_cast<double>(k)), 8.0);
  }
  EXPECT_FALSE(ctrl.end_interval().has_value());
  EXPECT_LE(ctrl.last_observed_theta(), 0.1 + 1e-9);
}

TEST(Controller, AddInstancePinsExistingPlacement) {
  auto ctrl = make_controller(3, 50, 0.1);
  std::vector<InstanceId> before(50);
  for (KeyId k = 0; k < 50; ++k) {
    before[static_cast<std::size_t>(k)] = ctrl.assignment()(k);
  }
  ctrl.add_instance();
  EXPECT_EQ(ctrl.num_instances(), 4);
  for (KeyId k = 0; k < 50; ++k) {
    EXPECT_EQ(ctrl.assignment()(k), before[static_cast<std::size_t>(k)])
        << "key " << k << " moved implicitly during scale-out";
  }
}

TEST(Controller, ScaleOutThenRebalanceUsesNewInstance) {
  auto ctrl = make_controller(2, 200, 0.05);
  ctrl.add_instance();
  for (KeyId k = 0; k < 200; ++k) ctrl.record(k, 1.0, 1.0);
  const auto plan = ctrl.end_interval();
  ASSERT_TRUE(plan.has_value());
  bool new_instance_used = false;
  for (const KeyMove& mv : plan->moves) {
    if (mv.to == 2) new_instance_used = true;
  }
  EXPECT_TRUE(new_instance_used);
  EXPECT_LE(plan->achieved_theta, 0.05 + 1e-9);
}

TEST(Controller, GenerationTimeAccumulates) {
  auto ctrl = make_controller(2, 20, 0.01);
  const InstanceId hot = ctrl.assignment()(0);
  for (int i = 0; i < 3; ++i) {
    // Alternate hot instance to keep triggering.
    for (KeyId k = 0; k < 20; ++k) {
      if (ctrl.assignment()(k) == hot) ctrl.record(k, 10.0 + i, 1.0);
    }
    ctrl.end_interval();
  }
  EXPECT_GE(ctrl.total_generation_micros(), 0);
}

}  // namespace
}  // namespace skewless
