// CompactSnapshot semantics: a snapshot holding only the heavy entries
// plus per-instance cold residual aggregates must reproduce EXACTLY the
// load figures (L(d), L̄, θ(d), Lmax) of the dense snapshot it condenses
// — per-key resolution is lost for the cold tail, load fidelity is not —
// and plans over it may only ever move entry keys. Also covers the
// SketchStatsWindow::synthesize_compact contract: per-instance cold
// aggregates are exact sums of the recorded cold mass by destination.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/controller.h"
#include "core/planners.h"
#include "core/snapshot.h"
#include "core/working_assignment.h"
#include "sketch/sketch_stats_window.h"
#include "test_util.h"

namespace skewless {
namespace {

using testutil::random_zipf_snapshot;

/// Condenses a dense snapshot into a compact one: keys with cost >=
/// `threshold` become entries, everything else folds into the cold
/// residual aggregates pinned at its current destination.
PartitionSnapshot condense(const PartitionSnapshot& dense, Cost threshold) {
  PartitionSnapshot compact;
  compact.num_instances = dense.num_instances;
  compact.total_keys = dense.num_keys();
  compact.cold_cost.assign(static_cast<std::size_t>(dense.num_instances), 0.0);
  compact.cold_state.assign(static_cast<std::size_t>(dense.num_instances),
                            0.0);
  for (std::size_t k = 0; k < dense.num_keys(); ++k) {
    if (dense.cost[k] >= threshold) {
      compact.keys.push_back(static_cast<KeyId>(k));
      compact.cost.push_back(dense.cost[k]);
      compact.state.push_back(dense.state[k]);
      compact.hash_dest.push_back(dense.hash_dest[k]);
      compact.current.push_back(dense.current[k]);
    } else {
      const auto d = static_cast<std::size_t>(dense.current[k]);
      compact.cold_cost[d] += dense.cost[k];
      compact.cold_state[d] += dense.state[k];
      if (dense.current[k] != dense.hash_dest[k]) {
        ++compact.cold_table_entries;
      }
    }
  }
  compact.validate();
  return compact;
}

/// A dense Zipf snapshot with integer-valued statistics (every sum below
/// is exact in floating point) and a routing perturbation so both tiers
/// hold table entries.
PartitionSnapshot perturbed_dense(std::uint64_t seed) {
  auto dense = random_zipf_snapshot(6, 2000, 0.9, seed);
  for (std::size_t k = 0; k < dense.num_keys(); k += 7) {
    dense.current[k] =
        static_cast<InstanceId>((dense.hash_dest[k] + 1) % dense.num_instances);
  }
  return dense;
}

TEST(CompactSnapshot, ColdAggregatesKeepLoadFiguresExact) {
  const auto dense = perturbed_dense(3);
  const auto compact = condense(dense, 5.0);
  ASSERT_LT(compact.num_entries(), dense.num_entries());
  ASSERT_GT(compact.num_entries(), 0u);
  ASSERT_TRUE(compact.has_cold());

  // Integer statistics: the load figures must agree EXACTLY, not within
  // a tolerance — this is the "loads, L̄, θ(d) and Lmax stay exact" claim.
  EXPECT_DOUBLE_EQ(compact.average_load(), dense.average_load());
  const auto dense_loads = dense.current_loads();
  const auto compact_loads = compact.current_loads();
  ASSERT_EQ(dense_loads.size(), compact_loads.size());
  for (std::size_t d = 0; d < dense_loads.size(); ++d) {
    EXPECT_DOUBLE_EQ(compact_loads[d], dense_loads[d]) << "instance " << d;
  }
  EXPECT_DOUBLE_EQ(PartitionSnapshot::max_theta(compact_loads),
                   PartitionSnapshot::max_theta(dense_loads));
  EXPECT_DOUBLE_EQ(compact.overload_threshold(0.08),
                   dense.overload_threshold(0.08));
}

TEST(CompactSnapshot, PlansOnlyMoveEntryKeys) {
  const auto dense = perturbed_dense(4);
  const auto compact = condense(dense, 5.0);
  std::set<KeyId> entry_keys(compact.keys.begin(), compact.keys.end());

  PlannerConfig cfg;
  cfg.theta_max = 0.08;
  cfg.max_table_entries = 0;
  MixedPlanner planner;
  const auto plan = planner.plan(compact, cfg);
  EXPECT_EQ(plan.assignment.size(), compact.num_entries());
  EXPECT_FALSE(plan.moves.empty());
  for (const KeyMove& mv : plan.moves) {
    EXPECT_TRUE(entry_keys.count(mv.key) > 0)
        << "plan moved untracked cold key " << mv.key;
  }
  // The plan's balance verdict is judged against loads that include the
  // cold residuals — evaluating the plan's assignment over the compact
  // snapshot must agree with its achieved_theta.
  EXPECT_DOUBLE_EQ(
      plan.achieved_theta,
      PartitionSnapshot::max_theta(compact.loads_under(plan.assignment)));
}

TEST(CompactSnapshot, FinalizePlanCountsColdTableEntries) {
  const auto dense = perturbed_dense(5);
  const auto compact = condense(dense, 5.0);
  ASSERT_GT(compact.cold_table_entries, 0u);

  PlannerConfig cfg;
  cfg.theta_max = 1e9;  // identity plan: nothing needs to move
  const auto plan = finalize_plan(compact, compact.current, cfg);
  EXPECT_TRUE(plan.moves.empty());
  // Identity keeps every table entry: the entry-tier ones plus the cold
  // ones the planner cannot see.
  EXPECT_EQ(plan.table_size,
            implied_table_size(compact.current, compact.hash_dest) +
                compact.cold_table_entries);
  // And the dense count of the source snapshot is the same number.
  EXPECT_EQ(plan.table_size,
            implied_table_size(dense.current, dense.hash_dest));
}

TEST(CompactSnapshot, WorkingAssignmentSeedsColdLoads) {
  const auto dense = perturbed_dense(6);
  const auto compact = condense(dense, 5.0);
  WorkingAssignment wa(compact);
  const auto dense_loads = dense.current_loads();
  for (InstanceId d = 0; d < compact.num_instances; ++d) {
    EXPECT_DOUBLE_EQ(wa.load(d), dense_loads[static_cast<std::size_t>(d)]);
  }
  // Moving an entry away moves only its own cost; the cold residual on
  // its instance stays put.
  const KeyId slot = 0;
  const InstanceId from = compact.current[0];
  wa.disassociate(slot);
  EXPECT_DOUBLE_EQ(wa.load(from),
                   dense_loads[static_cast<std::size_t>(from)] -
                       compact.cost[0]);
}

TEST(CompactSnapshot, SynthesizeCompactEmitsExactPerInstanceColdMass) {
  constexpr std::size_t kKeys = 3000;
  constexpr InstanceId kNd = 4;
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 32;
  // High promotion bar: only the 8-key hot head ever promotes, so the
  // second roll performs no promotion debits and the interval-2 cold
  // aggregates equal the tallied ground truth exactly.
  cfg.promote_fraction = 0.05;
  SketchStatsWindow w(kKeys, 1, cfg);

  // Integer stream: key k costs (k % 13) + 1 on destination k % kNd;
  // the hot head (k < 8) is big enough to promote.
  std::vector<Cost> cold_cost_true(kNd, 0.0);
  std::vector<Bytes> cold_state_true(kNd, 0.0);
  const auto feed = [&](bool tally) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      const auto key = static_cast<KeyId>(k);
      const auto dest = static_cast<InstanceId>(k % kNd);
      const Cost c = k < 8 ? 50'000.0 : static_cast<Cost>(k % 13 + 1);
      const Bytes s = 2.0 * c;
      w.record(key, c, s, 1, dest);
      if (tally && !w.is_heavy(key)) {
        // Ground truth per-destination cold mass of this interval.
        cold_cost_true[static_cast<std::size_t>(dest)] += c;
        cold_state_true[static_cast<std::size_t>(dest)] += s;
      }
    }
  };
  feed(false);
  w.roll();  // promotes the head, debits its backfill from the cold tier
  feed(true);
  w.roll();

  std::vector<KeyId> keys;
  std::vector<Cost> cost;
  std::vector<Bytes> state;
  std::vector<Cost> cold_cost;
  std::vector<Bytes> cold_state;
  w.synthesize_compact(kNd, keys, cost, state, cold_cost, cold_state);
  ASSERT_EQ(keys.size(), 8u);
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  ASSERT_EQ(cold_cost.size(), static_cast<std::size_t>(kNd));

  // Heavy entries carry their exact values; with window = 1 the second
  // interval's cold mass per destination is exactly the tallied truth.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(w.is_heavy(keys[i]));
    EXPECT_EQ(cost[i], w.last_cost_of(keys[i]));
    EXPECT_EQ(state[i], w.windowed_state_of(keys[i]));
  }
  for (std::size_t d = 0; d < cold_cost.size(); ++d) {
    EXPECT_DOUBLE_EQ(cold_cost[d], cold_cost_true[d]) << "instance " << d;
    EXPECT_DOUBLE_EQ(cold_state[d], cold_state_true[d]) << "instance " << d;
  }
}

TEST(CompactSnapshot, SynthesizeCompactSpreadsUnattributedMassEvenly) {
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 4;
  cfg.promote_fraction = 0.9;  // nothing promotes: all mass stays cold
  SketchStatsWindow w(100, 1, cfg);
  for (KeyId k = 0; k < 100; ++k) w.record(k, 3.0, 6.0);  // no dest
  w.roll();

  std::vector<KeyId> keys;
  std::vector<Cost> cost;
  std::vector<Bytes> state;
  std::vector<Cost> cold_cost;
  std::vector<Bytes> cold_state;
  w.synthesize_compact(5, keys, cost, state, cold_cost, cold_state);
  // Totals are conserved exactly (L̄ stays truthful)...
  Cost total_c = 0.0;
  Bytes total_s = 0.0;
  for (const Cost c : cold_cost) total_c += c;
  for (const Bytes s : cold_state) total_s += s;
  EXPECT_DOUBLE_EQ(total_c, 300.0);
  EXPECT_DOUBLE_EQ(total_s, 600.0);
  // ...and the unattributable mass is spread evenly.
  for (const Cost c : cold_cost) EXPECT_DOUBLE_EQ(c, 60.0);
  for (const Bytes s : cold_state) EXPECT_DOUBLE_EQ(s, 120.0);
}

// End-to-end controller equivalence: an exact-mode controller and a
// sketch-mode controller with full heavy coverage, fed the identical
// integer-valued stream, must make the SAME rebalance decision — the
// compact build_snapshot path against the dense one, through the public
// Controller interface.
TEST(CompactSnapshot, ControllersAgreeUnderFullHeavyCoverage) {
  constexpr std::size_t kKeys = 400;
  constexpr InstanceId kNd = 5;
  const auto make = [&](StatsMode mode) {
    ControllerConfig cfg;
    cfg.planner.theta_max = 0.05;
    cfg.planner.max_table_entries = 0;
    cfg.stats_mode = mode;
    cfg.sketch.heavy_capacity = 1024;
    cfg.sketch.promote_fraction = 0.0;
    return std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(kNd, 128, 17), 0),
        std::make_unique<MixedPlanner>(), cfg, kKeys);
  };
  auto exact = make(StatsMode::kExact);
  auto sketch = make(StatsMode::kSketch);

  const auto feed = [&](Controller& ctrl) {
    for (KeyId k = 0; k < kKeys; ++k) {
      const Cost c = static_cast<Cost>(kKeys - k);  // integer, skewed
      ctrl.record(k, c, 2.0 * c, 1, ctrl.assignment()(k));
    }
  };

  for (int interval = 0; interval < 4; ++interval) {
    feed(*exact);
    feed(*sketch);
    const auto plan_e = exact->end_interval();
    const auto plan_s = sketch->end_interval();
    ASSERT_EQ(plan_e.has_value(), plan_s.has_value())
        << "interval " << interval;
    if (plan_e.has_value()) {
      ASSERT_EQ(plan_e->moves.size(), plan_s->moves.size());
      for (std::size_t i = 0; i < plan_e->moves.size(); ++i) {
        EXPECT_EQ(plan_e->moves[i].key, plan_s->moves[i].key);
        EXPECT_EQ(plan_e->moves[i].from, plan_s->moves[i].from);
        EXPECT_EQ(plan_e->moves[i].to, plan_s->moves[i].to);
        EXPECT_EQ(plan_e->moves[i].state_bytes, plan_s->moves[i].state_bytes);
      }
      EXPECT_EQ(plan_e->table_size, plan_s->table_size);
      EXPECT_EQ(plan_e->migration_bytes, plan_s->migration_bytes);
      EXPECT_EQ(plan_e->achieved_theta, plan_s->achieved_theta);
    }
    EXPECT_EQ(exact->last_observed_theta(), sketch->last_observed_theta())
        << "interval " << interval;
    // The live assignments must stay in lockstep key-by-key.
    for (KeyId k = 0; k < kKeys; ++k) {
      ASSERT_EQ(exact->assignment()(k), sketch->assignment()(k))
          << "interval " << interval << " key " << k;
    }
  }
}

}  // namespace
}  // namespace skewless
