#include <gtest/gtest.h>

#include <numeric>

#include "workload/social.h"
#include "workload/stock.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

TEST(Poisson, ZeroMeanIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(poisson_sample(rng, 0.0), 0u);
}

TEST(Poisson, SmallMeanMatches) {
  Xoshiro256 rng(2);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(poisson_sample(rng, 3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Poisson, LargeMeanMatches) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(poisson_sample(rng, 500.0));
  }
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(ZipfFluctuatingSource, FirstIntervalMatchesZipfExpectation) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 1000;
  opts.tuples_per_interval = 50'000;
  opts.fluctuation = 0.0;
  ZipfFluctuatingSource source(opts);
  const auto load = source.next_interval();
  EXPECT_EQ(load.total(), 50'000u);
  EXPECT_EQ(load.counts.size(), 1000u);
}

TEST(ZipfFluctuatingSource, NoFluctuationKeepsCountsStable) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 500;
  opts.tuples_per_interval = 20'000;
  opts.fluctuation = 0.0;
  ZipfFluctuatingSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  EXPECT_EQ(a.counts, b.counts);
}

TEST(ZipfFluctuatingSource, FluctuationPreservesTotal) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 2000;
  opts.tuples_per_interval = 100'000;
  opts.fluctuation = 0.5;
  ZipfFluctuatingSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  EXPECT_EQ(a.total(), b.total());  // swaps conserve mass
  EXPECT_NE(a.counts, b.counts);
}

TEST(ZipfFluctuatingSource, FluctuationReachesRequestedMagnitude) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 5000;
  opts.tuples_per_interval = 200'000;
  opts.fluctuation = 0.6;
  opts.reference_instances = 10;
  ZipfFluctuatingSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();

  // Recompute reference-instance loads the way the generator defines them.
  ConsistentHashRing ring(10, 128, opts.seed ^ 0xabc);
  std::vector<double> la(10, 0.0);
  std::vector<double> lb(10, 0.0);
  for (std::size_t k = 0; k < a.counts.size(); ++k) {
    const auto d = static_cast<std::size_t>(ring.owner(static_cast<KeyId>(k)));
    la[d] += static_cast<double>(a.counts[k]);
    lb[d] += static_cast<double>(b.counts[k]);
  }
  double avg = 0.0;
  for (const double l : la) avg += l;
  avg /= 10.0;
  double worst = 0.0;
  for (std::size_t d = 0; d < 10; ++d) {
    worst = std::max(worst, std::abs(la[d] - lb[d]) / avg);
  }
  EXPECT_GE(worst, 0.6);
}

TEST(ZipfFluctuatingSource, SampleNoiseApproximatesExpectation) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 100;
  opts.tuples_per_interval = 100'000;
  opts.fluctuation = 0.0;
  opts.sample_noise = true;
  ZipfFluctuatingSource source(opts);
  const auto load = source.next_interval();
  EXPECT_NEAR(static_cast<double>(load.total()), 100'000.0, 3'000.0);
}

TEST(SocialSource, TotalStaysConstant) {
  SocialSource::Options opts;
  opts.num_words = 5000;
  opts.tuples_per_interval = 100'000;
  SocialSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  EXPECT_EQ(a.total(), 100'000u);
  EXPECT_EQ(b.total(), 100'000u);
}

TEST(SocialSource, DriftIsGradual) {
  SocialSource::Options opts;
  opts.num_words = 5000;
  opts.tuples_per_interval = 100'000;
  opts.drift_fraction = 0.01;
  SocialSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  // L1 distance between consecutive snapshots is a small fraction of the
  // total (slow topic drift).
  std::uint64_t l1 = 0;
  for (std::size_t k = 0; k < a.counts.size(); ++k) {
    l1 += a.counts[k] > b.counts[k] ? a.counts[k] - b.counts[k]
                                    : b.counts[k] - a.counts[k];
  }
  EXPECT_GT(l1, 0u);
  EXPECT_LT(l1, a.total() / 5);
}

TEST(SocialSource, ZeroDriftIsStationary) {
  SocialSource::Options opts;
  opts.num_words = 1000;
  opts.tuples_per_interval = 10'000;
  opts.drift_fraction = 0.0;
  SocialSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  EXPECT_EQ(a.counts, b.counts);
}

TEST(StockSource, MatchesPaperKeyCount) {
  StockSource::Options opts;
  const StockSource source(opts);
  EXPECT_EQ(source.num_keys(), 1036u);
}

TEST(StockSource, BurstsAmplifyVolume) {
  StockSource::Options opts;
  opts.num_symbols = 100;
  opts.tuples_per_interval = 100'000;
  opts.burst_probability = 1.0;  // burst every interval
  opts.burst_min_factor = 10.0;
  opts.burst_max_factor = 10.0;
  StockSource source(opts);
  const auto base_total = 100'000.0;
  const auto load = source.next_interval();
  EXPECT_GT(static_cast<double>(load.total()), base_total);
  EXPECT_GE(source.active_bursts(), 1u);
}

TEST(StockSource, NoBurstsMeansStationary) {
  StockSource::Options opts;
  opts.num_symbols = 100;
  opts.tuples_per_interval = 50'000;
  opts.burst_probability = 0.0;
  StockSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(source.active_bursts(), 0u);
}

TEST(StockSource, BurstsExpire) {
  StockSource::Options opts;
  opts.num_symbols = 50;
  opts.tuples_per_interval = 10'000;
  opts.burst_probability = 0.0;
  StockSource source(opts);
  // Manually unreachable: with probability 0 no bursts ever start, so
  // active_bursts stays 0 across many intervals.
  for (int i = 0; i < 10; ++i) (void)source.next_interval();
  EXPECT_EQ(source.active_bursts(), 0u);
}

}  // namespace
}  // namespace skewless
