// The socket engine's fault-tolerance layer: the recovery data
// structures (checkpoint ring, replay buffer, exit classification, fault
// plans) unit-tested directly, then the recovery PROTOCOL end to end —
// the headline contract being that a worker killed at ANY epoch yields a
// run byte-identical to the crash-free one (same plan-history digest,
// same θ bit patterns, same state checksums), and that a worker that
// exhausts its retry budget degrades away with every tuple still counted
// exactly once.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "core/controller.h"
#include "core/planners.h"
#include "net/fault_injector.h"
#include "net/net_engine.h"
#include "net/recovery.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

bool tsan_enabled() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#endif
#endif
  return false;
}

// Every worker the engine ever forked must be reaped by shutdown — a
// zombie left behind means an exit path skipped its waitpid.
void expect_no_children() {
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(r == -1 && errno == ECHILD)
      << "unreaped child process (waitpid returned " << r << ")";
}

class NoZombieEnvironment : public ::testing::Environment {
 public:
  void TearDown() override { expect_no_children(); }
};

const ::testing::Environment* const kNoZombieEnv =
    ::testing::AddGlobalTestEnvironment(new NoZombieEnvironment);

// --- recovery data structures ---------------------------------------------

CheckpointPayload make_checkpoint(std::uint64_t epoch, std::size_t states,
                                  std::size_t blob_bytes) {
  CheckpointPayload cp;
  cp.epoch = epoch;
  cp.processed = epoch * 100;
  cp.outputs = epoch * 50;
  for (std::size_t i = 0; i < states; ++i) {
    WireKeyState s;
    s.key = static_cast<KeyId>(epoch * 1000 + i);
    s.blob.assign(blob_bytes, static_cast<std::uint8_t>(epoch));
    cp.states.push_back(std::move(s));
  }
  return cp;
}

TEST(CheckpointRing, EvictsOldestAndBoundsMemory) {
  CheckpointRing ring(2);
  ASSERT_EQ(ring.capacity(), 2u);
  EXPECT_EQ(ring.latest(), nullptr);

  std::size_t high_water = 0;
  for (std::uint64_t epoch = 1; epoch <= 50; ++epoch) {
    ring.push(make_checkpoint(epoch, /*states=*/4, /*blob_bytes=*/64));
    ASSERT_LE(ring.size(), 2u);
    ASSERT_NE(ring.latest(), nullptr);
    EXPECT_EQ(ring.latest()->epoch, epoch);
    high_water = std::max(high_water, ring.memory_bytes());
  }
  // The bound: memory after 50 epochs equals the 2-checkpoint high water,
  // not O(epochs).
  EXPECT_EQ(ring.memory_bytes(), high_water);
  EXPECT_LE(ring.memory_bytes(), 2 * 4 * (sizeof(WireKeyState) + 64));

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.latest(), nullptr);
}

TEST(CheckpointRing, ZeroCapacityClampsToOne) {
  CheckpointRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(make_checkpoint(1, 1, 8));
  ring.push(make_checkpoint(2, 1, 8));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.latest()->epoch, 2u);
}

TEST(ReplayBuffer, RecordsVerbatimAndOverflowIsSticky) {
  ReplayBuffer buf(/*max_bytes=*/100);
  const std::vector<std::uint8_t> a(40, 0xAA);
  const std::vector<std::uint8_t> b(40, 0xBB);
  EXPECT_TRUE(buf.record(3, a.data(), a.size()));
  EXPECT_TRUE(buf.record(3, b.data(), b.size()));
  EXPECT_EQ(buf.bytes(), 80u);
  ASSERT_EQ(buf.batches().size(), 2u);
  EXPECT_EQ(buf.batches()[0].epoch, 3u);
  EXPECT_EQ(buf.batches()[0].payload, a);
  EXPECT_EQ(buf.batches()[1].payload, b);

  // Past the budget: nothing recorded, overflow latches...
  EXPECT_FALSE(buf.record(3, a.data(), a.size()));
  EXPECT_TRUE(buf.overflowed());
  EXPECT_EQ(buf.batches().size(), 2u);
  // ...even for a record that would fit on its own.
  const std::uint8_t tiny = 0;
  EXPECT_FALSE(buf.record(3, &tiny, 1));

  // clear() resets the latch (checkpoint landed — epoch is durable).
  buf.clear();
  EXPECT_FALSE(buf.overflowed());
  EXPECT_EQ(buf.bytes(), 0u);
  EXPECT_TRUE(buf.record(4, &tiny, 1));
}

TEST(WorkerExit, DescribesCodesAndSignals) {
  // Build real wait statuses by encoding them the way the kernel does.
  const auto exited = [](int code) { return (code & 0xff) << 8; };
  EXPECT_NE(describe_worker_exit(exited(kWorkerExitOk)).find("clean"),
            std::string::npos);
  for (const int code :
       {kWorkerExitChannel, kWorkerExitHandshake, kWorkerExitProtocol,
        kWorkerExitCorruptFrame, kWorkerExitFault}) {
    const std::string d = describe_worker_exit(exited(code));
    EXPECT_EQ(d.find("clean"), std::string::npos) << d;
    EXPECT_FALSE(d.empty());
  }
  // Distinct codes must read differently — that is the whole point.
  EXPECT_NE(describe_worker_exit(exited(kWorkerExitProtocol)),
            describe_worker_exit(exited(kWorkerExitCorruptFrame)));
  const std::string killed = describe_worker_exit(SIGKILL);  // signal 9
  EXPECT_NE(killed.find("signal"), std::string::npos) << killed;
}

// --- fault plans ----------------------------------------------------------

TEST(FaultPlanParse, AcceptsFullGrammar) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_plan(
      "kill:w=1,epoch=3;wedge:w=0,epoch=5,sticky;garble:w=2,epoch=1", plan,
      error))
      << error;
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kKill);
  EXPECT_EQ(plan.events[0].worker, 1u);
  EXPECT_EQ(plan.events[0].epoch, 3u);
  EXPECT_FALSE(plan.events[0].sticky);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kWedge);
  EXPECT_TRUE(plan.events[1].sticky);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kGarble);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  for (const char* bad :
       {"", "kill", "explode:w=0,epoch=1", "kill:w=0", "kill:epoch=1",
        "kill:w=x,epoch=1", "kill:w=0,epoch=0", "kill:w=0,epoch=1,bogus",
        "kill:w=0 epoch=1"}) {
    error.clear();
    EXPECT_FALSE(parse_fault_plan(bad, plan, error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(FaultPlan, OneShotArmsOnlyForIncarnationZero) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("wedge:w=1,epoch=2;drop:w=1,epoch=4,sticky",
                               plan, error))
      << error;
  EXPECT_NE(plan.match(1, 2, 0), nullptr);
  EXPECT_EQ(plan.match(1, 2, 1), nullptr);  // one-shot: respawn runs clean
  EXPECT_EQ(plan.match(0, 2, 0), nullptr);  // wrong worker
  EXPECT_EQ(plan.match(1, 3, 0), nullptr);  // wrong epoch
  EXPECT_NE(plan.match(1, 4, 0), nullptr);  // sticky: every incarnation
  EXPECT_NE(plan.match(1, 4, 7), nullptr);
}

TEST(FaultPlan, RandomizedPlanIsSeedDeterministic) {
  const FaultPlan a = randomized_fault_plan(42, 4, 6, 8);
  const FaultPlan b = randomized_fault_plan(42, 4, 6, 8);
  const FaultPlan c = randomized_fault_plan(43, 4, 6, 8);
  ASSERT_EQ(a.events.size(), 8u);
  ASSERT_EQ(b.events.size(), 8u);
  bool differs = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].worker, b.events[i].worker);
    EXPECT_EQ(a.events[i].epoch, b.events[i].epoch);
    EXPECT_FALSE(a.events[i].sticky);
    ASSERT_LT(a.events[i].worker, 4u);
    ASSERT_GE(a.events[i].epoch, 1u);
    ASSERT_LE(a.events[i].epoch, 6u);
    differs |= a.events[i].worker != c.events[i].worker ||
               a.events[i].epoch != c.events[i].epoch;
  }
  EXPECT_TRUE(differs);  // a different seed draws a different plan
}

// --- the recovery protocol end to end -------------------------------------

std::unique_ptr<Controller> fault_controller(InstanceId workers,
                                             std::size_t num_keys) {
  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.08;
  ccfg.stats_mode = StatsMode::kSketch;
  ccfg.sketch.heavy_capacity = 128;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(workers), 0),
      std::make_unique<MixedPlanner>(), ccfg, num_keys);
}

/// Everything the byte-identity contract covers, harvested from one run.
struct RunDigest {
  std::uint64_t plan_digest = 0;
  std::uint64_t state_checksum = 0;
  std::size_t state_entries = 0;
  std::uint64_t processed = 0;
  std::uint64_t outputs = 0;
  std::vector<std::uint64_t> theta_bits;  // exact double bit patterns
  std::uint64_t recoveries = 0;
  bool degraded = false;
  bool ok = false;
  std::string error;
};

constexpr InstanceId kWorkers = 3;
constexpr int kIntervals = 3;

RunDigest run_with_plan(const FaultPlan& fault, int timeout_ms = 2'000,
                        int max_attempts = 3) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 1'500;
  opts.skew = 1.2;
  opts.tuples_per_interval = 8'000;
  opts.seed = 5;
  ZipfFluctuatingSource source(opts);

  NetConfig ncfg;
  ncfg.batch_size = 64;
  ncfg.recovery_enabled = true;
  ncfg.fault = fault;
  ncfg.ctrl_timeout_ms = timeout_ms;
  ncfg.heartbeat_interval_ms = 50;
  ncfg.respawn_max_attempts = max_attempts;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   fault_controller(kWorkers, source.num_keys()));
  const auto reports = engine.run(source, kIntervals, /*seed=*/11);

  RunDigest d;
  for (const auto& r : reports) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.max_theta));
    std::memcpy(&bits, &r.max_theta, sizeof(bits));
    d.theta_bits.push_back(bits);
  }
  d.plan_digest = engine.controller()->plan_history_digest();
  engine.shutdown();
  d.ok = engine.ok();
  d.error = engine.error();
  d.state_checksum = engine.state_checksum();
  d.state_entries = engine.total_state_entries();
  d.processed = engine.total_processed();
  d.outputs = engine.total_output_tuples();
  d.recoveries = engine.recoveries();
  d.degraded = engine.degraded();
  return d;
}

void expect_byte_identical(const RunDigest& got, const RunDigest& clean,
                           const std::string& label) {
  ASSERT_TRUE(got.ok) << label << ": " << got.error;
  EXPECT_EQ(got.plan_digest, clean.plan_digest) << label;
  EXPECT_EQ(got.state_checksum, clean.state_checksum) << label;
  EXPECT_EQ(got.state_entries, clean.state_entries) << label;
  EXPECT_EQ(got.processed, clean.processed) << label;
  EXPECT_EQ(got.outputs, clean.outputs) << label;
  ASSERT_EQ(got.theta_bits.size(), clean.theta_bits.size()) << label;
  for (std::size_t i = 0; i < clean.theta_bits.size(); ++i) {
    EXPECT_EQ(got.theta_bits[i], clean.theta_bits[i])
        << label << " θ interval " << i;
  }
}

// The headline: SIGKILL one worker at EVERY epoch in turn; each recovered
// run must be byte-identical to the crash-free run.
TEST(NetRecovery, KillAtEveryEpochIsByteIdentical) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  const RunDigest clean = run_with_plan(FaultPlan{});
  ASSERT_TRUE(clean.ok) << clean.error;
  ASSERT_EQ(clean.recoveries, 0u);
  ASSERT_FALSE(clean.degraded);
  ASSERT_EQ(clean.processed, std::uint64_t(kIntervals) * 8'000u);

  for (std::uint64_t epoch = 1; epoch <= kIntervals; ++epoch) {
    FaultPlan plan;
    plan.events.push_back(
        FaultEvent{FaultKind::kKill, /*worker=*/1, epoch, /*sticky=*/false});
    const RunDigest got = run_with_plan(plan);
    expect_byte_identical(got, clean, "kill@" + std::to_string(epoch));
    EXPECT_EQ(got.recoveries, 1u) << epoch;
    EXPECT_FALSE(got.degraded) << epoch;
  }
  expect_no_children();
}

// A wedged worker (alive but silent) is only detectable by the receive
// deadline; the respawn then replays the epoch to the same bytes.
TEST(NetRecovery, WedgeDetectedByDeadlineAndRecovered) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  const RunDigest clean = run_with_plan(FaultPlan{});
  ASSERT_TRUE(clean.ok) << clean.error;

  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kWedge, 0, 2, false});
  const RunDigest got = run_with_plan(plan, /*timeout_ms=*/600);
  expect_byte_identical(got, clean, "wedge@2");
  EXPECT_EQ(got.recoveries, 1u);
  EXPECT_FALSE(got.degraded);
  expect_no_children();
}

// Garbage bytes where the boundary summary belongs: corrupt-frame
// detection recovers the worker instead of failing the engine.
TEST(NetRecovery, GarbledSummaryRecovered) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  const RunDigest clean = run_with_plan(FaultPlan{});
  ASSERT_TRUE(clean.ok) << clean.error;

  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kGarble, 2, 2, false});
  const RunDigest got = run_with_plan(plan);
  expect_byte_identical(got, clean, "garble@2");
  EXPECT_EQ(got.recoveries, 1u);
  expect_no_children();
}

// A worker that closes both channels and exits mid-epoch (clean EOF).
TEST(NetRecovery, DroppedWorkerRecovered) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  const RunDigest clean = run_with_plan(FaultPlan{});
  ASSERT_TRUE(clean.ok) << clean.error;

  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kDrop, 1, 1, false});
  const RunDigest got = run_with_plan(plan);
  expect_byte_identical(got, clean, "drop@1");
  EXPECT_EQ(got.recoveries, 1u);
  expect_no_children();
}

// Seeded random fault coordinates (the fuzz-flavored sweep): whatever the
// plan draws, the recovered run matches the clean one byte for byte.
TEST(NetRecovery, RandomizedFaultPlanStaysByteIdentical) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  const RunDigest clean = run_with_plan(FaultPlan{});
  ASSERT_TRUE(clean.ok) << clean.error;

  for (const std::uint64_t seed : {0x5eedull, 77ull}) {
    const FaultPlan plan =
        randomized_fault_plan(seed, kWorkers, kIntervals, /*count=*/2);
    ASSERT_EQ(plan.events.size(), 2u);
    const RunDigest got = run_with_plan(plan, /*timeout_ms=*/600);
    expect_byte_identical(got, clean, "seed " + std::to_string(seed));
    EXPECT_GE(got.recoveries, 1u);
  }
  expect_no_children();
}

// Retry-budget exhaustion: a STICKY wedge re-fires in every incarnation,
// so recovery can never complete the epoch; after max_attempts the worker
// is degraded away and the run still finishes with every tuple counted.
TEST(NetRecovery, StickyWedgeExhaustsBudgetAndDegrades) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kWedge, 1, 2, /*sticky=*/true});
  const RunDigest got =
      run_with_plan(plan, /*timeout_ms=*/400, /*max_attempts=*/2);
  ASSERT_TRUE(got.ok) << got.error;  // degradation is survival, not failure
  EXPECT_TRUE(got.degraded);
  // Mass conservation: every emitted tuple processed exactly once, the
  // dead worker's share re-homed onto the survivors.
  EXPECT_EQ(got.processed, std::uint64_t(kIntervals) * 8'000u);
  EXPECT_EQ(got.outputs, std::uint64_t(kIntervals) * 8'000u);
  EXPECT_GT(got.state_entries, 0u);
  expect_no_children();
}

// With recovery off the engine is the legacy fail-stop one: the same kill
// must surface as an engine error, not a recovery.
TEST(NetRecovery, RecoveryDisabledFailsStop) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 1'500;
  opts.skew = 1.2;
  opts.tuples_per_interval = 8'000;
  opts.seed = 5;
  ZipfFluctuatingSource source(opts);

  NetConfig ncfg;
  ncfg.batch_size = 64;
  ncfg.recovery_enabled = false;
  FaultPlan plan;
  plan.events.push_back(FaultEvent{FaultKind::kKill, 1, 1, false});
  ncfg.fault = plan;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   fault_controller(kWorkers, source.num_keys()));
  (void)engine.run(source, kIntervals, /*seed=*/11);
  EXPECT_FALSE(engine.ok());
  EXPECT_FALSE(engine.error().empty());
  engine.shutdown();
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.recoveries(), 0u);
  expect_no_children();
}

// The checkpoint ring must stay bounded over a long run — depth
// checkpoint_ring_capacity, not O(epochs).
TEST(NetRecovery, CheckpointRingStaysBoundedAcrossEpochs) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 500;
  opts.skew = 1.1;
  opts.tuples_per_interval = 2'000;
  opts.seed = 9;
  ZipfFluctuatingSource source(opts);

  NetConfig ncfg;
  ncfg.batch_size = 64;
  ncfg.checkpoint_ring_capacity = 2;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   fault_controller(2, source.num_keys()));
  (void)engine.run(source, /*intervals=*/6, /*seed=*/7);
  ASSERT_TRUE(engine.ok()) << engine.error();
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_LE(engine.checkpoint_ring(w).size(), 2u) << w;
    ASSERT_NE(engine.checkpoint_ring(w).latest(), nullptr) << w;
    EXPECT_EQ(engine.checkpoint_ring(w).latest()->epoch, 6u) << w;
  }
  engine.shutdown();
  ASSERT_TRUE(engine.ok()) << engine.error();
  expect_no_children();
}

}  // namespace
}  // namespace skewless
