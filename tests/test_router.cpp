#include "baselines/router.h"

#include <gtest/gtest.h>

#include <vector>

namespace skewless {
namespace {

TEST(HashRouter, StableMapping) {
  const HashRouter router(ConsistentHashRing(5, 128, 1));
  for (KeyId k = 0; k < 100; ++k) {
    EXPECT_EQ(router.route(k), router.route(k));
    EXPECT_GE(router.route(k), 0);
    EXPECT_LT(router.route(k), 5);
  }
}

TEST(ShuffleRouter, RoundRobinIgnoresKeys) {
  ShuffleRouter router(3);
  EXPECT_EQ(router.route(42), 0);
  EXPECT_EQ(router.route(42), 1);
  EXPECT_EQ(router.route(42), 2);
  EXPECT_EQ(router.route(7), 0);
}

TEST(ShuffleRouter, AddInstanceExtendsCycle) {
  ShuffleRouter router(2);
  (void)router.route(0);
  router.add_instance();
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 300; ++i) {
    ++counts[static_cast<std::size_t>(router.route(0))];
  }
  for (const int c : counts) EXPECT_EQ(c, 100);
}

TEST(PkgRouter, CandidatesAreDeterministicAndDistinctUsually) {
  const PkgRouter router(10);
  int same = 0;
  for (KeyId k = 0; k < 1000; ++k) {
    EXPECT_EQ(router.candidate(k, 0), router.candidate(k, 0));
    if (router.candidate(k, 0) == router.candidate(k, 1)) ++same;
  }
  // Collision probability is 1/10 per key.
  EXPECT_LT(same, 200);
}

TEST(PkgRouter, RoutesOnlyToCandidates) {
  PkgRouter router(8);
  for (KeyId k = 0; k < 500; ++k) {
    const InstanceId d = router.route(k);
    EXPECT_TRUE(d == router.candidate(k, 0) || d == router.candidate(k, 1));
  }
}

TEST(PkgRouter, BalancesSingleHotKey) {
  // The whole point of key splitting: one hot key spreads over both its
  // candidates instead of melting one instance.
  PkgRouter router(4);
  for (int i = 0; i < 10'000; ++i) (void)router.route(/*key=*/7);
  const auto c1 = static_cast<std::size_t>(router.candidate(7, 0));
  const auto c2 = static_cast<std::size_t>(router.candidate(7, 1));
  ASSERT_NE(c1, c2);
  EXPECT_NEAR(router.loads()[c1], router.loads()[c2], 1.0);
  EXPECT_NEAR(router.loads()[c1] + router.loads()[c2], 10'000.0, 1.0);
}

TEST(PkgRouter, TracksCostEstimates) {
  PkgRouter router(4);
  (void)router.route(1, 5.0);
  double total = 0.0;
  for (const double l : router.loads()) total += l;
  EXPECT_EQ(total, 5.0);
}

TEST(PkgRouter, IntervalDecayHalvesLoads) {
  PkgRouter router(2);
  (void)router.route(0, 8.0);
  router.on_interval();
  double total = 0.0;
  for (const double l : router.loads()) total += l;
  EXPECT_EQ(total, 4.0);
}

TEST(PkgRouter, BetterBalancedThanSingleHashOnSkew) {
  // Zipf-ish synthetic: key k sends 1000/(k+1) tuples. Compare max load.
  const InstanceId nd = 5;
  PkgRouter pkg(nd);
  const HashRouter hash(ConsistentHashRing(nd, 128, 3));
  std::vector<double> pkg_load(static_cast<std::size_t>(nd), 0.0);
  std::vector<double> hash_load(static_cast<std::size_t>(nd), 0.0);
  for (KeyId k = 0; k < 200; ++k) {
    const int tuples = 1000 / (static_cast<int>(k) + 1);
    for (int i = 0; i < tuples; ++i) {
      ++pkg_load[static_cast<std::size_t>(pkg.route(k))];
      ++hash_load[static_cast<std::size_t>(hash.route(k))];
    }
  }
  const double pkg_max = *std::max_element(pkg_load.begin(), pkg_load.end());
  const double hash_max =
      *std::max_element(hash_load.begin(), hash_load.end());
  EXPECT_LT(pkg_max, hash_max);
}

TEST(PkgRouter, AddInstanceExpandsCandidateSpace) {
  PkgRouter router(2);
  router.add_instance();
  EXPECT_EQ(router.num_instances(), 3);
  bool uses_new = false;
  for (KeyId k = 0; k < 200 && !uses_new; ++k) {
    uses_new = router.candidate(k, 0) == 2 || router.candidate(k, 1) == 2;
  }
  EXPECT_TRUE(uses_new);
}

}  // namespace
}  // namespace skewless
