#include <gtest/gtest.h>

#include "core/assignment.h"
#include "core/routing_table.h"

namespace skewless {
namespace {

TEST(RoutingTable, LookupMissReturnsNullopt) {
  const RoutingTable table;
  EXPECT_FALSE(table.lookup(42).has_value());
}

TEST(RoutingTable, SetAndLookup) {
  RoutingTable table;
  EXPECT_TRUE(table.set(1, 3));
  EXPECT_EQ(table.lookup(1).value(), 3);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, UpdateExistingEntryDoesNotGrow) {
  RoutingTable table(1);
  EXPECT_TRUE(table.set(1, 0));
  EXPECT_TRUE(table.set(1, 2));  // update always allowed
  EXPECT_EQ(table.lookup(1).value(), 2);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, BoundRejectsNewEntriesWhenFull) {
  RoutingTable table(2);
  EXPECT_TRUE(table.set(1, 0));
  EXPECT_TRUE(table.set(2, 0));
  EXPECT_FALSE(table.set(3, 0));
  EXPECT_EQ(table.size(), 2u);
  table.erase(1);
  EXPECT_TRUE(table.set(3, 0));
}

TEST(RoutingTable, UnboundedWhenMaxZero) {
  RoutingTable table(0);
  EXPECT_FALSE(table.bounded());
  for (KeyId k = 0; k < 10'000; ++k) EXPECT_TRUE(table.set(k, 0));
  EXPECT_EQ(table.size(), 10'000u);
}

TEST(RoutingTable, EraseMissingReturnsFalse) {
  RoutingTable table;
  EXPECT_FALSE(table.erase(9));
}

TEST(RoutingTable, EntriesSortedByKey) {
  RoutingTable table;
  table.set(5, 1);
  table.set(1, 2);
  table.set(3, 0);
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 1u);
  EXPECT_EQ(entries[1].first, 3u);
  EXPECT_EQ(entries[2].first, 5u);
}

TEST(RoutingTable, AssignReplacesContents) {
  RoutingTable table;
  table.set(1, 1);
  table.assign({{7, 0}, {8, 1}});
  EXPECT_FALSE(table.lookup(1).has_value());
  EXPECT_EQ(table.lookup(7).value(), 0);
  EXPECT_EQ(table.size(), 2u);
}

TEST(AssignmentFunction, TableOverridesHash) {
  AssignmentFunction f(ConsistentHashRing(4, 128, 1), 100);
  const KeyId key = 12345;
  const InstanceId hash_dest = f.hash_dest(key);
  EXPECT_EQ(f(key), hash_dest);
  const InstanceId other = (hash_dest + 1) % 4;
  f.table().set(key, other);
  EXPECT_EQ(f(key), other);
  EXPECT_EQ(f.hash_dest(key), hash_dest);  // hash unchanged
}

TEST(AssignmentFunction, MaterializeMatchesPointEvaluation) {
  AssignmentFunction f(ConsistentHashRing(5, 128, 2), 0);
  f.table().set(3, 4);
  f.table().set(17, 0);
  const auto dense = f.materialize(100);
  for (KeyId k = 0; k < 100; ++k) {
    EXPECT_EQ(dense[static_cast<std::size_t>(k)], f(k));
  }
}

TEST(AssignmentFunction, InstallCreatesMinimalTable) {
  AssignmentFunction f(ConsistentHashRing(3, 128, 3), 0);
  auto assignment = f.materialize_hash(50);
  // Redirect two keys away from their hash destination.
  assignment[10] = (assignment[10] + 1) % 3;
  assignment[20] = (assignment[20] + 2) % 3;
  f.install(assignment);
  EXPECT_EQ(f.table().size(), 2u);
  const auto dense = f.materialize(50);
  EXPECT_EQ(dense, assignment);
}

TEST(AssignmentFunction, InstallIdentityYieldsEmptyTable) {
  AssignmentFunction f(ConsistentHashRing(3, 128, 4), 0);
  f.table().set(1, 0);
  f.install(f.materialize_hash(30));
  EXPECT_EQ(f.table().size(), 0u);
}

TEST(AssignmentDelta, FindsChangedKeys) {
  const std::vector<InstanceId> before = {0, 1, 2, 0};
  const std::vector<InstanceId> after = {0, 2, 2, 1};
  const auto delta = assignment_delta(before, after);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0], 1u);
  EXPECT_EQ(delta[1], 3u);
}

TEST(AssignmentDelta, EmptyWhenIdentical) {
  const std::vector<InstanceId> a = {0, 1};
  EXPECT_TRUE(assignment_delta(a, a).empty());
}

}  // namespace
}  // namespace skewless
