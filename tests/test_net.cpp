// The socket engine's building blocks, bottom-up: frame headers (magic/
// version/type validation), framed channels over real socketpairs, every
// payload codec, the slab boundary-summary wire format, and finally the
// forked multi-process engine end to end. Everything that parses peer
// bytes must REJECT bad input — error returns, never aborts.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/serde.h"
#include "core/controller.h"
#include "core/planners.h"
#include "net/channel.h"
#include "net/frame.h"
#include "net/net_engine.h"
#include "net/poller.h"
#include "net/wire.h"
#include "sketch/worker_sketch_slab.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

bool tsan_enabled() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#endif
#endif
  return false;
}

// Every worker a NetEngine ever forked must be reaped by the time its
// shutdown returns — a zombie after the suite means an engine exit path
// skipped its waitpid.
class NoZombieEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
    EXPECT_TRUE(r == -1 && errno == ECHILD)
        << "unreaped child process (waitpid returned " << r << ")";
  }
};

const ::testing::Environment* const kNoZombieEnv =
    ::testing::AddGlobalTestEnvironment(new NoZombieEnvironment);

// --- frame header ---------------------------------------------------------

TEST(FrameHeader, RoundTrip) {
  ByteWriter w;
  encode_frame_header(w, FrameType::kSummary, /*epoch=*/42,
                      /*payload_size=*/1234);
  ASSERT_EQ(w.size(), kFrameHeaderBytes);
  FrameHeader header;
  std::string error;
  ASSERT_TRUE(
      decode_frame_header(w.bytes().data(), w.size(), header, error))
      << error;
  EXPECT_EQ(header.type, FrameType::kSummary);
  EXPECT_EQ(header.epoch, 42u);
  EXPECT_EQ(header.payload_size, 1234u);
}

TEST(FrameHeader, EveryTypeRoundTrips) {
  for (std::uint8_t t = kMinFrameType; t <= kMaxFrameType; ++t) {
    ByteWriter w;
    encode_frame_header(w, static_cast<FrameType>(t), t, 0);
    FrameHeader header;
    std::string error;
    ASSERT_TRUE(
        decode_frame_header(w.bytes().data(), w.size(), header, error))
        << "type " << int(t) << ": " << error;
    EXPECT_EQ(static_cast<std::uint8_t>(header.type), t);
    EXPECT_STRNE(frame_type_name(header.type), "");
  }
}

TEST(FrameHeader, RejectsBadMagic) {
  ByteWriter w;
  encode_frame_header(w, FrameType::kBatch, 0, 0);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes[0] ^= 0xff;
  FrameHeader header;
  std::string error;
  EXPECT_FALSE(decode_frame_header(bytes.data(), bytes.size(), header, error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(FrameHeader, RejectsVersionMismatch) {
  ByteWriter w;
  encode_frame_header(w, FrameType::kBatch, 0, 0);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes[4] = kWireVersion + 1;  // version byte follows the u32 magic
  FrameHeader header;
  std::string error;
  EXPECT_FALSE(decode_frame_header(bytes.data(), bytes.size(), header, error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(FrameHeader, RejectsUnknownType) {
  ByteWriter w;
  encode_frame_header(w, FrameType::kBatch, 0, 0);
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes[5] = kMaxFrameType + 1;
  FrameHeader header;
  std::string error;
  EXPECT_FALSE(decode_frame_header(bytes.data(), bytes.size(), header, error));
  EXPECT_NE(error.find("type"), std::string::npos) << error;
  bytes[5] = 0;
  EXPECT_FALSE(decode_frame_header(bytes.data(), bytes.size(), header, error));
}

TEST(FrameHeader, RejectsOversizedPayload) {
  ByteWriter w;
  encode_frame_header(w, FrameType::kBatch, 0, kMaxFramePayload + 1);
  FrameHeader header;
  std::string error;
  EXPECT_FALSE(
      decode_frame_header(w.bytes().data(), w.size(), header, error));
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(FrameHeader, RejectsTruncation) {
  ByteWriter w;
  encode_frame_header(w, FrameType::kBatch, 0, 0);
  FrameHeader header;
  std::string error;
  for (std::size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_FALSE(decode_frame_header(w.bytes().data(), n, header, error))
        << "accepted a " << n << "-byte header";
  }
}

// --- FrameChannel over a real socketpair ----------------------------------

TEST(FrameChannel, SendRecvOverSocketPair) {
  int fds[2];
  std::string error;
  ASSERT_TRUE(make_socket_pair(fds, error)) << error;
  FrameChannel a(fds[0]);
  FrameChannel b(fds[1]);

  ByteWriter payload;
  payload.u64(0x1234);
  payload.str("frame me");
  ASSERT_TRUE(a.send(FrameType::kSeal, /*epoch=*/7, payload))
      << a.last_error();

  FrameHeader header;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(b.recv(header, got)) << b.last_error();
  EXPECT_EQ(header.type, FrameType::kSeal);
  EXPECT_EQ(header.epoch, 7u);
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(0, std::memcmp(got.data(), payload.bytes().data(), got.size()));
  EXPECT_EQ(a.bytes_sent(), kFrameHeaderBytes + payload.size());
  EXPECT_EQ(b.bytes_received(), a.bytes_sent());
}

TEST(FrameChannel, EmptyPayloadFrame) {
  int fds[2];
  std::string error;
  ASSERT_TRUE(make_socket_pair(fds, error)) << error;
  FrameChannel a(fds[0]);
  FrameChannel b(fds[1]);
  ASSERT_TRUE(a.send(FrameType::kStop, 0, nullptr, 0)) << a.last_error();
  FrameHeader header;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(b.recv(header, got)) << b.last_error();
  EXPECT_EQ(header.type, FrameType::kStop);
  EXPECT_TRUE(got.empty());
}

// A payload bigger than the kernel socket buffer: the sender must loop
// over partial writes while the receiver drains — exactly what a
// boundary summary does on a small SO_SNDBUF.
TEST(FrameChannel, LargePayloadCrossesSocketBufferBoundary) {
  int fds[2];
  std::string error;
  ASSERT_TRUE(make_socket_pair(fds, error)) << error;
  FrameChannel a(fds[0]);
  FrameChannel b(fds[1]);

  std::vector<std::uint8_t> big(4u << 20);  // 4 MiB >> default SO_SNDBUF
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  std::thread sender([&] {
    ASSERT_TRUE(a.send(FrameType::kSummary, 3, big.data(), big.size()))
        << a.last_error();
  });
  FrameHeader header;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(b.recv(header, got)) << b.last_error();
  sender.join();
  EXPECT_EQ(header.type, FrameType::kSummary);
  ASSERT_EQ(got.size(), big.size());
  EXPECT_EQ(0, std::memcmp(got.data(), big.data(), big.size()));
}

TEST(FrameChannel, RecvRejectsCorruptHeaderWithoutAborting) {
  int fds[2];
  std::string error;
  ASSERT_TRUE(make_socket_pair(fds, error)) << error;
  FrameChannel a(fds[0]);
  FrameChannel b(fds[1]);
  // Raw garbage bytes shaped like a header-sized chunk.
  std::vector<std::uint8_t> junk(kFrameHeaderBytes, 0xEE);
  ASSERT_TRUE(a.send(FrameType::kHello, 0, junk.data(), 0));  // header only
  // Overwrite with junk via a second raw frame is awkward through the
  // API; instead send a valid frame then corrupt expectations: write
  // junk directly through the fd.
  FrameHeader header;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(b.recv(header, got));
  ::ssize_t n = ::write(a.fd(), junk.data(), junk.size());
  ASSERT_EQ(n, static_cast<::ssize_t>(junk.size()));
  EXPECT_FALSE(b.recv(header, got));
  EXPECT_FALSE(b.last_error().empty());
}

TEST(FrameChannel, RecvReportsEof) {
  int fds[2];
  std::string error;
  ASSERT_TRUE(make_socket_pair(fds, error)) << error;
  FrameChannel b(fds[1]);
  {
    FrameChannel a(fds[0]);
  }  // destructor closes the peer
  FrameHeader header;
  std::vector<std::uint8_t> got;
  EXPECT_FALSE(b.recv(header, got));
  EXPECT_FALSE(b.last_error().empty());
}

TEST(Poller, ReportsReadableChannels) {
  int fds_a[2];
  int fds_b[2];
  std::string error;
  ASSERT_TRUE(make_socket_pair(fds_a, error)) << error;
  ASSERT_TRUE(make_socket_pair(fds_b, error)) << error;
  FrameChannel a0(fds_a[0]), a1(fds_a[1]);
  FrameChannel b0(fds_b[0]), b1(fds_b[1]);

  Poller poller;
  poller.add(a1.fd(), /*token=*/10);
  poller.add(b1.fd(), /*token=*/20);
  std::vector<int> ready;
  ASSERT_TRUE(poller.wait(0, ready));
  EXPECT_TRUE(ready.empty());

  ASSERT_TRUE(b0.send(FrameType::kSeal, 0, nullptr, 0));
  ASSERT_TRUE(poller.wait(1000, ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 20);

  ASSERT_TRUE(a0.send(FrameType::kSeal, 0, nullptr, 0));
  ASSERT_TRUE(poller.wait(1000, ready));
  ASSERT_EQ(ready.size(), 2u);  // registration order
  EXPECT_EQ(ready[0], 10);
  EXPECT_EQ(ready[1], 20);
}

// --- payload codecs -------------------------------------------------------

TEST(WirePayloads, TupleBatchRoundTrip) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) {
    Tuple t;
    t.key = static_cast<KeyId>(i * 7919);
    t.value = i - 50;
    t.emit_micros = i * 1000;
    t.stream = static_cast<std::uint32_t>(i % 3);
    tuples.push_back(t);
  }
  ByteWriter w;
  encode_tuple_batch(w, tuples);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  std::vector<Tuple> got;
  ASSERT_TRUE(decode_tuple_batch(r, got));
  EXPECT_TRUE(r.exhausted());
  ASSERT_EQ(got.size(), tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(got[i].key, tuples[i].key);
    EXPECT_EQ(got[i].value, tuples[i].value);
    EXPECT_EQ(got[i].emit_micros, tuples[i].emit_micros);
    EXPECT_EQ(got[i].stream, tuples[i].stream);
  }
}

TEST(WirePayloads, TupleBatchRejectsImpossibleCount) {
  ByteWriter w;
  w.u32(1'000'000);  // count with no tuples behind it
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  std::vector<Tuple> got;
  EXPECT_FALSE(decode_tuple_batch(r, got));
}

TEST(WirePayloads, HelloSealExpireAckFinRoundTrip) {
  {
    ByteWriter w;
    encode_hello(w, HelloPayload{3, 8});
    ByteReader r(w.bytes(), ByteReader::Untrusted{});
    HelloPayload got;
    ASSERT_TRUE(decode_hello(r, got));
    EXPECT_EQ(got.worker_id, 3u);
    EXPECT_EQ(got.num_workers, 8u);
  }
  {
    ByteWriter w;
    encode_seal(w, SealPayload{997});
    ByteReader r(w.bytes(), ByteReader::Untrusted{});
    SealPayload got;
    ASSERT_TRUE(decode_seal(r, got));
    EXPECT_EQ(got.batches, 997u);
  }
  {
    ByteWriter w;
    encode_expire(w, Micros{123456789});
    ByteReader r(w.bytes(), ByteReader::Untrusted{});
    Micros got = 0;
    ASSERT_TRUE(decode_expire(r, got));
    EXPECT_EQ(got, 123456789);
  }
  {
    ByteWriter w;
    encode_ack(w, AckPayload{0xabcdef});
    ByteReader r(w.bytes(), ByteReader::Untrusted{});
    AckPayload got;
    ASSERT_TRUE(decode_ack(r, got));
    EXPECT_EQ(got.seq, 0xabcdefu);
  }
  {
    ByteWriter w;
    encode_fin(w, FinPayload{111, 222, 333, 444});
    ByteReader r(w.bytes(), ByteReader::Untrusted{});
    FinPayload got;
    ASSERT_TRUE(decode_fin(r, got));
    EXPECT_EQ(got.state_checksum, 111u);
    EXPECT_EQ(got.state_entries, 222u);
    EXPECT_EQ(got.processed, 333u);
    EXPECT_EQ(got.outputs, 444u);
  }
}

TEST(WirePayloads, KeyListRoundTrip) {
  const std::vector<KeyId> keys = {0, 1, 0xffffffffffffffffULL, 42, 42};
  ByteWriter w;
  encode_key_list(w, keys);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  std::vector<KeyId> got;
  ASSERT_TRUE(decode_key_list(r, got));
  EXPECT_EQ(got, keys);
  EXPECT_TRUE(r.exhausted());
}

TEST(WirePayloads, KeyStatesRoundTripOpaqueBlobs) {
  std::vector<WireKeyState> states;
  for (int i = 0; i < 5; ++i) {
    WireKeyState s;
    s.key = static_cast<KeyId>(1000 + i);
    s.blob.assign(static_cast<std::size_t>(i * 17), std::uint8_t(i));
    states.push_back(std::move(s));
  }
  ByteWriter w;
  encode_key_states(w, states);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  std::vector<WireKeyState> got;
  ASSERT_TRUE(decode_key_states(r, got));
  ASSERT_EQ(got.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(got[i].key, states[i].key);
    EXPECT_EQ(got[i].blob, states[i].blob);
  }
}

TEST(WirePayloads, PlanRoundTrip) {
  PlanPayload plan;
  plan.seq = 77;
  for (int i = 0; i < 12; ++i) {
    KeyMove m;
    m.key = static_cast<KeyId>(i * 31);
    m.from = i % 4;
    m.to = (i + 1) % 4;
    m.state_bytes = i * 128.0;
    plan.moves.push_back(m);
  }
  ByteWriter w;
  encode_plan(w, plan);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  PlanPayload got;
  ASSERT_TRUE(decode_plan(r, got));
  EXPECT_EQ(got.seq, plan.seq);
  ASSERT_EQ(got.moves.size(), plan.moves.size());
  for (std::size_t i = 0; i < plan.moves.size(); ++i) {
    EXPECT_EQ(got.moves[i].key, plan.moves[i].key);
    EXPECT_EQ(got.moves[i].from, plan.moves[i].from);
    EXPECT_EQ(got.moves[i].to, plan.moves[i].to);
    EXPECT_EQ(got.moves[i].state_bytes, plan.moves[i].state_bytes);
  }
}

// --- boundary summary (slab) wire format ----------------------------------

WorkerSketchSlab make_filled_slab(const SketchStatsConfig& cfg,
                                  std::uint64_t salt) {
  WorkerSketchSlab slab(cfg);
  std::unordered_map<KeyId, WorkerSketchSlab::KeyAgg> batch;
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto& agg = batch[i * 2654435761u + salt];
    agg.cost = static_cast<double>(i % 97) + 0.5;
    agg.state_bytes = static_cast<double>(i % 13) * 8.0;
    agg.frequency = 1 + i % 7;
  }
  slab.add_batch(batch);
  auto& sc = slab.scalars();
  sc.processed = 500;
  sc.latency_sum_us = 123.75;
  sc.latency_samples = 500;
  slab.set_epoch(9);
  return slab;
}

TEST(SlabWire, SerializeDeserializeReserialize) {
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 64;
  const WorkerSketchSlab slab = make_filled_slab(cfg, 17);

  ByteWriter w1;
  slab.serialize(w1);
  WorkerSketchSlab restored(cfg);
  ByteReader r(w1.bytes(), ByteReader::Untrusted{});
  ASSERT_TRUE(restored.deserialize_from(r));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.epoch(), slab.epoch());
  EXPECT_EQ(restored.scalars().processed, slab.scalars().processed);

  // The decisive check: the round-tripped slab re-serializes to the
  // SAME bytes — the encoding is canonical, nothing is lost.
  ByteWriter w2;
  restored.serialize(w2);
  ASSERT_EQ(w1.size(), w2.size());
  EXPECT_EQ(0,
            std::memcmp(w1.bytes().data(), w2.bytes().data(), w1.size()));
}

TEST(SlabWire, RejectsGeometryMismatch) {
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 64;
  const WorkerSketchSlab slab = make_filled_slab(cfg, 17);
  ByteWriter w;
  slab.serialize(w);

  SketchStatsConfig other = cfg;
  other.epsilon = cfg.epsilon * 4;  // different Count-Min width
  WorkerSketchSlab wrong(other);
  ByteReader r(w.bytes(), ByteReader::Untrusted{});
  EXPECT_FALSE(wrong.deserialize_from(r));
  EXPECT_FALSE(r.ok());
}

TEST(SlabWire, RejectsTruncation) {
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 64;
  const WorkerSketchSlab slab = make_filled_slab(cfg, 17);
  ByteWriter w;
  slab.serialize(w);
  // Chop the tail off at several depths; every prefix must be rejected
  // without aborting.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{33}, w.size() / 2,
        w.size() - 1}) {
    WorkerSketchSlab target(cfg);
    ByteReader r(w.bytes().data(), keep, ByteReader::Untrusted{});
    EXPECT_FALSE(target.deserialize_from(r)) << "prefix " << keep;
  }
}

// --- the engine end to end ------------------------------------------------

std::unique_ptr<Controller> test_controller(InstanceId workers,
                                            std::size_t num_keys) {
  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.08;
  ccfg.stats_mode = StatsMode::kSketch;
  ccfg.sketch.heavy_capacity = 128;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(workers), 0),
      std::make_unique<MixedPlanner>(), ccfg, num_keys);
}

TEST(NetEngine, RunsIntervalsAndShutsDownCleanly) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 2'000;
  opts.skew = 1.1;
  opts.tuples_per_interval = 10'000;
  opts.seed = 5;
  ZipfFluctuatingSource source(opts);

  NetConfig ncfg;
  ncfg.batch_size = 64;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   test_controller(3, source.num_keys()));
  const auto reports = engine.run(source, 3, /*seed=*/11);
  ASSERT_TRUE(engine.ok()) << engine.error();
  ASSERT_EQ(reports.size(), 3u);
  std::uint64_t processed = 0;
  for (const auto& r : reports) {
    processed += r.processed;
    EXPECT_GT(r.data_wire_bytes, 0u);
    EXPECT_GT(r.ctrl_wire_bytes, 0u);
    EXPECT_GT(r.max_theta, 0.0);
  }
  EXPECT_EQ(processed, 30'000u);
  EXPECT_GT(engine.controller()->rebalance_count(), 0u);

  engine.shutdown();
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_GT(engine.state_checksum(), 0u);
  EXPECT_GT(engine.total_state_entries(), 0u);
  EXPECT_EQ(engine.total_processed(), 30'000u);
}

TEST(NetEngine, MigrationMovesStateBetweenProcesses) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  // A heavily skewed source forces the planner to move hot keys between
  // worker PROCESSES — serialized state crossing real sockets.
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 1'000;
  opts.skew = 1.4;
  opts.tuples_per_interval = 20'000;
  opts.fluctuation = 0.8;
  opts.seed = 23;
  ZipfFluctuatingSource source(opts);

  NetConfig ncfg;
  ncfg.batch_size = 64;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   test_controller(4, source.num_keys()));
  const auto reports = engine.run(source, 4, /*seed=*/3);
  ASSERT_TRUE(engine.ok()) << engine.error();
  bool migrated = false;
  Bytes wire_bytes = 0;
  for (const auto& r : reports) {
    migrated |= r.migrated;
    wire_bytes += r.migration_wire_bytes;
  }
  EXPECT_TRUE(migrated);
  EXPECT_GT(wire_bytes, 0.0);  // serialized blobs actually crossed a socket
  engine.shutdown();
  ASSERT_TRUE(engine.ok()) << engine.error();
}

TEST(NetEngine, BroadcastPlanAcksMidInterval) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  NetConfig ncfg;
  ncfg.batch_size = 32;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   test_controller(2, 500));

  // Open an interval by ingesting tuples WITHOUT closing it, then probe
  // the control channel while data may still be queued.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 5'000; ++i) {
    Tuple t;
    t.key = static_cast<KeyId>(i % 500);
    t.value = 1;
    tuples.push_back(t);
  }
  auto report = engine.ingest(tuples);
  ASSERT_TRUE(engine.ok()) << engine.error();

  RebalancePlan plan;
  plan.assignment.assign(2, 0);
  KeyMove move;
  move.key = 7;
  move.from = 0;
  move.to = 1;
  plan.moves.push_back(move);
  const double rtt_ms = engine.broadcast_plan(plan, /*seq=*/99);
  EXPECT_GE(rtt_ms, 0.0) << engine.error();

  engine.finish_interval(report);
  ASSERT_TRUE(engine.ok()) << engine.error();
  EXPECT_EQ(report.processed, 5'000u);
  engine.shutdown();
  ASSERT_TRUE(engine.ok()) << engine.error();
}

TEST(NetEngine, ExpiryFramesPruneWindows) {
  if (tsan_enabled()) GTEST_SKIP() << "fork-based engine under TSan";
  NetConfig ncfg;
  ncfg.batch_size = 32;
  ncfg.expire_lag_intervals = 1;
  NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                   test_controller(2, 200));
  for (int interval = 0; interval < 3; ++interval) {
    std::vector<Tuple> tuples;
    for (int i = 0; i < 1'000; ++i) {
      Tuple t;
      t.key = static_cast<KeyId>(i % 200);
      t.value = 1;
      tuples.push_back(t);
    }
    engine.run_interval(tuples);
    ASSERT_TRUE(engine.ok()) << engine.error();
  }
  engine.shutdown();
  ASSERT_TRUE(engine.ok()) << engine.error();
  // WordCount state survives expiry (counts are not windowed), so the
  // assertion is just that expiry frames did not wedge the protocol.
  EXPECT_EQ(engine.total_processed(), 3'000u);
}

}  // namespace
}  // namespace skewless
