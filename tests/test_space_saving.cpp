#include "sketch/space_saving.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace skewless {
namespace {

TEST(SpaceSaving, ExactWhenDistinctKeysFitCapacity) {
  SpaceSaving ss(16);
  Xoshiro256 rng(3);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 2000; ++i) {
    const KeyId key = rng.next_below(10);
    const double w = 1.0 + static_cast<double>(rng.next_below(5));
    ss.add(key, w);
    truth[key] += w;
  }
  EXPECT_EQ(ss.size(), truth.size());
  for (const auto& [key, count] : truth) {
    const auto* e = ss.find(key);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->count, count);
    EXPECT_DOUBLE_EQ(e->error, 0.0);
  }
}

TEST(SpaceSaving, CapacityIsNeverExceeded) {
  SpaceSaving ss(8);
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) ss.add(rng.next_below(1000));
  EXPECT_EQ(ss.size(), 8u);
  EXPECT_DOUBLE_EQ(ss.total_weight(), 10'000.0);
}

TEST(SpaceSaving, CountOverestimatesAndErrorBoundsSlack) {
  SpaceSaving ss(32);
  const ZipfDistribution zipf(2000, 1.1, true, 17);
  Xoshiro256 rng(4);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 50'000; ++i) {
    const KeyId key = zipf.sample(rng);
    ss.add(key);
    truth[key] += 1.0;
  }
  for (const auto& e : ss.entries_by_count()) {
    const double true_count = truth.count(e.key) ? truth.at(e.key) : 0.0;
    EXPECT_GE(e.count, true_count - 1e-9);          // overestimate
    EXPECT_LE(e.count - e.error, true_count + 1e-9);  // slack bounded
    // Classic bound: every tracked count's error ≤ W / m.
    EXPECT_LE(e.error, ss.total_weight() / static_cast<double>(ss.capacity()));
  }
}

TEST(SpaceSaving, GuaranteedHeavyHittersOnZipfStream) {
  // Space-Saving guarantee: every key with true weight > W/m is tracked.
  const std::size_t m = 64;
  SpaceSaving ss(m);
  const ZipfDistribution zipf(10'000, 1.2, true, 23);
  Xoshiro256 rng(8);
  std::unordered_map<KeyId, double> truth;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const KeyId key = zipf.sample(rng);
    ss.add(key);
    truth[key] += 1.0;
  }
  const double bound = static_cast<double>(n) / static_cast<double>(m);
  for (const auto& [key, count] : truth) {
    if (count > bound) {
      EXPECT_NE(ss.find(key), nullptr)
          << "heavy key " << key << " (count " << count << ") not tracked";
    }
  }
  // Every guaranteed() entry truly carries at least the threshold.
  const double threshold = bound / 2.0;
  for (const auto& e : ss.guaranteed(threshold)) {
    ASSERT_TRUE(truth.count(e.key));
    EXPECT_GE(truth.at(e.key), threshold - 1e-9);
  }
}

TEST(SpaceSaving, EntriesSortedDeterministically) {
  SpaceSaving ss(8);
  for (KeyId k = 0; k < 8; ++k) ss.add(k, 1.0);  // all ties
  const auto entries = ss.entries_by_count();
  ASSERT_EQ(entries.size(), 8u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].key, static_cast<KeyId>(i));  // key-ascending ties
  }
}

TEST(SpaceSaving, DeterministicAcrossInstances) {
  SpaceSaving a(16), b(16);
  const ZipfDistribution zipf(500, 0.9, true, 31);
  Xoshiro256 rng_a(12), rng_b(12);
  for (int i = 0; i < 20'000; ++i) {
    a.add(zipf.sample(rng_a));
    b.add(zipf.sample(rng_b));
  }
  const auto ea = a.entries_by_count();
  const auto eb = b.entries_by_count();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].key, eb[i].key);
    EXPECT_EQ(ea[i].count, eb[i].count);
    EXPECT_EQ(ea[i].error, eb[i].error);
  }
}

TEST(SpaceSavingMerge, DisjointSetsWithinCapacityAreExactUnion) {
  SpaceSaving a(16), b(16);
  for (KeyId k = 0; k < 6; ++k) a.add(k, static_cast<double>(k + 1));
  for (KeyId k = 100; k < 106; ++k) b.add(k, static_cast<double>(k - 90));
  a.merge(b);
  EXPECT_EQ(a.size(), 12u);
  EXPECT_DOUBLE_EQ(a.total_weight(), 21.0 + 75.0);
  for (KeyId k = 0; k < 6; ++k) {
    const auto* e = a.find(k);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->count, static_cast<double>(k + 1));
    EXPECT_DOUBLE_EQ(e->error, 0.0);
  }
  for (KeyId k = 100; k < 106; ++k) {
    const auto* e = a.find(k);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->count, static_cast<double>(k - 90));
    EXPECT_DOUBLE_EQ(e->error, 0.0);
  }
}

TEST(SpaceSavingMerge, SharedKeysSumCountsAndErrors) {
  // Overfill both trackers so entries carry non-zero errors, then merge.
  SpaceSaving a(4), b(4);
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.next_below(40));
    b.add(rng.next_below(40));
  }
  std::unordered_map<KeyId, SpaceSaving::Entry> before_a, before_b;
  for (const auto& e : a.entries_by_count()) before_a.emplace(e.key, e);
  for (const auto& e : b.entries_by_count()) before_b.emplace(e.key, e);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 10'000.0);
  for (const auto& e : a.entries_by_count()) {
    double want_count = 0.0, want_error = 0.0;
    if (const auto it = before_a.find(e.key); it != before_a.end()) {
      want_count += it->second.count;
      want_error += it->second.error;
    }
    if (const auto it = before_b.find(e.key); it != before_b.end()) {
      want_count += it->second.count;
      want_error += it->second.error;
    }
    EXPECT_DOUBLE_EQ(e.count, want_count);
    EXPECT_DOUBLE_EQ(e.error, want_error);
  }
}

TEST(SpaceSavingMerge, CapacityOverflowDropsNothing) {
  // The union deliberately exceeds capacity instead of truncating:
  // dropping an intermediate entry could lose a key whose mass is still
  // arriving from later workers in a chained merge.
  SpaceSaving a(4), b(4);
  a.add(1, 50.0);
  a.add(2, 40.0);
  a.add(3, 5.0);
  a.add(4, 4.0);
  b.add(5, 30.0);
  b.add(6, 20.0);
  b.add(7, 3.0);
  b.add(8, 2.0);
  a.merge(b);
  EXPECT_EQ(a.size(), 8u);  // sum of source sizes, nothing dropped
  EXPECT_DOUBLE_EQ(a.total_weight(), 154.0);
  for (const KeyId k : {1, 2, 3, 4, 5, 6, 7, 8}) {
    ASSERT_NE(a.find(k), nullptr);
  }
  // Every entry keeps its exact pre-merge count (sum invariant holds).
  EXPECT_DOUBLE_EQ(a.find(1)->count, 50.0);
  EXPECT_DOUBLE_EQ(a.find(8)->count, 2.0);
  const auto sorted = a.entries_by_count();
  double sum = 0.0;
  for (const auto& e : sorted) sum += e.count;
  EXPECT_DOUBLE_EQ(sum, a.total_weight());
}

TEST(SpaceSavingMerge, OverflowUnionKeepsGuaranteedHeavyHitters) {
  // Shared-nothing aggregation: one Zipf stream partitioned across 4
  // "workers" by key hash, per-worker trackers unioned at the boundary.
  // Every key with true weight > W/m must survive the union, exactly as
  // it would in a single tracker over the unpartitioned stream.
  const std::size_t m = 48;
  const int n = 80'000;
  const ZipfDistribution zipf(20'000, 1.2, true, 41);
  Xoshiro256 rng(6);
  std::vector<SpaceSaving> workers(4, SpaceSaving(m));
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < n; ++i) {
    const KeyId key = zipf.sample(rng);
    workers[key % 4].add(key);
    truth[key] += 1.0;
  }
  SpaceSaving merged(m);
  for (const auto& w : workers) merged.merge(w);
  EXPECT_LE(merged.size(), 4 * m);  // bounded by the sum of source sizes
  EXPECT_DOUBLE_EQ(merged.total_weight(), static_cast<double>(n));
  const double bound = static_cast<double>(n) / static_cast<double>(m);
  for (const auto& [key, count] : truth) {
    if (count > bound) {
      const auto* e = merged.find(key);
      ASSERT_NE(e, nullptr)
          << "heavy key " << key << " (count " << count << ") lost in union";
      EXPECT_GE(e->count, count - 1e-9);                // still an overestimate
      EXPECT_LE(e->count - e->error, count + 1e-9);     // slack still bounded
    }
  }
}

TEST(SpaceSavingMerge, TiedEntriesStayDeterministicallyOrdered) {
  SpaceSaving a(2), b(2);
  a.add(10, 5.0);
  a.add(30, 5.0);
  b.add(20, 5.0);
  b.add(40, 5.0);
  a.merge(b);  // four entries, all count 5
  const auto entries = a.entries_by_count();
  ASSERT_EQ(entries.size(), 4u);
  // Consumers that re-bound the union (e.g. promotion) see ties broken
  // by key ascending, so the outcome never depends on hash order.
  EXPECT_EQ(entries[0].key, 10u);
  EXPECT_EQ(entries[1].key, 20u);
  EXPECT_EQ(entries[2].key, 30u);
  EXPECT_EQ(entries[3].key, 40u);
}

TEST(SpaceSavingMerge, MergeEmptyAndIntoEmptyAreNoOpsOnContent) {
  SpaceSaving a(8), empty(8);
  a.add(1, 3.0);
  a.add(2, 7.0);
  a.merge(empty);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.total_weight(), 10.0);
  SpaceSaving fresh(8);
  fresh.merge(a);
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_DOUBLE_EQ(fresh.find(2)->count, 7.0);
  EXPECT_DOUBLE_EQ(fresh.total_weight(), 10.0);
}

TEST(SpaceSavingMerge, EvictionStillWorksOnOverCapacityUnion) {
  // The lazy heap must be rebuilt by merge; a subsequent add that forces
  // an eviction has to pick the true minimum of the merged entries.
  SpaceSaving a(2), b(2);
  a.add(1, 50.0);
  a.add(2, 10.0);
  b.add(3, 40.0);
  b.add(4, 30.0);
  a.merge(b);  // over capacity: {1:50, 3:40, 4:30, 2:10}
  ASSERT_EQ(a.size(), 4u);
  a.add(9, 1.0);  // at/over capacity -> evicts the minimum (key 2, 10)
  const auto* e = a.find(9);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->count, 11.0);  // inherited 10 + weight 1
  EXPECT_DOUBLE_EQ(e->error, 10.0);
  EXPECT_EQ(a.find(2), nullptr);
  EXPECT_NE(a.find(1), nullptr);
  EXPECT_NE(a.find(3), nullptr);
  EXPECT_NE(a.find(4), nullptr);
}

TEST(MisraGries, ExactWhenDistinctKeysFitCapacity) {
  MisraGries mg(16);
  Xoshiro256 rng(3);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 2000; ++i) {
    const KeyId key = rng.next_below(10);
    const double w = 1.0 + static_cast<double>(rng.next_below(5));
    mg.add(key, w);
    truth[key] += w;
  }
  EXPECT_EQ(mg.size(), truth.size());
  EXPECT_DOUBLE_EQ(mg.offset(), 0.0);  // never pruned
  for (const auto& [key, count] : truth) {
    const auto* e = mg.find(key);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->count, count);
    EXPECT_DOUBLE_EQ(e->error, 0.0);
  }
}

TEST(MisraGries, InvariantsOnZipfStreamWithPruning) {
  const std::size_t m = 32;
  MisraGries mg(m);
  const ZipfDistribution zipf(2000, 1.1, true, 17);
  Xoshiro256 rng(4);
  std::unordered_map<KeyId, double> truth;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const KeyId key = zipf.sample(rng);
    mg.add(key);
    truth[key] += 1.0;
  }
  EXPECT_LE(mg.size(), 2 * m);  // prune keeps the map bounded
  EXPECT_GT(mg.offset(), 0.0);  // 2000 distinct keys forced pruning
  EXPECT_DOUBLE_EQ(mg.total_weight(), static_cast<double>(n));
  for (const auto& e : mg.entries_by_count()) {
    const double true_count = truth.count(e.key) ? truth.at(e.key) : 0.0;
    EXPECT_GE(e.count, true_count - 1e-9);            // overestimate
    EXPECT_LE(e.count - e.error, true_count + 1e-9);  // slack bounded
  }
  // Every untracked key's true weight is bounded by the offset.
  for (const auto& [key, count] : truth) {
    if (mg.find(key) == nullptr) {
      EXPECT_LE(count, mg.offset() + 1e-9)
          << "untracked key " << key << " heavier than the offset";
    }
  }
}

TEST(MisraGries, HeavyHittersSurvivePruning) {
  // The nomination property the worker slabs rely on: keys heavy enough
  // to deserve promotion must still be tracked after arbitrary pruning.
  const std::size_t m = 64;
  MisraGries mg(m);
  const ZipfDistribution zipf(10'000, 1.2, true, 23);
  Xoshiro256 rng(8);
  std::unordered_map<KeyId, double> truth;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const KeyId key = zipf.sample(rng);
    mg.add(key);
    truth[key] += 1.0;
  }
  // offset stays O(W/m): every prune cutoff ≤ (sum of counts)/(m+1) and
  // counts inflate by at most one offset each — assert the classic
  // small-constant bound.
  const double bound = 4.0 * static_cast<double>(n) / static_cast<double>(m);
  EXPECT_LE(mg.offset(), bound);
  for (const auto& [key, count] : truth) {
    if (count > bound) {
      EXPECT_NE(mg.find(key), nullptr)
          << "heavy key " << key << " (count " << count << ") lost to prune";
    }
  }
}

TEST(MisraGries, DeterministicAcrossInstances) {
  MisraGries a(16), b(16);
  const ZipfDistribution zipf(500, 0.9, true, 31);
  Xoshiro256 rng_a(12), rng_b(12);
  for (int i = 0; i < 20'000; ++i) {
    a.add(zipf.sample(rng_a));
    b.add(zipf.sample(rng_b));
  }
  const auto ea = a.entries_by_count();
  const auto eb = b.entries_by_count();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].key, eb[i].key);
    EXPECT_EQ(ea[i].count, eb[i].count);
    EXPECT_EQ(ea[i].error, eb[i].error);
  }
  EXPECT_DOUBLE_EQ(a.offset(), b.offset());
}

TEST(MisraGries, SummaryMergesIntoSpaceSavingUnion) {
  // The slab -> window hand-off: MisraGries worker summaries union into
  // one SpaceSaving via the entries overload, weights and slack intact.
  MisraGries w0(8), w1(8);
  w0.add(1, 10.0);
  w0.add(2, 5.0);
  w1.add(1, 7.0);
  w1.add(3, 2.0);
  SpaceSaving merged(8);
  merged.merge(w0.entries_by_count(), w0.total_weight());
  merged.merge(w1.entries_by_count(), w1.total_weight());
  EXPECT_DOUBLE_EQ(merged.total_weight(), 24.0);
  ASSERT_NE(merged.find(1), nullptr);
  EXPECT_DOUBLE_EQ(merged.find(1)->count, 17.0);
  EXPECT_DOUBLE_EQ(merged.find(2)->count, 5.0);
  EXPECT_DOUBLE_EQ(merged.find(3)->count, 2.0);
}

TEST(MisraGries, ClearResets) {
  MisraGries mg(4);
  for (KeyId k = 0; k < 20; ++k) mg.add(k, 1.0 + static_cast<double>(k));
  mg.clear();
  EXPECT_EQ(mg.size(), 0u);
  EXPECT_DOUBLE_EQ(mg.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(mg.offset(), 0.0);
  EXPECT_EQ(mg.find(1), nullptr);
}

TEST(MisraGriesDeath, ZeroCapacityRejected) {
  EXPECT_DEATH(MisraGries(0), "precondition");
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving ss(4);
  ss.add(1, 5.0);
  ss.clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total_weight(), 0.0);
  EXPECT_EQ(ss.find(1), nullptr);
}

TEST(SpaceSavingDeath, ZeroCapacityRejected) {
  EXPECT_DEATH(SpaceSaving(0), "precondition");
}

}  // namespace
}  // namespace skewless
