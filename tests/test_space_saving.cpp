#include "sketch/space_saving.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace skewless {
namespace {

TEST(SpaceSaving, ExactWhenDistinctKeysFitCapacity) {
  SpaceSaving ss(16);
  Xoshiro256 rng(3);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 2000; ++i) {
    const KeyId key = rng.next_below(10);
    const double w = 1.0 + static_cast<double>(rng.next_below(5));
    ss.add(key, w);
    truth[key] += w;
  }
  EXPECT_EQ(ss.size(), truth.size());
  for (const auto& [key, count] : truth) {
    const auto* e = ss.find(key);
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->count, count);
    EXPECT_DOUBLE_EQ(e->error, 0.0);
  }
}

TEST(SpaceSaving, CapacityIsNeverExceeded) {
  SpaceSaving ss(8);
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) ss.add(rng.next_below(1000));
  EXPECT_EQ(ss.size(), 8u);
  EXPECT_DOUBLE_EQ(ss.total_weight(), 10'000.0);
}

TEST(SpaceSaving, CountOverestimatesAndErrorBoundsSlack) {
  SpaceSaving ss(32);
  const ZipfDistribution zipf(2000, 1.1, true, 17);
  Xoshiro256 rng(4);
  std::unordered_map<KeyId, double> truth;
  for (int i = 0; i < 50'000; ++i) {
    const KeyId key = zipf.sample(rng);
    ss.add(key);
    truth[key] += 1.0;
  }
  for (const auto& e : ss.entries_by_count()) {
    const double true_count = truth.count(e.key) ? truth.at(e.key) : 0.0;
    EXPECT_GE(e.count, true_count - 1e-9);          // overestimate
    EXPECT_LE(e.count - e.error, true_count + 1e-9);  // slack bounded
    // Classic bound: every tracked count's error ≤ W / m.
    EXPECT_LE(e.error, ss.total_weight() / static_cast<double>(ss.capacity()));
  }
}

TEST(SpaceSaving, GuaranteedHeavyHittersOnZipfStream) {
  // Space-Saving guarantee: every key with true weight > W/m is tracked.
  const std::size_t m = 64;
  SpaceSaving ss(m);
  const ZipfDistribution zipf(10'000, 1.2, true, 23);
  Xoshiro256 rng(8);
  std::unordered_map<KeyId, double> truth;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const KeyId key = zipf.sample(rng);
    ss.add(key);
    truth[key] += 1.0;
  }
  const double bound = static_cast<double>(n) / static_cast<double>(m);
  for (const auto& [key, count] : truth) {
    if (count > bound) {
      EXPECT_NE(ss.find(key), nullptr)
          << "heavy key " << key << " (count " << count << ") not tracked";
    }
  }
  // Every guaranteed() entry truly carries at least the threshold.
  const double threshold = bound / 2.0;
  for (const auto& e : ss.guaranteed(threshold)) {
    ASSERT_TRUE(truth.count(e.key));
    EXPECT_GE(truth.at(e.key), threshold - 1e-9);
  }
}

TEST(SpaceSaving, EntriesSortedDeterministically) {
  SpaceSaving ss(8);
  for (KeyId k = 0; k < 8; ++k) ss.add(k, 1.0);  // all ties
  const auto entries = ss.entries_by_count();
  ASSERT_EQ(entries.size(), 8u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].key, static_cast<KeyId>(i));  // key-ascending ties
  }
}

TEST(SpaceSaving, DeterministicAcrossInstances) {
  SpaceSaving a(16), b(16);
  const ZipfDistribution zipf(500, 0.9, true, 31);
  Xoshiro256 rng_a(12), rng_b(12);
  for (int i = 0; i < 20'000; ++i) {
    a.add(zipf.sample(rng_a));
    b.add(zipf.sample(rng_b));
  }
  const auto ea = a.entries_by_count();
  const auto eb = b.entries_by_count();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].key, eb[i].key);
    EXPECT_EQ(ea[i].count, eb[i].count);
    EXPECT_EQ(ea[i].error, eb[i].error);
  }
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving ss(4);
  ss.add(1, 5.0);
  ss.clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total_weight(), 0.0);
  EXPECT_EQ(ss.find(1), nullptr);
}

TEST(SpaceSavingDeath, ZeroCapacityRejected) {
  EXPECT_DEATH(SpaceSaving(0), "precondition");
}

}  // namespace
}  // namespace skewless
