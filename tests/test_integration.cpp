// End-to-end scenario tests tying the full stack together: workload
// generator -> sim engine -> controller -> planner -> migration, checking
// the qualitative results the paper's evaluation is built on.
#include <gtest/gtest.h>

#include "baselines/readj.h"
#include "core/planners.h"
#include "engine/sim_engine.h"
#include "workload/social.h"
#include "workload/stock.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

std::unique_ptr<Controller> controller_with(PlannerPtr planner, InstanceId nd,
                                            std::size_t num_keys,
                                            double theta_max,
                                            int window = 1) {
  ControllerConfig cfg;
  cfg.planner.theta_max = theta_max;
  cfg.planner.max_table_entries = 0;
  cfg.window = window;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(nd, 128, 21), 0),
      std::move(planner), cfg, num_keys);
}

double mean_throughput(const std::vector<IntervalMetrics>& ms, int skip = 2) {
  double acc = 0.0;
  int n = 0;
  for (std::size_t i = static_cast<std::size_t>(skip); i < ms.size(); ++i) {
    acc += ms[i].throughput_tps;
    ++n;
  }
  return n ? acc / n : 0.0;
}

SimConfig default_sim(InstanceId nd) {
  SimConfig cfg;
  cfg.num_instances = nd;
  return cfg;
}

std::unique_ptr<WorkloadSource> zipf_source(double fluctuation,
                                            std::uint64_t seed = 7,
                                            std::uint64_t num_keys = 5000) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = num_keys;
  opts.skew = 0.85;
  // 1.75M tuples x 4us / 10 instances = 0.7 average utilization: near the
  // saturation point, so any imbalance above ~0.43 clips throughput.
  opts.tuples_per_interval = 1'750'000;
  opts.fluctuation = fluctuation;
  opts.seed = seed;
  return std::make_unique<ZipfFluctuatingSource>(opts);
}

TEST(Integration, MixedBeatsHashOnSkewedSaturatedWorkload) {
  const InstanceId nd = 10;
  // Small key domain: Fig. 7(b) — the fewer the keys, the more skewed the
  // hash placement, which is the regime the paper's framework targets.
  SimEngine hash_engine(default_sim(nd),
                        std::make_unique<UniformCostOperator>(4.0, 8.0),
                        zipf_source(0.2, 7, 1000), RoutingMode::kHashOnly);
  SimEngine mixed_engine(default_sim(nd),
                         std::make_unique<UniformCostOperator>(4.0, 8.0),
                         zipf_source(0.2, 7, 1000),
                         controller_with(std::make_unique<MixedPlanner>(),
                                         nd, 1000, 0.08));
  const auto hash_ms = hash_engine.run(30);
  const auto mixed_ms = mixed_engine.run(30);
  EXPECT_GT(mean_throughput(mixed_ms, 8), mean_throughput(hash_ms, 8) * 1.05);
}

TEST(Integration, IdealBoundsMixedFromAbove) {
  const InstanceId nd = 10;
  SimEngine ideal(default_sim(nd),
                  std::make_unique<UniformCostOperator>(4.0, 8.0),
                  zipf_source(1.0), RoutingMode::kShuffle);
  SimEngine mixed(default_sim(nd),
                  std::make_unique<UniformCostOperator>(4.0, 8.0),
                  zipf_source(1.0),
                  controller_with(std::make_unique<MixedPlanner>(), nd, 5000,
                                  0.08));
  const auto ideal_ms = ideal.run(30);
  const auto mixed_ms = mixed.run(30);
  EXPECT_GE(mean_throughput(ideal_ms, 8) * 1.001,
            mean_throughput(mixed_ms, 8));
  // ... but Mixed comes close (within 10%), per Fig. 13.
  EXPECT_GT(mean_throughput(mixed_ms, 8),
            mean_throughput(ideal_ms, 8) * 0.9);
}

TEST(Integration, MixedOutperformsReadjUnderHighFluctuation) {
  const InstanceId nd = 10;
  SimEngine readj(default_sim(nd),
                  std::make_unique<UniformCostOperator>(4.0, 8.0),
                  zipf_source(1.5, 9),
                  controller_with(std::make_unique<ReadjPlanner>(), nd, 5000,
                                  0.08));
  SimEngine mixed(default_sim(nd),
                  std::make_unique<UniformCostOperator>(4.0, 8.0),
                  zipf_source(1.5, 9),
                  controller_with(std::make_unique<MixedPlanner>(), nd, 5000,
                                  0.08));
  const auto readj_ms = readj.run(25);
  const auto mixed_ms = mixed.run(25);
  EXPECT_GE(mean_throughput(mixed_ms, 8),
            mean_throughput(readj_ms, 8) * 0.98);
}

TEST(Integration, StockBurstsTriggerRebalances) {
  StockSource::Options opts;
  opts.tuples_per_interval = 1'000'000;
  opts.burst_probability = 0.8;
  SimConfig cfg = default_sim(8);
  cfg.state_window = 3;
  SimEngine engine(cfg, std::make_unique<SelfJoinCostOperator>(2.0, 16.0, 0.001),
                   std::make_unique<StockSource>(opts),
                   controller_with(std::make_unique<MixedPlanner>(), 8, 1036,
                                   0.1, 3));
  int migrations = 0;
  for (int i = 0; i < 12; ++i) {
    migrations += engine.step().migrated ? 1 : 0;
  }
  EXPECT_GT(migrations, 0);
}

TEST(Integration, SocialDriftHandledWithFewMigrations) {
  SocialSource::Options opts;
  opts.num_words = 20'000;
  opts.tuples_per_interval = 1'000'000;
  opts.drift_fraction = 0.005;
  SimEngine engine(default_sim(8),
                   std::make_unique<UniformCostOperator>(4.0, 8.0),
                   std::make_unique<SocialSource>(opts),
                   controller_with(std::make_unique<MixedPlanner>(), 8,
                                   20'000, 0.15));
  int migrations = 0;
  for (int i = 0; i < 10; ++i) migrations += engine.step().migrated ? 1 : 0;
  // Slow drift: after the initial correction the system stays balanced.
  EXPECT_LE(migrations, 4);
}

TEST(Integration, ScaleOutConvergesQuicklyWithMixed) {
  const InstanceId nd = 5;
  SimEngine engine(default_sim(nd),
                   std::make_unique<UniformCostOperator>(4.0, 8.0),
                   zipf_source(0.0, 31),
                   controller_with(std::make_unique<MixedPlanner>(), nd, 5000,
                                   0.1));
  // Reach steady state.
  engine.run(5);
  const double before = engine.step().throughput_tps;
  engine.add_instance();
  const auto after = engine.run(5);
  // The new instance eventually carries work: last interval's work vector
  // has a non-trivial share on instance nd.
  const auto& final_work = after.back().instance_work;
  ASSERT_EQ(final_work.size(), static_cast<std::size_t>(nd + 1));
  double total = 0.0;
  for (const double w : final_work) total += w;
  EXPECT_GT(final_work.back(), 0.3 * total / (nd + 1));
  // Throughput did not regress.
  EXPECT_GE(after.back().throughput_tps, before * 0.95);
}

TEST(Integration, TableSizeBoundHoldsUnderContinuousRebalancing) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 3000;
  opts.tuples_per_interval = 1'500'000;
  opts.fluctuation = 1.0;
  ControllerConfig ccfg;
  ccfg.planner.theta_max = 0.1;
  ccfg.planner.max_table_entries = 150;
  auto controller = std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(8, 128, 21), 150),
      std::make_unique<MixedPlanner>(), ccfg, 3000);
  Controller* ctrl = controller.get();
  SimEngine engine(default_sim(8),
                   std::make_unique<UniformCostOperator>(4.0, 8.0),
                   std::make_unique<ZipfFluctuatingSource>(opts),
                   std::move(controller));
  for (int i = 0; i < 10; ++i) {
    (void)engine.step();
    EXPECT_LE(ctrl->assignment().table().size(), 170u)
        << "interval " << i;  // bound + small planner slack
  }
}

}  // namespace
}  // namespace skewless
