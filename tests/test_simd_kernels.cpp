// The SIMD kernel layer's contract: every vector tier is BIT-IDENTICAL
// to the scalar reference on every operation, over randomized geometries
// and values — including the odd tails a 2/4-lane kernel has to finish
// scalar. Plus the dispatch machinery (tier resolution, forcing, the
// SKEWLESS_FORCE_SCALAR override), the FirstTouchArray the NUMA
// placement rides on, and the CPU-topology pin order.
//
// These suites carry the "simd" label and run on every CI leg; one leg
// additionally reruns them under SKEWLESS_FORCE_SCALAR=1 (the dispatch
// tests read the environment, so they pass either way).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/cpu_topology.h"
#include "common/first_touch.h"
#include "common/rng.h"
#include "common/serde.h"
#include "sketch/count_min.h"
#include "sketch/simd/sketch_kernels.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {
namespace {

using simd::KernelTier;
using simd::SketchKernels;

/// Every tier selectable on this host, scalar first.
std::vector<const SketchKernels*> selectable_tiers() {
  std::vector<const SketchKernels*> tiers;
  for (int t = 0; t <= static_cast<int>(simd::max_supported_tier()); ++t) {
    tiers.push_back(&simd::kernels_for(static_cast<KernelTier>(t)));
  }
  return tiers;
}

// ---------------------------------------------------------------------
// Dispatch machinery.

TEST(SimdDispatch, TierTablesAreSelfConsistent) {
  const SketchKernels& scalar = simd::scalar_kernels();
  EXPECT_EQ(scalar.tier, KernelTier::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_STREQ(simd::tier_name(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(KernelTier::kSse2), "sse2");
  EXPECT_STREQ(simd::tier_name(KernelTier::kAvx2), "avx2");
  for (const SketchKernels* k : selectable_tiers()) {
    EXPECT_STREQ(k->name, simd::tier_name(k->tier));
    EXPECT_LE(static_cast<int>(k->tier),
              static_cast<int>(simd::max_supported_tier()));
  }
  if (const SketchKernels* sse2 = simd::sse2_kernels()) {
    EXPECT_EQ(sse2->tier, KernelTier::kSse2);
  }
  if (const SketchKernels* avx2 = simd::avx2_kernels()) {
    EXPECT_EQ(avx2->tier, KernelTier::kAvx2);
  }
}

TEST(SimdDispatch, ForcingEachSupportedTierResolvesItsKernels) {
  const KernelTier restore = simd::active_kernels().tier;
  for (const SketchKernels* k : selectable_tiers()) {
    simd::set_active_tier(k->tier);
    EXPECT_EQ(&simd::active_kernels(), k);
    EXPECT_STREQ(simd::active_kernels().name, simd::tier_name(k->tier));
  }
  // Requesting an unsupported tier clamps to the best supported one
  // instead of dispatching into illegal instructions.
  simd::set_active_tier(KernelTier::kAvx2);
  EXPECT_EQ(simd::active_kernels().tier, simd::max_supported_tier());
  simd::force_scalar();
  EXPECT_EQ(simd::active_kernels().tier, KernelTier::kScalar);
  simd::set_active_tier(restore);
}

TEST(SimdDispatch, DefaultTierHonorsForceScalarEnvironment) {
  // Environment-aware on purpose: under SKEWLESS_FORCE_SCALAR (the CI
  // forced-scalar leg) the default must be scalar; otherwise it is the
  // best supported tier.
  const char* force = std::getenv("SKEWLESS_FORCE_SCALAR");
  if (force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0) {
    EXPECT_EQ(simd::default_tier(), KernelTier::kScalar);
  } else {
    EXPECT_EQ(simd::default_tier(), simd::max_supported_tier());
  }
}

// ---------------------------------------------------------------------
// Per-operation bit-identity fuzz: scalar vs every selectable tier over
// random geometries (random power-of-two widths, depths, batch sizes
// including 0 and lane-count remainders) and random values.

TEST(SimdBitIdentity, ProbeAndHashBatchesMatchScalarAndCountMin) {
  Xoshiro256 rng(0xbeefULL);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = rng.next_below(67);  // covers 0 and odd tails
    const std::uint64_t seed = rng.next();
    std::vector<std::uint64_t> keys(n);
    for (auto& k : keys) k = rng.next();

    std::vector<std::uint64_t> h1_ref(n), h2_ref(n), hash_ref(n);
    simd::scalar_kernels().make_probes(keys.data(), n, seed, h1_ref.data(),
                                       h2_ref.data());
    simd::scalar_kernels().hash64_batch(keys.data(), n, seed,
                                        hash_ref.data());
    // The scalar kernels must agree with the sketch's own probe
    // constructor — they ARE CountMinSketch::make_probe, batched.
    for (std::size_t i = 0; i < n; ++i) {
      const auto probe = CountMinSketch::make_probe(keys[i], seed);
      ASSERT_EQ(h1_ref[i], probe.h1);
      ASSERT_EQ(h2_ref[i], probe.h2);
      ASSERT_EQ(hash_ref[i], hash64(keys[i], seed));
    }
    for (const SketchKernels* k : selectable_tiers()) {
      std::vector<std::uint64_t> h1(n), h2(n), hashes(n);
      k->make_probes(keys.data(), n, seed, h1.data(), h2.data());
      k->hash64_batch(keys.data(), n, seed, hashes.data());
      ASSERT_EQ(h1, h1_ref) << k->name << " iter " << iter;
      ASSERT_EQ(h2, h2_ref) << k->name << " iter " << iter;
      ASSERT_EQ(hashes, hash_ref) << k->name << " iter " << iter;
    }
  }
}

TEST(SimdBitIdentity, CellMergeKernelsMatchScalar) {
  Xoshiro256 rng(0xfeedULL);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = rng.next_below(515);
    const std::size_t stride = 1 + rng.next_below(6);
    std::vector<double> dst0(n), add_src(n), sub_src(n);
    std::vector<double> strided_src(n * stride + 1);
    for (auto& v : dst0) v = static_cast<double>(rng.next_below(1 << 20));
    for (auto& v : add_src) v = static_cast<double>(rng.next_below(1 << 20));
    // Subtrahends larger than the cells exercise the max(0, ...) clamp,
    // including exact-zero differences.
    for (std::size_t i = 0; i < n; ++i) {
      sub_src[i] = (rng.next_below(4) == 0)
                       ? dst0[i]
                       : static_cast<double>(rng.next_below(1 << 21));
    }
    for (auto& v : strided_src) {
      v = static_cast<double>(rng.next_below(1 << 20));
    }

    std::vector<double> ref = dst0;
    simd::scalar_kernels().add_cells(ref.data(), add_src.data(), n);
    simd::scalar_kernels().sub_cells_clamped(ref.data(), sub_src.data(), n);
    simd::scalar_kernels().add_strided(ref.data(), strided_src.data(),
                                       stride, n);
    for (const SketchKernels* k : selectable_tiers()) {
      std::vector<double> out = dst0;
      k->add_cells(out.data(), add_src.data(), n);
      k->sub_cells_clamped(out.data(), sub_src.data(), n);
      k->add_strided(out.data(), strided_src.data(), stride, n);
      ASSERT_EQ(0, std::memcmp(out.data(), ref.data(), n * sizeof(double)))
          << k->name << " iter " << iter << " n=" << n
          << " stride=" << stride;
    }
  }
}

TEST(SimdBitIdentity, EstimateAndFusedFoldMatchScalar) {
  Xoshiro256 rng(0xabadcafeULL);
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t width = std::size_t{8} << rng.next_below(6);  // 8..256
    const std::size_t depth = 1 + rng.next_below(8);
    const std::size_t mask = width - 1;
    std::vector<double> cells(width * depth);
    for (auto& v : cells) v = static_cast<double>(rng.next_below(1 << 16));
    std::vector<double> fused0(width * depth * 4);
    for (auto& v : fused0) v = static_cast<double>(rng.next_below(1 << 16));
    // The pad lane must hold +0.0 — the fused-cell invariant the vector
    // fold's 4th lane relies on.
    for (std::size_t c = 0; c < width * depth; ++c) fused0[4 * c + 3] = 0.0;

    std::vector<std::uint64_t> h1s(32), h2s(32);
    std::vector<double> costs(32), freqs(32), states(32);
    for (std::size_t i = 0; i < h1s.size(); ++i) {
      const auto probe = CountMinSketch::make_probe(rng.next(), 0x5a17ULL ^ i);
      h1s[i] = probe.h1;
      h2s[i] = probe.h2;
      costs[i] = static_cast<double>(rng.next_below(1000)) * 0.25;
      freqs[i] = static_cast<double>(1 + rng.next_below(16));
      states[i] = static_cast<double>(rng.next_below(4096));
    }

    std::vector<double> est_ref(h1s.size());
    std::vector<double> fused_ref = fused0;
    for (std::size_t i = 0; i < h1s.size(); ++i) {
      est_ref[i] = simd::scalar_kernels().estimate_min(
          cells.data(), width, mask, depth, h1s[i], h2s[i]);
      simd::scalar_kernels().fold_fused_rows(fused_ref.data(), width, mask,
                                             depth, h1s[i], h2s[i], costs[i],
                                             freqs[i], states[i]);
    }
    for (const SketchKernels* k : selectable_tiers()) {
      if (k->tier == KernelTier::kScalar) continue;
      std::vector<double> fused = fused0;
      for (std::size_t i = 0; i < h1s.size(); ++i) {
        const double est = k->estimate_min(cells.data(), width, mask, depth,
                                           h1s[i], h2s[i]);
        ASSERT_EQ(std::memcmp(&est, &est_ref[i], sizeof(double)), 0)
            << k->name << " iter " << iter << " width=" << width
            << " depth=" << depth;
        k->fold_fused_rows(fused.data(), width, mask, depth, h1s[i], h2s[i],
                           costs[i], freqs[i], states[i]);
      }
      ASSERT_EQ(0, std::memcmp(fused.data(), fused_ref.data(),
                               fused.size() * sizeof(double)))
          << k->name << " iter " << iter << " width=" << width
          << " depth=" << depth;
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end slab identity: a WorkerSketchSlab fed identical batches
// under the scalar tier and under the best tier serializes to identical
// bytes (cells, hot map, candidates, scalars — the full wire image).

TEST(SimdBitIdentity, SlabAddBatchSerializesIdenticallyAcrossTiers) {
  const KernelTier restore = simd::active_kernels().tier;
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 64;

  const auto run_tier = [&](KernelTier tier) {
    simd::set_active_tier(tier);
    WorkerSketchSlab slab(cfg);
    std::vector<KeyId> heavy;
    for (KeyId k = 0; k < 16; ++k) heavy.push_back(k * 97);
    slab.set_heavy_keys(heavy);
    Xoshiro256 rng(0x600dULL);
    for (int batch = 0; batch < 8; ++batch) {
      std::unordered_map<KeyId, WorkerSketchSlab::KeyAgg> entries;
      for (int i = 0; i < 400; ++i) {
        const KeyId key = rng.next_below(5000);
        auto& agg = entries[key];
        agg.cost += static_cast<double>(1 + rng.next_below(8));
        agg.state_bytes += 8.0;
        agg.frequency += 1;
      }
      slab.add_batch(entries);
    }
    ByteWriter out;
    slab.serialize(out);
    simd::set_active_tier(restore);
    return out.take();
  };

  const std::vector<std::uint8_t> scalar_bytes = run_tier(KernelTier::kScalar);
  const std::vector<std::uint8_t> best_bytes =
      run_tier(simd::max_supported_tier());
  ASSERT_EQ(scalar_bytes.size(), best_bytes.size());
  EXPECT_EQ(0, std::memcmp(scalar_bytes.data(), best_bytes.data(),
                           scalar_bytes.size()));
}

// ---------------------------------------------------------------------
// FirstTouchArray — the lazily-mapped backing store the NUMA first-touch
// placement relies on.

TEST(FirstTouchArrayTest, ResetZeroPrefaultAndMoveSemantics) {
  FirstTouchArray<double> arr;
  EXPECT_TRUE(arr.empty());
  EXPECT_EQ(arr.size(), 0u);

  arr.reset(1000);
  ASSERT_EQ(arr.size(), 1000u);
  ASSERT_NE(arr.data(), nullptr);
  EXPECT_GE(arr.memory_bytes(), 1000 * sizeof(double));
  // Fresh mappings read as zero without any explicit initialization.
  for (std::size_t i = 0; i < arr.size(); ++i) ASSERT_EQ(arr[i], 0.0);

  for (std::size_t i = 0; i < arr.size(); ++i) {
    arr[i] = static_cast<double>(i);
  }
  // prefault() is value-neutral: committing pages must not disturb
  // already-written contents.
  arr.prefault();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    ASSERT_EQ(arr[i], static_cast<double>(i));
  }
  arr.zero();
  for (std::size_t i = 0; i < arr.size(); ++i) ASSERT_EQ(arr[i], 0.0);

  arr[7] = 42.0;
  FirstTouchArray<double> moved = std::move(arr);
  ASSERT_EQ(moved.size(), 1000u);
  EXPECT_EQ(moved[7], 42.0);
  EXPECT_TRUE(arr.empty());  // NOLINT(bugprone-use-after-move): specified

  // reset() replaces the mapping: new extent, zeroed content again.
  moved.reset(64);
  ASSERT_EQ(moved.size(), 64u);
  for (std::size_t i = 0; i < moved.size(); ++i) ASSERT_EQ(moved[i], 0.0);
}

// ---------------------------------------------------------------------
// CPU topology — the worker pin order.

TEST(CpuTopologyTest, PinOrderIsAPermutationCoveringEveryHardwareThread) {
  const CpuTopology& topo = cpu_topology();
  EXPECT_GE(topo.hardware_threads, 1u);
  EXPECT_GE(topo.physical_cores, 1u);
  EXPECT_LE(topo.physical_cores, topo.hardware_threads);
  EXPECT_EQ(topo.smt, topo.hardware_threads > topo.physical_cores);

  ASSERT_EQ(topo.pin_order.size(), topo.hardware_threads);
  std::set<int> seen;
  for (const int cpu : topo.pin_order) {
    EXPECT_GE(cpu, 0);
    EXPECT_TRUE(seen.insert(cpu).second) << "duplicate cpu " << cpu;
  }
  // Physical-core primaries occupy the first physical_cores slots: a
  // worker fleet no larger than the core count never lands on an SMT
  // sibling. (With the identity fallback physical_cores ==
  // hardware_threads and the property holds trivially.)
  std::set<int> primaries(topo.pin_order.begin(),
                          topo.pin_order.begin() +
                              static_cast<std::ptrdiff_t>(topo.physical_cores));
  EXPECT_EQ(primaries.size(), topo.physical_cores);
}

TEST(CpuTopologyTest, NumaBindIsSafeWhereverItLands) {
  // On hosts without libnuma (or single-node machines) this is a no-op
  // returning false; with libnuma it binds. Either way it must not
  // crash and must tolerate an arbitrary valid CPU id.
  const bool bound = bind_current_thread_to_node_of_cpu(0);
  if (!numa_support_compiled()) {
    EXPECT_FALSE(bound);
  }
}

}  // namespace
}  // namespace skewless
