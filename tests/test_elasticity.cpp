#include "core/elasticity.h"

#include <gtest/gtest.h>

namespace skewless {
namespace {

ElasticityAdvisor::Options fast_options() {
  ElasticityAdvisor::Options opts;
  opts.ewma_alpha = 1.0;  // no smoothing: tests control the signal exactly
  opts.sustain_intervals = 3;
  opts.cooldown_intervals = 2;
  return opts;
}

TEST(Elasticity, HoldsInHealthyBand) {
  ElasticityAdvisor advisor(fast_options());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(advisor.observe(0.6, 4), ScalingAdvice::kHold);
  }
}

TEST(Elasticity, SustainedOverloadTriggersScaleOut) {
  ElasticityAdvisor advisor(fast_options());
  EXPECT_EQ(advisor.observe(0.95, 4), ScalingAdvice::kHold);
  EXPECT_EQ(advisor.observe(0.95, 4), ScalingAdvice::kHold);
  EXPECT_EQ(advisor.observe(0.95, 4), ScalingAdvice::kScaleOut);
}

TEST(Elasticity, TransientSpikeDoesNotTrigger) {
  ElasticityAdvisor advisor(fast_options());
  advisor.observe(0.95, 4);
  advisor.observe(0.95, 4);
  advisor.observe(0.6, 4);  // back in band: streak resets
  EXPECT_EQ(advisor.breach_streak(), 0);
  advisor.observe(0.95, 4);
  advisor.observe(0.95, 4);
  EXPECT_EQ(advisor.observe(0.95, 4), ScalingAdvice::kScaleOut);
}

TEST(Elasticity, SustainedUnderloadTriggersScaleIn) {
  ElasticityAdvisor advisor(fast_options());
  advisor.observe(0.1, 4);
  advisor.observe(0.1, 4);
  EXPECT_EQ(advisor.observe(0.1, 4), ScalingAdvice::kScaleIn);
}

TEST(Elasticity, NeverScalesBelowMinimum) {
  auto opts = fast_options();
  opts.min_instances = 2;
  ElasticityAdvisor advisor(opts);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(advisor.observe(0.05, 2), ScalingAdvice::kHold);
  }
}

TEST(Elasticity, CooldownSuppressesAdvice) {
  ElasticityAdvisor advisor(fast_options());
  advisor.observe(0.95, 4);
  advisor.observe(0.95, 4);
  EXPECT_EQ(advisor.observe(0.95, 4), ScalingAdvice::kScaleOut);
  // cooldown = 2 intervals: no advice even though still overloaded.
  EXPECT_EQ(advisor.observe(0.95, 5), ScalingAdvice::kHold);
  EXPECT_EQ(advisor.observe(0.95, 5), ScalingAdvice::kHold);
  // Then the streak must rebuild.
  advisor.observe(0.95, 5);
  advisor.observe(0.95, 5);
  EXPECT_EQ(advisor.observe(0.95, 5), ScalingAdvice::kScaleOut);
}

TEST(Elasticity, EwmaSmoothsNoisyInput) {
  ElasticityAdvisor::Options opts;
  opts.ewma_alpha = 0.2;
  opts.sustain_intervals = 3;
  ElasticityAdvisor advisor(opts);
  // Alternating 0.4 / 1.1 averages 0.75 < high watermark 0.85: the EWMA
  // stays in the healthy band even though half the raw samples breach.
  // (Start low: the EWMA initializes from the first observation.)
  for (int i = 0; i < 30; ++i) {
    const double u = (i % 2 == 0) ? 0.4 : 1.1;
    EXPECT_EQ(advisor.observe(u, 4), ScalingAdvice::kHold) << "i=" << i;
  }
}

TEST(Elasticity, ResetForgetsHistory) {
  ElasticityAdvisor advisor(fast_options());
  advisor.observe(0.95, 4);
  advisor.observe(0.95, 4);
  advisor.reset();
  EXPECT_EQ(advisor.observe(0.95, 4), ScalingAdvice::kHold);
  EXPECT_EQ(advisor.breach_streak(), 1);
}

TEST(SuggestInstances, CeilsToTargetUtilization) {
  // 10 units of work, capacity 1, target 0.8 -> 12.5 -> 13 instances.
  EXPECT_EQ(suggest_instances(10.0, 1.0, 0.8), 13);
  EXPECT_EQ(suggest_instances(0.0, 1.0, 0.8), 1);
  EXPECT_EQ(suggest_instances(1.0, 1.0, 1.0), 1);
  EXPECT_EQ(suggest_instances(1.01, 1.0, 1.0), 2);
}

TEST(ElasticityDeath, RejectsInvertedWatermarks) {
  ElasticityAdvisor::Options opts;
  opts.high_watermark = 0.3;
  opts.low_watermark = 0.5;
  EXPECT_DEATH(ElasticityAdvisor{opts}, "precondition");
}

TEST(Elasticity, EndToEndScaleOutScenario) {
  // A workload that doubles: advisor reacts once, suggest_instances tells
  // how far to scale.
  ElasticityAdvisor advisor(fast_options());
  InstanceId nd = 4;
  double work = 3.6;  // utilization 0.9 at nd = 4
  int scale_outs = 0;
  for (int i = 0; i < 12; ++i) {
    const auto advice = advisor.observe(work / nd, nd);
    if (advice == ScalingAdvice::kScaleOut) {
      ++nd;
      ++scale_outs;
    }
  }
  EXPECT_GE(scale_outs, 1);
  EXPECT_LE(work / nd, 0.85);
}

}  // namespace
}  // namespace skewless
