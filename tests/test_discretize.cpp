#include "core/discretize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace skewless {
namespace {

TEST(Hlhe, RepresentativeStructureForPaperExample) {
  // Fig. 6(b): r = 2 (R = 4), max = 8 -> representatives {8, 4, 2, 1}.
  const HlheDiscretizer disc(2, 8.0);
  const auto& reps = disc.representatives();
  EXPECT_EQ(reps, (std::vector<double>{8.0, 4.0, 2.0, 1.0}));
}

TEST(Hlhe, LinearPlusExponentialParts) {
  // r = 3 (R = 8), max = 32: linear 32, 24, 16, 8; exponential 4, 2, 1.
  const HlheDiscretizer disc(3, 32.0);
  const auto& reps = disc.representatives();
  EXPECT_EQ(reps, (std::vector<double>{32.0, 24.0, 16.0, 8.0, 4.0, 2.0, 1.0}));
}

TEST(Hlhe, DegreeZeroCoversEveryInteger) {
  // R = 1: representatives are every integer down to 1.
  const HlheDiscretizer disc(0, 5.0);
  EXPECT_EQ(disc.representatives(),
            (std::vector<double>{5.0, 4.0, 3.0, 2.0, 1.0}));
}

TEST(Hlhe, PaperExampleCancelsDeviation) {
  // Fig. 6(b): costs 8, 6, 3, 2, 2, 1, 1, 1, 1, 1 with R = 4 end with
  // total deviation zero.
  HlheDiscretizer disc(2, 8.0);
  const std::vector<double> costs = {8, 6, 3, 2, 2, 1, 1, 1, 1, 1};
  for (const double c : costs) (void)disc.discretize(c);
  EXPECT_NEAR(disc.accumulated_deviation(), 0.0, 1.0);
}

TEST(Hlhe, ValuesMapToBracketingRepresentatives) {
  HlheDiscretizer disc(2, 16.0);
  // 5.0 lies between representatives 8 and 4.
  const double y = disc.discretize(5.0);
  EXPECT_TRUE(y == 4.0 || y == 8.0);
}

TEST(Hlhe, ExactRepresentativeMapsToItself) {
  HlheDiscretizer disc(2, 16.0);
  EXPECT_EQ(disc.discretize(16.0), 16.0);
  EXPECT_EQ(disc.discretize(4.0), 4.0);
  EXPECT_EQ(disc.discretize(1.0), 1.0);
}

TEST(Hlhe, ZeroPassesThrough) {
  HlheDiscretizer disc(2, 16.0);
  EXPECT_EQ(disc.discretize(16.0), 16.0);
  EXPECT_EQ(disc.discretize(0.0), 0.0);
}

TEST(Hlhe, AboveMaxClampsToLargestRepresentative) {
  HlheDiscretizer disc(1, 10.0);
  const double top = disc.representatives().front();
  EXPECT_EQ(disc.discretize(top + 0.5), top);
}

TEST(Hlhe, ResetClearsDeviation) {
  HlheDiscretizer disc(2, 8.0);
  (void)disc.discretize(6.0);
  EXPECT_NE(disc.accumulated_deviation(), 0.0);
  disc.reset();
  EXPECT_EQ(disc.accumulated_deviation(), 0.0);
  (void)disc.discretize(8.0);  // monotonicity check restarts after reset
}

TEST(HlheDeath, RejectsIncreasingSequence) {
  HlheDiscretizer disc(2, 8.0);
  (void)disc.discretize(3.0);
  EXPECT_DEATH((void)disc.discretize(5.0), "precondition");
}

TEST(Hlhe, NearestRoundingHasLargerDeviationOnSkewedData) {
  // Theorem 3's point: greedy cancellation keeps |delta| ~ 0 while plain
  // nearest-rounding accumulates error on Zipf-like value sets.
  const ZipfDistribution zipf(2000, 0.9, false, 4);
  auto counts = zipf.expected_counts(100'000);
  std::vector<double> values;
  for (const auto c : counts) {
    if (c > 0) values.push_back(static_cast<double>(c));
  }
  std::sort(values.rbegin(), values.rend());

  HlheDiscretizer greedy(3, values.front());
  const HlheDiscretizer nearest(3, values.front());
  double nearest_dev = 0.0;
  for (const double v : values) {
    (void)greedy.discretize(v);
    nearest_dev += v - nearest.discretize_nearest(v);
  }
  EXPECT_LE(std::abs(greedy.accumulated_deviation()),
            std::abs(nearest_dev) + 1.0);
  // Greedy deviation is bounded by the largest representative gap.
  EXPECT_LE(std::abs(greedy.accumulated_deviation()), 8.0);
}

class HlheTheorem3Param
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HlheTheorem3Param, AccumulatedDeviationStaysNearZero) {
  const auto [r, skew] = GetParam();
  const ZipfDistribution zipf(5000, skew, false, 7);
  auto counts = zipf.expected_counts(200'000);
  std::vector<double> values;
  for (const auto c : counts) {
    if (c > 0) values.push_back(static_cast<double>(c));
  }
  std::sort(values.rbegin(), values.rend());
  HlheDiscretizer disc(r, values.front());
  for (const double v : values) (void)disc.discretize(v);
  // |delta| never exceeds half the largest representative spacing once the
  // greedy step can alternate, i.e. it is O(R), not O(sum of values).
  const double r_value = std::pow(2.0, r);
  EXPECT_LE(std::abs(disc.accumulated_deviation()), r_value + 1.0)
      << "r=" << r << " skew=" << skew;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HlheTheorem3Param,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 8),
                       ::testing::Values(0.5, 0.85, 1.1)));

}  // namespace
}  // namespace skewless
