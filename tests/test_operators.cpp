#include "workload/operators.h"

#include <gtest/gtest.h>

namespace skewless {
namespace {

class RecordingCollector final : public Collector {
 public:
  void emit(const Tuple& tuple) override { emitted.push_back(tuple); }
  std::vector<Tuple> emitted;
};

TEST(WordCountState, CountsAndBytesGrow) {
  WordCountState state;
  EXPECT_EQ(state.count(), 0u);
  const Bytes empty = state.bytes();
  state.add(10, 1);
  state.add(20, 2);
  EXPECT_EQ(state.count(), 2u);
  EXPECT_GT(state.bytes(), empty);
}

TEST(WordCountState, ExpireDropsOldTuplesButKeepsCount) {
  WordCountState state;
  state.add(10, 1);
  state.add(20, 2);
  state.add(30, 3);
  state.expire_before(25);
  EXPECT_EQ(state.buffered(), 1u);
  EXPECT_EQ(state.count(), 3u);  // the aggregate survives expiry
}

TEST(WordCountState, ChecksumDependsOnContent) {
  WordCountState a;
  WordCountState b;
  a.add(1, 5);
  b.add(1, 6);
  EXPECT_NE(a.checksum(), b.checksum());
  WordCountState c;
  c.add(99, 5);  // same value, different time: same aggregate
  EXPECT_EQ(a.checksum(), c.checksum());
}

TEST(WordCountLogic, EmitsRunningCount) {
  const WordCountLogic logic(2.0);
  auto state = logic.make_state();
  RecordingCollector out;
  const Cost cost = logic.process(Tuple{3, 42, 100, 0}, *state, out);
  EXPECT_EQ(cost, 2.0);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].key, 3u);
  EXPECT_EQ(out.emitted[0].value, 1);
  logic.process(Tuple{3, 43, 200, 0}, *state, out);
  EXPECT_EQ(out.emitted[1].value, 2);
}

TEST(SelfJoinState, WindowAndExpiry) {
  SelfJoinState state;
  state.append(10, 1);
  state.append(20, 2);
  state.append(30, 3);
  EXPECT_EQ(state.window_size(), 3u);
  EXPECT_EQ(state.bytes(), 48.0);
  state.expire_before(21);
  EXPECT_EQ(state.window_size(), 1u);
}

TEST(SelfJoinState, ChecksumOrderInsensitiveContent) {
  SelfJoinState a;
  a.append(1, 10);
  a.append(2, 20);
  SelfJoinState b;
  b.append(5, 20);
  b.append(9, 10);
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(SelfJoinLogic, CostGrowsWithWindow) {
  const SelfJoinLogic logic(1.0, 0.1, 1024);
  auto state = logic.make_state();
  RecordingCollector out;
  const Cost first = logic.process(Tuple{1, 0, 0, 0}, *state, out);
  for (int i = 0; i < 50; ++i) {
    logic.process(Tuple{1, i, 0, 0}, *state, out);
  }
  const Cost later = logic.process(Tuple{1, 0, 0, 0}, *state, out);
  EXPECT_GT(later, first);
}

TEST(SelfJoinLogic, MatchesEmitParityJoins) {
  const SelfJoinLogic logic;
  auto state = logic.make_state();
  RecordingCollector out;
  logic.process(Tuple{1, 2, 0, 0}, *state, out);  // even, window empty
  EXPECT_TRUE(out.emitted.empty());
  logic.process(Tuple{1, 4, 1, 0}, *state, out);  // even matches even
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].value, 1);
  logic.process(Tuple{1, 3, 2, 0}, *state, out);  // odd matches nothing
  EXPECT_EQ(out.emitted.size(), 1u);
}

TEST(SelfJoinLogic, WindowBoundEnforced) {
  const SelfJoinLogic logic(1.0, 0.01, 16);
  auto state = logic.make_state();
  RecordingCollector out;
  for (int i = 0; i < 100; ++i) {
    logic.process(Tuple{1, i, static_cast<Micros>(i), 0}, *state, out);
  }
  const auto& sj = static_cast<SelfJoinState&>(*state);
  EXPECT_LE(sj.window_size(), 16u);
}

}  // namespace
}  // namespace skewless
