// Randomized differential suite for the sketch statistics stack, run
// under the `fuzz` CTest label (like test_compact_fuzz): hundreds of
// seeded random streams checked against the exact StatsWindow and
// against the Space-Saving paper guarantees.
//
// Invariants exercised per stream:
//  * mass conservation — the sketch window's aggregate totals (dense
//    synthesis sums, compact synthesis sums, total windowed state) equal
//    the exact window's, through arbitrary interleavings of promotion,
//    decayed demotion and displacement;
//  * overestimate-only — every COLD key's per-key accessor is an upper
//    bound on its true value (Count-Min never underestimates, and the
//    window's promotion/demotion bookkeeping credits sketches without
//    ever debiting them);
//  * Space-Saving W/m — after chaining merges of per-worker summaries
//    (SpaceSaving and MisraGries mixed), every key with true weight
//    > W/m is tracked, no entry's guaranteed bound (count − error)
//    exceeds its true weight, and all-SpaceSaving unions conserve
//    Σ counts == W.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <unordered_map>
#include <vector>

#include "core/stats_window.h"
#include "sketch/sketch_stats_window.h"
#include "sketch/space_saving.h"

namespace skewless {
namespace {

double sum_of(const std::vector<double>& v) {
  double acc = 0.0;
  for (const double x : v) acc += x;
  return acc;
}

// Relative tolerance for comparing two ways of summing the same stream
// of doubles (the sketch keeps scalar aggregates, the exact window dense
// vectors — both exact up to FP associativity).
double tol(double scale) { return 1e-9 * (1.0 + std::abs(scale)); }

TEST(SketchFuzz, DifferentialAgainstExactWindow) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const std::size_t num_keys = 32 + rng() % 224;
    const int window = 1 + static_cast<int>(rng() % 3);
    const InstanceId instances = 2 + static_cast<InstanceId>(rng() % 4);

    SketchStatsConfig cfg;
    // Deliberately tiny sketches and heavy tier: collisions and
    // eviction/displacement pressure are the point.
    cfg.epsilon = 0.05;
    cfg.heavy_capacity = 4 + rng() % 24;
    cfg.promote_fraction = 0.005;
    cfg.decay = (rng() % 2) == 0;
    cfg.decay_beta = 0.3 + 0.2 * static_cast<double>(rng() % 3);
    cfg.seed = seed + 11;

    StatsWindow exact(num_keys, window);
    SketchStatsWindow sketch(num_keys, window, cfg);

    const int intervals = 2 + static_cast<int>(rng() % 5);
    for (int i = 0; i < intervals; ++i) {
      const int records = 50 + static_cast<int>(rng() % 400);
      for (int r = 0; r < records; ++r) {
        // Skewed key choice: half the mass lands on a small head so the
        // heavy tier actually fills and displaces.
        const bool head = (rng() % 2) == 0;
        const KeyId key = static_cast<KeyId>(
            head ? rng() % (1 + num_keys / 16) : rng() % num_keys);
        const Cost cost = 1.0 + static_cast<double>(rng() % 9);
        const Bytes bytes = static_cast<double>(rng() % 16);
        // A key routes to exactly one instance within an interval — the
        // dest must be a function of the key, like the real assignment.
        const auto dest = static_cast<InstanceId>(key % instances);
        exact.record(key, cost, bytes, 1, dest);
        sketch.record(key, cost, bytes, 1, dest);
      }
      exact.roll();
      sketch.roll();

      // Aggregate mass: dense synthesis vs the exact window.
      std::vector<Cost> dense_cost;
      std::vector<Bytes> dense_state;
      sketch.synthesize_dense(dense_cost, dense_state);
      const double exact_cost = sum_of(exact.last_cost());
      const double exact_state = sum_of(exact.windowed_state());
      EXPECT_NEAR(sum_of(dense_cost), exact_cost, tol(exact_cost));
      EXPECT_NEAR(sum_of(dense_state), exact_state, tol(exact_state));
      EXPECT_NEAR(sketch.total_windowed_state(), exact.total_windowed_state(),
                  tol(exact_state));

      // Compact synthesis conserves the same mass split hot/cold.
      std::vector<KeyId> keys;
      std::vector<Cost> hot_cost;
      std::vector<Bytes> hot_state;
      std::vector<Cost> cold_cost;
      std::vector<Bytes> cold_state;
      sketch.synthesize_compact(instances, keys, hot_cost, hot_state,
                                cold_cost, cold_state);
      // Per-slot clamping can only STRAND mass, never lose it: the
      // compact sums are ≥ the exact totals in every mode. The decayed
      // path's cost backfill is the guaranteed observation (≤ the key's
      // recorded per-slot mass), so its cost debits never clamp and the
      // compact COST sum is exactly conserved — the over-debit caveat
      // the no-decay path documents. State backfills a Count-Min
      // overestimate in both modes, so only the lower bound holds there.
      EXPECT_GE(sum_of(hot_cost) + sum_of(cold_cost) + tol(exact_cost),
                exact_cost);
      EXPECT_GE(sum_of(hot_state) + sum_of(cold_state) + tol(exact_state),
                exact_state);
      if (cfg.decay) {
        EXPECT_NEAR(sum_of(hot_cost) + sum_of(cold_cost), exact_cost,
                    tol(exact_cost));
      }
      for (const Cost c : cold_cost) EXPECT_GE(c, -tol(exact_cost));
      for (const Bytes s : cold_state) EXPECT_GE(s, -tol(exact_state));

      // Overestimate-only for cold keys (heavy keys may carry backfilled
      // bounds in their promotion interval; cold estimates never
      // undershoot — Count-Min plus credit-only bookkeeping).
      for (int probe = 0; probe < 32; ++probe) {
        const KeyId key = static_cast<KeyId>(rng() % num_keys);
        if (sketch.is_heavy(key)) continue;
        EXPECT_GE(sketch.last_cost_of(key) + tol(exact_cost),
                  exact.last_cost()[key]);
        EXPECT_GE(sketch.windowed_state_of(key) + tol(exact_state),
                  exact.windowed_state()[key]);
        EXPECT_GE(sketch.last_frequency_of(key),
                  exact.last_frequency()[key]);
      }
    }
  }
}

TEST(SketchFuzz, SpaceSavingChainedMergeKeepsGuarantees) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dULL + 7);
    const std::size_t capacity = 4 + rng() % 28;
    const int workers = 1 + static_cast<int>(rng() % 6);
    const std::size_t domain = 16 + rng() % 112;

    SpaceSaving combined(capacity);
    std::unordered_map<KeyId, double> truth;
    double total = 0.0;
    bool any_misra_gries = false;
    for (int w = 0; w < workers; ++w) {
      // Alternate tracker flavors: the window unions SpaceSaving
      // trackers and MisraGries worker summaries through the same merge.
      const bool use_mg = (rng() % 2) == 0;
      SpaceSaving ss(capacity);
      MisraGries mg(capacity);
      const int adds = 20 + static_cast<int>(rng() % 300);
      for (int a = 0; a < adds; ++a) {
        const bool head = (rng() % 2) == 0;
        const KeyId key = static_cast<KeyId>(
            head ? rng() % (1 + domain / 8) : rng() % domain);
        const double weight = 1.0 + static_cast<double>(rng() % 7);
        if (use_mg) {
          mg.add(key, weight);
        } else {
          ss.add(key, weight);
        }
        truth[key] += weight;
        total += weight;
      }
      if (use_mg) {
        any_misra_gries = true;
        combined.merge(mg.entries_by_count(), mg.total_weight());
      } else {
        combined.merge(ss);
      }
    }

    // Space-Saving sources conserve mass exactly (eviction inherits
    // counts), so an all-SS union's counts sum to W. MisraGries has no
    // such sum identity — inserts seed count from the offset while
    // prunes drop entries wholesale — so mixed unions only promise the
    // per-key bounds and coverage below, plus the carried total_weight().
    double count_sum = 0.0;
    for (const SpaceSaving::Entry& e : combined.entries_by_count()) {
      count_sum += e.count;
      // The guaranteed bound never lies: count − error ≤ true. The
      // overestimate side (count ≥ true) survives a union only for keys
      // tracked by every source that saw them, so it is asserted just
      // for single-source runs.
      const auto it = truth.find(e.key);
      const double true_weight = it != truth.end() ? it->second : 0.0;
      if (workers == 1) {
        EXPECT_GE(e.count + tol(total), true_weight);
      }
      EXPECT_LE(e.count - e.error, true_weight + tol(total));
    }
    if (!any_misra_gries) {
      EXPECT_NEAR(count_sum, total, tol(total));
    }
    EXPECT_NEAR(combined.total_weight(), total, tol(total));

    // Every key heavier than W/m is tracked.
    const double bar = total / static_cast<double>(capacity);
    for (const auto& [key, weight] : truth) {
      if (weight > bar + tol(total)) {
        EXPECT_NE(combined.find(key), nullptr)
            << "seed " << seed << " key " << key << " weight " << weight
            << " > W/m " << bar;
      }
    }
  }
}

// Mass conservation specifically through heavy churn: a tiny heavy tier
// under a hot set that moves every interval forces promotion,
// displacement and decayed demotion on nearly every roll — the exact
// totals must never drift.
TEST(SketchFuzz, ChurningHeavyTierConservesMass) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    std::mt19937_64 rng(seed * 0xd1342543de82ef95ULL + 3);
    const std::size_t num_keys = 128;
    const int window = 1 + static_cast<int>(rng() % 3);

    SketchStatsConfig cfg;
    cfg.epsilon = 0.05;
    cfg.heavy_capacity = 4;
    cfg.promote_fraction = 0.01;
    cfg.decay = true;
    cfg.decay_beta = 0.5;
    cfg.demote_fraction = 0.5;  // aggressive: demotions on most rolls
    cfg.seed = seed;

    StatsWindow exact(num_keys, window);
    SketchStatsWindow sketch(num_keys, window, cfg);
    for (int i = 0; i < 10; ++i) {
      // The hot pair moves every interval — yesterday's heavy keys decay
      // below the demote bar while today's displace them.
      const KeyId hot = static_cast<KeyId>((i * 17) % num_keys);
      for (int r = 0; r < 120; ++r) {
        const bool on_hot = (rng() % 2) == 0;
        const KeyId key =
            on_hot ? static_cast<KeyId>((hot + rng() % 2) % num_keys)
                   : static_cast<KeyId>(rng() % num_keys);
        const Cost cost = 1.0 + static_cast<double>(rng() % 5);
        const Bytes bytes = static_cast<double>(rng() % 8);
        exact.record(key, cost, bytes);
        sketch.record(key, cost, bytes);
      }
      exact.roll();
      sketch.roll();
      const double exact_state = exact.total_windowed_state();
      EXPECT_NEAR(sketch.total_windowed_state(), exact_state,
                  tol(exact_state));
      std::vector<Cost> dense_cost;
      std::vector<Bytes> dense_state;
      sketch.synthesize_dense(dense_cost, dense_state);
      const double exact_cost = sum_of(exact.last_cost());
      EXPECT_NEAR(sum_of(dense_cost), exact_cost, tol(exact_cost));
      EXPECT_NEAR(sum_of(dense_state), exact_state, tol(exact_state));
    }
  }
}

}  // namespace
}  // namespace skewless
