#include "core/stats_window.h"

#include <gtest/gtest.h>

namespace skewless {
namespace {

TEST(StatsWindow, FreshWindowIsZero) {
  const StatsWindow w(10, 3);
  EXPECT_EQ(w.num_keys(), 10u);
  EXPECT_EQ(w.window(), 3);
  EXPECT_EQ(w.closed_intervals(), 0);
  EXPECT_EQ(w.total_windowed_state(), 0.0);
}

TEST(StatsWindow, RecordAccumulatesWithinInterval) {
  StatsWindow w(4, 1);
  w.record(1, 2.0, 8.0);
  w.record(1, 3.0, 8.0, 2);
  w.roll();
  EXPECT_EQ(w.last_cost()[1], 5.0);
  EXPECT_EQ(w.last_frequency()[1], 3u);
  EXPECT_EQ(w.windowed_state()[1], 16.0);
}

TEST(StatsWindow, RollResetsCurrentInterval) {
  StatsWindow w(2, 1);
  w.record(0, 1.0, 4.0);
  w.roll();
  w.roll();  // empty second interval
  EXPECT_EQ(w.last_cost()[0], 0.0);
  EXPECT_EQ(w.last_frequency()[0], 0u);
}

TEST(StatsWindow, WindowSumCoversLastWIntervals) {
  StatsWindow w(1, 2);
  w.record(0, 1.0, 10.0);
  w.roll();  // interval 1: 10 bytes
  w.record(0, 1.0, 20.0);
  w.roll();  // interval 2: 20 bytes; window = 30
  EXPECT_EQ(w.windowed_state()[0], 30.0);
  w.record(0, 1.0, 5.0);
  w.roll();  // interval 3: 5 bytes; interval 1 expires -> 25
  EXPECT_EQ(w.windowed_state()[0], 25.0);
  w.roll();  // interval 4: 0; interval 2 expires -> 5
  EXPECT_EQ(w.windowed_state()[0], 5.0);
  w.roll();  // everything expired
  EXPECT_EQ(w.windowed_state()[0], 0.0);
}

TEST(StatsWindow, WindowOneKeepsOnlyLastInterval) {
  StatsWindow w(1, 1);
  w.record(0, 1.0, 100.0);
  w.roll();
  EXPECT_EQ(w.windowed_state()[0], 100.0);
  w.roll();
  EXPECT_EQ(w.windowed_state()[0], 0.0);
}

TEST(StatsWindow, TotalWindowedState) {
  StatsWindow w(3, 2);
  w.record(0, 1.0, 10.0);
  w.record(2, 1.0, 30.0);
  w.roll();
  EXPECT_EQ(w.total_windowed_state(), 40.0);
}

TEST(StatsWindow, ResizeKeysPreservesExistingData) {
  StatsWindow w(2, 2);
  w.record(1, 3.0, 7.0);
  w.roll();
  w.resize_keys(5);
  EXPECT_EQ(w.num_keys(), 5u);
  EXPECT_EQ(w.last_cost()[1], 3.0);
  EXPECT_EQ(w.windowed_state()[1], 7.0);
  EXPECT_EQ(w.windowed_state()[4], 0.0);
  w.record(4, 1.0, 2.0);
  w.roll();
  EXPECT_EQ(w.windowed_state()[4], 2.0);
  EXPECT_EQ(w.windowed_state()[1], 7.0);  // still inside window 2
}

// resize_keys is grow-only: keys never leave the dense domain, so a
// shrink is a precondition violation — and the window keeps working
// normally after a grow.
TEST(StatsWindowDeath, ResizeShrinkRejected) {
  StatsWindow w(8, 2);
  w.record(7, 1.0, 2.0);
  EXPECT_DEATH(w.resize_keys(4), "precondition");
}

TEST(StatsWindow, ShrinkRejectedThenGrowStillWorks) {
  StatsWindow w(4, 2);
  w.record(3, 5.0, 10.0);
  w.roll();
  // (The shrink itself is covered by the death test; here we prove the
  // documented alternative — growing — keeps every invariant.)
  w.resize_keys(8);
  EXPECT_EQ(w.num_keys(), 8u);
  EXPECT_EQ(w.last_cost()[3], 5.0);
  w.record(7, 2.0, 4.0);
  w.roll();
  EXPECT_EQ(w.windowed_state()[3], 10.0);  // still inside window 2
  EXPECT_EQ(w.windowed_state()[7], 4.0);
  w.roll();
  EXPECT_EQ(w.windowed_state()[3], 0.0);  // expired on schedule
  EXPECT_EQ(w.windowed_state()[7], 4.0);
}

// Resizing while the ring holds fewer than w closed intervals must keep
// both the old keys' expiry schedule and the new keys' zero history.
TEST(StatsWindow, ResizeMidWindowWithPartiallyFilledRing) {
  StatsWindow w(2, 3);
  w.record(0, 1.0, 10.0);
  w.roll();  // ring: [10] — 1 of 3 slots used
  w.record(0, 1.0, 20.0);
  w.roll();  // ring: [10, 20]
  w.resize_keys(5);
  EXPECT_EQ(w.num_keys(), 5u);
  EXPECT_EQ(w.windowed_state()[0], 30.0);
  EXPECT_EQ(w.windowed_state()[4], 0.0);

  w.record(4, 1.0, 7.0);
  w.roll();  // ring: [10, 20, 7-interval] — now full
  EXPECT_EQ(w.windowed_state()[0], 30.0);
  EXPECT_EQ(w.windowed_state()[4], 7.0);
  w.roll();  // the pre-resize interval (10) expires first
  EXPECT_EQ(w.windowed_state()[0], 20.0);
  EXPECT_EQ(w.windowed_state()[4], 7.0);
  w.roll();  // then the 20
  EXPECT_EQ(w.windowed_state()[0], 0.0);
  EXPECT_EQ(w.windowed_state()[4], 7.0);
  w.roll();  // finally the post-resize interval
  EXPECT_EQ(w.windowed_state()[4], 0.0);
}

// record() beyond num_keys() is a contract violation by design (callers
// must resize_keys first); the sketch provider auto-grows instead — see
// the headers of both classes. RecordOutOfRangeKey below pins the
// asserting behaviour.
TEST(StatsWindow, RecordAtExactDomainBoundaryAfterGrow) {
  StatsWindow w(2, 1);
  w.resize_keys(3);
  w.record(2, 1.0, 1.0);  // largest valid key after the grow
  w.roll();
  EXPECT_EQ(w.last_cost()[2], 1.0);
}

TEST(StatsWindow, ClosedIntervalCount) {
  StatsWindow w(1, 1);
  for (int i = 0; i < 5; ++i) w.roll();
  EXPECT_EQ(w.closed_intervals(), 5);
}

TEST(StatsWindowDeath, RecordOutOfRangeKey) {
  StatsWindow w(2, 1);
  EXPECT_DEATH(w.record(5, 1.0, 1.0), "precondition");
}

TEST(StatsWindowDeath, NegativeCostRejected) {
  StatsWindow w(2, 1);
  EXPECT_DEATH(w.record(0, -1.0, 1.0), "precondition");
}

class WindowLengthParam : public ::testing::TestWithParam<int> {};

TEST_P(WindowLengthParam, SumAlwaysEqualsLastWContributions) {
  const int window = GetParam();
  StatsWindow w(1, window);
  // Interval i contributes i bytes.
  double expected = 0.0;
  std::vector<double> contributions;
  for (int i = 1; i <= 30; ++i) {
    w.record(0, 0.0, static_cast<double>(i));
    w.roll();
    contributions.push_back(static_cast<double>(i));
    expected = 0.0;
    const int from = std::max(0, i - window);
    for (int j = from; j < i; ++j) {
      expected += contributions[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(w.windowed_state()[0], expected, 1e-9) << "interval " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowLengthParam,
                         ::testing::Values(1, 2, 5, 10, 15, 20));

}  // namespace
}  // namespace skewless
