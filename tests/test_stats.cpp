#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace skewless {
namespace {

TEST(Welford, EmptyAccumulator) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.sum(), 0.0);
}

TEST(Welford, SingleValue) {
  Welford w;
  w.add(5.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.min(), 5.0);
  EXPECT_EQ(w.max(), 5.0);
}

TEST(Welford, MatchesNaiveComputation) {
  Xoshiro256 rng(1);
  std::vector<double> values;
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0 - 50.0;
    values.push_back(x);
    w.add(x);
  }
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.variance(), var, 1e-9);
  EXPECT_NEAR(w.stddev(), std::sqrt(var), 1e-9);
}

TEST(Welford, MergeEquivalentToSequential) {
  Xoshiro256 rng(2);
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double();
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmptyIsNoop) {
  Welford a;
  a.add(1.0);
  a.add(3.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 2.0, 1e-12);

  Welford b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 9.0, 3.0};
  EXPECT_EQ(percentile(v, 0.0), 1.0);
  EXPECT_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, LinearInterpolation) {
  // Sorted: 0, 10. Quantile 0.25 -> 2.5.
  EXPECT_NEAR(percentile({0.0, 10.0}, 0.25), 2.5, 1e-12);
}

TEST(Percentile, SingleElement) {
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_EQ(percentile({7.0}, 1.0), 7.0);
}

TEST(CdfPoints, EndpointsAndMonotonicity) {
  Xoshiro256 rng(3);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.next_double());
  const auto points = cdf_points(values, 11);
  ASSERT_EQ(points.size(), 11u);
  EXPECT_EQ(points.front().first, 0.0);
  EXPECT_EQ(points.back().first, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].second, points[i - 1].second);
    EXPECT_GT(points[i].first, points[i - 1].first);
  }
}

}  // namespace
}  // namespace skewless
