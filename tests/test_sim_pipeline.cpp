#include "engine/sim_pipeline.h"

#include <gtest/gtest.h>

namespace skewless {
namespace {

class FixedSource final : public WorkloadSource {
 public:
  explicit FixedSource(std::vector<std::uint64_t> counts)
      : counts_(std::move(counts)) {}
  [[nodiscard]] std::size_t num_keys() const override {
    return counts_.size();
  }
  [[nodiscard]] IntervalWorkload next_interval() override {
    return IntervalWorkload{counts_};
  }

 private:
  std::vector<std::uint64_t> counts_;
};

std::unique_ptr<SimEngine> make_stage(InstanceId nd,
                                      std::vector<std::uint64_t> counts,
                                      Cost cost_us,
                                      RoutingMode mode = RoutingMode::kShuffle) {
  SimConfig cfg;
  cfg.num_instances = nd;
  return std::make_unique<SimEngine>(
      cfg, std::make_unique<UniformCostOperator>(cost_us, 8.0),
      std::make_unique<FixedSource>(std::move(counts)), mode);
}

TEST(SimPipeline, UnthrottledWhenAllStagesUnderloaded) {
  std::vector<std::unique_ptr<SimEngine>> stages;
  stages.push_back(make_stage(4, std::vector<std::uint64_t>(100, 10), 1.0));
  stages.push_back(make_stage(4, std::vector<std::uint64_t>(100, 10), 1.0));
  SimPipeline pipeline(std::move(stages));
  const auto m = pipeline.step();
  EXPECT_DOUBLE_EQ(m.throughput_tps, m.offered_tps);
}

TEST(SimPipeline, SlowestStageGovernsThroughput) {
  // Stage 1 is 8x overloaded relative to stage 0.
  std::vector<std::unique_ptr<SimEngine>> stages;
  stages.push_back(
      make_stage(4, std::vector<std::uint64_t>(100, 10'000), 1.0));
  stages.push_back(
      make_stage(4, std::vector<std::uint64_t>(100, 10'000), 8.0));
  SimPipeline pipeline(std::move(stages));
  const auto m = pipeline.step();
  EXPECT_EQ(m.bottleneck_stage, 1u);
  EXPECT_NEAR(m.throughput_tps / m.offered_tps, 0.5, 0.02);  // 1s / 2s work
}

TEST(SimPipeline, LatencyIsAdditiveAcrossStages) {
  std::vector<std::unique_ptr<SimEngine>> stages;
  stages.push_back(make_stage(2, std::vector<std::uint64_t>(10, 10), 1.0));
  stages.push_back(make_stage(2, std::vector<std::uint64_t>(10, 10), 1.0));
  stages.push_back(make_stage(2, std::vector<std::uint64_t>(10, 10), 1.0));
  SimPipeline pipeline(std::move(stages));
  const auto m = pipeline.step();
  double sum = 0.0;
  for (const auto& sm : m.stages) sum += sm.avg_latency_ms;
  EXPECT_DOUBLE_EQ(m.end_to_end_latency_ms, sum);
  EXPECT_EQ(m.stages.size(), 3u);
}

TEST(SimPipeline, RunProducesRequestedIntervals) {
  std::vector<std::unique_ptr<SimEngine>> stages;
  stages.push_back(make_stage(2, std::vector<std::uint64_t>(10, 10), 1.0));
  SimPipeline pipeline(std::move(stages));
  const auto all = pipeline.run(7);
  EXPECT_EQ(all.size(), 7u);
  EXPECT_EQ(all.back().interval, 6);
}

}  // namespace
}  // namespace skewless
