#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace skewless {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  const ZipfDistribution zipf(100, 0.85);
  double sum = 0.0;
  for (KeyId k = 0; k < 100; ++k) sum += zipf.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, UniformWhenSkewZero) {
  const ZipfDistribution zipf(50, 0.0);
  for (KeyId k = 0; k < 50; ++k) {
    EXPECT_NEAR(zipf.probability(k), 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, RankZeroIsHottest) {
  const ZipfDistribution zipf(1000, 1.0);
  const KeyId hottest = zipf.key_at_rank(0);
  const KeyId coldest = zipf.key_at_rank(999);
  EXPECT_GT(zipf.probability(hottest), zipf.probability(coldest));
}

TEST(Zipf, ClassicZipfRatioBetweenTopRanks) {
  const ZipfDistribution zipf(1000, 1.0, /*permute_ranks=*/false);
  // With z = 1, P(rank 1) = 2 * P(rank 2).
  EXPECT_NEAR(zipf.probability(zipf.key_at_rank(0)) /
                  zipf.probability(zipf.key_at_rank(1)),
              2.0, 1e-9);
}

TEST(Zipf, ExpectedCountsSumExactly) {
  const ZipfDistribution zipf(333, 0.85);
  const auto counts = zipf.expected_counts(123'457);
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(total, 123'457u);
}

TEST(Zipf, ExpectedCountsMatchProbabilities) {
  const ZipfDistribution zipf(100, 0.9);
  const std::uint64_t n = 1'000'000;
  const auto counts = zipf.expected_counts(n);
  for (KeyId k = 0; k < 100; ++k) {
    const double expected = zipf.probability(k) * static_cast<double>(n);
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]),
                expected, 1.0);
  }
}

TEST(Zipf, SamplingMatchesProbabilities) {
  const ZipfDistribution zipf(20, 0.85, /*permute_ranks=*/false);
  Xoshiro256 rng(123);
  std::vector<int> counts(20, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(zipf.sample(rng))];
  }
  for (KeyId k = 0; k < 20; ++k) {
    const double expected = zipf.probability(k) * n;
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]),
                expected, 5.0 * std::sqrt(expected) + 5.0);
  }
}

TEST(Zipf, PermutationIsDeterministicPerSeed) {
  const ZipfDistribution a(100, 0.85, true, 7);
  const ZipfDistribution b(100, 0.85, true, 7);
  const ZipfDistribution c(100, 0.85, true, 8);
  EXPECT_EQ(a.key_at_rank(0), b.key_at_rank(0));
  int diffs = 0;
  for (std::uint64_t r = 0; r < 100; ++r) {
    if (a.key_at_rank(r) != c.key_at_rank(r)) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(Zipf, PermutationIsBijective) {
  const ZipfDistribution zipf(500, 0.85, true, 3);
  std::vector<bool> seen(500, false);
  for (std::uint64_t r = 0; r < 500; ++r) {
    const KeyId k = zipf.key_at_rank(r);
    ASSERT_LT(k, 500u);
    EXPECT_FALSE(seen[static_cast<std::size_t>(k)]);
    seen[static_cast<std::size_t>(k)] = true;
  }
}

class ZipfSkewParam : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewParam, TopRankShareGrowsWithSkew) {
  const double z = GetParam();
  const ZipfDistribution zipf(10'000, z, /*permute_ranks=*/false);
  const double top = zipf.probability(zipf.key_at_rank(0));
  const double uniform = 1.0 / 10'000.0;
  if (z == 0.0) {
    EXPECT_NEAR(top, uniform, 1e-12);
  } else {
    EXPECT_GT(top, uniform);
  }
  // CDF of top-100 keys must be monotone in z (checked against z = 0).
  double top100 = 0.0;
  for (std::uint64_t r = 0; r < 100; ++r) {
    top100 += zipf.probability(zipf.key_at_rank(r));
  }
  EXPECT_GE(top100, 100.0 * uniform - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, ZipfSkewParam,
                         ::testing::Values(0.0, 0.3, 0.5, 0.85, 1.0, 1.2));

}  // namespace
}  // namespace skewless
