#include "core/working_assignment.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;

TEST(WorkingAssignment, InitialLoadsMatchSnapshot) {
  const auto snap = make_snapshot(2, {7.0, 4.0, 5.0, 2.0}, {0, 0, 1, 1});
  const WorkingAssignment wa(snap);
  EXPECT_EQ(wa.load(0), 11.0);
  EXPECT_EQ(wa.load(1), 7.0);
  EXPECT_EQ(wa.keys_of(0).size(), 2u);
  EXPECT_EQ(wa.keys_of(1).size(), 2u);
}

TEST(WorkingAssignment, DisassociateRemovesLoadAndBucket) {
  const auto snap = make_snapshot(2, {7.0, 4.0}, {0, 0});
  WorkingAssignment wa(snap);
  wa.disassociate(0);
  EXPECT_EQ(wa.dest(0), kNilInstance);
  EXPECT_EQ(wa.load(0), 4.0);
  EXPECT_EQ(wa.keys_of(0).size(), 1u);
  EXPECT_EQ(wa.keys_of(0).front(), 1u);
}

TEST(WorkingAssignment, DisassociateTwiceIsNoop) {
  const auto snap = make_snapshot(2, {7.0}, {0});
  WorkingAssignment wa(snap);
  wa.disassociate(0);
  wa.disassociate(0);
  EXPECT_EQ(wa.load(0), 0.0);
}

TEST(WorkingAssignment, AssignAfterDisassociate) {
  const auto snap = make_snapshot(2, {7.0}, {0});
  WorkingAssignment wa(snap);
  wa.disassociate(0);
  wa.assign(0, 1);
  EXPECT_EQ(wa.dest(0), 1);
  EXPECT_EQ(wa.load(0), 0.0);
  EXPECT_EQ(wa.load(1), 7.0);
  EXPECT_EQ(wa.keys_of(1).size(), 1u);
}

TEST(WorkingAssignment, MoveBackRestoresHashDestination) {
  // Key 0 hashes to 1 but currently sits on 0.
  const auto snap =
      make_snapshot(2, {5.0, 1.0}, {0, 1}, {1.0, 1.0}, {1, 1});
  WorkingAssignment wa(snap);
  wa.move_back(0);
  EXPECT_EQ(wa.dest(0), 1);
  EXPECT_EQ(wa.load(0), 0.0);
  EXPECT_EQ(wa.load(1), 6.0);
}

TEST(WorkingAssignment, MoveBackWhenAlreadyHomeIsNoop) {
  const auto snap = make_snapshot(2, {5.0}, {1}, {1.0}, {1});
  WorkingAssignment wa(snap);
  wa.move_back(0);
  EXPECT_EQ(wa.dest(0), 1);
  EXPECT_EQ(wa.load(1), 5.0);
}

TEST(WorkingAssignment, InstancesByLoadAscending) {
  const auto snap = make_snapshot(3, {9.0, 1.0, 5.0}, {0, 1, 2});
  const WorkingAssignment wa(snap);
  const auto order = wa.instances_by_load_ascending();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 0);
}

TEST(WorkingAssignment, LoadTiesBreakByInstanceId) {
  const auto snap = make_snapshot(3, {2.0, 2.0, 2.0}, {2, 1, 0});
  const WorkingAssignment wa(snap);
  const auto order = wa.instances_by_load_ascending();
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(WorkingAssignment, ToAssignmentRoundTrips) {
  const auto snap = make_snapshot(3, {1.0, 2.0, 3.0, 4.0}, {0, 1, 2, 0});
  WorkingAssignment wa(snap);
  EXPECT_EQ(wa.to_assignment(), snap.current);
  wa.disassociate(3);
  wa.assign(3, 2);
  const auto result = wa.to_assignment();
  EXPECT_EQ(result[3], 2);
}

TEST(WorkingAssignmentDeath, ToAssignmentRejectsNilKeys) {
  const auto snap = make_snapshot(2, {1.0}, {0});
  WorkingAssignment wa(snap);
  wa.disassociate(0);
  EXPECT_DEATH((void)wa.to_assignment(), "postcondition");
}

TEST(WorkingAssignmentDeath, AssignOccupiedKeyRejected) {
  const auto snap = make_snapshot(2, {1.0}, {0});
  WorkingAssignment wa(snap);
  EXPECT_DEATH(wa.assign(0, 1), "precondition");
}

TEST(WorkingAssignment, BucketIntegrityUnderChurn) {
  const auto snap = testutil::random_zipf_snapshot(4, 500, 0.9, 77);
  WorkingAssignment wa(snap);
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto k = static_cast<KeyId>(rng.next_below(500));
    if (wa.dest(k) == kNilInstance) {
      wa.assign(k, static_cast<InstanceId>(rng.next_below(4)));
    } else if (rng.next_double() < 0.5) {
      wa.disassociate(k);
    } else {
      wa.move_back(k);
    }
  }
  // Invariant: per-instance bucket contents and loads agree with dest().
  for (InstanceId d = 0; d < 4; ++d) {
    Cost load = 0.0;
    for (const KeyId k : wa.keys_of(d)) {
      EXPECT_EQ(wa.dest(k), d);
      load += snap.cost[static_cast<std::size_t>(k)];
    }
    EXPECT_NEAR(load, wa.load(d), 1e-6);
  }
}

}  // namespace
}  // namespace skewless
