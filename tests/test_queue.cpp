#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace skewless {
namespace {

TEST(BoundedMpmcQueue, PushPopSingleThread) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedMpmcQueue, TryPushFailsWhenFull) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.try_pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedMpmcQueue, ForcePushBypassesCapacityButNotClose) {
  // Control-plane semantics (the threaded engine's interval seals): a
  // force_push succeeds on a FULL queue without blocking, keeps FIFO
  // order, and still fails once the queue is closed.
  BoundedMpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_TRUE(q.force_push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  q.close();
  EXPECT_FALSE(q.force_push(4));
}

TEST(BoundedMpmcQueue, CloseDrainsThenReturnsNullopt) {
  BoundedMpmcQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedMpmcQueue, CloseWakesBlockedConsumer) {
  BoundedMpmcQueue<int> q(2);
  std::thread consumer([&] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BoundedMpmcQueue, MultiProducerMultiConsumerConservation) {
  BoundedMpmcQueue<int> q(64);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;

  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        consumed_sum.fetch_add(*v, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long n = static_cast<long long>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

TEST(BoundedMpmcQueue, MoveOnlyPayload) {
  BoundedMpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(42)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(SpscRing, CapacityRoundsUp) {
  const SpscRing<int> ring(10);
  EXPECT_GE(ring.capacity(), 10u);
}

TEST(SpscRing, PushPopOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ring.try_pop().value(), i);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring(2);
  std::size_t pushed = 0;
  while (ring.try_push(1)) ++pushed;
  EXPECT_EQ(pushed, ring.capacity());
}

TEST(SpscRing, WrapAroundManyTimes) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    EXPECT_EQ(ring.try_pop().value(), round);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  SpscRing<int> ring(128);
  constexpr int kCount = 200'000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (ring.try_push(i)) ++i;
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < kCount) {
    if (auto v = ring.try_pop()) {
      EXPECT_EQ(*v, received);  // FIFO order preserved
      sum += *v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace skewless
