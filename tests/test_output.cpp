#include <gtest/gtest.h>

#include "common/log.h"
#include "common/table.h"

namespace skewless {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt(0.0, 3), "0.000");
}

TEST(ResultTable, CsvRoundTrip) {
  ResultTable table("t", {"a", "b"});
  table.add_row({"1", "x"});
  table.add_row({"2", "y"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,x\n2,y\n");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ResultTable, NumericRowFormatting) {
  ResultTable table("t", {"a", "b"});
  table.add_row_numeric({1.234, 5.678}, 1);
  EXPECT_EQ(table.to_csv(), "a,b\n1.2,5.7\n");
}

TEST(ResultTable, EmptyTableCsvIsHeaderOnly) {
  const ResultTable table("t", {"x"});
  EXPECT_EQ(table.to_csv(), "x\n");
}

TEST(ResultTableDeath, RowWidthMismatch) {
  ResultTable table("t", {"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "precondition");
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must not crash; output routing is to stderr.
  SKW_LOG_DEBUG("suppressed %d", 1);
  SKW_LOG_INFO("suppressed %s", "too");
  SKW_LOG_ERROR("emitted %d", 2);
  set_log_level(before);
}

TEST(Log, AllLevelsEmitWhenDebug) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  SKW_LOG_DEBUG("d");
  SKW_LOG_INFO("i");
  SKW_LOG_WARN("w");
  SKW_LOG_ERROR("e");
  set_log_level(before);
}

}  // namespace
}  // namespace skewless
