#include "engine/sim_engine.h"

#include <gtest/gtest.h>

#include "core/planners.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

/// Fixed-counts source for controlled experiments.
class FixedSource final : public WorkloadSource {
 public:
  explicit FixedSource(std::vector<std::uint64_t> counts)
      : counts_(std::move(counts)) {}
  [[nodiscard]] std::size_t num_keys() const override {
    return counts_.size();
  }
  [[nodiscard]] IntervalWorkload next_interval() override {
    return IntervalWorkload{counts_};
  }

 private:
  std::vector<std::uint64_t> counts_;
};

SimConfig small_config(InstanceId nd) {
  SimConfig cfg;
  cfg.num_instances = nd;
  cfg.interval_micros = 1'000'000;
  return cfg;
}

std::unique_ptr<Controller> make_controller(InstanceId nd,
                                            std::size_t num_keys,
                                            double theta_max,
                                            int window = 1) {
  ControllerConfig cfg;
  cfg.planner.theta_max = theta_max;
  cfg.planner.max_table_entries = 0;
  cfg.window = window;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(nd, 128, 5), 0),
      std::make_unique<MixedPlanner>(), cfg, num_keys);
}

TEST(SimEngine, UnderloadedSystemKeepsFullThroughput) {
  // 1000 tuples at 1 us each over 4 instances: far below capacity.
  SimEngine engine(small_config(4),
                   std::make_unique<UniformCostOperator>(1.0, 8.0),
                   std::make_unique<FixedSource>(
                       std::vector<std::uint64_t>(100, 10)),
                   RoutingMode::kHashOnly);
  const auto m = engine.step();
  EXPECT_DOUBLE_EQ(m.throughput_tps, m.offered_tps);
  EXPECT_GT(m.avg_latency_ms, 0.0);
  EXPECT_LT(m.avg_latency_ms, 1.0);
}

TEST(SimEngine, BottleneckInstanceThrottlesWholePipeline) {
  // One hot key carries all work under hashing: a single instance must
  // absorb everything, so alpha ~ 1/(rho of that instance).
  std::vector<std::uint64_t> counts(10, 0);
  counts[3] = 4'000'000;  // 4M tuples * 1us = 4s of work in a 1s interval
  SimEngine engine(small_config(4),
                   std::make_unique<UniformCostOperator>(1.0, 0.0),
                   std::make_unique<FixedSource>(counts),
                   RoutingMode::kHashOnly);
  const auto m = engine.step();
  EXPECT_NEAR(m.throughput_tps / m.offered_tps, 0.25, 0.01);
  EXPECT_GT(m.avg_latency_ms, 100.0);  // saturated queue
  EXPECT_NEAR(m.load_skewness, 4.0, 0.01);
}

TEST(SimEngine, ShuffleSpreadsPerfectly) {
  std::vector<std::uint64_t> counts(10, 0);
  counts[3] = 4'000'000;
  SimEngine engine(small_config(4),
                   std::make_unique<UniformCostOperator>(1.0, 0.0),
                   std::make_unique<FixedSource>(counts),
                   RoutingMode::kShuffle);
  const auto m = engine.step();
  EXPECT_DOUBLE_EQ(m.throughput_tps, m.offered_tps);
  EXPECT_NEAR(m.load_skewness, 1.0, 1e-9);
}

TEST(SimEngine, PkgSplitsHotKeyAcrossTwoInstances) {
  std::vector<std::uint64_t> counts(10, 0);
  counts[3] = 4'000'000;
  SimConfig cfg = small_config(4);
  SimEngine engine(cfg, std::make_unique<UniformCostOperator>(1.0, 0.0),
                   std::make_unique<FixedSource>(counts), RoutingMode::kPkg);
  const auto m = engine.step();
  // Two candidates share the hot key: skewness ~2 (plus merge overhead),
  // throughput ~0.5 of offered, and the merge period adds latency.
  EXPECT_GT(m.throughput_tps / m.offered_tps, 0.4);
  EXPECT_LE(m.throughput_tps / m.offered_tps, 0.55);
  EXPECT_GE(m.avg_latency_ms,
            static_cast<double>(cfg.pkg_merge_latency_us) / 1000.0);
}

TEST(SimEngine, ControllerRebalancesSkewAway) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 2000;
  opts.skew = 1.0;
  opts.tuples_per_interval = 1'000'000;
  opts.fluctuation = 0.0;
  SimEngine engine(small_config(8),
                   std::make_unique<UniformCostOperator>(1.0, 8.0),
                   std::make_unique<ZipfFluctuatingSource>(opts),
                   make_controller(8, 2000, 0.08));
  const auto first = engine.step();
  EXPECT_GT(first.max_theta, 0.08);  // hashing alone is imbalanced
  EXPECT_TRUE(first.migrated);
  // After the rebalance lands (one interval for the pause), the workload
  // is balanced and stays there.
  (void)engine.step();
  const auto later = engine.step();
  EXPECT_LE(later.max_theta, 0.08 + 1e-6);
  EXPECT_FALSE(later.migrated);
  EXPECT_DOUBLE_EQ(later.throughput_tps, later.offered_tps);
}

TEST(SimEngine, MigrationChargesPauseToInvolvedInstances) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 500;
  opts.skew = 1.2;
  opts.tuples_per_interval = 500'000;
  opts.fluctuation = 0.0;
  SimConfig cfg = small_config(4);
  cfg.migration_rtt_us = 50'000;  // big pause for visibility
  cfg.migration_bytes_per_sec = 1e6;
  SimEngine engine(cfg, std::make_unique<UniformCostOperator>(1.0, 64.0),
                   std::make_unique<ZipfFluctuatingSource>(opts),
                   make_controller(4, 500, 0.05));
  const auto first = engine.step();
  ASSERT_TRUE(first.migrated);
  EXPECT_GT(first.migration_bytes, 0.0);
  EXPECT_GT(first.migration_pct, 0.0);
  EXPECT_LE(first.migration_pct, 100.0);
  // The interval right after the migration absorbs the pause: latency is
  // elevated relative to steady state two intervals later.
  const auto during = engine.step();
  (void)engine.step();
  const auto steady = engine.step();
  EXPECT_GE(during.avg_latency_ms, steady.avg_latency_ms);
}

TEST(SimEngine, ScaleOutReducesPerInstanceWork) {
  std::vector<std::uint64_t> counts(1000, 100);
  SimEngine engine(small_config(4),
                   std::make_unique<UniformCostOperator>(1.0, 0.0),
                   std::make_unique<FixedSource>(counts),
                   RoutingMode::kShuffle);
  const auto before = engine.step();
  engine.add_instance();
  const auto after = engine.step();
  ASSERT_EQ(after.instance_work.size(), 5u);
  EXPECT_LT(after.instance_work[0], before.instance_work[0]);
}

TEST(SimEngine, SelfJoinCostGrowsWithWindowState) {
  // Same counts every interval; with w = 3 the in-window state grows for
  // two intervals, so per-interval work grows too, then plateaus.
  std::vector<std::uint64_t> counts(100, 100);
  SimConfig cfg = small_config(4);
  cfg.state_window = 3;
  SimEngine engine(cfg,
                   std::make_unique<SelfJoinCostOperator>(1.0, 16.0, 0.01),
                   std::make_unique<FixedSource>(counts),
                   RoutingMode::kShuffle);
  const auto m1 = engine.step();
  const auto m2 = engine.step();
  const auto m3 = engine.step();
  const auto m4 = engine.step();  // first interval with a full window
  const auto m5 = engine.step();
  const auto work = [](const IntervalMetrics& m) {
    double t = 0.0;
    for (const double w : m.instance_work) t += w;
    return t;
  };
  EXPECT_GT(work(m2), work(m1));
  EXPECT_GT(work(m3), work(m2));
  EXPECT_GT(work(m4), work(m3));
  EXPECT_NEAR(work(m5), work(m4), work(m4) * 0.01);  // window saturated
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 1000;
    opts.tuples_per_interval = 200'000;
    opts.fluctuation = 0.5;
    SimEngine engine(small_config(6),
                     std::make_unique<UniformCostOperator>(1.0, 8.0),
                     std::make_unique<ZipfFluctuatingSource>(opts),
                     make_controller(6, 1000, 0.08));
    double acc = 0.0;
    for (int i = 0; i < 10; ++i) acc += engine.step().throughput_tps;
    return acc;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace skewless
