// Randomized conformance tests for the compact-representation planner:
// on arbitrary snapshots it must produce exactly-valid plans (every key
// placed once, moves == delta, conservation) and stay within a bounded
// distance of the exact planner's balance quality.
#include <gtest/gtest.h>

#include "core/compact.h"
#include "core/planners.h"
#include "test_util.h"

namespace skewless {
namespace {

class CompactFuzzParam
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CompactFuzzParam, PlansAreExactlyValid) {
  const auto [seed, r] = GetParam();
  Xoshiro256 rng(seed);
  const auto nd = static_cast<InstanceId>(rng.next_between(2, 12));
  const auto num_keys = static_cast<std::size_t>(rng.next_between(50, 4000));
  const double skew = 0.3 + rng.next_double() * 0.9;
  auto snap = testutil::random_zipf_snapshot(nd, num_keys, skew, seed);
  // Randomly pre-route some keys (existing table entries).
  for (std::size_t k = 0; k < num_keys; ++k) {
    if (rng.next_double() < 0.15) {
      snap.current[k] = static_cast<InstanceId>(rng.next_below(
          static_cast<std::uint64_t>(nd)));
    }
  }
  snap.validate();

  PlannerConfig cfg;
  cfg.theta_max = 0.1;
  cfg.max_table_entries = rng.next_double() < 0.5
                              ? 0
                              : static_cast<std::size_t>(num_keys / 4);
  CompactMixedPlanner planner(r);
  const auto plan = planner.plan(snap, cfg);

  // Validity: every key assigned in range; moves match the delta.
  ASSERT_EQ(plan.assignment.size(), num_keys);
  std::size_t delta = 0;
  Bytes bytes = 0.0;
  for (std::size_t k = 0; k < num_keys; ++k) {
    ASSERT_GE(plan.assignment[k], 0);
    ASSERT_LT(plan.assignment[k], nd);
    if (plan.assignment[k] != snap.current[k]) {
      ++delta;
      bytes += snap.state[k];
    }
  }
  EXPECT_EQ(plan.moves.size(), delta);
  EXPECT_NEAR(plan.migration_bytes, bytes, 1e-6);

  // Conservation: total load under the plan equals the snapshot total.
  const auto loads = snap.loads_under(plan.assignment);
  Cost total = 0.0;
  for (const Cost l : loads) total += l;
  Cost expected = 0.0;
  for (const Cost c : snap.cost) expected += c;
  EXPECT_NEAR(total, expected, 1e-6);
}

TEST_P(CompactFuzzParam, BalanceTracksExactPlannerWithinSlack) {
  const auto [seed, r] = GetParam();
  const auto snap =
      testutil::random_zipf_snapshot(8, 3000, 0.9, seed ^ 0xf00d);
  PlannerConfig cfg;
  cfg.theta_max = 0.08;
  cfg.max_table_entries = 0;
  CompactMixedPlanner compact(r);
  MixedPlanner exact;
  const auto plan_compact = compact.plan(snap, cfg);
  const auto plan_exact = exact.plan(snap, cfg);
  // Compact may trail the exact planner by discretization error, bounded
  // well below the initial imbalance it is correcting.
  EXPECT_LE(plan_compact.achieved_theta,
            std::max(plan_exact.achieved_theta + 0.06, 0.13))
      << "seed=" << seed << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, CompactFuzzParam,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8),
                       ::testing::Values(0, 2, 4, 6)));

}  // namespace
}  // namespace skewless
