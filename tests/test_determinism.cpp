// Every planner must be a pure function of (snapshot, config): two
// invocations on identically-seeded inputs must produce byte-identical
// plans. Guards against unordered-container iteration, uninitialized
// reads, and hidden global state sneaking into planning decisions.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dkg.h"
#include "baselines/readj.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/compact.h"
#include "core/plan.h"
#include "core/planners.h"
#include "core/controller.h"
#include "engine/threaded_engine.h"
#include "net/net_engine.h"
#include "sketch/simd/sketch_kernels.h"
#include "sketch/sketch_stats_window.h"
#include "sketch/worker_sketch_slab.h"
#include "test_util.h"
#include "workload/adversarial.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

using testutil::random_zipf_snapshot;

// Serializes every deterministic field of a plan into a byte string.
// generation_micros is wall-clock and deliberately excluded.
std::string plan_bytes(const RebalancePlan& plan) {
  std::string out;
  const auto append = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  for (const InstanceId d : plan.assignment) append(&d, sizeof(d));
  for (const KeyMove& m : plan.moves) {
    append(&m.key, sizeof(m.key));
    append(&m.from, sizeof(m.from));
    append(&m.to, sizeof(m.to));
    append(&m.state_bytes, sizeof(m.state_bytes));
  }
  append(&plan.table_size, sizeof(plan.table_size));
  append(&plan.migration_bytes, sizeof(plan.migration_bytes));
  append(&plan.achieved_theta, sizeof(plan.achieved_theta));
  append(&plan.balanced, sizeof(plan.balanced));
  append(&plan.table_fits, sizeof(plan.table_fits));
  return out;
}

PlannerPtr make_planner(const std::string& which) {
  if (which == "mintable") return std::make_unique<MinTablePlanner>();
  if (which == "minmig") return std::make_unique<MinMigPlanner>();
  if (which == "mixed") return std::make_unique<MixedPlanner>();
  if (which == "mixedbf") return std::make_unique<MixedBfPlanner>(32);
  if (which == "noadjust") return std::make_unique<LlfdNoAdjustPlanner>();
  if (which == "compact") return std::make_unique<CompactMixedPlanner>(8);
  if (which == "dkg") return std::make_unique<DkgPlanner>();
  if (which == "readj") return std::make_unique<ReadjPlanner>();
  return nullptr;
}

class PlannerDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerDeterminism, ByteIdenticalPlansAcrossInvocations) {
  PlannerConfig config;
  config.theta_max = 0.08;
  config.max_table_entries = 150;
  for (std::uint64_t seed : {17u, 99u}) {
    const auto snap_a = random_zipf_snapshot(6, 800, 0.9, seed);
    const auto snap_b = random_zipf_snapshot(6, 800, 0.9, seed);
    // The seeded snapshot generator itself must be deterministic.
    ASSERT_EQ(snap_a.cost, snap_b.cost);
    ASSERT_EQ(snap_a.state, snap_b.state);
    ASSERT_EQ(snap_a.current, snap_b.current);

    // Fresh planner instances: no state may carry over between runs.
    auto first = make_planner(GetParam());
    auto second = make_planner(GetParam());
    ASSERT_NE(first, nullptr);
    const auto plan_a = first->plan(snap_a, config);
    const auto plan_b = second->plan(snap_b, config);
    EXPECT_EQ(plan_bytes(plan_a), plan_bytes(plan_b))
        << "planner " << first->name() << " diverged on seed " << seed;

    // Re-invoking the SAME instance must also reproduce the plan.
    const auto plan_c = first->plan(snap_a, config);
    EXPECT_EQ(plan_bytes(plan_a), plan_bytes(plan_c))
        << "planner " << first->name() << " not idempotent on seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, PlannerDeterminism,
                         ::testing::Values("mintable", "minmig", "mixed",
                                           "mixedbf", "noadjust", "compact",
                                           "dkg", "readj"));

// The compact planning path's correctness anchor: on a domain where every
// key is heavy (heavy_capacity >= |K|), the compact snapshot (heavy
// entries + cold residuals, here all-zero) must drive every planner to
// the SAME plan, byte for byte, as the dense snapshot — whether the dense
// view comes from the exact provider or from the sketch provider's
// synthesize_dense. All statistics are integer-valued so every
// accumulation below is exact in floating point.
class CompactDenseEquivalence : public ::testing::TestWithParam<const char*> {
};

TEST_P(CompactDenseEquivalence, FullCoverageCompactPlansAreByteIdentical) {
  constexpr std::size_t kKeys = 500;
  constexpr InstanceId kNd = 6;
  const ConsistentHashRing ring(kNd, 128, 0x5eed);

  // Seeded routing perturbation: every 9th key carries an explicit table
  // entry, so the cleaning/move-back phases have real work to disagree
  // on if the representations were not equivalent.
  std::vector<InstanceId> hash(kKeys), current(kKeys);
  std::vector<Cost> cost(kKeys);
  std::vector<Bytes> state(kKeys);
  std::vector<std::uint64_t> freq(kKeys);
  const ZipfDistribution zipf(kKeys, 1.0, true, 11);
  const auto counts = zipf.expected_counts(kKeys * 20);
  for (std::size_t k = 0; k < kKeys; ++k) {
    hash[k] = ring.owner(static_cast<KeyId>(k));
    current[k] = (k % 9 == 0) ? static_cast<InstanceId>((hash[k] + 1) % kNd)
                              : hash[k];
    freq[k] = counts[k] + 1;  // every key active: full promotion
    cost[k] = static_cast<Cost>(freq[k]);
    state[k] = 4.0 * static_cast<Bytes>(freq[k]);
  }

  StatsWindow exact(kKeys, 1);
  SketchStatsConfig scfg;
  scfg.heavy_capacity = 1024;     // >= |K|: Space-Saving is exact
  scfg.promote_fraction = 0.0;    // every active key promotes
  SketchStatsWindow sketch(kKeys, 1, scfg);
  // Interval 1 nominates (and exactly backfills) the heavy set; interval
  // 2 rolls the backfilled window slot out, leaving every heavy value
  // exactly equal to the dense provider's.
  for (int interval = 0; interval < 2; ++interval) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      const auto key = static_cast<KeyId>(k);
      exact.record(key, cost[k], state[k], freq[k], current[k]);
      sketch.record(key, cost[k], state[k], freq[k], current[k]);
    }
    exact.roll();
    sketch.roll();
  }
  ASSERT_EQ(sketch.heavy_count(), kKeys);

  const auto finish_dense = [&](PartitionSnapshot& snap) {
    snap.num_instances = kNd;
    snap.hash_dest = hash;
    snap.current = current;
  };
  PartitionSnapshot dense_e;
  exact.synthesize_dense(dense_e.cost, dense_e.state);
  finish_dense(dense_e);
  PartitionSnapshot dense_s;
  sketch.synthesize_dense(dense_s.cost, dense_s.state);
  finish_dense(dense_s);
  // With full coverage the two dense views must agree exactly — this is
  // what makes the three-way plan comparison below meaningful.
  ASSERT_EQ(dense_e.cost, dense_s.cost);
  ASSERT_EQ(dense_e.state, dense_s.state);

  PartitionSnapshot compact;
  compact.num_instances = kNd;
  sketch.synthesize_compact(kNd, compact.keys, compact.cost, compact.state,
                            compact.cold_cost, compact.cold_state);
  compact.total_keys = kKeys;
  ASSERT_EQ(compact.keys.size(), kKeys);
  compact.hash_dest.resize(kKeys);
  compact.current.resize(kKeys);
  for (std::size_t e = 0; e < kKeys; ++e) {
    compact.hash_dest[e] = hash[static_cast<std::size_t>(compact.keys[e])];
    compact.current[e] = current[static_cast<std::size_t>(compact.keys[e])];
  }
  compact.validate();
  for (const Cost c : compact.cold_cost) ASSERT_EQ(c, 0.0);
  for (const Bytes b : compact.cold_state) ASSERT_EQ(b, 0.0);

  PlannerConfig config;
  config.theta_max = 0.08;
  config.max_table_entries = 150;
  auto p_dense_e = make_planner(GetParam());
  auto p_dense_s = make_planner(GetParam());
  auto p_compact = make_planner(GetParam());
  ASSERT_NE(p_compact, nullptr);
  const auto bytes_e = plan_bytes(p_dense_e->plan(dense_e, config));
  const auto bytes_s = plan_bytes(p_dense_s->plan(dense_s, config));
  const auto bytes_c = plan_bytes(p_compact->plan(compact, config));
  EXPECT_EQ(bytes_e, bytes_s)
      << p_compact->name() << ": sketch dense view diverged from exact";
  EXPECT_EQ(bytes_e, bytes_c)
      << p_compact->name() << ": compact path diverged from dense path";
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, CompactDenseEquivalence,
                         ::testing::Values("mintable", "minmig", "mixed",
                                           "mixedbf", "noadjust", "compact",
                                           "dkg", "readj"));

TEST(Determinism, SeededXoshiroStreamsAreIdentical) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
  ASSERT_EQ(a.next_double(), b.next_double());
}

// The sketch statistics provider must be a pure function of (config,
// stream): identically-seeded instances fed the same stream produce
// byte-identical estimates — the same property the planner determinism
// tests above demand, one layer down.
TEST(Determinism, SeededSketchStatsWindowIsByteIdentical) {
  const auto feed = [](SketchStatsWindow& w) {
    const ZipfDistribution zipf(5000, 1.1, true, 9);
    Xoshiro256 rng(31);
    for (int interval = 0; interval < 3; ++interval) {
      for (int i = 0; i < 20'000; ++i) {
        const KeyId key = zipf.sample(rng);
        w.record(key, 1.5, 8.0);
      }
      w.roll();
    }
  };
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 128;
  SketchStatsWindow a(5000, 2, cfg);
  SketchStatsWindow b(5000, 2, cfg);
  feed(a);
  feed(b);

  ASSERT_EQ(a.heavy_count(), b.heavy_count());
  std::vector<Cost> cost_a, cost_b;
  std::vector<Bytes> state_a, state_b;
  a.synthesize_dense(cost_a, state_a);
  b.synthesize_dense(cost_b, state_b);
  ASSERT_EQ(cost_a.size(), cost_b.size());
  EXPECT_EQ(0, std::memcmp(cost_a.data(), cost_b.data(),
                           cost_a.size() * sizeof(Cost)));
  EXPECT_EQ(0, std::memcmp(state_a.data(), state_b.data(),
                           state_a.size() * sizeof(Bytes)));
  for (KeyId key = 0; key < 5000; ++key) {
    ASSERT_EQ(a.last_cost_of(key), b.last_cost_of(key));
    ASSERT_EQ(a.last_frequency_of(key), b.last_frequency_of(key));
    ASSERT_EQ(a.windowed_state_of(key), b.windowed_state_of(key));
  }
  EXPECT_EQ(a.total_windowed_state(), b.total_windowed_state());
}

// The interval-boundary merge must be a pure function of (worker
// streams, absorb order). Feeding the per-worker slabs in ANY order —
// simulating workers finishing in different orders — must leave the
// merged window byte-identical, because each slab's content depends only
// on its own stream and the driver always absorbs in worker-index order.
TEST(Determinism, WorkerSlabMergeIsByteIdenticalAcrossFinishOrders) {
  constexpr int kWorkers = 4;
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 64;

  // Worker w's deterministic stream: keys partitioned w-modulo.
  const auto feed_slab = [&](WorkerSketchSlab& slab, int w) {
    const ZipfDistribution zipf(8000, 1.1, true, 13);
    Xoshiro256 rng(100 + static_cast<std::uint64_t>(w));
    for (int i = 0; i < 15'000; ++i) {
      KeyId key = zipf.sample(rng);
      key = key - (key % kWorkers) + static_cast<KeyId>(w);  // w's partition
      slab.add(key, 2.0, 8.0, 1);
    }
  };

  const auto run_into = [&](SketchStatsWindow& window,
                            const std::vector<int>& finish_order) {
    std::vector<std::unique_ptr<WorkerSketchSlab>> slabs;
    for (int w = 0; w < kWorkers; ++w) {
      slabs.push_back(std::make_unique<WorkerSketchSlab>(cfg));
    }
    for (int interval = 0; interval < 3; ++interval) {
      // "Finish order" = the order worker streams are produced; the
      // absorb below always walks worker-index order, like the driver.
      for (const int w : finish_order) feed_slab(*slabs[w], w);
      for (int w = 0; w < kWorkers; ++w) {
        window.absorb(*slabs[w]);
        slabs[w]->clear();
      }
      window.roll();
      const auto heavy = window.heavy_keys();
      for (auto& slab : slabs) slab->set_heavy_keys(heavy);
    }
  };

  SketchStatsWindow wa(8000, 2, cfg), wb(8000, 2, cfg);
  run_into(wa, {0, 1, 2, 3});
  run_into(wb, {2, 3, 1, 0});
  ASSERT_EQ(wa.heavy_keys(), wb.heavy_keys());
  std::vector<Cost> cost_a, cost_b;
  std::vector<Bytes> state_a, state_b;
  wa.synthesize_dense(cost_a, state_a);
  wb.synthesize_dense(cost_b, state_b);
  ASSERT_EQ(cost_a.size(), cost_b.size());
  EXPECT_EQ(0, std::memcmp(cost_a.data(), cost_b.data(),
                           cost_a.size() * sizeof(Cost)));
  EXPECT_EQ(0, std::memcmp(state_a.data(), state_b.data(),
                           state_a.size() * sizeof(Bytes)));
  EXPECT_EQ(wa.total_windowed_state(), wb.total_windowed_state());
}

// Repeated-run determinism with REAL threads: two sketch-mode
// ThreadedEngine runs over the same seeded workload must synthesize
// byte-identical dense statistics, no matter how the OS schedules the
// workers — the slab contents depend only on the (deterministic)
// routing, and the boundary merge absorbs them in worker-index order.
TEST(Determinism, ThreadedSketchStatsAreByteIdenticalAcrossRuns) {
  const auto run = [](std::vector<Cost>& cost, std::vector<Bytes>& state) {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 20'000;
    opts.skew = 1.1;
    opts.tuples_per_interval = 60'000;
    opts.fluctuation = 0.5;
    opts.seed = 77;
    ZipfFluctuatingSource source(opts);

    ThreadedConfig cfg;
    cfg.stats_mode = StatsMode::kSketch;
    cfg.sketch.heavy_capacity = 256;
    ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                          /*num_workers_for_ring=*/4, /*ring_seed=*/3);
    engine.run(source, 3, /*seed=*/9);
    const auto* sketch =
        dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker());
    ASSERT_NE(sketch, nullptr);
    sketch->synthesize_dense(cost, state);
    const auto heavy = sketch->heavy_keys();
    engine.shutdown();
    ASSERT_GT(heavy.size(), 0u);
  };

  std::vector<Cost> cost_a, cost_b;
  std::vector<Bytes> state_a, state_b;
  run(cost_a, state_a);
  run(cost_b, state_b);
  ASSERT_EQ(cost_a.size(), cost_b.size());
  EXPECT_EQ(0, std::memcmp(cost_a.data(), cost_b.data(),
                           cost_a.size() * sizeof(Cost)));
  EXPECT_EQ(0, std::memcmp(state_a.data(), state_b.data(),
                           state_a.size() * sizeof(Bytes)));
}

// The asynchronous boundary merge must be invisible in the statistics:
// double-buffered runs (SealMsg swap + merge-thread absorb overlapping
// the next interval) must synthesize BYTE-IDENTICAL dense views, heavy
// sets and totals to the inline quiesce-and-merge baseline. Small batch
// sizes multiply the seal/merge interleavings the OS can produce (many
// in-flight messages per boundary), and several worker counts vary the
// slab/merge fan-in; every combination must collapse to the same bytes
// because the merge input is exactly the sealed epoch, absorbed in
// worker-index order, and workers install each epoch's heavy set at the
// same stream position the inline schedule would.
TEST(Determinism, DoubleBufferedMergeMatchesInlineBaseline) {
  const auto run = [](bool async_merge, InstanceId workers,
                      std::size_t batch, std::vector<Cost>& cost,
                      std::vector<Bytes>& state, std::vector<KeyId>& heavy,
                      Bytes& total_state) {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 10'000;
    opts.skew = 1.1;
    opts.tuples_per_interval = 30'000;
    opts.fluctuation = 0.5;
    opts.seed = 41;
    ZipfFluctuatingSource source(opts);

    ThreadedConfig cfg;
    cfg.stats_mode = StatsMode::kSketch;
    cfg.sketch.heavy_capacity = 128;
    cfg.batch_size = batch;
    cfg.async_merge = async_merge;
    ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(), workers,
                          /*ring_seed=*/3);
    engine.run(source, 3, /*seed=*/9);
    const auto* sketch =
        dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker());
    ASSERT_NE(sketch, nullptr);
    sketch->synthesize_dense(cost, state);
    heavy = sketch->heavy_keys();
    total_state = sketch->total_windowed_state();
    engine.shutdown();
  };

  for (const InstanceId workers : {2, 3, 4}) {
    for (const std::size_t batch : {16ul, 256ul}) {
      std::vector<Cost> cost_inline, cost_async;
      std::vector<Bytes> state_inline, state_async;
      std::vector<KeyId> heavy_inline, heavy_async;
      Bytes total_inline = 0.0, total_async = 0.0;
      run(false, workers, batch, cost_inline, state_inline, heavy_inline,
          total_inline);
      run(true, workers, batch, cost_async, state_async, heavy_async,
          total_async);
      ASSERT_GT(heavy_inline.size(), 0u);
      EXPECT_EQ(heavy_inline, heavy_async)
          << "workers=" << workers << " batch=" << batch;
      ASSERT_EQ(cost_inline.size(), cost_async.size());
      EXPECT_EQ(0, std::memcmp(cost_inline.data(), cost_async.data(),
                               cost_inline.size() * sizeof(Cost)))
          << "workers=" << workers << " batch=" << batch;
      EXPECT_EQ(0, std::memcmp(state_inline.data(), state_async.data(),
                               state_inline.size() * sizeof(Bytes)))
          << "workers=" << workers << " batch=" << batch;
      EXPECT_EQ(total_inline, total_async);
    }
  }
}

// Every adversarial attack is documented as a pure function of
// (options, interval index): equal options must emit byte-identical
// streams, and counts_for must be exactly what next_interval replays.
TEST(Determinism, AdversarialSourcesArePureFunctions) {
  for (const AttackKind attack : all_attacks()) {
    AdversarialSource::Options opts;
    opts.attack = attack;
    opts.num_keys = 2'000;
    opts.tuples_per_interval = 20'000;
    opts.seed = 23;
    opts.rotation_period = 2;
    opts.hot_keys_per_group = 16;
    opts.churn_active = 256;  // defaults assume a larger domain
    opts.churn_shift = 128;
    opts.sketch.epsilon = 0.05;  // coarse family: collisions exist
    AdversarialSource a(opts);
    AdversarialSource b(opts);
    for (std::int64_t i = 0; i < 6; ++i) {
      const auto counts = a.counts_for(i);
      EXPECT_EQ(counts.counts, b.counts_for(i).counts)
          << attack_name(attack) << " interval " << i;
      EXPECT_EQ(counts.counts, a.next_interval().counts)
          << attack_name(attack) << " interval " << i;
    }
    EXPECT_EQ(a.colliding_keys(), b.colliding_keys());
  }
}

// The decayed tracker must be schedule-independent: feeding a rotating
// adversarial stream through the driver's direct record path (what the
// sim engine does) and through per-worker slabs absorbed in worker-index
// order (what the threaded engine does) must leave byte-identical
// windows. Run in the eviction-free regime (heavy capacity ≥ |K|), where
// the SpaceSaving and MisraGries candidate trackers are both exact, so
// any divergence is a real scheduling leak — promotion, displacement and
// decayed demotion all run driver-side and must not care where the
// stream was aggregated.
TEST(Determinism, AdversarialDirectRecordMatchesSlabAbsorbWithDecay) {
  constexpr int kWorkers = 3;
  AdversarialSource::Options aopts;
  aopts.attack = AttackKind::kRotatingHotSet;
  aopts.num_keys = 512;
  aopts.tuples_per_interval = 20'000;
  aopts.seed = 5;
  aopts.rotation_period = 2;
  aopts.hot_groups = 4;
  aopts.hot_keys_per_group = 16;
  AdversarialSource source(aopts);

  SketchStatsConfig cfg;
  cfg.heavy_capacity = 600;  // ≥ |K|: candidate trackers are exact
  cfg.decay = true;
  cfg.decay_beta = 0.8;

  SketchStatsWindow direct(aopts.num_keys, 2, cfg);
  SketchStatsWindow merged(aopts.num_keys, 2, cfg);
  std::vector<std::unique_ptr<WorkerSketchSlab>> slabs;
  for (int w = 0; w < kWorkers; ++w) {
    slabs.push_back(std::make_unique<WorkerSketchSlab>(cfg));
  }

  for (std::int64_t interval = 0; interval < 8; ++interval) {
    const auto load = source.counts_for(interval);
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      if (load.counts[k] == 0) continue;
      const auto key = static_cast<KeyId>(k);
      const auto n = static_cast<double>(load.counts[k]);
      const int w = static_cast<int>(k % kWorkers);
      direct.record(key, n, 4.0 * n, load.counts[k],
                    static_cast<InstanceId>(w));
      slabs[static_cast<std::size_t>(w)]->add(key, n, 4.0 * n,
                                              load.counts[k]);
    }
    for (int w = 0; w < kWorkers; ++w) {
      merged.absorb(*slabs[static_cast<std::size_t>(w)],
                    static_cast<InstanceId>(w));
      slabs[static_cast<std::size_t>(w)]->clear();
    }
    direct.roll();
    merged.roll();
    const auto heavy = merged.heavy_keys();
    ASSERT_EQ(direct.heavy_keys(), heavy) << "interval " << interval;
    for (auto& slab : slabs) slab->set_heavy_keys(heavy);

    std::vector<Cost> cost_d, cost_m;
    std::vector<Bytes> state_d, state_m;
    direct.synthesize_dense(cost_d, state_d);
    merged.synthesize_dense(cost_m, state_m);
    ASSERT_EQ(cost_d.size(), cost_m.size());
    EXPECT_EQ(0, std::memcmp(cost_d.data(), cost_m.data(),
                             cost_d.size() * sizeof(Cost)))
        << "interval " << interval;
    EXPECT_EQ(0, std::memcmp(state_d.data(), state_m.data(),
                             state_d.size() * sizeof(Bytes)))
        << "interval " << interval;
    EXPECT_EQ(direct.total_windowed_state(), merged.total_windowed_state());
    EXPECT_EQ(direct.total_promotions(), merged.total_promotions());
    EXPECT_EQ(direct.total_demotions(), merged.total_demotions());
  }
}

// Real threads under adversarial load, decay enabled: the inline
// quiesce-and-merge schedule, the asynchronous double-buffered merge,
// and a repeat of the async run must all synthesize byte-identical
// statistics — hot-set jumps at interval boundaries (promotion bursts,
// displacement, demotion) are exactly where a schedule-dependent merge
// would first diverge.
TEST(Determinism, AdversarialThreadedRunsAreByteIdentical) {
  const auto run = [](AttackKind attack, bool async_merge,
                      std::vector<Cost>& cost, std::vector<Bytes>& state,
                      std::vector<KeyId>& heavy) {
    AdversarialSource::Options opts;
    opts.attack = attack;
    opts.num_keys = 4'000;
    opts.tuples_per_interval = 15'000;
    opts.seed = 31;
    opts.rotation_period = 1;  // a jump at every boundary
    opts.hot_keys_per_group = 32;
    AdversarialSource source(opts);

    ThreadedConfig cfg;
    cfg.stats_mode = StatsMode::kSketch;
    cfg.sketch.heavy_capacity = 128;
    cfg.sketch.decay = true;
    cfg.sketch.decay_beta = 0.8;
    cfg.batch_size = 32;
    cfg.async_merge = async_merge;
    ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                          /*num_workers_for_ring=*/3, /*ring_seed=*/3);
    engine.run(source, 4, /*seed=*/9);
    const auto* sketch =
        dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker());
    ASSERT_NE(sketch, nullptr);
    sketch->synthesize_dense(cost, state);
    heavy = sketch->heavy_keys();
    engine.shutdown();
  };

  for (const AttackKind attack :
       {AttackKind::kRotatingHotSet, AttackKind::kSkewFlip}) {
    std::vector<Cost> cost_inline, cost_async, cost_again;
    std::vector<Bytes> state_inline, state_async, state_again;
    std::vector<KeyId> heavy_inline, heavy_async, heavy_again;
    run(attack, false, cost_inline, state_inline, heavy_inline);
    run(attack, true, cost_async, state_async, heavy_async);
    run(attack, true, cost_again, state_again, heavy_again);
    ASSERT_GT(heavy_inline.size(), 0u);
    EXPECT_EQ(heavy_inline, heavy_async) << attack_name(attack);
    EXPECT_EQ(heavy_async, heavy_again) << attack_name(attack);
    ASSERT_EQ(cost_inline.size(), cost_async.size());
    EXPECT_EQ(0, std::memcmp(cost_inline.data(), cost_async.data(),
                             cost_inline.size() * sizeof(Cost)))
        << attack_name(attack);
    EXPECT_EQ(0, std::memcmp(cost_async.data(), cost_again.data(),
                             cost_async.size() * sizeof(Cost)))
        << attack_name(attack);
    EXPECT_EQ(0, std::memcmp(state_inline.data(), state_async.data(),
                             state_inline.size() * sizeof(Bytes)))
        << attack_name(attack);
    EXPECT_EQ(0, std::memcmp(state_async.data(), state_again.data(),
                             state_async.size() * sizeof(Bytes)))
        << attack_name(attack);
  }
}

// The distributed engine's headline contract: a net run (N forked worker
// PROCESSES over loopback sockets) is byte-identical to a ThreadedEngine
// run on the same seed — same plan history digest, same θ trajectory (bit
// patterns, not approximate), same state checksums and output counts. The
// chain that makes this true: identical tuple expansion/shuffle, identical
// per-batch fold order (both engines reserve the same scratch-map
// capacity), deterministic slab serialization, and summaries absorbed in
// worker-index order on both sides.
TEST(Determinism, NetRunIsByteIdenticalToThreadedRun) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork-based engine is not TSan-instrumentable";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "fork-based engine is not TSan-instrumentable";
#endif
#endif
  struct RunResult {
    std::vector<double> thetas;
    std::uint64_t plan_digest = 0;
    std::size_t rebalances = 0;
    std::uint64_t checksum = 0;
    std::size_t entries = 0;
    std::uint64_t processed = 0;
    std::uint64_t outputs = 0;
  };

  const InstanceId kWorkers = 3;
  const int kIntervals = 4;
  const auto make_source = [] {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 5'000;
    opts.skew = 1.1;
    opts.tuples_per_interval = 20'000;
    opts.fluctuation = 0.5;
    opts.seed = 77;
    return ZipfFluctuatingSource(opts);
  };
  const auto make_controller = [&](std::size_t num_keys) {
    ControllerConfig ccfg;
    ccfg.planner.theta_max = 0.08;
    ccfg.stats_mode = StatsMode::kSketch;
    ccfg.sketch.heavy_capacity = 256;
    return std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(kWorkers), 0),
        std::make_unique<MixedPlanner>(), ccfg, num_keys);
  };

  // Threaded run first, fully shut down (threads joined, engine
  // destroyed) BEFORE the net engine forks: fork-before-threads.
  RunResult threaded;
  {
    auto source = make_source();
    ThreadedConfig tcfg;
    tcfg.num_workers = kWorkers;
    tcfg.batch_size = 64;
    tcfg.stats_mode = StatsMode::kSketch;
    tcfg.sketch.heavy_capacity = 256;
    ThreadedEngine engine(tcfg, std::make_shared<WordCountLogic>(),
                          make_controller(source.num_keys()));
    const auto reports = engine.run(source, kIntervals, /*seed=*/9);
    for (const auto& r : reports) threaded.thetas.push_back(r.max_theta);
    threaded.plan_digest = engine.controller()->plan_history_digest();
    threaded.rebalances = engine.controller()->rebalance_count();
    engine.shutdown();
    threaded.checksum = engine.state_checksum();
    threaded.entries = engine.total_state_entries();
    threaded.processed = engine.total_processed();
    threaded.outputs = engine.total_output_tuples();
  }

  RunResult net;
  {
    auto source = make_source();
    NetConfig ncfg;
    ncfg.batch_size = 64;
    NetEngine engine(ncfg, std::make_shared<WordCountLogic>(),
                     make_controller(source.num_keys()));
    const auto reports = engine.run(source, kIntervals, /*seed=*/9);
    ASSERT_TRUE(engine.ok()) << engine.error();
    for (const auto& r : reports) net.thetas.push_back(r.max_theta);
    net.plan_digest = engine.controller()->plan_history_digest();
    net.rebalances = engine.controller()->rebalance_count();
    engine.shutdown();
    ASSERT_TRUE(engine.ok()) << engine.error();
    net.checksum = engine.state_checksum();
    net.entries = engine.total_state_entries();
    net.processed = engine.total_processed();
    net.outputs = engine.total_output_tuples();
  }

  ASSERT_GT(threaded.rebalances, 0u);
  EXPECT_EQ(threaded.rebalances, net.rebalances);
  EXPECT_EQ(threaded.plan_digest, net.plan_digest);
  ASSERT_EQ(threaded.thetas.size(), net.thetas.size());
  // Bit-pattern equality, not EXPECT_DOUBLE_EQ: the contract is
  // byte-identical, and θ is a quotient of sketch-derived sums.
  EXPECT_EQ(0, std::memcmp(threaded.thetas.data(), net.thetas.data(),
                           threaded.thetas.size() * sizeof(double)));
  EXPECT_EQ(threaded.checksum, net.checksum);
  EXPECT_EQ(threaded.entries, net.entries);
  EXPECT_EQ(threaded.processed, net.processed);
  EXPECT_EQ(threaded.outputs, net.outputs);
}

// The sharded controller's headline contract, part 1: a shards=1 run is
// BYTE-identical to the legacy single-window controller (shards=0) — the
// ShardedSketchStats S=1 paths all short-circuit to the one window, the
// ShardedWorkerSlab forwards to its single section's prefetch-pipelined
// fold, so plan-history digest, θ bit patterns, state checksums and
// output counts all match exactly. Same harness as the net-vs-threaded
// byte-identity test above.
TEST(Determinism, ShardedPlanMatchesSingleController) {
  struct RunResult {
    std::vector<double> thetas;
    std::uint64_t plan_digest = 0;
    std::size_t rebalances = 0;
    std::uint64_t checksum = 0;
    std::uint64_t processed = 0;
    std::uint64_t outputs = 0;
  };
  const InstanceId kWorkers = 3;
  const int kIntervals = 4;
  const auto run = [&](std::size_t shards) {
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 5'000;
    opts.skew = 1.1;
    opts.tuples_per_interval = 20'000;
    opts.fluctuation = 0.5;
    opts.seed = 77;
    ZipfFluctuatingSource source(opts);

    ControllerConfig ccfg;
    ccfg.planner.theta_max = 0.08;
    ccfg.stats_mode = StatsMode::kSketch;
    ccfg.sketch.heavy_capacity = 256;
    ccfg.shards = shards;
    auto controller = std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(kWorkers), 0),
        std::make_unique<MixedPlanner>(), ccfg, source.num_keys());

    ThreadedConfig tcfg;
    tcfg.num_workers = kWorkers;
    tcfg.batch_size = 64;
    tcfg.stats_mode = StatsMode::kSketch;
    tcfg.sketch.heavy_capacity = 256;
    ThreadedEngine engine(tcfg, std::make_shared<WordCountLogic>(),
                          std::move(controller));
    const auto reports = engine.run(source, kIntervals, /*seed=*/9);
    RunResult result;
    for (const auto& r : reports) result.thetas.push_back(r.max_theta);
    result.plan_digest = engine.controller()->plan_history_digest();
    result.rebalances = engine.controller()->rebalance_count();
    engine.shutdown();
    result.checksum = engine.state_checksum();
    result.processed = engine.total_processed();
    result.outputs = engine.total_output_tuples();
    return result;
  };

  const RunResult single = run(0);
  const RunResult sharded = run(1);
  ASSERT_GT(single.rebalances, 0u);
  EXPECT_EQ(single.rebalances, sharded.rebalances);
  EXPECT_EQ(single.plan_digest, sharded.plan_digest);
  ASSERT_EQ(single.thetas.size(), sharded.thetas.size());
  // Bit-pattern equality, not EXPECT_DOUBLE_EQ — the contract is
  // byte-identical.
  EXPECT_EQ(0, std::memcmp(single.thetas.data(), sharded.thetas.data(),
                           single.thetas.size() * sizeof(double)));
  EXPECT_EQ(single.checksum, sharded.checksum);
  EXPECT_EQ(single.processed, sharded.processed);
  EXPECT_EQ(single.outputs, sharded.outputs);
}

// Part 2: shards ∈ {2, 4, 8} plan-EQUIVALENCE on identical streams, in
// the regime where sharding is provably exact: zero state bytes (the
// windowed-state backfill is a Count-Min estimate whose value depends on
// sketch width, which differs per shard count — zero mass estimates to
// zero at every width), eviction-free candidate capacity (per-shard
// Space-Saving never evicts, so counts are exact and promotion backfills
// the exact recorded mass), a promotion threshold low enough that every
// observed key promotes regardless of the per-shard vs global decayed
// total, and integer costs (sums of small integers are exact doubles in
// ANY accumulation order, so the shard-order residual summation cannot
// drift). Under those conditions every shard count must produce the same
// plan history — same digests, same θ bits.
TEST(Determinism, ShardedPlanEquivalenceAcrossShardCounts) {
  struct RunResult {
    std::vector<double> thetas;
    std::uint64_t plan_digest = 0;
    std::size_t rebalances = 0;
  };
  constexpr std::size_t kKeys = 512;
  constexpr int kIntervals = 6;
  constexpr int kTuplesPerInterval = 20'000;
  const auto run = [&](std::size_t shards) {
    ControllerConfig ccfg;
    ccfg.planner.theta_max = 0.05;
    ccfg.stats_mode = StatsMode::kSketch;
    // Eviction-free at every shard count: ⌈4096/8⌉ = 512 ≥ the whole
    // domain, so no shard's tracker can ever evict.
    ccfg.sketch.heavy_capacity = 4096;
    ccfg.sketch.promote_fraction = 1e-9;
    ccfg.shards = shards;
    Controller controller(AssignmentFunction(ConsistentHashRing(4), 0),
                          std::make_unique<MixedPlanner>(), ccfg, kKeys);

    ZipfDistribution zipf(kKeys, 1.3, true, 5);
    Xoshiro256 rng(123);
    RunResult result;
    for (int interval = 0; interval < kIntervals; ++interval) {
      for (int t = 0; t < kTuplesPerInterval; ++t) {
        const KeyId key = static_cast<KeyId>(zipf.sample(rng));
        const InstanceId dest = controller.assignment()(key);
        controller.record(key, /*cost=*/1.0, /*state_bytes=*/0.0,
                          /*frequency=*/1, dest);
      }
      (void)controller.end_interval();
      result.thetas.push_back(controller.last_observed_theta());
    }
    result.plan_digest = controller.plan_history_digest();
    result.rebalances = controller.rebalance_count();
    return result;
  };

  const RunResult base = run(1);
  ASSERT_GT(base.rebalances, 0u);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    const RunResult sharded = run(shards);
    EXPECT_EQ(base.rebalances, sharded.rebalances) << "shards=" << shards;
    EXPECT_EQ(base.plan_digest, sharded.plan_digest) << "shards=" << shards;
    ASSERT_EQ(base.thetas.size(), sharded.thetas.size());
    EXPECT_EQ(0, std::memcmp(base.thetas.data(), sharded.thetas.data(),
                             base.thetas.size() * sizeof(double)))
        << "shards=" << shards;
  }
}

// The SIMD dispatch must be INVISIBLE in every deterministic output: a
// full threaded controller run under the default (best-supported) kernel
// tier must match a forced-scalar run bit for bit — plan history digest,
// θ bit patterns, state checksums, output counts. This is the end-to-end
// closure of the per-kernel bit-identity fuzz in test_simd_kernels: if
// any vector kernel re-associated a floating-point sum or perturbed a
// hash, it would surface here as a digest split. On hosts whose best
// tier IS scalar the two runs are trivially equal and the test still
// passes (it proves dispatch stability, not vectorization).
TEST(Determinism, SimdScalarMatchesDefaultDispatch) {
  struct RunResult {
    std::vector<double> thetas;
    std::uint64_t plan_digest = 0;
    std::size_t rebalances = 0;
    std::uint64_t checksum = 0;
    std::size_t entries = 0;
    std::uint64_t processed = 0;
    std::uint64_t outputs = 0;
  };

  const InstanceId kWorkers = 3;
  const int kIntervals = 4;
  const auto run = [&](simd::KernelTier tier) {
    simd::set_active_tier(tier);
    ZipfFluctuatingSource::Options opts;
    opts.num_keys = 5'000;
    opts.skew = 1.1;
    opts.tuples_per_interval = 20'000;
    opts.fluctuation = 0.5;
    opts.seed = 77;
    ZipfFluctuatingSource source(opts);

    ControllerConfig ccfg;
    ccfg.planner.theta_max = 0.08;
    ccfg.stats_mode = StatsMode::kSketch;
    ccfg.sketch.heavy_capacity = 256;
    auto controller = std::make_unique<Controller>(
        AssignmentFunction(ConsistentHashRing(kWorkers), 0),
        std::make_unique<MixedPlanner>(), ccfg, source.num_keys());

    ThreadedConfig tcfg;
    tcfg.num_workers = kWorkers;
    tcfg.batch_size = 64;
    tcfg.stats_mode = StatsMode::kSketch;
    tcfg.sketch.heavy_capacity = 256;
    ThreadedEngine engine(tcfg, std::make_shared<WordCountLogic>(),
                          std::move(controller));
    const auto reports = engine.run(source, kIntervals, /*seed=*/9);
    RunResult result;
    for (const auto& r : reports) result.thetas.push_back(r.max_theta);
    result.plan_digest = engine.controller()->plan_history_digest();
    result.rebalances = engine.controller()->rebalance_count();
    engine.shutdown();
    result.checksum = engine.state_checksum();
    result.entries = engine.total_state_entries();
    result.processed = engine.total_processed();
    result.outputs = engine.total_output_tuples();
    return result;
  };

  const RunResult vector = run(simd::max_supported_tier());
  const RunResult scalar = run(simd::KernelTier::kScalar);
  simd::set_active_tier(simd::default_tier());

  ASSERT_GT(vector.rebalances, 0u);
  EXPECT_EQ(scalar.rebalances, vector.rebalances);
  EXPECT_EQ(scalar.plan_digest, vector.plan_digest);
  ASSERT_EQ(scalar.thetas.size(), vector.thetas.size());
  // Bit-pattern equality, not EXPECT_DOUBLE_EQ: the contract is
  // byte-identical, and θ is a quotient of sketch-derived sums.
  EXPECT_EQ(0, std::memcmp(scalar.thetas.data(), vector.thetas.data(),
                           scalar.thetas.size() * sizeof(double)));
  EXPECT_EQ(scalar.checksum, vector.checksum);
  EXPECT_EQ(scalar.entries, vector.entries);
  EXPECT_EQ(scalar.processed, vector.processed);
  EXPECT_EQ(scalar.outputs, vector.outputs);
}

TEST(Determinism, SeededZipfSamplesAreIdentical) {
  const ZipfDistribution zipf_a(500, 0.9, true, 7);
  const ZipfDistribution zipf_b(500, 0.9, true, 7);
  EXPECT_EQ(zipf_a.expected_counts(5000), zipf_b.expected_counts(5000));
  Xoshiro256 rng_a(42);
  Xoshiro256 rng_b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf_a.sample(rng_a), zipf_b.sample(rng_b));
  }
}

}  // namespace
}  // namespace skewless
