// Every planner must be a pure function of (snapshot, config): two
// invocations on identically-seeded inputs must produce byte-identical
// plans. Guards against unordered-container iteration, uninitialized
// reads, and hidden global state sneaking into planning decisions.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dkg.h"
#include "baselines/readj.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/compact.h"
#include "core/plan.h"
#include "core/planners.h"
#include "sketch/sketch_stats_window.h"
#include "test_util.h"

namespace skewless {
namespace {

using testutil::random_zipf_snapshot;

// Serializes every deterministic field of a plan into a byte string.
// generation_micros is wall-clock and deliberately excluded.
std::string plan_bytes(const RebalancePlan& plan) {
  std::string out;
  const auto append = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  for (const InstanceId d : plan.assignment) append(&d, sizeof(d));
  for (const KeyMove& m : plan.moves) {
    append(&m.key, sizeof(m.key));
    append(&m.from, sizeof(m.from));
    append(&m.to, sizeof(m.to));
    append(&m.state_bytes, sizeof(m.state_bytes));
  }
  append(&plan.table_size, sizeof(plan.table_size));
  append(&plan.migration_bytes, sizeof(plan.migration_bytes));
  append(&plan.achieved_theta, sizeof(plan.achieved_theta));
  append(&plan.balanced, sizeof(plan.balanced));
  append(&plan.table_fits, sizeof(plan.table_fits));
  return out;
}

PlannerPtr make_planner(const std::string& which) {
  if (which == "mintable") return std::make_unique<MinTablePlanner>();
  if (which == "minmig") return std::make_unique<MinMigPlanner>();
  if (which == "mixed") return std::make_unique<MixedPlanner>();
  if (which == "mixedbf") return std::make_unique<MixedBfPlanner>(32);
  if (which == "noadjust") return std::make_unique<LlfdNoAdjustPlanner>();
  if (which == "compact") return std::make_unique<CompactMixedPlanner>(8);
  if (which == "dkg") return std::make_unique<DkgPlanner>();
  if (which == "readj") return std::make_unique<ReadjPlanner>();
  return nullptr;
}

class PlannerDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerDeterminism, ByteIdenticalPlansAcrossInvocations) {
  PlannerConfig config;
  config.theta_max = 0.08;
  config.max_table_entries = 150;
  for (std::uint64_t seed : {17u, 99u}) {
    const auto snap_a = random_zipf_snapshot(6, 800, 0.9, seed);
    const auto snap_b = random_zipf_snapshot(6, 800, 0.9, seed);
    // The seeded snapshot generator itself must be deterministic.
    ASSERT_EQ(snap_a.cost, snap_b.cost);
    ASSERT_EQ(snap_a.state, snap_b.state);
    ASSERT_EQ(snap_a.current, snap_b.current);

    // Fresh planner instances: no state may carry over between runs.
    auto first = make_planner(GetParam());
    auto second = make_planner(GetParam());
    ASSERT_NE(first, nullptr);
    const auto plan_a = first->plan(snap_a, config);
    const auto plan_b = second->plan(snap_b, config);
    EXPECT_EQ(plan_bytes(plan_a), plan_bytes(plan_b))
        << "planner " << first->name() << " diverged on seed " << seed;

    // Re-invoking the SAME instance must also reproduce the plan.
    const auto plan_c = first->plan(snap_a, config);
    EXPECT_EQ(plan_bytes(plan_a), plan_bytes(plan_c))
        << "planner " << first->name() << " not idempotent on seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, PlannerDeterminism,
                         ::testing::Values("mintable", "minmig", "mixed",
                                           "mixedbf", "noadjust", "compact",
                                           "dkg", "readj"));

TEST(Determinism, SeededXoshiroStreamsAreIdentical) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
  ASSERT_EQ(a.next_double(), b.next_double());
}

// The sketch statistics provider must be a pure function of (config,
// stream): identically-seeded instances fed the same stream produce
// byte-identical estimates — the same property the planner determinism
// tests above demand, one layer down.
TEST(Determinism, SeededSketchStatsWindowIsByteIdentical) {
  const auto feed = [](SketchStatsWindow& w) {
    const ZipfDistribution zipf(5000, 1.1, true, 9);
    Xoshiro256 rng(31);
    for (int interval = 0; interval < 3; ++interval) {
      for (int i = 0; i < 20'000; ++i) {
        const KeyId key = zipf.sample(rng);
        w.record(key, 1.5, 8.0);
      }
      w.roll();
    }
  };
  SketchStatsConfig cfg;
  cfg.heavy_capacity = 128;
  SketchStatsWindow a(5000, 2, cfg);
  SketchStatsWindow b(5000, 2, cfg);
  feed(a);
  feed(b);

  ASSERT_EQ(a.heavy_count(), b.heavy_count());
  std::vector<Cost> cost_a, cost_b;
  std::vector<Bytes> state_a, state_b;
  a.synthesize_dense(cost_a, state_a);
  b.synthesize_dense(cost_b, state_b);
  ASSERT_EQ(cost_a.size(), cost_b.size());
  EXPECT_EQ(0, std::memcmp(cost_a.data(), cost_b.data(),
                           cost_a.size() * sizeof(Cost)));
  EXPECT_EQ(0, std::memcmp(state_a.data(), state_b.data(),
                           state_a.size() * sizeof(Bytes)));
  for (KeyId key = 0; key < 5000; ++key) {
    ASSERT_EQ(a.last_cost_of(key), b.last_cost_of(key));
    ASSERT_EQ(a.last_frequency_of(key), b.last_frequency_of(key));
    ASSERT_EQ(a.windowed_state_of(key), b.windowed_state_of(key));
  }
  EXPECT_EQ(a.total_windowed_state(), b.total_windowed_state());
}

TEST(Determinism, SeededZipfSamplesAreIdentical) {
  const ZipfDistribution zipf_a(500, 0.9, true, 7);
  const ZipfDistribution zipf_b(500, 0.9, true, 7);
  EXPECT_EQ(zipf_a.expected_counts(5000), zipf_b.expected_counts(5000));
  Xoshiro256 rng_a(42);
  Xoshiro256 rng_b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf_a.sample(rng_a), zipf_b.sample(rng_b));
  }
}

}  // namespace
}  // namespace skewless
