// Edge-case and failure-injection coverage across modules: degenerate
// domains, bound violations, scale-out corner cases, generator cadence.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/planners.h"
#include "engine/sim_engine.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

using testutil::make_snapshot;

TEST(EdgeCases, SingleInstanceNeverRebalances) {
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.0;
  Controller ctrl(AssignmentFunction(ConsistentHashRing(1), 0),
                  std::make_unique<MixedPlanner>(), cfg, 10);
  for (KeyId k = 0; k < 10; ++k) ctrl.record(k, 100.0, 1.0);
  // One instance: theta is 0 by definition; no trigger.
  EXPECT_FALSE(ctrl.end_interval().has_value());
  EXPECT_EQ(ctrl.last_observed_theta(), 0.0);
}

TEST(EdgeCases, EmptyIntervalNoTrigger) {
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.01;
  Controller ctrl(AssignmentFunction(ConsistentHashRing(4), 0),
                  std::make_unique<MixedPlanner>(), cfg, 100);
  EXPECT_FALSE(ctrl.end_interval().has_value());  // zero load everywhere
}

TEST(EdgeCases, PlannerOnSingleKeyDomain) {
  const auto snap = make_snapshot(3, {42.0}, {0});
  MixedPlanner planner;
  PlannerConfig cfg;
  cfg.theta_max = 0.0;
  const auto plan = planner.plan(snap, cfg);
  ASSERT_EQ(plan.assignment.size(), 1u);
  // One key cannot be balanced across three instances; planner must not
  // crash nor lose the key.
  EXPECT_GE(plan.assignment[0], 0);
  EXPECT_LT(plan.assignment[0], 3);
}

TEST(EdgeCases, AllZeroCostKeys) {
  const auto snap = make_snapshot(4, std::vector<Cost>(50, 0.0),
                                  std::vector<InstanceId>(50, 0));
  MixedPlanner planner;
  PlannerConfig cfg;
  cfg.theta_max = 0.05;
  const auto plan = planner.plan(snap, cfg);
  EXPECT_TRUE(plan.moves.empty());  // nothing to balance
  EXPECT_EQ(plan.achieved_theta, 0.0);
}

TEST(EdgeCases, MixedDegeneratesGracefullyWhenBoundImpossible) {
  // Needs ~half the keys routed explicitly, but Amax = 1: Mixed must
  // terminate (degenerating to full cleaning) and flag the bound miss.
  const std::size_t n = 60;
  std::vector<Cost> cost(n, 1.0);
  std::vector<InstanceId> current(n, 0);
  const auto snap = make_snapshot(2, cost, current);
  MixedPlanner planner;
  PlannerConfig cfg;
  cfg.theta_max = 0.01;
  cfg.max_table_entries = 1;
  const auto plan = planner.plan(snap, cfg);
  EXPECT_TRUE(plan.balanced);
  EXPECT_FALSE(plan.table_fits);  // honest about the bound violation
}

TEST(EdgeCases, ControllerHonorsUnboundedAfterBoundedPlans) {
  // Repeated rebalances with a bound never corrupt the assignment: every
  // key remains routable and loads conserve.
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.05;
  cfg.planner.max_table_entries = 8;
  Controller ctrl(AssignmentFunction(ConsistentHashRing(3), 8),
                  std::make_unique<MixedPlanner>(), cfg, 64);
  Xoshiro256 rng(3);
  for (int interval = 0; interval < 6; ++interval) {
    for (KeyId k = 0; k < 64; ++k) {
      ctrl.record(k, 1.0 + static_cast<double>(rng.next_below(20)), 4.0);
    }
    ctrl.end_interval();
    for (KeyId k = 0; k < 64; ++k) {
      const InstanceId d = ctrl.assignment()(k);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, 3);
    }
  }
}

TEST(EdgeCases, RepeatedScaleOutKeepsEveryKeyRoutable) {
  ControllerConfig cfg;
  cfg.planner.theta_max = 0.1;
  Controller ctrl(AssignmentFunction(ConsistentHashRing(2), 0),
                  std::make_unique<MixedPlanner>(), cfg, 200);
  for (int round = 0; round < 5; ++round) {
    ctrl.add_instance();
    for (KeyId k = 0; k < 200; ++k) ctrl.record(k, 1.0, 1.0);
    ctrl.end_interval();
  }
  EXPECT_EQ(ctrl.num_instances(), 7);
  for (KeyId k = 0; k < 200; ++k) {
    const InstanceId d = ctrl.assignment()(k);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 7);
  }
}

TEST(EdgeCases, FluctuateEveryCadence) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 500;
  opts.tuples_per_interval = 20'000;
  opts.fluctuation = 0.5;
  opts.fluctuate_every = 3;
  ZipfFluctuatingSource source(opts);
  const auto a = source.next_interval();
  const auto b = source.next_interval();
  const auto c = source.next_interval();
  const auto d = source.next_interval();  // first change lands here
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(b.counts, c.counts);
  EXPECT_NE(c.counts, d.counts);
}

TEST(EdgeCases, SimEnginePkgScaleOut) {
  class FixedSource final : public WorkloadSource {
   public:
    explicit FixedSource(std::size_t n) : counts_(n, 50) {}
    [[nodiscard]] std::size_t num_keys() const override {
      return counts_.size();
    }
    [[nodiscard]] IntervalWorkload next_interval() override {
      return IntervalWorkload{counts_};
    }

   private:
    std::vector<std::uint64_t> counts_;
  };
  SimConfig cfg;
  cfg.num_instances = 3;
  SimEngine engine(cfg, std::make_unique<UniformCostOperator>(1.0, 4.0),
                   std::make_unique<FixedSource>(200), RoutingMode::kPkg);
  (void)engine.step();
  engine.add_instance();
  const auto m = engine.step();
  EXPECT_EQ(m.instance_work.size(), 4u);
  EXPECT_DOUBLE_EQ(m.throughput_tps, m.offered_tps);
}

TEST(EdgeCasesDeath, RingRefusesToRemoveLastInstance) {
  ConsistentHashRing ring(1);
  EXPECT_DEATH(ring.remove_last_instance(), "precondition");
}

TEST(EdgeCasesDeath, ZipfRejectsEmptyDomain) {
  EXPECT_DEATH(ZipfDistribution(0, 0.85), "precondition");
}

TEST(EdgeCasesDeath, HistogramStyleDegenerateSnapshot) {
  PartitionSnapshot snap;
  snap.num_instances = 0;  // invalid
  EXPECT_DEATH(snap.validate(), "precondition");
}

}  // namespace
}  // namespace skewless
