#include "core/plan.h"

#include <gtest/gtest.h>

#include "core/llfd.h"
#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;

PlannerConfig cfg_with(double theta, std::size_t amax = 0) {
  PlannerConfig cfg;
  cfg.theta_max = theta;
  cfg.max_table_entries = amax;
  return cfg;
}

TEST(FinalizePlan, IdentityAssignmentHasNoMoves) {
  const auto snap = make_snapshot(2, {1.0, 2.0}, {0, 1});
  const auto plan = finalize_plan(snap, snap.current, cfg_with(1.0));
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.migration_bytes, 0.0);
  EXPECT_EQ(plan.table_size, 0u);
  EXPECT_TRUE(plan.table_fits);
}

TEST(FinalizePlan, MovesCarryStateSizes) {
  const auto snap =
      make_snapshot(2, {1.0, 2.0}, {0, 1}, /*state=*/{10.0, 20.0});
  std::vector<InstanceId> after = {1, 0};
  const auto plan = finalize_plan(snap, after, cfg_with(1.0));
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_EQ(plan.migration_bytes, 30.0);
  EXPECT_EQ(plan.moves[0].state_bytes, 10.0);
  EXPECT_EQ(plan.moves[0].from, 0);
  EXPECT_EQ(plan.moves[0].to, 1);
}

TEST(FinalizePlan, TableSizeRelativeToHash) {
  // hash = current = {0, 1}; move both away -> two implied entries.
  const auto snap = make_snapshot(2, {1.0, 2.0}, {0, 1});
  const auto plan =
      finalize_plan(snap, std::vector<InstanceId>{1, 0}, cfg_with(1.0));
  EXPECT_EQ(plan.table_size, 2u);
}

TEST(FinalizePlan, BalancedFlagUsesThetaMax) {
  const auto snap = make_snapshot(2, {6.0, 4.0}, {0, 1});
  // theta of {6,4} = 0.2.
  EXPECT_TRUE(finalize_plan(snap, snap.current, cfg_with(0.2)).balanced);
  EXPECT_FALSE(finalize_plan(snap, snap.current, cfg_with(0.19)).balanced);
}

TEST(FinalizePlan, TableFitsAgainstBound) {
  const auto snap = make_snapshot(2, {1.0, 1.0, 1.0}, {0, 0, 0});
  std::vector<InstanceId> after = {1, 1, 0};
  EXPECT_FALSE(finalize_plan(snap, after, cfg_with(1.0, 1)).table_fits);
  EXPECT_TRUE(finalize_plan(snap, after, cfg_with(1.0, 2)).table_fits);
  EXPECT_TRUE(finalize_plan(snap, after, cfg_with(1.0, 0)).table_fits);
}

TEST(FinalizePlanDeath, WrongAssignmentSizeRejected) {
  const auto snap = make_snapshot(2, {1.0, 2.0}, {0, 1});
  EXPECT_DEATH(
      (void)finalize_plan(snap, std::vector<InstanceId>{0}, cfg_with(1.0)),
      "precondition");
}

TEST(RebalanceTwoSided, RepairsUnderloadBeyondLlfd) {
  // 200 unit keys all hashed onto two of three instances, third empty.
  // Plain overload trimming to Lmax leaves the third underloaded; the
  // refinement rounds must close the gap to near-perfect thirds.
  const std::size_t n = 200;
  std::vector<Cost> cost(n, 1.0);
  std::vector<InstanceId> current(n);
  for (std::size_t k = 0; k < n; ++k) current[k] = k % 2 == 0 ? 0 : 1;
  const auto snap = make_snapshot(3, cost, current);

  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  rebalance_two_sided(wa, psi, /*theta_max=*/0.05);
  const Cost avg = snap.average_load();
  for (InstanceId d = 0; d < 3; ++d) {
    EXPECT_NEAR(wa.load(d), avg, 0.05 * avg + 1.0) << "instance " << d;
  }
}

TEST(RebalanceTwoSided, GranularityLimitedGivesUpGracefully) {
  // Two giant keys and one instance: nothing to refine; must terminate
  // without violating invariants.
  const auto snap = make_snapshot(3, {100.0, 100.0}, {0, 0});
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  rebalance_two_sided(wa, psi, 0.0);
  // Two keys across three instances: one instance stays empty; loads
  // conserved.
  Cost total = 0.0;
  for (InstanceId d = 0; d < 3; ++d) total += wa.load(d);
  EXPECT_EQ(total, 200.0);
}

}  // namespace
}  // namespace skewless
