#include "baselines/readj.h"

#include <gtest/gtest.h>

#include "core/planners.h"
#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;
using testutil::random_zipf_snapshot;

PlannerConfig cfg_theta(double theta_max) {
  PlannerConfig cfg;
  cfg.theta_max = theta_max;
  cfg.max_table_entries = 0;
  return cfg;
}

TEST(Readj, BalancesSimpleHotInstance) {
  // d0 holds two heavy keys; moving one over balances perfectly.
  const auto snap = make_snapshot(2, {10.0, 10.0}, {0, 0});
  ReadjPlanner planner;
  const auto plan = planner.plan(snap, cfg_theta(0.0));
  EXPECT_TRUE(plan.balanced);
  EXPECT_EQ(plan.moves.size(), 1u);
}

TEST(Readj, UsesSwapsWhenPlainMovesInsufficient) {
  // d0 = {8, 6}, d1 = {5, 1}: moving 6 over gives {8} vs {12} (worse max
  // 12); swapping 6 <-> 1 gives {8,1}=9 vs {5,6}=11; swapping 6 <-> 5
  // gives {8,5}=13... The best single action is a swap; Readj must find
  // an improving sequence ending within theta for a feasible target.
  const auto snap = make_snapshot(2, {8.0, 6.0, 5.0, 1.0}, {0, 0, 1, 1});
  ReadjPlanner planner;
  const auto plan = planner.plan(snap, cfg_theta(0.1));
  // Perfect split exists: {8,2?} no — total 20, target 10: {8,1} vs {6,5}
  // = 9 vs 11 is best integral... check it improved over the initial 14/6.
  EXPECT_LT(plan.achieved_theta,
            PartitionSnapshot::max_theta(snap.current_loads()));
}

TEST(Readj, MovesBackNonHeavyRoutedKeys) {
  // A light key routed away from its hash home gets restored (Readj's
  // bias toward the hash function's placement).
  const auto snap = make_snapshot(2, {0.1, 10.0, 10.0}, {0, 0, 1},
                                  {1.0, 1.0, 1.0},
                                  /*hash=*/{1, 0, 1});
  ReadjPlanner::Options opts;
  opts.sigma_grid = {0.01};  // heavy threshold 0.201 > c(k0) = 0.1
  ReadjPlanner planner(opts);
  const auto plan = planner.plan(snap, cfg_theta(0.3));
  EXPECT_EQ(plan.assignment[0], 1);  // moved back to hash home
}

TEST(Readj, GivesUpWhenOnlyLightKeysRemain)
{
  // The hot instance's keys are all below every sigma threshold times the
  // average load; Readj cannot fix the imbalance caused by many light
  // keys (the paper's critique: it only considers hot keys).
  const std::size_t n = 1000;
  std::vector<Cost> cost(n, 1.0);
  std::vector<InstanceId> current(n);
  for (std::size_t k = 0; k < n; ++k) {
    current[k] = k < 800 ? 0 : 1;  // 800 vs 200 light keys
  }
  const auto snap = make_snapshot(2, cost, current);
  ReadjPlanner::Options opts;
  opts.sigma_grid = {0.5, 0.2};  // sigma * L_bar = 250, 100 >> 1
  ReadjPlanner planner(opts);
  const auto plan = planner.plan(snap, cfg_theta(0.05));
  EXPECT_FALSE(plan.balanced);
  // Mixed, by contrast, handles it (it considers all candidate keys).
  MixedPlanner mixed;
  EXPECT_TRUE(mixed.plan(snap, cfg_theta(0.05)).balanced);
}

TEST(Readj, SmallerSigmaFindsBetterPlans) {
  const auto snap = random_zipf_snapshot(6, 2000, 1.0, 17);
  ReadjPlanner::Options coarse;
  coarse.sigma_grid = {0.5};
  ReadjPlanner::Options fine;
  fine.sigma_grid = {0.01};
  ReadjPlanner coarse_planner(coarse);
  ReadjPlanner fine_planner(fine);
  const auto plan_coarse = coarse_planner.plan(snap, cfg_theta(0.08));
  const auto plan_fine = fine_planner.plan(snap, cfg_theta(0.08));
  EXPECT_LE(plan_fine.achieved_theta, plan_coarse.achieved_theta + 1e-9);
}

TEST(Readj, PlanIsInternallyConsistent) {
  const auto snap = random_zipf_snapshot(8, 3000, 0.9, 23);
  ReadjPlanner planner;
  const auto plan = planner.plan(snap, cfg_theta(0.08));
  ASSERT_EQ(plan.assignment.size(), snap.num_keys());
  Bytes bytes = 0.0;
  std::size_t moves = 0;
  for (std::size_t k = 0; k < snap.num_keys(); ++k) {
    if (plan.assignment[k] != snap.current[k]) {
      ++moves;
      bytes += snap.state[k];
    }
  }
  EXPECT_EQ(plan.moves.size(), moves);
  EXPECT_NEAR(plan.migration_bytes, bytes, 1e-6);
}

TEST(Readj, SlowerThanMixedOnLargeFluctuatingInput) {
  // The complexity claim behind Fig. 12(a): Readj's exhaustive pairing is
  // slower than Mixed's single-shot heuristic. Compare planning times on
  // a large skewed snapshot (generous factor to avoid flakiness).
  const auto snap = random_zipf_snapshot(10, 50'000, 1.0, 29);
  ReadjPlanner readj;
  MixedPlanner mixed;
  const auto cfg = cfg_theta(0.02);
  const auto plan_readj = readj.plan(snap, cfg);
  const auto plan_mixed = mixed.plan(snap, cfg);
  EXPECT_GT(plan_readj.generation_micros, plan_mixed.generation_micros / 4)
      << "Readj unexpectedly fast; its search may have degenerated";
}

}  // namespace
}  // namespace skewless
