#include "core/criteria.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;

TEST(Criteria, HighestCostFirstOrdersByCost) {
  const auto snap =
      make_snapshot(1, {2.0, 9.0, 5.0}, {0, 0, 0}, {1.0, 1.0, 1.0});
  const Criterion psi(CriterionKind::kHighestCostFirst);
  std::vector<KeyId> keys = {0, 1, 2};
  psi.sort_descending(snap, keys);
  EXPECT_EQ(keys, (std::vector<KeyId>{1, 2, 0}));
}

TEST(Criteria, GammaPrefersHighCostPerByte) {
  // k0: c=8, S=8 -> gamma(beta=1) = 1. k1: c=8, S=2 -> gamma = 4.
  const auto snap = make_snapshot(1, {8.0, 8.0}, {0, 0}, {8.0, 2.0});
  const Criterion psi(CriterionKind::kLargestGammaFirst, 1.0);
  std::vector<KeyId> keys = {0, 1};
  psi.sort_descending(snap, keys);
  EXPECT_EQ(keys.front(), 1u);
}

TEST(Criteria, BetaShiftsPriorityTowardCost) {
  // Paper's example: c(k1)=S(k1)=7, c(k2)=S(k2)=4.
  // beta=1: gamma equal. beta=0.5: k2 gains higher priority.
  const auto snap = make_snapshot(1, {7.0, 4.0}, {0, 0}, {7.0, 4.0});
  const Criterion beta1(CriterionKind::kLargestGammaFirst, 1.0);
  EXPECT_NEAR(beta1.score(snap, 0), beta1.score(snap, 1), 1e-12);

  const Criterion beta_half(CriterionKind::kLargestGammaFirst, 0.5);
  EXPECT_GT(beta_half.score(snap, 1), beta_half.score(snap, 0));

  // Larger beta favours the big-load key instead.
  const Criterion beta2(CriterionKind::kLargestGammaFirst, 2.0);
  EXPECT_GT(beta2.score(snap, 0), beta2.score(snap, 1));
}

TEST(Criteria, GammaGuardsZeroState) {
  const auto snap = make_snapshot(1, {5.0, 5.0}, {0, 0}, {0.0, 100.0});
  const Criterion psi(CriterionKind::kLargestGammaFirst, 1.5);
  // Stateless key migrates first (free migration).
  EXPECT_GT(psi.score(snap, 0), psi.score(snap, 1));
}

TEST(Criteria, SmallestMemoryFirst) {
  const auto snap =
      make_snapshot(1, {1.0, 1.0, 1.0}, {0, 0, 0}, {30.0, 10.0, 20.0});
  const Criterion eta(CriterionKind::kSmallestMemoryFirst);
  std::vector<KeyId> keys = {0, 1, 2};
  eta.sort_descending(snap, keys);
  EXPECT_EQ(keys, (std::vector<KeyId>{1, 2, 0}));
}

TEST(Criteria, TiesBreakByKeyId) {
  const auto snap = make_snapshot(1, {3.0, 3.0, 3.0}, {0, 0, 0});
  const Criterion psi(CriterionKind::kHighestCostFirst);
  std::vector<KeyId> keys = {2, 0, 1};
  psi.sort_descending(snap, keys);
  EXPECT_EQ(keys, (std::vector<KeyId>{0, 1, 2}));
}

}  // namespace
}  // namespace skewless
