#include "core/snapshot.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;

TEST(Snapshot, LoadsUnderAssignment) {
  const auto snap = make_snapshot(2, {1.0, 2.0, 3.0}, {0, 0, 1});
  const auto loads = snap.current_loads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0], 3.0);
  EXPECT_EQ(loads[1], 3.0);
}

TEST(Snapshot, AverageLoad) {
  const auto snap = make_snapshot(3, {3.0, 3.0, 3.0}, {0, 1, 2});
  EXPECT_NEAR(snap.average_load(), 3.0, 1e-12);
}

TEST(Snapshot, ThetaZeroWhenBalanced) {
  const auto snap = make_snapshot(2, {5.0, 5.0}, {0, 1});
  const auto loads = snap.current_loads();
  EXPECT_EQ(PartitionSnapshot::theta(loads, 0), 0.0);
  EXPECT_EQ(PartitionSnapshot::theta(loads, 1), 0.0);
  EXPECT_EQ(PartitionSnapshot::max_theta(loads), 0.0);
}

TEST(Snapshot, ThetaMeasuresRelativeDeviation) {
  // Loads 16 and 4, average 10 -> theta = 0.6 for both.
  const auto snap = make_snapshot(2, {16.0, 4.0}, {0, 1});
  const auto loads = snap.current_loads();
  EXPECT_NEAR(PartitionSnapshot::theta(loads, 0), 0.6, 1e-12);
  EXPECT_NEAR(PartitionSnapshot::theta(loads, 1), 0.6, 1e-12);
  EXPECT_NEAR(PartitionSnapshot::max_theta(loads), 0.6, 1e-12);
}

TEST(Snapshot, MaxThetaZeroOnZeroLoad) {
  const auto snap = make_snapshot(2, {0.0, 0.0}, {0, 1});
  EXPECT_EQ(PartitionSnapshot::max_theta(snap.current_loads()), 0.0);
}

TEST(Snapshot, OverloadThreshold) {
  const auto snap = make_snapshot(2, {10.0, 10.0}, {0, 1});
  EXPECT_NEAR(snap.overload_threshold(0.0), 10.0, 1e-12);
  EXPECT_NEAR(snap.overload_threshold(0.5), 15.0, 1e-12);
}

TEST(Snapshot, ImpliedTableSizeCountsDeviationsFromHash) {
  std::vector<InstanceId> assignment = {0, 1, 2, 0};
  std::vector<InstanceId> hash = {0, 0, 2, 1};
  EXPECT_EQ(implied_table_size(assignment, hash), 2u);
  EXPECT_EQ(implied_table_size(hash, hash), 0u);
}

TEST(Snapshot, EmptyKeyDomain) {
  PartitionSnapshot snap;
  snap.num_instances = 3;
  snap.validate();
  const auto loads = snap.current_loads();
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0], 0.0);
}

TEST(SnapshotDeath, ValidateRejectsOutOfRangeDestination) {
  PartitionSnapshot snap;
  snap.num_instances = 2;
  snap.cost = {1.0};
  snap.state = {1.0};
  snap.hash_dest = {5};  // out of range
  snap.current = {0};
  EXPECT_DEATH(snap.validate(), "precondition");
}

TEST(SnapshotDeath, ValidateRejectsNegativeCost) {
  PartitionSnapshot snap;
  snap.num_instances = 1;
  snap.cost = {-1.0};
  snap.state = {1.0};
  snap.hash_dest = {0};
  snap.current = {0};
  EXPECT_DEATH(snap.validate(), "precondition");
}

}  // namespace
}  // namespace skewless
