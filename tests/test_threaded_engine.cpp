#include "engine/threaded_engine.h"

#include <gtest/gtest.h>

#include "core/planners.h"
#include "sketch/sketch_stats_window.h"
#include "workload/operators.h"
#include "workload/synthetic.h"

namespace skewless {
namespace {

std::unique_ptr<Controller> make_controller(
    InstanceId nd, std::size_t num_keys, double theta_max,
    StatsMode stats_mode = StatsMode::kExact) {
  ControllerConfig cfg;
  cfg.planner.theta_max = theta_max;
  cfg.planner.max_table_entries = 0;
  cfg.stats_mode = stats_mode;
  cfg.sketch.heavy_capacity = 256;
  return std::make_unique<Controller>(
      AssignmentFunction(ConsistentHashRing(nd, 128, 11), 0),
      std::make_unique<MixedPlanner>(), cfg, num_keys);
}

std::vector<Tuple> make_tuples(std::size_t n, std::size_t num_keys,
                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> tuples(n);
  for (std::size_t i = 0; i < n; ++i) {
    tuples[i].key = rng.next_below(num_keys);
    tuples[i].value = static_cast<std::int64_t>(i);
  }
  return tuples;
}

TEST(ThreadedEngine, ProcessesEveryTuple) {
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        make_controller(3, 100, 0.5));
  const auto tuples = make_tuples(10'000, 100, 1);
  const auto report = engine.run_interval(tuples);
  EXPECT_EQ(report.emitted, 10'000u);
  EXPECT_EQ(report.processed, 10'000u);
  engine.shutdown();
  EXPECT_EQ(engine.total_processed(), 10'000u);
}

TEST(ThreadedEngine, WordCountStateMatchesInput) {
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        make_controller(4, 50, 0.5));
  std::vector<Tuple> tuples;
  for (int rep = 0; rep < 7; ++rep) {
    for (KeyId k = 0; k < 50; ++k) {
      tuples.push_back(Tuple{k, static_cast<std::int64_t>(rep), 0, 0});
    }
  }
  engine.run_interval(tuples);
  engine.shutdown();
  EXPECT_EQ(engine.total_state_entries(), 50u);
  EXPECT_EQ(engine.total_output_tuples(), 7u * 50u);
}

TEST(ThreadedEngine, HashOnlyModeWorksWithoutController) {
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        /*num_workers_for_ring=*/4, /*ring_seed=*/7);
  const auto tuples = make_tuples(5'000, 64, 2);
  const auto report = engine.run_interval(tuples);
  EXPECT_EQ(report.processed, 5'000u);
  EXPECT_FALSE(report.migrated);
  engine.shutdown();
}

TEST(ThreadedEngine, MigrationPreservesStateExactly) {
  // Run the same skewed workload with and without rebalancing; the final
  // global state checksum must be identical — migration moves state, it
  // never loses or duplicates it.
  const std::size_t num_keys = 200;
  const auto make_input = [&](std::uint64_t seed) {
    // Heavy skew: key k appears ~1000/(k+1) times.
    std::vector<Tuple> tuples;
    Xoshiro256 rng(seed);
    for (KeyId k = 0; k < num_keys; ++k) {
      const int n = static_cast<int>(1000 / (k + 1) + 1);
      for (int i = 0; i < n; ++i) {
        tuples.push_back(
            Tuple{k, static_cast<std::int64_t>(k * 1000 + i), 0, 0});
      }
    }
    for (std::size_t j = tuples.size(); j > 1; --j) {
      std::swap(tuples[j - 1], tuples[rng.next_below(j)]);
    }
    return tuples;
  };

  std::uint64_t checksum_rebalanced;
  std::uint64_t outputs_rebalanced;
  {
    ThreadedEngine engine(ThreadedConfig{},
                          std::make_shared<WordCountLogic>(),
                          make_controller(4, num_keys, 0.02));
    std::uint64_t migrations = 0;
    for (int interval = 0; interval < 5; ++interval) {
      const auto report = engine.run_interval(make_input(interval));
      migrations += report.migrated ? 1 : 0;
    }
    EXPECT_GT(migrations, 0u) << "test needs at least one migration";
    engine.shutdown();
    checksum_rebalanced = engine.state_checksum();
    outputs_rebalanced = engine.total_output_tuples();
  }

  std::uint64_t checksum_static;
  std::uint64_t outputs_static;
  {
    ThreadedEngine engine(ThreadedConfig{},
                          std::make_shared<WordCountLogic>(),
                          /*num_workers_for_ring=*/4, /*ring_seed=*/11);
    for (int interval = 0; interval < 5; ++interval) {
      engine.run_interval(make_input(interval));
    }
    engine.shutdown();
    checksum_static = engine.state_checksum();
    outputs_static = engine.total_output_tuples();
  }

  EXPECT_EQ(checksum_rebalanced, checksum_static);
  EXPECT_EQ(outputs_rebalanced, outputs_static);
}

TEST(ThreadedEngine, MigrationMovesKeysToPlannedWorkers) {
  auto controller = make_controller(3, 60, 0.02);
  Controller* ctrl = controller.get();
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        std::move(controller));
  // Interval 1: all load on the instance that owns key 0.
  std::vector<Tuple> tuples;
  const InstanceId hot = ctrl->assignment()(0);
  for (KeyId k = 0; k < 60; ++k) {
    if (ctrl->assignment()(k) != hot) continue;
    for (int i = 0; i < 200; ++i) {
      tuples.push_back(Tuple{k, 1, 0, 0});
    }
  }
  const auto report = engine.run_interval(tuples);
  EXPECT_TRUE(report.migrated);
  EXPECT_GT(report.moves, 0u);
  engine.shutdown();
  // All per-key states exist exactly once globally.
  EXPECT_GT(engine.total_state_entries(), 0u);
}

TEST(ThreadedEngine, SelfJoinEmitsMatches) {
  ThreadedEngine engine(ThreadedConfig{},
                        std::make_shared<SelfJoinLogic>(1.0, 0.01, 1024),
                        make_controller(2, 10, 0.5));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.push_back(Tuple{5, i % 2, 0, 0});  // same key, alternating parity
  }
  engine.run_interval(tuples);
  engine.shutdown();
  EXPECT_GT(engine.total_output_tuples(), 0u);
}

TEST(ThreadedEngine, RunWithSourceExpandsCounts) {
  ZipfFluctuatingSource::Options opts;
  opts.num_keys = 128;
  opts.tuples_per_interval = 20'000;
  opts.fluctuation = 0.5;
  ZipfFluctuatingSource source(opts);
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        make_controller(4, 128, 0.1));
  const auto reports = engine.run(source, 3);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.emitted, 20'000u);
    EXPECT_EQ(r.processed, 20'000u);
    EXPECT_GT(r.throughput_tps, 0.0);
  }
  engine.shutdown();
}

TEST(ThreadedEngine, ExpiryMessagesShrinkWindows) {
  ThreadedConfig cfg;
  cfg.expire_lag_intervals = 1;
  ThreadedEngine engine(cfg, std::make_shared<SelfJoinLogic>(1.0, 0.01, 1 << 20),
                        make_controller(2, 4, 0.9));
  // Tuples with old timestamps: after the interval, the expiry watermark
  // passes them and the window shrinks.
  std::vector<Tuple> tuples(500, Tuple{1, 7, 0, 0});
  engine.run_interval(tuples);
  engine.run_interval({});  // watermark advances past the tuples
  engine.run_interval({});
  engine.shutdown();
  // State entry still exists but its window emptied.
  EXPECT_EQ(engine.total_state_entries(), 1u);
}

TEST(ThreadedEngine, SerializedMigrationPreservesState) {
  // Same workload with in-process pointer moves vs full byte round-trips:
  // identical final state.
  const auto run_with = [](bool serialize) {
    ThreadedConfig cfg;
    cfg.serialize_migration = serialize;
    ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                          make_controller(4, 100, 0.02));
    Bytes wire = 0.0;
    std::uint64_t migrations = 0;
    for (int interval = 0; interval < 4; ++interval) {
      std::vector<Tuple> tuples;
      for (KeyId k = 0; k < 100; ++k) {
        const int n = static_cast<int>(500 / (k + 1) + 1);
        for (int i = 0; i < n; ++i) {
          tuples.push_back(
              Tuple{k, static_cast<std::int64_t>(interval * 7 + i), 0, 0});
        }
      }
      const auto report = engine.run_interval(tuples);
      wire += report.migration_wire_bytes;
      migrations += report.migrated ? 1 : 0;
    }
    engine.shutdown();
    return std::make_tuple(engine.state_checksum(), wire, migrations);
  };

  const auto [sum_plain, wire_plain, mig_plain] = run_with(false);
  const auto [sum_serde, wire_serde, mig_serde] = run_with(true);
  EXPECT_EQ(sum_plain, sum_serde);
  EXPECT_EQ(wire_plain, 0.0);
  EXPECT_GT(mig_serde, 0u);
  EXPECT_GT(wire_serde, 0.0);  // real bytes crossed the codec
}

TEST(ThreadedEngine, SketchModeHashOnlyTracksHeavyKeysViaSlabs) {
  ThreadedConfig cfg;
  cfg.stats_mode = StatsMode::kSketch;
  cfg.sketch.heavy_capacity = 64;
  ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                        /*num_workers_for_ring=*/4, /*ring_seed=*/7);
  // Two intervals of heavy skew: key k carries ~2000/(k+1) tuples.
  std::uint64_t expected = 0;
  for (int interval = 0; interval < 2; ++interval) {
    std::vector<Tuple> tuples;
    for (KeyId k = 0; k < 500; ++k) {
      const int n = static_cast<int>(2000 / (k + 1) + 1);
      for (int i = 0; i < n; ++i) {
        tuples.push_back(Tuple{k, static_cast<std::int64_t>(i), 0, 0});
      }
    }
    expected += tuples.size();
    const auto report = engine.run_interval(tuples);
    EXPECT_GT(report.stats_memory_bytes, 0u);
  }
  const auto* sketch =
      dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker());
  ASSERT_NE(sketch, nullptr);
  // The hottest keys were promoted out of the worker slabs' candidate
  // union, and their exact hot-tier stats match the true per-key cost
  // (WordCountLogic reports cost 1 per tuple).
  EXPECT_GT(sketch->heavy_count(), 0u);
  EXPECT_TRUE(sketch->is_heavy(0));
  EXPECT_DOUBLE_EQ(sketch->last_cost_of(0), 2001.0);
  EXPECT_EQ(sketch->last_frequency_of(0), 2001u);
  engine.shutdown();
  EXPECT_EQ(engine.total_processed(), expected);
}

TEST(ThreadedEngine, SketchModeControllerMigratesAndPreservesState) {
  // Same skewed workload under exact and sketch statistics: both must
  // trigger migrations, and the final global state must be identical —
  // the statistics path influences *planning*, never state ownership.
  const std::size_t num_keys = 200;
  const auto make_input = [&](std::uint64_t seed) {
    std::vector<Tuple> tuples;
    Xoshiro256 rng(seed);
    for (KeyId k = 0; k < num_keys; ++k) {
      const int n = static_cast<int>(1000 / (k + 1) + 1);
      for (int i = 0; i < n; ++i) {
        tuples.push_back(
            Tuple{k, static_cast<std::int64_t>(k * 1000 + i), 0, 0});
      }
    }
    for (std::size_t j = tuples.size(); j > 1; --j) {
      std::swap(tuples[j - 1], tuples[rng.next_below(j)]);
    }
    return tuples;
  };

  const auto run_with = [&](StatsMode mode) {
    ThreadedEngine engine(ThreadedConfig{},
                          std::make_shared<WordCountLogic>(),
                          make_controller(4, num_keys, 0.02, mode));
    std::uint64_t migrations = 0;
    for (int interval = 0; interval < 5; ++interval) {
      migrations += engine.run_interval(make_input(interval)).migrated ? 1 : 0;
    }
    engine.shutdown();
    return std::make_pair(engine.state_checksum(), migrations);
  };

  const auto [sum_exact, mig_exact] = run_with(StatsMode::kExact);
  const auto [sum_sketch, mig_sketch] = run_with(StatsMode::kSketch);
  EXPECT_GT(mig_exact, 0u);
  EXPECT_GT(mig_sketch, 0u) << "sketch stats must still drive rebalancing";
  EXPECT_EQ(sum_exact, sum_sketch);
}

TEST(ThreadedEngine, SealSwapKeepsStatsExactAcrossEpochs) {
  // The double-buffered seal path must deliver the same per-epoch
  // statistics contract as the inline merge: after each run_interval the
  // merged window reflects exactly the closed epoch (scalars included —
  // they ride the sealed slab, not a mutex), and the hot tier stays
  // exact across the buffer alternation (epoch 1 seals buffer 0, epoch 2
  // buffer 1, epoch 3 buffer 0 again).
  ThreadedConfig cfg;
  cfg.stats_mode = StatsMode::kSketch;
  cfg.sketch.heavy_capacity = 64;
  cfg.batch_size = 8;  // many in-flight messages per boundary
  cfg.async_merge = true;
  ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                        /*num_workers_for_ring=*/4, /*ring_seed=*/7);
  for (int interval = 0; interval < 3; ++interval) {
    std::vector<Tuple> tuples;
    for (KeyId k = 0; k < 200; ++k) {
      const int n = static_cast<int>(1000 / (k + 1) + 1);
      for (int i = 0; i < n; ++i) {
        tuples.push_back(Tuple{k, static_cast<std::int64_t>(i), 0, 0});
      }
    }
    const auto report = engine.run_interval(tuples);
    // Scalars harvested from the sealed slabs must cover every tuple of
    // the epoch — a gap here means a batch was folded into the wrong
    // buffer or read before its seal.
    EXPECT_EQ(report.processed, report.emitted);
    EXPECT_GT(report.stats_memory_bytes, 0u);
    EXPECT_GE(report.stall_ms, 0.0);
    EXPECT_GE(report.merge_ms, 0.0);
  }
  const auto* sketch =
      dynamic_cast<const SketchStatsWindow*>(&engine.state_tracker());
  ASSERT_NE(sketch, nullptr);
  EXPECT_TRUE(sketch->is_heavy(0));
  EXPECT_DOUBLE_EQ(sketch->last_cost_of(0), 1001.0);
  EXPECT_EQ(sketch->last_frequency_of(0), 1001u);
  engine.shutdown();
}

TEST(ThreadedEngine, AsyncAndInlineMergeAgreeUnderController) {
  // Same skewed workload, controller-driven migrations, both buffer
  // modes: the planner sees the identical merged epoch either way, so
  // the plans, the migrations and the final global state must coincide.
  const std::size_t num_keys = 200;
  const auto make_input = [&](std::uint64_t seed) {
    std::vector<Tuple> tuples;
    Xoshiro256 rng(seed);
    for (KeyId k = 0; k < num_keys; ++k) {
      const int n = static_cast<int>(1000 / (k + 1) + 1);
      for (int i = 0; i < n; ++i) {
        tuples.push_back(
            Tuple{k, static_cast<std::int64_t>(k * 1000 + i), 0, 0});
      }
    }
    for (std::size_t j = tuples.size(); j > 1; --j) {
      std::swap(tuples[j - 1], tuples[rng.next_below(j)]);
    }
    return tuples;
  };

  const auto run_with = [&](bool async_merge) {
    ThreadedConfig cfg;
    cfg.async_merge = async_merge;
    cfg.batch_size = 32;
    ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                          make_controller(4, num_keys, 0.02,
                                          StatsMode::kSketch));
    std::uint64_t migrations = 0;
    std::size_t moves = 0;
    for (int interval = 0; interval < 5; ++interval) {
      const auto report = engine.run_interval(make_input(interval));
      migrations += report.migrated ? 1 : 0;
      moves += report.moves;
    }
    engine.shutdown();
    return std::make_tuple(engine.state_checksum(), migrations, moves);
  };

  const auto [sum_inline, mig_inline, moves_inline] = run_with(false);
  const auto [sum_async, mig_async, moves_async] = run_with(true);
  EXPECT_GT(mig_async, 0u) << "async merge must still drive rebalancing";
  EXPECT_EQ(mig_inline, mig_async);
  EXPECT_EQ(moves_inline, moves_async);
  EXPECT_EQ(sum_inline, sum_async);
}

TEST(ThreadedEngine, DoubleBufferAccountsBothSlabBuffers) {
  // async_merge doubles the worker-side slab footprint (active + sealed
  // buffer per worker); the end-to-end stats memory must say so rather
  // than hide the cost of the overlap.
  const auto stats_bytes = [](bool async_merge) {
    ThreadedConfig cfg;
    cfg.stats_mode = StatsMode::kSketch;
    cfg.async_merge = async_merge;
    ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                          /*num_workers_for_ring=*/2, /*ring_seed=*/7);
    const auto tuples = make_tuples(5'000, 512, 2);
    const auto report = engine.run_interval(tuples);
    engine.shutdown();
    return report.stats_memory_bytes;
  };
  const std::size_t inline_bytes = stats_bytes(false);
  const std::size_t async_bytes = stats_bytes(true);
  // Strictly more than the single-buffer run, by at least one extra
  // fused-cell array per worker (the dominant slab allocation).
  EXPECT_GT(async_bytes, inline_bytes);
}

TEST(ThreadedEngine, PinWorkersReportsEffectivePins) {
  ThreadedConfig cfg;
  cfg.pin_workers = true;
  ThreadedEngine engine(cfg, std::make_shared<WordCountLogic>(),
                        /*num_workers_for_ring=*/2, /*ring_seed=*/7);
  const auto tuples = make_tuples(2'000, 64, 3);
  const auto report = engine.run_interval(tuples);
  EXPECT_EQ(report.processed, 2'000u);
  // Affinity is best-effort (unsupported platforms report 0), but it
  // can never exceed the worker count.
  EXPECT_LE(engine.pinned_workers(), 2);
  engine.shutdown();
}

TEST(ThreadedEngine, ExactModeReportsMergeAndStall) {
  // The small-fix satellite: exact mode surfaces its per-drain replay
  // cost (merge_ms) and boundary stall in the same report fields the
  // sketch path fills.
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        make_controller(2, 5'000, 0.5));
  const auto tuples = make_tuples(50'000, 5'000, 4);
  const auto report = engine.run_interval(tuples);
  EXPECT_EQ(report.processed, 50'000u);
  EXPECT_GT(report.merge_ms, 0.0);  // replaying 5k keys takes measurable time
  EXPECT_GE(report.stall_ms, report.merge_ms);  // replay runs inside it
  engine.shutdown();
}

TEST(ThreadedEngine, ShutdownIsIdempotent) {
  ThreadedEngine engine(ThreadedConfig{}, std::make_shared<WordCountLogic>(),
                        make_controller(2, 4, 0.5));
  engine.shutdown();
  engine.shutdown();
  EXPECT_EQ(engine.total_processed(), 0u);
}

}  // namespace
}  // namespace skewless
