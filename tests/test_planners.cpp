#include "core/planners.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;
using testutil::random_zipf_snapshot;

PlannerConfig config_with(double theta_max, std::size_t amax = 0,
                          double beta = 1.5) {
  PlannerConfig cfg;
  cfg.theta_max = theta_max;
  cfg.max_table_entries = amax;
  cfg.beta = beta;
  return cfg;
}

void expect_valid_plan(const RebalancePlan& plan,
                       const PartitionSnapshot& snap) {
  ASSERT_EQ(plan.assignment.size(), snap.num_keys());
  for (const InstanceId d : plan.assignment) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, snap.num_instances);
  }
  // Moves must match the assignment delta exactly.
  std::size_t delta = 0;
  Bytes bytes = 0.0;
  for (std::size_t k = 0; k < snap.num_keys(); ++k) {
    if (snap.current[k] != plan.assignment[k]) {
      ++delta;
      bytes += snap.state[k];
    }
  }
  EXPECT_EQ(plan.moves.size(), delta);
  EXPECT_NEAR(plan.migration_bytes, bytes, 1e-6);
  EXPECT_EQ(plan.table_size,
            implied_table_size(plan.assignment, snap.hash_dest));
  for (const KeyMove& mv : plan.moves) {
    EXPECT_EQ(snap.current[static_cast<std::size_t>(mv.key)], mv.from);
    EXPECT_EQ(plan.assignment[static_cast<std::size_t>(mv.key)], mv.to);
    EXPECT_NE(mv.from, mv.to);
  }
}

TEST(MinTable, CleansExistingTableEntries) {
  // Key 0 is routed off its hash home but the workload is imbalanced the
  // other way; MinTable must consider its hash placement again.
  auto snap = make_snapshot(2, {1.0, 1.0, 1.0, 1.0}, {0, 0, 0, 0},
                            {1.0, 1.0, 1.0, 1.0}, {1, 0, 0, 0});
  MinTablePlanner planner;
  const auto plan = planner.plan(snap, config_with(0.0));
  expect_valid_plan(plan, snap);
  EXPECT_TRUE(plan.balanced);
  // Perfect balance with an empty-or-minimal table: key 0 goes back to its
  // hash destination 1 and one more key joins it, or equivalent.
  EXPECT_LE(plan.table_size, 1u);
}

TEST(MinTable, Fig4ProducesSmallTable) {
  // Right-hand example of Fig. 4: the cleaning phase moves k3/k5 back,
  // and the resulting table has 2 entries (vs 4 without cleaning).
  // KeyIds: k1=0 .. k6=5. Current placement includes table entries
  // (k3 -> d2, k5 -> d1); hash homes differ for those keys.
  auto snap = make_snapshot(2, {7.0, 4.0, 2.0, 1.0, 5.0, 1.0},
                            {0, 0, 1, 1, 0, 1},
                            {1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
                            /*hash=*/{0, 0, 0, 1, 1, 1});
  MinTablePlanner planner;
  const auto plan = planner.plan(snap, config_with(0.0));
  expect_valid_plan(plan, snap);
  EXPECT_TRUE(plan.balanced);
  EXPECT_LE(plan.table_size, 2u);
}

TEST(MinMig, NoCleaningKeepsUntouchedEntries) {
  // An entry on a non-overloaded instance must survive MinMig (Phase I
  // does nothing), even though MinTable would erase it.
  auto snap = make_snapshot(2, {6.0, 5.0, 1.0}, {0, 1, 1},
                            {1.0, 1.0, 1.0}, {0, 0, 1});
  // Loads: d0=6, d1=6 — balanced; but force planning anyway via theta 0.
  MinMigPlanner planner;
  const auto plan = planner.plan(snap, config_with(0.0));
  expect_valid_plan(plan, snap);
  // Key 1 keeps its explicit routing (1 != hash 0).
  EXPECT_EQ(plan.assignment[1], 1);
}

TEST(MinMig, PrefersCheapStateMigration) {
  // d0 overloaded by two equal-cost keys; the one with tiny state should
  // move (gamma = c^beta / S).
  auto snap = make_snapshot(2, {5.0, 5.0, 0.0}, {0, 0, 1},
                            {1000.0, 1.0, 0.0});
  MinMigPlanner planner;
  const auto plan = planner.plan(snap, config_with(0.0));
  expect_valid_plan(plan, snap);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves.front().key, 1u);  // small-state key migrates
  EXPECT_TRUE(plan.balanced);
}

TEST(Mixed, RespectsTableBoundByCleaning) {
  // Construct a snapshot with many existing table entries; Amax forces
  // Mixed to clean until the implied table fits.
  const std::size_t keys = 400;
  std::vector<Cost> cost(keys, 1.0);
  std::vector<InstanceId> hash(keys);
  std::vector<InstanceId> current(keys);
  for (std::size_t k = 0; k < keys; ++k) {
    hash[k] = static_cast<InstanceId>(k % 4);
    current[k] = static_cast<InstanceId>((k % 2 == 0) ? k % 4 : (k + 1) % 4);
  }
  auto snap = make_snapshot(4, cost, current, {}, hash);
  MixedPlanner planner;
  const auto cfg = config_with(0.05, /*amax=*/50);
  const auto plan = planner.plan(snap, cfg);
  expect_valid_plan(plan, snap);
  EXPECT_LE(plan.table_size, 50u);
  EXPECT_TRUE(plan.table_fits);
}

TEST(Mixed, UnboundedTableSkipsCleaningLoop) {
  const auto snap = random_zipf_snapshot(5, 1000, 0.9, 11);
  MixedPlanner planner;
  const auto plan = planner.plan(snap, config_with(0.08, 0));
  expect_valid_plan(plan, snap);
  EXPECT_TRUE(plan.table_fits);
  EXPECT_TRUE(plan.balanced);
}

TEST(Mixed, MigrationCostNoLargerThanMinTableTypically) {
  // The design claim: Mixed pays less migration than MinTable because it
  // avoids moving everything back. Verified on a batch of random inputs
  // (aggregate, not per-instance, as the claim is statistical).
  double mixed_total = 0.0;
  double mintable_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto snap = random_zipf_snapshot(8, 3000, 0.95, seed);
    // Pre-route some keys off their hash home to give MinTable something
    // to clean.
    for (std::size_t k = 0; k < snap.num_keys(); k += 7) {
      snap.current[k] =
          static_cast<InstanceId>((snap.hash_dest[k] + 1) % 8);
    }
    MixedPlanner mixed;
    MinTablePlanner mintable;
    mixed_total += mixed.plan(snap, config_with(0.08, 0)).migration_bytes;
    mintable_total +=
        mintable.plan(snap, config_with(0.08, 0)).migration_bytes;
  }
  EXPECT_LT(mixed_total, mintable_total);
}

TEST(MixedBf, FindsFeasiblePlanWhenMixedDoes) {
  const auto snap = random_zipf_snapshot(6, 800, 0.9, 21);
  const auto cfg = config_with(0.08, 200);
  MixedPlanner mixed;
  MixedBfPlanner brute(64);
  const auto plan_mixed = mixed.plan(snap, cfg);
  const auto plan_bf = brute.plan(snap, cfg);
  expect_valid_plan(plan_bf, snap);
  if (plan_mixed.table_fits) {
    EXPECT_TRUE(plan_bf.table_fits);
  }
}

TEST(MixedBf, NeverWorseMigrationThanMixedWhenBothFeasible) {
  for (std::uint64_t seed = 31; seed <= 34; ++seed) {
    auto snap = random_zipf_snapshot(5, 600, 0.9, seed);
    for (std::size_t k = 0; k < snap.num_keys(); k += 5) {
      snap.current[k] =
          static_cast<InstanceId>((snap.hash_dest[k] + 1) % 5);
    }
    const auto cfg = config_with(0.1, 0);
    MixedPlanner mixed;
    MixedBfPlanner brute;  // exhaustive
    const auto pm = mixed.plan(snap, cfg);
    const auto pb = brute.plan(snap, cfg);
    if (pm.balanced && pb.balanced) {
      EXPECT_LE(pb.migration_bytes, pm.migration_bytes + 1e-6)
          << "seed " << seed;
    }
  }
}

TEST(LlfdNoAdjust, ProducesValidButPossiblyWorseBalance) {
  const auto snap = random_zipf_snapshot(4, 500, 1.0, 5);
  LlfdNoAdjustPlanner ablation;
  MinTablePlanner full;
  const auto cfg = config_with(0.0);
  const auto plan_ablation = ablation.plan(snap, cfg);
  const auto plan_full = full.plan(snap, cfg);
  expect_valid_plan(plan_ablation, snap);
  // Adjust can only help: the full algorithm is never worse.
  EXPECT_LE(plan_full.achieved_theta, plan_ablation.achieved_theta + 1e-9);
}

TEST(Planners, GenerationTimeIsMeasured) {
  const auto snap = random_zipf_snapshot(8, 5000, 0.9, 9);
  MixedPlanner planner;
  const auto plan = planner.plan(snap, config_with(0.05));
  EXPECT_GE(plan.generation_micros, 0);
}

TEST(Planners, NoMovesWhenBalancedInput) {
  // Perfectly balanced snapshot: planners must not move anything.
  const auto snap = make_snapshot(2, {5.0, 5.0}, {0, 1});
  for (auto* planner :
       std::initializer_list<Planner*>{new MinTablePlanner, new MinMigPlanner,
                                       new MixedPlanner}) {
    const auto plan = planner->plan(snap, config_with(0.0));
    EXPECT_TRUE(plan.moves.empty()) << planner->name();
    delete planner;
  }
}

struct PlannerFactory {
  const char* name;
  PlannerPtr (*make)();
};

class AllPlannersParam : public ::testing::TestWithParam<int> {
 protected:
  static PlannerPtr make_planner(int which) {
    switch (which) {
      case 0:
        return std::make_unique<MinTablePlanner>();
      case 1:
        return std::make_unique<MinMigPlanner>();
      case 2:
        return std::make_unique<MixedPlanner>();
      default:
        return std::make_unique<MixedBfPlanner>(32);
    }
  }
};

TEST_P(AllPlannersParam, RandomWorkloadsYieldValidBalancedPlans) {
  auto planner = make_planner(GetParam());
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    const auto snap = random_zipf_snapshot(10, 2000, 0.85, seed);
    const auto cfg = config_with(0.08, 0);
    const auto plan = planner->plan(snap, cfg);
    expect_valid_plan(plan, snap);
    EXPECT_TRUE(plan.balanced) << planner->name() << " seed " << seed
                               << " theta " << plan.achieved_theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllPlannersParam, ::testing::Range(0, 4));

}  // namespace
}  // namespace skewless
