#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace skewless {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstValue) {
  // Reference value for seed 0 from the SplitMix64 reference
  // implementation (Steele, Lea & Flood).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(123), mix64(123));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // no collisions on consecutive inputs
}

TEST(Mix64, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const std::uint64_t a = mix64(0x1234567890abcdefULL);
    const std::uint64_t b = mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextBetweenInclusiveBounds) {
  Xoshiro256 rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NextBetweenDegenerateRange) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_between(5, 5), 5);
}

TEST(Xoshiro256, UniformityChiSquareRough) {
  Xoshiro256 rng(21);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_below(kBuckets))];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom; 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace skewless
