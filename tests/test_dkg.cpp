#include "baselines/dkg.h"

#include <gtest/gtest.h>

#include "core/planners.h"
#include "test_util.h"

namespace skewless {
namespace {

using testutil::make_snapshot;
using testutil::random_zipf_snapshot;

PlannerConfig cfg_theta(double theta) {
  PlannerConfig cfg;
  cfg.theta_max = theta;
  cfg.max_table_entries = 0;
  return cfg;
}

TEST(Dkg, BalancesHeavyDominatedWorkload) {
  // Four heavy keys on one instance; LPT spreads them 1 per instance.
  const auto snap =
      make_snapshot(4, {10.0, 10.0, 10.0, 10.0}, {0, 0, 0, 0});
  DkgPlanner planner;
  const auto plan = planner.plan(snap, cfg_theta(0.0));
  EXPECT_TRUE(plan.balanced);
  const auto loads = snap.loads_under(plan.assignment);
  for (const Cost l : loads) EXPECT_EQ(l, 10.0);
}

TEST(Dkg, LightKeysStayAtHashHome) {
  // One heavy key + light keys routed somewhere by a previous plan: DKG
  // plans from scratch, so the light keys return to their hash homes.
  const auto snap = make_snapshot(2, {100.0, 0.1, 0.1},
                                  /*current=*/{0, 1, 1},
                                  /*state=*/{1.0, 1.0, 1.0},
                                  /*hash=*/{0, 0, 0});
  DkgPlanner planner;
  const auto plan = planner.plan(snap, cfg_theta(1.0));
  EXPECT_EQ(plan.assignment[1], 0);  // back to hash home
  EXPECT_EQ(plan.assignment[2], 0);
}

TEST(Dkg, IgnoresMigrationCostEntirely) {
  // DKG re-derives the placement from scratch: a balanced-but-routed
  // configuration gets torn up even though staying put would be free.
  const std::size_t n = 100;
  std::vector<Cost> cost(n, 1.0);
  std::vector<InstanceId> hash(n, 0);
  std::vector<InstanceId> current(n);
  for (std::size_t k = 0; k < n; ++k) {
    current[k] = static_cast<InstanceId>(k % 2);  // balanced via table
  }
  const auto snap = make_snapshot(2, cost, current, {}, hash);
  DkgPlanner planner(DkgPlanner::Options{.heavy_fraction = 2.0});
  const auto plan = planner.plan(snap, cfg_theta(1.0));
  // All light keys fall back to hash home 0 -> half the keys migrate.
  EXPECT_GT(plan.moves.size(), n / 4);
}

TEST(Dkg, ComparableBalanceToMixedOnZipf) {
  const auto snap = random_zipf_snapshot(8, 5000, 1.0, 13);
  DkgPlanner dkg;
  MixedPlanner mixed;
  const auto plan_dkg = dkg.plan(snap, cfg_theta(0.08));
  const auto plan_mixed = mixed.plan(snap, cfg_theta(0.08));
  // DKG improves on plain hashing by spreading the heavy keys, but the
  // light keys' hash placement leaves residual imbalance it cannot see...
  const double initial =
      PartitionSnapshot::max_theta(snap.current_loads());
  EXPECT_LT(plan_dkg.achieved_theta, initial);
  // ...while Mixed does strictly better (it considers all candidates).
  EXPECT_LT(plan_mixed.achieved_theta, plan_dkg.achieved_theta);
}

TEST(Dkg, HigherThresholdMeansFewerMovesWorseBalance) {
  const auto snap = random_zipf_snapshot(6, 3000, 1.0, 17);
  DkgPlanner fine(DkgPlanner::Options{.heavy_fraction = 0.001});
  DkgPlanner coarse(DkgPlanner::Options{.heavy_fraction = 0.5});
  const auto plan_fine = fine.plan(snap, cfg_theta(0.08));
  const auto plan_coarse = coarse.plan(snap, cfg_theta(0.08));
  EXPECT_LE(plan_coarse.moves.size() + 10, plan_fine.moves.size());
  EXPECT_LE(plan_fine.achieved_theta, plan_coarse.achieved_theta + 1e-9);
}

TEST(Dkg, PlanInternallyConsistent) {
  const auto snap = random_zipf_snapshot(5, 2000, 0.85, 19);
  DkgPlanner planner;
  const auto plan = planner.plan(snap, cfg_theta(0.08));
  ASSERT_EQ(plan.assignment.size(), snap.num_keys());
  std::size_t moves = 0;
  for (std::size_t k = 0; k < snap.num_keys(); ++k) {
    ASSERT_GE(plan.assignment[k], 0);
    ASSERT_LT(plan.assignment[k], 5);
    if (plan.assignment[k] != snap.current[k]) ++moves;
  }
  EXPECT_EQ(plan.moves.size(), moves);
}

}  // namespace
}  // namespace skewless
