#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace skewless {
namespace {

TEST(Histogram, EmptyQuantileIsZero) {
  const Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
  // The value lands in bin [3, 4).
  EXPECT_GE(h.quantile(0.5), 3.0);
  EXPECT_LE(h.quantile(0.5), 4.0);
}

TEST(Histogram, ClampsOutOfRangeValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, WeightsCount) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0, 7);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(Histogram, QuantilesOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100'000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
  EXPECT_NEAR(h.mean(), 0.5, 0.01);
}

TEST(Histogram, QuantileMonotoneInQ) {
  Histogram h(0.0, 100.0, 50);
  Xoshiro256 rng(6);
  for (int i = 0; i < 10'000; ++i) h.add(rng.next_double() * 100.0);
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, MergeMatchesCombinedInsertion) {
  Histogram a(0.0, 10.0, 20);
  Histogram b(0.0, 10.0, 20);
  Histogram combined(0.0, 10.0, 20);
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10.0;
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (std::size_t bin = 0; bin < a.num_bins(); ++bin) {
    EXPECT_EQ(a.bin_count(bin), combined.bin_count(bin));
  }
}

TEST(Histogram, ClearResets) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramDeath, MergeRequiresIdenticalBinning) {
  Histogram a(0.0, 10.0, 10);
  const Histogram b(0.0, 10.0, 20);
  EXPECT_DEATH(a.merge(b), "precondition");
}

}  // namespace
}  // namespace skewless
