// Shared helpers for the test suite: concise snapshot builders and
// randomized-instance generators used by the property tests.
#pragma once

#include <vector>

#include "common/consistent_hash.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/snapshot.h"

namespace skewless::testutil {

/// Builds a snapshot from explicit per-key cost/state/destination vectors.
/// hash_dest defaults to current (i.e. an empty routing table).
inline PartitionSnapshot make_snapshot(InstanceId nd, std::vector<Cost> cost,
                                       std::vector<InstanceId> current,
                                       std::vector<Bytes> state = {},
                                       std::vector<InstanceId> hash = {}) {
  PartitionSnapshot snap;
  snap.num_instances = nd;
  snap.cost = std::move(cost);
  snap.current = std::move(current);
  snap.state = state.empty() ? std::vector<Bytes>(snap.cost.size(), 1.0)
                             : std::move(state);
  snap.hash_dest = hash.empty() ? snap.current : std::move(hash);
  snap.validate();
  return snap;
}

/// Random Zipf-cost snapshot placed by a consistent-hash ring — the
/// canonical "skewed workload just arrived" planning input.
inline PartitionSnapshot random_zipf_snapshot(InstanceId nd,
                                              std::size_t num_keys,
                                              double skew,
                                              std::uint64_t seed,
                                              double state_scale = 4.0) {
  const ZipfDistribution zipf(num_keys, skew, true, seed);
  const auto counts = zipf.expected_counts(num_keys * 10);
  const ConsistentHashRing ring(nd, 128, seed ^ 0x1234);

  PartitionSnapshot snap;
  snap.num_instances = nd;
  snap.cost.resize(num_keys);
  snap.state.resize(num_keys);
  snap.hash_dest.resize(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    snap.cost[k] = static_cast<Cost>(counts[k]);
    snap.state[k] = state_scale * static_cast<Bytes>(counts[k]);
    snap.hash_dest[k] = ring.owner(static_cast<KeyId>(k));
  }
  snap.current = snap.hash_dest;
  snap.validate();
  return snap;
}

/// Plants a snapshot for which a perfectly balanced assignment exists:
/// `per_instance` keys per instance, each instance's costs summing to
/// `target` exactly, and no single key above `max_key_fraction · target`.
inline PartitionSnapshot planted_perfect_snapshot(InstanceId nd,
                                                  int per_instance,
                                                  double target,
                                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  PartitionSnapshot snap;
  snap.num_instances = nd;
  for (InstanceId d = 0; d < nd; ++d) {
    // Split `target` into per_instance random positive parts.
    std::vector<double> cuts;
    cuts.push_back(0.0);
    for (int i = 0; i < per_instance - 1; ++i) {
      cuts.push_back(rng.next_double() * target);
    }
    cuts.push_back(target);
    std::sort(cuts.begin(), cuts.end());
    for (int i = 0; i < per_instance; ++i) {
      const double c = cuts[static_cast<std::size_t>(i) + 1] -
                       cuts[static_cast<std::size_t>(i)];
      snap.cost.push_back(std::max(c, 1e-6));
      snap.state.push_back(1.0);
      // Start everything hashed onto instance 0 — maximally imbalanced.
      snap.hash_dest.push_back(0);
      snap.current.push_back(0);
    }
  }
  snap.validate();
  return snap;
}

}  // namespace skewless::testutil
