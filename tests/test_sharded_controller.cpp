// Unit coverage for the sharded controller tier: the ShardPool fork-join
// primitive, the shard_of_key / shard_config derivations every layer
// shares, ShardedWorkerSlab sectioning + wire round-trip, and the
// ShardedSketchStats provider's agreement with the single-window
// reference. The whole binary carries the "threaded" label so the TSan
// leg machine-checks the pool's generation handshake.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "core/sharded_controller.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {
namespace {

SketchStatsConfig test_config(std::size_t heavy_capacity = 64,
                              double epsilon = 1e-3) {
  SketchStatsConfig cfg;
  cfg.epsilon = epsilon;
  cfg.delta = 0.01;
  cfg.heavy_capacity = heavy_capacity;
  cfg.promote_fraction = 0.0;
  return cfg;
}

// ---------------------------------------------------------------------------
// ShardPool

TEST(ShardPool, RunsEveryIndexExactlyOnce) {
  ShardPool pool(7);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ShardPool, ReusableAcrossGenerations) {
  // Many small rounds with varying task counts: exercises the generation
  // counter and the stale-worker crossover path (a worker waking into a
  // later generation must not double-claim indices).
  ShardPool pool(3);
  for (int round = 1; round <= 200; ++round) {
    const auto tasks = static_cast<std::size_t>(1 + (round % 7));
    std::atomic<std::size_t> sum{0};
    pool.run(tasks, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), tasks * (tasks + 1) / 2) << "round " << round;
  }
}

TEST(ShardPool, ZeroWorkersRunsInline) {
  // The S = 1 configuration: no threads exist, run() is a plain loop on
  // the calling thread — the byte-identity anchor must not even create a
  // scheduling opportunity.
  ShardPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> order;
  pool.run(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// shard_of_key / shard_config

TEST(ShardConfig, ShardOfKeyIsStableAndBounded) {
  for (std::size_t shards : {1u, 2u, 4u, 8u, 16u}) {
    for (KeyId key = 0; key < 1000; ++key) {
      const std::size_t s = shard_of_key(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of_key(key, shards));  // stable
    }
  }
  // shards <= 1 collapses to shard 0 without hashing.
  EXPECT_EQ(shard_of_key(12345, 0), 0u);
  EXPECT_EQ(shard_of_key(12345, 1), 0u);
}

TEST(ShardConfig, DenseDomainSpreadsAcrossShards) {
  // The reason shard_of_key is mix64 and not key % S: a dense key domain
  // must spread near-uniformly, not round-robin. Over 100k sequential
  // keys every shard should hold close to 1/S of the domain.
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kKeys = 100000;
  std::vector<std::size_t> counts(kShards, 0);
  for (KeyId key = 0; key < kKeys; ++key) ++counts[shard_of_key(key, kShards)];
  const double expected = static_cast<double>(kKeys) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], expected * 0.9) << "shard " << s;
    EXPECT_LT(counts[s], expected * 1.1) << "shard " << s;
  }
}

TEST(ShardConfig, DerivationScalesGeometryOnly) {
  SketchStatsConfig cfg = test_config(100, 1e-4);
  cfg.seed = 99;

  const SketchStatsConfig same = shard_config(cfg, 1);
  EXPECT_DOUBLE_EQ(same.epsilon, cfg.epsilon);
  EXPECT_EQ(same.heavy_capacity, cfg.heavy_capacity);

  const SketchStatsConfig quarter = shard_config(cfg, 4);
  EXPECT_DOUBLE_EQ(quarter.epsilon, 4e-4);  // width divides by ~S
  EXPECT_EQ(quarter.heavy_capacity, 25u);   // ceil(100 / 4)
  EXPECT_EQ(quarter.seed, cfg.seed);
  EXPECT_DOUBLE_EQ(quarter.delta, cfg.delta);
  EXPECT_DOUBLE_EQ(quarter.promote_fraction, cfg.promote_fraction);

  // Capacity never rounds to zero, however many shards.
  EXPECT_GE(shard_config(test_config(3), 16).heavy_capacity, 1u);
}

// ---------------------------------------------------------------------------
// ShardedWorkerSlab

TEST(ShardedWorkerSlab, RoutesEachKeyToItsOwningSection) {
  constexpr std::size_t kShards = 4;
  ShardedWorkerSlab slab(test_config(), kShards);
  ASSERT_EQ(slab.shard_count(), kShards);

  Xoshiro256 rng(7);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const KeyId key = static_cast<KeyId>(rng.next_below(500));
    const Cost c = 1.0 + static_cast<double>(rng.next_below(4));
    slab.add(key, c, 8.0, 1);
    total += c;
  }
  slab.add(499, 1.0, 8.0, 1);  // pin the key bound deterministically
  total += 1.0;
  // Mass is conserved across sections and no section is empty.
  double section_total = 0.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const double sec = slab.section(s).total_cost();
    EXPECT_GT(sec, 0.0) << "section " << s;
    section_total += sec;
  }
  EXPECT_DOUBLE_EQ(section_total, total);
  EXPECT_DOUBLE_EQ(slab.total_cost(), total);
  EXPECT_EQ(slab.key_bound(), 500u);
}

TEST(ShardedWorkerSlab, SerializeRoundTripsAndRejectsShardMismatch) {
  constexpr std::size_t kShards = 4;
  const auto cfg = test_config();
  ShardedWorkerSlab slab(cfg, kShards);
  slab.set_heavy_keys({3, 11, 42});
  Xoshiro256 rng(13);
  for (int i = 0; i < 500; ++i) {
    slab.add(static_cast<KeyId>(rng.next_below(64)), 2.0, 4.0, 1);
  }
  slab.set_epoch(17);

  ByteWriter out;
  slab.serialize(out);
  const std::vector<std::uint8_t> bytes = out.bytes();

  // Same shard count: decodes and the re-encoding is byte-identical.
  ShardedWorkerSlab copy(cfg, kShards);
  ByteReader in(bytes, ByteReader::Untrusted{});
  ASSERT_TRUE(copy.deserialize_from(in));
  EXPECT_EQ(copy.epoch(), 17u);
  EXPECT_DOUBLE_EQ(copy.total_cost(), slab.total_cost());
  ByteWriter out2;
  copy.serialize(out2);
  EXPECT_EQ(out2.bytes(), bytes);

  // Mismatched shard count: rejected with the sticky error flag set, the
  // same way a geometry mismatch is — the frame gets dropped, not
  // misinterpreted.
  ShardedWorkerSlab wrong(cfg, kShards * 2);
  ByteReader bad(bytes, ByteReader::Untrusted{});
  EXPECT_FALSE(wrong.deserialize_from(bad));
}

// ---------------------------------------------------------------------------
// ShardedSketchStats

TEST(ShardedSketchStats, SingleShardMatchesWindowExactly) {
  // S = 1 is the identity anchor: every provider query must agree with a
  // plain SketchStatsWindow fed the same stream, bit for bit.
  const auto cfg = test_config(32);
  SketchStatsWindow window(300, 2, cfg);
  ShardedSketchStats sharded(300, 2, cfg, 1);
  ASSERT_EQ(sharded.slab_shards(), 1u);

  Xoshiro256 rng(5);
  for (int interval = 0; interval < 3; ++interval) {
    for (int i = 0; i < 1500; ++i) {
      const KeyId key = static_cast<KeyId>(rng.next_below(300));
      const Cost c = static_cast<double>(1 + rng.next_below(6));
      const Bytes b = static_cast<double>(rng.next_below(16));
      const auto dest = static_cast<InstanceId>(key % 3);
      window.record(key, c, b, 1, dest);
      sharded.record(key, c, b, 1, dest);
    }
    window.roll();
    sharded.roll();
  }

  EXPECT_EQ(sharded.heavy_keys(), window.heavy_keys());
  EXPECT_EQ(sharded.closed_intervals(), window.closed_intervals());
  EXPECT_EQ(sharded.total_promotions(), window.total_promotions());
  EXPECT_DOUBLE_EQ(sharded.total_windowed_state(),
                   window.total_windowed_state());

  std::vector<KeyId> kw, ks;
  std::vector<Cost> cw, cs, ccw, ccs;
  std::vector<Bytes> sw, ss, csw, css;
  window.synthesize_compact(3, kw, cw, sw, ccw, csw);
  sharded.synthesize_compact(3, ks, cs, ss, ccs, css);
  EXPECT_EQ(kw, ks);
  ASSERT_EQ(cw.size(), cs.size());
  EXPECT_EQ(0, std::memcmp(cw.data(), cs.data(), cw.size() * sizeof(Cost)));
  ASSERT_EQ(ccw.size(), ccs.size());
  EXPECT_EQ(0, std::memcmp(ccw.data(), ccs.data(), ccw.size() * sizeof(Cost)));

  std::vector<Cost> dw, ds;
  std::vector<Bytes> dsw, dss;
  window.synthesize_dense(dw, dsw);
  sharded.synthesize_dense(ds, dss);
  ASSERT_EQ(dw.size(), ds.size());
  EXPECT_EQ(0, std::memcmp(dw.data(), ds.data(), dw.size() * sizeof(Cost)));
  EXPECT_EQ(0, std::memcmp(dsw.data(), dss.data(), dsw.size() * sizeof(Bytes)));
}

TEST(ShardedSketchStats, ConcurrentAbsorbIsDeterministic) {
  // Two providers absorbing the same sealed slabs in the same worker
  // order must agree exactly, whatever the pool's scheduling did — the
  // per-shard absorb order is the only order that matters, and the
  // sequential worker loop fixes it.
  constexpr std::size_t kShards = 8;
  constexpr int kWorkers = 4;
  const auto cfg = test_config(128);

  auto run_once = [&] {
    ShardedSketchStats stats(4000, 2, cfg, kShards);
    Xoshiro256 rng(21);
    for (int interval = 0; interval < 3; ++interval) {
      std::vector<ShardedWorkerSlab> slabs;
      slabs.reserve(kWorkers);
      for (int w = 0; w < kWorkers; ++w) slabs.emplace_back(cfg, kShards);
      const auto heavy = stats.heavy_keys();
      for (auto& slab : slabs) slab.set_heavy_keys(heavy);
      for (int i = 0; i < 4000; ++i) {
        const KeyId key = static_cast<KeyId>(rng.next_below(4000));
        const auto w = static_cast<std::size_t>(key % kWorkers);
        slabs[w].add(key, static_cast<double>(1 + rng.next_below(3)), 4.0, 1);
      }
      for (int w = 0; w < kWorkers; ++w) {
        stats.absorb_slab(slabs[static_cast<std::size_t>(w)],
                          static_cast<InstanceId>(w));
      }
      stats.roll();
    }
    std::vector<KeyId> keys;
    std::vector<Cost> cost, cold_cost;
    std::vector<Bytes> state, cold_state;
    stats.synthesize_compact(kWorkers, keys, cost, state, cold_cost,
                             cold_state);
    return std::make_tuple(keys, cost, cold_cost, stats.total_promotions(),
                           stats.total_windowed_state());
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_DOUBLE_EQ(std::get<4>(a), std::get<4>(b));
}

TEST(ShardedSketchStats, ShardsHoldDisjointKeys) {
  constexpr std::size_t kShards = 4;
  ShardedSketchStats stats(500, 2, test_config(512), kShards);
  for (KeyId key = 0; key < 500; ++key) stats.record(key, 1.0, 2.0, 1);
  stats.roll();
  stats.roll();  // second roll promotes the first interval's candidates

  std::vector<std::size_t> owners(500, kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (const KeyId key : stats.shard(s).heavy_keys()) {
      ASSERT_EQ(owners[static_cast<std::size_t>(key)], kShards)
          << "key " << key << " in two shards";
      owners[static_cast<std::size_t>(key)] = s;
      EXPECT_EQ(s, shard_of_key(key, kShards));
    }
  }
  // Global heavy view is the sorted concatenation of the shard views.
  const auto heavy = stats.heavy_keys();
  EXPECT_TRUE(std::is_sorted(heavy.begin(), heavy.end()));
  const std::size_t shard_total = std::accumulate(
      owners.begin(), owners.end(), std::size_t{0},
      [&](std::size_t acc, std::size_t o) { return acc + (o < kShards); });
  EXPECT_EQ(heavy.size(), shard_total);
}

}  // namespace
}  // namespace skewless
