// Space-Saving (Metwally, Agrawal & El Abbadi, ICDT'05) — deterministic
// top-k tracking of a weighted stream in O(capacity) memory.
//
// Invariants with capacity m over a stream of total weight W:
//   * tracked count(k) ≥ true weight(k)            (overestimate)
//   * count(k) − error(k) ≤ true weight(k)         (error bounds the slack)
//   * every key with true weight > W / m is tracked (guaranteed heavy
//     hitters — the property the sketch stats window's promotion relies on)
//
// Implementation: hash map + lazy min-heap of (count, key) snapshots.
// Eviction picks the minimum (count, key) pair, so runs are deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace skewless {

class SpaceSaving {
 public:
  struct Entry {
    KeyId key = 0;
    double count = 0.0;  // overestimate of the key's true weight
    double error = 0.0;  // count inherited from the evicted predecessor
    /// Last observed routing destination of the key (kNilInstance when
    /// never supplied). A key routes to exactly one instance within an
    /// interval, so "last" is also "only" — the sketch stats window uses
    /// it to debit the right per-instance cold aggregate on promotion.
    InstanceId dest = kNilInstance;
  };

  explicit SpaceSaving(std::size_t capacity);

  /// Observes `weight` more mass on `key`, optionally tagging the
  /// instance the key currently routes to.
  void add(KeyId key, double weight = 1.0, InstanceId dest = kNilInstance);

  /// Unions another tracker into this one (shared-nothing aggregation:
  /// per-worker trackers merged at an interval boundary). For keys
  /// tracked on both sides, counts and errors add; keys tracked on only
  /// one side carry over unchanged. The union NEVER drops an entry, so
  /// size() may exceed capacity() after merging (bounded by the sum of
  /// the source sizes); a later add() that inserts still evicts the
  /// minimum, and callers that want the bound back can take the top
  /// entries of entries_by_count(). Not truncating is what keeps the
  /// guarantee below exact even for CHAINED merges (N per-worker
  /// trackers folded one at a time): truncating intermediate unions
  /// could drop a key whose mass is still arriving from later workers.
  ///
  /// Invariants after any sequence of merges of trackers with capacity
  /// ≥ m, over the combined stream of weight W:
  ///   * sum of all counts == W (each source preserves it; addition
  ///     preserves it);
  ///   * count(k) − error(k) ≤ true weight(k), inherited per key by
  ///     summation (sources where k went untracked only add true mass);
  ///   * count(k) ≥ true weight(k) holds for keys tracked by EVERY
  ///     source that observed them — a key evicted in one source
  ///     contributes nothing from that stream, so the union's count can
  ///     undershoot such a key (its guaranteed bound still never lies);
  ///   * every key with true combined weight > W / m is tracked: such a
  ///     key must carry > W_s / m in at least one source stream s (the
  ///     weights sum), so that source tracked it, and the union drops
  ///     nothing.
  void merge(const SpaceSaving& other);

  /// Same union, from a raw summary: `entries` must satisfy the Entry
  /// invariants (count ≥ true ≥ count − error) over a stream of weight
  /// `total_weight`, in deterministic order. This is how a MisraGries
  /// worker summary folds into a Space-Saving union.
  void merge(const std::vector<Entry>& entries, double total_weight);

  /// Single-entry union, same invariants as the vector overload without
  /// the container — how a demoted heavy key's decayed standing returns
  /// to the sketch window's decayed tracker.
  void merge_entry(const Entry& entry, double total_weight);

  /// The tracked entry for `key`, or nullptr if untracked.
  [[nodiscard]] const Entry* find(KeyId key) const;

  /// All tracked entries, sorted by count descending (key ascending on
  /// ties) — deterministic.
  [[nodiscard]] std::vector<Entry> entries_by_count() const;

  /// The entries with count ≥ min_count, sorted exactly like
  /// entries_by_count(). Equivalent to filtering that list — but a
  /// consumer that would stop scanning at the first entry below
  /// min_count (the promotion pass) gets the same prefix while sorting
  /// only the filtered few instead of the whole tracker, which after
  /// non-truncating worker-slab unions can hold tens of thousands of
  /// entries.
  [[nodiscard]] std::vector<Entry> entries_by_count_at_least(
      double min_count) const;

  /// Entries whose guaranteed lower bound (count − error) is ≥ threshold.
  /// Since count − error never exceeds the true weight, every returned
  /// key provably carries ≥ threshold of true weight.
  [[nodiscard]] std::vector<Entry> guaranteed(double threshold) const;

  [[nodiscard]] double total_weight() const { return total_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();

 private:
  struct HeapItem {
    double count;
    KeyId key;
  };
  /// Min-heap order on (count, key).
  static bool heap_after(const HeapItem& a, const HeapItem& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key > b.key;
  }

  void push_heap_item(KeyId key, double count);
  void compact_heap();

  std::size_t capacity_;
  double total_ = 0.0;
  std::unordered_map<KeyId, Entry> map_;
  std::vector<HeapItem> heap_;  // lazy: stale items skipped on pop
};

/// Misra-Gries / "frequent items" heavy-hitter summary (Misra & Gries
/// '82, in the offset formulation used by modern frequent-items
/// sketches): the amortized-O(1) alternative to SpaceSaving for hot
/// paths that cannot afford per-add heap maintenance — specifically the
/// WorkerSketchSlab data path, where SpaceSaving's eviction (heap pop +
/// push per new cold key) measurably dominated per-tuple cost.
///
/// Design: a plain hash map plus a scalar `offset`. An untracked key
/// inserts with count = offset + weight, error = offset. When the map
/// exceeds 2×capacity, one O(size) prune finds the (capacity+1)-th
/// largest count, drops every entry ≤ it (a value threshold — ties drop
/// together, so the surviving set is deterministic) and raises `offset`
/// to the cutoff. No heap, no per-add eviction.
///
/// Invariants over a stream of total weight W (same Entry semantics as
/// SpaceSaving, so summaries union via SpaceSaving::merge):
///   * count(k) ≥ true weight(k): by induction, a key's mass before its
///     latest insertion is ≤ offset at that moment;
///   * count(k) − error(k) ≤ true weight(k);
///   * every untracked key has true weight ≤ offset, and each prune's
///     cutoff is ≤ (sum of counts)/(capacity+1) — the offset stays
///     O(W / capacity), which is the nomination guarantee promotion
///     needs (the classic frequent-items bound).
class MisraGries {
 public:
  explicit MisraGries(std::size_t capacity);

  /// Observes `weight` more mass on `key`. Amortized O(1).
  void add(KeyId key, double weight = 1.0);

  /// The tracked entry for `key`, or nullptr if untracked.
  [[nodiscard]] const SpaceSaving::Entry* find(KeyId key) const;

  /// All tracked entries, sorted by count descending (key ascending on
  /// ties) — deterministic.
  [[nodiscard]] std::vector<SpaceSaving::Entry> entries_by_count() const;

  /// Rebuilds the tracker from a serialized summary (the net layer's
  /// boundary-summary wire format): replaces the tracked entries,
  /// total_weight() and offset() wholesale. `entries` must satisfy the
  /// Entry invariants over a stream of weight `total_weight` with
  /// untracked-mass bound `offset` — i.e. be the output of another
  /// tracker of the same capacity, which is what the slab codec ships.
  void restore(const std::vector<SpaceSaving::Entry>& entries,
               double total_weight, double offset);

  /// All tracked entries in map-iteration order — NOT sorted. For
  /// consumers whose results are order-independent (SpaceSaving::merge
  /// accumulates per key and every observable output of the union is
  /// defined by a total order), skipping the sort removes the dominant
  /// cost of summarizing a full tracker on the boundary-merge path.
  [[nodiscard]] std::vector<SpaceSaving::Entry> entries_unsorted() const;

  [[nodiscard]] double total_weight() const { return total_; }
  /// Upper bound on any untracked key's true weight.
  [[nodiscard]] double offset() const { return offset_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();

 private:
  void prune();

  std::size_t capacity_;
  double total_ = 0.0;
  double offset_ = 0.0;
  std::unordered_map<KeyId, SpaceSaving::Entry> map_;
  std::vector<double> prune_scratch_;
};

}  // namespace skewless
