// Space-Saving (Metwally, Agrawal & El Abbadi, ICDT'05) — deterministic
// top-k tracking of a weighted stream in O(capacity) memory.
//
// Invariants with capacity m over a stream of total weight W:
//   * tracked count(k) ≥ true weight(k)            (overestimate)
//   * count(k) − error(k) ≤ true weight(k)         (error bounds the slack)
//   * every key with true weight > W / m is tracked (guaranteed heavy
//     hitters — the property the sketch stats window's promotion relies on)
//
// Implementation: hash map + lazy min-heap of (count, key) snapshots.
// Eviction picks the minimum (count, key) pair, so runs are deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace skewless {

class SpaceSaving {
 public:
  struct Entry {
    KeyId key = 0;
    double count = 0.0;  // overestimate of the key's true weight
    double error = 0.0;  // count inherited from the evicted predecessor
  };

  explicit SpaceSaving(std::size_t capacity);

  /// Observes `weight` more mass on `key`.
  void add(KeyId key, double weight = 1.0);

  /// The tracked entry for `key`, or nullptr if untracked.
  [[nodiscard]] const Entry* find(KeyId key) const;

  /// All tracked entries, sorted by count descending (key ascending on
  /// ties) — deterministic.
  [[nodiscard]] std::vector<Entry> entries_by_count() const;

  /// Entries whose guaranteed lower bound (count − error) is ≥ threshold.
  /// Since count − error never exceeds the true weight, every returned
  /// key provably carries ≥ threshold of true weight.
  [[nodiscard]] std::vector<Entry> guaranteed(double threshold) const;

  [[nodiscard]] double total_weight() const { return total_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t memory_bytes() const;

  void clear();

 private:
  struct HeapItem {
    double count;
    KeyId key;
  };
  /// Min-heap order on (count, key).
  static bool heap_after(const HeapItem& a, const HeapItem& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key > b.key;
  }

  void push_heap_item(KeyId key, double count);
  void compact_heap();

  std::size_t capacity_;
  double total_ = 0.0;
  std::unordered_map<KeyId, Entry> map_;
  std::vector<HeapItem> heap_;  // lazy: stale items skipped on pop
};

}  // namespace skewless
