#include "sketch/sharded_worker_slab.h"

namespace skewless {

SketchStatsConfig shard_config(const SketchStatsConfig& config,
                               std::size_t shards) {
  if (shards <= 1) return config;
  SketchStatsConfig sharded = config;
  sharded.epsilon = config.epsilon * static_cast<double>(shards);
  sharded.heavy_capacity =
      (config.heavy_capacity + shards - 1) / shards;
  if (sharded.heavy_capacity == 0) sharded.heavy_capacity = 1;
  return sharded;
}

ShardedWorkerSlab::ShardedWorkerSlab(const SketchStatsConfig& config,
                                     std::size_t shards) {
  const std::size_t count = shards == 0 ? 1 : shards;
  const SketchStatsConfig section_config = shard_config(config, count);
  sections_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    sections_.emplace_back(section_config);
  }
}

void ShardedWorkerSlab::add(KeyId key, Cost cost, Bytes state_bytes,
                            std::uint64_t frequency) {
  sections_[shard_of_key(key, sections_.size())].add(key, cost, state_bytes,
                                                     frequency);
}

void ShardedWorkerSlab::add_batch(
    const std::unordered_map<KeyId, WorkerSketchSlab::KeyAgg>& batch) {
  if (sections_.size() == 1) {
    sections_.front().add_batch(batch);
    return;
  }
  for (const auto& [key, agg] : batch) {
    sections_[shard_of_key(key, sections_.size())].add(
        key, agg.cost, agg.state_bytes, agg.frequency);
  }
}

void ShardedWorkerSlab::set_heavy_keys(const std::vector<KeyId>& keys) {
  if (sections_.size() == 1) {
    sections_.front().set_heavy_keys(keys);
    return;
  }
  std::vector<std::vector<KeyId>> split(sections_.size());
  for (const KeyId key : keys) {
    split[shard_of_key(key, sections_.size())].push_back(key);
  }
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    sections_[s].set_heavy_keys(split[s]);
  }
}

void ShardedWorkerSlab::clear() {
  for (WorkerSketchSlab& section : sections_) section.clear();
}

void ShardedWorkerSlab::set_epoch(std::uint64_t epoch) {
  for (WorkerSketchSlab& section : sections_) section.set_epoch(epoch);
}

Cost ShardedWorkerSlab::total_cost() const {
  Cost total = 0.0;
  for (const WorkerSketchSlab& section : sections_) {
    total += section.total_cost();
  }
  return total;
}

std::size_t ShardedWorkerSlab::key_bound() const {
  std::size_t bound = 0;
  for (const WorkerSketchSlab& section : sections_) {
    if (section.key_bound() > bound) bound = section.key_bound();
  }
  return bound;
}

std::size_t ShardedWorkerSlab::memory_bytes() const {
  std::size_t total = sizeof(*this);
  for (const WorkerSketchSlab& section : sections_) {
    total += section.memory_bytes();
  }
  return total;
}

void ShardedWorkerSlab::serialize(ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const WorkerSketchSlab& section : sections_) {
    section.serialize(out);
  }
}

bool ShardedWorkerSlab::deserialize_from(ByteReader& in) {
  const std::uint32_t count = in.u32();
  if (!in.ok()) return false;
  if (count != sections_.size()) {
    in.fail();
    return false;
  }
  for (WorkerSketchSlab& section : sections_) {
    if (!section.deserialize_from(in)) return false;
  }
  return true;
}

}  // namespace skewless
