// SSE2 kernel tier — 2-wide lanes, baseline ISA on x86-64 (no special
// compile flags needed; the __SSE2__ guard keeps the TU an empty stub on
// other architectures). The interesting trick is the 64×64→64 multiply:
// SSE2 has no 64-bit integer multiply, so mix64's two multiplies are
// synthesized from 32-bit partial products:
//   a*b mod 2^64 = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)
// — exact in modular arithmetic, so the vector hashes are bit-identical
// to the scalar ones.
#include "sketch/simd/sketch_kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace skewless::simd {
namespace {

constexpr std::size_t kStrideAheadCells = 64;

inline __m128i mul64_epi64(__m128i a, __m128i b) {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i b_hi = _mm_srli_epi64(b, 32);
  const __m128i lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a_hi, b), _mm_mul_epu32(a, b_hi));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i mix64v(__m128i z) {
  z = _mm_add_epi64(
      z, _mm_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  z = mul64_epi64(
      _mm_xor_si128(z, _mm_srli_epi64(z, 30)),
      _mm_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64_epi64(
      _mm_xor_si128(z, _mm_srli_epi64(z, 27)),
      _mm_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

/// hash64(key, seed) = mix64(key ^ (seed * A + B)); the seed-derived
/// constant is scalar per call, so the vector body is one xor + mix.
inline std::uint64_t seed_constant(std::uint64_t seed) {
  return seed * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL;
}

void sse2_make_probes(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* h1,
                      std::uint64_t* h2) {
  const __m128i c1 = _mm_set1_epi64x(
      static_cast<long long>(seed_constant(seed)));
  const __m128i c2 = _mm_set1_epi64x(static_cast<long long>(
      seed_constant(seed ^ 0x9e3779b97f4a7c15ULL)));
  const __m128i one = _mm_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h1 + i),
                     mix64v(_mm_xor_si128(k, c1)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h2 + i),
                     _mm_or_si128(mix64v(_mm_xor_si128(k, c2)), one));
  }
  for (; i < n; ++i) {
    scalar_kernels().make_probes(keys + i, 1, seed, h1 + i, h2 + i);
  }
}

void sse2_hash64_batch(const std::uint64_t* keys, std::size_t n,
                       std::uint64_t seed, std::uint64_t* out) {
  const __m128i c =
      _mm_set1_epi64x(static_cast<long long>(seed_constant(seed)));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     mix64v(_mm_xor_si128(k, c)));
  }
  for (; i < n; ++i) {
    scalar_kernels().hash64_batch(keys + i, 1, seed, out + i);
  }
}

void sse2_add_cells(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(dst + i,
                  _mm_add_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void sse2_sub_cells_clamped(double* dst, const double* src, std::size_t n) {
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // max(diff, +0.0) with diff as the FIRST operand: maxpd returns the
    // second operand on equal/NaN inputs, matching std::max(0.0, d)'s
    // +0.0 result for d ∈ {±0.0, NaN} bit-for-bit.
    const __m128d diff =
        _mm_sub_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(src + i));
    _mm_storeu_pd(dst + i, _mm_max_pd(diff, zero));
  }
  for (; i < n; ++i) dst[i] = dst[i] - src[i] > 0.0 ? dst[i] - src[i] : 0.0;
}

void sse2_add_strided(double* dst, const double* src, std::size_t stride,
                      std::size_t n) {
  const double* const src_end = src + n * stride;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double* s = src + i * stride;
    const double* ahead = s + kStrideAheadCells * stride;
    if (ahead < src_end) _mm_prefetch(reinterpret_cast<const char*>(ahead),
                                      _MM_HINT_T1);
    // No gather before AVX2: two scalar loads feed one vector add.
    const __m128d v = _mm_set_pd(s[stride], s[0]);
    _mm_storeu_pd(dst + i, _mm_add_pd(_mm_loadu_pd(dst + i), v));
  }
  for (; i < n; ++i) dst[i] += src[i * stride];
}

void sse2_fold_fused_rows(double* cells4, std::size_t width,
                          std::size_t mask, std::size_t depth,
                          std::uint64_t h1, std::uint64_t h2, double cost,
                          double freq, double state) {
  // Two 128-bit halves per 32-byte fused cell: {cost, freq} then
  // {state, pad}; the pad lane adds +0.0 (bit-preserving, pad is +0.0).
  const __m128d d01 = _mm_set_pd(freq, cost);
  const __m128d d23 = _mm_set_pd(0.0, state);
  for (std::size_t row = 0; row < depth; ++row) {
    const std::size_t idx =
        row * width + (static_cast<std::size_t>(h1 + row * h2) & mask);
    double* cell = cells4 + 4 * idx;
    _mm_storeu_pd(cell, _mm_add_pd(_mm_loadu_pd(cell), d01));
    _mm_storeu_pd(cell + 2, _mm_add_pd(_mm_loadu_pd(cell + 2), d23));
  }
}

const SketchKernels kSse2Kernels = {
    "sse2",
    KernelTier::kSse2,
    &sse2_make_probes,
    &sse2_hash64_batch,
    &sse2_add_cells,
    &sse2_sub_cells_clamped,
    &sse2_add_strided,
    // Row-minimum stays scalar at this tier: without a gather the vector
    // form is all shuffles. The scalar loop is already branch-free.
    scalar_kernels().estimate_min,
    &sse2_fold_fused_rows,
};

}  // namespace

const SketchKernels* sse2_kernels() { return &kSse2Kernels; }

}  // namespace skewless::simd

#else  // !__SSE2__

namespace skewless::simd {
const SketchKernels* sse2_kernels() { return nullptr; }
}  // namespace skewless::simd

#endif
