// Scalar reference kernels + the runtime dispatch. This TU is compiled
// with the project-baseline flags only; the vector tiers live in their
// own TUs (kernels_sse2.cpp / kernels_avx2.cpp) so ISA flags never leak
// into code that runs before dispatch.
#include "sketch/simd/sketch_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/hash.h"

namespace skewless::simd {
namespace {

/// Same distance the strided-merge kernels use: far enough that the
/// prefetched stripe's lines arrive before the loop reaches them, near
/// enough not to thrash a small L1.
constexpr std::size_t kStrideAheadCells = 64;

void scalar_make_probes(const std::uint64_t* keys, std::size_t n,
                        std::uint64_t seed, std::uint64_t* h1,
                        std::uint64_t* h2) {
  const std::uint64_t seed2 = seed ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h1[i] = hash64(keys[i], seed);
    h2[i] = hash64(keys[i], seed2) | 1ULL;
  }
}

void scalar_hash64_batch(const std::uint64_t* keys, std::size_t n,
                         std::uint64_t seed, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = hash64(keys[i], seed);
}

void scalar_add_cells(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void scalar_sub_cells_clamped(double* dst, const double* src,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::max(0.0, dst[i] - src[i]);
  }
}

void scalar_add_strided(double* dst, const double* src, std::size_t stride,
                        std::size_t n) {
  // One stripe of read-prefetch ahead: the strided source is the only
  // irregular access (dst streams), and the prefetch distance covers the
  // latency of its line fetches without competing with them.
  const double* ahead = src + kStrideAheadCells * stride;
  const double* const src_end = src + n * stride;
  for (std::size_t i = 0; i < n; ++i, src += stride, ahead += stride) {
    if (ahead < src_end) {
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(ahead, /*rw=*/0, /*locality=*/2);
#endif
    }
    dst[i] += *src;
  }
}

double scalar_estimate_min(const double* cells, std::size_t width,
                           std::size_t mask, std::size_t depth,
                           std::uint64_t h1, std::uint64_t h2) {
  double est = cells[static_cast<std::size_t>(h1) & mask];
  for (std::size_t row = 1; row < depth; ++row) {
    est = std::min(
        est, cells[row * width + (static_cast<std::size_t>(h1 + row * h2) &
                                  mask)]);
  }
  return est;
}

void scalar_fold_fused_rows(double* cells4, std::size_t width,
                            std::size_t mask, std::size_t depth,
                            std::uint64_t h1, std::uint64_t h2, double cost,
                            double freq, double state) {
  for (std::size_t row = 0; row < depth; ++row) {
    const std::size_t idx =
        row * width + (static_cast<std::size_t>(h1 + row * h2) & mask);
    double* cell = cells4 + 4 * idx;
    cell[0] += cost;
    cell[1] += freq;
    cell[2] += state;
  }
}

constexpr SketchKernels kScalarKernels = {
    "scalar",
    KernelTier::kScalar,
    &scalar_make_probes,
    &scalar_hash64_batch,
    &scalar_add_cells,
    &scalar_sub_cells_clamped,
    &scalar_add_strided,
    &scalar_estimate_min,
    &scalar_fold_fused_rows,
};

KernelTier probe_max_supported_tier() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (avx2_kernels() != nullptr && __builtin_cpu_supports("avx2")) {
    return KernelTier::kAvx2;
  }
  if (sse2_kernels() != nullptr && __builtin_cpu_supports("sse2")) {
    return KernelTier::kSse2;
  }
#endif
  return KernelTier::kScalar;
}

std::atomic<const SketchKernels*> g_active{nullptr};

}  // namespace

const SketchKernels& scalar_kernels() { return kScalarKernels; }

KernelTier max_supported_tier() {
  static const KernelTier tier = probe_max_supported_tier();
  return tier;
}

KernelTier default_tier() {
  const char* force = std::getenv("SKEWLESS_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return KernelTier::kScalar;
  }
  return max_supported_tier();
}

const SketchKernels& kernels_for(KernelTier tier) {
  const KernelTier clamped = std::min(tier, max_supported_tier());
  switch (clamped) {
    case KernelTier::kAvx2:
      if (const SketchKernels* k = avx2_kernels()) return *k;
      [[fallthrough]];
    case KernelTier::kSse2:
      if (const SketchKernels* k = sse2_kernels()) return *k;
      [[fallthrough]];
    case KernelTier::kScalar:
      break;
  }
  return kScalarKernels;
}

const SketchKernels& active_kernels() {
  const SketchKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // First use: resolve the default tier. Concurrent first calls race
    // benignly — both resolve the same table.
    k = &kernels_for(default_tier());
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

void set_active_tier(KernelTier tier) {
  g_active.store(&kernels_for(tier), std::memory_order_release);
}

void force_scalar() { set_active_tier(KernelTier::kScalar); }

const char* tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSse2:
      return "sse2";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

}  // namespace skewless::simd
