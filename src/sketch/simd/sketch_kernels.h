// SketchKernels — the vectorized sketch hot-path layer with runtime CPU
// dispatch. One function-pointer table per ISA tier (scalar baseline,
// SSE2, AVX2), resolved ONCE at first use from `__builtin_cpu_supports`,
// overridable by the SKEWLESS_FORCE_SCALAR environment variable and at
// runtime by set_active_tier()/force_scalar() (the `--no-simd` flag and
// the bit-identity tests force tiers through that API).
//
// Every kernel is BIT-IDENTICAL to the scalar loop it replaces. This is
// not an accident of the workload but a property of the operations:
//
//  * probe generation / hashing is exact integer arithmetic — lane order
//    cannot change a result;
//  * the cell-wise merge loops (add_cells / sub_cells_clamped /
//    add_strided) perform exactly ONE floating-point add per cell per
//    call, and a vector lane computes the same `dst[i] + src[i]` the
//    scalar iteration would — there is no re-association anywhere;
//  * estimate_min reduces with min over finite non-negative doubles
//    (cells are sums of non-negative amounts: never NaN, never -0.0),
//    which is order-independent;
//  * fold_fused_rows adds one (cost, freq, state) triple to `depth`
//    fused cells — per-cell adds again, with the vector path adding
//    +0.0 to the pad lane (bit-preserving: the pad is always +0.0).
//
// The AVX2 translation unit is compiled with -mavx2 ONLY (never -mfma:
// a fused multiply-add would change double results and break the
// bit-identity contract — there are no FP multiplies in these kernels,
// but the flag stays off on principle). ISA flags are confined to the
// kernel TUs; this header and the dispatch TU build with the project
// baseline so the library keeps running on any x86-64 (or non-x86)
// host, with unsupported tiers simply unavailable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace skewless::simd {

/// Dispatch tiers, ordered: a tier is selectable iff the CPU supports it
/// AND the build produced its kernels. SSE2 is baseline on x86-64, so in
/// practice the runtime choice is scalar vs sse2 vs avx2.
enum class KernelTier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The kernel vtable. All geometry contracts mirror CountMinSketch:
/// `width` is a power of two, `mask == width - 1`, rows probe
/// `(h1 + row * h2) & mask` (Kirsch–Mitzenmacher double hashing with h2
/// forced odd).
struct SketchKernels {
  /// Tier name for reports: "scalar" | "sse2" | "avx2".
  const char* name;
  KernelTier tier;

  /// Batched K–M probe generation (structure-of-arrays):
  ///   h1[i] = hash64(keys[i], seed)
  ///   h2[i] = hash64(keys[i], seed ^ 0x9e3779b97f4a7c15) | 1
  /// — exactly CountMinSketch::make_probe, over a whole batch.
  void (*make_probes)(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* h1,
                      std::uint64_t* h2);

  /// out[i] = hash64(keys[i], seed) — the routing path's batched hash
  /// (consistent-hash ring lookups).
  void (*hash64_batch)(const std::uint64_t* keys, std::size_t n,
                       std::uint64_t seed, std::uint64_t* out);

  /// dst[i] += src[i] (CountMinSketch::add_sketch).
  void (*add_cells)(double* dst, const double* src, std::size_t n);

  /// dst[i] = max(0.0, dst[i] - src[i]) (subtract_sketch's clamped
  /// unmerge; max semantics match std::max(0.0, d) bit-for-bit,
  /// including d == ±0.0 and NaN).
  void (*sub_cells_clamped)(double* dst, const double* src, std::size_t n);

  /// dst[i] += src[i * stride] — the boundary merge's interleaved cell
  /// unpack (CountMinSketch::add_interleaved). Kernels prefetch the
  /// strided source one stripe ahead (read intent; dst streams
  /// sequentially and needs no hint).
  void (*add_strided)(double* dst, const double* src, std::size_t stride,
                      std::size_t n);

  /// min over rows of cells[row * width + ((h1 + row*h2) & mask)] —
  /// CountMinSketch::estimate / the conservative update's row minimum
  /// (AVX2: one gather over up to 4 rows at a time).
  double (*estimate_min)(const double* cells, std::size_t width,
                         std::size_t mask, std::size_t depth,
                         std::uint64_t h1, std::uint64_t h2);

  /// WorkerSketchSlab's fused fold: for each row, the 32-byte fused cell
  /// at `cells4 + 4 * (row * width + ((h1 + row*h2) & mask))` gets
  /// {cost, freq, state, +0.0} added lane-wise ({cost, freq, state, pad}
  /// layout; the pad add is bit-preserving because pad is always +0.0).
  void (*fold_fused_rows)(double* cells4, std::size_t width,
                          std::size_t mask, std::size_t depth,
                          std::uint64_t h1, std::uint64_t h2, double cost,
                          double freq, double state);
};

/// The scalar reference kernels (always available; the bit-identity
/// anchor every vector tier is fuzzed against).
[[nodiscard]] const SketchKernels& scalar_kernels();

/// The SSE2 / AVX2 tables, or nullptr when the build (or architecture)
/// does not provide them. Returning a table does NOT mean the CPU can
/// run it — that is max_supported_tier()'s job; call these directly only
/// from tests that already checked support.
[[nodiscard]] const SketchKernels* sse2_kernels();
[[nodiscard]] const SketchKernels* avx2_kernels();

/// Best tier this build AND this CPU support (runtime
/// __builtin_cpu_supports probe, cached).
[[nodiscard]] KernelTier max_supported_tier();

/// The tier first-use dispatch resolves to: max_supported_tier(), unless
/// the SKEWLESS_FORCE_SCALAR environment variable is set to anything
/// non-empty other than "0".
[[nodiscard]] KernelTier default_tier();

/// The kernels for `tier`, clamped down to the best supported tier.
[[nodiscard]] const SketchKernels& kernels_for(KernelTier tier);

/// The active dispatch table. Resolved once (default_tier()) on first
/// call; every sketch hot path loads this pointer per operation, so a
/// set_active_tier() takes effect immediately for subsequent calls.
[[nodiscard]] const SketchKernels& active_kernels();

/// Runtime override (clamped to supported). Not synchronized with
/// concurrent sketch operations — switch tiers only while no engine is
/// running (flag parsing, test setup).
void set_active_tier(KernelTier tier);

/// set_active_tier(kScalar) — the `--no-simd` flag.
void force_scalar();

[[nodiscard]] const char* tier_name(KernelTier tier);

}  // namespace skewless::simd
