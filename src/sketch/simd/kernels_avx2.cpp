// AVX2 kernel tier — 4-wide lanes. Compiled with -mavx2 ONLY (never
// -mfma; see sketch_kernels.h for the bit-identity contract). When the
// toolchain does not pass -mavx2 for this TU, it degrades to a stub
// returning nullptr and the dispatcher clamps to SSE2/scalar.
//
// The 64×64→64 multiply uses the same 32-bit partial-product
// decomposition as the SSE2 tier (vpmuludq): exact modular arithmetic,
// so vector hashes are bit-identical to scalar. estimate_min and
// add_strided use vpgatherqpd — the one genuinely AVX2-only win on the
// merge path, since the strided source becomes a single gather.
#include "sketch/simd/sketch_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace skewless::simd {
namespace {

constexpr std::size_t kStrideAheadCells = 64;

inline __m256i mul64_epi64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i mix64v(__m256i z) {
  z = _mm256_add_epi64(
      z, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  z = mul64_epi64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64_epi64(
      _mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

inline std::uint64_t seed_constant(std::uint64_t seed) {
  return seed * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL;
}

void avx2_make_probes(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* h1,
                      std::uint64_t* h2) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<long long>(seed_constant(seed)));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(
      seed_constant(seed ^ 0x9e3779b97f4a7c15ULL)));
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h1 + i),
                        mix64v(_mm256_xor_si256(k, c1)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(h2 + i),
        _mm256_or_si256(mix64v(_mm256_xor_si256(k, c2)), one));
  }
  if (i < n) scalar_kernels().make_probes(keys + i, n - i, seed, h1 + i,
                                          h2 + i);
}

void avx2_hash64_batch(const std::uint64_t* keys, std::size_t n,
                       std::uint64_t seed, std::uint64_t* out) {
  const __m256i c =
      _mm256_set1_epi64x(static_cast<long long>(seed_constant(seed)));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        mix64v(_mm256_xor_si256(k, c)));
  }
  if (i < n) scalar_kernels().hash64_batch(keys + i, n - i, seed, out + i);
}

void avx2_add_cells(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                               _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void avx2_sub_cells_clamped(double* dst, const double* src, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // max(diff, +0.0) with diff FIRST: vmaxpd returns the second operand
    // on equal/NaN inputs, matching std::max(0.0, d) bit-for-bit.
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i));
    _mm256_storeu_pd(dst + i, _mm256_max_pd(diff, zero));
  }
  for (; i < n; ++i) dst[i] = dst[i] - src[i] > 0.0 ? dst[i] - src[i] : 0.0;
}

void avx2_add_strided(double* dst, const double* src, std::size_t stride,
                      std::size_t n) {
  const double* const src_end = src + n * stride;
  const long long s = static_cast<long long>(stride);
  const __m256i vindex = _mm256_setr_epi64x(0, s, 2 * s, 3 * s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* base = src + i * stride;
    const double* ahead = base + kStrideAheadCells * stride;
    if (ahead < src_end) {
      _mm_prefetch(reinterpret_cast<const char*>(ahead), _MM_HINT_T1);
    }
    const __m256d v = _mm256_i64gather_pd(base, vindex, /*scale=*/8);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i), v));
  }
  for (; i < n; ++i) dst[i] += src[i * stride];
}

double avx2_estimate_min(const double* cells, std::size_t width,
                         std::size_t mask, std::size_t depth,
                         std::uint64_t h1, std::uint64_t h2) {
  if (depth < 4) return scalar_kernels().estimate_min(cells, width, mask,
                                                      depth, h1, h2);
  // Gather 4 rows' probed cells at once. Indices are exact integer math;
  // the min reduction is order-independent over the finite non-negative
  // cell values, so lane order cannot change the result.
  const __m256i row = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i four = _mm256_set1_epi64x(4);
  const __m256i vh1 = _mm256_set1_epi64x(static_cast<long long>(h1));
  const __m256i vh2 = _mm256_set1_epi64x(static_cast<long long>(h2));
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vwidth = _mm256_set1_epi64x(static_cast<long long>(width));
  __m256i r = row;
  __m256d acc = _mm256_set1_pd(__builtin_huge_val());
  std::size_t d = 0;
  for (; d + 4 <= depth; d += 4) {
    const __m256i probe = _mm256_and_si256(
        _mm256_add_epi64(vh1, mul64_epi64(r, vh2)), vmask);
    // row * width fits 64 bits by construction (cells vector exists).
    const __m256i idx = _mm256_add_epi64(mul64_epi64(r, vwidth), probe);
    const __m256d v = _mm256_i64gather_pd(cells, idx, /*scale=*/8);
    acc = _mm256_min_pd(acc, v);
    r = _mm256_add_epi64(r, four);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double est = lanes[0];
  est = lanes[1] < est ? lanes[1] : est;
  est = lanes[2] < est ? lanes[2] : est;
  est = lanes[3] < est ? lanes[3] : est;
  for (; d < depth; ++d) {
    const double v =
        cells[d * width + (static_cast<std::size_t>(h1 + d * h2) & mask)];
    est = v < est ? v : est;
  }
  return est;
}

void avx2_fold_fused_rows(double* cells4, std::size_t width,
                          std::size_t mask, std::size_t depth,
                          std::uint64_t h1, std::uint64_t h2, double cost,
                          double freq, double state) {
  // One 256-bit add per fused cell; the pad lane adds +0.0
  // (bit-preserving: pad is always +0.0).
  const __m256d delta = _mm256_setr_pd(cost, freq, state, 0.0);
  for (std::size_t row = 0; row < depth; ++row) {
    const std::size_t idx =
        row * width + (static_cast<std::size_t>(h1 + row * h2) & mask);
    double* cell = cells4 + 4 * idx;
    _mm256_storeu_pd(cell, _mm256_add_pd(_mm256_loadu_pd(cell), delta));
  }
}

const SketchKernels kAvx2Kernels = {
    "avx2",
    KernelTier::kAvx2,
    &avx2_make_probes,
    &avx2_hash64_batch,
    &avx2_add_cells,
    &avx2_sub_cells_clamped,
    &avx2_add_strided,
    &avx2_estimate_min,
    &avx2_fold_fused_rows,
};

}  // namespace

const SketchKernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace skewless::simd

#else  // !__AVX2__

namespace skewless::simd {
const SketchKernels* avx2_kernels() { return nullptr; }
}  // namespace skewless::simd

#endif
