#include "sketch/space_saving.h"

#include <algorithm>
#include <iterator>

#include "common/assert.h"

namespace skewless {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  SKW_EXPECTS(capacity >= 1);
  map_.reserve(capacity);
  heap_.reserve(2 * capacity);
}

void SpaceSaving::push_heap_item(KeyId key, double count) {
  heap_.push_back(HeapItem{count, key});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

void SpaceSaving::compact_heap() {
  // Drop stale snapshots (an item is live iff it matches the map exactly);
  // bounds the heap at O(capacity) regardless of stream length.
  heap_.clear();
  for (const auto& [key, entry] : map_) {
    heap_.push_back(HeapItem{entry.count, key});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
}

void SpaceSaving::add(KeyId key, double weight, InstanceId dest) {
  SKW_EXPECTS(weight >= 0.0);
  total_ += weight;
  if (auto it = map_.find(key); it != map_.end()) {
    it->second.count += weight;
    if (dest != kNilInstance) it->second.dest = dest;
    push_heap_item(key, it->second.count);
  } else if (map_.size() < capacity_) {
    map_.emplace(key, Entry{key, weight, 0.0, dest});
    push_heap_item(key, weight);
  } else {
    // Evict the minimum live (count, key): pop stale snapshots until the
    // top matches a live entry.
    while (true) {
      SKW_ASSERT(!heap_.empty());
      const HeapItem top = heap_.front();
      const auto live = map_.find(top.key);
      if (live != map_.end() && live->second.count == top.count) break;
      std::pop_heap(heap_.begin(), heap_.end(), heap_after);
      heap_.pop_back();
    }
    const HeapItem victim = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
    map_.erase(victim.key);
    map_.emplace(key, Entry{key, victim.count + weight, victim.count, dest});
    push_heap_item(key, victim.count + weight);
  }
  if (heap_.size() > 8 * capacity_) compact_heap();
}

void SpaceSaving::merge(const SpaceSaving& other) {
  merge(other.entries_by_count(), other.total_weight());
}

void SpaceSaving::merge(const std::vector<Entry>& entries,
                        double total_weight) {
  total_ += total_weight;
  // Deterministic as long as `entries` is (entries_by_count() is).
  // No truncation — see the header for why dropping entries here would
  // break the heavy-hitter guarantee under chained merges.
  for (const Entry& e : entries) {
    if (auto it = map_.find(e.key); it != map_.end()) {
      it->second.count += e.count;
      it->second.error += e.error;
      if (e.dest != kNilInstance) it->second.dest = e.dest;
    } else {
      map_.emplace(e.key, e);
    }
  }
  compact_heap();
}

void SpaceSaving::merge_entry(const Entry& entry, double total_weight) {
  total_ += total_weight;
  if (auto it = map_.find(entry.key); it != map_.end()) {
    it->second.count += entry.count;
    it->second.error += entry.error;
    if (entry.dest != kNilInstance) it->second.dest = entry.dest;
  } else {
    map_.emplace(entry.key, entry);
  }
  compact_heap();
}

const SpaceSaving::Entry* SpaceSaving::find(KeyId key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

std::vector<SpaceSaving::Entry> SpaceSaving::entries_by_count() const {
  std::vector<Entry> out;
  out.reserve(map_.size());
  for (const auto& [key, entry] : map_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::entries_by_count_at_least(
    double min_count) const {
  std::vector<Entry> out;
  for (const auto& [key, entry] : map_) {
    if (entry.count >= min_count) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::guaranteed(
    double threshold) const {
  std::vector<Entry> out;
  for (const auto& entry : entries_by_count()) {
    if (entry.count - entry.error >= threshold) out.push_back(entry);
  }
  return out;
}

std::size_t SpaceSaving::memory_bytes() const {
  // unordered_map node ≈ entry + next pointer + allocator header.
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  return sizeof(*this) +
         map_.size() * (sizeof(std::pair<const KeyId, Entry>) + kNodeOverhead) +
         map_.bucket_count() * sizeof(void*) +
         heap_.capacity() * sizeof(HeapItem);
}

void SpaceSaving::clear() {
  map_.clear();
  heap_.clear();
  total_ = 0.0;
}

MisraGries::MisraGries(std::size_t capacity) : capacity_(capacity) {
  SKW_EXPECTS(capacity >= 1);
  map_.reserve(2 * capacity + 1);
  prune_scratch_.reserve(2 * capacity + 1);
}

void MisraGries::add(KeyId key, double weight) {
  SKW_EXPECTS(weight >= 0.0);
  total_ += weight;
  if (auto it = map_.find(key); it != map_.end()) {
    it->second.count += weight;
    return;
  }
  // The key's prior mass (never tracked, or pruned at ≤ some earlier
  // cutoff) is bounded by offset_, so starting at offset_ + weight keeps
  // the overestimate invariant; error = offset_ records the slack.
  map_.emplace(key, SpaceSaving::Entry{key, offset_ + weight, offset_});
  if (map_.size() > 2 * capacity_) prune();
}

void MisraGries::prune() {
  prune_scratch_.clear();
  for (const auto& [key, e] : map_) prune_scratch_.push_back(e.count);
  // The (capacity_+1)-th largest count: at most capacity_ entries can
  // strictly exceed it, and it is ≤ (sum of counts)/(capacity_+1).
  std::nth_element(prune_scratch_.begin(),
                   prune_scratch_.begin() + static_cast<std::ptrdiff_t>(capacity_),
                   prune_scratch_.end(), std::greater<double>());
  const double cutoff = prune_scratch_[capacity_];
  for (auto it = map_.begin(); it != map_.end();) {
    // Value threshold, not rank: equal counts drop together, so the
    // surviving set never depends on hash iteration order.
    it = it->second.count <= cutoff ? map_.erase(it) : std::next(it);
  }
  offset_ = std::max(offset_, cutoff);
}

const SpaceSaving::Entry* MisraGries::find(KeyId key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

std::vector<SpaceSaving::Entry> MisraGries::entries_by_count() const {
  std::vector<SpaceSaving::Entry> out;
  out.reserve(map_.size());
  for (const auto& [key, entry] : map_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const SpaceSaving::Entry& a, const SpaceSaving::Entry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  return out;
}

std::vector<SpaceSaving::Entry> MisraGries::entries_unsorted() const {
  std::vector<SpaceSaving::Entry> out;
  out.reserve(map_.size());
  for (const auto& [key, entry] : map_) out.push_back(entry);
  return out;
}

std::size_t MisraGries::memory_bytes() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  return sizeof(*this) +
         map_.size() *
             (sizeof(std::pair<const KeyId, SpaceSaving::Entry>) +
              kNodeOverhead) +
         map_.bucket_count() * sizeof(void*) +
         prune_scratch_.capacity() * sizeof(double);
}

void MisraGries::clear() {
  map_.clear();
  total_ = 0.0;
  offset_ = 0.0;
}

void MisraGries::restore(const std::vector<SpaceSaving::Entry>& entries,
                         double total_weight, double offset) {
  SKW_EXPECTS(entries.size() <= 2 * capacity_);
  map_.clear();
  for (const auto& e : entries) map_.emplace(e.key, e);
  total_ = total_weight;
  offset_ = offset;
}

}  // namespace skewless
