// Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms '05) over the
// KeyId domain with double-valued counters, supporting both the classic
// update and the conservative-update variant (Estan & Varghese, SIGCOMM'02)
// that only raises the cells that need raising.
//
// Guarantees (classic update, depth d = ⌈ln 1/δ⌉, width w ≥ e/ε):
//   estimate(k) ≥ true(k)                                   always
//   P[ estimate(k) − true(k) > ε · Σ true ] ≤ δ             per query
// Conservative update preserves the overestimate property and is never
// less accurate, but cell-wise merge/subtract only remain sound for the
// classic update — which is why the windowed-state ring uses add() while
// the per-interval frequency/cost sketches use add_conservative().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace skewless {

class CountMinSketch {
 public:
  struct Params {
    double epsilon = 2e-4;
    double delta = 0.01;
    std::uint64_t seed = 0x5eedc0de;
  };

  explicit CountMinSketch(Params params);

  /// Classic update: every row's cell += amount. Cell-wise add_sketch /
  /// subtract_sketch stay exact under this update.
  void add(KeyId key, double amount);

  /// Conservative update: raises each row's cell only up to
  /// min-row-estimate + amount. Tighter estimates, but the sketch is no
  /// longer a linear function of the stream (no subtract).
  void add_conservative(KeyId key, double amount);

  /// Upper-bound point estimate: min over rows.
  [[nodiscard]] double estimate(KeyId key) const;

  /// Cell-wise merge/unmerge (used to maintain a sliding-window sum of
  /// per-interval sketches). Both sketches must share width/depth/seed.
  void add_sketch(const CountMinSketch& other);
  void subtract_sketch(const CountMinSketch& other);

  /// Cell-wise merge from an interleaved external buffer: cell (row, c)
  /// is read from `cells[(row * width + c) * stride]`. The buffer must
  /// have been written with this sketch's exact geometry and probe
  /// placement (same family Params — see make_probe/probe_index, which
  /// exist so external accumulators like WorkerSketchSlab can share the
  /// placement). `total` is the exact mass the buffer accumulated.
  void add_interleaved(const double* cells, std::size_t stride,
                       std::size_t width, std::size_t depth, double total);

  void clear();

  /// Exact running total of all added amounts (maintained as a scalar;
  /// conservative updates make cell sums useless for this).
  [[nodiscard]] double total() const { return total_; }

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// The realized ε after rounding the width up to a power of two.
  [[nodiscard]] double effective_epsilon() const;
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Kirsch–Mitzenmacher double hashing: two base hashes per operation,
  /// row i probes (h1 + i·h2). h2 is forced odd so every stride is
  /// coprime with the power-of-two width — each row still touches a
  /// distinct, well-distributed cell, at 2 hash evaluations per key
  /// instead of `depth`. (K&M '06 show the pairwise-independence bounds
  /// carry over, which is all the CM guarantee needs.) The statics are
  /// public so an external accumulator (WorkerSketchSlab's fused cell
  /// array) can reproduce the exact placement of a same-seed sketch.
  struct KeyProbe {
    std::uint64_t h1;
    std::uint64_t h2;
  };
  [[nodiscard]] static KeyProbe make_probe(KeyId key, std::uint64_t seed) {
    return {hash64(key, seed),
            hash64(key, seed ^ 0x9e3779b97f4a7c15ULL) | 1ULL};
  }
  [[nodiscard]] static std::size_t probe_index(const KeyProbe& p,
                                               std::size_t row,
                                               std::size_t width_mask) {
    return static_cast<std::size_t>(p.h1 + row * p.h2) & width_mask;
  }

  /// Probe-reusing update variants: same semantics as the KeyId forms,
  /// with a caller-supplied probe, so a hot path updating SEVERAL
  /// same-family sketches for one key (the window's
  /// cost/frequency/state triple — see
  /// SketchStatsWindow::kSharedFamilySalt) hashes the key once instead
  /// of once per sketch. `probe` must come from make_probe(key, seed()).
  void add(double amount, const KeyProbe& probe);
  void add_conservative(double amount, const KeyProbe& probe);

  /// Portable software-prefetch hint for one cell (no-op where the
  /// intrinsic is unavailable). Public for the same reason as
  /// make_probe/probe_index: external accumulators that share a sketch's
  /// placement (WorkerSketchSlab's fused cells) warm the same lines.
  static void prefetch_cell(const double* cell) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(cell, /*rw=*/1, /*locality=*/1);
#else
    (void)cell;
#endif
  }

  /// Prefetches every row cell `probe` touches in THIS sketch, so a
  /// caller can overlap the cache misses of an upcoming update with
  /// other work (sibling-sketch updates, the next scratch entry).
  void prefetch(const KeyProbe& probe) const {
    for (std::size_t row = 0; row < depth_; ++row) {
      prefetch_cell(&cells_[row * width_ + cell_index(probe, row)]);
    }
  }

 private:
  [[nodiscard]] KeyProbe probe(KeyId key) const {
    return make_probe(key, seed_);
  }
  [[nodiscard]] std::size_t cell_index(const KeyProbe& p,
                                       std::size_t row) const {
    return probe_index(p, row, width_ - 1);
  }

  std::size_t width_;   // power of two
  std::size_t depth_;
  std::uint64_t seed_;
  double total_ = 0.0;
  std::vector<double> cells_;  // depth_ rows of width_ cells
};

}  // namespace skewless
