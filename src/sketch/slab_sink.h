// SketchSlabSink — the boundary-merge contract between the engines and
// whatever absorbs sealed worker slabs: the single SketchStatsWindow (the
// S = 1 identity case) or the sharded controller's ShardedSketchStats,
// which fans one ShardedWorkerSlab's per-shard sections out to S
// shard-local windows concurrently.
//
// The engines (ThreadedEngine's merge path, NetEngine's summary absorb)
// talk ONLY to this interface in sketch mode: they build per-worker
// ShardedWorkerSlabs from slab_config()/slab_shards(), hand sealed epochs
// to absorb_slab() in worker-index order, redistribute heavy_keys() at
// interval boundaries, and let the controller plan from
// synthesize_compact(). Keeping the seam this narrow is what lets the
// shard count change without either engine knowing how statistics are
// stored — the StatsProvider seam IS the shard boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sketch/stats_provider.h"

namespace skewless {

class ShardedWorkerSlab;

class SketchSlabSink {
 public:
  virtual ~SketchSlabSink() = default;

  /// The GLOBAL (unsharded) sketch configuration. Worker slabs must be
  /// constructed as ShardedWorkerSlab(slab_config(), slab_shards()) — the
  /// slab derives the per-shard section geometry itself, with the same
  /// shard_config() derivation the sink applies to its shard windows, so
  /// sections and windows stay cell-wise compatible.
  [[nodiscard]] virtual const SketchStatsConfig& slab_config() const = 0;

  /// Number of key-domain shards (1 = the single-window identity case).
  [[nodiscard]] virtual std::size_t slab_shards() const = 0;

  /// Boundary merge: folds one worker's sealed interval slab into the
  /// open interval, section s into shard s. Callers absorb workers in
  /// worker-index order; the sink may absorb the S sections of one call
  /// concurrently (they touch disjoint shard windows), so the combined
  /// order — fixed across workers, parallel across shards — keeps the
  /// merged state deterministic.
  virtual void absorb_slab(const ShardedWorkerSlab& slab,
                           InstanceId dest = kNilInstance) = 0;

  /// Union of the per-shard heavy sets, sorted ascending (shards hold
  /// disjoint key ranges, so the union is duplicate-free). What the
  /// driver distributes to worker slabs at interval boundaries.
  [[nodiscard]] virtual std::vector<KeyId> heavy_keys() const = 0;

  /// The compact planner view (see SketchStatsWindow::synthesize_compact
  /// for the per-window contract). A sharded sink concatenates the
  /// per-shard heavy entries (re-sorted by key) and element-wise sums the
  /// per-instance cold residual vectors in shard order — O(S·(k + N_D)),
  /// never O(|K|).
  virtual void synthesize_compact(InstanceId num_instances,
                                  std::vector<KeyId>& keys,
                                  std::vector<Cost>& cost,
                                  std::vector<Bytes>& state,
                                  std::vector<Cost>& cold_cost,
                                  std::vector<Bytes>& cold_state) const = 0;

  /// Heavy-set churn accounting, summed across shards.
  [[nodiscard]] virtual std::uint64_t total_promotions() const = 0;
  [[nodiscard]] virtual std::uint64_t total_demotions() const = 0;
};

}  // namespace skewless
