#include "sketch/worker_sketch_slab.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {

WorkerSketchSlab::WorkerSketchSlab(const SketchStatsConfig& config)
    : candidates_(config.heavy_capacity) {
  // Borrow the geometry derivation (width from ε, depth from δ, family
  // seed) from a throwaway sketch of the shared family, so the fused
  // cells are placed exactly where the window's sketches will look.
  const CountMinSketch geometry(SketchStatsWindow::family_params(
      config, SketchStatsWindow::kSharedFamilySalt));
  width_ = geometry.width();
  depth_ = geometry.depth();
  seed_ = geometry.seed();
  cells_.assign(depth_ * width_, FusedCell{});
  heavy_.reserve(config.heavy_capacity);
  hot_.reserve(config.heavy_capacity);
}

void WorkerSketchSlab::add_hot(KeyId key, const KeyAgg& agg) {
  KeyAgg& hot = hot_[key];
  hot.cost += agg.cost;
  hot.state_bytes += agg.state_bytes;
  hot.frequency += agg.frequency;
  hot_cost_ += agg.cost;
}

void WorkerSketchSlab::add_cold(KeyId key, const KeyAgg& agg,
                                const CountMinSketch::KeyProbe& probe) {
  // One probe, `depth_` fused cells: all three quantities ride the same
  // cache lines (the point of the fused layout).
  const std::size_t mask = width_ - 1;
  const double freq = static_cast<double>(agg.frequency);
  for (std::size_t row = 0; row < depth_; ++row) {
    FusedCell& cell =
        cells_[row * width_ + CountMinSketch::probe_index(probe, row, mask)];
    cell.cost += agg.cost;
    cell.freq += freq;
    cell.state += agg.state_bytes;
  }
  candidates_.add(key, agg.cost);
  cold_cost_ += agg.cost;
  cold_freq_ += agg.frequency;
  cold_state_ += agg.state_bytes;
}

void WorkerSketchSlab::add(KeyId key, Cost cost, Bytes state_bytes,
                           std::uint64_t frequency) {
  SKW_EXPECTS(cost >= 0.0 && state_bytes >= 0.0);
  key_bound_ = std::max(key_bound_, static_cast<std::size_t>(key) + 1);
  const KeyAgg agg{cost, state_bytes, frequency};
  if (heavy_.find(key) != heavy_.end()) {
    add_hot(key, agg);
    return;
  }
  add_cold(key, agg, CountMinSketch::make_probe(key, seed_));
}

void WorkerSketchSlab::add_batch(
    const std::unordered_map<KeyId, KeyAgg>& batch) {
  // Classify + probe + prefetch run one entry AHEAD of the flush, so
  // each cold key's fused cell rows are already in flight when its
  // update executes — and each key's probe is computed exactly once
  // (hot keys never pay one at all).
  const auto classify = [&](KeyId key, CountMinSketch::KeyProbe& probe) {
    if (heavy_.find(key) != heavy_.end()) return false;
    probe = CountMinSketch::make_probe(key, seed_);
    const std::size_t mask = width_ - 1;
    for (std::size_t row = 0; row < depth_; ++row) {
      CountMinSketch::prefetch_cell(
          &cells_[row * width_ + CountMinSketch::probe_index(probe, row, mask)]
               .cost);
    }
    return true;
  };

  auto it = batch.begin();
  if (it == batch.end()) return;
  KeyId key = it->first;
  const KeyAgg* agg = &it->second;
  CountMinSketch::KeyProbe probe{};
  bool cold = classify(key, probe);
  while (true) {
    ++it;
    const bool more = it != batch.end();
    KeyId next_key = 0;
    const KeyAgg* next_agg = nullptr;
    CountMinSketch::KeyProbe next_probe{};
    bool next_cold = false;
    if (more) {
      next_key = it->first;
      next_agg = &it->second;
      next_cold = classify(next_key, next_probe);
    }
    SKW_EXPECTS(agg->cost >= 0.0 && agg->state_bytes >= 0.0);
    key_bound_ = std::max(key_bound_, static_cast<std::size_t>(key) + 1);
    if (cold) {
      add_cold(key, *agg, probe);
    } else {
      add_hot(key, *agg);
    }
    if (!more) break;
    key = next_key;
    agg = next_agg;
    probe = next_probe;
    cold = next_cold;
  }
}

void WorkerSketchSlab::set_heavy_keys(const std::vector<KeyId>& keys) {
  heavy_.clear();
  heavy_.insert(keys.begin(), keys.end());
}

void WorkerSketchSlab::clear() {
  hot_.clear();  // keeps buckets
  std::fill(cells_.begin(), cells_.end(), FusedCell{});
  candidates_.clear();
  cold_cost_ = 0.0;
  hot_cost_ = 0.0;
  cold_freq_ = 0;
  cold_state_ = 0.0;
  scalars_ = IntervalScalars{};
}

namespace {

/// Wire sanity for statistics magnitudes: the slab only ever accumulates
/// non-negative finite quantities, so anything else in a summary is
/// corruption, not data.
bool valid_magnitude(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void WorkerSketchSlab::serialize(ByteWriter& out) const {
  out.u64(epoch_);
  out.u64(width_);
  out.u64(depth_);
  out.u64(seed_);
  out.u64(key_bound_);
  out.u64(scalars_.processed);
  out.f64(scalars_.latency_sum_us);
  out.u64(scalars_.latency_samples);
  // The accumulated scalars ship verbatim — recomputing them from the
  // entries on the far side would re-associate the floating-point sums
  // and break byte-identity with the in-process run.
  out.f64(hot_cost_);
  out.f64(cold_cost_);
  out.u64(cold_freq_);
  out.f64(cold_state_);

  std::vector<std::pair<KeyId, KeyAgg>> hot(hot_.begin(), hot_.end());
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u32(static_cast<std::uint32_t>(hot.size()));
  for (const auto& [key, agg] : hot) {
    out.u64(key);
    out.f64(agg.cost);
    out.f64(agg.state_bytes);
    out.u64(agg.frequency);
  }

  out.f64(candidates_.total_weight());
  out.f64(candidates_.offset());
  const auto entries = candidates_.entries_by_count();
  out.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    out.u64(e.key);
    out.f64(e.count);
    out.f64(e.error);
  }

  // Raw cell dump: FusedCell is four doubles with pad always 0.0, so the
  // byte image is itself deterministic.
  out.append(cells_.data(), cells_.size() * sizeof(FusedCell));
}

bool WorkerSketchSlab::deserialize_from(ByteReader& in) {
  epoch_ = in.u64();
  const std::uint64_t width = in.u64();
  const std::uint64_t depth = in.u64();
  const std::uint64_t seed = in.u64();
  if (!in.ok()) return false;
  if (width != width_ || depth != depth_ || seed != seed_) {
    in.fail();
    return false;
  }
  key_bound_ = static_cast<std::size_t>(in.u64());
  scalars_.processed = in.u64();
  scalars_.latency_sum_us = in.f64();
  scalars_.latency_samples = in.u64();
  hot_cost_ = in.f64();
  cold_cost_ = in.f64();
  cold_freq_ = in.u64();
  cold_state_ = in.f64();
  if (!valid_magnitude(scalars_.latency_sum_us) ||
      !valid_magnitude(hot_cost_) || !valid_magnitude(cold_cost_) ||
      !valid_magnitude(cold_state_)) {
    in.fail();
    return false;
  }

  const std::uint32_t hot_n = in.u32();
  constexpr std::size_t kHotEntryBytes = 8 + 8 + 8 + 8;
  if (!in.fits(hot_n, kHotEntryBytes)) return false;
  hot_.clear();
  for (std::uint32_t i = 0; i < hot_n; ++i) {
    const KeyId key = in.u64();
    KeyAgg agg;
    agg.cost = in.f64();
    agg.state_bytes = in.f64();
    agg.frequency = in.u64();
    if (!valid_magnitude(agg.cost) || !valid_magnitude(agg.state_bytes)) {
      in.fail();
      return false;
    }
    const auto [it, inserted] = hot_.emplace(key, agg);
    (void)it;
    if (!inserted) {  // duplicate key: not a serialize() output
      in.fail();
      return false;
    }
  }

  const double cand_total = in.f64();
  const double cand_offset = in.f64();
  const std::uint32_t cand_n = in.u32();
  constexpr std::size_t kCandEntryBytes = 8 + 8 + 8;
  if (!in.fits(cand_n, kCandEntryBytes)) return false;
  if (!valid_magnitude(cand_total) || !valid_magnitude(cand_offset) ||
      cand_n > 2 * candidates_.capacity()) {
    in.fail();
    return false;
  }
  std::vector<SpaceSaving::Entry> entries;
  entries.reserve(cand_n);
  for (std::uint32_t i = 0; i < cand_n; ++i) {
    SpaceSaving::Entry e;
    e.key = in.u64();
    e.count = in.f64();
    e.error = in.f64();
    if (!valid_magnitude(e.count) || !valid_magnitude(e.error)) {
      in.fail();
      return false;
    }
    entries.push_back(e);
  }
  if (!in.ok()) return false;
  candidates_.restore(entries, cand_total, cand_offset);

  return in.read_into(cells_.data(), cells_.size() * sizeof(FusedCell));
}

std::size_t WorkerSketchSlab::memory_bytes() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  const std::size_t hot_bytes =
      hot_.size() * (sizeof(std::pair<const KeyId, KeyAgg>) + kNodeOverhead) +
      hot_.bucket_count() * sizeof(void*);
  const std::size_t heavy_bytes =
      heavy_.size() * (sizeof(KeyId) + kNodeOverhead) +
      heavy_.bucket_count() * sizeof(void*);
  return sizeof(*this) + hot_bytes + heavy_bytes +
         cells_.capacity() * sizeof(FusedCell) + candidates_.memory_bytes();
}

}  // namespace skewless
