#include "sketch/worker_sketch_slab.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "sketch/simd/sketch_kernels.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {

WorkerSketchSlab::WorkerSketchSlab(const SketchStatsConfig& config)
    : candidates_(config.heavy_capacity) {
  // Borrow the geometry derivation (width from ε, depth from δ, family
  // seed) from a throwaway sketch of the shared family, so the fused
  // cells are placed exactly where the window's sketches will look.
  const CountMinSketch geometry(SketchStatsWindow::family_params(
      config, SketchStatsWindow::kSharedFamilySalt));
  width_ = geometry.width();
  depth_ = geometry.depth();
  seed_ = geometry.seed();
  // Lazily-mapped zero pages: the constructor must NOT touch them, so
  // the owning worker thread's first write (or prefault()) decides their
  // NUMA placement — not the driver thread constructing the slab.
  cells_.reset(depth_ * width_);
  heavy_.reserve(config.heavy_capacity);
  hot_.reserve(config.heavy_capacity);
}

void WorkerSketchSlab::add_hot(KeyId key, const KeyAgg& agg) {
  KeyAgg& hot = hot_[key];
  hot.cost += agg.cost;
  hot.state_bytes += agg.state_bytes;
  hot.frequency += agg.frequency;
  hot_cost_ += agg.cost;
}

void WorkerSketchSlab::add_cold(KeyId key, const KeyAgg& agg,
                                const CountMinSketch::KeyProbe& probe) {
  // One probe, `depth_` fused cells: all three quantities ride the same
  // cache lines (the point of the fused layout). The kernel adds the
  // whole 32-byte cell in one vector op where the ISA allows.
  simd::active_kernels().fold_fused_rows(
      &cells_.data()->cost, width_, width_ - 1, depth_, probe.h1, probe.h2,
      agg.cost, static_cast<double>(agg.frequency), agg.state_bytes);
  candidates_.add(key, agg.cost);
  cold_cost_ += agg.cost;
  cold_freq_ += agg.frequency;
  cold_state_ += agg.state_bytes;
}

void WorkerSketchSlab::add(KeyId key, Cost cost, Bytes state_bytes,
                           std::uint64_t frequency) {
  SKW_EXPECTS(cost >= 0.0 && state_bytes >= 0.0);
  key_bound_ = std::max(key_bound_, static_cast<std::size_t>(key) + 1);
  const KeyAgg agg{cost, state_bytes, frequency};
  if (heavy_.find(key) != heavy_.end()) {
    add_hot(key, agg);
    return;
  }
  add_cold(key, agg, CountMinSketch::make_probe(key, seed_));
}

void WorkerSketchSlab::add_batch(
    const std::unordered_map<KeyId, KeyAgg>& batch) {
  if (batch.empty()) return;
  // Pass 1 — classify every entry against the heavy set, in iteration
  // order. Hot and cold entries land in disjoint accumulators
  // (hot_/hot_cost_ vs cells_/candidates_/cold_*), so flushing all hot
  // then all cold — each class in its original order — is byte-identical
  // to add() per entry (key_bound_ is a max, order-free).
  hot_scratch_.clear();
  cold_scratch_.clear();
  cold_keys_.clear();
  for (const auto& entry : batch) {
    SKW_EXPECTS(entry.second.cost >= 0.0 && entry.second.state_bytes >= 0.0);
    key_bound_ =
        std::max(key_bound_, static_cast<std::size_t>(entry.first) + 1);
    if (heavy_.find(entry.first) != heavy_.end()) {
      hot_scratch_.push_back(&entry);
    } else {
      cold_scratch_.push_back(&entry.second);
      cold_keys_.push_back(static_cast<std::uint64_t>(entry.first));
    }
  }
  for (const auto* entry : hot_scratch_) add_hot(entry->first, entry->second);
  if (cold_keys_.empty()) return;

  // Pass 2 — ONE batched vector-hash call generates every cold key's K–M
  // probe, then the flush pipelines: the fused cell rows of the entry a
  // few slots ahead are prefetched while the current entry updates, so
  // its cache misses overlap work instead of serializing behind it.
  const std::size_t n = cold_keys_.size();
  probe_h1_.resize(n);
  probe_h2_.resize(n);
  const simd::SketchKernels& kernels = simd::active_kernels();
  kernels.make_probes(cold_keys_.data(), n, seed_, probe_h1_.data(),
                      probe_h2_.data());
  constexpr std::size_t kAhead = 4;
  const std::size_t mask = width_ - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ahead = i + kAhead;
    if (ahead < n) {
      const CountMinSketch::KeyProbe p{probe_h1_[ahead], probe_h2_[ahead]};
      for (std::size_t row = 0; row < depth_; ++row) {
        CountMinSketch::prefetch_cell(
            &cells_[row * width_ + CountMinSketch::probe_index(p, row, mask)]
                 .cost);
      }
    }
    add_cold(static_cast<KeyId>(cold_keys_[i]), *cold_scratch_[i],
             CountMinSketch::KeyProbe{probe_h1_[i], probe_h2_[i]});
  }
}

void WorkerSketchSlab::set_heavy_keys(const std::vector<KeyId>& keys) {
  heavy_.clear();
  heavy_.insert(keys.begin(), keys.end());
}

void WorkerSketchSlab::clear() {
  hot_.clear();  // keeps buckets
  cells_.zero();  // in place — pages stay where first touch put them
  candidates_.clear();
  cold_cost_ = 0.0;
  hot_cost_ = 0.0;
  cold_freq_ = 0;
  cold_state_ = 0.0;
  scalars_ = IntervalScalars{};
}

namespace {

/// Wire sanity for statistics magnitudes: the slab only ever accumulates
/// non-negative finite quantities, so anything else in a summary is
/// corruption, not data.
bool valid_magnitude(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void WorkerSketchSlab::serialize(ByteWriter& out) const {
  out.u64(epoch_);
  out.u64(width_);
  out.u64(depth_);
  out.u64(seed_);
  out.u64(key_bound_);
  out.u64(scalars_.processed);
  out.f64(scalars_.latency_sum_us);
  out.u64(scalars_.latency_samples);
  // The accumulated scalars ship verbatim — recomputing them from the
  // entries on the far side would re-associate the floating-point sums
  // and break byte-identity with the in-process run.
  out.f64(hot_cost_);
  out.f64(cold_cost_);
  out.u64(cold_freq_);
  out.f64(cold_state_);

  std::vector<std::pair<KeyId, KeyAgg>> hot(hot_.begin(), hot_.end());
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u32(static_cast<std::uint32_t>(hot.size()));
  for (const auto& [key, agg] : hot) {
    out.u64(key);
    out.f64(agg.cost);
    out.f64(agg.state_bytes);
    out.u64(agg.frequency);
  }

  out.f64(candidates_.total_weight());
  out.f64(candidates_.offset());
  const auto entries = candidates_.entries_by_count();
  out.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    out.u64(e.key);
    out.f64(e.count);
    out.f64(e.error);
  }

  // Raw cell dump: FusedCell is four doubles with pad always 0.0, so the
  // byte image is itself deterministic.
  out.append(cells_.data(), cells_.size() * sizeof(FusedCell));
}

bool WorkerSketchSlab::deserialize_from(ByteReader& in) {
  epoch_ = in.u64();
  const std::uint64_t width = in.u64();
  const std::uint64_t depth = in.u64();
  const std::uint64_t seed = in.u64();
  if (!in.ok()) return false;
  if (width != width_ || depth != depth_ || seed != seed_) {
    in.fail();
    return false;
  }
  key_bound_ = static_cast<std::size_t>(in.u64());
  scalars_.processed = in.u64();
  scalars_.latency_sum_us = in.f64();
  scalars_.latency_samples = in.u64();
  hot_cost_ = in.f64();
  cold_cost_ = in.f64();
  cold_freq_ = in.u64();
  cold_state_ = in.f64();
  if (!valid_magnitude(scalars_.latency_sum_us) ||
      !valid_magnitude(hot_cost_) || !valid_magnitude(cold_cost_) ||
      !valid_magnitude(cold_state_)) {
    in.fail();
    return false;
  }

  const std::uint32_t hot_n = in.u32();
  constexpr std::size_t kHotEntryBytes = 8 + 8 + 8 + 8;
  if (!in.fits(hot_n, kHotEntryBytes)) return false;
  hot_.clear();
  for (std::uint32_t i = 0; i < hot_n; ++i) {
    const KeyId key = in.u64();
    KeyAgg agg;
    agg.cost = in.f64();
    agg.state_bytes = in.f64();
    agg.frequency = in.u64();
    if (!valid_magnitude(agg.cost) || !valid_magnitude(agg.state_bytes)) {
      in.fail();
      return false;
    }
    const auto [it, inserted] = hot_.emplace(key, agg);
    (void)it;
    if (!inserted) {  // duplicate key: not a serialize() output
      in.fail();
      return false;
    }
  }

  const double cand_total = in.f64();
  const double cand_offset = in.f64();
  const std::uint32_t cand_n = in.u32();
  constexpr std::size_t kCandEntryBytes = 8 + 8 + 8;
  if (!in.fits(cand_n, kCandEntryBytes)) return false;
  if (!valid_magnitude(cand_total) || !valid_magnitude(cand_offset) ||
      cand_n > 2 * candidates_.capacity()) {
    in.fail();
    return false;
  }
  std::vector<SpaceSaving::Entry> entries;
  entries.reserve(cand_n);
  for (std::uint32_t i = 0; i < cand_n; ++i) {
    SpaceSaving::Entry e;
    e.key = in.u64();
    e.count = in.f64();
    e.error = in.f64();
    if (!valid_magnitude(e.count) || !valid_magnitude(e.error)) {
      in.fail();
      return false;
    }
    entries.push_back(e);
  }
  if (!in.ok()) return false;
  candidates_.restore(entries, cand_total, cand_offset);

  return in.read_into(cells_.data(), cells_.size() * sizeof(FusedCell));
}

std::size_t WorkerSketchSlab::memory_bytes() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  const std::size_t hot_bytes =
      hot_.size() * (sizeof(std::pair<const KeyId, KeyAgg>) + kNodeOverhead) +
      hot_.bucket_count() * sizeof(void*);
  const std::size_t heavy_bytes =
      heavy_.size() * (sizeof(KeyId) + kNodeOverhead) +
      heavy_.bucket_count() * sizeof(void*);
  return sizeof(*this) + hot_bytes + heavy_bytes + cells_.memory_bytes() +
         candidates_.memory_bytes();
}

}  // namespace skewless
