#include "sketch/worker_sketch_slab.h"

#include <algorithm>

#include "common/assert.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {

WorkerSketchSlab::WorkerSketchSlab(const SketchStatsConfig& config)
    : candidates_(config.heavy_capacity) {
  // Borrow the geometry derivation (width from ε, depth from δ, family
  // seed) from a throwaway sketch of the shared family, so the fused
  // cells are placed exactly where the window's sketches will look.
  const CountMinSketch geometry(SketchStatsWindow::family_params(
      config, SketchStatsWindow::kSharedFamilySalt));
  width_ = geometry.width();
  depth_ = geometry.depth();
  seed_ = geometry.seed();
  cells_.assign(depth_ * width_, FusedCell{});
  heavy_.reserve(config.heavy_capacity);
  hot_.reserve(config.heavy_capacity);
}

void WorkerSketchSlab::add(KeyId key, Cost cost, Bytes state_bytes,
                           std::uint64_t frequency) {
  SKW_EXPECTS(cost >= 0.0 && state_bytes >= 0.0);
  key_bound_ = std::max(key_bound_, static_cast<std::size_t>(key) + 1);
  if (heavy_.find(key) != heavy_.end()) {
    KeyAgg& agg = hot_[key];
    agg.cost += cost;
    agg.state_bytes += state_bytes;
    agg.frequency += frequency;
    hot_cost_ += cost;
    return;
  }
  // One probe, `depth_` fused cells: all three quantities ride the same
  // cache lines (the point of the fused layout).
  const auto probe = CountMinSketch::make_probe(key, seed_);
  const std::size_t mask = width_ - 1;
  const double freq = static_cast<double>(frequency);
  for (std::size_t row = 0; row < depth_; ++row) {
    FusedCell& cell =
        cells_[row * width_ + CountMinSketch::probe_index(probe, row, mask)];
    cell.cost += cost;
    cell.freq += freq;
    cell.state += state_bytes;
  }
  candidates_.add(key, cost);
  cold_cost_ += cost;
  cold_freq_ += frequency;
  cold_state_ += state_bytes;
}

void WorkerSketchSlab::set_heavy_keys(const std::vector<KeyId>& keys) {
  heavy_.clear();
  heavy_.insert(keys.begin(), keys.end());
}

void WorkerSketchSlab::clear() {
  hot_.clear();  // keeps buckets
  std::fill(cells_.begin(), cells_.end(), FusedCell{});
  candidates_.clear();
  cold_cost_ = 0.0;
  hot_cost_ = 0.0;
  cold_freq_ = 0;
  cold_state_ = 0.0;
}

std::size_t WorkerSketchSlab::memory_bytes() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  const std::size_t hot_bytes =
      hot_.size() * (sizeof(std::pair<const KeyId, KeyAgg>) + kNodeOverhead) +
      hot_.bucket_count() * sizeof(void*);
  const std::size_t heavy_bytes =
      heavy_.size() * (sizeof(KeyId) + kNodeOverhead) +
      heavy_.bucket_count() * sizeof(void*);
  return sizeof(*this) + hot_bytes + heavy_bytes +
         cells_.capacity() * sizeof(FusedCell) + candidates_.memory_bytes();
}

}  // namespace skewless
