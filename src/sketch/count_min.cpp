#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "sketch/simd/sketch_kernels.h"

namespace skewless {
namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch(Params params) : seed_(params.seed) {
  SKW_EXPECTS(params.epsilon > 0.0 && params.epsilon < 1.0);
  SKW_EXPECTS(params.delta > 0.0 && params.delta < 1.0);
  const double e = std::exp(1.0);
  width_ = next_pow2(static_cast<std::size_t>(std::ceil(e / params.epsilon)));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / params.delta)));
  depth_ = std::max<std::size_t>(depth_, 1);
  cells_.assign(depth_ * width_, 0.0);
}

void CountMinSketch::add(KeyId key, double amount) {
  add(amount, probe(key));
}

void CountMinSketch::add_conservative(KeyId key, double amount) {
  add_conservative(amount, probe(key));
}

void CountMinSketch::add(double amount, const KeyProbe& p) {
  SKW_EXPECTS(amount >= 0.0);
  for (std::size_t row = 0; row < depth_; ++row) {
    cells_[row * width_ + cell_index(p, row)] += amount;
  }
  total_ += amount;
}

void CountMinSketch::add_conservative(double amount, const KeyProbe& p) {
  SKW_EXPECTS(amount >= 0.0);
  const double est = simd::active_kernels().estimate_min(
      cells_.data(), width_, width_ - 1, depth_, p.h1, p.h2);
  const double target = est + amount;
  for (std::size_t row = 0; row < depth_; ++row) {
    double& cell = cells_[row * width_ + cell_index(p, row)];
    cell = std::max(cell, target);
  }
  total_ += amount;
}

double CountMinSketch::estimate(KeyId key) const {
  const KeyProbe p = probe(key);
  return simd::active_kernels().estimate_min(cells_.data(), width_,
                                             width_ - 1, depth_, p.h1, p.h2);
}

void CountMinSketch::add_sketch(const CountMinSketch& other) {
  SKW_EXPECTS(other.width_ == width_ && other.depth_ == depth_ &&
              other.seed_ == seed_);
  simd::active_kernels().add_cells(cells_.data(), other.cells_.data(),
                                   cells_.size());
  total_ += other.total_;
}

void CountMinSketch::add_interleaved(const double* cells, std::size_t stride,
                                     std::size_t width, std::size_t depth,
                                     double total) {
  SKW_EXPECTS(width == width_ && depth == depth_);
  // The boundary-merge inner loop, run once per quantity per sealed
  // slab: dst streams sequentially, the interleaved source is gathered
  // (AVX2) with a one-stripe-ahead read prefetch inside the kernel.
  simd::active_kernels().add_strided(cells_.data(), cells, stride,
                                     cells_.size());
  total_ += total;
}

void CountMinSketch::subtract_sketch(const CountMinSketch& other) {
  SKW_EXPECTS(other.width_ == width_ && other.depth_ == depth_ &&
              other.seed_ == seed_);
  // Kernel clamps tiny float residue at 0.0; cells are sums of
  // non-negative amounts.
  simd::active_kernels().sub_cells_clamped(cells_.data(),
                                           other.cells_.data(), cells_.size());
  total_ = std::max(0.0, total_ - other.total_);
}

void CountMinSketch::clear() {
  std::fill(cells_.begin(), cells_.end(), 0.0);
  total_ = 0.0;
}

double CountMinSketch::effective_epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

std::size_t CountMinSketch::memory_bytes() const {
  return sizeof(*this) + cells_.capacity() * sizeof(double);
}

}  // namespace skewless
