// StatsProvider — the statistics contract the controller and the engines
// consume, abstracted from its storage. Two implementations exist:
//
//  * StatsWindow (core/stats_window.h) — exact, six dense O(|K|) vectors.
//    Right for the figure benches (K ≤ a few hundred thousand).
//  * SketchStatsWindow (sketch/sketch_stats_window.h) — approximate:
//    exact stats only for tracked heavy-hitter keys, Count-Min-sketched
//    aggregates for the cold tail. O(sketch + k) memory regardless of |K|,
//    which is what makes million-key domains affordable.
//
// Planners keep consuming a dense PartitionSnapshot either way: the
// provider synthesizes the dense per-key view on demand (exact copy for
// StatsWindow; heavy-exact + normalized cold estimates for the sketch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace skewless {

/// How per-key statistics are stored (the ControllerConfig / SimConfig /
/// ThreadedConfig `stats_mode` switch).
enum class StatsMode {
  kExact,   // dense per-key vectors (StatsWindow)
  kSketch,  // heavy-hitter map + Count-Min sketches (SketchStatsWindow)
};

/// Tuning knobs for the sketch-based provider.
struct SketchStatsConfig {
  /// Count-Min ε: per-query overestimate ≤ ε · (total mass) with
  /// probability ≥ 1 − δ. Width = next power of two ≥ e / ε.
  double epsilon = 2e-4;
  /// Count-Min δ. Depth = ⌈ln(1/δ)⌉.
  double delta = 0.01;
  /// Maximum number of keys tracked exactly (Space-Saving capacity and
  /// heavy-map bound).
  std::size_t heavy_capacity = 4096;
  /// A key is promoted to exact tracking when its estimated interval cost
  /// is ≥ promote_fraction · (interval total cost). With decay enabled
  /// both sides of the comparison are exponentially decayed sums over
  /// intervals instead of single-interval values.
  double promote_fraction = 1e-4;
  /// Seed for the sketch hash functions (determinism knob).
  std::uint64_t seed = 0x5eedc0de;
  /// Decayed heavy-hitter tracking. When true (default), Space-Saving
  /// candidates are tracked per interval and merged across intervals with
  /// exponential decay: promotion compares each key's decayed cost
  /// history against promote_fraction · (decayed total cost), the first
  /// post-promotion interval is backfilled from the closed interval's
  /// GUARANTEED observation (count − error, never an over-debit of the
  /// cold aggregates), and demotion fires when a heavy key's decayed cost
  /// falls below demote_fraction of the promotion threshold (hysteresis)
  /// — with its residual mass credited back to the cold tier exactly.
  /// A full heavy tier does not freeze: a candidate whose guaranteed
  /// decayed weight (count − error) clearly outweighs the weakest
  /// incumbent's displaces it, so a shifted hot set migrates into exact
  /// tracking instead of being stranded in the cold tier.
  /// When false, the original single-interval behavior is reproduced
  /// bit-for-bit: upper-bound first-interval backfill, idle-only
  /// demotion.
  bool decay = true;
  /// β — per-interval multiplier applied to the decayed candidate counts
  /// and the decayed total (0 < β < 1). Matches the window's spirit of
  /// forgetting: with β = 0.5 an interval's weight halves every boundary.
  double decay_beta = 0.5;
  /// Hysteresis for decayed demotion: a heavy key is demoted when its
  /// decayed cost < demote_fraction · promote_fraction · (decayed total).
  /// Must be < 1 so a key needs to fall well below the promotion bar
  /// before it is evicted (no promote/demote flapping at the boundary).
  double demote_fraction = 0.1;
};

class StatsProvider {
 public:
  virtual ~StatsProvider() = default;

  /// Accumulates one observation for the current (open) interval.
  /// `dest` is the instance the key's tuples were processed on (F(key)
  /// during the interval). The exact provider ignores it; the sketch
  /// provider uses it to keep EXACT per-instance cold residual
  /// aggregates for synthesize_compact — callers on the planning path
  /// (engines, controller drains) must supply it. kNilInstance marks
  /// the destination unknown (tests, non-planning monitors); such mass
  /// is spread evenly across instances at compact-synthesis time.
  virtual void record(KeyId key, Cost cost, Bytes state_bytes,
                      std::uint64_t frequency = 1,
                      InstanceId dest = kNilInstance) = 0;

  /// Convenience: single-tuple observation.
  void record_one(KeyId key, Cost cost, Bytes state_bytes) {
    record(key, cost, state_bytes, 1);
  }

  /// Closes the current interval (see StatsWindow::roll for semantics).
  virtual void roll() = 0;

  /// c_{i-1}(k). For the sketch provider this is exact for heavy keys and
  /// an unnormalized upper-bound estimate for cold keys.
  [[nodiscard]] virtual Cost last_cost_of(KeyId key) const = 0;

  /// g_{i-1}(k), same exact/estimate split as last_cost_of.
  [[nodiscard]] virtual std::uint64_t last_frequency_of(KeyId key) const = 0;

  /// S_{i-1}(k, w), same exact/estimate split as last_cost_of.
  [[nodiscard]] virtual Bytes windowed_state_of(KeyId key) const = 0;

  /// Total windowed state over all keys. Exact in both implementations
  /// (the sketch provider tracks interval totals as scalars).
  [[nodiscard]] virtual Bytes total_windowed_state() const = 0;

  /// Materializes the dense per-key view the planners consume:
  /// cost[k] = c_{i-1}(k) and state[k] = S_{i-1}(k, w) for the whole
  /// domain [0, num_keys()). The sketch provider writes exact values for
  /// heavy keys and scales cold-key estimates so that their sum matches
  /// the exactly-tracked cold aggregate.
  virtual void synthesize_dense(std::vector<Cost>& cost,
                                std::vector<Bytes>& state) const = 0;

  [[nodiscard]] virtual std::size_t num_keys() const = 0;

  /// Grows the key domain. Exact mode allocates; sketch mode only widens
  /// the logical bound used by synthesize_dense.
  virtual void resize_keys(std::size_t num_keys) = 0;

  [[nodiscard]] virtual int window() const = 0;
  [[nodiscard]] virtual IntervalId closed_intervals() const = 0;

  /// Resident bytes of the statistics structures themselves — the number
  /// the exact-vs-sketch trade-off is about.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  [[nodiscard]] virtual StatsMode mode() const = 0;
};

}  // namespace skewless
