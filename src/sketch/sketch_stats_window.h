// SketchStatsWindow — approximate per-key statistics matching the
// StatsWindow rolling-interval contract in O(sketch + heavy_capacity)
// memory, independent of the key-domain size |K|.
//
// Two-tier design (DKG's sketch+heavy-hitters idea, DEBS'15, carried into
// the rolling-window setting):
//
//  * HOT TIER — keys promoted to "heavy" are tracked exactly in a bounded
//    hash map: per-interval cost/frequency/state plus a w-slot ring for
//    the windowed state sum. This is precisely the set the Mixed planner
//    wants explicit routing-table entries for.
//  * COLD TIER — everything else goes into Count-Min sketches
//    (conservative update for the per-interval cost/frequency pair;
//    classic update for state so a ring of per-interval sketches can be
//    cell-wise subtracted to maintain the w-interval window sum) and a
//    Space-Saving tracker that nominates next interval's promotions.
//
// Interval totals (cost, frequency, state) are tracked exactly as
// scalars, so total_windowed_state() and the aggregate mass of the dense
// synthesized view stay exact: synthesize_dense() writes exact values for
// heavy keys and scales the cold keys' upper-bound estimates so they sum
// to the exactly-known cold aggregate.
//
// Approximation caveats (all bounded, none affect aggregate totals):
//  * a key promoted at interval i was sketched during interval i, so its
//    first "exact" values are backfilled upper-bound estimates (the
//    matching mass is removed from the cold aggregate, clamped at 0);
//  * per-key accessors (last_cost_of, ...) return unnormalized
//    upper-bound estimates for cold keys; only synthesize_dense
//    normalizes (it needs the full domain to compute the scale);
//  * record() on a key ≥ num_keys() auto-grows the logical domain —
//    unlike StatsWindow, which asserts — because the sketch allocates
//    nothing per key.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "sketch/count_min.h"
#include "sketch/space_saving.h"
#include "sketch/stats_provider.h"

namespace skewless {

class WorkerSketchSlab;

class SketchStatsWindow final : public StatsProvider {
 public:
  /// `num_keys` = |K| (logical bound for synthesize_dense; grows on
  /// demand), `window` = w ≥ 1.
  SketchStatsWindow(std::size_t num_keys, int window,
                    SketchStatsConfig config = {});

  /// Every per-quantity sketch (cost, frequency, state — current, last
  /// and the windowed-state ring) shares ONE hash family: the worker
  /// slabs fuse all three quantities into a single probed cell array on
  /// the data path (one probe, one set of cache lines per key), and
  /// cell-wise unpacking that array into the per-quantity sketches is
  /// only sound when the placements coincide. Per-sketch Count-Min
  /// bounds are unaffected (the analysis is per sketch); the price is
  /// that two colliding keys collide in every quantity at once.
  static constexpr std::uint64_t kSharedFamilySalt = 3;

  /// The Count-Min parameters of hash family `salt` under `config`.
  /// Shared with WorkerSketchSlab so worker-local fused cells are
  /// cell-wise compatible with the window's sketches.
  [[nodiscard]] static CountMinSketch::Params family_params(
      const SketchStatsConfig& config, std::uint64_t salt);

  void record(KeyId key, Cost cost, Bytes state_bytes,
              std::uint64_t frequency = 1) override;
  void roll() override;

  /// Boundary merge: folds one worker's interval-local slab into the
  /// open interval. Hot entries accumulate exactly into the heavy tier
  /// (the slab's heavy set is a snapshot of this window's, so they route
  /// straight to existing entries); cold mass merges cell-wise into the
  /// open Count-Min sketches (exact, since slabs use the classic
  /// update), candidates union into the Space-Saving tracker, and the
  /// exact scalar aggregates add. Absorbing slabs in a fixed order
  /// yields byte-identical state regardless of worker finish order.
  void absorb(const WorkerSketchSlab& slab);

  /// The current heavy key set, sorted ascending (deterministic) — what
  /// the driver distributes to worker slabs at interval boundaries.
  [[nodiscard]] std::vector<KeyId> heavy_keys() const;

  [[nodiscard]] Cost last_cost_of(KeyId key) const override;
  [[nodiscard]] std::uint64_t last_frequency_of(KeyId key) const override;
  [[nodiscard]] Bytes windowed_state_of(KeyId key) const override;
  [[nodiscard]] Bytes total_windowed_state() const override;
  void synthesize_dense(std::vector<Cost>& cost,
                        std::vector<Bytes>& state) const override;

  [[nodiscard]] std::size_t num_keys() const override { return num_keys_; }
  void resize_keys(std::size_t num_keys) override;
  [[nodiscard]] int window() const override { return window_; }
  [[nodiscard]] IntervalId closed_intervals() const override {
    return closed_;
  }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] StatsMode mode() const override { return StatsMode::kSketch; }

  /// Number of keys currently tracked exactly.
  [[nodiscard]] std::size_t heavy_count() const { return heavy_.size(); }
  [[nodiscard]] bool is_heavy(KeyId key) const {
    return heavy_.find(key) != heavy_.end();
  }
  [[nodiscard]] const SketchStatsConfig& config() const { return config_; }

 private:
  struct HeavyEntry {
    Cost cur_cost = 0.0;
    Cost last_cost = 0.0;
    std::uint64_t cur_freq = 0;
    std::uint64_t last_freq = 0;
    Bytes cur_state = 0.0;
    Bytes window_state = 0.0;
    std::deque<Bytes> ring;  // per closed interval, newest at back
    int idle_intervals = 0;
  };

  [[nodiscard]] CountMinSketch::Params cms_params(std::uint64_t salt) const;
  void close_cold_interval();
  void roll_heavy_entries(Cost& heavy_cost_closed);
  void promote_candidates(Cost interval_total_cost);

  SketchStatsConfig config_;
  int window_;
  std::size_t num_keys_;
  IntervalId closed_ = 0;

  std::unordered_map<KeyId, HeavyEntry> heavy_;
  SpaceSaving candidates_;  // cold stream of the open interval, weight=cost

  CountMinSketch cost_cur_, cost_last_;    // conservative update
  CountMinSketch freq_cur_, freq_last_;    // conservative update
  CountMinSketch state_cur_;               // classic update (subtractable)
  CountMinSketch state_window_;            // running sum of state_ring_
  std::deque<CountMinSketch> state_ring_;  // last ≤ w closed intervals

  // Exact scalar totals for the cold tier.
  Cost cold_cost_cur_ = 0.0, cold_cost_last_ = 0.0;
  std::uint64_t cold_freq_cur_ = 0, cold_freq_last_ = 0;
  Bytes cold_state_cur_ = 0.0;
  Bytes cold_state_window_ = 0.0;
  std::deque<Bytes> cold_state_ring_;
};

}  // namespace skewless
