// SketchStatsWindow — approximate per-key statistics matching the
// StatsWindow rolling-interval contract in O(sketch + heavy_capacity)
// memory, independent of the key-domain size |K|.
//
// Two-tier design (DKG's sketch+heavy-hitters idea, DEBS'15, carried into
// the rolling-window setting):
//
//  * HOT TIER — keys promoted to "heavy" are tracked exactly in a bounded
//    hash map: per-interval cost/frequency/state plus a w-slot ring for
//    the windowed state sum. This is precisely the set the Mixed planner
//    wants explicit routing-table entries for.
//  * COLD TIER — everything else goes into Count-Min sketches
//    (conservative update for the per-interval cost/frequency pair;
//    classic update for state so a ring of per-interval sketches can be
//    cell-wise subtracted to maintain the w-interval window sum) and a
//    Space-Saving tracker that nominates next interval's promotions.
//
// Interval totals (cost, frequency, state) are tracked exactly as
// scalars, so total_windowed_state() and the aggregate mass of the dense
// synthesized view stay exact: synthesize_dense() writes exact values for
// heavy keys and scales the cold keys' upper-bound estimates so they sum
// to the exactly-known cold aggregate.
//
// Promotion nomination runs in one of two modes (SketchStatsConfig::
// decay, default on): the DECAYED mode keeps a β-decayed union of the
// per-interval Space-Saving candidates, promotes against a decayed
// threshold, backfills the first interval from the closed interval's
// guaranteed (count − error) observation, and demotes heavy keys whose
// decayed standing collapses — crediting their residual mass back to the
// cold tier exactly. The legacy single-interval mode (decay = false)
// nominates from the last interval alone, backfills upper bounds and
// demotes only fully-idle keys.
//
// Approximation caveats (all bounded, none affect aggregate totals):
//  * a key promoted at interval i was sketched during interval i, so its
//    first "exact" values are backfilled estimates (upper bounds without
//    decay, guaranteed lower bounds with it; the matching mass is
//    removed from the cold aggregate, clamped at 0);
//  * per-key accessors (last_cost_of, ...) return unnormalized
//    upper-bound estimates for cold keys; only synthesize_dense
//    normalizes (it needs the full domain to compute the scale);
//  * record() on a key ≥ num_keys() auto-grows the logical domain —
//    unlike StatsWindow, which asserts — because the sketch allocates
//    nothing per key.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "sketch/count_min.h"
#include "sketch/slab_sink.h"
#include "sketch/space_saving.h"
#include "sketch/stats_provider.h"

namespace skewless {

class WorkerSketchSlab;

class SketchStatsWindow final : public StatsProvider, public SketchSlabSink {
 public:
  /// `num_keys` = |K| (logical bound for synthesize_dense; grows on
  /// demand), `window` = w ≥ 1.
  SketchStatsWindow(std::size_t num_keys, int window,
                    SketchStatsConfig config = {});

  /// Every per-quantity sketch (cost, frequency, state — current, last
  /// and the windowed-state ring) shares ONE hash family: the worker
  /// slabs fuse all three quantities into a single probed cell array on
  /// the data path (one probe, one set of cache lines per key), and
  /// cell-wise unpacking that array into the per-quantity sketches is
  /// only sound when the placements coincide. Per-sketch Count-Min
  /// bounds are unaffected (the analysis is per sketch); the price is
  /// that two colliding keys collide in every quantity at once.
  static constexpr std::uint64_t kSharedFamilySalt = 3;

  /// The Count-Min parameters of hash family `salt` under `config`.
  /// Shared with WorkerSketchSlab so worker-local fused cells are
  /// cell-wise compatible with the window's sketches.
  [[nodiscard]] static CountMinSketch::Params family_params(
      const SketchStatsConfig& config, std::uint64_t salt);

  /// `dest` (the instance the key routed to) feeds the per-instance cold
  /// residual aggregates that synthesize_compact emits; recording
  /// without it still keeps every total exact but leaves the mass
  /// unattributed (spread evenly at compact-synthesis time).
  void record(KeyId key, Cost cost, Bytes state_bytes,
              std::uint64_t frequency = 1,
              InstanceId dest = kNilInstance) override;
  void roll() override;

  /// Boundary merge: folds one worker's interval-local slab into the
  /// open interval. Hot entries accumulate exactly into the heavy tier
  /// (the slab's heavy set is a snapshot of this window's, so they route
  /// straight to existing entries); cold mass merges cell-wise into the
  /// open Count-Min sketches (exact, since slabs use the classic
  /// update), candidates union into the Space-Saving tracker, and the
  /// exact scalar aggregates add. Absorbing slabs in a fixed order
  /// yields byte-identical state regardless of worker finish order —
  /// and regardless of WHERE the absorb runs (the driver's inline drain
  /// or the asynchronous merge thread absorbing sealed buffers): the
  /// input is exactly the sealed epoch either way.
  /// `dest` is the worker/instance the slab belongs to (its whole cold
  /// stream was processed there); it tags the per-instance cold
  /// aggregates and the merged promotion candidates.
  void absorb(const WorkerSketchSlab& slab, InstanceId dest = kNilInstance);

  /// SketchSlabSink — this window is the S = 1 sink: absorb_slab expects
  /// a single-section ShardedWorkerSlab and forwards to absorb().
  [[nodiscard]] const SketchStatsConfig& slab_config() const override {
    return config_;
  }
  [[nodiscard]] std::size_t slab_shards() const override { return 1; }
  void absorb_slab(const ShardedWorkerSlab& slab,
                   InstanceId dest = kNilInstance) override;

  /// The current heavy key set, sorted ascending (deterministic) — what
  /// the driver distributes to worker slabs at interval boundaries.
  [[nodiscard]] std::vector<KeyId> heavy_keys() const override;

  [[nodiscard]] Cost last_cost_of(KeyId key) const override;
  [[nodiscard]] std::uint64_t last_frequency_of(KeyId key) const override;
  [[nodiscard]] Bytes windowed_state_of(KeyId key) const override;
  [[nodiscard]] Bytes total_windowed_state() const override;
  void synthesize_dense(std::vector<Cost>& cost,
                        std::vector<Bytes>& state) const override;

  /// One shard's lane of the dense view: writes cost[k]/state[k] ONLY for
  /// keys with shard_of_key(k, shard_count) == shard (every key when
  /// shard_count ≤ 1), using this window's heavy tier and cold-tail
  /// normalization. The caller sizes and zero-fills the vectors once;
  /// shard lanes are disjoint, so S windows can fill one vector pair
  /// concurrently. synthesize_dense() is exactly the (shard=0,
  /// shard_count=1) call — same passes, filter compiled out.
  void synthesize_dense_shard(std::vector<Cost>& cost,
                              std::vector<Bytes>& state, std::size_t shard,
                              std::size_t shard_count) const;

  /// The compact planner view — the O(k + N_D) alternative to
  /// synthesize_dense that allocates nothing proportional to |K|:
  ///   * `keys`/`cost`/`state` — the heavy set, sorted ascending, with
  ///     its EXACT last-interval cost and windowed state;
  ///   * `cold_cost`/`cold_state` — per-instance residual aggregates of
  ///     the untracked tail, sums of the recorded cold mass by
  ///     destination (recorded scalars, not sketch estimates — no
  ///     normalization step exists on this path).
  /// Cold mass recorded without a destination is spread evenly across
  /// the `num_instances` instances, keeping L̄ and Lmax exact; recorded
  /// destinations must lie in [0, num_instances).
  ///
  /// Exactness caveat (same one the class header documents for the
  /// scalar aggregates): a promotion debits the candidate's backfilled
  /// upper-bound count from its recorded destination, clamped at zero.
  /// When Space-Saving ran eviction-free (capacity ≥ distinct cold keys
  /// — the equivalence-anchor regime) the backfill is the exact recorded
  /// mass and the residuals are exact; under evictions the inherited
  /// error can over-debit one instance by up to the entry's `error`
  /// for the promotion interval, after which fresh intervals are exact
  /// again.
  void synthesize_compact(InstanceId num_instances, std::vector<KeyId>& keys,
                          std::vector<Cost>& cost, std::vector<Bytes>& state,
                          std::vector<Cost>& cold_cost,
                          std::vector<Bytes>& cold_state) const override;

  [[nodiscard]] std::size_t num_keys() const override { return num_keys_; }
  void resize_keys(std::size_t num_keys) override;
  [[nodiscard]] int window() const override { return window_; }
  [[nodiscard]] IntervalId closed_intervals() const override {
    return closed_;
  }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] StatsMode mode() const override { return StatsMode::kSketch; }

  /// Number of keys currently tracked exactly.
  [[nodiscard]] std::size_t heavy_count() const { return heavy_.size(); }
  [[nodiscard]] bool is_heavy(KeyId key) const {
    return heavy_.find(key) != heavy_.end();
  }
  [[nodiscard]] const SketchStatsConfig& config() const { return config_; }

  /// Heavy-set churn accounting: cumulative promotions/demotions since
  /// construction, and the counts from the most recent roll(). The
  /// bench's churn rate is (promotions + demotions per interval) /
  /// heavy_capacity.
  [[nodiscard]] std::uint64_t total_promotions() const override {
    return total_promotions_;
  }
  [[nodiscard]] std::uint64_t total_demotions() const override {
    return total_demotions_;
  }
  [[nodiscard]] std::size_t last_promotions() const {
    return last_promotions_;
  }
  [[nodiscard]] std::size_t last_demotions() const { return last_demotions_; }
  /// Exponentially decayed total cost Σ β^age · (interval total). Zero
  /// when decay is disabled.
  [[nodiscard]] Cost decayed_total_cost() const { return decayed_total_; }

 private:
  struct HeavyEntry {
    Cost cur_cost = 0.0;
    Cost last_cost = 0.0;
    std::uint64_t cur_freq = 0;
    std::uint64_t last_freq = 0;
    Bytes cur_state = 0.0;
    Bytes window_state = 0.0;
    std::deque<Bytes> ring;  // per closed interval, newest at back
    int idle_intervals = 0;
    /// Decayed cost history Σ β^age · (interval cost), maintained while
    /// heavy (seeded from the promoting candidate's decayed count). The
    /// decayed-demotion criterion compares it against the demote
    /// threshold on the same timescale as decayed_total_.
    Cost decayed_cost = 0.0;
    /// Last known routing destination (kNilInstance when never
    /// attributed) — where a demotion credits the per-instance cold
    /// aggregates back.
    InstanceId dest = kNilInstance;
  };

  [[nodiscard]] CountMinSketch::Params cms_params(std::uint64_t salt) const;
  void close_cold_interval();
  void roll_heavy_entries(Cost& heavy_cost_closed);
  void promote_candidates(Cost interval_total_cost);
  void decay_candidates(Cost interval_total_cost);
  void promote_decayed();
  void demote_decayed();
  /// Drops the decayed union back to the top heavy_capacity non-heavy
  /// entries at the end of a roll — behavior-identical (the next
  /// rebuild keeps exactly that set) but bounds steady-state memory,
  /// which the non-truncating candidates union would otherwise blow
  /// past in threaded runs.
  void truncate_decayed();
  void demote_entry(KeyId key);

  SketchStatsConfig config_;
  int window_;
  std::size_t num_keys_;
  IntervalId closed_ = 0;

  std::unordered_map<KeyId, HeavyEntry> heavy_;
  SpaceSaving candidates_;  // cold stream of the open interval, weight=cost
  /// Decayed union of per-interval candidate trackers (decay mode only):
  /// at each roll the previous history is scaled by β, truncated back to
  /// capacity, filtered of currently-heavy keys, and the just-closed
  /// interval's candidates_ are merged in. Promotion reads this tracker
  /// instead of the single-interval one, so a key hot across intervals
  /// accumulates standing while a one-interval spike decays away.
  SpaceSaving decayed_;
  Cost decayed_total_ = 0.0;  // Σ β^age · interval total cost

  std::uint64_t total_promotions_ = 0;
  std::uint64_t total_demotions_ = 0;
  std::size_t last_promotions_ = 0;
  std::size_t last_demotions_ = 0;

  CountMinSketch cost_cur_, cost_last_;    // conservative update
  CountMinSketch freq_cur_, freq_last_;    // conservative update
  CountMinSketch state_cur_;               // classic update (subtractable)
  CountMinSketch state_window_;            // running sum of state_ring_
  std::deque<CountMinSketch> state_ring_;  // last ≤ w closed intervals

  // Exact scalar totals for the cold tier.
  Cost cold_cost_cur_ = 0.0, cold_cost_last_ = 0.0;
  std::uint64_t cold_freq_cur_ = 0, cold_freq_last_ = 0;
  Bytes cold_state_cur_ = 0.0;
  Bytes cold_state_window_ = 0.0;
  std::deque<Bytes> cold_state_ring_;

  // Exact per-destination cold aggregates (the compact planning view's
  // residuals), rolled in lockstep with the scalars above. Index is
  // dest + 1: slot 0 holds mass recorded without a destination. The
  // vectors grow on demand to the largest destination seen, so they stay
  // O(N_D) regardless of |K|.
  [[nodiscard]] static std::size_t dest_slot(InstanceId dest) {
    return static_cast<std::size_t>(dest + 1);
  }
  void grow_dest(std::size_t slot);
  std::vector<Cost> cold_cost_cur_d_, cold_cost_last_d_;
  std::vector<Bytes> cold_state_cur_d_, cold_state_window_d_;
  std::deque<std::vector<Bytes>> cold_state_ring_d_;
};

}  // namespace skewless
