// WorkerSketchSlab — one worker thread's interval-local statistics
// accumulator for sketch mode, designed so that NO per-key hash traffic
// ever crosses a thread boundary on the data path.
//
// Each ThreadedEngine worker owns one slab and writes to it without any
// lock: the driver only reads a slab at interval boundaries, after the
// engine's quiescence protocol (the worker's completed-message counter
// observed, with acquire ordering, equal to the driver's push count) has
// established a happens-before edge from every worker write.
//
// The slab mirrors the two tiers of SketchStatsWindow:
//
//  * HOT — keys in the window's current heavy set (distributed by the
//    driver at the previous interval boundary) accumulate exactly in a
//    bounded per-slab map, so the hot tier keeps perfect fidelity even
//    though the observations are produced on N threads.
//  * COLD — everything else lands in ONE fused Count-Min cell array
//    holding the (cost, frequency, state) triple per cell. All three
//    quantities share a single Kirsch–Mitzenmacher probe and a single
//    set of cache lines per key — the hot-path reason the slab exists —
//    and the cells are written with CLASSIC updates (never conservative),
//    so the array stays a linear function of the stream and the boundary
//    merge can unpack it cell-wise (CountMinSketch::add_interleaved)
//    into the window's per-quantity sketches, which share the same hash
//    family. A MisraGries tracker (amortized O(1) per add — SpaceSaving's
//    per-add heap maintenance measurably dominated the fold cost)
//    nominates promotion candidates and exact scalars keep the cold
//    aggregates truthful. The tracker is interval-local by construction
//    (clear()ed after every absorb), which is precisely the granularity
//    the window's decayed promotion needs: each interval's merged
//    candidates enter the β-decayed union once, at that interval's roll.
//
// At the interval boundary the merge path calls SketchStatsWindow::absorb
// on each slab in worker-index order — a fixed order, so the merged result
// is byte-identical regardless of which worker finished first — and then
// clear()s the slab for the next interval (allocations are retained).
//
// Double-buffered operation (ThreadedConfig::async_merge): each worker
// owns a PAIR of slabs. A SealMsg at the interval boundary stamps the
// active slab with the closing epoch, release-publishes it to the
// driver-side merge thread, and swaps the worker onto the other buffer —
// tuples keep flowing through the merge. The sealed slab also carries the
// interval's scalar counters (IntervalScalars), so the merge path reads a
// complete epoch without any lock: the seal publication orders every
// worker write before the merge thread's reads.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/first_touch.h"
#include "common/serde.h"
#include "sketch/count_min.h"
#include "sketch/space_saving.h"
#include "sketch/stats_provider.h"

namespace skewless {

class WorkerSketchSlab {
 public:
  /// Exact accumulation for one hot key on one worker.
  struct KeyAgg {
    Cost cost = 0.0;
    Bytes state_bytes = 0.0;
    std::uint64_t frequency = 0;
  };

  /// One fused Count-Min cell: the three per-quantity counters a key's
  /// probe touches together. Padded to 32 bytes so a cell never
  /// straddles more cache lines than it must.
  struct FusedCell {
    double cost = 0.0;
    double freq = 0.0;
    double state = 0.0;
    double pad = 0.0;
  };

  /// Per-interval scalar counters the owning worker accumulates next to
  /// the per-key statistics and seals together with them. In
  /// double-buffered mode the merge path reads these from the sealed
  /// slab with no lock at all — the seal publication is the only
  /// synchronization an epoch needs.
  struct IntervalScalars {
    std::uint64_t processed = 0;
    double latency_sum_us = 0.0;
    std::uint64_t latency_samples = 0;
  };

  /// `config` must be the SketchStatsConfig of the SketchStatsWindow the
  /// slab will be absorbed into: the fused cells replicate the geometry
  /// and probe placement of the window's shared Count-Min family
  /// (SketchStatsWindow::kSharedFamilySalt) cell-for-cell.
  explicit WorkerSketchSlab(const SketchStatsConfig& config);

  /// Accumulates one observation. Hot keys (current heavy set) go to the
  /// exact map; everything else to the fused cells + candidate tracker.
  void add(KeyId key, Cost cost, Bytes state_bytes, std::uint64_t frequency);

  /// Folds one batch's per-key aggregation in two passes: pass 1
  /// classifies every entry against the heavy set and collects the cold
  /// keys; their Kirsch–Mitzenmacher probes are then generated in ONE
  /// batched vector-hash call (SketchKernels::make_probes), and the cold
  /// flush runs with a software-pipelined prefetch a few entries ahead —
  /// each key's fused cell rows are already in flight when its update
  /// executes. Byte-identical to add() per entry in iteration order: hot
  /// and cold entries touch disjoint accumulators, and each class is
  /// flushed in its original order.
  void add_batch(const std::unordered_map<KeyId, KeyAgg>& batch);

  /// Commits the fused cell pages from the CALLING thread (first-touch
  /// NUMA placement — the cells are mapped lazily so the owning worker
  /// thread, not the constructing driver, places them). Value-neutral;
  /// safe any time the caller may write the slab.
  void prefault() { cells_.prefault(); }

  /// Replaces the hot-key set. Called by the driver at interval
  /// boundaries (after SketchStatsWindow::roll has promoted/demoted),
  /// while the worker is quiescent.
  void set_heavy_keys(const std::vector<KeyId>& keys);

  /// Resets the interval-local contents (keeps the heavy set and every
  /// allocation: fused cells are zeroed, hash maps keep their buckets).
  void clear();

  [[nodiscard]] const std::unordered_map<KeyId, KeyAgg>& hot() const {
    return hot_;
  }
  [[nodiscard]] const FirstTouchArray<FusedCell>& cells() const {
    return cells_;
  }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] const MisraGries& candidates() const { return candidates_; }

  [[nodiscard]] Cost cold_cost() const { return cold_cost_; }
  [[nodiscard]] std::uint64_t cold_frequency() const { return cold_freq_; }
  [[nodiscard]] Bytes cold_state() const { return cold_state_; }

  /// Exact total cost observed this interval (hot + cold) — what the
  /// driver uses for the realized per-worker imbalance.
  [[nodiscard]] Cost total_cost() const { return hot_cost_ + cold_cost_; }

  /// One past the largest key observed since construction (the logical
  /// domain bound the window grows to on absorb).
  [[nodiscard]] std::size_t key_bound() const { return key_bound_; }

  /// The interval's scalar counters (worker-written, sealed with the
  /// slab; cleared by clear()).
  [[nodiscard]] IntervalScalars& scalars() { return scalars_; }
  [[nodiscard]] const IntervalScalars& scalars() const { return scalars_; }

  /// Epoch stamp: the 1-based interval boundary this slab was sealed at
  /// (0 = never sealed). Set by the worker's SealMsg handler right
  /// before the release-publish; the merge path asserts it matches the
  /// epoch it is absorbing.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] std::size_t memory_bytes() const;

  /// Writes the slab's full interval content as a boundary summary — the
  /// NetEngine's kSummary payload. The encoding is deterministic (hot
  /// entries sorted by key, candidates by (count desc, key asc)), so two
  /// slabs holding equal content serialize to equal bytes regardless of
  /// the hash-map insertion order that produced them.
  void serialize(ByteWriter& out) const;

  /// Rebuilds the interval content from a summary produced by serialize()
  /// on a slab of the SAME SketchStatsConfig. The heavy set is left
  /// untouched (absorb never reads it). Returns false — with the reader's
  /// sticky error flag set — on truncation, a geometry mismatch (the
  /// peer derived different Count-Min dimensions or family seed), or
  /// value-range corruption; the slab content is unspecified then and
  /// the caller must drop the frame.
  [[nodiscard]] bool deserialize_from(ByteReader& in);

 private:
  void add_hot(KeyId key, const KeyAgg& agg);
  void add_cold(KeyId key, const KeyAgg& agg,
                const CountMinSketch::KeyProbe& probe);

  std::unordered_set<KeyId> heavy_;
  std::unordered_map<KeyId, KeyAgg> hot_;
  std::size_t width_ = 0;  // power of two, mirrors the window's family
  std::size_t depth_ = 0;
  std::uint64_t seed_ = 0;
  /// depth_ rows of width_ fused cells. First-touch mapped: pages commit
  /// on the NUMA node of whichever thread writes them first — see
  /// prefault().
  FirstTouchArray<FusedCell> cells_;
  MisraGries candidates_;
  // add_batch scratch (retained across calls; the slab is single-writer
  // so plain members are safe where thread_local would be wasteful).
  std::vector<const std::pair<const KeyId, KeyAgg>*> hot_scratch_;
  std::vector<const KeyAgg*> cold_scratch_;
  std::vector<std::uint64_t> cold_keys_;
  std::vector<std::uint64_t> probe_h1_;
  std::vector<std::uint64_t> probe_h2_;
  Cost cold_cost_ = 0.0;
  Cost hot_cost_ = 0.0;
  std::uint64_t cold_freq_ = 0;
  Bytes cold_state_ = 0.0;
  std::size_t key_bound_ = 0;
  IntervalScalars scalars_;
  std::uint64_t epoch_ = 0;
};

}  // namespace skewless
