#include "sketch/sketch_stats_window.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {

namespace {

/// A candidate displaces a full heavy tier's weakest incumbent only when
/// its guaranteed decayed weight clears the incumbent's by this factor —
/// hysteresis against flapping between near-equal keys.
constexpr Cost kDisplaceMargin = 2.0;

}  // namespace

CountMinSketch::Params SketchStatsWindow::family_params(
    const SketchStatsConfig& config, std::uint64_t salt) {
  CountMinSketch::Params p;
  p.epsilon = config.epsilon;
  p.delta = config.delta;
  p.seed = config.seed + salt * 0x9e3779b97f4a7c15ULL;
  return p;
}

CountMinSketch::Params SketchStatsWindow::cms_params(
    std::uint64_t salt) const {
  return family_params(config_, salt);
}

SketchStatsWindow::SketchStatsWindow(std::size_t num_keys, int window,
                                     SketchStatsConfig config)
    : config_(config),
      window_(window),
      num_keys_(num_keys),
      candidates_(config.heavy_capacity),
      decayed_(config.heavy_capacity),
      // One shared family across quantities — see kSharedFamilySalt.
      cost_cur_(cms_params(kSharedFamilySalt)),
      cost_last_(cms_params(kSharedFamilySalt)),
      freq_cur_(cms_params(kSharedFamilySalt)),
      freq_last_(cms_params(kSharedFamilySalt)),
      state_cur_(cms_params(kSharedFamilySalt)),
      state_window_(cms_params(kSharedFamilySalt)) {
  SKW_EXPECTS(window >= 1);
  SKW_EXPECTS(config.heavy_capacity >= 1);
  SKW_EXPECTS(!config.decay ||
              (config.decay_beta > 0.0 && config.decay_beta < 1.0));
  SKW_EXPECTS(config.demote_fraction >= 0.0 && config.demote_fraction < 1.0);
  heavy_.reserve(config.heavy_capacity);
}

void SketchStatsWindow::grow_dest(std::size_t slot) {
  if (slot >= cold_cost_cur_d_.size()) {
    cold_cost_cur_d_.resize(slot + 1, 0.0);
    cold_cost_last_d_.resize(slot + 1, 0.0);
    cold_state_cur_d_.resize(slot + 1, 0.0);
    cold_state_window_d_.resize(slot + 1, 0.0);
  }
}

void SketchStatsWindow::record(KeyId key, Cost cost, Bytes state_bytes,
                               std::uint64_t frequency, InstanceId dest) {
  SKW_EXPECTS(cost >= 0.0 && state_bytes >= 0.0);
  SKW_EXPECTS(dest >= kNilInstance);
  // The sketch allocates nothing per key, so the domain auto-grows
  // (StatsWindow asserts here instead — see its header).
  if (key >= num_keys_) num_keys_ = static_cast<std::size_t>(key) + 1;

  if (const auto it = heavy_.find(key); it != heavy_.end()) {
    it->second.cur_cost += cost;
    it->second.cur_freq += frequency;
    it->second.cur_state += state_bytes;
    // A key routes to one instance per interval, so "last seen" is also
    // "current" — kept fresh so a later demotion credits the right
    // per-instance cold aggregate.
    if (dest != kNilInstance) it->second.dest = dest;
    return;
  }
  // The three sketches share one hash family, so one probe serves all
  // sibling updates — hashed once, with the later two sketches' rows
  // prefetched while the first one's misses are outstanding.
  const auto probe = CountMinSketch::make_probe(key, cost_cur_.seed());
  freq_cur_.prefetch(probe);
  state_cur_.prefetch(probe);
  cost_cur_.add_conservative(cost, probe);
  freq_cur_.add_conservative(static_cast<double>(frequency), probe);
  state_cur_.add(state_bytes, probe);
  candidates_.add(key, cost, dest);
  cold_cost_cur_ += cost;
  cold_freq_cur_ += frequency;
  cold_state_cur_ += state_bytes;
  const std::size_t slot = dest_slot(dest);
  grow_dest(slot);
  cold_cost_cur_d_[slot] += cost;
  cold_state_cur_d_[slot] += state_bytes;
}

void SketchStatsWindow::absorb(const WorkerSketchSlab& slab, InstanceId dest) {
  if (slab.key_bound() > num_keys_) num_keys_ = slab.key_bound();
  // Hot tier: exact accumulation. Iteration order over the slab's map is
  // irrelevant because each key only touches its own heavy entry (and
  // scalar += is commutative over disjoint keys). record() re-checks
  // membership, so a stale hot entry (demoted since the slab's snapshot)
  // degrades gracefully to the cold path.
  for (const auto& [key, agg] : slab.hot()) {
    record(key, agg.cost, agg.state_bytes, agg.frequency, dest);
  }
  // Cold tier: unpack the slab's fused (cost, freq, state) cells into
  // the per-quantity sketches cell-wise. Exact merge — the slab writes
  // its cells with classic updates, under which a Count-Min array is a
  // linear function of its stream — legal because every sketch here
  // shares the slab's hash family (kSharedFamilySalt).
  const auto* fused = slab.cells().data();
  constexpr std::size_t kStride =
      sizeof(WorkerSketchSlab::FusedCell) / sizeof(double);
  cost_cur_.add_interleaved(&fused->cost, kStride, slab.width(), slab.depth(),
                            slab.cold_cost());
  freq_cur_.add_interleaved(&fused->freq, kStride, slab.width(), slab.depth(),
                            static_cast<double>(slab.cold_frequency()));
  state_cur_.add_interleaved(&fused->state, kStride, slab.width(),
                             slab.depth(), slab.cold_state());
  // The slab's whole cold stream was processed on its owning worker:
  // stamp that destination onto the merged candidates and credit the
  // per-instance cold aggregates wholesale. Unsorted summary: the union
  // accumulates per key, so entry order is unobservable — and skipping
  // the O(n log n) sort is the dominant saving on the boundary-merge
  // path (the promotion pass sorts the merged tracker once instead).
  std::vector<SpaceSaving::Entry> entries = slab.candidates().entries_unsorted();
  if (dest != kNilInstance) {
    for (auto& e : entries) e.dest = dest;
  }
  candidates_.merge(entries, slab.candidates().total_weight());
  cold_cost_cur_ += slab.cold_cost();
  cold_freq_cur_ += slab.cold_frequency();
  cold_state_cur_ += slab.cold_state();
  const std::size_t slot = dest_slot(dest);
  grow_dest(slot);
  cold_cost_cur_d_[slot] += slab.cold_cost();
  cold_state_cur_d_[slot] += slab.cold_state();
}

void SketchStatsWindow::absorb_slab(const ShardedWorkerSlab& slab,
                                    InstanceId dest) {
  SKW_EXPECTS(slab.shard_count() == 1);
  absorb(slab.section(0), dest);
}

std::vector<KeyId> SketchStatsWindow::heavy_keys() const {
  std::vector<KeyId> keys;
  keys.reserve(heavy_.size());
  for (const auto& [key, e] : heavy_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void SketchStatsWindow::close_cold_interval() {
  std::swap(cost_last_, cost_cur_);
  cost_cur_.clear();
  std::swap(freq_last_, freq_cur_);
  freq_cur_.clear();

  state_window_.add_sketch(state_cur_);
  state_ring_.push_back(std::move(state_cur_));
  if (state_ring_.size() > static_cast<std::size_t>(window_)) {
    state_window_.subtract_sketch(state_ring_.front());
    // Recycle the expired interval's sketch as the new open one —
    // no churn of multi-hundred-KB allocations at interval cadence.
    state_cur_ = std::move(state_ring_.front());
    state_ring_.pop_front();
    state_cur_.clear();
  } else {
    state_cur_ = CountMinSketch(cms_params(kSharedFamilySalt));
  }

  cold_cost_last_ = cold_cost_cur_;
  cold_cost_cur_ = 0.0;
  cold_freq_last_ = cold_freq_cur_;
  cold_freq_cur_ = 0;
  cold_state_window_ += cold_state_cur_;
  cold_state_ring_.push_back(cold_state_cur_);
  cold_state_cur_ = 0.0;
  if (cold_state_ring_.size() > static_cast<std::size_t>(window_)) {
    cold_state_window_ =
        std::max(0.0, cold_state_window_ - cold_state_ring_.front());
    cold_state_ring_.pop_front();
  }

  // Per-destination aggregates roll in lockstep (vectors may have grown
  // mid-interval, so older ring entries can be shorter — iterate the
  // common prefix when expiring).
  cold_cost_last_d_ = cold_cost_cur_d_;
  std::fill(cold_cost_cur_d_.begin(), cold_cost_cur_d_.end(), 0.0);
  for (std::size_t i = 0; i < cold_state_cur_d_.size(); ++i) {
    cold_state_window_d_[i] += cold_state_cur_d_[i];
  }
  cold_state_ring_d_.push_back(cold_state_cur_d_);
  std::fill(cold_state_cur_d_.begin(), cold_state_cur_d_.end(), 0.0);
  if (cold_state_ring_d_.size() > static_cast<std::size_t>(window_)) {
    const auto& oldest = cold_state_ring_d_.front();
    for (std::size_t i = 0; i < oldest.size(); ++i) {
      cold_state_window_d_[i] =
          std::max(0.0, cold_state_window_d_[i] - oldest[i]);
    }
    cold_state_ring_d_.pop_front();
  }
}

void SketchStatsWindow::roll_heavy_entries(Cost& heavy_cost_closed) {
  heavy_cost_closed = 0.0;
  for (auto it = heavy_.begin(); it != heavy_.end();) {
    HeavyEntry& e = it->second;
    e.last_cost = e.cur_cost;
    e.last_freq = e.cur_freq;
    heavy_cost_closed += e.last_cost;
    e.window_state += e.cur_state;
    e.ring.push_back(e.cur_state);
    if (e.ring.size() > static_cast<std::size_t>(window_)) {
      e.window_state = std::max(0.0, e.window_state - e.ring.front());
      e.ring.pop_front();
    }
    e.idle_intervals =
        (e.cur_cost == 0.0 && e.cur_freq == 0) ? e.idle_intervals + 1 : 0;
    e.decayed_cost = config_.decay_beta * e.decayed_cost + e.cur_cost;
    e.cur_cost = 0.0;
    e.cur_freq = 0;
    e.cur_state = 0.0;
    // Without decay, demote keys that have been silent for a full window
    // and hold no windowed state: their stats are all-zero, so nothing is
    // lost and the slot frees up for a new heavy hitter. With decay
    // enabled demotion is handled by demote_decayed() instead — the
    // decayed criterion keeps a rotating hot key's slot warm across its
    // idle phase, which is exactly what the idle rule would thrash.
    if (!config_.decay && e.idle_intervals >= std::max(window_, 2) &&
        e.window_state <= 0.0) {
      ++last_demotions_;
      ++total_demotions_;
      it = heavy_.erase(it);
    } else {
      ++it;
    }
  }
}

void SketchStatsWindow::promote_candidates(Cost interval_total_cost) {
  const Cost threshold = config_.promote_fraction * interval_total_cost;
  // Filter to the promotion threshold BEFORE sorting: the sorted scan
  // below would stop at the first below-threshold candidate anyway, so
  // the promoted set is identical — but after non-truncating worker-slab
  // unions the tracker can hold tens of thousands of entries, and
  // sorting only the eligible few keeps this pass (on the boundary-merge
  // critical path) proportional to what can actually promote.
  for (const SpaceSaving::Entry& cand :
       candidates_.entries_by_count_at_least(threshold)) {
    if (heavy_.size() >= config_.heavy_capacity) break;
    // Sorted descending, so the first miss ends the scan. Zero-cost
    // candidates never promote (threshold is 0 in cost-free streams,
    // e.g. shuffle mode, and promoting them would pin arbitrary keys in
    // the bounded hot tier forever).
    if (cand.count <= 0.0) break;
    if (heavy_.find(cand.key) != heavy_.end()) continue;
    HeavyEntry e;
    // Backfill the closed interval from the cold-tier estimates (upper
    // bounds); the matching mass leaves the cold aggregates so the dense
    // synthesis does not count it twice.
    e.last_cost = cand.count;
    e.last_freq = static_cast<std::uint64_t>(
        std::llround(freq_last_.estimate(cand.key)));
    e.window_state = state_window_.estimate(cand.key);
    // The backfill lands in a single ring slot for the just-closed
    // interval: a key is usually promoted right after its first active
    // interval, where that is the exact expiry schedule.
    e.ring.assign(1, e.window_state);
    cold_cost_last_ = std::max(0.0, cold_cost_last_ - e.last_cost);
    cold_freq_last_ -= std::min(cold_freq_last_, e.last_freq);
    {
      // Per-destination mirror of the debit. The candidate's recorded
      // destination is where all of its cold mass accrued (a key routes
      // to one instance per interval), so the whole backfill leaves that
      // instance's aggregates.
      const std::size_t slot = dest_slot(cand.dest);
      grow_dest(slot);
      cold_cost_last_d_[slot] =
          std::max(0.0, cold_cost_last_d_[slot] - e.last_cost);
      Bytes remaining_d = e.window_state;
      for (auto rit = cold_state_ring_d_.rbegin();
           rit != cold_state_ring_d_.rend() && remaining_d > 0.0; ++rit) {
        if (slot >= rit->size()) continue;
        const Bytes take = std::min((*rit)[slot], remaining_d);
        (*rit)[slot] -= take;
        remaining_d -= take;
      }
      cold_state_window_d_[slot] = std::max(
          0.0, cold_state_window_d_[slot] - (e.window_state - remaining_d));
    }
    // Debit the backfilled window state from the ring entries (newest
    // first) as well as the running window: the expired entries would
    // otherwise re-subtract mass that already moved to the hot tier,
    // leaving a permanent deficit in the cold aggregate.
    Bytes remaining = e.window_state;
    for (auto rit = cold_state_ring_.rbegin();
         rit != cold_state_ring_.rend() && remaining > 0.0; ++rit) {
      const Bytes take = std::min(*rit, remaining);
      *rit -= take;
      remaining -= take;
    }
    cold_state_window_ =
        std::max(0.0, cold_state_window_ - (e.window_state - remaining));
    e.decayed_cost = cand.count;
    e.dest = cand.dest;
    ++last_promotions_;
    ++total_promotions_;
    heavy_.emplace(cand.key, std::move(e));
  }
  candidates_.clear();
}

void SketchStatsWindow::decay_candidates(Cost interval_total_cost) {
  decayed_total_ = config_.decay_beta * decayed_total_ + interval_total_cost;
  // Rebuild the decayed union: β-scale the previous history, truncate it
  // back to capacity (the history list is sorted, so the drop is a
  // deterministic suffix), filter keys promoted since, then merge the
  // just-closed interval's candidates in. Rebuilding — instead of
  // scaling in place — is what keeps the tracker bounded even though
  // SpaceSaving's union never truncates.
  std::vector<SpaceSaving::Entry> history = decayed_.entries_by_count();
  std::vector<SpaceSaving::Entry> kept;
  kept.reserve(std::min(history.size(), config_.heavy_capacity));
  double kept_weight = 0.0;
  for (const SpaceSaving::Entry& e : history) {
    if (kept.size() >= config_.heavy_capacity) break;
    if (e.count <= 0.0) break;  // sorted descending
    if (heavy_.find(e.key) != heavy_.end()) continue;
    SpaceSaving::Entry scaled = e;
    scaled.count *= config_.decay_beta;
    scaled.error *= config_.decay_beta;
    kept.push_back(scaled);
    kept_weight += scaled.count;
  }
  decayed_ = SpaceSaving(config_.heavy_capacity);
  decayed_.merge(kept, kept_weight);
  decayed_.merge(candidates_);
}

void SketchStatsWindow::truncate_decayed() {
  // Between rolls the decayed union is only ever read again through the
  // next decay_candidates() rebuild, which keeps the top heavy_capacity
  // NON-heavy entries and filters the rest (a stale entry for a heavy
  // key is unreadable in between: demotion can only hit a key whose
  // stale entry the rebuild already filtered out). Dropping everything
  // else now is therefore byte-equivalent — and necessary, because the
  // candidates union merged in at the roll is non-truncating and in
  // threaded runs holds many times capacity; without this the tracker
  // would carry that whole union until the next boundary.
  if (decayed_.size() <= config_.heavy_capacity) return;
  std::vector<SpaceSaving::Entry> kept;
  kept.reserve(config_.heavy_capacity);
  double kept_weight = 0.0;
  for (const SpaceSaving::Entry& e : decayed_.entries_by_count()) {
    if (kept.size() >= config_.heavy_capacity) break;
    if (e.count <= 0.0) break;  // sorted descending
    if (heavy_.find(e.key) != heavy_.end()) continue;
    kept.push_back(e);
    kept_weight += e.count;
  }
  decayed_ = SpaceSaving(config_.heavy_capacity);
  decayed_.merge(kept, kept_weight);
}

void SketchStatsWindow::demote_entry(KeyId key) {
  const auto it = heavy_.find(key);
  SKW_EXPECTS(it != heavy_.end());
  HeavyEntry& e = it->second;
  // The entry's residual mass returns to the cold tier EXACTLY: the
  // scalar aggregates, the per-instance aggregates and the subtractable
  // state ring all receive what the hot tier was carrying, so every
  // total the planners consume is unchanged by the demotion itself and a
  // later window expiry subtracts the credited slots on the schedule the
  // mass originally accrued on.
  const auto probe = CountMinSketch::make_probe(key, cost_last_.seed());
  if (e.last_cost > 0.0) cost_last_.add(e.last_cost, probe);
  if (e.last_freq > 0) {
    freq_last_.add(static_cast<double>(e.last_freq), probe);
  }
  cold_cost_last_ += e.last_cost;
  cold_freq_last_ += e.last_freq;
  const std::size_t slot = dest_slot(e.dest);
  grow_dest(slot);
  cold_cost_last_d_[slot] += e.last_cost;
  cold_state_window_ += e.window_state;
  cold_state_window_d_[slot] += e.window_state;
  // Ring credit, newest at back on both sides. The entry ring is never
  // longer than the cold rings (both grow one slot per roll, and the
  // entry started at one slot when the cold rings already had one), so
  // every slot of entry state lands in a matching cold slot. The
  // windowed-sum sketch receives the identical per-slot adds so it stays
  // cell-wise equal to the sum of the ring sketches.
  auto ring_it = state_ring_.rbegin();
  auto cold_ring_it = cold_state_ring_.rbegin();
  auto cold_ring_d_it = cold_state_ring_d_.rbegin();
  for (auto entry_it = e.ring.rbegin(); entry_it != e.ring.rend();
       ++entry_it) {
    const Bytes amount = *entry_it;
    if (amount > 0.0) {
      if (ring_it != state_ring_.rend()) ring_it->add(amount, probe);
      state_window_.add(amount, probe);
      if (cold_ring_it != cold_state_ring_.rend()) *cold_ring_it += amount;
      if (cold_ring_d_it != cold_state_ring_d_.rend()) {
        if (slot >= cold_ring_d_it->size()) {
          cold_ring_d_it->resize(slot + 1, 0.0);
        }
        (*cold_ring_d_it)[slot] += amount;
      }
    }
    if (ring_it != state_ring_.rend()) ++ring_it;
    if (cold_ring_it != cold_state_ring_.rend()) ++cold_ring_it;
    if (cold_ring_d_it != cold_state_ring_d_.rend()) ++cold_ring_d_it;
  }
  // Hand the key's decayed standing back to the candidate pool: a
  // returning key re-promotes from real history instead of from scratch,
  // and a key demoted in error climbs back quickly. count == count −
  // error here is a true lower bound (it is a decayed sum of exactly
  // tracked costs).
  if (e.decayed_cost > 0.0) {
    SpaceSaving::Entry back;
    back.key = key;
    back.count = e.decayed_cost;
    back.error = 0.0;
    back.dest = e.dest;
    decayed_.merge_entry(back, 0.0);
  }
  heavy_.erase(it);
}

void SketchStatsWindow::demote_decayed() {
  // Hysteresis: a heavy key is demoted once its decayed cost falls below
  // demote_fraction of the promotion bar — well under what would promote
  // it, so a key oscillating near the threshold does not flap. Both
  // sides decay at β per interval, so the comparison is
  // timescale-consistent.
  const Cost threshold =
      config_.demote_fraction * config_.promote_fraction * decayed_total_;
  if (threshold <= 0.0) return;
  std::vector<KeyId> victims;
  for (const auto& [key, e] : heavy_) {
    if (e.decayed_cost < threshold) victims.push_back(key);
  }
  // The credits below do floating-point updates on shared aggregates:
  // a sorted victim order keeps rolls byte-identical regardless of hash
  // map iteration order.
  std::sort(victims.begin(), victims.end());
  for (const KeyId key : victims) demote_entry(key);
  last_demotions_ += victims.size();
  total_demotions_ += victims.size();
}

void SketchStatsWindow::promote_decayed() {
  const Cost threshold = config_.promote_fraction * decayed_total_;
  // Weakest-first view of the incumbents for displacement, ordered by
  // (decayed_cost, key) so eviction order is deterministic. Without
  // displacement a full heavy tier would freeze on its first occupants
  // and every later hot set would be stranded in the cold tier, where
  // the planner cannot move individual keys — a rotating workload would
  // then run permanently imbalanced.
  std::vector<std::pair<Cost, KeyId>> weakest;
  weakest.reserve(heavy_.size());
  for (const auto& [key, e] : heavy_) {
    weakest.emplace_back(e.decayed_cost, key);
  }
  std::sort(weakest.begin(), weakest.end());
  std::size_t weak_idx = 0;
  for (const SpaceSaving::Entry& cand :
       decayed_.entries_by_count_at_least(threshold)) {
    if (cand.count <= 0.0) break;
    if (heavy_.find(cand.key) != heavy_.end()) continue;
    if (heavy_.size() >= config_.heavy_capacity) {
      if (weak_idx >= weakest.size()) break;
      // Displace only when the candidate's GUARANTEED decayed weight
      // (count − error: what it provably carried) clears the incumbent's
      // exactly-tracked decayed cost by kDisplaceMargin — the same
      // hysteresis idea as demotion, so two statistically
      // indistinguishable keys never flap across the boundary. Guaranteed
      // weight is not monotone in the candidate order (error varies), so
      // a failed test skips this candidate rather than ending the scan.
      const Cost guaranteed = std::max(0.0, cand.count - cand.error);
      if (guaranteed <= kDisplaceMargin * weakest[weak_idx].first) continue;
      demote_entry(weakest[weak_idx].second);
      ++weak_idx;
      ++last_demotions_;
      ++total_demotions_;
    }
    HeavyEntry e;
    // Backfill the just-closed interval from the GUARANTEED portion of
    // its real observation (count − error ≤ the key's recorded cold
    // mass), not the upper bound: the debit below can then never remove
    // more than the key actually contributed, closing the over-debit
    // caveat the no-decay path documents. A key promoted purely on
    // standing (no observation this interval) backfills zero cost and
    // turns exact from the next interval on.
    const SpaceSaving::Entry* obs = candidates_.find(cand.key);
    const Cost observed = obs ? std::max(0.0, obs->count - obs->error) : 0.0;
    e.last_cost = observed;
    e.last_freq = obs ? static_cast<std::uint64_t>(std::llround(
                            freq_last_.estimate(cand.key)))
                      : 0;
    e.window_state = state_window_.estimate(cand.key);
    e.ring.assign(1, e.window_state);
    e.decayed_cost = cand.count;
    e.dest = (obs && obs->dest != kNilInstance) ? obs->dest : cand.dest;
    cold_cost_last_ = std::max(0.0, cold_cost_last_ - e.last_cost);
    cold_freq_last_ -= std::min(cold_freq_last_, e.last_freq);
    {
      const std::size_t slot = dest_slot(e.dest);
      grow_dest(slot);
      cold_cost_last_d_[slot] =
          std::max(0.0, cold_cost_last_d_[slot] - e.last_cost);
      Bytes remaining_d = e.window_state;
      for (auto rit = cold_state_ring_d_.rbegin();
           rit != cold_state_ring_d_.rend() && remaining_d > 0.0; ++rit) {
        if (slot >= rit->size()) continue;
        const Bytes take = std::min((*rit)[slot], remaining_d);
        (*rit)[slot] -= take;
        remaining_d -= take;
      }
      cold_state_window_d_[slot] = std::max(
          0.0, cold_state_window_d_[slot] - (e.window_state - remaining_d));
    }
    Bytes remaining = e.window_state;
    for (auto rit = cold_state_ring_.rbegin();
         rit != cold_state_ring_.rend() && remaining > 0.0; ++rit) {
      const Bytes take = std::min(*rit, remaining);
      *rit -= take;
      remaining -= take;
    }
    cold_state_window_ =
        std::max(0.0, cold_state_window_ - (e.window_state - remaining));
    ++last_promotions_;
    ++total_promotions_;
    heavy_.emplace(cand.key, std::move(e));
  }
}

void SketchStatsWindow::roll() {
  close_cold_interval();
  Cost heavy_cost_closed = 0.0;
  last_promotions_ = 0;
  last_demotions_ = 0;
  roll_heavy_entries(heavy_cost_closed);
  if (config_.decay) {
    // Decayed tracking: fold the closed interval's candidates into the
    // β-decayed union, demote heavy keys whose decayed standing has
    // collapsed (freeing capacity first), then promote against the
    // decayed threshold. candidates_ stays alive through promotion so
    // the backfill can read the closed interval's real observations.
    decay_candidates(cold_cost_last_ + heavy_cost_closed);
    demote_decayed();
    promote_decayed();
    candidates_.clear();
    truncate_decayed();
  } else {
    promote_candidates(cold_cost_last_ + heavy_cost_closed);
  }
  ++closed_;
}

Cost SketchStatsWindow::last_cost_of(KeyId key) const {
  if (const auto it = heavy_.find(key); it != heavy_.end()) {
    return it->second.last_cost;
  }
  return cost_last_.estimate(key);
}

std::uint64_t SketchStatsWindow::last_frequency_of(KeyId key) const {
  if (const auto it = heavy_.find(key); it != heavy_.end()) {
    return it->second.last_freq;
  }
  return static_cast<std::uint64_t>(std::llround(freq_last_.estimate(key)));
}

Bytes SketchStatsWindow::windowed_state_of(KeyId key) const {
  if (const auto it = heavy_.find(key); it != heavy_.end()) {
    return it->second.window_state;
  }
  return state_window_.estimate(key);
}

Bytes SketchStatsWindow::total_windowed_state() const {
  Bytes total = cold_state_window_;
  for (const auto& [key, e] : heavy_) total += e.window_state;
  return total;
}

void SketchStatsWindow::synthesize_dense(std::vector<Cost>& cost,
                                         std::vector<Bytes>& state) const {
  cost.assign(num_keys_, 0.0);
  state.assign(num_keys_, 0.0);
  synthesize_dense_shard(cost, state, 0, 1);
}

void SketchStatsWindow::synthesize_dense_shard(std::vector<Cost>& cost,
                                               std::vector<Bytes>& state,
                                               std::size_t shard,
                                               std::size_t shard_count) const {
  SKW_EXPECTS(cost.size() >= num_keys_ && state.size() >= num_keys_);
  const bool filtered = shard_count > 1;

  std::vector<char> is_heavy_key(num_keys_, 0);
  for (const auto& [key, e] : heavy_) {
    if (key < num_keys_) is_heavy_key[static_cast<std::size_t>(key)] = 1;
  }

  // Pass 1: raw upper-bound estimates for the cold tail (this shard's
  // lane only — other shards' keys never touched).
  double raw_cost_sum = 0.0;
  double raw_state_sum = 0.0;
  for (std::size_t k = 0; k < num_keys_; ++k) {
    if (is_heavy_key[k]) continue;
    const auto key = static_cast<KeyId>(k);
    if (filtered && shard_of_key(key, shard_count) != shard) continue;
    cost[k] = cost_last_.estimate(key);
    state[k] = state_window_.estimate(key);
    raw_cost_sum += cost[k];
    raw_state_sum += state[k];
  }

  // Pass 2: normalize the cold tail so its mass equals the exactly-known
  // cold aggregate (collision noise inflates the raw sum; scaling keeps
  // the planner's view of total load and total state truthful).
  const double cost_scale =
      raw_cost_sum > 0.0 ? cold_cost_last_ / raw_cost_sum : 0.0;
  const double state_scale =
      raw_state_sum > 0.0 ? cold_state_window_ / raw_state_sum : 0.0;
  for (std::size_t k = 0; k < num_keys_; ++k) {
    if (is_heavy_key[k]) continue;
    if (filtered && shard_of_key(static_cast<KeyId>(k), shard_count) != shard) {
      continue;
    }
    cost[k] *= cost_scale;
    state[k] *= state_scale;
  }

  // Pass 3: exact values for the hot tier (a sharded window only ever
  // holds its own shard's keys, so no filter is needed here).
  for (const auto& [key, e] : heavy_) {
    if (key >= num_keys_) continue;
    cost[static_cast<std::size_t>(key)] = e.last_cost;
    state[static_cast<std::size_t>(key)] = e.window_state;
  }
}

void SketchStatsWindow::synthesize_compact(InstanceId num_instances,
                                           std::vector<KeyId>& keys,
                                           std::vector<Cost>& cost,
                                           std::vector<Bytes>& state,
                                           std::vector<Cost>& cold_cost,
                                           std::vector<Bytes>& cold_state) const {
  SKW_EXPECTS(num_instances > 0);
  keys = heavy_keys();
  cost.resize(keys.size());
  state.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const HeavyEntry& e = heavy_.find(keys[i])->second;
    cost[i] = e.last_cost;
    state[i] = e.window_state;
  }

  const auto nd = static_cast<std::size_t>(num_instances);
  cold_cost.assign(nd, 0.0);
  cold_state.assign(nd, 0.0);
  for (std::size_t slot = 1; slot < cold_cost_last_d_.size(); ++slot) {
    const std::size_t d = slot - 1;
    SKW_EXPECTS(d < nd);
    cold_cost[d] = cold_cost_last_d_[slot];
    cold_state[d] = cold_state_window_d_[slot];
  }
  // Mass recorded without a destination (slot 0) cannot be attributed to
  // one instance; spread it evenly so the totals — and with them L̄ and
  // Lmax — stay exact. Production record paths always attribute, so this
  // is normally a no-op.
  if (!cold_cost_last_d_.empty()) {
    const Cost c_share = cold_cost_last_d_[0] / static_cast<Cost>(nd);
    const Bytes s_share = cold_state_window_d_[0] / static_cast<Bytes>(nd);
    if (c_share > 0.0 || s_share > 0.0) {
      for (std::size_t d = 0; d < nd; ++d) {
        cold_cost[d] += c_share;
        cold_state[d] += s_share;
      }
    }
  }
}

void SketchStatsWindow::resize_keys(std::size_t num_keys) {
  num_keys_ = std::max(num_keys_, num_keys);
}

std::size_t SketchStatsWindow::memory_bytes() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  std::size_t heavy_bytes =
      heavy_.size() *
          (sizeof(std::pair<const KeyId, HeavyEntry>) + kNodeOverhead +
           static_cast<std::size_t>(window_) * sizeof(Bytes)) +
      heavy_.bucket_count() * sizeof(void*);
  std::size_t sketch_bytes = cost_cur_.memory_bytes() +
                             cost_last_.memory_bytes() +
                             freq_cur_.memory_bytes() +
                             freq_last_.memory_bytes() +
                             state_cur_.memory_bytes() +
                             state_window_.memory_bytes();
  for (const auto& s : state_ring_) sketch_bytes += s.memory_bytes();
  std::size_t cold_dest_bytes =
      (cold_cost_cur_d_.capacity() + cold_cost_last_d_.capacity()) *
          sizeof(Cost) +
      (cold_state_cur_d_.capacity() + cold_state_window_d_.capacity()) *
          sizeof(Bytes);
  for (const auto& v : cold_state_ring_d_) {
    cold_dest_bytes += sizeof(v) + v.capacity() * sizeof(Bytes);
  }
  return sizeof(*this) + heavy_bytes + sketch_bytes +
         candidates_.memory_bytes() + decayed_.memory_bytes() +
         cold_state_ring_.size() * sizeof(Bytes) + cold_dest_bytes;
}

}  // namespace skewless
