// ShardedWorkerSlab — a worker's interval-local sketch accumulator split
// into S per-shard WorkerSketchSlab sections, shard = stable hash of the
// KeyId. Workers emit per-shard sections at fold time (rather than the
// controller splitting sealed slabs at the boundary) so the sharded
// controller can hand section s of every worker straight to shard window
// s with no re-hashing or copying on the merge path.
//
// S = 1 is the exact identity case: every call forwards to the single
// section, including add_batch's prefetch-pipelined fold, so a
// single-shard run produces bit-for-bit the state the pre-sharding
// WorkerSketchSlab produced. For S > 1 the fold routes each batch entry
// to its section with one mix64 per distinct key; the per-section
// geometry comes from shard_config(), which scales ε and heavy_capacity
// by S so the TOTAL sketch memory stays roughly flat while each section
// (and therefore each shard's absorb) shrinks by ~S.
//
// The serialized form (the NetEngine's kSummary payload) is a u32
// section-count prefix followed by each section's deterministic encoding;
// deserialize_from rejects a section-count mismatch the same way a
// geometry mismatch is rejected — sticky reader failure, frame dropped.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {

/// The shard owning `key` under an S-way split: a stable mix64 hash, NOT
/// key % S — dense key domains assign adjacent (often correlated) keys
/// round-robin under modulo, which would make one shard's heavy set a
/// systematic sample. Every layer (slab sectioning, window routing, the
/// sharded controller) must use this one function.
[[nodiscard]] constexpr std::size_t shard_of_key(KeyId key,
                                                 std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(key)) %
                                  static_cast<std::uint64_t>(shards));
}

/// The per-shard SketchStatsConfig under an S-way split: ε scales by S
/// (Count-Min width divides by ~S — each shard sees ~1/S of the mass, so
/// the absolute error bound ε·mass is preserved) and heavy_capacity
/// splits as ⌈capacity/S⌉. Seed and every behavioral knob (decay, β,
/// promote/demote fractions) pass through unchanged. Returns `config`
/// untouched for shards ≤ 1 — the byte-identity anchor.
[[nodiscard]] SketchStatsConfig shard_config(const SketchStatsConfig& config,
                                             std::size_t shards);

class ShardedWorkerSlab {
 public:
  /// `config` is the GLOBAL sketch configuration; the slab derives each
  /// section's geometry via shard_config(config, shards) itself so both
  /// ends of a summary channel agree by construction.
  explicit ShardedWorkerSlab(const SketchStatsConfig& config,
                             std::size_t shards = 1);

  /// Accumulates one observation into the owning shard's section.
  void add(KeyId key, Cost cost, Bytes state_bytes, std::uint64_t frequency);

  /// Folds one batch. S = 1 forwards the whole batch to section 0's
  /// prefetch-pipelined fold (bit-identical to the unsharded slab);
  /// S > 1 routes each entry to its section's add() in iteration order.
  void add_batch(
      const std::unordered_map<KeyId, WorkerSketchSlab::KeyAgg>& batch);

  /// Replaces the hot-key set, split per shard so each section only ever
  /// probes its own keys.
  void set_heavy_keys(const std::vector<KeyId>& keys);

  /// Resets the interval-local contents of every section (allocations
  /// retained, heavy sets kept).
  void clear();

  /// First-touch commits every section's fused cell pages from the
  /// CALLING thread (NUMA placement — see WorkerSketchSlab::prefault).
  void prefault() {
    for (auto& s : sections_) s.prefault();
  }

  [[nodiscard]] std::size_t shard_count() const { return sections_.size(); }
  [[nodiscard]] WorkerSketchSlab& section(std::size_t shard) {
    return sections_[shard];
  }
  [[nodiscard]] const WorkerSketchSlab& section(std::size_t shard) const {
    return sections_[shard];
  }

  /// The interval's scalar counters ride section 0 (they are per-worker,
  /// not per-key, so exactly one section carries them).
  [[nodiscard]] WorkerSketchSlab::IntervalScalars& scalars() {
    return sections_.front().scalars();
  }
  [[nodiscard]] const WorkerSketchSlab::IntervalScalars& scalars() const {
    return sections_.front().scalars();
  }

  /// Epoch stamp: set on every section (each is absorbed independently);
  /// read from section 0.
  void set_epoch(std::uint64_t epoch);
  [[nodiscard]] std::uint64_t epoch() const {
    return sections_.front().epoch();
  }

  /// Exact total cost observed this interval, summed over sections.
  [[nodiscard]] Cost total_cost() const;

  /// One past the largest key observed since construction (max over
  /// sections).
  [[nodiscard]] std::size_t key_bound() const;

  [[nodiscard]] std::size_t memory_bytes() const;

  /// Boundary-summary encoding: u32 section count, then each section's
  /// deterministic serialize().
  void serialize(ByteWriter& out) const;

  /// Rebuilds every section from a summary produced by serialize() on a
  /// slab of the same config AND shard count. Returns false — with the
  /// reader's sticky error flag set — on a section-count mismatch or any
  /// per-section decode failure.
  [[nodiscard]] bool deserialize_from(ByteReader& in);

 private:
  std::vector<WorkerSketchSlab> sections_;
};

}  // namespace skewless
