#include "core/working_assignment.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace skewless {

WorkingAssignment::WorkingAssignment(const PartitionSnapshot& snap)
    : snap_(&snap),
      dest_(snap.current),
      loads_(static_cast<std::size_t>(snap.num_instances), 0.0),
      buckets_(static_cast<std::size_t>(snap.num_instances)),
      pos_in_bucket_(snap.num_entries(), -1) {
  snap.seed_cold_loads(loads_);
  for (std::size_t e = 0; e < dest_.size(); ++e) {
    loads_[static_cast<std::size_t>(dest_[e])] += snap.cost[e];
    bucket_insert(static_cast<KeyId>(e), dest_[e]);
  }
}

void WorkingAssignment::bucket_insert(KeyId key, InstanceId d) {
  auto& bucket = buckets_[static_cast<std::size_t>(d)];
  pos_in_bucket_[static_cast<std::size_t>(key)] =
      static_cast<std::int64_t>(bucket.size());
  bucket.push_back(key);
}

void WorkingAssignment::bucket_remove(KeyId key, InstanceId d) {
  auto& bucket = buckets_[static_cast<std::size_t>(d)];
  const auto pos =
      static_cast<std::size_t>(pos_in_bucket_[static_cast<std::size_t>(key)]);
  SKW_ASSERT(pos < bucket.size() && bucket[pos] == key);
  const KeyId last = bucket.back();
  bucket[pos] = last;
  pos_in_bucket_[static_cast<std::size_t>(last)] =
      static_cast<std::int64_t>(pos);
  bucket.pop_back();
  pos_in_bucket_[static_cast<std::size_t>(key)] = -1;
}

void WorkingAssignment::disassociate(KeyId key) {
  const auto k = static_cast<std::size_t>(key);
  const InstanceId d = dest_[k];
  if (d == kNilInstance) return;
  loads_[static_cast<std::size_t>(d)] -= snap_->cost[k];
  bucket_remove(key, d);
  dest_[k] = kNilInstance;
}

void WorkingAssignment::assign(KeyId key, InstanceId d) {
  const auto k = static_cast<std::size_t>(key);
  SKW_EXPECTS(dest_[k] == kNilInstance);
  SKW_EXPECTS(d >= 0 && d < num_instances());
  dest_[k] = d;
  loads_[static_cast<std::size_t>(d)] += snap_->cost[k];
  bucket_insert(key, d);
}

void WorkingAssignment::move_back(KeyId key) {
  const auto k = static_cast<std::size_t>(key);
  const InstanceId home = snap_->hash_dest[k];
  if (dest_[k] == home) return;
  disassociate(key);
  assign(key, home);
}

std::vector<InstanceId> WorkingAssignment::instances_by_load_ascending()
    const {
  std::vector<InstanceId> order(loads_.size());
  std::iota(order.begin(), order.end(), InstanceId{0});
  std::sort(order.begin(), order.end(), [&](InstanceId a, InstanceId b) {
    const Cost la = loads_[static_cast<std::size_t>(a)];
    const Cost lb = loads_[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return a < b;
  });
  return order;
}

std::vector<InstanceId> WorkingAssignment::to_assignment() const {
  for (const InstanceId d : dest_) SKW_ENSURES(d != kNilInstance);
  return dest_;
}

}  // namespace skewless
