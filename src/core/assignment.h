// AssignmentFunction — the paper's Eq. (1):
//
//   F(k) = A[k]   if an entry (k, d) exists in the routing table A,
//          h(k)   otherwise (consistent hashing).
//
// This is the object the upstream router evaluates per tuple; rebalance
// plans are installed by swapping the table contents atomically between
// intervals.
#pragma once

#include <vector>

#include "common/consistent_hash.h"
#include "common/types.h"
#include "core/routing_table.h"

namespace skewless {

class AssignmentFunction {
 public:
  AssignmentFunction(ConsistentHashRing ring, std::size_t max_table_entries)
      : ring_(std::move(ring)), table_(max_table_entries) {}

  /// Evaluates F(k).
  [[nodiscard]] InstanceId operator()(KeyId key) const {
    if (const auto dest = table_.lookup(key)) return *dest;
    return ring_.owner(key);
  }

  /// Batched F(k) over a chunk of keys: table lookups first, then ONE
  /// vectorized hash pass (ConsistentHashRing::owner_batch) over the
  /// misses. out[i] == (*this)(keys[i]) exactly — the router's expand
  /// loop uses this to amortize hashing across a chunk of tuples.
  void route_batch(const KeyId* keys, std::size_t n, InstanceId* out) const;

  /// The hash default h(k) regardless of table contents.
  [[nodiscard]] InstanceId hash_dest(KeyId key) const {
    return ring_.owner(key);
  }

  [[nodiscard]] const RoutingTable& table() const { return table_; }
  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] const ConsistentHashRing& ring() const { return ring_; }
  [[nodiscard]] InstanceId num_instances() const {
    return ring_.num_instances();
  }

  /// Scale-out: adds a new instance to the hash ring. Keys that the ring
  /// reassigns but that must stay put (stateful!) get explicit entries via
  /// the next rebalance; callers normally follow this with a plan install.
  void add_instance() { ring_.add_instance(); }

  /// Materializes F over the dense key domain [0, num_keys).
  [[nodiscard]] std::vector<InstanceId> materialize(
      std::size_t num_keys) const;

  /// Materializes h over the dense key domain.
  [[nodiscard]] std::vector<InstanceId> materialize_hash(
      std::size_t num_keys) const;

  /// Installs a new dense assignment: table entries are exactly the keys
  /// where `assignment[k] != h(k)`.
  void install(const std::vector<InstanceId>& assignment);

  /// Sparse point update: routes `key` to `dest` (adding or removing its
  /// explicit entry as needed), leaving every other key untouched. The
  /// O(moves) plan-installation primitive of the compact planning path —
  /// untracked cold keys keep their entries, so the table invariant
  /// (entry exists iff F(k) != h(k)) is preserved key-by-key.
  void apply(KeyId key, InstanceId dest);

 private:
  ConsistentHashRing ring_;
  RoutingTable table_;
};

/// ∆(F, F') — keys whose destination differs between two dense assignments.
[[nodiscard]] std::vector<KeyId> assignment_delta(
    const std::vector<InstanceId>& before,
    const std::vector<InstanceId>& after);

}  // namespace skewless
