// AssignmentFunction — the paper's Eq. (1):
//
//   F(k) = A[k]   if an entry (k, d) exists in the routing table A,
//          h(k)   otherwise (consistent hashing).
//
// This is the object the upstream router evaluates per tuple; rebalance
// plans are installed by swapping the table contents atomically between
// intervals.
#pragma once

#include <vector>

#include "common/assert.h"
#include "common/consistent_hash.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/routing_table.h"

namespace skewless {

class AssignmentFunction {
 public:
  AssignmentFunction(ConsistentHashRing ring, std::size_t max_table_entries)
      : ring_(std::move(ring)), table_(max_table_entries) {}

  /// Evaluates F(k). With retired instances (degraded mode), any key
  /// whose table or ring destination is retired is deterministically
  /// re-homed onto a survivor.
  [[nodiscard]] InstanceId operator()(KeyId key) const {
    if (const auto dest = table_.lookup(key)) return resolve(*dest, key);
    return resolve(ring_.owner(key), key);
  }

  /// Batched F(k) over a chunk of keys: table lookups first, then ONE
  /// vectorized hash pass (ConsistentHashRing::owner_batch) over the
  /// misses. out[i] == (*this)(keys[i]) exactly — the router's expand
  /// loop uses this to amortize hashing across a chunk of tuples.
  void route_batch(const KeyId* keys, std::size_t n, InstanceId* out) const;

  /// The hash default h(k) regardless of table contents.
  [[nodiscard]] InstanceId hash_dest(KeyId key) const {
    return ring_.owner(key);
  }

  [[nodiscard]] const RoutingTable& table() const { return table_; }
  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] const ConsistentHashRing& ring() const { return ring_; }
  [[nodiscard]] InstanceId num_instances() const {
    return ring_.num_instances();
  }

  /// Scale-out: adds a new instance to the hash ring. Keys that the ring
  /// reassigns but that must stay put (stateful!) get explicit entries via
  /// the next rebalance; callers normally follow this with a plan install.
  void add_instance() { ring_.add_instance(); }

  /// Materializes F over the dense key domain [0, num_keys).
  [[nodiscard]] std::vector<InstanceId> materialize(
      std::size_t num_keys) const;

  /// Materializes h over the dense key domain.
  [[nodiscard]] std::vector<InstanceId> materialize_hash(
      std::size_t num_keys) const;

  /// Installs a new dense assignment: table entries are exactly the keys
  /// where `assignment[k] != h(k)`.
  void install(const std::vector<InstanceId>& assignment);

  /// Sparse point update: routes `key` to `dest` (adding or removing its
  /// explicit entry as needed), leaving every other key untouched. The
  /// O(moves) plan-installation primitive of the compact planning path —
  /// untracked cold keys keep their entries, so the table invariant
  /// (entry exists iff F(k) != h(k)) is preserved key-by-key.
  void apply(KeyId key, InstanceId dest);

  /// Degraded mode (fault tolerance): marks an instance as permanently
  /// gone. F never returns it again — keys it owned re-home onto the
  /// survivors via a deterministic salted hash, WITHOUT moving the ring
  /// (a ring rebuild would shuffle keys between healthy instances too).
  /// At least one instance must survive.
  void retire(InstanceId id) {
    SKW_EXPECTS(id >= 0 && id < num_instances());
    if (retired_.empty()) {
      retired_.assign(static_cast<std::size_t>(num_instances()), 0);
    }
    retired_[static_cast<std::size_t>(id)] = 1;
    survivors_.clear();
    for (InstanceId d = 0; d < num_instances(); ++d) {
      if (retired_[static_cast<std::size_t>(d)] == 0) survivors_.push_back(d);
    }
    SKW_EXPECTS(!survivors_.empty());
  }

  [[nodiscard]] bool is_retired(InstanceId id) const {
    const auto i = static_cast<std::size_t>(id);
    return i < retired_.size() && retired_[i] != 0;
  }

  [[nodiscard]] bool has_retired() const { return !survivors_.empty(); }

 private:
  /// Survivor re-home for retired destinations (identity otherwise).
  [[nodiscard]] InstanceId resolve(InstanceId dest, KeyId key) const {
    if (survivors_.empty() || retired_[static_cast<std::size_t>(dest)] == 0) {
      return dest;
    }
    const auto h = mix64(static_cast<std::uint64_t>(key) ^ kRetireSalt);
    return survivors_[h % survivors_.size()];
  }

  /// Distinct from the ring's hashing so re-homed keys spread evenly
  /// across survivors instead of piling onto ring neighbours.
  static constexpr std::uint64_t kRetireSalt = 0x5377766f72537276ULL;

  ConsistentHashRing ring_;
  RoutingTable table_;
  /// Empty until the first retire() (the hot path stays branch-cheap);
  /// afterwards retired_[d] != 0 marks dead instances and survivors_
  /// lists the rest.
  std::vector<char> retired_;
  std::vector<InstanceId> survivors_;
};

/// ∆(F, F') — keys whose destination differs between two dense assignments.
[[nodiscard]] std::vector<KeyId> assignment_delta(
    const std::vector<InstanceId>& before,
    const std::vector<InstanceId>& after);

}  // namespace skewless
