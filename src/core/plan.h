// Rebalance plan types and the Planner interface shared by all
// algorithms (MinTable, MinMig, Mixed, MixedBF, compact-Mixed, Readj).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/snapshot.h"

namespace skewless {

/// One key migration: the state bound to `key` moves `from` -> `to`.
struct KeyMove {
  KeyId key;
  InstanceId from;
  InstanceId to;
  Bytes state_bytes;
};

/// The outcome of one rebalance decision at an interval boundary.
struct RebalancePlan {
  /// F' over the planning snapshot's entry slots (slot-aligned with the
  /// snapshot it was planned from; the full dense domain in exact mode).
  /// Untracked cold keys keep their current destinations implicitly.
  std::vector<InstanceId> assignment;
  /// ∆(F, F') with per-key state sizes (the migration plan of Fig. 5).
  /// KeyMove::key is a real KeyId, not a slot index.
  std::vector<KeyMove> moves;
  /// N_A' — entries implied by `assignment` plus the cold keys that keep
  /// theirs (PartitionSnapshot::cold_table_entries).
  std::size_t table_size = 0;
  /// M_i(w, F, F') — total bytes of state to migrate.
  Bytes migration_bytes = 0.0;
  /// max_d θ(d, F') as estimated from the snapshot statistics.
  double achieved_theta = 0.0;
  /// Whether the balance constraint was met.
  bool balanced = false;
  /// Whether N_A' ≤ Amax (always true when Amax is unbounded).
  bool table_fits = true;
  /// Wall-clock time the planner spent (the paper's "generation time").
  Micros generation_micros = 0;

  [[nodiscard]] std::size_t num_moves() const { return moves.size(); }
};

/// Order-sensitive digest of a plan's VALUE: assignment, moves, table
/// size, migration bytes, the bit patterns of the float fields and the
/// boolean verdicts — everything EXCEPT generation_micros, which is wall
/// clock and legitimately differs between two runs that decided the same
/// plan. Two plans digest equal iff a rebalance decision was identical;
/// the determinism tests chain these across intervals to compare a
/// distributed run against the in-process reference without shipping
/// whole plans around.
[[nodiscard]] std::uint64_t plan_value_digest(const RebalancePlan& plan);

/// Planner tuning knobs (Table II parameters).
struct PlannerConfig {
  /// θmax — tolerance on load imbalance.
  double theta_max = 0.08;
  /// Amax — routing table bound; 0 = unbounded.
  std::size_t max_table_entries = 3000;
  /// β — migration selection factor in γ = c^β / S.
  double beta = 1.5;
  /// Safety cap on LLFD evict-and-retry operations, as a multiple of the
  /// candidate count (the theory guarantees termination; the cap guards
  /// against pathological float behaviour in production).
  double llfd_op_budget_factor = 64.0;
};

/// Completes a plan given the snapshot and the produced entry-aligned
/// assignment: computes ∆(F, F'), migration bytes, table size and balance
/// indicators. Loads and θ include the snapshot's cold residuals, so the
/// balance verdict is exact even when only heavy keys were planned.
[[nodiscard]] RebalancePlan finalize_plan(const PartitionSnapshot& snap,
                                          std::vector<InstanceId> assignment,
                                          const PlannerConfig& config);

/// Interface implemented by every rebalance algorithm.
class Planner {
 public:
  virtual ~Planner() = default;

  /// Computes F' from the statistics snapshot. Does not mutate any live
  /// routing state; the controller installs the plan afterwards.
  [[nodiscard]] virtual RebalancePlan plan(const PartitionSnapshot& snap,
                                           const PlannerConfig& config) = 0;

  /// Human-readable algorithm name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

using PlannerPtr = std::unique_ptr<Planner>;

}  // namespace skewless
