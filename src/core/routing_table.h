// The explicit routing table A of the paper's mixed routing strategy:
// a bounded map from KeyId to destination instance. Keys absent from the
// table fall through to the hash function (see AssignmentFunction).
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace skewless {

class RoutingTable {
 public:
  /// `max_entries` = Amax in the paper; 0 means unbounded (used by MinMig,
  /// which the paper notes "can not control the size of routing tables").
  explicit RoutingTable(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Destination for `key` if an entry exists.
  [[nodiscard]] std::optional<InstanceId> lookup(KeyId key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Batched lookup for the router's expand loop: out[i] gets the entry
  /// for keys[i], or kNilInstance for keys the table does not hold (the
  /// caller resolves those through the hash default — see
  /// AssignmentFunction::route_batch).
  void lookup_batch(const KeyId* keys, std::size_t n, InstanceId* out) const {
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = entries_.find(keys[i]);
      out[i] = it == entries_.end() ? kNilInstance : it->second;
    }
  }

  /// Inserts or updates an entry. Returns false (no-op) if inserting a new
  /// key would exceed the bound.
  bool set(KeyId key, InstanceId dest);

  /// Inserts or updates an entry regardless of the bound — the sparse
  /// equivalent of assign()'s wholesale replacement, used when installing
  /// a rebalance plan (planners may deliberately exceed Amax when no
  /// feasible plan exists; the plan's table_fits flag reports it).
  void set_unchecked(KeyId key, InstanceId dest) { entries_[key] = dest; }

  /// Removes the entry for `key` ("move back" in the paper). Returns true
  /// if an entry was removed.
  bool erase(KeyId key) { return entries_.erase(key) > 0; }

  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] bool bounded() const { return max_entries_ > 0; }

  /// Snapshot of all entries (sorted by key for deterministic iteration).
  [[nodiscard]] std::vector<std::pair<KeyId, InstanceId>> entries() const;

  /// Replaces the whole table (used when installing a rebalance plan).
  void assign(std::vector<std::pair<KeyId, InstanceId>> new_entries);

 private:
  std::unordered_map<KeyId, InstanceId> entries_;
  std::size_t max_entries_;
};

}  // namespace skewless
