#include "core/routing_table.h"

#include <algorithm>

#include "common/assert.h"

namespace skewless {

bool RoutingTable::set(KeyId key, InstanceId dest) {
  SKW_EXPECTS(dest >= 0);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = dest;
    return true;
  }
  if (bounded() && entries_.size() >= max_entries_) return false;
  entries_.emplace(key, dest);
  return true;
}

std::vector<std::pair<KeyId, InstanceId>> RoutingTable::entries() const {
  std::vector<std::pair<KeyId, InstanceId>> out(entries_.begin(),
                                                entries_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void RoutingTable::assign(
    std::vector<std::pair<KeyId, InstanceId>> new_entries) {
  entries_.clear();
  for (auto& [k, d] : new_entries) {
    SKW_EXPECTS(d >= 0);
    entries_[k] = d;
  }
}

}  // namespace skewless
