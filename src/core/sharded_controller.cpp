#include "core/sharded_controller.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace skewless {

// ---------------------------------------------------------------------------
// ShardPool

ShardPool::ShardPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    ++generation_;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::run(std::size_t tasks,
                    const std::function<void(std::size_t)>& fn) {
  if (threads_.empty() || tasks <= 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_.store(&fn, std::memory_order_relaxed);
    tasks_.store(tasks, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    // The release store on next_ publishes fn_/tasks_/done_ to any worker
    // that claims an index without passing through the mutex (a straggler
    // from the previous generation racing into this one is benign: each
    // index is claimed exactly once either way).
    next_.store(0, std::memory_order_release);
    ++generation_;
  }
  cv_.notify_all();
  work();  // the caller is a pool participant
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return done_.load(std::memory_order_acquire) ==
           tasks_.load(std::memory_order_relaxed);
  });
  fn_.store(nullptr, std::memory_order_relaxed);
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    work();
  }
}

void ShardPool::work() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_acquire);
    if (i >= tasks_.load(std::memory_order_relaxed)) return;
    const auto* fn = fn_.load(std::memory_order_relaxed);
    (*fn)(i);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        tasks_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedSketchStats

namespace {

/// Pool threads beyond the caller: S - 1 capped to the hardware, zero
/// when S = 1 (the pool degenerates to inline loops).
std::size_t pool_workers(std::size_t shards) {
  if (shards <= 1) return 0;
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(shards, hw) - 1;
}

}  // namespace

ShardedSketchStats::ShardedSketchStats(std::size_t num_keys, int window,
                                       const SketchStatsConfig& config,
                                       std::size_t shards)
    : config_(config), num_keys_(num_keys), pool_(pool_workers(shards)) {
  SKW_EXPECTS(shards >= 1);
  const SketchStatsConfig per_shard = shard_config(config, shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(
        std::make_unique<SketchStatsWindow>(num_keys, window, per_shard));
  }
}

ShardedSketchStats::~ShardedSketchStats() = default;

void ShardedSketchStats::record(KeyId key, Cost cost, Bytes state_bytes,
                                std::uint64_t frequency, InstanceId dest) {
  if (static_cast<std::size_t>(key) >= num_keys_) {
    num_keys_ = static_cast<std::size_t>(key) + 1;
  }
  shards_[shard_of(key)]->record(key, cost, state_bytes, frequency, dest);
}

void ShardedSketchStats::roll() {
  if (shards_.size() == 1) {
    shards_[0]->roll();
    return;
  }
  pool_.run(shards_.size(), [&](std::size_t s) { shards_[s]->roll(); });
}

Cost ShardedSketchStats::last_cost_of(KeyId key) const {
  return shards_[shard_of(key)]->last_cost_of(key);
}

std::uint64_t ShardedSketchStats::last_frequency_of(KeyId key) const {
  return shards_[shard_of(key)]->last_frequency_of(key);
}

Bytes ShardedSketchStats::windowed_state_of(KeyId key) const {
  return shards_[shard_of(key)]->windowed_state_of(key);
}

Bytes ShardedSketchStats::total_windowed_state() const {
  Bytes total = 0.0;
  for (const auto& shard : shards_) total += shard->total_windowed_state();
  return total;
}

void ShardedSketchStats::synthesize_dense(std::vector<Cost>& cost,
                                          std::vector<Bytes>& state) const {
  if (shards_.size() == 1) {
    shards_[0]->synthesize_dense(cost, state);
    return;
  }
  for (const auto& shard : shards_) {
    // Widen every shard to the global bound so each lane pass covers the
    // whole domain (logical resize — the sketch allocates nothing).
    shard->resize_keys(num_keys_);
  }
  cost.assign(num_keys_, 0.0);
  state.assign(num_keys_, 0.0);
  pool_.run(shards_.size(), [&](std::size_t s) {
    shards_[s]->synthesize_dense_shard(cost, state, s, shards_.size());
  });
}

void ShardedSketchStats::resize_keys(std::size_t num_keys) {
  if (num_keys > num_keys_) num_keys_ = num_keys;
  for (const auto& shard : shards_) shard->resize_keys(num_keys);
}

int ShardedSketchStats::window() const { return shards_[0]->window(); }

IntervalId ShardedSketchStats::closed_intervals() const {
  return shards_[0]->closed_intervals();
}

std::size_t ShardedSketchStats::memory_bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& shard : shards_) total += shard->memory_bytes();
  return total;
}

void ShardedSketchStats::absorb_slab(const ShardedWorkerSlab& slab,
                                     InstanceId dest) {
  SKW_EXPECTS(slab.shard_count() == shards_.size());
  if (slab.key_bound() > num_keys_) num_keys_ = slab.key_bound();
  if (shards_.size() == 1) {
    shards_[0]->absorb(slab.section(0), dest);
    return;
  }
  // Engines call absorb_slab once per worker, in worker-index order; the
  // S sections of ONE worker absorb concurrently here. Each shard window
  // therefore sees its sections in exactly the sequential worker order —
  // the per-shard fixed order the determinism contract needs.
  pool_.run(shards_.size(), [&](std::size_t s) {
    shards_[s]->absorb(slab.section(s), dest);
  });
}

std::vector<KeyId> ShardedSketchStats::heavy_keys() const {
  if (shards_.size() == 1) return shards_[0]->heavy_keys();
  std::vector<KeyId> keys;
  for (const auto& shard : shards_) {
    const std::vector<KeyId> part = shard->heavy_keys();
    keys.insert(keys.end(), part.begin(), part.end());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ShardedSketchStats::synthesize_compact(
    InstanceId num_instances, std::vector<KeyId>& keys,
    std::vector<Cost>& cost, std::vector<Bytes>& state,
    std::vector<Cost>& cold_cost, std::vector<Bytes>& cold_state) const {
  if (shards_.size() == 1) {
    shards_[0]->synthesize_compact(num_instances, keys, cost, state,
                                   cold_cost, cold_state);
    return;
  }
  const std::size_t shard_count = shards_.size();
  std::vector<std::vector<KeyId>> shard_keys(shard_count);
  std::vector<std::vector<Cost>> shard_cost(shard_count);
  std::vector<std::vector<Bytes>> shard_state(shard_count);
  std::vector<std::vector<Cost>> shard_cold_cost(shard_count);
  std::vector<std::vector<Bytes>> shard_cold_state(shard_count);
  pool_.run(shard_count, [&](std::size_t s) {
    shards_[s]->synthesize_compact(num_instances, shard_keys[s],
                                   shard_cost[s], shard_state[s],
                                   shard_cold_cost[s], shard_cold_state[s]);
  });

  // Global tier: concatenate the heavy entries and re-sort by key (the
  // shards' key sets are disjoint, so this is a permutation into the
  // sorted-ascending order the planners expect), and element-wise sum the
  // per-instance residual vectors in shard order 0..S-1 — a fixed FP
  // summation order, so the merged residuals are deterministic.
  std::size_t total_entries = 0;
  for (const auto& part : shard_keys) total_entries += part.size();
  std::vector<std::size_t> order(total_entries);
  std::vector<KeyId> flat_keys;
  std::vector<Cost> flat_cost;
  std::vector<Bytes> flat_state;
  flat_keys.reserve(total_entries);
  flat_cost.reserve(total_entries);
  flat_state.reserve(total_entries);
  for (std::size_t s = 0; s < shard_count; ++s) {
    flat_keys.insert(flat_keys.end(), shard_keys[s].begin(),
                     shard_keys[s].end());
    flat_cost.insert(flat_cost.end(), shard_cost[s].begin(),
                     shard_cost[s].end());
    flat_state.insert(flat_state.end(), shard_state[s].begin(),
                      shard_state[s].end());
  }
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return flat_keys[a] < flat_keys[b];
  });
  keys.resize(total_entries);
  cost.resize(total_entries);
  state.resize(total_entries);
  for (std::size_t i = 0; i < total_entries; ++i) {
    keys[i] = flat_keys[order[i]];
    cost[i] = flat_cost[order[i]];
    state[i] = flat_state[order[i]];
  }

  const auto nd = static_cast<std::size_t>(num_instances);
  cold_cost.assign(nd, 0.0);
  cold_state.assign(nd, 0.0);
  for (std::size_t s = 0; s < shard_count; ++s) {
    SKW_EXPECTS(shard_cold_cost[s].size() == nd &&
                shard_cold_state[s].size() == nd);
    for (std::size_t d = 0; d < nd; ++d) {
      cold_cost[d] += shard_cold_cost[s][d];
      cold_state[d] += shard_cold_state[s][d];
    }
  }
}

std::uint64_t ShardedSketchStats::total_promotions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_promotions();
  return total;
}

std::uint64_t ShardedSketchStats::total_demotions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_demotions();
  return total;
}

}  // namespace skewless
