// PartitionSnapshot — the frozen per-interval view of one operator that
// every rebalance algorithm consumes (Section II-A of the paper).
//
// The snapshot is a COMPACT representation: a list of entries (the keys
// the planner may move — all of [0, K) in exact mode, the tracked heavy
// set in sketch mode) plus per-instance cold residual aggregates for the
// untracked tail. For each entry slot e:
//   cost[e]       = c_{i-1}(k_e)   CPU cost of k_e's tuples last interval
//   state[e]      = S_{i-1}(k_e,w) bytes of windowed state bound to k_e
//   hash_dest[e]  = h(k_e)         the consistent-hash default destination
//   current[e]    = F(k_e)         destination under the assignment in force
// where k_e = keys[e], or simply e when `keys` is empty (the dense
// identity view: slot == key, the pre-compact representation).
//
// Cold residual aggregates: cold_cost[d] / cold_state[d] hold the exact
// cost/state mass of every untracked key currently pinned to instance d.
// Untracked keys are never migration candidates (the paper's rebalance
// algorithms only move high-γ keys, which the heavy set covers), but
// their mass participates in every load figure, so L(d), the average
// load L̄, θ(d) and Lmax stay EXACT — only per-key resolution is lost.
// cold_table_entries counts untracked keys holding explicit routing
// entries (they keep them; plans cannot clean what they cannot see).
//
// Loads, the average load L̄ and the balance indicator θ(d) are derived.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace skewless {

struct PartitionSnapshot {
  InstanceId num_instances = 0;

  // Entry-aligned vectors (slot -> value).
  std::vector<Cost> cost;
  std::vector<Bytes> state;
  std::vector<InstanceId> hash_dest;
  std::vector<InstanceId> current;

  /// Entry slot -> KeyId, strictly ascending. Empty = identity (dense
  /// view over [0, num_entries())).
  std::vector<KeyId> keys;

  /// Per-instance cold residual aggregates (see header comment). Empty =
  /// no cold tail (every key is an entry).
  std::vector<Cost> cold_cost;
  std::vector<Bytes> cold_state;

  /// Untracked keys holding explicit routing-table entries.
  std::size_t cold_table_entries = 0;

  /// |K| — the logical key-domain size. 0 = num_entries() (dense view).
  std::size_t total_keys = 0;

  /// Number of entry slots the planner iterates.
  [[nodiscard]] std::size_t num_entries() const { return cost.size(); }

  /// Logical key-domain size |K| (≥ num_entries()).
  [[nodiscard]] std::size_t num_keys() const {
    return total_keys != 0 ? total_keys : cost.size();
  }

  /// The key an entry slot stands for.
  [[nodiscard]] KeyId key_at(std::size_t slot) const {
    return keys.empty() ? static_cast<KeyId>(slot) : keys[slot];
  }

  [[nodiscard]] bool has_cold() const { return !cold_cost.empty(); }

  /// Seeds `loads` (sized num_instances, zeroed) with the cold residual
  /// cost mass — the shared first step of every planner's load
  /// accounting, since cold mass stays pinned for the whole planning run.
  void seed_cold_loads(std::vector<Cost>& loads) const {
    for (std::size_t d = 0; d < cold_cost.size(); ++d) {
      loads[d] = cold_cost[d];
    }
  }

  /// Per-instance load L(d) = Σ_{F(k_e)=d} c(k_e) + cold_cost[d] under
  /// the entry-aligned `assignment`.
  [[nodiscard]] std::vector<Cost> loads_under(
      const std::vector<InstanceId>& assignment) const;

  /// Loads under the snapshot's own `current` assignment.
  [[nodiscard]] std::vector<Cost> current_loads() const;

  /// Average load L̄ = (Σ c(k_e) + Σ cold_cost[d]) / N_D.
  [[nodiscard]] Cost average_load() const;

  /// Balance indicator θ(d) = |L(d) − L̄| / L̄ for one instance.
  [[nodiscard]] static double theta(const std::vector<Cost>& loads,
                                    InstanceId d);

  /// max_d θ(d) over all instances (0 when total load is 0).
  [[nodiscard]] static double max_theta(const std::vector<Cost>& loads);

  /// The paper's overload threshold Lmax = (1 + θmax) · L̄.
  [[nodiscard]] Cost overload_threshold(double theta_max) const;

  /// Internal consistency check (sizes match, destinations in range,
  /// keys strictly ascending, cold vectors per-instance).
  void validate() const;
};

/// Builds the vector of routing-table entries implied by an entry-aligned
/// assignment: every entry whose destination differs from its hash
/// destination needs one. Cold keys holding entries are counted by the
/// caller via PartitionSnapshot::cold_table_entries.
[[nodiscard]] std::size_t implied_table_size(
    const std::vector<InstanceId>& assignment,
    const std::vector<InstanceId>& hash_dest);

}  // namespace skewless
