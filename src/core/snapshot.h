// PartitionSnapshot — the frozen per-interval view of one operator that
// every rebalance algorithm consumes (Section II-A of the paper).
//
// For each key k in the dense domain [0, K):
//   cost[k]       = c_{i-1}(k)   CPU cost of k's tuples last interval
//   state[k]      = S_{i-1}(k,w) bytes of windowed state bound to k
//   hash_dest[k]  = h(k)         the consistent-hash default destination
//   current[k]    = F(k)         destination under the assignment in force
//
// Loads, the average load L̄ and the balance indicator θ(d) are derived.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace skewless {

struct PartitionSnapshot {
  InstanceId num_instances = 0;
  std::vector<Cost> cost;
  std::vector<Bytes> state;
  std::vector<InstanceId> hash_dest;
  std::vector<InstanceId> current;

  [[nodiscard]] std::size_t num_keys() const { return cost.size(); }

  /// Per-instance load L(d) = Σ_{F(k)=d} c(k) under `assignment`.
  [[nodiscard]] std::vector<Cost> loads_under(
      const std::vector<InstanceId>& assignment) const;

  /// Loads under the snapshot's own `current` assignment.
  [[nodiscard]] std::vector<Cost> current_loads() const;

  /// Average load L̄ = Σ c(k) / N_D.
  [[nodiscard]] Cost average_load() const;

  /// Balance indicator θ(d) = |L(d) − L̄| / L̄ for one instance.
  [[nodiscard]] static double theta(const std::vector<Cost>& loads,
                                    InstanceId d);

  /// max_d θ(d) over all instances (0 when total load is 0).
  [[nodiscard]] static double max_theta(const std::vector<Cost>& loads);

  /// The paper's overload threshold Lmax = (1 + θmax) · L̄.
  [[nodiscard]] Cost overload_threshold(double theta_max) const;

  /// Internal consistency check (sizes match, destinations in range).
  void validate() const;
};

/// Builds the vector of routing-table entries implied by an assignment:
/// every key whose destination differs from its hash destination needs an
/// explicit entry. Returns the entry count N_A.
[[nodiscard]] std::size_t implied_table_size(
    const std::vector<InstanceId>& assignment,
    const std::vector<InstanceId>& hash_dest);

}  // namespace skewless
