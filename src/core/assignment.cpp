#include "core/assignment.h"

#include "common/assert.h"

namespace skewless {

void AssignmentFunction::route_batch(const KeyId* keys, std::size_t n,
                                     InstanceId* out) const {
  table_.lookup_batch(keys, n, out);
  // Collect table misses and resolve them through ONE batched ring pass.
  thread_local std::vector<KeyId> miss_keys;
  thread_local std::vector<std::size_t> miss_idx;
  thread_local std::vector<InstanceId> miss_out;
  miss_keys.clear();
  miss_idx.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i] == kNilInstance) {
      miss_keys.push_back(keys[i]);
      miss_idx.push_back(i);
    }
  }
  if (!miss_keys.empty()) {
    miss_out.resize(miss_keys.size());
    ring_.owner_batch(miss_keys.data(), miss_keys.size(), miss_out.data());
    for (std::size_t j = 0; j < miss_keys.size(); ++j) {
      out[miss_idx[j]] = miss_out[j];
    }
  }
  if (!survivors_.empty()) {
    // Degraded mode: re-home any destination that points at a retired
    // instance. One predictable post-pass; the common (healthy) case
    // pays a single branch above.
    for (std::size_t i = 0; i < n; ++i) out[i] = resolve(out[i], keys[i]);
  }
}

std::vector<InstanceId> AssignmentFunction::materialize(
    std::size_t num_keys) const {
  std::vector<InstanceId> out(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    out[k] = (*this)(static_cast<KeyId>(k));
  }
  return out;
}

std::vector<InstanceId> AssignmentFunction::materialize_hash(
    std::size_t num_keys) const {
  std::vector<InstanceId> out(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    out[k] = ring_.owner(static_cast<KeyId>(k));
  }
  return out;
}

void AssignmentFunction::install(const std::vector<InstanceId>& assignment) {
  std::vector<std::pair<KeyId, InstanceId>> entries;
  for (std::size_t k = 0; k < assignment.size(); ++k) {
    const auto key = static_cast<KeyId>(k);
    SKW_EXPECTS(assignment[k] >= 0 && assignment[k] < num_instances());
    if (assignment[k] != ring_.owner(key)) {
      entries.emplace_back(key, assignment[k]);
    }
  }
  table_.assign(std::move(entries));
}

void AssignmentFunction::apply(KeyId key, InstanceId dest) {
  SKW_EXPECTS(dest >= 0 && dest < num_instances());
  if (dest == ring_.owner(key)) {
    table_.erase(key);
  } else {
    table_.set_unchecked(key, dest);
  }
}

std::vector<KeyId> assignment_delta(const std::vector<InstanceId>& before,
                                    const std::vector<InstanceId>& after) {
  SKW_EXPECTS(before.size() == after.size());
  std::vector<KeyId> delta;
  for (std::size_t k = 0; k < before.size(); ++k) {
    if (before[k] != after[k]) delta.push_back(static_cast<KeyId>(k));
  }
  return delta;
}

}  // namespace skewless
