#include "core/assignment.h"

#include "common/assert.h"

namespace skewless {

std::vector<InstanceId> AssignmentFunction::materialize(
    std::size_t num_keys) const {
  std::vector<InstanceId> out(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    out[k] = (*this)(static_cast<KeyId>(k));
  }
  return out;
}

std::vector<InstanceId> AssignmentFunction::materialize_hash(
    std::size_t num_keys) const {
  std::vector<InstanceId> out(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    out[k] = ring_.owner(static_cast<KeyId>(k));
  }
  return out;
}

void AssignmentFunction::install(const std::vector<InstanceId>& assignment) {
  std::vector<std::pair<KeyId, InstanceId>> entries;
  for (std::size_t k = 0; k < assignment.size(); ++k) {
    const auto key = static_cast<KeyId>(k);
    SKW_EXPECTS(assignment[k] >= 0 && assignment[k] < num_instances());
    if (assignment[k] != ring_.owner(key)) {
      entries.emplace_back(key, assignment[k]);
    }
  }
  table_.assign(std::move(entries));
}

void AssignmentFunction::apply(KeyId key, InstanceId dest) {
  SKW_EXPECTS(dest >= 0 && dest < num_instances());
  if (dest == ring_.owner(key)) {
    table_.erase(key);
  } else {
    table_.set_unchecked(key, dest);
  }
}

std::vector<KeyId> assignment_delta(const std::vector<InstanceId>& before,
                                    const std::vector<InstanceId>& after) {
  SKW_EXPECTS(before.size() == after.size());
  std::vector<KeyId> delta;
  for (std::size_t k = 0; k < before.size(); ++k) {
    if (before[k] != after[k]) delta.push_back(static_cast<KeyId>(k));
  }
  return delta;
}

}  // namespace skewless
