#include "core/snapshot.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace skewless {

std::vector<Cost> PartitionSnapshot::loads_under(
    const std::vector<InstanceId>& assignment) const {
  SKW_EXPECTS(assignment.size() == cost.size());
  std::vector<Cost> loads(static_cast<std::size_t>(num_instances), 0.0);
  for (std::size_t e = 0; e < assignment.size(); ++e) {
    const InstanceId d = assignment[e];
    SKW_EXPECTS(d >= 0 && d < num_instances);
    loads[static_cast<std::size_t>(d)] += cost[e];
  }
  // += (not seed-first) so entry accumulation order matches the historic
  // dense computation bit-for-bit when there are no cold residuals.
  for (std::size_t d = 0; d < cold_cost.size(); ++d) {
    loads[d] += cold_cost[d];
  }
  return loads;
}

std::vector<Cost> PartitionSnapshot::current_loads() const {
  return loads_under(current);
}

Cost PartitionSnapshot::average_load() const {
  SKW_EXPECTS(num_instances > 0);
  Cost total = 0.0;
  for (Cost c : cost) total += c;
  for (Cost c : cold_cost) total += c;
  return total / static_cast<Cost>(num_instances);
}

double PartitionSnapshot::theta(const std::vector<Cost>& loads, InstanceId d) {
  SKW_EXPECTS(d >= 0 && static_cast<std::size_t>(d) < loads.size());
  Cost total = 0.0;
  for (Cost l : loads) total += l;
  if (total <= 0.0) return 0.0;
  const Cost avg = total / static_cast<Cost>(loads.size());
  return std::abs(loads[static_cast<std::size_t>(d)] - avg) / avg;
}

double PartitionSnapshot::max_theta(const std::vector<Cost>& loads) {
  Cost total = 0.0;
  for (Cost l : loads) total += l;
  if (total <= 0.0) return 0.0;
  const Cost avg = total / static_cast<Cost>(loads.size());
  double worst = 0.0;
  for (Cost l : loads) worst = std::max(worst, std::abs(l - avg) / avg);
  return worst;
}

Cost PartitionSnapshot::overload_threshold(double theta_max) const {
  return (1.0 + theta_max) * average_load();
}

void PartitionSnapshot::validate() const {
  SKW_EXPECTS(num_instances > 0);
  SKW_EXPECTS(state.size() == cost.size());
  SKW_EXPECTS(hash_dest.size() == cost.size());
  SKW_EXPECTS(current.size() == cost.size());
  for (std::size_t e = 0; e < cost.size(); ++e) {
    SKW_EXPECTS(cost[e] >= 0.0);
    SKW_EXPECTS(state[e] >= 0.0);
    SKW_EXPECTS(hash_dest[e] >= 0 && hash_dest[e] < num_instances);
    SKW_EXPECTS(current[e] >= 0 && current[e] < num_instances);
  }
  if (!keys.empty()) {
    SKW_EXPECTS(keys.size() == cost.size());
    for (std::size_t e = 1; e < keys.size(); ++e) {
      SKW_EXPECTS(keys[e - 1] < keys[e]);
    }
  }
  if (!cold_cost.empty() || !cold_state.empty()) {
    SKW_EXPECTS(cold_cost.size() == static_cast<std::size_t>(num_instances));
    SKW_EXPECTS(cold_state.size() == static_cast<std::size_t>(num_instances));
    for (std::size_t d = 0; d < cold_cost.size(); ++d) {
      SKW_EXPECTS(cold_cost[d] >= 0.0);
      SKW_EXPECTS(cold_state[d] >= 0.0);
    }
  }
  if (total_keys != 0) {
    SKW_EXPECTS(total_keys >= num_entries());
    if (!keys.empty()) {
      SKW_EXPECTS(static_cast<std::size_t>(keys.back()) < total_keys);
    }
  }
}

std::size_t implied_table_size(const std::vector<InstanceId>& assignment,
                               const std::vector<InstanceId>& hash_dest) {
  SKW_EXPECTS(assignment.size() == hash_dest.size());
  std::size_t n = 0;
  for (std::size_t e = 0; e < assignment.size(); ++e) {
    if (assignment[e] != hash_dest[e]) ++n;
  }
  return n;
}

}  // namespace skewless
