#include "core/snapshot.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace skewless {

std::vector<Cost> PartitionSnapshot::loads_under(
    const std::vector<InstanceId>& assignment) const {
  SKW_EXPECTS(assignment.size() == cost.size());
  std::vector<Cost> loads(static_cast<std::size_t>(num_instances), 0.0);
  for (std::size_t k = 0; k < assignment.size(); ++k) {
    const InstanceId d = assignment[k];
    SKW_EXPECTS(d >= 0 && d < num_instances);
    loads[static_cast<std::size_t>(d)] += cost[k];
  }
  return loads;
}

std::vector<Cost> PartitionSnapshot::current_loads() const {
  return loads_under(current);
}

Cost PartitionSnapshot::average_load() const {
  SKW_EXPECTS(num_instances > 0);
  Cost total = 0.0;
  for (Cost c : cost) total += c;
  return total / static_cast<Cost>(num_instances);
}

double PartitionSnapshot::theta(const std::vector<Cost>& loads, InstanceId d) {
  SKW_EXPECTS(d >= 0 && static_cast<std::size_t>(d) < loads.size());
  Cost total = 0.0;
  for (Cost l : loads) total += l;
  if (total <= 0.0) return 0.0;
  const Cost avg = total / static_cast<Cost>(loads.size());
  return std::abs(loads[static_cast<std::size_t>(d)] - avg) / avg;
}

double PartitionSnapshot::max_theta(const std::vector<Cost>& loads) {
  Cost total = 0.0;
  for (Cost l : loads) total += l;
  if (total <= 0.0) return 0.0;
  const Cost avg = total / static_cast<Cost>(loads.size());
  double worst = 0.0;
  for (Cost l : loads) worst = std::max(worst, std::abs(l - avg) / avg);
  return worst;
}

Cost PartitionSnapshot::overload_threshold(double theta_max) const {
  return (1.0 + theta_max) * average_load();
}

void PartitionSnapshot::validate() const {
  SKW_EXPECTS(num_instances > 0);
  SKW_EXPECTS(state.size() == cost.size());
  SKW_EXPECTS(hash_dest.size() == cost.size());
  SKW_EXPECTS(current.size() == cost.size());
  for (std::size_t k = 0; k < cost.size(); ++k) {
    SKW_EXPECTS(cost[k] >= 0.0);
    SKW_EXPECTS(state[k] >= 0.0);
    SKW_EXPECTS(hash_dest[k] >= 0 && hash_dest[k] < num_instances);
    SKW_EXPECTS(current[k] >= 0 && current[k] < num_instances);
  }
}

std::size_t implied_table_size(const std::vector<InstanceId>& assignment,
                               const std::vector<InstanceId>& hash_dest) {
  SKW_EXPECTS(assignment.size() == hash_dest.size());
  std::size_t n = 0;
  for (std::size_t k = 0; k < assignment.size(); ++k) {
    if (assignment[k] != hash_dest[k]) ++n;
  }
  return n;
}

}  // namespace skewless
