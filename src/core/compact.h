// Compact 6-dimensional statistics representation (Section IV) and the
// Mixed algorithm adapted to run over it.
//
// A record (d', d, dh, vc, vS, #) stands for # keys that are currently on
// instance d, hash to dh, will next be routed to d', and whose discretized
// per-key cost / windowed state are vc / vS. The planner manipulates
// records (splitting them when only part of their key population moves),
// which shrinks the planning space from |K| to
// O(N_D^3 · |vc| · |vS|) and reproduces the Fig. 11 speedup.
#pragma once

#include <cstddef>
#include <vector>

#include "core/discretize.h"
#include "core/plan.h"
#include "core/snapshot.h"

namespace skewless {

struct CompactRecord {
  InstanceId next;  // d'  (kNilInstance while in the candidate set C)
  InstanceId curr;  // d   (assignment during the reporting interval)
  InstanceId hash;  // dh  (consistent-hash default)
  double vc;        // discretized per-key computation cost
  double vs;        // discretized per-key windowed state size
  /// Member entry slots into the planning snapshot (== KeyIds on a dense
  /// snapshot), zigzag-ordered by true cost. size() is the # field.
  std::vector<KeyId> keys;

  [[nodiscard]] std::size_t count() const { return keys.size(); }
  [[nodiscard]] double load() const {
    return vc * static_cast<double>(keys.size());
  }
};

class CompactSpace {
 public:
  /// Builds the record set from a snapshot. `r_degree` sets R = 2^r for
  /// both value discretizers; `greedy` selects HLHE error cancellation
  /// (true) vs nearest-representative rounding (the Fig. 6a ablation).
  static CompactSpace build(const PartitionSnapshot& snap, int r_degree,
                            bool greedy = true);

  [[nodiscard]] const std::vector<CompactRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t num_records() const { return records_.size(); }

  /// Estimated per-instance loads Σ vc·# over records with next == d.
  /// Entry records only — add the snapshot's cold_cost residuals to
  /// compare against loads that include the untracked tail.
  [[nodiscard]] std::vector<Cost> estimated_loads(
      InstanceId num_instances) const;

 private:
  std::vector<CompactRecord> records_;
};

/// Mixed (Algorithm 4) running over the compact representation. After
/// plan(), diagnostics expose the record count and the load-estimation
/// error (mean |L_est − L_true| / L̄, in percent) for the Fig. 11 study.
class CompactMixedPlanner final : public Planner {
 public:
  explicit CompactMixedPlanner(int r_degree, bool greedy = true)
      : r_degree_(r_degree), greedy_(greedy) {}

  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;

  [[nodiscard]] std::string name() const override {
    return greedy_ ? "CompactMixed" : "CompactMixedNearest";
  }

  [[nodiscard]] std::size_t last_num_records() const {
    return last_num_records_;
  }
  [[nodiscard]] double last_load_estimation_error_pct() const {
    return last_load_error_pct_;
  }

  /// Time spent building the compact representation from the full key
  /// statistics. In the paper's architecture this work happens at the
  /// reporting task instances (Fig. 5 step 1), not at the controller, so
  /// RebalancePlan::generation_micros covers only the record-space
  /// planning; the build cost is reported separately here.
  [[nodiscard]] Micros last_build_micros() const { return last_build_micros_; }

  /// Time spent expanding the record-space plan back to the dense key
  /// assignment (∆(F, F') materialization).
  [[nodiscard]] Micros last_expand_micros() const {
    return last_expand_micros_;
  }

 private:
  int r_degree_;
  bool greedy_;
  std::size_t last_num_records_ = 0;
  double last_load_error_pct_ = 0.0;
  Micros last_build_micros_ = 0;
  Micros last_expand_micros_ = 0;
};

}  // namespace skewless
