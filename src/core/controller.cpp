#include "core/controller.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {

Controller::Controller(AssignmentFunction assignment, PlannerPtr planner,
                       ControllerConfig config, std::size_t num_keys)
    : assignment_(std::move(assignment)),
      planner_(std::move(planner)),
      config_(config),
      stats_(make_stats_provider(config.stats_mode, num_keys, config.window,
                                 config.sketch)) {
  SKW_EXPECTS(planner_ != nullptr || !config_.enabled);
}

SketchStatsWindow* Controller::sketch_stats() {
  return dynamic_cast<SketchStatsWindow*>(stats_.get());
}

PartitionSnapshot Controller::build_snapshot() const {
  PartitionSnapshot snap;
  snap.num_instances = assignment_.num_instances();
  // Dense per-key view: exact copy in exact mode; heavy-exact plus
  // normalized cold estimates in sketch mode — either way the planners
  // consume the same PartitionSnapshot shape.
  stats_->synthesize_dense(snap.cost, snap.state);
  snap.hash_dest = assignment_.materialize_hash(stats_->num_keys());
  snap.current = assignment_.materialize(stats_->num_keys());
  return snap;
}

std::optional<RebalancePlan> Controller::end_interval() {
  stats_->roll();
  last_snapshot_ = build_snapshot();
  const auto loads = last_snapshot_.current_loads();
  last_observed_theta_ = PartitionSnapshot::max_theta(loads);

  if (!config_.enabled) return std::nullopt;
  if (last_observed_theta_ <= config_.planner.theta_max) return std::nullopt;

  RebalancePlan plan = planner_->plan(last_snapshot_, config_.planner);
  if (plan.moves.empty()) return std::nullopt;

  assignment_.install(plan.assignment);
  ++rebalance_count_;
  total_generation_micros_ += plan.generation_micros;
  total_migrated_bytes_ += plan.migration_bytes;
  SKW_LOG_INFO(
      "rebalance #%zu: %zu moves, %.0f bytes, table=%zu, theta %.3f -> %.3f "
      "(%.1f ms)",
      rebalance_count_, plan.moves.size(), plan.migration_bytes,
      plan.table_size, last_observed_theta_, plan.achieved_theta,
      static_cast<double>(plan.generation_micros) / 1000.0);
  return plan;
}

void Controller::add_instance() {
  // Pin every key to its pre-scale-out destination, then grow the ring.
  // Installing after the ring change computes entries against the new
  // h(k), so keys whose ring owner changed get explicit pins and no state
  // moves implicitly.
  const auto frozen = assignment_.materialize(stats_->num_keys());
  assignment_.add_instance();
  assignment_.install(frozen);
}

}  // namespace skewless
