#include "core/controller.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "common/rng.h"
#include "sketch/sketch_stats_window.h"
#include "sketch/slab_sink.h"

namespace skewless {

Controller::Controller(AssignmentFunction assignment, PlannerPtr planner,
                       ControllerConfig config, std::size_t num_keys)
    : assignment_(std::move(assignment)),
      planner_(std::move(planner)),
      config_(config),
      stats_(make_stats_provider(config.stats_mode, num_keys, config.window,
                                 config.sketch, config.shards)) {
  SKW_EXPECTS(planner_ != nullptr || !config_.enabled);
}

SketchStatsWindow* Controller::sketch_stats() {
  return dynamic_cast<SketchStatsWindow*>(stats_.get());
}

const SketchStatsWindow* Controller::sketch_stats() const {
  return dynamic_cast<const SketchStatsWindow*>(stats_.get());
}

SketchSlabSink* Controller::slab_sink() {
  return dynamic_cast<SketchSlabSink*>(stats_.get());
}

const SketchSlabSink* Controller::slab_sink() const {
  return dynamic_cast<const SketchSlabSink*>(stats_.get());
}

std::uint64_t Controller::heavy_promotions() const {
  const SketchSlabSink* sink = slab_sink();
  return sink ? sink->total_promotions() : 0;
}

std::uint64_t Controller::heavy_demotions() const {
  const SketchSlabSink* sink = slab_sink();
  return sink ? sink->total_demotions() : 0;
}

PartitionSnapshot Controller::build_snapshot() const {
  PartitionSnapshot snap;
  snap.num_instances = assignment_.num_instances();
  if (const SketchSlabSink* sink = slab_sink()) {
    // Compact planning view: the heavy set as entries (exact values) plus
    // per-instance cold residual aggregates. O(k + N_D) work and memory —
    // nothing here scales with |K|, which is what lets planning keep up
    // with million-key domains. Under the threaded engine's asynchronous
    // boundary merge this runs strictly after every sealed worker slab of
    // the closing epoch has been absorbed (end_interval is only reached
    // once the merge thread hands the epoch back), so the snapshot is a
    // pure function of the merged epoch — identical across schedulings
    // and buffer modes.
    sink->synthesize_compact(snap.num_instances, snap.keys, snap.cost,
                             snap.state, snap.cold_cost, snap.cold_state);
    snap.total_keys = stats_->num_keys();
    const std::size_t n = snap.keys.size();
    snap.hash_dest.resize(n);
    snap.current.resize(n);
    std::size_t entry_table = 0;
    for (std::size_t e = 0; e < n; ++e) {
      const KeyId key = snap.keys[e];
      snap.hash_dest[e] = assignment_.hash_dest(key);
      snap.current[e] = assignment_(key);
      if (snap.current[e] != snap.hash_dest[e]) ++entry_table;
    }
    // Table entries held by untracked keys: the invariant "entry exists
    // iff F(k) != h(k)" makes them exactly the non-heavy remainder. After
    // a retirement the invariant weakens (a re-homed heavy key differs
    // from h(k) without holding an entry), so clamp the subtraction.
    const std::size_t table_size = assignment_.table().size();
    snap.cold_table_entries =
        table_size >= entry_table ? table_size - entry_table : 0;
  } else {
    // Exact mode: the dense per-key view IS the compact view with every
    // key an entry (keys empty = identity, no cold residuals).
    stats_->synthesize_dense(snap.cost, snap.state);
    snap.hash_dest = assignment_.materialize_hash(stats_->num_keys());
    snap.current = assignment_.materialize(stats_->num_keys());
  }
  return snap;
}

std::optional<RebalancePlan> Controller::end_interval() {
  stats_->roll();
  last_snapshot_ = build_snapshot();
  const auto loads = last_snapshot_.current_loads();
  last_observed_theta_ = PartitionSnapshot::max_theta(loads);

  if (!config_.enabled) return std::nullopt;
  if (last_observed_theta_ <= config_.planner.theta_max) return std::nullopt;

  RebalancePlan plan = planner_->plan(last_snapshot_, config_.planner);
  if (assignment_.has_retired()) {
    // Degraded mode: the planner sees retired instances as valid slots
    // (the snapshot's loads simply read zero for them). Never move a key
    // onto — or pointlessly off — a dead instance; sources read from
    // `current`, which resolve() already maps onto survivors.
    std::erase_if(plan.moves, [&](const KeyMove& mv) {
      return assignment_.is_retired(mv.to) || assignment_.is_retired(mv.from);
    });
  }
  if (plan.moves.empty()) return std::nullopt;

  // Sparse install: only moved keys change routing state; cold keys keep
  // their pins. O(moves), never O(|K|) — equivalent to the old wholesale
  // install() because the table invariant (entry iff F(k) != h(k)) holds
  // key-by-key before and after.
  for (const KeyMove& mv : plan.moves) assignment_.apply(mv.key, mv.to);
  ++rebalance_count_;
  plan_digest_ = mix64(plan_digest_ ^ plan_value_digest(plan));
  total_generation_micros_ += plan.generation_micros;
  total_migrated_bytes_ += plan.migration_bytes;
  SKW_LOG_INFO(
      "rebalance #%zu: %zu moves, %.0f bytes, table=%zu, theta %.3f -> %.3f "
      "(%.1f ms)",
      rebalance_count_, plan.moves.size(), plan.migration_bytes,
      plan.table_size, last_observed_theta_, plan.achieved_theta,
      static_cast<double>(plan.generation_micros) / 1000.0);
  return plan;
}

void Controller::add_instance() {
  // Pin every key to its pre-scale-out destination, then grow the ring.
  // Installing after the ring change computes entries against the new
  // h(k), so keys whose ring owner changed get explicit pins and no state
  // moves implicitly.
  const auto frozen = assignment_.materialize(stats_->num_keys());
  assignment_.add_instance();
  assignment_.install(frozen);
}

}  // namespace skewless
