#include "core/discretize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace skewless {

HlheDiscretizer::HlheDiscretizer(int r_degree, double max_value)
    : r_value_(std::pow(2.0, r_degree)),
      last_value_(std::numeric_limits<double>::infinity()) {
  SKW_EXPECTS(r_degree >= 0);
  SKW_EXPECTS(max_value >= 0.0);
  const double r_cap = r_value_;

  // Linear part: s·R down to R.
  const auto s = static_cast<std::int64_t>(std::floor(
      std::max(max_value, 1.0) / r_cap));
  for (std::int64_t i = s; i >= 1; --i) {
    reps_.push_back(static_cast<double>(i) * r_cap);
  }
  // Exponential part: R/2, R/4, …, 2, 1 (r values).
  for (double y = r_cap / 2.0; y >= 1.0; y /= 2.0) reps_.push_back(y);
  if (reps_.empty() || reps_.back() > 1.0) reps_.push_back(1.0);

  SKW_ENSURES(std::is_sorted(reps_.rbegin(), reps_.rend()));
}

void HlheDiscretizer::reset() {
  deviation_ = 0.0;
  last_value_ = std::numeric_limits<double>::infinity();
}

std::size_t HlheDiscretizer::floor_index(double x) const {
  // reps_ is strictly decreasing; find first rep <= x.
  const auto it =
      std::lower_bound(reps_.begin(), reps_.end(), x,
                       [](double rep, double value) { return rep > value; });
  if (it == reps_.end()) return reps_.size() - 1;  // below smallest rep
  return static_cast<std::size_t>(it - reps_.begin());
}

double HlheDiscretizer::discretize(double x) {
  SKW_EXPECTS(x >= 0.0);
  if (x == 0.0) return 0.0;  // zero cost/state needs no representative
  SKW_EXPECTS(x <= last_value_ + 1e-9);
  last_value_ = x;

  const double clamped = std::max(x, 1.0);
  double chosen;
  if (clamped >= reps_.front()) {
    chosen = reps_.front();  // single candidate y_1
  } else {
    const std::size_t j = floor_index(clamped);
    SKW_ASSERT(j > 0);
    const double lo = reps_[j];      // y_j   <= x
    const double hi = reps_[j - 1];  // y_{j-1} > x
    // Pick the candidate that drives |δ + (x − y)| toward zero.
    const double dev_lo = deviation_ + (x - lo);
    const double dev_hi = deviation_ + (x - hi);
    chosen = std::abs(dev_hi) < std::abs(dev_lo) ? hi : lo;
  }
  deviation_ += x - chosen;
  return chosen;
}

double HlheDiscretizer::discretize_nearest(double x) const {
  SKW_EXPECTS(x >= 0.0);
  if (x == 0.0) return 0.0;
  const double clamped = std::max(x, 1.0);
  if (clamped >= reps_.front()) return reps_.front();
  const std::size_t j = floor_index(clamped);
  if (j == 0) return reps_.front();
  const double lo = reps_[j];
  const double hi = reps_[j - 1];
  return (clamped - lo) <= (hi - clamped) ? lo : hi;
}

}  // namespace skewless
