#include "core/planners.h"

#include <algorithm>

#include "common/assert.h"
#include "common/clock.h"

namespace skewless {
namespace {

/// Entry slots with an explicit routing entry (F(k) != h(k)) sorted by
/// the cleaning criterion η = smallest memory consumption S first. Cold
/// keys holding entries are invisible here — plans cannot clean them.
std::vector<KeyId> table_keys_by_smallest_state(const PartitionSnapshot& snap) {
  std::vector<KeyId> keys;
  for (std::size_t k = 0; k < snap.num_entries(); ++k) {
    if (snap.current[k] != snap.hash_dest[k]) keys.push_back(static_cast<KeyId>(k));
  }
  std::sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    const Bytes sa = snap.state[static_cast<std::size_t>(a)];
    const Bytes sb = snap.state[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  return keys;
}

}  // namespace

RebalancePlan run_gamma_phases(WorkingAssignment& wa,
                               const PartitionSnapshot& snap,
                               const PlannerConfig& config) {
  const Criterion psi(CriterionKind::kLargestGammaFirst, config.beta);
  rebalance_two_sided(wa, psi, config.theta_max,
                      config.llfd_op_budget_factor);
  return finalize_plan(snap, wa.to_assignment(), config);
}

RebalancePlan MinTablePlanner::plan(const PartitionSnapshot& snap,
                                    const PlannerConfig& config) {
  WallTimer timer;
  WorkingAssignment wa(snap);
  // Phase I: move back all keys in A.
  for (const KeyId k : table_keys_by_smallest_state(snap)) wa.move_back(k);
  // Phases II + III with ψ = highest computation cost first.
  const Criterion psi(CriterionKind::kHighestCostFirst);
  rebalance_two_sided(wa, psi, config.theta_max,
                      config.llfd_op_budget_factor);
  auto result = finalize_plan(snap, wa.to_assignment(), config);
  result.generation_micros = timer.elapsed_micros();
  return result;
}

RebalancePlan MinMigPlanner::plan(const PartitionSnapshot& snap,
                                  const PlannerConfig& config) {
  WallTimer timer;
  WorkingAssignment wa(snap);  // Phase I: do nothing.
  auto result = run_gamma_phases(wa, snap, config);
  result.generation_micros = timer.elapsed_micros();
  return result;
}

RebalancePlan MixedPlanner::plan(const PartitionSnapshot& snap,
                                 const PlannerConfig& config) {
  WallTimer timer;
  const auto table_keys = table_keys_by_smallest_state(snap);
  const std::size_t amax = config.max_table_entries;

  std::size_t n = 0;
  RebalancePlan result;
  while (true) {
    WorkingAssignment wa(snap);
    // Phase I: move back the n smallest-state table entries.
    for (std::size_t i = 0; i < n && i < table_keys.size(); ++i) {
      wa.move_back(table_keys[i]);
    }
    result = run_gamma_phases(wa, snap, config);

    if (amax == 0 || result.table_size <= amax || n >= table_keys.size()) {
      break;  // feasible, unbounded, or degenerated to full cleaning
    }
    // Line 10 of Algorithm 4: retry with the table overshoot folded into
    // the cleaning count. Strictly increasing n guarantees termination.
    const std::size_t overshoot = result.table_size - amax;
    n = std::min(n + std::max<std::size_t>(overshoot, 1), table_keys.size());
  }
  result.generation_micros = timer.elapsed_micros();
  return result;
}

RebalancePlan MixedBfPlanner::plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) {
  WallTimer timer;
  const auto table_keys = table_keys_by_smallest_state(snap);
  const std::size_t amax = config.max_table_entries;

  // Evaluate every cleaning count n in [0, N_A] (optionally strided so the
  // trial count stays below max_trials_).
  std::size_t stride = 1;
  if (max_trials_ > 0 && table_keys.size() + 1 > max_trials_) {
    stride = (table_keys.size() + max_trials_) / max_trials_;
  }

  bool have_best = false;
  RebalancePlan best;
  for (std::size_t n = 0; n <= table_keys.size(); n += stride) {
    WorkingAssignment wa(snap);
    for (std::size_t i = 0; i < n; ++i) wa.move_back(table_keys[i]);
    RebalancePlan trial = run_gamma_phases(wa, snap, config);

    const bool trial_fits = amax == 0 || trial.table_size <= amax;
    const bool best_fits = have_best && (amax == 0 || best.table_size <= amax);
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (trial_fits != best_fits) {
      better = trial_fits;  // feasibility dominates
    } else if (trial_fits) {
      better = trial.migration_bytes < best.migration_bytes;
    } else {
      better = trial.table_size < best.table_size;
    }
    if (better) {
      best = std::move(trial);
      have_best = true;
    }
  }
  SKW_ENSURES(have_best);
  best.generation_micros = timer.elapsed_micros();
  return best;
}

RebalancePlan LlfdNoAdjustPlanner::plan(const PartitionSnapshot& snap,
                                        const PlannerConfig& config) {
  WallTimer timer;
  WorkingAssignment wa(snap);
  const Criterion psi(CriterionKind::kHighestCostFirst);
  auto candidates = prepare_candidates(wa, psi, config.theta_max);

  // First-fit decreasing without exchanges: the ablation of Adjust.
  std::sort(candidates.begin(), candidates.end(), [&](KeyId a, KeyId b) {
    const Cost ca = snap.cost[static_cast<std::size_t>(a)];
    const Cost cb = snap.cost[static_cast<std::size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });
  for (const KeyId k : candidates) {
    const auto order = wa.instances_by_load_ascending();
    wa.assign(k, order.front());
  }
  auto result = finalize_plan(snap, wa.to_assignment(), config);
  result.generation_micros = timer.elapsed_micros();
  return result;
}

}  // namespace skewless
