// Elasticity advisor — the paper's future-work direction made concrete:
//
//   "we will also try to design a new mechanism, to support smooth
//    workload redistribution suitable to both long-term workload shifts
//    and short-term workload fluctuations."  (Section VII)
//
// The paper's framework handles short-term fluctuation with intra-operator
// key migration and explicitly defers long-term shifts to heavyweight
// resource scheduling (e.g. DRS [10]). This component closes the loop: it
// watches the same per-interval statistics the controller already
// collects and distinguishes
//   * short-term fluctuation  -> keep rebalancing (no recommendation),
//   * sustained overload      -> recommend scale-out (+1 instance),
//   * sustained underload     -> recommend scale-in (-1 instance),
// using utilization EWMAs with hysteresis so that bursts do not flap the
// cluster size. Scale-out integrates with Controller::add_instance(),
// which pins placements so no state moves implicitly.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace skewless {

enum class ScalingAdvice {
  kHold,      // balanced regime or transient fluctuation
  kScaleOut,  // sustained overload: add an instance
  kScaleIn,   // sustained underload: remove an instance
};

class ElasticityAdvisor {
 public:
  struct Options {
    /// Utilization above which an interval counts toward scale-out.
    double high_watermark = 0.85;
    /// Utilization below which an interval counts toward scale-in.
    double low_watermark = 0.40;
    /// EWMA smoothing factor per interval (higher = more reactive).
    double ewma_alpha = 0.25;
    /// Consecutive breaching intervals required before advising — this is
    /// what separates a long-term shift from a short-term fluctuation.
    int sustain_intervals = 5;
    /// Intervals to hold after any advice before advising again
    /// (hysteresis; covers the migration the advice causes).
    int cooldown_intervals = 10;
    /// Never advise scaling below this many instances.
    InstanceId min_instances = 1;
  };

  ElasticityAdvisor() : ElasticityAdvisor(Options{}) {}
  explicit ElasticityAdvisor(Options options);

  /// Feeds one interval's aggregate utilization (mean work / capacity
  /// over all instances, i.e. ρ̄ ∈ [0, ∞)) and current instance count;
  /// returns the advice for this interval.
  ScalingAdvice observe(double mean_utilization, InstanceId num_instances);

  /// Smoothed utilization estimate.
  [[nodiscard]] double utilization_ewma() const { return ewma_; }

  /// Consecutive intervals currently breaching a watermark (diagnostic).
  [[nodiscard]] int breach_streak() const { return streak_; }

  [[nodiscard]] const Options& options() const { return options_; }

  /// Forgets all history (e.g. after an externally triggered resize).
  void reset();

 private:
  Options options_;
  double ewma_ = 0.0;
  bool ewma_initialized_ = false;
  int streak_ = 0;        // +n above high watermark, -n below low
  int cooldown_ = 0;
};

/// Suggested instance count for a target utilization: the smallest N such
/// that total_work / N ≤ target · capacity. Used by operators planning a
/// resize ahead of time.
[[nodiscard]] InstanceId suggest_instances(double total_work_per_interval,
                                           double capacity_per_instance,
                                           double target_utilization);

}  // namespace skewless
