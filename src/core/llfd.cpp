#include "core/llfd.h"

#include <algorithm>
#include <queue>

#include "common/assert.h"

namespace skewless {
namespace {

/// Max-heap ordering: larger cost first, then smaller KeyId (determinism).
struct CostOrder {
  const PartitionSnapshot* snap;
  bool operator()(KeyId a, KeyId b) const {
    const Cost ca = snap->cost[static_cast<std::size_t>(a)];
    const Cost cb = snap->cost[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;  // priority_queue: "less" = lower priority
    return a > b;
  }
};

/// The paper's Adjust(k, d, C, θmax): returns true and performs the
/// necessary evictions if key k can live on instance d, possibly after
/// disassociating an exchangeable set E ⊆ keys(d) with
///   (i)  every k' ∈ E currently assigned to d,
///   (ii) c(k') < c(k) for all k' ∈ E,
///   (iii) L̂(d) + c(k) − Σ_{k'∈E} c(k') ≤ Lmax.
/// Evicted keys are appended to `evicted` for re-queueing.
bool adjust(WorkingAssignment& wa, KeyId key, InstanceId d,
            const Criterion& psi, Cost lmax, std::vector<KeyId>& evicted) {
  const PartitionSnapshot& snap = wa.snapshot();
  const Cost ck = snap.cost[static_cast<std::size_t>(key)];

  if (wa.load(d) + ck <= lmax) return true;  // fits outright

  // Build the eviction candidate list: keys on d with strictly smaller
  // cost, ordered by ψ descending.
  std::vector<KeyId> pool;
  pool.reserve(wa.keys_of(d).size());
  for (const KeyId k2 : wa.keys_of(d)) {
    if (snap.cost[static_cast<std::size_t>(k2)] < ck) pool.push_back(k2);
  }
  if (pool.empty()) return false;
  psi.sort_descending(snap, pool);

  const Cost need = wa.load(d) + ck - lmax;  // mass that must leave d
  Cost freed = 0.0;
  std::size_t take = 0;
  while (take < pool.size() && freed < need) {
    freed += snap.cost[static_cast<std::size_t>(pool[take])];
    ++take;
  }
  if (freed < need) return false;  // condition (iii) unsatisfiable

  for (std::size_t i = 0; i < take; ++i) {
    wa.disassociate(pool[i]);
    evicted.push_back(pool[i]);
  }
  return true;
}

}  // namespace

std::vector<KeyId> prepare_candidates(WorkingAssignment& wa,
                                      const Criterion& psi, double theta_max) {
  const PartitionSnapshot& snap = wa.snapshot();
  const Cost lmax = snap.overload_threshold(theta_max);

  std::vector<KeyId> candidates;
  for (InstanceId d = 0; d < wa.num_instances(); ++d) {
    if (wa.load(d) <= lmax) continue;
    // Select keys by ψ until d stops being overloaded. Sort a copy of the
    // bucket once; disassociating from the back of the sorted order keeps
    // this O(B log B) per overloaded instance.
    std::vector<KeyId> bucket = wa.keys_of(d);
    psi.sort_descending(snap, bucket);
    for (const KeyId k : bucket) {
      if (wa.load(d) <= lmax) break;
      // Never strip an instance bare: keep at least one key so that
      // pathological single-hot-key domains stay routable.
      if (wa.keys_of(d).size() <= 1) break;
      wa.disassociate(k);
      candidates.push_back(k);
    }
  }
  return candidates;
}

LlfdOutcome llfd_assign(WorkingAssignment& wa, std::vector<KeyId> candidates,
                        const Criterion& psi, double theta_max,
                        double op_budget_factor) {
  const PartitionSnapshot& snap = wa.snapshot();
  const Cost lmax = snap.overload_threshold(theta_max);

  LlfdOutcome outcome;
  std::priority_queue<KeyId, std::vector<KeyId>, CostOrder> heap(
      CostOrder{&snap}, std::move(candidates));

  // Termination is guaranteed by the strict-decrease of eviction costs
  // (condition (ii)); the budget guards against float-equality pathologies.
  const auto budget = static_cast<std::size_t>(
      op_budget_factor * static_cast<double>(heap.size() + 16));
  std::size_t ops = 0;

  std::vector<KeyId> evicted;
  while (!heap.empty()) {
    const KeyId key = heap.top();
    heap.pop();

    if (++ops > budget) {
      outcome.budget_exhausted = true;
      // Best-effort: place everything remaining least-load, no evictions.
      std::vector<KeyId> rest;
      rest.push_back(key);
      while (!heap.empty()) {
        rest.push_back(heap.top());
        heap.pop();
      }
      for (const KeyId k : rest) {
        const auto order = wa.instances_by_load_ascending();
        wa.assign(k, order.front());
        ++outcome.placements;
      }
      outcome.fully_placed = false;
      return outcome;
    }

    const auto order = wa.instances_by_load_ascending();
    bool placed = false;
    for (const InstanceId d : order) {
      evicted.clear();
      if (adjust(wa, key, d, psi, lmax, evicted)) {
        wa.assign(key, d);
        ++outcome.placements;
        outcome.evictions += evicted.size();
        for (const KeyId e : evicted) heap.push(e);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // No instance accepts the key within Lmax even with exchanges
      // (e.g. a single key heavier than Lmax). Fall back to least-load.
      wa.assign(key, order.front());
      ++outcome.placements;
      outcome.fully_placed = false;
    }
  }
  return outcome;
}

LlfdOutcome rebalance_two_sided(WorkingAssignment& wa, const Criterion& psi,
                                double theta_max, double op_budget_factor,
                                int max_refinement_rounds) {
  const PartitionSnapshot& snap = wa.snapshot();
  auto candidates = prepare_candidates(wa, psi, theta_max);
  LlfdOutcome outcome =
      llfd_assign(wa, std::move(candidates), psi, theta_max,
                  op_budget_factor);

  const Cost avg = snap.average_load();
  const Cost lmin = (1.0 - theta_max) * avg;
  for (int round = 0; round < max_refinement_rounds; ++round) {
    Cost min_load = wa.load(0);
    Cost deficit = 0.0;
    for (InstanceId d = 0; d < wa.num_instances(); ++d) {
      min_load = std::min(min_load, wa.load(d));
      // Only instances violating the lower bound count, but size the fill
      // toward the average — stopping at exactly (1−θ)L̄ strands unit-cost
      // keys that cannot subdivide the last fraction of the gap.
      if (wa.load(d) < lmin) deficit += avg - wa.load(d);
    }
    if (min_load >= lmin - 1e-9 || deficit <= 0.0) break;

    // Free keys from above-average instances, ψ descending, skipping keys
    // coarser than the remaining need (they would overshoot and bounce).
    std::vector<InstanceId> donors;
    for (InstanceId d = 0; d < wa.num_instances(); ++d) {
      if (wa.load(d) > avg) donors.push_back(d);
    }
    std::sort(donors.begin(), donors.end(), [&](InstanceId a, InstanceId b) {
      return wa.load(a) > wa.load(b);
    });

    std::vector<KeyId> extra;
    Cost freed = 0.0;
    for (const InstanceId d : donors) {
      if (freed >= deficit) break;
      std::vector<KeyId> bucket = wa.keys_of(d);
      psi.sort_descending(snap, bucket);
      Cost spare = wa.load(d) - avg;
      for (const KeyId k : bucket) {
        if (freed >= deficit || spare <= 0.0) break;
        const Cost c = snap.cost[static_cast<std::size_t>(k)];
        if (c <= 0.0 || c > std::min(deficit - freed, spare)) continue;
        wa.disassociate(k);
        extra.push_back(k);
        freed += c;
        spare -= c;
      }
    }
    if (extra.empty()) break;  // granularity-limited; give up gracefully

    const LlfdOutcome extra_outcome =
        llfd_assign(wa, std::move(extra), psi, theta_max, op_budget_factor);
    outcome.placements += extra_outcome.placements;
    outcome.evictions += extra_outcome.evictions;
    outcome.fully_placed = outcome.fully_placed && extra_outcome.fully_placed;
  }
  return outcome;
}

std::vector<InstanceId> simple_assign(const PartitionSnapshot& snap) {
  // Algorithm 5: all entries into C, sort by descending cost, least-load
  // fit. Cold residual mass stays pinned and pre-loads the instances.
  std::vector<KeyId> keys(snap.num_entries());
  for (std::size_t k = 0; k < keys.size(); ++k) keys[k] = static_cast<KeyId>(k);
  std::sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
    const Cost ca = snap.cost[static_cast<std::size_t>(a)];
    const Cost cb = snap.cost[static_cast<std::size_t>(b)];
    if (ca != cb) return ca > cb;
    return a < b;
  });

  std::vector<InstanceId> assignment(snap.num_entries(), kNilInstance);
  std::vector<Cost> loads(static_cast<std::size_t>(snap.num_instances), 0.0);
  snap.seed_cold_loads(loads);
  for (const KeyId k : keys) {
    std::size_t best = 0;
    for (std::size_t d = 1; d < loads.size(); ++d) {
      if (loads[d] < loads[best]) best = d;
    }
    assignment[static_cast<std::size_t>(k)] = static_cast<InstanceId>(best);
    loads[best] += snap.cost[static_cast<std::size_t>(k)];
  }
  return assignment;
}

}  // namespace skewless
