#include "core/elasticity.h"

#include <cmath>

#include "common/assert.h"

namespace skewless {

ElasticityAdvisor::ElasticityAdvisor(Options options) : options_(options) {
  SKW_EXPECTS(options_.high_watermark > options_.low_watermark);
  SKW_EXPECTS(options_.low_watermark >= 0.0);
  SKW_EXPECTS(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0);
  SKW_EXPECTS(options_.sustain_intervals >= 1);
  SKW_EXPECTS(options_.cooldown_intervals >= 0);
  SKW_EXPECTS(options_.min_instances >= 1);
}

void ElasticityAdvisor::reset() {
  ewma_ = 0.0;
  ewma_initialized_ = false;
  streak_ = 0;
  cooldown_ = 0;
}

ScalingAdvice ElasticityAdvisor::observe(double mean_utilization,
                                         InstanceId num_instances) {
  SKW_EXPECTS(mean_utilization >= 0.0);
  SKW_EXPECTS(num_instances >= 1);

  if (!ewma_initialized_) {
    ewma_ = mean_utilization;
    ewma_initialized_ = true;
  } else {
    ewma_ += options_.ewma_alpha * (mean_utilization - ewma_);
  }

  if (cooldown_ > 0) {
    --cooldown_;
    streak_ = 0;
    return ScalingAdvice::kHold;
  }

  if (ewma_ > options_.high_watermark) {
    streak_ = streak_ >= 0 ? streak_ + 1 : 1;
  } else if (ewma_ < options_.low_watermark) {
    streak_ = streak_ <= 0 ? streak_ - 1 : -1;
  } else {
    streak_ = 0;  // healthy band: whatever happened was a fluctuation
  }

  if (streak_ >= options_.sustain_intervals) {
    streak_ = 0;
    cooldown_ = options_.cooldown_intervals;
    return ScalingAdvice::kScaleOut;
  }
  if (-streak_ >= options_.sustain_intervals &&
      num_instances > options_.min_instances) {
    streak_ = 0;
    cooldown_ = options_.cooldown_intervals;
    return ScalingAdvice::kScaleIn;
  }
  return ScalingAdvice::kHold;
}

InstanceId suggest_instances(double total_work_per_interval,
                             double capacity_per_instance,
                             double target_utilization) {
  SKW_EXPECTS(total_work_per_interval >= 0.0);
  SKW_EXPECTS(capacity_per_instance > 0.0);
  SKW_EXPECTS(target_utilization > 0.0 && target_utilization <= 1.0);
  const double needed =
      total_work_per_interval / (capacity_per_instance * target_utilization);
  return std::max<InstanceId>(1, static_cast<InstanceId>(std::ceil(needed)));
}

}  // namespace skewless
