#include "core/compact.h"

#include <algorithm>
#include <cstdlib>
#include <cmath>
#include <map>
#include <numeric>
#include <queue>
#include <tuple>

#include "common/assert.h"
#include "common/clock.h"

namespace skewless {

CompactSpace CompactSpace::build(const PartitionSnapshot& snap, int r_degree,
                                 bool greedy) {
  // Slots, not raw keys: records hold entry-slot indices into the
  // snapshot (identical to KeyIds on a dense snapshot); the cold residual
  // tail has no records — its mass rides in the per-instance aggregates.
  const std::size_t num_keys = snap.num_entries();

  // Discretize costs and states independently; each discretizer consumes
  // its values in non-increasing order (required by the greedy step).
  std::vector<std::size_t> by_cost(num_keys);
  std::iota(by_cost.begin(), by_cost.end(), std::size_t{0});
  std::sort(by_cost.begin(), by_cost.end(), [&](std::size_t a, std::size_t b) {
    if (snap.cost[a] != snap.cost[b]) return snap.cost[a] > snap.cost[b];
    return a < b;
  });
  std::vector<std::size_t> by_state(num_keys);
  std::iota(by_state.begin(), by_state.end(), std::size_t{0});
  std::sort(by_state.begin(), by_state.end(),
            [&](std::size_t a, std::size_t b) {
              if (snap.state[a] != snap.state[b])
                return snap.state[a] > snap.state[b];
              return a < b;
            });

  const double max_cost = num_keys ? snap.cost[by_cost.front()] : 0.0;
  const double max_state = num_keys ? snap.state[by_state.front()] : 0.0;
  HlheDiscretizer cost_disc(r_degree, max_cost);
  HlheDiscretizer state_disc(r_degree, max_state);

  std::vector<double> vc(num_keys), vs(num_keys);
  for (const std::size_t k : by_cost) {
    vc[k] = greedy ? cost_disc.discretize(snap.cost[k])
                   : cost_disc.discretize_nearest(snap.cost[k]);
  }
  for (const std::size_t k : by_state) {
    vs[k] = greedy ? state_disc.discretize(snap.state[k])
                   : state_disc.discretize_nearest(snap.state[k]);
  }

  // Group keys by (curr, hash, vc, vs); d' starts equal to curr.
  std::map<std::tuple<InstanceId, InstanceId, double, double>, std::size_t>
      index;
  CompactSpace space;
  for (std::size_t k = 0; k < num_keys; ++k) {
    const auto sig = std::make_tuple(snap.current[k], snap.hash_dest[k],
                                     vc[k], vs[k]);
    const auto [it, inserted] = index.emplace(sig, space.records_.size());
    if (inserted) {
      space.records_.push_back(CompactRecord{snap.current[k],
                                             snap.current[k],
                                             snap.hash_dest[k],
                                             vc[k],
                                             vs[k],
                                             {}});
    }
    space.records_[it->second].keys.push_back(static_cast<KeyId>(k));
  }
  // Order members so that any contiguous tail split carries roughly the
  // bucket-average true cost: sort by true cost descending, then zigzag
  // (largest, smallest, 2nd largest, 2nd smallest, ...). Splits take keys
  // from the back, so a biased ordering (pure ascending/descending) would
  // systematically under- or over-deliver true mass versus the vc·m
  // estimate; the zigzag keeps the estimation error near zero.
  for (auto& rec : space.records_) {
    std::sort(rec.keys.begin(), rec.keys.end(), [&](KeyId a, KeyId b) {
      const Cost ca = snap.cost[static_cast<std::size_t>(a)];
      const Cost cb = snap.cost[static_cast<std::size_t>(b)];
      if (ca != cb) return ca > cb;
      return a < b;
    });
    std::vector<KeyId> zigzag;
    zigzag.reserve(rec.keys.size());
    std::size_t lo = 0;
    std::size_t hi = rec.keys.size();
    while (lo < hi) {
      zigzag.push_back(rec.keys[lo++]);
      if (lo < hi) zigzag.push_back(rec.keys[--hi]);
    }
    rec.keys = std::move(zigzag);
  }
  return space;
}

std::vector<Cost> CompactSpace::estimated_loads(
    InstanceId num_instances) const {
  std::vector<Cost> loads(static_cast<std::size_t>(num_instances), 0.0);
  for (const auto& rec : records_) {
    if (rec.next == kNilInstance) continue;
    SKW_ASSERT(rec.next >= 0 && rec.next < num_instances);
    loads[static_cast<std::size_t>(rec.next)] += rec.load();
  }
  return loads;
}

namespace {

/// Mutable record store for one planning trial. Splitting takes keys from
/// the *back* of the member list (smallest true cost first), matching the
/// smallest-memory-first cleaning and keeping the hottest keys attached to
/// the record that stays put.
class RecordPlanState {
 public:
  RecordPlanState(std::vector<CompactRecord> recs,
                  const PartitionSnapshot& snap)
      : records_(std::move(recs)),
        loads_(static_cast<std::size_t>(snap.num_instances), 0.0) {
    // Cold residual mass is pinned: seed it first so every load figure
    // (lmax comparisons, water levels, underload deficits) stays exact.
    snap.seed_cold_loads(loads_);
    for (const auto& rec : records_) {
      if (rec.next != kNilInstance) {
        loads_[static_cast<std::size_t>(rec.next)] += rec.load();
      }
    }
  }

  [[nodiscard]] std::vector<CompactRecord>& records() { return records_; }
  [[nodiscard]] const std::vector<Cost>& loads() const { return loads_; }

  [[nodiscard]] InstanceId least_loaded() const {
    std::size_t best = 0;
    for (std::size_t d = 1; d < loads_.size(); ++d) {
      if (loads_[d] < loads_[best]) best = d;
    }
    return static_cast<InstanceId>(best);
  }

  /// Splits `m` keys off record `idx` into a new record with destination
  /// `next` (which may be kNilInstance for the candidate set). Returns the
  /// index of the record now holding those m keys.
  std::size_t split(std::size_t idx, std::size_t m, InstanceId next) {
    SKW_EXPECTS(m > 0 && m <= records_[idx].count());
    if (m == records_[idx].count()) {
      retarget(idx, next);
      return idx;
    }
    CompactRecord& src = records_[idx];
    CompactRecord part = src;
    part.keys.assign(src.keys.end() - static_cast<std::ptrdiff_t>(m),
                     src.keys.end());
    src.keys.resize(src.keys.size() - m);
    part.next = src.next;  // retarget() below fixes loads consistently
    records_.push_back(std::move(part));
    retarget(records_.size() - 1, next);
    return records_.size() - 1;
  }

  /// Changes a whole record's destination, maintaining load accounting.
  void retarget(std::size_t idx, InstanceId next) {
    CompactRecord& rec = records_[idx];
    if (rec.next == next) return;
    if (rec.next != kNilInstance) {
      loads_[static_cast<std::size_t>(rec.next)] -= rec.load();
    }
    rec.next = next;
    if (next != kNilInstance) {
      loads_[static_cast<std::size_t>(next)] += rec.load();
    }
  }

  /// Expands records into a dense assignment (every key must be placed).
  [[nodiscard]] std::vector<InstanceId> to_assignment(
      std::size_t num_keys) const {
    std::vector<InstanceId> out(num_keys, kNilInstance);
    for (const auto& rec : records_) {
      SKW_ASSERT(rec.next != kNilInstance);
      for (const KeyId k : rec.keys) {
        out[static_cast<std::size_t>(k)] = rec.next;
      }
    }
    for (const InstanceId d : out) SKW_ENSURES(d != kNilInstance);
    return out;
  }

 private:
  std::vector<CompactRecord> records_;
  std::vector<Cost> loads_;
};

/// One Mixed trial over records with cleaning count n. Returns the dense
/// assignment.
std::vector<InstanceId> compact_trial(const CompactSpace& space,
                                      const PartitionSnapshot& snap,
                                      const PlannerConfig& config,
                                      std::size_t clean_n,
                                      std::vector<Cost>* est_loads_out) {
  RecordPlanState state(space.records(), snap);

  // ---- Phase I: move back clean_n keys, smallest vs first, among records
  // that occupy routing-table entries (next != hash).
  {
    std::vector<std::size_t> table_records;
    for (std::size_t i = 0; i < state.records().size(); ++i) {
      const auto& rec = state.records()[i];
      if (rec.next != rec.hash) table_records.push_back(i);
    }
    std::sort(table_records.begin(), table_records.end(),
              [&](std::size_t a, std::size_t b) {
                const auto& ra = state.records()[a];
                const auto& rb = state.records()[b];
                if (ra.vs != rb.vs) return ra.vs < rb.vs;
                return a < b;
              });
    std::size_t remaining = clean_n;
    for (const std::size_t idx : table_records) {
      if (remaining == 0) break;
      const std::size_t m = std::min(remaining, state.records()[idx].count());
      const InstanceId home = state.records()[idx].hash;
      state.split(idx, m, home);
      remaining -= m;
    }
  }

  // Estimated balance targets (discretized entry loads + exact cold).
  double total_est = 0.0;
  for (const auto& rec : state.records()) total_est += rec.load();
  for (const Cost c : snap.cold_cost) total_est += c;
  const double avg_est = total_est / static_cast<double>(snap.num_instances);
  const double lmax = (1.0 + config.theta_max) * avg_est;

  // ---- Phase II: disassociate records (splitting as needed) from
  // overloaded instances, γ = vc^β / vs descending.
  std::vector<std::size_t> candidates;  // record indices with next == nil
  {
    const auto gamma = [&](const CompactRecord& rec) {
      return std::pow(rec.vc, config.beta) / std::max(rec.vs, 1.0);
    };
    for (InstanceId d = 0; d < snap.num_instances; ++d) {
      if (state.loads()[static_cast<std::size_t>(d)] <= lmax) continue;
      std::vector<std::size_t> on_d;
      for (std::size_t i = 0; i < state.records().size(); ++i) {
        if (state.records()[i].next == d && state.records()[i].count() > 0) {
          on_d.push_back(i);
        }
      }
      std::sort(on_d.begin(), on_d.end(), [&](std::size_t a, std::size_t b) {
        const double ga = gamma(state.records()[a]);
        const double gb = gamma(state.records()[b]);
        if (ga != gb) return ga > gb;
        return a < b;
      });
      for (const std::size_t idx : on_d) {
        const double excess = state.loads()[static_cast<std::size_t>(d)] - lmax;
        if (excess <= 0.0) break;
        const auto& rec = state.records()[idx];
        if (rec.vc <= 0.0) continue;
        const auto want = static_cast<std::size_t>(
            std::ceil(excess / rec.vc));
        const std::size_t m = std::min(want, rec.count());
        if (m == 0) continue;
        candidates.push_back(state.split(idx, m, kNilInstance));
      }
    }
  }

  // ---- Phase III: adapted LLFD over records, including the Adjust
  // exchangeable-set repair. Records are processed in descending vc (a
  // max-heap, because evictions re-enter the queue); each record spreads
  // over least-loaded instances, splitting so no placement pushes an
  // instance past lmax. When even the least-loaded instance has no room
  // for one key, smaller-vc keys are evicted from it (condition (ii) of
  // Adjust — strictly smaller cost — guarantees termination).
  const auto vc_less = [&state](std::size_t a, std::size_t b) {
    const auto& ra = state.records()[a];
    const auto& rb = state.records()[b];
    if (ra.vc != rb.vc) return ra.vc < rb.vc;  // max-heap on vc
    return a > b;
  };
  using Heap = std::priority_queue<std::size_t, std::vector<std::size_t>,
                                   decltype(vc_less)>;
  Heap heap(vc_less, std::move(candidates));

  const auto gamma = [&](const CompactRecord& rec) {
    return std::pow(rec.vc, config.beta) / std::max(rec.vs, 1.0);
  };

  // Safety valve mirroring PlannerConfig::llfd_op_budget_factor.
  std::size_t ops = 0;
  const std::size_t op_budget =
      1024 + 64 * (state.records().size() + snap.num_entries() / 8);

  const auto place_all = [&](Heap& work) {
  while (!work.empty()) {
    const std::size_t idx = work.top();
    work.pop();
    while (state.records()[idx].count() > 0 &&
           state.records()[idx].next == kNilInstance) {
      const bool over_budget = ++ops > op_budget;
      const InstanceId d = state.least_loaded();
      const auto di = static_cast<std::size_t>(d);
      const double vc = state.records()[idx].vc;
      const double room = lmax - state.loads()[di];
      // Water-filling: bulk-place only up to the second-lowest load level
      // so placements equalize instead of pushing the minimum straight to
      // lmax (which would strand other instances underloaded).
      double level = lmax;
      for (std::size_t o = 0; o < state.loads().size(); ++o) {
        if (o == di) continue;
        level = std::min(level, state.loads()[o]);
      }
      const double head = std::max(level, state.loads()[di] + 1.0) -
                          state.loads()[di];
      std::size_t fit =
          vc > 0.0 ? static_cast<std::size_t>(
                         std::min(std::max(0.0, room), head) / vc)
                   : state.records()[idx].count();

      // Head-room below the water level but above lmax-room: one key is
      // fine (slight overshoot of the level, still within lmax).
      if (fit == 0 && room >= vc) fit = 1;

      if (fit == 0 && !over_budget) {
        // Adjust: free room on d by evicting records with strictly
        // smaller vc, highest gamma first.
        const double need = vc - std::max(room, 0.0);
        std::vector<std::size_t> pool;
        for (std::size_t i = 0; i < state.records().size(); ++i) {
          const auto& r = state.records()[i];
          if (r.next == d && r.count() > 0 && r.vc < vc) pool.push_back(i);
        }
        std::sort(pool.begin(), pool.end(),
                  [&](std::size_t a, std::size_t b) {
                    const double ga = gamma(state.records()[a]);
                    const double gb = gamma(state.records()[b]);
                    if (ga != gb) return ga > gb;
                    return a < b;
                  });
        double freed = 0.0;
        for (const std::size_t pi : pool) {
          if (freed >= need) break;
          const auto& r = state.records()[pi];
          const auto want = static_cast<std::size_t>(
              std::ceil((need - freed) / std::max(r.vc, 1e-9)));
          const std::size_t m = std::min(want, r.count());
          if (m == 0) continue;
          freed += static_cast<double>(m) * r.vc;
          work.push(state.split(pi, m, kNilInstance));
        }
        if (freed >= need) fit = 1;  // room now exists for one key
      }
      // Fallback (giant key or budget exhausted): force one key.
      fit = std::max<std::size_t>(fit, 1);

      const std::size_t m = std::min(fit, state.records()[idx].count());
      if (m == state.records()[idx].count()) {
        state.retarget(idx, d);
      } else {
        state.split(idx, m, d);
      }
    }
  }
  };  // place_all

  place_all(heap);

  // ---- Underload refinement. The three phases only trim instances above
  // Lmax, which can strand an instance below (1 − θmax)·L̄ when the freed
  // mass is absorbed elsewhere (e.g. an atomic hot record pinning one
  // instance at Lmax). A few bounded rounds free additional mass from
  // above-average instances (γ descending, the cheapest migrations) and
  // water-fill it back in.
  for (int round = 0; round < 4; ++round) {
    const double lmin = (1.0 - config.theta_max) * avg_est;
    double min_load = state.loads().front();
    double deficit = 0.0;
    for (const double l : state.loads()) {
      min_load = std::min(min_load, l);
      // Size the fill toward the average for violating instances (see
      // rebalance_two_sided for the rationale).
      if (l < lmin) deficit += avg_est - l;
    }
    if (min_load >= lmin - 1e-9 || deficit <= 0.0) break;

    std::vector<std::size_t> order(state.loads().size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return state.loads()[a] > state.loads()[b];
    });

    std::vector<std::size_t> extra;
    double freed = 0.0;
    for (const std::size_t di : order) {
      if (freed >= deficit) break;
      double spare = state.loads()[di] - avg_est;
      if (spare <= 0.0) break;
      std::vector<std::size_t> on_d;
      for (std::size_t i = 0; i < state.records().size(); ++i) {
        const auto& r = state.records()[i];
        if (r.next == static_cast<InstanceId>(di) && r.count() > 0) {
          on_d.push_back(i);
        }
      }
      std::sort(on_d.begin(), on_d.end(),
                [&](std::size_t a, std::size_t b) {
                  const double ga = gamma(state.records()[a]);
                  const double gb = gamma(state.records()[b]);
                  if (ga != gb) return ga > gb;
                  return a < b;
                });
      for (const std::size_t idx : on_d) {
        if (freed >= deficit || spare <= 0.0) break;
        const auto& r = state.records()[idx];
        if (r.vc <= 0.0) continue;
        const double take = std::min(deficit - freed, spare);
        // Only records fine-grained enough for the remaining need: a
        // coarser record would overshoot on the receiving side and
        // ping-pong back on the next round.
        if (r.vc > take) continue;
        const auto want = static_cast<std::size_t>(std::floor(take / r.vc));
        const std::size_t m =
            std::min(std::max<std::size_t>(want, 1), r.count());
        const double mass = static_cast<double>(m) * r.vc;
        freed += mass;
        spare -= mass;
        extra.push_back(state.split(idx, m, kNilInstance));
      }
    }
    if (extra.empty()) break;
    Heap refill(vc_less, std::move(extra));
    place_all(refill);
  }

  if (std::getenv("SKW_DEBUG_COMPACT") != nullptr) {
    for (std::size_t d = 0; d < state.loads().size(); ++d) {
      std::fprintf(stderr, "est d%zu = %.0f\n", d, state.loads()[d]);
    }
    std::fprintf(stderr, "avg_est=%.0f lmin=%.0f\n", avg_est,
                 (1.0 - config.theta_max) * avg_est);
  }
  if (est_loads_out != nullptr) *est_loads_out = state.loads();
  return state.to_assignment(snap.num_entries());
}

}  // namespace

RebalancePlan CompactMixedPlanner::plan(const PartitionSnapshot& snap,
                                        const PlannerConfig& config) {
  // Build phase: performed by the reporting instances in the paper's
  // deployment, so it is timed separately from plan generation.
  WallTimer build_timer;
  const CompactSpace space = CompactSpace::build(snap, r_degree_, greedy_);
  last_build_micros_ = build_timer.elapsed_micros();
  last_num_records_ = space.num_records();

  // Cleanable entries only: cold keys holding routing entries are not
  // the planner's to move back (finalize_plan counts them in table_size).
  std::size_t table_entries = 0;
  for (std::size_t k = 0; k < snap.num_entries(); ++k) {
    if (snap.current[k] != snap.hash_dest[k]) ++table_entries;
  }

  const std::size_t amax = config.max_table_entries;
  std::size_t n = 0;
  std::vector<InstanceId> assignment;
  std::vector<Cost> est_loads;
  WallTimer plan_timer;
  Micros plan_micros = 0;
  Micros expand_micros = 0;
  RebalancePlan result;
  while (true) {
    plan_timer.reset();
    assignment = compact_trial(space, snap, config, n, &est_loads);
    plan_micros += plan_timer.elapsed_micros();
    WallTimer expand_timer;
    result = finalize_plan(snap, std::move(assignment), config);
    expand_micros += expand_timer.elapsed_micros();
    if (amax == 0 || result.table_size <= amax || n >= table_entries) break;
    const std::size_t overshoot = result.table_size - amax;
    n = std::min(n + std::max<std::size_t>(overshoot, 1), table_entries);
  }
  last_expand_micros_ = expand_micros;

  // Diagnostics for the Fig. 11 load-estimation-error study.
  const auto true_loads = snap.loads_under(result.assignment);
  double total = 0.0;
  for (const Cost l : true_loads) total += l;
  const double avg = total / static_cast<double>(true_loads.size());
  double err = 0.0;
  if (avg > 0.0) {
    for (std::size_t d = 0; d < true_loads.size(); ++d) {
      err += std::abs(est_loads[d] - true_loads[d]) / avg;
    }
    err = err / static_cast<double>(true_loads.size()) * 100.0;
  }
  last_load_error_pct_ = err;

  result.generation_micros = plan_micros;
  return result;
}

}  // namespace skewless
