#include "core/plan.h"

#include <bit>

#include "common/assert.h"
#include "common/rng.h"

namespace skewless {

std::uint64_t plan_value_digest(const RebalancePlan& plan) {
  const auto fbits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::uint64_t d = mix64(0x9e3779b97f4a7c15ULL ^ plan.assignment.size());
  for (const InstanceId dest : plan.assignment) {
    d = mix64(d ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)));
  }
  d = mix64(d ^ plan.moves.size());
  for (const KeyMove& mv : plan.moves) {
    d = mix64(d ^ mv.key);
    d = mix64(d ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(mv.from)));
    d = mix64(d ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(mv.to)));
    d = mix64(d ^ fbits(mv.state_bytes));
  }
  d = mix64(d ^ plan.table_size);
  d = mix64(d ^ fbits(plan.migration_bytes));
  d = mix64(d ^ fbits(plan.achieved_theta));
  d = mix64(d ^ ((plan.balanced ? 2u : 0u) | (plan.table_fits ? 1u : 0u)));
  return d;
}

RebalancePlan finalize_plan(const PartitionSnapshot& snap,
                            std::vector<InstanceId> assignment,
                            const PlannerConfig& config) {
  SKW_EXPECTS(assignment.size() == snap.num_entries());
  RebalancePlan plan;
  plan.assignment = std::move(assignment);

  for (std::size_t e = 0; e < plan.assignment.size(); ++e) {
    const InstanceId before = snap.current[e];
    const InstanceId after = plan.assignment[e];
    SKW_EXPECTS(after >= 0 && after < snap.num_instances);
    if (before != after) {
      plan.moves.push_back(
          KeyMove{snap.key_at(e), before, after, snap.state[e]});
      plan.migration_bytes += snap.state[e];
    }
  }

  plan.table_size = implied_table_size(plan.assignment, snap.hash_dest) +
                    snap.cold_table_entries;
  const auto loads = snap.loads_under(plan.assignment);
  plan.achieved_theta = PartitionSnapshot::max_theta(loads);
  // A small epsilon absorbs float accumulation when θmax is met exactly.
  plan.balanced = plan.achieved_theta <= config.theta_max + 1e-9;
  plan.table_fits = config.max_table_entries == 0 ||
                    plan.table_size <= config.max_table_entries;
  return plan;
}

}  // namespace skewless
