#include "core/plan.h"

#include "common/assert.h"

namespace skewless {

RebalancePlan finalize_plan(const PartitionSnapshot& snap,
                            std::vector<InstanceId> assignment,
                            const PlannerConfig& config) {
  SKW_EXPECTS(assignment.size() == snap.num_entries());
  RebalancePlan plan;
  plan.assignment = std::move(assignment);

  for (std::size_t e = 0; e < plan.assignment.size(); ++e) {
    const InstanceId before = snap.current[e];
    const InstanceId after = plan.assignment[e];
    SKW_EXPECTS(after >= 0 && after < snap.num_instances);
    if (before != after) {
      plan.moves.push_back(
          KeyMove{snap.key_at(e), before, after, snap.state[e]});
      plan.migration_bytes += snap.state[e];
    }
  }

  plan.table_size = implied_table_size(plan.assignment, snap.hash_dest) +
                    snap.cold_table_entries;
  const auto loads = snap.loads_under(plan.assignment);
  plan.achieved_theta = PartitionSnapshot::max_theta(loads);
  // A small epsilon absorbs float accumulation when θmax is met exactly.
  plan.balanced = plan.achieved_theta <= config.theta_max + 1e-9;
  plan.table_fits = config.max_table_entries == 0 ||
                    plan.table_size <= config.max_table_entries;
  return plan;
}

}  // namespace skewless
