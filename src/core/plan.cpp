#include "core/plan.h"

#include "common/assert.h"

namespace skewless {

RebalancePlan finalize_plan(const PartitionSnapshot& snap,
                            std::vector<InstanceId> assignment,
                            const PlannerConfig& config) {
  SKW_EXPECTS(assignment.size() == snap.num_keys());
  RebalancePlan plan;
  plan.assignment = std::move(assignment);

  for (std::size_t k = 0; k < plan.assignment.size(); ++k) {
    const InstanceId before = snap.current[k];
    const InstanceId after = plan.assignment[k];
    SKW_EXPECTS(after >= 0 && after < snap.num_instances);
    if (before != after) {
      plan.moves.push_back(
          KeyMove{static_cast<KeyId>(k), before, after, snap.state[k]});
      plan.migration_bytes += snap.state[k];
    }
  }

  plan.table_size = implied_table_size(plan.assignment, snap.hash_dest);
  const auto loads = snap.loads_under(plan.assignment);
  plan.achieved_theta = PartitionSnapshot::max_theta(loads);
  // A small epsilon absorbs float accumulation when θmax is met exactly.
  plan.balanced = plan.achieved_theta <= config.theta_max + 1e-9;
  plan.table_fits = config.max_table_entries == 0 ||
                    plan.table_size <= config.max_table_entries;
  return plan;
}

}  // namespace skewless
