#include "core/stats_window.h"

#include <algorithm>

#include "common/assert.h"
#include "core/sharded_controller.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {

StatsWindow::StatsWindow(std::size_t num_keys, int window)
    : window_(window),
      cur_cost_(num_keys, 0.0),
      cur_state_(num_keys, 0.0),
      cur_freq_(num_keys, 0),
      last_cost_(num_keys, 0.0),
      last_freq_(num_keys, 0),
      window_sum_(num_keys, 0.0) {
  SKW_EXPECTS(window >= 1);
}

void StatsWindow::record(KeyId key, Cost cost, Bytes state_bytes,
                         std::uint64_t frequency, InstanceId /*dest*/) {
  const auto k = static_cast<std::size_t>(key);
  SKW_EXPECTS(k < cur_cost_.size());
  SKW_EXPECTS(cost >= 0.0 && state_bytes >= 0.0);
  cur_cost_[k] += cost;
  cur_state_[k] += state_bytes;
  cur_freq_[k] += frequency;
}

void StatsWindow::roll() {
  last_cost_ = cur_cost_;
  last_freq_ = cur_freq_;

  for (std::size_t k = 0; k < cur_state_.size(); ++k) {
    window_sum_[k] += cur_state_[k];
  }
  ring_.push_back(std::move(cur_state_));
  if (ring_.size() > static_cast<std::size_t>(window_)) {
    const auto& oldest = ring_.front();
    for (std::size_t k = 0; k < oldest.size(); ++k) {
      window_sum_[k] -= oldest[k];
      // Clamp tiny float residue so S never goes negative.
      if (window_sum_[k] < 0.0) window_sum_[k] = 0.0;
    }
    ring_.pop_front();
  }

  cur_state_.assign(window_sum_.size(), 0.0);
  std::fill(cur_cost_.begin(), cur_cost_.end(), 0.0);
  std::fill(cur_freq_.begin(), cur_freq_.end(), 0);
  ++closed_;
}

Bytes StatsWindow::total_windowed_state() const {
  Bytes total = 0.0;
  for (const Bytes b : window_sum_) total += b;
  return total;
}

Cost StatsWindow::last_cost_of(KeyId key) const {
  SKW_EXPECTS(key < last_cost_.size());
  return last_cost_[static_cast<std::size_t>(key)];
}

std::uint64_t StatsWindow::last_frequency_of(KeyId key) const {
  SKW_EXPECTS(key < last_freq_.size());
  return last_freq_[static_cast<std::size_t>(key)];
}

Bytes StatsWindow::windowed_state_of(KeyId key) const {
  SKW_EXPECTS(key < window_sum_.size());
  return window_sum_[static_cast<std::size_t>(key)];
}

void StatsWindow::synthesize_dense(std::vector<Cost>& cost,
                                   std::vector<Bytes>& state) const {
  cost = last_cost_;
  state = window_sum_;
}

std::size_t StatsWindow::memory_bytes() const {
  std::size_t bytes = sizeof(*this) +
                      cur_cost_.capacity() * sizeof(Cost) +
                      cur_state_.capacity() * sizeof(Bytes) +
                      cur_freq_.capacity() * sizeof(std::uint64_t) +
                      last_cost_.capacity() * sizeof(Cost) +
                      last_freq_.capacity() * sizeof(std::uint64_t) +
                      window_sum_.capacity() * sizeof(Bytes);
  for (const auto& interval : ring_) {
    bytes += sizeof(interval) + interval.capacity() * sizeof(Bytes);
  }
  return bytes;
}

void StatsWindow::resize_keys(std::size_t num_keys) {
  SKW_EXPECTS(num_keys >= cur_cost_.size());
  cur_cost_.resize(num_keys, 0.0);
  cur_state_.resize(num_keys, 0.0);
  cur_freq_.resize(num_keys, 0);
  last_cost_.resize(num_keys, 0.0);
  last_freq_.resize(num_keys, 0);
  window_sum_.resize(num_keys, 0.0);
  for (auto& interval : ring_) interval.resize(num_keys, 0.0);
}

std::unique_ptr<StatsProvider> make_stats_provider(
    StatsMode mode, std::size_t num_keys, int window,
    const SketchStatsConfig& sketch, std::size_t shards) {
  if (mode == StatsMode::kSketch) {
    if (shards >= 1) {
      return std::make_unique<ShardedSketchStats>(num_keys, window, sketch,
                                                  shards);
    }
    return std::make_unique<SketchStatsWindow>(num_keys, window, sketch);
  }
  return std::make_unique<StatsWindow>(num_keys, window);
}

}  // namespace skewless
