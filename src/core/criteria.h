// Key-selection criteria (the paper's ψ and η).
//
//  * HighestCostFirst          — ψ of MinTable: prioritize large c(k).
//  * LargestGammaFirst(β)      — ψ of MinMig/Mixed: prioritize the
//                                migration priority index
//                                γ_i(k, w) = c_i(k)^β / S_i(k, w).
//  * SmallestMemoryFirst       — η of Mixed's cleaning phase: move back
//                                the keys whose state is cheapest to
//                                re-migrate later.
//
// A criterion maps a snapshot entry slot (== KeyId on a dense snapshot)
// to a score; selection always takes the highest score first. Ties break
// on slot index for determinism.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/types.h"
#include "core/snapshot.h"

namespace skewless {

enum class CriterionKind {
  kHighestCostFirst,
  kLargestGammaFirst,
  kSmallestMemoryFirst,
};

class Criterion {
 public:
  /// β is only meaningful for kLargestGammaFirst (default 1.5 per the
  /// paper's parameter study, Figs. 20-21).
  explicit Criterion(CriterionKind kind, double beta = 1.5)
      : kind_(kind), beta_(beta) {}

  [[nodiscard]] CriterionKind kind() const { return kind_; }
  [[nodiscard]] double beta() const { return beta_; }

  /// Selection score for key k; higher means "pick earlier".
  [[nodiscard]] double score(const PartitionSnapshot& snap, KeyId key) const {
    const auto k = static_cast<std::size_t>(key);
    switch (kind_) {
      case CriterionKind::kHighestCostFirst:
        return snap.cost[k];
      case CriterionKind::kLargestGammaFirst: {
        // Guard S = 0 (stateless key): migration is free, so the priority
        // is maximal among keys of equal cost; use S clamped to one byte.
        const Bytes s = std::max(snap.state[k], 1.0);
        return std::pow(snap.cost[k], beta_) / s;
      }
      case CriterionKind::kSmallestMemoryFirst:
        return -snap.state[k];
    }
    return 0.0;
  }

  /// Sorts keys by descending score (stable ordering via KeyId tiebreak).
  void sort_descending(const PartitionSnapshot& snap,
                       std::vector<KeyId>& keys) const {
    std::sort(keys.begin(), keys.end(), [&](KeyId a, KeyId b) {
      const double sa = score(snap, a);
      const double sb = score(snap, b);
      if (sa != sb) return sa > sb;
      return a < b;
    });
  }

 private:
  CriterionKind kind_;
  double beta_;
};

}  // namespace skewless
