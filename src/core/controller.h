// The rebalance controller (Fig. 5 of the paper).
//
// At each interval boundary the engine hands the controller the interval's
// statistics (already accumulated into the StatsWindow). The controller:
//   1. evaluates workload imbalance under the assignment in force,
//   2. if max θ(d) exceeds θmax, runs the configured planner to build F',
//   3. returns the migration plan for the engine to execute
//      (pause -> migrate -> resume), and installs F' into the live
//      AssignmentFunction.
//
// Scale-out support: add_instance() grows the hash ring but pins every
// key to its previous destination with explicit entries, so state never
// moves implicitly; the next rebalance then shifts load onto the new
// instance deliberately (the Fig. 15 experiment).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/assignment.h"
#include "core/plan.h"
#include "core/stats_window.h"

namespace skewless {

class SketchStatsWindow;
class SketchSlabSink;

struct ControllerConfig {
  PlannerConfig planner;
  /// w — sliding window length in intervals.
  int window = 1;
  /// If false, the controller reports imbalance but never migrates
  /// (the "Storm" baseline behaviour).
  bool enabled = true;
  /// How per-key statistics are stored: kExact keeps dense O(|K|)
  /// vectors (StatsWindow); kSketch keeps exact stats only for tracked
  /// heavy hitters plus Count-Min aggregates for the cold tail
  /// (SketchStatsWindow) — the million-key configuration.
  StatsMode stats_mode = StatsMode::kExact;
  /// Tuning for stats_mode == kSketch.
  SketchStatsConfig sketch = {};
  /// Key-domain shards for the sketch provider. 0 = the legacy single
  /// SketchStatsWindow; >= 1 selects the sharded controller
  /// (ShardedSketchStats): S shard-local windows absorbing sealed worker
  /// slabs concurrently, a thin global tier concatenating the per-shard
  /// compact snapshots for planning. shards = 1 is contractually
  /// byte-identical to shards = 0 (plan-history digest, θ bit patterns).
  /// Ignored in exact mode.
  std::size_t shards = 0;
};

class Controller {
 public:
  Controller(AssignmentFunction assignment, PlannerPtr planner,
             ControllerConfig config, std::size_t num_keys);

  /// Load reporting (step 1 of Fig. 5): the engine records each key's cost
  /// and state growth as it processes tuples. `dest` — the instance the
  /// key's tuples ran on — feeds the sketch provider's per-instance cold
  /// residual aggregates (the compact planning view); engines know it at
  /// routing time and must pass it in sketch mode.
  void record(KeyId key, Cost cost, Bytes state_bytes,
              std::uint64_t frequency = 1, InstanceId dest = kNilInstance) {
    stats_->record(key, cost, state_bytes, frequency, dest);
  }

  [[nodiscard]] StatsProvider& stats() { return *stats_; }
  [[nodiscard]] const StatsProvider& stats() const { return *stats_; }

  /// The provider as a SketchStatsWindow when stats_mode == kSketch,
  /// nullptr in exact mode. The ThreadedEngine uses this seam to switch
  /// its workers onto thread-local sketch slabs merged at the interval
  /// boundary (instead of funnelling dense per-key maps through the
  /// shared record() path).
  [[nodiscard]] SketchStatsWindow* sketch_stats();
  [[nodiscard]] const SketchStatsWindow* sketch_stats() const;

  /// The provider as a slab sink when stats_mode == kSketch — the single
  /// window (shards <= 1) or the sharded provider — nullptr in exact
  /// mode. This is the seam the engines feed sealed worker slabs through
  /// and the shard boundary the sharded controller lives behind.
  [[nodiscard]] SketchSlabSink* slab_sink();
  [[nodiscard]] const SketchSlabSink* slab_sink() const;

  /// Resident bytes of the statistics structures (the exact-vs-sketch
  /// trade-off number).
  [[nodiscard]] std::size_t stats_memory_bytes() const {
    return stats_->memory_bytes();
  }

  /// Cumulative heavy-set churn (sketch mode; zeros in exact mode, where
  /// every key is tracked exactly and nothing promotes or demotes). The
  /// churn-rate metric the adversarial benches gate on is
  /// (promotions + demotions) / (intervals · heavy_capacity).
  [[nodiscard]] std::uint64_t heavy_promotions() const;
  [[nodiscard]] std::uint64_t heavy_demotions() const;

  /// Interval boundary: closes the stats interval, checks the trigger and
  /// plans + installs a new assignment if needed. Returns the plan when a
  /// migration was decided, nullopt otherwise.
  std::optional<RebalancePlan> end_interval();

  /// Live assignment function evaluated by the upstream router.
  [[nodiscard]] const AssignmentFunction& assignment() const {
    return assignment_;
  }

  /// Adds one instance (scale-out), pinning current destinations.
  void add_instance();

  /// Degraded mode (fault tolerance): permanently removes an instance
  /// from the assignment. Its keys re-home deterministically onto the
  /// survivors and future plans never touch it. See
  /// AssignmentFunction::retire.
  void retire_instance(InstanceId id) { assignment_.retire(id); }

  /// The snapshot used for the most recent planning decision. Compact in
  /// sketch mode (heavy entries + cold residuals), dense in exact mode.
  [[nodiscard]] const PartitionSnapshot& last_snapshot() const {
    return last_snapshot_;
  }

  /// Imbalance max θ(d) measured at the most recent interval boundary.
  [[nodiscard]] double last_observed_theta() const {
    return last_observed_theta_;
  }

  [[nodiscard]] InstanceId num_instances() const {
    return assignment_.num_instances();
  }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Cumulative planning statistics.
  [[nodiscard]] std::size_t rebalance_count() const {
    return rebalance_count_;
  }
  [[nodiscard]] Micros total_generation_micros() const {
    return total_generation_micros_;
  }
  [[nodiscard]] Bytes total_migrated_bytes() const {
    return total_migrated_bytes_;
  }

  /// Running digest over every plan this controller decided, chained in
  /// decision order from plan_value_digest (wall-clock fields excluded).
  /// Two controllers that made identical rebalance decisions — same
  /// plans, same order — hold equal digests; the net-vs-threaded
  /// determinism test compares exactly this.
  [[nodiscard]] std::uint64_t plan_history_digest() const {
    return plan_digest_;
  }

  /// Boundary accounting fed by the engine after each interval: time
  /// spent absorbing worker statistics into the provider (merge) and
  /// time tuple ingestion was blocked at the boundary (stall — the
  /// number the asynchronous slab merge exists to shrink). Purely
  /// observability; skewless_sim surfaces the totals in its summary.
  void note_boundary(double merge_ms, double stall_ms) {
    total_merge_ms_ += merge_ms;
    total_stall_ms_ += stall_ms;
  }
  [[nodiscard]] double total_merge_ms() const { return total_merge_ms_; }
  [[nodiscard]] double total_stall_ms() const { return total_stall_ms_; }

 private:
  [[nodiscard]] PartitionSnapshot build_snapshot() const;

  AssignmentFunction assignment_;
  PlannerPtr planner_;
  ControllerConfig config_;
  std::unique_ptr<StatsProvider> stats_;
  PartitionSnapshot last_snapshot_;
  double last_observed_theta_ = 0.0;
  std::size_t rebalance_count_ = 0;
  std::uint64_t plan_digest_ = 0;
  Micros total_generation_micros_ = 0;
  Bytes total_migrated_bytes_ = 0;
  double total_merge_ms_ = 0.0;
  double total_stall_ms_ = 0.0;
};

}  // namespace skewless
