// Least-Load Fit Decreasing (Algorithm 1) and the shared phase helpers of
// the paper's three-phase rebalance workflow, plus the appendix's Simple
// algorithm (Algorithm 5) used for the theoretical baseline.
//
// All helpers operate over the snapshot's entry slots (the KeyId-typed
// values are slot indices; slot == key on a dense snapshot). Cold
// residual mass rides inside the WorkingAssignment/load vectors and is
// never a candidate — see core/snapshot.h.
#pragma once

#include <vector>

#include "core/criteria.h"
#include "core/plan.h"
#include "core/snapshot.h"
#include "core/working_assignment.h"

namespace skewless {

struct LlfdOutcome {
  /// False when some key could not be placed within Lmax even with
  /// exchanges, and had to fall back to the least-loaded instance.
  bool fully_placed = true;
  /// Keys placed (including re-placements of evicted keys).
  std::size_t placements = 0;
  /// Keys evicted by Adjust's exchangeable sets.
  std::size_t evictions = 0;
  /// True if the operation budget was exhausted (see PlannerConfig).
  bool budget_exhausted = false;
};

/// Phase II (Preparing): for every overloaded instance (L̂(d) > Lmax with
/// Lmax = (1 + θmax)·L̄), disassociates keys chosen by ψ until the
/// instance is no longer overloaded. Returns the candidate set C.
[[nodiscard]] std::vector<KeyId> prepare_candidates(WorkingAssignment& wa,
                                                    const Criterion& psi,
                                                    double theta_max);

/// Phase III (Assigning): the LLFD subroutine. Pops candidates in
/// descending c(k) order, assigns each to the least-loaded instance that
/// Adjust accepts, evicting exchangeable sets when needed. Candidates
/// evicted by Adjust re-enter the queue. `avg_load` is L̄ of the snapshot
/// (constant — total cost never changes during planning).
LlfdOutcome llfd_assign(WorkingAssignment& wa, std::vector<KeyId> candidates,
                        const Criterion& psi, double theta_max,
                        double op_budget_factor = 64.0);

/// Phase II + III + underload repair: the paper's balance constraint is
/// two-sided (θ(d) = |L(d) − L̄| / L̄ ≤ θmax), but trimming only the
/// instances above Lmax can leave an instance below (1 − θmax)·L̄ when
/// the freed mass is insufficient or lands elsewhere. After the initial
/// LLFD pass this helper runs a few bounded rounds that free additional
/// keys (by ψ, only keys fine-grained enough for the remaining deficit)
/// from above-average instances and re-place them least-load-first.
LlfdOutcome rebalance_two_sided(WorkingAssignment& wa, const Criterion& psi,
                                double theta_max,
                                double op_budget_factor = 64.0,
                                int max_refinement_rounds = 4);

/// Algorithm 5 (appendix): disassociate *all* keys, then first-fit
/// decreasing onto the least-loaded instance, no exchanges. Used by the
/// Theorem 1/4 analysis and as a test oracle.
[[nodiscard]] std::vector<InstanceId> simple_assign(
    const PartitionSnapshot& snap);

}  // namespace skewless
