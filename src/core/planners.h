// The paper's rebalance algorithms (Section III):
//
//  * MinTablePlanner — Algorithm 2: clean the whole routing table, then
//    rebalance with highest-cost-first LLFD. Minimizes N_A', pays with
//    migrations.
//  * MinMigPlanner — Algorithm 3: clean nothing, select by the migration
//    priority index γ = c^β / S. Minimizes migration bytes, cannot bound
//    the table.
//  * MixedPlanner — Algorithm 4: move back n smallest-state table entries,
//    then run the MinMig phases; iterate n upward until N_A' ≤ Amax.
//  * MixedBfPlanner — brute-force over every cleaning count n; picks the
//    feasible plan with minimal migration cost (the paper's MixedBF
//    baseline, deliberately expensive).
#pragma once

#include <cstddef>

#include "core/llfd.h"
#include "core/plan.h"

namespace skewless {

class MinTablePlanner final : public Planner {
 public:
  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "MinTable"; }
};

class MinMigPlanner final : public Planner {
 public:
  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "MinMig"; }
};

class MixedPlanner final : public Planner {
 public:
  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "Mixed"; }
};

class MixedBfPlanner final : public Planner {
 public:
  /// `max_trials` caps the number of n values evaluated (0 = every
  /// n ∈ [0, N_A], the paper's definition).
  explicit MixedBfPlanner(std::size_t max_trials = 0)
      : max_trials_(max_trials) {}

  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "MixedBF"; }

 private:
  std::size_t max_trials_;
};

/// Ablation planner: LLFD without the Adjust exchangeable-set repair —
/// demonstrates the "re-overloading" problem the paper motivates Adjust
/// with. Clean-everything + highest-cost-first, placements never evict.
class LlfdNoAdjustPlanner final : public Planner {
 public:
  [[nodiscard]] RebalancePlan plan(const PartitionSnapshot& snap,
                                   const PlannerConfig& config) override;
  [[nodiscard]] std::string name() const override { return "LLFD-NoAdjust"; }
};

/// Runs one (Phase I already applied) MinMig-style pass: Phase II with γ,
/// Phase III LLFD with γ. Shared by Mixed and MixedBF trials.
RebalancePlan run_gamma_phases(WorkingAssignment& wa,
                               const PartitionSnapshot& snap,
                               const PlannerConfig& config);

}  // namespace skewless
