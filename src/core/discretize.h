// Value discretization for the compact statistics representation
// (Section IV-B).
//
// Step 1 (HLHE, "half-linear-half-exponential"): with degree R = 2^r and
// maximum value X, generate m = r + floor(X/R) representatives
//   linear:      s·R, (s−1)·R, …, R          (s = floor(X/R))
//   exponential: R/2, R/4, …, 2, 1           (r values)
//
// Step 2 (greedy error cancellation): process values in non-increasing
// order; each value x with candidates y_{j-1} > x ≥ y_j picks the
// candidate that drives the accumulated deviation δ = Σ(x − φ(x)) toward
// zero, so sums over arbitrary subsets stay nearly exact (Theorem 3).
#pragma once

#include <vector>

#include "common/types.h"

namespace skewless {

class HlheDiscretizer {
 public:
  /// `r_degree` = r (so R = 2^r), `max_value` = the largest value that
  /// will be discretized. Values are assumed normalized so the smallest
  /// positive value is ≥ 1; zeros pass through unchanged.
  HlheDiscretizer(int r_degree, double max_value);

  /// Discretizes one value. Values MUST be fed in non-increasing order
  /// for the greedy deviation cancellation to work as designed (the
  /// builder sorts; this is checked).
  [[nodiscard]] double discretize(double x);

  /// Ablation: nearest-representative rounding with no error
  /// cancellation (the "simple piecewise constant function" of Fig. 6a).
  [[nodiscard]] double discretize_nearest(double x) const;

  /// Accumulated deviation δ so far (Theorem 3 says this stays ~0).
  [[nodiscard]] double accumulated_deviation() const { return deviation_; }

  [[nodiscard]] const std::vector<double>& representatives() const {
    return reps_;  // strictly decreasing
  }

  [[nodiscard]] double degree() const { return r_value_; }

  void reset();

 private:
  /// Index j of the largest representative ≤ x (reps_ is descending);
  /// returns 0 when x ≥ reps_[0].
  [[nodiscard]] std::size_t floor_index(double x) const;

  std::vector<double> reps_;
  double r_value_;     // R = 2^r
  double deviation_ = 0.0;
  double last_value_;  // monotonicity check
};

}  // namespace skewless
