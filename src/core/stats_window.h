// Per-key statistics collection over the sliding window of the last w
// intervals (Section II-A): frequency g_i(k), computation cost c_i(k),
// per-interval state growth s_i(k) and the windowed total S_i(k, w).
//
// The engine's load-reporting module feeds record(); the controller calls
// roll() at each interval boundary and reads the closed interval's values.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace skewless {

class StatsWindow {
 public:
  /// `num_keys` = |K| (dense domain), `window` = w ≥ 1.
  StatsWindow(std::size_t num_keys, int window);

  /// Accumulates one observation for the *current* (open) interval.
  void record(KeyId key, Cost cost, Bytes state_bytes,
              std::uint64_t frequency = 1);

  /// Closes the current interval: its values become "last interval"
  /// (c_{i-1}, g_{i-1}), enter the window sum, and the oldest interval
  /// falls out once more than w intervals are retained.
  void roll();

  /// c_{i-1}(k) — cost during the most recently closed interval.
  [[nodiscard]] const std::vector<Cost>& last_cost() const {
    return last_cost_;
  }

  /// g_{i-1}(k).
  [[nodiscard]] const std::vector<std::uint64_t>& last_frequency() const {
    return last_freq_;
  }

  /// S_{i-1}(k, w) — state bytes summed over the last w closed intervals.
  [[nodiscard]] const std::vector<Bytes>& windowed_state() const {
    return window_sum_;
  }

  /// Total windowed state over all keys (denominator of the paper's
  /// "migration cost %" metric).
  [[nodiscard]] Bytes total_windowed_state() const;

  [[nodiscard]] std::size_t num_keys() const { return cur_cost_.size(); }
  [[nodiscard]] int window() const { return window_; }
  [[nodiscard]] IntervalId closed_intervals() const { return closed_; }

  /// Grows the key domain (new keys appear with zero history).
  void resize_keys(std::size_t num_keys);

 private:
  int window_;
  IntervalId closed_ = 0;
  std::vector<Cost> cur_cost_;
  std::vector<Bytes> cur_state_;
  std::vector<std::uint64_t> cur_freq_;
  std::vector<Cost> last_cost_;
  std::vector<std::uint64_t> last_freq_;
  std::vector<Bytes> window_sum_;
  std::deque<std::vector<Bytes>> ring_;  // closed per-interval state bytes
};

}  // namespace skewless
