// Per-key statistics collection over the sliding window of the last w
// intervals (Section II-A): frequency g_i(k), computation cost c_i(k),
// per-interval state growth s_i(k) and the windowed total S_i(k, w).
//
// The engine's load-reporting module feeds record(); the controller calls
// roll() at each interval boundary and reads the closed interval's values.
//
// This is the *exact* StatsProvider: six dense O(|K|) vectors plus a
// w-deep ring. Perfect fidelity, O(|K|) memory. For million-key domains
// use SketchStatsWindow (sketch/sketch_stats_window.h) instead — the
// make_stats_provider factory below selects between them.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sketch/stats_provider.h"

namespace skewless {

class StatsWindow final : public StatsProvider {
 public:
  /// `num_keys` = |K| (dense domain), `window` = w ≥ 1.
  StatsWindow(std::size_t num_keys, int window);

  /// Accumulates one observation for the *current* (open) interval.
  /// Contract: `key < num_keys()` is a precondition (asserts). Grow the
  /// domain with resize_keys() first; auto-grow is deliberately not done
  /// here because it would hide workload-generator bugs — only the
  /// sketch provider (which allocates nothing per key) auto-grows.
  /// `dest` is ignored: the exact provider resolves per-instance loads
  /// from the dense per-key view, not from recorded destinations.
  void record(KeyId key, Cost cost, Bytes state_bytes,
              std::uint64_t frequency = 1,
              InstanceId dest = kNilInstance) override;

  /// Closes the current interval: its values become "last interval"
  /// (c_{i-1}, g_{i-1}), enter the window sum, and the oldest interval
  /// falls out once more than w intervals are retained.
  void roll() override;

  /// c_{i-1}(k) — cost during the most recently closed interval.
  [[nodiscard]] const std::vector<Cost>& last_cost() const {
    return last_cost_;
  }

  /// g_{i-1}(k).
  [[nodiscard]] const std::vector<std::uint64_t>& last_frequency() const {
    return last_freq_;
  }

  /// S_{i-1}(k, w) — state bytes summed over the last w closed intervals.
  [[nodiscard]] const std::vector<Bytes>& windowed_state() const {
    return window_sum_;
  }

  // StatsProvider per-key accessors (exact).
  [[nodiscard]] Cost last_cost_of(KeyId key) const override;
  [[nodiscard]] std::uint64_t last_frequency_of(KeyId key) const override;
  [[nodiscard]] Bytes windowed_state_of(KeyId key) const override;

  /// Total windowed state over all keys (denominator of the paper's
  /// "migration cost %" metric).
  [[nodiscard]] Bytes total_windowed_state() const override;

  /// Dense view: straight copies of last_cost() / windowed_state().
  void synthesize_dense(std::vector<Cost>& cost,
                        std::vector<Bytes>& state) const override;

  [[nodiscard]] std::size_t num_keys() const override {
    return cur_cost_.size();
  }
  [[nodiscard]] int window() const override { return window_; }
  [[nodiscard]] IntervalId closed_intervals() const override {
    return closed_;
  }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] StatsMode mode() const override { return StatsMode::kExact; }

  /// Grows the key domain (new keys appear with zero history). Shrinking
  /// is a precondition violation: keys never leave the dense domain.
  void resize_keys(std::size_t num_keys) override;

 private:
  int window_;
  IntervalId closed_ = 0;
  std::vector<Cost> cur_cost_;
  std::vector<Bytes> cur_state_;
  std::vector<std::uint64_t> cur_freq_;
  std::vector<Cost> last_cost_;
  std::vector<std::uint64_t> last_freq_;
  std::vector<Bytes> window_sum_;
  std::deque<std::vector<Bytes>> ring_;  // closed per-interval state bytes
};

/// Builds the statistics provider selected by `mode`. In sketch mode
/// `shards >= 1` selects the sharded provider (ShardedSketchStats, S
/// shard-local windows absorbing concurrently); 0 keeps the legacy
/// single SketchStatsWindow. Exact mode ignores `shards`.
[[nodiscard]] std::unique_ptr<StatsProvider> make_stats_provider(
    StatsMode mode, std::size_t num_keys, int window,
    const SketchStatsConfig& sketch = {}, std::size_t shards = 0);

}  // namespace skewless
