// Mutable scratch assignment used by the planning algorithms.
//
// Operates over the snapshot's ENTRY SLOTS (the KeyId-typed parameters
// below are slot indices into the snapshot; for a dense snapshot slot ==
// key). Tracks, per entry, its (possibly nil) destination and, per
// instance, its estimated load L̂(d) and the set of entries currently
// associated with it — the structure LLFD's Adjust needs to search for
// exchangeable sets. Cold residual mass is seeded into the per-instance
// loads at construction and never moves (untracked keys stay pinned), so
// every load the planner reads stays exact. All mutations are O(1)
// (swap-remove bucket membership).
#pragma once

#include <vector>

#include "common/types.h"
#include "core/snapshot.h"

namespace skewless {

class WorkingAssignment {
 public:
  /// Starts from the snapshot's current assignment F.
  explicit WorkingAssignment(const PartitionSnapshot& snap);

  /// Destination of a key; kNilInstance while disassociated.
  [[nodiscard]] InstanceId dest(KeyId key) const {
    return dest_[static_cast<std::size_t>(key)];
  }

  /// Estimated load L̂(d).
  [[nodiscard]] Cost load(InstanceId d) const {
    return loads_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] const std::vector<Cost>& loads() const { return loads_; }
  [[nodiscard]] InstanceId num_instances() const {
    return static_cast<InstanceId>(loads_.size());
  }

  /// Keys currently associated with instance d (unspecified order).
  [[nodiscard]] const std::vector<KeyId>& keys_of(InstanceId d) const {
    return buckets_[static_cast<std::size_t>(d)];
  }

  /// Removes a key from its instance (Phase II "disassociate"); the key
  /// becomes nil-assigned. No-op if already nil.
  void disassociate(KeyId key);

  /// Assigns a nil key to an instance.
  void assign(KeyId key, InstanceId d);

  /// Moves a key back to its hash destination (Phase I "cleaning");
  /// works whether the key is currently assigned or nil.
  void move_back(KeyId key);

  /// Instances sorted by ascending estimated load (ties by id).
  [[nodiscard]] std::vector<InstanceId> instances_by_load_ascending() const;

  /// Extracts the dense assignment; every key must be assigned.
  [[nodiscard]] std::vector<InstanceId> to_assignment() const;

  [[nodiscard]] const PartitionSnapshot& snapshot() const { return *snap_; }

 private:
  void bucket_insert(KeyId key, InstanceId d);
  void bucket_remove(KeyId key, InstanceId d);

  const PartitionSnapshot* snap_;
  std::vector<InstanceId> dest_;
  std::vector<Cost> loads_;
  std::vector<std::vector<KeyId>> buckets_;
  std::vector<std::int64_t> pos_in_bucket_;  // index of key in its bucket
};

}  // namespace skewless
