// ShardedSketchStats — the sharded controller's statistics tier: S
// shard-local SketchStatsWindows (shard = stable hash of the KeyId, the
// same shard_of_key every layer uses) behind the StatsProvider seam, so
// the Controller, the planners and both engines see ONE provider while
// the boundary merge fans out across shards concurrently.
//
// Concurrency model: a sealed epoch is the shard-boundary unit. The
// engines absorb workers in worker-index order (unchanged), and each
// absorb_slab call hands section s of that worker's ShardedWorkerSlab to
// shard window s on a small persistent thread pool — shard windows are
// disjoint (a key's whole history lives in exactly one shard), so the
// only ordering that matters for determinism is the per-shard absorb
// order, which the sequential worker loop fixes. roll() and the dense /
// compact synthesis fan out the same way.
//
// Global tier: synthesize_compact runs the S per-shard compact views
// concurrently, then concatenates the heavy entries (re-sorted by key —
// shards hold disjoint keys, so this is a permutation, not a merge) and
// element-wise sums the per-instance cold residual vectors in shard
// order 0..S-1 (fixed FP summation order). O(S·(k/S + N_D)) = O(k + S·N_D)
// work, never O(|K|). The concatenated snapshot feeds the existing
// planner stack untouched.
//
// S = 1 is an explicit identity: every path short-circuits to the single
// window inline (no pool threads exist), so a shards=1 run is
// byte-identical — plan-history digest, θ bit patterns — to the
// pre-sharding single controller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sketch/sharded_worker_slab.h"
#include "sketch/sketch_stats_window.h"
#include "sketch/slab_sink.h"
#include "sketch/stats_provider.h"

namespace skewless {

/// A small persistent fork-join pool: run(n, fn) executes fn(0..n-1)
/// across the pool threads AND the calling thread, returning when all n
/// tasks finished. Persistent because the sharded boundary merge runs at
/// interval cadence — spawning threads per epoch would cost more than
/// the parallel absorb saves. With zero workers (the S = 1 case) run()
/// is a plain inline loop.
class ShardPool {
 public:
  explicit ShardPool(std::size_t workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop();
  void work();

  std::mutex mu_;
  std::condition_variable cv_;       // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for completion
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<const std::function<void(std::size_t)>*> fn_{nullptr};
  std::atomic<std::size_t> tasks_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> done_{0};
  std::vector<std::thread> threads_;
};

class ShardedSketchStats final : public StatsProvider, public SketchSlabSink {
 public:
  /// `config` is the GLOBAL sketch configuration; each shard window gets
  /// shard_config(config, shards) — ε and heavy_capacity scaled by S,
  /// seed and behavior knobs unchanged — matching the per-shard sections
  /// ShardedWorkerSlab builds from the same derivation.
  ShardedSketchStats(std::size_t num_keys, int window,
                     const SketchStatsConfig& config, std::size_t shards);
  ~ShardedSketchStats() override;

  // StatsProvider.
  void record(KeyId key, Cost cost, Bytes state_bytes,
              std::uint64_t frequency = 1,
              InstanceId dest = kNilInstance) override;
  void roll() override;
  [[nodiscard]] Cost last_cost_of(KeyId key) const override;
  [[nodiscard]] std::uint64_t last_frequency_of(KeyId key) const override;
  [[nodiscard]] Bytes windowed_state_of(KeyId key) const override;
  [[nodiscard]] Bytes total_windowed_state() const override;
  void synthesize_dense(std::vector<Cost>& cost,
                        std::vector<Bytes>& state) const override;
  [[nodiscard]] std::size_t num_keys() const override { return num_keys_; }
  void resize_keys(std::size_t num_keys) override;
  [[nodiscard]] int window() const override;
  [[nodiscard]] IntervalId closed_intervals() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] StatsMode mode() const override { return StatsMode::kSketch; }

  // SketchSlabSink.
  [[nodiscard]] const SketchStatsConfig& slab_config() const override {
    return config_;
  }
  [[nodiscard]] std::size_t slab_shards() const override {
    return shards_.size();
  }
  void absorb_slab(const ShardedWorkerSlab& slab,
                   InstanceId dest = kNilInstance) override;
  [[nodiscard]] std::vector<KeyId> heavy_keys() const override;
  void synthesize_compact(InstanceId num_instances, std::vector<KeyId>& keys,
                          std::vector<Cost>& cost, std::vector<Bytes>& state,
                          std::vector<Cost>& cold_cost,
                          std::vector<Bytes>& cold_state) const override;
  [[nodiscard]] std::uint64_t total_promotions() const override;
  [[nodiscard]] std::uint64_t total_demotions() const override;

  /// Shard window s (tests; shards hold disjoint key sets).
  [[nodiscard]] const SketchStatsWindow& shard(std::size_t s) const {
    return *shards_[s];
  }

 private:
  [[nodiscard]] std::size_t shard_of(KeyId key) const {
    return shard_of_key(key, shards_.size());
  }

  SketchStatsConfig config_;
  std::size_t num_keys_ = 0;
  std::vector<std::unique_ptr<SketchStatsWindow>> shards_;
  /// mutable: synthesis is logically const but fans out on the pool.
  mutable ShardPool pool_;
};

}  // namespace skewless
