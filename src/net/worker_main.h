// Entry point of one forked net worker process.
//
// A worker owns one StateStore and one WorkerSketchSlab and speaks the
// frame protocol over two channels inherited from the driver:
//   * data — kBatch only (the channel that backpressures);
//   * ctrl — everything else, always drained BEFORE the next data frame,
//     so control never waits behind queued tuples.
//
// Cross-channel epoch ordering is re-established by content, not by
// arrival: the kSeal payload says how many batches the epoch carried,
// and the worker defers sealing (serializing + shipping its slab as the
// boundary summary) until it has processed exactly that many.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "engine/operator.h"
#include "net/fault_injector.h"
#include "sketch/stats_provider.h"

namespace skewless {

struct NetWorkerOptions {
  std::uint32_t worker_id = 0;
  std::uint32_t num_workers = 0;
  /// Deterministic fault schedule (crosses the fork by value). Worker-side
  /// events (wedge/garble/drop) fire on the matching epoch's kSeal.
  FaultPlan fault = {};
  /// 0 for the first spawn, incremented by the driver on every respawn;
  /// one-shot fault events arm only for incarnation 0.
  std::uint32_t incarnation = 0;
  /// When true the worker ships a post-seal checkpoint frame and emits
  /// periodic epoch-progress heartbeats on ctrl.
  bool recovery = false;
  /// Heartbeat period (only meaningful with recovery on). Must be well
  /// under the driver's ctrl receive deadline.
  int heartbeat_interval_ms = 250;
  /// Must equal the driver-side sink's GLOBAL config: the slab
  /// replicates the shard windows' Count-Min geometry (via the shared
  /// shard_config derivation), and the summary decode on the driver
  /// rejects a mismatch.
  SketchStatsConfig sketch = {};
  /// Key-domain shard count of the driver-side sink (>= 1): the worker
  /// sections its slab identically so section s lands in shard s.
  std::uint32_t shards = 1;
  /// The driver's engine epoch (set before fork), so worker-side latency
  /// accounting shares the tuples' emit_micros time base.
  Micros engine_epoch_us = 0;
};

/// Runs the worker protocol until a kStop frame (returns kWorkerExitOk)
/// or a fatal error (returns one of the kWorkerExit* codes from
/// net/recovery.h after logging to stderr, so the driver's reap log can
/// tell a protocol error from a corrupt frame from a channel failure).
/// Takes ownership of both fds.
[[nodiscard]] int run_net_worker(int data_fd, int ctrl_fd,
                                 const NetWorkerOptions& options,
                                 const OperatorLogic& logic);

}  // namespace skewless
