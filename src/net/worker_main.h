// Entry point of one forked net worker process.
//
// A worker owns one StateStore and one WorkerSketchSlab and speaks the
// frame protocol over two channels inherited from the driver:
//   * data — kBatch only (the channel that backpressures);
//   * ctrl — everything else, always drained BEFORE the next data frame,
//     so control never waits behind queued tuples.
//
// Cross-channel epoch ordering is re-established by content, not by
// arrival: the kSeal payload says how many batches the epoch carried,
// and the worker defers sealing (serializing + shipping its slab as the
// boundary summary) until it has processed exactly that many.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "engine/operator.h"
#include "sketch/stats_provider.h"

namespace skewless {

struct NetWorkerOptions {
  std::uint32_t worker_id = 0;
  std::uint32_t num_workers = 0;
  /// Must equal the driver-side sink's GLOBAL config: the slab
  /// replicates the shard windows' Count-Min geometry (via the shared
  /// shard_config derivation), and the summary decode on the driver
  /// rejects a mismatch.
  SketchStatsConfig sketch = {};
  /// Key-domain shard count of the driver-side sink (>= 1): the worker
  /// sections its slab identically so section s lands in shard s.
  std::uint32_t shards = 1;
  /// The driver's engine epoch (set before fork), so worker-side latency
  /// accounting shares the tuples' emit_micros time base.
  Micros engine_epoch_us = 0;
};

/// Runs the worker protocol until a kStop frame (returns 0) or a fatal
/// channel/protocol error (returns nonzero after logging to stderr).
/// Takes ownership of both fds.
[[nodiscard]] int run_net_worker(int data_fd, int ctrl_fd,
                                 const NetWorkerOptions& options,
                                 const OperatorLogic& logic);

}  // namespace skewless
