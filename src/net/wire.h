// Payload encodings for every frame type (net/frame.h). Encoders write
// into a reusable ByteWriter; decoders take a CHECKED ByteReader and
// return false (reader error flag set) on truncation, impossible counts
// or out-of-range values — the connection owner then drops the peer.
//
// The boundary-summary payload (kSummary) is WorkerSketchSlab's own
// serialize()/deserialize_from() and lives with the slab; everything
// else is here.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/types.h"
#include "core/plan.h"
#include "engine/tuple.h"

namespace skewless {

// --- kBatch ---------------------------------------------------------------
void encode_tuple_batch(ByteWriter& out, const std::vector<Tuple>& tuples);
[[nodiscard]] bool decode_tuple_batch(ByteReader& in,
                                      std::vector<Tuple>& tuples);

// --- kHello ---------------------------------------------------------------
struct HelloPayload {
  std::uint32_t worker_id = 0;
  std::uint32_t num_workers = 0;
};
void encode_hello(ByteWriter& out, const HelloPayload& hello);
[[nodiscard]] bool decode_hello(ByteReader& in, HelloPayload& hello);

// --- kSeal ----------------------------------------------------------------
/// The seal rides the CONTROL channel while the epoch's batches ride the
/// data channel, so cross-channel ordering is re-established by content:
/// `batches` is how many kBatch frames the driver sent this worker this
/// epoch, and the worker defers the seal until it has processed exactly
/// that many.
struct SealPayload {
  std::uint64_t batches = 0;
};
void encode_seal(ByteWriter& out, const SealPayload& seal);
[[nodiscard]] bool decode_seal(ByteReader& in, SealPayload& seal);

// --- kHeavySet / kExtract (key lists) ------------------------------------
void encode_key_list(ByteWriter& out, const std::vector<KeyId>& keys);
[[nodiscard]] bool decode_key_list(ByteReader& in, std::vector<KeyId>& keys);

// --- kMigrated / kInstall -------------------------------------------------
/// One migrated key: the serialized KeyState blob, still opaque bytes.
/// The driver forwards blobs from kMigrated straight into kInstall
/// without ever materializing a state object — the controller routes
/// migrations, it does not process them.
struct WireKeyState {
  KeyId key = 0;
  std::vector<std::uint8_t> blob;
};
void encode_key_states(ByteWriter& out, const std::vector<WireKeyState>& states);
[[nodiscard]] bool decode_key_states(ByteReader& in,
                                     std::vector<WireKeyState>& states);

// --- kExpire --------------------------------------------------------------
void encode_expire(ByteWriter& out, Micros watermark);
[[nodiscard]] bool decode_expire(ByteReader& in, Micros& watermark);

// --- kPlan ----------------------------------------------------------------
/// Sparse plan broadcast: sequence number plus the moves (the O(N_D)
/// payload the compact planning work bounded). Workers apply nothing
/// from it today — migration arrives as explicit Extract/Install — but
/// acknowledging it (kPlanAck echoes `seq`) is the control-latency probe
/// the bench gates on: a plan must reach a worker and return while the
/// data channel is saturated.
struct PlanPayload {
  std::uint64_t seq = 0;
  std::vector<KeyMove> moves;
};
void encode_plan(ByteWriter& out, const PlanPayload& plan);
[[nodiscard]] bool decode_plan(ByteReader& in, PlanPayload& plan);

// --- kPlanAck / kInstallAck ----------------------------------------------
struct AckPayload {
  std::uint64_t seq = 0;
};
void encode_ack(ByteWriter& out, const AckPayload& ack);
[[nodiscard]] bool decode_ack(ByteReader& in, AckPayload& ack);

// --- kCheckpoint / kRestore -----------------------------------------------
/// Post-seal worker checkpoint: every counter and state blob a respawned
/// worker needs to resume the sealed epoch's successor deterministically.
/// kRestore reuses the same encoding driver -> worker (the driver may
/// first subtract keys migrated away since the checkpoint and add keys
/// installed since — the "effective" checkpoint). `local_buckets` is the
/// worker's per-batch scratch-map bucket count: fold order into the slab
/// depends on that map's rehash history, so the restore re-establishes it
/// before replaying (the byte-identity contract under recovery).
struct CheckpointPayload {
  std::uint64_t epoch = 0;
  std::uint64_t processed = 0;
  std::uint64_t outputs = 0;
  std::uint64_t local_buckets = 0;
  std::uint64_t state_checksum = 0;
  std::vector<WireKeyState> states;
};
void encode_checkpoint(ByteWriter& out, const CheckpointPayload& cp);
[[nodiscard]] bool decode_checkpoint(ByteReader& in, CheckpointPayload& cp);

// --- kHeartbeat -----------------------------------------------------------
/// Epoch-progress liveness beat: how many batches of the open epoch the
/// worker has processed. Any heartbeat resets the driver's per-worker
/// receive deadline, so a slow-but-alive worker is never mistaken for a
/// wedged one.
struct HeartbeatPayload {
  std::uint64_t epoch_batches = 0;
};
void encode_heartbeat(ByteWriter& out, const HeartbeatPayload& hb);
[[nodiscard]] bool decode_heartbeat(ByteReader& in, HeartbeatPayload& hb);

// --- kFin -----------------------------------------------------------------
struct FinPayload {
  std::uint64_t state_checksum = 0;
  std::uint64_t state_entries = 0;
  std::uint64_t processed = 0;
  std::uint64_t outputs = 0;
};
void encode_fin(ByteWriter& out, const FinPayload& fin);
[[nodiscard]] bool decode_fin(ByteReader& in, FinPayload& fin);

}  // namespace skewless
