#include "net/net_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/assert.h"
#include "common/clock.h"
#include "common/log.h"
#include "common/rng.h"
#include "net/worker_main.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {
namespace {

Micros steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Realized imbalance max|c_d - avg|/avg (same as the threaded engine).
double max_theta_of(const std::vector<double>& worker_cost) {
  double total = 0.0;
  for (const double c : worker_cost) total += c;
  if (total <= 0.0) return 0.0;
  const double avg = total / static_cast<double>(worker_cost.size());
  double worst = 0.0;
  for (const double c : worker_cost) {
    worst = std::max(worst, std::abs(c - avg) / avg);
  }
  return worst;
}

}  // namespace

NetEngine::NetEngine(NetConfig config, std::shared_ptr<OperatorLogic> logic,
                     std::unique_ptr<Controller> controller)
    : config_(config),
      logic_(std::move(logic)),
      controller_(std::move(controller)) {
  SKW_EXPECTS(logic_ != nullptr);
  SKW_EXPECTS(controller_ != nullptr);
  sketch_sink_ = controller_->slab_sink();
  // The boundary summary IS the serialized sketch slab; there is no
  // exact-mode wire format (it would be O(|K|) per worker per interval).
  SKW_EXPECTS(sketch_sink_ != nullptr);
  num_workers_ = controller_->num_instances();
  SKW_EXPECTS(num_workers_ > 0);
  engine_epoch_us_ = steady_now_us();
  const auto n = static_cast<std::size_t>(num_workers_);
  pending_batches_.resize(n);
  checkpoints_.assign(n, CheckpointRing(config_.checkpoint_ring_capacity));
  replay_.assign(n, ReplayBuffer(config_.replay_max_bytes));
  pending_installs_.resize(n);
  migrated_away_.resize(n);
  owed_install_acks_.assign(n, 0);
  fault_fired_.assign(config_.fault.events.size(), false);
  scratch_slab_ = std::make_unique<ShardedWorkerSlab>(
      sketch_sink_->slab_config(), sketch_sink_->slab_shards());
  spawn_workers();
  if (ok() && !handshake()) {
    SKW_ASSERT(!ok());  // handshake failure went through fail()
  }
}

NetEngine::~NetEngine() { shutdown(); }

bool NetEngine::spawn_one(std::size_t w, std::string& err) {
  int data_fds[2];
  int ctrl_fds[2];
  if (!make_socket_pair(data_fds, err)) return false;
  if (!make_socket_pair(ctrl_fds, err)) {
    ::close(data_fds[0]);
    ::close(data_fds[1]);
    return false;
  }
  if (config_.data_sndbuf_bytes > 0) {
    // Best-effort: the kernel clamps unprivileged requests to wmem_max.
    const int v = config_.data_sndbuf_bytes;
    (void)::setsockopt(data_fds[0], SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(data_fds[0]);
    ::close(data_fds[1]);
    ::close(ctrl_fds[0]);
    ::close(ctrl_fds[1]);
    err = "fork failed";
    return false;
  }
  if (pid == 0) {
    // Child: keep only this worker's child-side fds. The parent-side fds
    // of every live worker (close() is a no-op on fd -1) were inherited
    // by the fork and must go — a held write end would keep a dead
    // driver's sockets half-open.
    for (Worker& p : workers_) {
      p.data.close();
      p.ctrl.close();
    }
    ::close(data_fds[0]);
    ::close(ctrl_fds[0]);
    NetWorkerOptions options;
    options.worker_id = static_cast<std::uint32_t>(w);
    options.num_workers = static_cast<std::uint32_t>(num_workers_);
    options.fault = config_.fault;
    options.incarnation = workers_[w].incarnation;
    options.recovery = config_.recovery_enabled;
    options.heartbeat_interval_ms = config_.heartbeat_interval_ms;
    options.sketch = sketch_sink_->slab_config();
    options.shards = static_cast<std::uint32_t>(sketch_sink_->slab_shards());
    options.engine_epoch_us = engine_epoch_us_;
    const int rc = run_net_worker(data_fds[1], ctrl_fds[1], options, *logic_);
    // _Exit: the child shares the parent's heap image; running static
    // destructors or flushing duplicated stdio here would corrupt the
    // driver's observable behavior.
    std::_Exit(rc);
  }
  ::close(data_fds[1]);
  ::close(ctrl_fds[1]);
  workers_[w].data = FrameChannel(data_fds[0]);
  workers_[w].ctrl = FrameChannel(ctrl_fds[0]);
  workers_[w].pid = pid;
  if (config_.recovery_enabled) {
    // Crash detection needs every channel operation to be bounded: a
    // send into a dead worker's full buffer must fail, not hang.
    workers_[w].data.set_io_timeout_ms(config_.ctrl_timeout_ms);
    workers_[w].ctrl.set_io_timeout_ms(config_.ctrl_timeout_ms);
  }
  return true;
}

void NetEngine::spawn_workers() {
  const auto n = static_cast<std::size_t>(num_workers_);
  workers_.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    std::string err;
    if (!spawn_one(w, err)) {
      fail("spawn: " + err);
      return;
    }
  }
}

bool NetEngine::handshake() {
  // Hello round-trip on every ctrl channel: proves each worker is alive
  // and speaks this build's wire version before any data flows. A
  // version-mismatched peer is rejected by the frame decoder on either
  // side with a clear error.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    HelloPayload hello;
    hello.worker_id = static_cast<std::uint32_t>(w);
    hello.num_workers = static_cast<std::uint32_t>(num_workers_);
    frame_scratch_.clear();
    encode_hello(frame_scratch_, hello);
    if (!workers_[w].ctrl.send(FrameType::kHello, 0, frame_scratch_)) {
      fail("handshake send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return false;
    }
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    FrameHeader header;
    if (!recv_ctrl(w, FrameType::kHello, header, recv_scratch_)) return false;
    ByteReader in(recv_scratch_, ByteReader::Untrusted{});
    HelloPayload echo;
    if (!decode_hello(in, echo) ||
        echo.worker_id != static_cast<std::uint32_t>(w)) {
      fail("handshake: bad Hello echo from worker " + std::to_string(w));
      return false;
    }
  }
  return true;
}

bool NetEngine::handshake_one(std::size_t w) {
  HelloPayload hello;
  hello.worker_id = static_cast<std::uint32_t>(w);
  hello.num_workers = static_cast<std::uint32_t>(num_workers_);
  frame_scratch_.clear();
  encode_hello(frame_scratch_, hello);
  if (!workers_[w].ctrl.send(FrameType::kHello, 0, frame_scratch_)) {
    return false;
  }
  FrameHeader header;
  if (recv_ctrl_any(w, header, recv_scratch_) != CtrlRecv::kFrame) {
    return false;
  }
  if (header.type != FrameType::kHello) return false;
  ByteReader in(recv_scratch_, ByteReader::Untrusted{});
  HelloPayload echo;
  return decode_hello(in, echo) &&
         echo.worker_id == static_cast<std::uint32_t>(w);
}

void NetEngine::fail(const std::string& what) {
  if (!error_.empty()) return;  // keep the first cause
  error_ = what;
  SKW_LOG_INFO("net engine failure: %s", error_.c_str());
  for (Worker& worker : workers_) {
    worker.data.close();
    worker.ctrl.close();
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGKILL);
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  }
}

void NetEngine::reap_worker(std::size_t w, const char* why) {
  Worker& wk = workers_[w];
  wire_retired_data_ += wk.data.bytes_sent() + wk.data.bytes_received();
  wire_retired_ctrl_ += wk.ctrl.bytes_sent() + wk.ctrl.bytes_received();
  wk.data.close();
  wk.ctrl.close();
  if (wk.pid > 0) {
    ::kill(wk.pid, SIGKILL);
    int status = 0;
    ::waitpid(wk.pid, &status, 0);
    SKW_LOG_INFO("net worker %zu reaped (%s): %s", w, why,
                 describe_worker_exit(status).c_str());
    wk.pid = -1;
  }
}

bool NetEngine::recover_worker(std::size_t w, const std::string& why) {
  if (!ok()) return false;
  if (!config_.recovery_enabled) {
    fail("worker " + std::to_string(w) + ": " + why);
    return false;
  }
  SKW_LOG_INFO("net worker %zu failed (%s): recovering", w, why.c_str());
  WallTimer timer;
  reap_worker(w, why.c_str());
  if (replay_[w].overflowed()) {
    // The open epoch outgrew the replay budget: there is a hole in what
    // we could re-send, and replaying a hole would silently drop mass.
    fail("worker " + std::to_string(w) +
         ": crash with overflowed replay buffer (" + why + ")");
    return false;
  }
  Worker& wk = workers_[w];
  while (true) {
    if (wk.recover_attempts >= config_.respawn_max_attempts) {
      degrade_worker(w);
      return false;
    }
    const int backoff_ms = config_.respawn_backoff_ms << wk.recover_attempts;
    ++wk.recover_attempts;
    if (backoff_ms > 0) {
      ::usleep(static_cast<useconds_t>(backoff_ms) * 1000);
    }
    ++wk.incarnation;  // one-shot fault events stay disarmed
    std::string err;
    if (!spawn_one(w, err)) continue;
    if (!handshake_one(w)) {
      reap_worker(w, "respawn handshake failed");
      continue;
    }
    if (!restore_worker(w)) {
      reap_worker(w, "checkpoint restore failed");
      continue;
    }
    owed_install_acks_[w] = 0;  // the restore re-delivered any pendings
    ++recoveries_;
    total_recovery_ms_ += timer.elapsed_millis();
    SKW_LOG_INFO("net worker %zu recovered (incarnation %u, attempt %d)", w,
                 wk.incarnation, wk.recover_attempts);
    return true;
  }
}

CheckpointPayload NetEngine::effective_checkpoint(std::size_t w) const {
  CheckpointPayload eff;
  if (const CheckpointPayload* cp = checkpoints_[w].latest()) eff = *cp;
  if (!migrated_away_[w].empty()) {
    std::erase_if(eff.states, [&](const WireKeyState& s) {
      return migrated_away_[w].count(s.key) > 0;
    });
  }
  for (const PendingInstall& p : pending_installs_[w]) {
    eff.states.push_back(p.state);
  }
  return eff;
}

bool NetEngine::restore_worker(std::size_t w) {
  Worker& wk = workers_[w];
  const CheckpointPayload eff = effective_checkpoint(w);
  frame_scratch_.clear();
  encode_checkpoint(frame_scratch_, eff);
  if (!wk.ctrl.send(FrameType::kRestore, eff.epoch, frame_scratch_)) {
    return false;
  }
  FrameHeader header;
  if (recv_ctrl_any(w, header, recv_scratch_) != CtrlRecv::kFrame) {
    return false;
  }
  if (header.type != FrameType::kRestoreAck) return false;
  // Re-deliver the control context the checkpoint predates: the expiry
  // watermark and heavy set in force when the open epoch began. Expire
  // is idempotent and the checkpointed blobs predate any expiry the
  // original worker applied after its seal, so re-applying it restores
  // the original post-install window content.
  if (expire_sent_) {
    frame_scratch_.clear();
    encode_expire(frame_scratch_, last_expire_watermark_);
    if (!wk.ctrl.send(FrameType::kExpire, 0, frame_scratch_)) return false;
  }
  if (heavy_broadcast_done_) {
    frame_scratch_.clear();
    encode_key_list(frame_scratch_, last_heavy_keys_);
    if (!wk.ctrl.send(FrameType::kHeavySet, 0, frame_scratch_)) return false;
  }
  // Verbatim replay of the open epoch's recorded batches: the same bytes
  // in the same order, so the restored worker's fold — local-map rehash
  // trajectory included — is bit-identical to the lost worker's.
  for (const ReplayBuffer::RecordedBatch& batch : replay_[w].batches()) {
    if (!wk.data.send(FrameType::kBatch, batch.epoch, batch.payload.data(),
                      batch.payload.size())) {
      return false;
    }
  }
  if (wk.seal_sent) {
    // The crash happened between the seal broadcast and this worker's
    // summary: re-arm the seal so the replayed epoch closes again.
    frame_scratch_.clear();
    encode_seal(frame_scratch_, SealPayload{wk.batches_sent});
    if (!wk.ctrl.send(FrameType::kSeal,
                      static_cast<std::uint64_t>(interval_) + 1,
                      frame_scratch_)) {
      return false;
    }
  }
  return true;
}

void NetEngine::degrade_worker(std::size_t w) {
  Worker& wk = workers_[w];
  wk.dead = true;
  wk.seal_sent = false;
  wk.batches_sent = 0;
  degraded_ = true;
  const std::size_t live = live_workers();
  if (live == 0) {
    fail("worker " + std::to_string(w) +
         ": retry budget exhausted with no surviving workers");
    return;
  }
  SKW_LOG_INFO(
      "net worker %zu retired after %d failed recoveries; degrading onto "
      "%zu survivors",
      w, wk.recover_attempts, live);
  CheckpointPayload eff = effective_checkpoint(w);
  // No Fin will ever come from this worker: fold the outputs its last
  // checkpoint vouches for here. The open epoch's tuples are re-routed
  // below and re-counted when the survivors seal them.
  total_outputs_ += eff.outputs;
  if (stopped_) {
    // Shutdown-time degrade: there is no next interval to re-home into,
    // so the checkpointed states fold straight into the final tallies
    // (any post-checkpoint tuples are unsealed trailing work, which the
    // interval reports never counted — same as a healthy shutdown).
    for (const WireKeyState& wire : eff.states) {
      ByteReader blob(wire.blob, ByteReader::Untrusted{});
      std::unique_ptr<KeyState> state = logic_->deserialize_state(blob);
      if (state == nullptr || !blob.ok() || !blob.exhausted()) continue;
      final_checksum_ +=
          mix64(static_cast<std::uint64_t>(wire.key) ^ state->checksum());
      ++final_state_entries_;
    }
    replay_[w].clear();
    checkpoints_[w].clear();
    pending_installs_[w].clear();
    migrated_away_[w].clear();
    pending_batches_[w].clear();
    return;
  }
  // Retire the instance from the assignment: F(k) never returns it
  // again, its keys re-home deterministically onto the survivors, and
  // future plans skip it.
  controller_->retire_instance(static_cast<InstanceId>(w));
  const auto n = workers_.size();
  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  // Re-home the checkpointed states through the normal install path,
  // grouped by the post-retirement assignment. Barrier-free: the ack is
  // consumed transparently later (owed_install_acks_), and the worker's
  // recovery-mode install tolerates a racing fresh state.
  std::vector<std::vector<WireKeyState>> by_dest(n);
  for (WireKeyState& wire : eff.states) {
    const auto d =
        static_cast<std::size_t>(controller_->assignment()(wire.key));
    by_dest[d].push_back(std::move(wire));
  }
  for (std::size_t d = 0; d < n; ++d) {
    if (by_dest[d].empty()) continue;
    if (workers_[d].dead) continue;  // can't happen post-resolve; belt
    for (const WireKeyState& s : by_dest[d]) {
      pending_installs_[d].push_back({epoch, s});
    }
    frame_scratch_.clear();
    encode_key_states(frame_scratch_, by_dest[d]);
    if (!workers_[d].ctrl.send(FrameType::kInstall, epoch, frame_scratch_)) {
      // The pending record above makes the restore deliver these states,
      // so a failed (or degraded) destination loses nothing.
      if (!recover_worker(d, "degrade re-home Install send: " +
                                 workers_[d].ctrl.last_error())) {
        if (!ok()) return;
      }
      continue;
    }
    ++owed_install_acks_[d];
  }
  // Re-route the open epoch's recorded batches plus the unflushed batch
  // onto the survivors. They are NOT flushed here: they ride the next
  // interval and are counted exactly once when it seals.
  std::vector<Tuple> tuples;
  for (const ReplayBuffer::RecordedBatch& batch : replay_[w].batches()) {
    ByteReader in(batch.payload, ByteReader::Untrusted{});
    tuples.clear();
    if (!decode_tuple_batch(in, tuples)) continue;  // our own bytes
    for (const Tuple& t : tuples) {
      pending_batches_[static_cast<std::size_t>(
                           controller_->assignment()(t.key))]
          .push_back(t);
    }
  }
  for (const Tuple& t : pending_batches_[w]) {
    pending_batches_[static_cast<std::size_t>(
                         controller_->assignment()(t.key))]
        .push_back(t);
  }
  pending_batches_[w].clear();
  replay_[w].clear();
  checkpoints_[w].clear();
  pending_installs_[w].clear();
  migrated_away_[w].clear();
}

void NetEngine::inject_kills(std::uint64_t epoch) {
  for (std::size_t i = 0; i < config_.fault.events.size(); ++i) {
    const FaultEvent& ev = config_.fault.events[i];
    if (ev.kind != FaultKind::kKill || fault_fired_[i]) continue;
    if (static_cast<std::uint64_t>(ev.epoch) != epoch) continue;
    const auto w = static_cast<std::size_t>(ev.worker);
    if (w >= workers_.size() || workers_[w].dead || workers_[w].pid <= 0) {
      continue;
    }
    if (!ev.sticky) fault_fired_[i] = true;
    SKW_LOG_INFO("fault injection: SIGKILL worker %zu at epoch %llu", w,
                 static_cast<unsigned long long>(epoch));
    ::kill(workers_[w].pid, SIGKILL);
  }
}

std::string NetEngine::ctrl_failure_reason(std::size_t w, CtrlRecv rc) const {
  switch (rc) {
    case CtrlRecv::kTimeout:
      return "worker " + std::to_string(w) +
             " missed the control deadline (wedged?)";
    case CtrlRecv::kClosed:
      return "worker " + std::to_string(w) + " closed its channel (crashed)";
    case CtrlRecv::kBadFrame:
      return "worker " + std::to_string(w) +
             " sent a rejected frame: " + workers_[w].ctrl.last_error();
    case CtrlRecv::kFrame:
      break;
  }
  return "worker " + std::to_string(w) + " sent an unexpected frame";
}

NetEngine::CtrlRecv NetEngine::recv_ctrl_any(
    std::size_t w, FrameHeader& header, std::vector<std::uint8_t>& payload) {
  Worker& wk = workers_[w];
  const int timeout =
      config_.recovery_enabled ? std::max(1, config_.ctrl_timeout_ms) : -1;
  while (true) {
    const int r = wk.ctrl.wait_readable(timeout);
    if (r == 0) return CtrlRecv::kTimeout;
    if (r < 0) return CtrlRecv::kClosed;
    if (!wk.ctrl.recv(header, payload)) {
      if (wk.ctrl.eof()) return CtrlRecv::kClosed;
      if (wk.ctrl.timed_out()) return CtrlRecv::kTimeout;
      return CtrlRecv::kBadFrame;
    }
    if (header.type == FrameType::kHeartbeat) {
      // Liveness beat: restarts the deadline (by looping), never resets
      // the retry budget — only a completed epoch's checkpoint proves
      // forward progress.
      continue;
    }
    if (header.type == FrameType::kInstallAck && owed_install_acks_[w] > 0) {
      // Barrier-free degrade install: the ack drains here so it never
      // surfaces as "unexpected frame" in whatever wait comes next.
      --owed_install_acks_[w];
      continue;
    }
    return CtrlRecv::kFrame;
  }
}

bool NetEngine::recv_ctrl(std::size_t w, FrameType type, FrameHeader& header,
                          std::vector<std::uint8_t>& payload) {
  const CtrlRecv rc = recv_ctrl_any(w, header, payload);
  if (rc != CtrlRecv::kFrame) {
    fail("ctrl recv from worker " + std::to_string(w) + ": " +
         ctrl_failure_reason(w, rc));
    return false;
  }
  if (header.type != type) {
    fail(std::string("protocol: expected ") + frame_type_name(type) +
         " from worker " + std::to_string(w) + ", got " +
         frame_type_name(header.type));
    return false;
  }
  return true;
}

void NetEngine::route_tuple(const Tuple& tuple) {
  const InstanceId d = controller_->assignment()(tuple.key);
  auto& batch = pending_batches_[static_cast<std::size_t>(d)];
  batch.push_back(tuple);
  if (batch.size() >= config_.batch_size) flush_batch(d);
}

void NetEngine::flush_batch(InstanceId d) {
  const auto di = static_cast<std::size_t>(d);
  auto& batch = pending_batches_[di];
  if (batch.empty() || !ok() || workers_[di].dead) return;
  frame_scratch_.clear();
  encode_tuple_batch(frame_scratch_, batch);
  batch.clear();
  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  if (config_.recovery_enabled) {
    // Recorded BEFORE the send and counted regardless of its outcome: a
    // failed send triggers a recovery whose replay delivers exactly this
    // frame, so the seal's batch count must include it either way.
    (void)replay_[di].record(epoch, frame_scratch_.bytes().data(),
                             frame_scratch_.size());
  }
  ++workers_[di].batches_sent;
  if (!workers_[di].data.send(FrameType::kBatch, epoch, frame_scratch_)) {
    if (!recover_worker(di, "data send failed: " +
                                workers_[di].data.last_error())) {
      // Degraded: the recorded batch was re-routed. Failed: ok() is off.
      return;
    }
  }
}

void NetEngine::flush_batches() {
  for (InstanceId d = 0; d < num_workers_; ++d) flush_batch(d);
}

std::uint64_t NetEngine::wire_bytes_data() const {
  std::uint64_t total = wire_retired_data_;
  for (const Worker& w : workers_) {
    total += w.data.bytes_sent() + w.data.bytes_received();
  }
  return total;
}

std::uint64_t NetEngine::wire_bytes_ctrl() const {
  std::uint64_t total = wire_retired_ctrl_;
  for (const Worker& w : workers_) {
    total += w.ctrl.bytes_sent() + w.ctrl.bytes_received();
  }
  return total;
}

std::size_t NetEngine::live_workers() const {
  std::size_t live = 0;
  for (const Worker& w : workers_) {
    if (!w.dead) ++live;
  }
  return live;
}

NetIntervalReport NetEngine::ingest(const std::vector<Tuple>& tuples) {
  NetIntervalReport report;
  report.interval = interval_;
  if (!ok() || stopped_) return report;
  if (!interval_open_) {
    interval_open_ = true;
    open_interval_wall_ms_ = 0.0;
    wire_mark_data_ = wire_bytes_data();
    wire_mark_ctrl_ = wire_bytes_ctrl();
  }
  WallTimer timer;
  for (Tuple t : tuples) {
    t.emit_micros = steady_now_us() - engine_epoch_us_;
    route_tuple(t);
    if (!ok()) return report;
    ++report.emitted;
  }
  total_emitted_ += report.emitted;
  open_interval_wall_ms_ += timer.elapsed_millis();
  report.wall_ms = open_interval_wall_ms_;
  return report;
}

bool NetEngine::absorb_summaries(std::uint64_t epoch,
                                 NetIntervalReport& report) {
  double latency_sum = 0.0;
  std::uint64_t latency_n = 0;
  std::vector<double> worker_cost(workers_.size(), 0.0);
  std::vector<std::uint8_t> summary_buf;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead) continue;
    // With recovery on, the summary is only a CANDIDATE until the same
    // epoch's checkpoint lands: a worker that dies between the two is
    // replayed from its previous checkpoint, and absorbing its summary
    // early would count the epoch twice. The buffered copy is absorbed
    // the moment the checkpoint confirms the epoch completed durably.
    bool have_summary = false;
    bool have_checkpoint = !config_.recovery_enabled;
    while (!(have_summary && have_checkpoint)) {
      if (!ok()) return false;
      if (workers_[w].dead) break;  // degraded while waiting
      FrameHeader header;
      const CtrlRecv rc = recv_ctrl_any(w, header, recv_scratch_);
      if (rc != CtrlRecv::kFrame) {
        have_summary = false;  // a recovered worker re-seals from scratch
        if (!recover_worker(w, ctrl_failure_reason(w, rc))) {
          if (!ok()) return false;
          break;  // degraded
        }
        continue;
      }
      if (header.type == FrameType::kSummary) {
        if (header.epoch != epoch) {
          have_summary = false;
          if (!recover_worker(w, "Summary for epoch " +
                                     std::to_string(header.epoch) +
                                     ", expected " + std::to_string(epoch))) {
            if (!ok()) return false;
            break;
          }
          continue;
        }
        summary_buf = recv_scratch_;  // overwrite a pre-crash duplicate
        have_summary = true;
      } else if (header.type == FrameType::kCheckpoint) {
        ByteReader in(recv_scratch_, ByteReader::Untrusted{});
        CheckpointPayload cp;
        if (!have_summary || !decode_checkpoint(in, cp) || !in.exhausted() ||
            cp.epoch != epoch) {
          have_summary = false;
          if (!recover_worker(w, "bad Checkpoint at epoch " +
                                     std::to_string(epoch))) {
            if (!ok()) return false;
            break;
          }
          continue;
        }
        checkpoints_[w].push(std::move(cp));
        // The epoch is durable: its batches are reflected in the
        // checkpoint, migration bookkeeping older than it is stale, and
        // the worker proved forward progress (retry budget refills).
        replay_[w].clear();
        migrated_away_[w].clear();
        std::erase_if(pending_installs_[w], [&](const PendingInstall& p) {
          return p.epoch < epoch;
        });
        workers_[w].seal_sent = false;
        workers_[w].batches_sent = 0;
        workers_[w].recover_attempts = 0;
        have_checkpoint = true;
      } else {
        have_summary = false;
        if (!recover_worker(w, std::string("unexpected ") +
                                   frame_type_name(header.type) +
                                   " while awaiting the boundary summary")) {
          if (!ok()) return false;
          break;
        }
        continue;
      }
    }
    if (workers_[w].dead || !have_summary) continue;  // degraded mid-epoch
    ByteReader in(summary_buf.empty() ? recv_scratch_ : summary_buf,
                  ByteReader::Untrusted{});
    if (!scratch_slab_->deserialize_from(in) || !in.exhausted() ||
        scratch_slab_->epoch() != epoch) {
      // A post-seal worker produced this; not a crash we can replay.
      fail("corrupt boundary summary from worker " + std::to_string(w));
      return false;
    }
    const WorkerSketchSlab::IntervalScalars& sc = scratch_slab_->scalars();
    report.processed += sc.processed;
    latency_sum += sc.latency_sum_us;
    latency_n += sc.latency_samples;
    worker_cost[w] = scratch_slab_->total_cost();
    report.stats_memory_bytes += scratch_slab_->memory_bytes();
    // Worker-index order — the same fixed absorb order as the threaded
    // engine's boundary merge, and for the same reason: the merged
    // window must be byte-identical no matter which worker's summary
    // crossed the wire first. Worker w IS instance w (cold-residual
    // attribution).
    WallTimer merge_timer;
    sketch_sink_->absorb_slab(*scratch_slab_, static_cast<InstanceId>(w));
    report.merge_ms += merge_timer.elapsed_millis();
    summary_buf.clear();
  }
  report.avg_latency_ms =
      latency_n > 0 ? latency_sum / static_cast<double>(latency_n) / 1000.0
                    : 0.0;
  report.max_theta = max_theta_of(worker_cost);
  return true;
}

bool NetEngine::execute_migration(const RebalancePlan& plan,
                                  NetIntervalReport& report) {
  const auto n = static_cast<std::size_t>(num_workers_);
  std::vector<std::vector<KeyId>> by_source(n);
  for (const KeyMove& mv : plan.moves) {
    by_source[static_cast<std::size_t>(mv.from)].push_back(mv.key);
  }
  std::unordered_map<KeyId, InstanceId> dest_of;
  dest_of.reserve(plan.moves.size());
  for (const KeyMove& mv : plan.moves) dest_of.emplace(mv.key, mv.to);

  const auto send_extract = [&](std::size_t w) -> bool {
    frame_scratch_.clear();
    encode_key_list(frame_scratch_, by_source[w]);
    return workers_[w].ctrl.send(FrameType::kExtract, 0, frame_scratch_);
  };

  // Fan the extracts out first so the sources work in parallel; a failed
  // send recovers the worker and defers the (re-)send to its collect
  // loop below — the restored checkpoint still owns the keys, because
  // migrated_away_ is only recorded on a decoded kMigrated.
  std::vector<char> need_extract(n, 0);
  for (std::size_t w = 0; w < n; ++w) {
    if (by_source[w].empty() || workers_[w].dead) continue;
    if (!send_extract(w)) {
      if (!recover_worker(w, "Extract send failed: " +
                                 workers_[w].ctrl.last_error())) {
        if (!ok()) return false;
        continue;  // degraded: its moves are moot
      }
      need_extract[w] = 1;
    }
  }

  // Collect per source in ascending order and regroup by destination.
  // The blobs stay opaque bytes end to end: the driver routes state, it
  // never materializes it.
  std::vector<WireKeyState> extracted;
  std::vector<std::vector<WireKeyState>> by_dest(n);
  for (std::size_t w = 0; w < n; ++w) {
    if (by_source[w].empty()) continue;
    while (ok() && !workers_[w].dead) {
      if (need_extract[w] != 0) {
        if (!send_extract(w)) {
          if (!recover_worker(w, "Extract re-send failed: " +
                                     workers_[w].ctrl.last_error())) {
            if (!ok()) return false;
            break;
          }
          continue;
        }
        need_extract[w] = 0;
      }
      FrameHeader header;
      const CtrlRecv rc = recv_ctrl_any(w, header, recv_scratch_);
      bool bad = rc != CtrlRecv::kFrame;
      std::string why = bad ? ctrl_failure_reason(w, rc) : std::string();
      if (!bad && header.type != FrameType::kMigrated) {
        bad = true;
        why = std::string("unexpected ") + frame_type_name(header.type) +
              " while awaiting Migrated";
      }
      extracted.clear();
      if (!bad) {
        ByteReader in(recv_scratch_, ByteReader::Untrusted{});
        if (!decode_key_states(in, extracted) || !in.exhausted()) {
          bad = true;
          why = "corrupt Migrated payload";
        }
      }
      if (bad) {
        if (!recover_worker(w, why)) {
          if (!ok()) return false;
          break;  // degraded: effective_checkpoint re-homed its keys
        }
        need_extract[w] = 1;
        continue;
      }
      for (WireKeyState& wire : extracted) {
        const auto it = dest_of.find(wire.key);
        if (it == dest_of.end()) {
          fail("Migrated key not in the plan from worker " +
               std::to_string(w));
          return false;
        }
        if (config_.recovery_enabled) {
          // The source's checkpoint predates this extraction: a restore
          // of the source must not resurrect the key...
          migrated_away_[w].insert(wire.key);
        }
        report.migration_wire_bytes += static_cast<Bytes>(wire.blob.size());
        // ...and the key's new owner comes from the live assignment (==
        // the plan destination, unless that worker degraded meanwhile).
        by_dest[static_cast<std::size_t>(
                    controller_->assignment()(wire.key))]
            .push_back(std::move(wire));
      }
      break;
    }
    if (!ok()) return false;
  }

  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  std::vector<char> ack_pending(n, 0);
  for (std::size_t w = 0; w < n; ++w) {
    if (by_dest[w].empty() || workers_[w].dead) continue;
    if (config_.recovery_enabled) {
      // Recorded before the send: until the NEXT checkpoint proves these
      // states durable, a restore of this destination re-delivers them.
      for (const WireKeyState& s : by_dest[w]) {
        pending_installs_[w].push_back({epoch, s});
      }
    }
    frame_scratch_.clear();
    encode_key_states(frame_scratch_, by_dest[w]);
    if (!workers_[w].ctrl.send(FrameType::kInstall, epoch, frame_scratch_)) {
      if (!recover_worker(w, "Install send failed: " +
                                 workers_[w].ctrl.last_error())) {
        if (!ok()) return false;
      }
      continue;  // the restore delivered the installs; no ack will come
    }
    ack_pending[w] = 1;
  }
  // The install barrier: no next-interval tuple is routed anywhere until
  // every destination acknowledged. Without it a tuple for a moved key
  // could reach its new owner ahead of the state and grow a fresh state
  // the install would then collide with.
  for (std::size_t w = 0; w < n; ++w) {
    if (ack_pending[w] == 0 || workers_[w].dead) continue;
    FrameHeader header;
    const CtrlRecv rc = recv_ctrl_any(w, header, recv_scratch_);
    if (rc == CtrlRecv::kFrame && header.type == FrameType::kInstallAck) {
      continue;
    }
    // Whatever went wrong, the recovery path re-delivers the pending
    // installs during the restore, which doubles as the barrier.
    if (!recover_worker(w, rc != CtrlRecv::kFrame
                               ? ctrl_failure_reason(w, rc)
                               : std::string("unexpected ") +
                                     frame_type_name(header.type) +
                                     " while awaiting InstallAck")) {
      if (!ok()) return false;
    }
  }
  return true;
}

bool NetEngine::broadcast_heavy_set() {
  last_heavy_keys_ = sketch_sink_->heavy_keys();
  heavy_broadcast_done_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead) continue;
    // Re-encoded per worker: a recovery inside this loop clobbers
    // frame_scratch_ (the restore re-sends the heavy set on its own).
    frame_scratch_.clear();
    encode_key_list(frame_scratch_, last_heavy_keys_);
    if (!workers_[w].ctrl.send(FrameType::kHeavySet, 0, frame_scratch_)) {
      if (!recover_worker(w, "HeavySet send failed: " +
                                 workers_[w].ctrl.last_error())) {
        if (!ok()) return false;
      }
    }
  }
  return true;
}

bool NetEngine::broadcast_expire() {
  last_expire_watermark_ =
      (interval_ + 1 - config_.expire_lag_intervals) * 1'000'000;
  expire_sent_ = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead) continue;
    frame_scratch_.clear();
    encode_expire(frame_scratch_, last_expire_watermark_);
    if (!workers_[w].ctrl.send(FrameType::kExpire, 0, frame_scratch_)) {
      if (!recover_worker(w, "Expire send failed: " +
                                 workers_[w].ctrl.last_error())) {
        if (!ok()) return false;
      }
    }
  }
  return true;
}

void NetEngine::finish_interval(NetIntervalReport& report) {
  if (!ok() || stopped_) return;
  if (!interval_open_) {
    // finish without ingest: an empty interval still seals and rolls.
    wire_mark_data_ = wire_bytes_data();
    wire_mark_ctrl_ = wire_bytes_ctrl();
  }
  WallTimer timer;
  // Scheduled driver-side kills fire at the boundary's entry — the
  // hardest point in the protocol to lose a worker, since the epoch's
  // batches are in flight and its summary is owed.
  inject_kills(static_cast<std::uint64_t>(interval_) + 1);
  flush_batches();
  if (!ok()) return;
  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  // Seal on CTRL: even with the data sockets full to the brim, the seal
  // is written to an empty buffer and read with priority — control never
  // waits behind data.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead) continue;
    // Marked before the send: if the send (or anything after it) kills
    // the worker, the restore re-arms the seal. Never re-sent here — a
    // double seal would arm a stale batch target.
    workers_[w].seal_sent = true;
    frame_scratch_.clear();
    encode_seal(frame_scratch_, SealPayload{workers_[w].batches_sent});
    if (!workers_[w].ctrl.send(FrameType::kSeal, epoch, frame_scratch_)) {
      if (!recover_worker(w, "Seal send failed: " +
                                 workers_[w].ctrl.last_error())) {
        if (!ok()) return;
      }
    }
  }
  if (!absorb_summaries(epoch, report)) return;
  if (auto plan = controller_->end_interval()) {
    report.migrated = true;
    report.moves = plan->moves.size();
    report.migration_bytes = plan->migration_bytes;
    report.generation_micros = plan->generation_micros;
    if (!execute_migration(*plan, report)) return;
  }
  report.max_theta = controller_->last_observed_theta();
  report.stats_memory_bytes += controller_->stats_memory_bytes();
  // The roll just promoted/demoted: broadcast the post-roll heavy set so
  // the next interval's hot keys accumulate exactly in the worker slabs.
  // Written before any next-interval batch, drained by the workers
  // before any next-interval batch (ctrl priority).
  if (!broadcast_heavy_set()) return;
  if (config_.expire_lag_intervals > 0) {
    if (!broadcast_expire()) return;
  }
  if (!config_.recovery_enabled) {
    // With recovery on this reset happens per worker at checkpoint
    // receipt, which is the moment the count stops being replay-relevant.
    for (Worker& worker : workers_) worker.batches_sent = 0;
  }
  report.recoveries = recoveries_;
  report.degraded = degraded_;
  const double seg = timer.elapsed_millis();
  report.stall_ms = seg;
  report.wall_ms = open_interval_wall_ms_ + seg;
  report.throughput_tps = report.wall_ms > 0.0
                              ? static_cast<double>(report.processed) /
                                    (report.wall_ms / 1000.0)
                              : 0.0;
  const std::uint64_t data_now = wire_bytes_data();
  const std::uint64_t ctrl_now = wire_bytes_ctrl();
  report.data_wire_bytes =
      data_now >= wire_mark_data_ ? data_now - wire_mark_data_ : 0;
  report.ctrl_wire_bytes =
      ctrl_now >= wire_mark_ctrl_ ? ctrl_now - wire_mark_ctrl_ : 0;
  controller_->note_boundary(report.merge_ms, report.stall_ms);
  total_processed_ += report.processed;
  interval_open_ = false;
  open_interval_wall_ms_ = 0.0;
  ++interval_;
}

NetIntervalReport NetEngine::run_interval(const std::vector<Tuple>& tuples) {
  NetIntervalReport report = ingest(tuples);
  finish_interval(report);
  return report;
}

std::vector<NetIntervalReport> NetEngine::run(WorkloadSource& source,
                                              int intervals,
                                              std::uint64_t seed) {
  std::vector<NetIntervalReport> reports;
  reports.reserve(static_cast<std::size_t>(intervals));
  Xoshiro256 rng(seed);

  // Identical expansion + shuffle to ThreadedEngine::run — the
  // byte-identity contract starts with identical tuple sequences, so the
  // RNG must be consumed in exactly the same order.
  const auto expand = [&](std::vector<Tuple>& tuples) {
    const IntervalWorkload load = source.next_interval();
    tuples.clear();
    tuples.reserve(static_cast<std::size_t>(load.total()));
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      for (std::uint64_t c = 0; c < load.counts[k]; ++c) {
        Tuple t;
        t.key = static_cast<KeyId>(k);
        t.value = static_cast<std::int64_t>(c);
        tuples.push_back(t);
      }
    }
    for (std::size_t j = tuples.size(); j > 1; --j) {
      std::swap(tuples[j - 1], tuples[rng.next_below(j)]);
    }
  };

  std::vector<Tuple> tuples;
  for (int i = 0; i < intervals && ok(); ++i) {
    expand(tuples);
    reports.push_back(run_interval(tuples));
  }
  return reports;
}

double NetEngine::broadcast_plan(const RebalancePlan& plan,
                                 std::uint64_t seq) {
  if (!ok() || stopped_) return -1.0;
  PlanPayload payload;
  payload.seq = seq;
  payload.moves = plan.moves;
  WallTimer timer;
  const auto send_plan = [&](std::size_t w) -> bool {
    frame_scratch_.clear();
    encode_plan(frame_scratch_, payload);
    return workers_[w].ctrl.send(FrameType::kPlan, seq, frame_scratch_);
  };
  std::vector<char> need_send(workers_.size(), 0);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead) continue;
    if (!send_plan(w)) {
      if (!recover_worker(w, "Plan send failed: " +
                                 workers_[w].ctrl.last_error())) {
        if (!ok()) return -1.0;
        continue;
      }
      need_send[w] = 1;
    }
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead) continue;
    while (ok() && !workers_[w].dead) {
      if (need_send[w] != 0) {
        if (!send_plan(w)) {
          if (!recover_worker(w, "Plan re-send failed")) {
            if (!ok()) return -1.0;
            break;
          }
          continue;
        }
        need_send[w] = 0;
      }
      FrameHeader header;
      const CtrlRecv rc = recv_ctrl_any(w, header, recv_scratch_);
      if (rc == CtrlRecv::kFrame && header.type == FrameType::kPlanAck) {
        ByteReader in(recv_scratch_, ByteReader::Untrusted{});
        AckPayload ack;
        if (decode_ack(in, ack) && ack.seq == seq) break;
      }
      if (!recover_worker(w, "PlanAck missing or invalid")) {
        if (!ok()) return -1.0;
        break;
      }
      need_send[w] = 1;
    }
    if (!ok()) return -1.0;
  }
  return timer.elapsed_millis();
}

void NetEngine::shutdown() {
  if (stopped_) return;
  if (ok() && degraded_) {
    // Degraded runs may hold re-routed replay tuples that were never
    // sealed; close them through full boundaries so every tuple is
    // counted exactly once. Bounded: each pass drains what it finds, and
    // a fresh degrade mid-pass can re-fill at most a few times.
    for (int guard = 0; guard < 8 && ok(); ++guard) {
      bool pending = false;
      for (const auto& b : pending_batches_) pending |= !b.empty();
      if (!pending) break;
      NetIntervalReport tail;
      finish_interval(tail);
    }
  }
  stopped_ = true;
  if (ok()) {
    flush_batches();
    for (std::size_t w = 0; w < workers_.size() && ok(); ++w) {
      if (workers_[w].dead) continue;
      frame_scratch_.clear();
      if (!workers_[w].ctrl.send(FrameType::kStop, 0, frame_scratch_)) {
        if (!recover_worker(w, "Stop send failed: " +
                                   workers_[w].ctrl.last_error())) {
          continue;  // degraded (folded by degrade_worker) or failed
        }
        frame_scratch_.clear();
        if (!workers_[w].ctrl.send(FrameType::kStop, 0, frame_scratch_)) {
          fail("Stop re-send to worker " + std::to_string(w) + ": " +
               workers_[w].ctrl.last_error());
        }
      }
    }
    for (std::size_t w = 0; w < workers_.size() && ok(); ++w) {
      if (workers_[w].dead) continue;
      while (ok() && !workers_[w].dead) {
        FrameHeader header;
        const CtrlRecv rc = recv_ctrl_any(w, header, recv_scratch_);
        if (rc == CtrlRecv::kFrame && header.type == FrameType::kFin) {
          ByteReader in(recv_scratch_, ByteReader::Untrusted{});
          FinPayload fin;
          if (!decode_fin(in, fin)) {
            fail("corrupt Fin from worker " + std::to_string(w));
            break;
          }
          final_checksum_ += fin.state_checksum;
          final_state_entries_ += fin.state_entries;
          total_outputs_ += fin.outputs;
          break;
        }
        // A crash this late is still recoverable: the restored worker
        // replays its open epoch, then needs a fresh Stop.
        if (!recover_worker(w, rc != CtrlRecv::kFrame
                                   ? ctrl_failure_reason(w, rc)
                                   : std::string("unexpected ") +
                                         frame_type_name(header.type) +
                                         " while awaiting Fin")) {
          break;  // degraded folded its checkpoint into the finals
        }
        frame_scratch_.clear();
        if (!workers_[w].ctrl.send(FrameType::kStop, 0, frame_scratch_)) {
          fail("Stop re-send to worker " + std::to_string(w) + ": " +
               workers_[w].ctrl.last_error());
        }
      }
    }
  }
  // Whether the stop handshake succeeded or fail() already killed the
  // children, every pid must be reaped exactly once.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    worker.data.close();
    worker.ctrl.close();
    if (worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != kWorkerExitOk) {
        SKW_LOG_INFO("net worker %zu final reap: %s", w,
                     describe_worker_exit(status).c_str());
        if (error_.empty()) error_ = "worker exited abnormally";
      }
      worker.pid = -1;
    }
  }
}

std::uint64_t NetEngine::state_checksum() const {
  SKW_EXPECTS(stopped_);
  return final_checksum_;
}

std::size_t NetEngine::total_state_entries() const {
  SKW_EXPECTS(stopped_);
  return final_state_entries_;
}

}  // namespace skewless
