#include "net/net_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/assert.h"
#include "common/clock.h"
#include "common/log.h"
#include "common/rng.h"
#include "net/worker_main.h"
#include "sketch/sketch_stats_window.h"

namespace skewless {
namespace {

Micros steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Realized imbalance max|c_d - avg|/avg (same as the threaded engine).
double max_theta_of(const std::vector<double>& worker_cost) {
  double total = 0.0;
  for (const double c : worker_cost) total += c;
  if (total <= 0.0) return 0.0;
  const double avg = total / static_cast<double>(worker_cost.size());
  double worst = 0.0;
  for (const double c : worker_cost) {
    worst = std::max(worst, std::abs(c - avg) / avg);
  }
  return worst;
}

}  // namespace

NetEngine::NetEngine(NetConfig config, std::shared_ptr<OperatorLogic> logic,
                     std::unique_ptr<Controller> controller)
    : config_(config),
      logic_(std::move(logic)),
      controller_(std::move(controller)) {
  SKW_EXPECTS(logic_ != nullptr);
  SKW_EXPECTS(controller_ != nullptr);
  sketch_sink_ = controller_->slab_sink();
  // The boundary summary IS the serialized sketch slab; there is no
  // exact-mode wire format (it would be O(|K|) per worker per interval).
  SKW_EXPECTS(sketch_sink_ != nullptr);
  num_workers_ = controller_->num_instances();
  SKW_EXPECTS(num_workers_ > 0);
  engine_epoch_us_ = steady_now_us();
  pending_batches_.resize(static_cast<std::size_t>(num_workers_));
  scratch_slab_ = std::make_unique<ShardedWorkerSlab>(
      sketch_sink_->slab_config(), sketch_sink_->slab_shards());
  spawn_workers();
  if (ok() && !handshake()) {
    SKW_ASSERT(!ok());  // handshake failure went through fail()
  }
}

NetEngine::~NetEngine() { shutdown(); }

void NetEngine::spawn_workers() {
  const auto n = static_cast<std::size_t>(num_workers_);
  workers_.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    int data_fds[2];
    int ctrl_fds[2];
    std::string err;
    if (!make_socket_pair(data_fds, err) || !make_socket_pair(ctrl_fds, err)) {
      fail("spawn: " + err);
      return;
    }
    if (config_.data_sndbuf_bytes > 0) {
      // Best-effort: the kernel clamps unprivileged requests to wmem_max.
      const int v = config_.data_sndbuf_bytes;
      (void)::setsockopt(data_fds[0], SOL_SOCKET, SO_SNDBUF, &v, sizeof(v));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(data_fds[0]);
      ::close(data_fds[1]);
      ::close(ctrl_fds[0]);
      ::close(ctrl_fds[1]);
      fail("spawn: fork failed");
      return;
    }
    if (pid == 0) {
      // Child: keep only this worker's child-side fds. The parent-side
      // fds of every worker spawned so far (including ours) were
      // inherited by the fork and must go — a held write end would keep
      // a dead driver's sockets half-open.
      for (std::size_t p = 0; p < w; ++p) {
        workers_[p].data.close();
        workers_[p].ctrl.close();
      }
      ::close(data_fds[0]);
      ::close(ctrl_fds[0]);
      NetWorkerOptions options;
      options.worker_id = static_cast<std::uint32_t>(w);
      options.num_workers = static_cast<std::uint32_t>(num_workers_);
      options.sketch = sketch_sink_->slab_config();
      options.shards = static_cast<std::uint32_t>(sketch_sink_->slab_shards());
      options.engine_epoch_us = engine_epoch_us_;
      const int rc =
          run_net_worker(data_fds[1], ctrl_fds[1], options, *logic_);
      // _Exit: the child shares the parent's heap image; running static
      // destructors or flushing duplicated stdio here would corrupt the
      // driver's observable behavior.
      std::_Exit(rc);
    }
    ::close(data_fds[1]);
    ::close(ctrl_fds[1]);
    workers_[w].data = FrameChannel(data_fds[0]);
    workers_[w].ctrl = FrameChannel(ctrl_fds[0]);
    workers_[w].pid = pid;
  }
}

bool NetEngine::handshake() {
  // Hello round-trip on every ctrl channel: proves each worker is alive
  // and speaks this build's wire version before any data flows. A
  // version-mismatched peer is rejected by the frame decoder on either
  // side with a clear error.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    HelloPayload hello;
    hello.worker_id = static_cast<std::uint32_t>(w);
    hello.num_workers = static_cast<std::uint32_t>(num_workers_);
    frame_scratch_.clear();
    encode_hello(frame_scratch_, hello);
    if (!workers_[w].ctrl.send(FrameType::kHello, 0, frame_scratch_)) {
      fail("handshake send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return false;
    }
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    FrameHeader header;
    if (!recv_ctrl(w, FrameType::kHello, header, recv_scratch_)) return false;
    ByteReader in(recv_scratch_, ByteReader::Untrusted{});
    HelloPayload echo;
    if (!decode_hello(in, echo) ||
        echo.worker_id != static_cast<std::uint32_t>(w)) {
      fail("handshake: bad Hello echo from worker " + std::to_string(w));
      return false;
    }
  }
  return true;
}

void NetEngine::fail(const std::string& what) {
  if (!error_.empty()) return;  // keep the first cause
  error_ = what;
  SKW_LOG_INFO("net engine failure: %s", error_.c_str());
  for (Worker& worker : workers_) {
    worker.data.close();
    worker.ctrl.close();
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGKILL);
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  }
}

bool NetEngine::recv_ctrl(std::size_t w, FrameType type, FrameHeader& header,
                          std::vector<std::uint8_t>& payload) {
  if (!workers_[w].ctrl.recv(header, payload)) {
    fail("ctrl recv from worker " + std::to_string(w) + ": " +
         workers_[w].ctrl.last_error());
    return false;
  }
  if (header.type != type) {
    fail(std::string("protocol: expected ") + frame_type_name(type) +
         " from worker " + std::to_string(w) + ", got " +
         frame_type_name(header.type));
    return false;
  }
  return true;
}

void NetEngine::route_tuple(const Tuple& tuple) {
  const InstanceId d = controller_->assignment()(tuple.key);
  auto& batch = pending_batches_[static_cast<std::size_t>(d)];
  batch.push_back(tuple);
  if (batch.size() >= config_.batch_size) flush_batch(d);
}

void NetEngine::flush_batch(InstanceId d) {
  const auto di = static_cast<std::size_t>(d);
  auto& batch = pending_batches_[di];
  if (batch.empty() || !ok()) return;
  frame_scratch_.clear();
  encode_tuple_batch(frame_scratch_, batch);
  batch.clear();
  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  if (!workers_[di].data.send(FrameType::kBatch, epoch, frame_scratch_)) {
    fail("data send to worker " + std::to_string(di) + ": " +
         workers_[di].data.last_error());
    return;
  }
  ++workers_[di].batches_sent;
}

void NetEngine::flush_batches() {
  for (InstanceId d = 0; d < num_workers_; ++d) flush_batch(d);
}

std::uint64_t NetEngine::wire_bytes_data() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers_) {
    total += w.data.bytes_sent() + w.data.bytes_received();
  }
  return total;
}

std::uint64_t NetEngine::wire_bytes_ctrl() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers_) {
    total += w.ctrl.bytes_sent() + w.ctrl.bytes_received();
  }
  return total;
}

NetIntervalReport NetEngine::ingest(const std::vector<Tuple>& tuples) {
  NetIntervalReport report;
  report.interval = interval_;
  if (!ok() || stopped_) return report;
  if (!interval_open_) {
    interval_open_ = true;
    open_interval_wall_ms_ = 0.0;
    wire_mark_data_ = wire_bytes_data();
    wire_mark_ctrl_ = wire_bytes_ctrl();
  }
  WallTimer timer;
  for (Tuple t : tuples) {
    t.emit_micros = steady_now_us() - engine_epoch_us_;
    route_tuple(t);
    if (!ok()) return report;
    ++report.emitted;
  }
  total_emitted_ += report.emitted;
  open_interval_wall_ms_ += timer.elapsed_millis();
  report.wall_ms = open_interval_wall_ms_;
  return report;
}

bool NetEngine::absorb_summaries(std::uint64_t epoch,
                                 NetIntervalReport& report) {
  double latency_sum = 0.0;
  std::uint64_t latency_n = 0;
  std::vector<double> worker_cost(workers_.size(), 0.0);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    FrameHeader header;
    if (!recv_ctrl(w, FrameType::kSummary, header, recv_scratch_)) {
      return false;
    }
    if (header.epoch != epoch) {
      fail("protocol: Summary for epoch " + std::to_string(header.epoch) +
           " from worker " + std::to_string(w) + ", expected " +
           std::to_string(epoch));
      return false;
    }
    ByteReader in(recv_scratch_, ByteReader::Untrusted{});
    if (!scratch_slab_->deserialize_from(in) || !in.exhausted() ||
        scratch_slab_->epoch() != epoch) {
      fail("corrupt boundary summary from worker " + std::to_string(w));
      return false;
    }
    const WorkerSketchSlab::IntervalScalars& sc = scratch_slab_->scalars();
    report.processed += sc.processed;
    latency_sum += sc.latency_sum_us;
    latency_n += sc.latency_samples;
    worker_cost[w] = scratch_slab_->total_cost();
    report.stats_memory_bytes += scratch_slab_->memory_bytes();
    // Worker-index order — the same fixed absorb order as the threaded
    // engine's boundary merge, and for the same reason: the merged
    // window must be byte-identical no matter which worker's summary
    // crossed the wire first. Worker w IS instance w (cold-residual
    // attribution).
    WallTimer merge_timer;
    sketch_sink_->absorb_slab(*scratch_slab_, static_cast<InstanceId>(w));
    report.merge_ms += merge_timer.elapsed_millis();
  }
  report.avg_latency_ms =
      latency_n > 0 ? latency_sum / static_cast<double>(latency_n) / 1000.0
                    : 0.0;
  report.max_theta = max_theta_of(worker_cost);
  return true;
}

bool NetEngine::execute_migration(const RebalancePlan& plan,
                                  NetIntervalReport& report) {
  const auto n = static_cast<std::size_t>(num_workers_);
  std::vector<std::vector<KeyId>> by_source(n);
  for (const KeyMove& mv : plan.moves) {
    by_source[static_cast<std::size_t>(mv.from)].push_back(mv.key);
  }
  std::unordered_map<KeyId, InstanceId> dest_of;
  dest_of.reserve(plan.moves.size());
  for (const KeyMove& mv : plan.moves) dest_of.emplace(mv.key, mv.to);

  for (std::size_t w = 0; w < n; ++w) {
    if (by_source[w].empty()) continue;
    frame_scratch_.clear();
    encode_key_list(frame_scratch_, by_source[w]);
    if (!workers_[w].ctrl.send(FrameType::kExtract, 0, frame_scratch_)) {
      fail("Extract send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return false;
    }
  }

  // Collect per source in ascending order and regroup by destination.
  // The blobs stay opaque bytes end to end: the driver routes state, it
  // never materializes it.
  std::vector<std::vector<WireKeyState>> by_dest(n);
  for (std::size_t w = 0; w < n; ++w) {
    if (by_source[w].empty()) continue;
    FrameHeader header;
    if (!recv_ctrl(w, FrameType::kMigrated, header, recv_scratch_)) {
      return false;
    }
    ByteReader in(recv_scratch_, ByteReader::Untrusted{});
    std::vector<WireKeyState> extracted;
    if (!decode_key_states(in, extracted) || !in.exhausted()) {
      fail("corrupt Migrated payload from worker " + std::to_string(w));
      return false;
    }
    for (WireKeyState& wire : extracted) {
      const auto it = dest_of.find(wire.key);
      if (it == dest_of.end()) {
        fail("Migrated key not in the plan from worker " + std::to_string(w));
        return false;
      }
      report.migration_wire_bytes += static_cast<Bytes>(wire.blob.size());
      by_dest[static_cast<std::size_t>(it->second)].push_back(
          std::move(wire));
    }
  }

  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  for (std::size_t w = 0; w < n; ++w) {
    if (by_dest[w].empty()) continue;
    frame_scratch_.clear();
    encode_key_states(frame_scratch_, by_dest[w]);
    if (!workers_[w].ctrl.send(FrameType::kInstall, epoch, frame_scratch_)) {
      fail("Install send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return false;
    }
  }
  // The install barrier: no next-interval tuple is routed anywhere until
  // every destination acknowledged. Without it a tuple for a moved key
  // could reach its new owner ahead of the state and grow a fresh state
  // the install would then collide with.
  for (std::size_t w = 0; w < n; ++w) {
    if (by_dest[w].empty()) continue;
    FrameHeader header;
    if (!recv_ctrl(w, FrameType::kInstallAck, header, recv_scratch_)) {
      return false;
    }
  }
  return true;
}

bool NetEngine::broadcast_heavy_set() {
  const std::vector<KeyId> keys = sketch_sink_->heavy_keys();
  frame_scratch_.clear();
  encode_key_list(frame_scratch_, keys);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].ctrl.send(FrameType::kHeavySet, 0, frame_scratch_)) {
      fail("HeavySet send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return false;
    }
  }
  return true;
}

void NetEngine::finish_interval(NetIntervalReport& report) {
  if (!ok() || stopped_) return;
  if (!interval_open_) {
    // finish without ingest: an empty interval still seals and rolls.
    wire_mark_data_ = wire_bytes_data();
    wire_mark_ctrl_ = wire_bytes_ctrl();
  }
  WallTimer timer;
  flush_batches();
  const auto epoch = static_cast<std::uint64_t>(interval_) + 1;
  // Seal on CTRL: even with the data sockets full to the brim, the seal
  // is written to an empty buffer and read with priority — control never
  // waits behind data.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    frame_scratch_.clear();
    encode_seal(frame_scratch_, SealPayload{workers_[w].batches_sent});
    if (!workers_[w].ctrl.send(FrameType::kSeal, epoch, frame_scratch_)) {
      fail("Seal send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return;
    }
  }
  if (!absorb_summaries(epoch, report)) return;
  if (auto plan = controller_->end_interval()) {
    report.migrated = true;
    report.moves = plan->moves.size();
    report.migration_bytes = plan->migration_bytes;
    report.generation_micros = plan->generation_micros;
    if (!execute_migration(*plan, report)) return;
  }
  report.max_theta = controller_->last_observed_theta();
  report.stats_memory_bytes += controller_->stats_memory_bytes();
  // The roll just promoted/demoted: broadcast the post-roll heavy set so
  // the next interval's hot keys accumulate exactly in the worker slabs.
  // Written before any next-interval batch, drained by the workers
  // before any next-interval batch (ctrl priority).
  if (!broadcast_heavy_set()) return;
  if (config_.expire_lag_intervals > 0) {
    const Micros watermark =
        (interval_ + 1 - config_.expire_lag_intervals) * 1'000'000;
    frame_scratch_.clear();
    encode_expire(frame_scratch_, watermark);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].ctrl.send(FrameType::kExpire, 0, frame_scratch_)) {
        fail("Expire send to worker " + std::to_string(w) + ": " +
             workers_[w].ctrl.last_error());
        return;
      }
    }
  }
  for (Worker& worker : workers_) worker.batches_sent = 0;
  const double seg = timer.elapsed_millis();
  report.stall_ms = seg;
  report.wall_ms = open_interval_wall_ms_ + seg;
  report.throughput_tps = report.wall_ms > 0.0
                              ? static_cast<double>(report.processed) /
                                    (report.wall_ms / 1000.0)
                              : 0.0;
  report.data_wire_bytes = wire_bytes_data() - wire_mark_data_;
  report.ctrl_wire_bytes = wire_bytes_ctrl() - wire_mark_ctrl_;
  controller_->note_boundary(report.merge_ms, report.stall_ms);
  total_processed_ += report.processed;
  interval_open_ = false;
  open_interval_wall_ms_ = 0.0;
  ++interval_;
}

NetIntervalReport NetEngine::run_interval(const std::vector<Tuple>& tuples) {
  NetIntervalReport report = ingest(tuples);
  finish_interval(report);
  return report;
}

std::vector<NetIntervalReport> NetEngine::run(WorkloadSource& source,
                                              int intervals,
                                              std::uint64_t seed) {
  std::vector<NetIntervalReport> reports;
  reports.reserve(static_cast<std::size_t>(intervals));
  Xoshiro256 rng(seed);

  // Identical expansion + shuffle to ThreadedEngine::run — the
  // byte-identity contract starts with identical tuple sequences, so the
  // RNG must be consumed in exactly the same order.
  const auto expand = [&](std::vector<Tuple>& tuples) {
    const IntervalWorkload load = source.next_interval();
    tuples.clear();
    tuples.reserve(static_cast<std::size_t>(load.total()));
    for (std::size_t k = 0; k < load.counts.size(); ++k) {
      for (std::uint64_t c = 0; c < load.counts[k]; ++c) {
        Tuple t;
        t.key = static_cast<KeyId>(k);
        t.value = static_cast<std::int64_t>(c);
        tuples.push_back(t);
      }
    }
    for (std::size_t j = tuples.size(); j > 1; --j) {
      std::swap(tuples[j - 1], tuples[rng.next_below(j)]);
    }
  };

  std::vector<Tuple> tuples;
  for (int i = 0; i < intervals && ok(); ++i) {
    expand(tuples);
    reports.push_back(run_interval(tuples));
  }
  return reports;
}

double NetEngine::broadcast_plan(const RebalancePlan& plan,
                                 std::uint64_t seq) {
  if (!ok() || stopped_) return -1.0;
  PlanPayload payload;
  payload.seq = seq;
  payload.moves = plan.moves;
  frame_scratch_.clear();
  encode_plan(frame_scratch_, payload);
  WallTimer timer;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].ctrl.send(FrameType::kPlan, seq, frame_scratch_)) {
      fail("Plan send to worker " + std::to_string(w) + ": " +
           workers_[w].ctrl.last_error());
      return -1.0;
    }
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    FrameHeader header;
    if (!recv_ctrl(w, FrameType::kPlanAck, header, recv_scratch_)) {
      return -1.0;
    }
    ByteReader in(recv_scratch_, ByteReader::Untrusted{});
    AckPayload ack;
    if (!decode_ack(in, ack) || ack.seq != seq) {
      fail("bad PlanAck from worker " + std::to_string(w));
      return -1.0;
    }
  }
  return timer.elapsed_millis();
}

void NetEngine::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  if (ok()) {
    flush_batches();
    for (std::size_t w = 0; w < workers_.size() && ok(); ++w) {
      frame_scratch_.clear();
      if (!workers_[w].ctrl.send(FrameType::kStop, 0, frame_scratch_)) {
        fail("Stop send to worker " + std::to_string(w) + ": " +
             workers_[w].ctrl.last_error());
      }
    }
    for (std::size_t w = 0; w < workers_.size() && ok(); ++w) {
      FrameHeader header;
      if (!recv_ctrl(w, FrameType::kFin, header, recv_scratch_)) break;
      ByteReader in(recv_scratch_, ByteReader::Untrusted{});
      FinPayload fin;
      if (!decode_fin(in, fin)) {
        fail("corrupt Fin from worker " + std::to_string(w));
        break;
      }
      final_checksum_ += fin.state_checksum;
      final_state_entries_ += fin.state_entries;
      total_outputs_ += fin.outputs;
    }
  }
  // Whether the stop handshake succeeded or fail() already killed the
  // children, every pid must be reaped exactly once.
  for (Worker& worker : workers_) {
    worker.data.close();
    worker.ctrl.close();
    if (worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      if (error_.empty() &&
          (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
        error_ = "worker exited abnormally";
      }
      worker.pid = -1;
    }
  }
}

std::uint64_t NetEngine::state_checksum() const {
  SKW_EXPECTS(stopped_);
  return final_checksum_;
}

std::size_t NetEngine::total_state_entries() const {
  SKW_EXPECTS(stopped_);
  return final_state_entries_;
}

}  // namespace skewless
