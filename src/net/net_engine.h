// NetEngine — the distributed deployment of the single-operator engine:
// a driver/controller process and N forked worker PROCESSES connected by
// loopback sockets, speaking the framed wire protocol (net/frame.h).
//
// Topology per worker (socketpair(AF_UNIX, SOCK_STREAM), created before
// fork — no ports, no listeners):
//   * data channel — kBatch frames of routed tuples. This is the channel
//     that fills up: a slow worker backpressures the driver through the
//     kernel socket buffer, exactly like the threaded engine's bounded
//     queues.
//   * ctrl channel — everything else (seal, boundary summary, heavy-set
//     broadcast, plan, migration, shutdown). A separate socket means a
//     control frame NEVER queues behind a data backlog — the socket
//     translation of the force_push lesson from the in-process engine.
//
// Epoch protocol (mirrors ThreadedEngine's inline boundary):
//   1. the driver routes the interval's tuples as kBatch frames, counting
//      frames per worker;
//   2. at the boundary it sends each worker kSeal{epoch, batch count} on
//      ctrl — the worker seals only after processing exactly that many
//      batches, which re-establishes cross-channel ordering by content;
//   3. each worker serializes its WorkerSketchSlab and ships it back as
//      the kSummary boundary payload (O(sketch), never O(|K|));
//   4. the driver absorbs the summaries IN WORKER-INDEX ORDER into the
//      controller's SketchStatsWindow — the same fixed order as the
//      in-process merge, which is what makes a net run byte-identical to
//      a ThreadedEngine run on the same seed: identical plans, identical
//      θ trajectory, identical state checksums;
//   5. rolls/plans via Controller::end_interval, migrates state with
//      kExtract / kMigrated / kInstall / kInstallAck (the driver forwards
//      serialized state blobs without materializing them), broadcasts the
//      post-roll heavy set, and only then routes the next interval.
//
// Failure model: any channel error, protocol violation or corrupt frame
// records a reason (error()), kills and reaps every worker, and makes
// further engine calls no-ops — the driver process never aborts on bytes
// a peer sent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "common/types.h"
#include "core/controller.h"
#include "engine/operator.h"
#include "engine/tuple.h"
#include "engine/workload_source.h"
#include "net/channel.h"
#include "net/wire.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/slab_sink.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {

struct NetConfig {
  /// Tuples per kBatch frame (amortizes syscalls, as batch_size
  /// amortizes queue locking in the threaded engine).
  std::size_t batch_size = 256;
  /// Window expiry watermark lag, in intervals (0 = no expiry frames).
  int expire_lag_intervals = 0;
  /// Requested SO_SNDBUF for the data sockets, 0 = kernel default. The
  /// kernel clamps unprivileged values (wmem_max); this is a knob for
  /// benches that want a specific backlog depth, not a guarantee.
  int data_sndbuf_bytes = 0;
};

/// Same shape as ThreadedIntervalReport, plus the wire-level byte
/// counters only a socket engine has.
struct NetIntervalReport {
  IntervalId interval = 0;
  std::uint64_t emitted = 0;
  std::uint64_t processed = 0;
  double wall_ms = 0.0;
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  double max_theta = 0.0;
  bool migrated = false;
  std::size_t moves = 0;
  Bytes migration_bytes = 0.0;
  /// Serialized state payload shipped during migration (every net
  /// migration is serialized — the bytes are real here).
  Bytes migration_wire_bytes = 0.0;
  Micros generation_micros = 0;
  std::size_t stats_memory_bytes = 0;
  /// Driver-side time between the interval's last routed tuple and being
  /// ready to route the next one (seal + summary wait + absorb + plan +
  /// migration barrier).
  double stall_ms = 0.0;
  /// Time absorbing the workers' boundary summaries (decode + absorb).
  double merge_ms = 0.0;
  /// Bytes moved on the data / ctrl sockets during this interval (both
  /// directions, including frame headers).
  std::uint64_t data_wire_bytes = 0;
  std::uint64_t ctrl_wire_bytes = 0;
};

class NetEngine {
 public:
  /// Controller mode only, and the controller must be in sketch stats
  /// mode: the boundary summary IS the serialized sketch slab. (A dense
  /// exact-mode summary would be O(|K|) per interval per worker — the
  /// design this subsystem exists to avoid.)
  NetEngine(NetConfig config, std::shared_ptr<OperatorLogic> logic,
            std::unique_ptr<Controller> controller);

  ~NetEngine();

  NetEngine(const NetEngine&) = delete;
  NetEngine& operator=(const NetEngine&) = delete;

  /// Expands + routes `intervals` intervals from `source` with the SAME
  /// deterministic expansion and shuffle as ThreadedEngine::run — the
  /// byte-identity contract starts with identical tuple sequences.
  std::vector<NetIntervalReport> run(WorkloadSource& source, int intervals,
                                     std::uint64_t seed = 1);

  /// Routes an explicit tuple sequence as one interval and completes the
  /// boundary before returning.
  NetIntervalReport run_interval(const std::vector<Tuple>& tuples);

  /// Routes tuples into the open interval WITHOUT closing it (the bench
  /// uses this to saturate the data channel, then probes the control
  /// channel with broadcast_plan before finish_interval).
  NetIntervalReport ingest(const std::vector<Tuple>& tuples);

  /// Closes the open interval: seal, summaries, absorb, plan, migrate,
  /// heavy-set broadcast, expiry.
  void finish_interval(NetIntervalReport& report);

  /// Broadcasts a sparse plan on every worker's CONTROL channel and
  /// waits for all acks. Returns the round-trip wall time in ms, or a
  /// negative value on failure. Callable mid-interval — proving this
  /// completes while the data channel is backlogged is the bench's
  /// control-latency gate.
  double broadcast_plan(const RebalancePlan& plan, std::uint64_t seq);

  /// Stops the workers (kStop / kFin), harvests final counters and reaps
  /// the child processes. Called automatically by the destructor.
  void shutdown();

  /// Empty while healthy; set to the failure reason after any channel or
  /// protocol error (workers are killed and reaped at that point).
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool ok() const { return error_.empty(); }

  /// Valid after shutdown(): order-insensitive checksum over all worker
  /// states, directly comparable to ThreadedEngine::state_checksum().
  [[nodiscard]] std::uint64_t state_checksum() const;
  [[nodiscard]] std::size_t total_state_entries() const;

  [[nodiscard]] Controller* controller() { return controller_.get(); }
  [[nodiscard]] InstanceId num_workers() const { return num_workers_; }

  [[nodiscard]] std::uint64_t total_emitted() const { return total_emitted_; }
  [[nodiscard]] std::uint64_t total_processed() const {
    return total_processed_;
  }
  [[nodiscard]] std::uint64_t total_output_tuples() const {
    return total_outputs_;
  }

 private:
  struct Worker {
    FrameChannel data;
    FrameChannel ctrl;
    pid_t pid = -1;
    std::uint64_t batches_sent = 0;  // kBatch frames this epoch
  };

  void spawn_workers();
  [[nodiscard]] bool handshake();
  /// Records the failure, kills + reaps every worker. Every public
  /// method becomes a no-op afterwards.
  void fail(const std::string& what);
  void route_tuple(const Tuple& tuple);
  void flush_batch(InstanceId d);
  void flush_batches();
  /// Receives one ctrl frame from worker `w`, requiring `type`; returns
  /// false after fail() on anything else.
  [[nodiscard]] bool recv_ctrl(std::size_t w, FrameType type,
                               FrameHeader& header,
                               std::vector<std::uint8_t>& payload);
  [[nodiscard]] bool absorb_summaries(std::uint64_t epoch,
                                      NetIntervalReport& report);
  [[nodiscard]] bool execute_migration(const RebalancePlan& plan,
                                       NetIntervalReport& report);
  [[nodiscard]] bool broadcast_heavy_set();
  [[nodiscard]] std::uint64_t wire_bytes_data() const;
  [[nodiscard]] std::uint64_t wire_bytes_ctrl() const;

  NetConfig config_;
  std::shared_ptr<OperatorLogic> logic_;
  std::unique_ptr<Controller> controller_;
  SketchSlabSink* sketch_sink_ = nullptr;
  InstanceId num_workers_ = 0;
  std::vector<Worker> workers_;
  std::vector<std::vector<Tuple>> pending_batches_;
  /// Reusable decode target for boundary summaries (same geometry as
  /// every worker slab).
  std::unique_ptr<ShardedWorkerSlab> scratch_slab_;
  ByteWriter frame_scratch_;
  std::vector<std::uint8_t> recv_scratch_;

  std::string error_;
  std::uint64_t total_processed_ = 0;
  std::uint64_t total_outputs_ = 0;
  std::uint64_t total_emitted_ = 0;
  std::uint64_t final_checksum_ = 0;
  std::size_t final_state_entries_ = 0;
  IntervalId interval_ = 0;
  Micros engine_epoch_us_ = 0;
  /// Wire-counter snapshots at the open interval's start (per-interval
  /// byte deltas in the report).
  std::uint64_t wire_mark_data_ = 0;
  std::uint64_t wire_mark_ctrl_ = 0;
  double open_interval_wall_ms_ = 0.0;
  bool interval_open_ = false;
  bool stopped_ = false;
};

}  // namespace skewless
