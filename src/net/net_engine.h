// NetEngine — the distributed deployment of the single-operator engine:
// a driver/controller process and N forked worker PROCESSES connected by
// loopback sockets, speaking the framed wire protocol (net/frame.h).
//
// Topology per worker (socketpair(AF_UNIX, SOCK_STREAM), created before
// fork — no ports, no listeners):
//   * data channel — kBatch frames of routed tuples. This is the channel
//     that fills up: a slow worker backpressures the driver through the
//     kernel socket buffer, exactly like the threaded engine's bounded
//     queues.
//   * ctrl channel — everything else (seal, boundary summary, heavy-set
//     broadcast, plan, migration, checkpoint, shutdown). A separate
//     socket means a control frame NEVER queues behind a data backlog —
//     the socket translation of the force_push lesson from the
//     in-process engine.
//
// Epoch protocol (mirrors ThreadedEngine's inline boundary):
//   1. the driver routes the interval's tuples as kBatch frames, counting
//      frames per worker;
//   2. at the boundary it sends each worker kSeal{epoch, batch count} on
//      ctrl — the worker seals only after processing exactly that many
//      batches, which re-establishes cross-channel ordering by content;
//   3. each worker serializes its WorkerSketchSlab and ships it back as
//      the kSummary boundary payload (O(sketch), never O(|K|)), followed
//      by a kCheckpoint snapshot of its key states when recovery is on;
//   4. the driver absorbs the summaries IN WORKER-INDEX ORDER into the
//      controller's SketchStatsWindow — the same fixed order as the
//      in-process merge, which is what makes a net run byte-identical to
//      a ThreadedEngine run on the same seed: identical plans, identical
//      θ trajectory, identical state checksums;
//   5. rolls/plans via Controller::end_interval, migrates state with
//      kExtract / kMigrated / kInstall / kInstallAck (the driver forwards
//      serialized state blobs without materializing them), broadcasts the
//      post-roll heavy set, and only then routes the next interval.
//
// Failure model (recovery_enabled, the default): a worker crash, wedge
// or corrupt frame is detected by deadline-bounded control receives
// (heartbeats extend the deadline; EOF/POLLHUP classifies a crash, a
// timeout classifies a wedge). The driver then respawns the worker with
// exponential backoff, reinstalls its last checkpoint (adjusted for any
// migration since), re-broadcasts the heavy set and expiry watermark,
// replays the open epoch's recorded batches VERBATIM, and re-seals.
// Because the replayed bytes and control sequence are exactly the lost
// worker's inputs, a recovered run is byte-identical to a crash-free
// run: same plan-history digest, same θ bit patterns, same state
// checksums. When the per-worker retry budget is exhausted the engine
// degrades instead of failing: the dead worker's keys and checkpointed
// states are reassigned to the survivors and the run finishes with
// every tuple still counted exactly once.
//
// With recovery disabled the engine is fail-stop: any channel error,
// protocol violation or corrupt frame records a reason (error()), kills
// and reaps every worker, and makes further engine calls no-ops — the
// driver process never aborts on bytes a peer sent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <sys/types.h>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "core/controller.h"
#include "engine/operator.h"
#include "engine/tuple.h"
#include "engine/workload_source.h"
#include "net/channel.h"
#include "net/fault_injector.h"
#include "net/recovery.h"
#include "net/wire.h"
#include "sketch/sharded_worker_slab.h"
#include "sketch/slab_sink.h"
#include "sketch/worker_sketch_slab.h"

namespace skewless {

struct NetConfig {
  /// Tuples per kBatch frame (amortizes syscalls, as batch_size
  /// amortizes queue locking in the threaded engine).
  std::size_t batch_size = 256;
  /// Window expiry watermark lag, in intervals (0 = no expiry frames).
  int expire_lag_intervals = 0;
  /// Requested SO_SNDBUF for the data sockets, 0 = kernel default. The
  /// kernel clamps unprivileged values (wmem_max); this is a knob for
  /// benches that want a specific backlog depth, not a guarantee.
  int data_sndbuf_bytes = 0;

  // --- fault tolerance ---
  /// Checkpoint + replay recovery of crashed workers. Off = the legacy
  /// fail-stop engine (no checkpoints, no heartbeats, unbounded waits).
  bool recovery_enabled = true;
  /// Deterministic fault schedule (tests / skewless_sim --fault).
  FaultPlan fault = {};
  /// Deadline for any control-channel receive (and for channel I/O via
  /// SO_RCVTIMEO/SO_SNDTIMEO). A worker that neither speaks nor
  /// heartbeats for this long is declared wedged and recovered.
  int ctrl_timeout_ms = 30'000;
  /// Worker heartbeat period; must be well under ctrl_timeout_ms.
  int heartbeat_interval_ms = 250;
  /// Respawn attempts per failure before degrading the worker away.
  /// The budget resets whenever the worker completes an epoch
  /// (checkpoint received) — it bounds retries per wedge, not per run.
  int respawn_max_attempts = 3;
  /// Base respawn backoff; attempt i sleeps backoff << i milliseconds.
  int respawn_backoff_ms = 2;
  /// Byte budget of the per-worker replay buffer (the open epoch's
  /// routed batches). Overflow makes a crash in that epoch fatal rather
  /// than silently unreplayable.
  std::size_t replay_max_bytes = 256u << 20;
  /// Checkpoints retained per worker (only latest() is ever restored).
  std::size_t checkpoint_ring_capacity = 2;
};

/// Same shape as ThreadedIntervalReport, plus the wire-level byte
/// counters only a socket engine has.
struct NetIntervalReport {
  IntervalId interval = 0;
  std::uint64_t emitted = 0;
  std::uint64_t processed = 0;
  double wall_ms = 0.0;
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  double max_theta = 0.0;
  bool migrated = false;
  std::size_t moves = 0;
  Bytes migration_bytes = 0.0;
  /// Serialized state payload shipped during migration (every net
  /// migration is serialized — the bytes are real here).
  Bytes migration_wire_bytes = 0.0;
  Micros generation_micros = 0;
  std::size_t stats_memory_bytes = 0;
  /// Driver-side time between the interval's last routed tuple and being
  /// ready to route the next one (seal + summary wait + absorb + plan +
  /// migration barrier).
  double stall_ms = 0.0;
  /// Time absorbing the workers' boundary summaries (decode + absorb).
  double merge_ms = 0.0;
  /// Bytes moved on the data / ctrl sockets during this interval (both
  /// directions, including frame headers).
  std::uint64_t data_wire_bytes = 0;
  std::uint64_t ctrl_wire_bytes = 0;
  /// Cumulative successful crash recoveries at this interval's close.
  std::uint64_t recoveries = 0;
  /// True once any worker has been retired (degraded mode).
  bool degraded = false;
};

class NetEngine {
 public:
  /// Controller mode only, and the controller must be in sketch stats
  /// mode: the boundary summary IS the serialized sketch slab. (A dense
  /// exact-mode summary would be O(|K|) per interval per worker — the
  /// design this subsystem exists to avoid.)
  NetEngine(NetConfig config, std::shared_ptr<OperatorLogic> logic,
            std::unique_ptr<Controller> controller);

  ~NetEngine();

  NetEngine(const NetEngine&) = delete;
  NetEngine& operator=(const NetEngine&) = delete;

  /// Expands + routes `intervals` intervals from `source` with the SAME
  /// deterministic expansion and shuffle as ThreadedEngine::run — the
  /// byte-identity contract starts with identical tuple sequences.
  std::vector<NetIntervalReport> run(WorkloadSource& source, int intervals,
                                     std::uint64_t seed = 1);

  /// Routes an explicit tuple sequence as one interval and completes the
  /// boundary before returning.
  NetIntervalReport run_interval(const std::vector<Tuple>& tuples);

  /// Routes tuples into the open interval WITHOUT closing it (the bench
  /// uses this to saturate the data channel, then probes the control
  /// channel with broadcast_plan before finish_interval).
  NetIntervalReport ingest(const std::vector<Tuple>& tuples);

  /// Closes the open interval: seal, summaries, checkpoints, absorb,
  /// plan, migrate, heavy-set broadcast, expiry. Injected kKill faults
  /// scheduled for this epoch fire at entry.
  void finish_interval(NetIntervalReport& report);

  /// Broadcasts a sparse plan on every worker's CONTROL channel and
  /// waits for all acks. Returns the round-trip wall time in ms, or a
  /// negative value on failure. Callable mid-interval — proving this
  /// completes while the data channel is backlogged is the bench's
  /// control-latency gate.
  double broadcast_plan(const RebalancePlan& plan, std::uint64_t seq);

  /// Stops the workers (kStop / kFin), harvests final counters and reaps
  /// the child processes. Called automatically by the destructor. In
  /// degraded mode any re-routed replay tuples still pending are sealed
  /// through one extra interval first, so mass stays conserved.
  void shutdown();

  /// Empty while healthy; set to the failure reason after any
  /// unrecoverable error (workers are killed and reaped at that point).
  /// A degraded run stays ok() — degradation is a survival mode, not a
  /// failure.
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool ok() const { return error_.empty(); }

  /// Valid after shutdown(): order-insensitive checksum over all worker
  /// states, directly comparable to ThreadedEngine::state_checksum().
  /// Dead workers contribute their last effective checkpoint.
  [[nodiscard]] std::uint64_t state_checksum() const;
  [[nodiscard]] std::size_t total_state_entries() const;

  [[nodiscard]] Controller* controller() { return controller_.get(); }
  [[nodiscard]] InstanceId num_workers() const { return num_workers_; }

  [[nodiscard]] std::uint64_t total_emitted() const { return total_emitted_; }
  [[nodiscard]] std::uint64_t total_processed() const {
    return total_processed_;
  }
  [[nodiscard]] std::uint64_t total_output_tuples() const {
    return total_outputs_;
  }

  /// Successful crash recoveries (respawn + restore + replay) so far.
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// True once a worker exhausted its retry budget and was retired.
  [[nodiscard]] bool degraded() const { return degraded_; }
  /// Wall time spent inside recovery (reap → replay), summed — the MTTR
  /// numerator the fault bench gates on.
  [[nodiscard]] double total_recovery_ms() const {
    return total_recovery_ms_;
  }
  [[nodiscard]] std::size_t live_workers() const;
  [[nodiscard]] const CheckpointRing& checkpoint_ring(std::size_t w) const {
    return checkpoints_[w];
  }

 private:
  struct Worker {
    FrameChannel data;
    FrameChannel ctrl;
    pid_t pid = -1;
    std::uint64_t batches_sent = 0;  // kBatch frames this epoch
    /// The open epoch's kSeal went out; a restore must re-send it.
    bool seal_sent = false;
    /// Retired after retry-budget exhaustion (degraded mode).
    bool dead = false;
    /// Consecutive recoveries without a completed epoch; reset when a
    /// checkpoint arrives.
    int recover_attempts = 0;
    /// Respawn generation; one-shot fault events arm only for 0.
    std::uint32_t incarnation = 0;
  };

  /// Outcome of one bounded control receive.
  enum class CtrlRecv {
    kFrame,    // a non-heartbeat frame landed in header/payload
    kTimeout,  // deadline expired with no frame and no heartbeat
    kClosed,   // EOF / POLLHUP — the peer process is gone
    kBadFrame  // bytes arrived but the frame was rejected
  };

  void spawn_workers();
  [[nodiscard]] bool spawn_one(std::size_t w, std::string& err);
  [[nodiscard]] bool handshake();
  [[nodiscard]] bool handshake_one(std::size_t w);
  /// Records the failure, kills + reaps every worker. Every public
  /// method becomes a no-op afterwards.
  void fail(const std::string& what);
  /// Closes channels, SIGKILLs and reaps worker `w`, logging the
  /// classified exit status.
  void reap_worker(std::size_t w, const char* why);
  /// Detect → respawn → restore → replay. Returns true when the worker
  /// is live again; false when it was degraded away or the engine
  /// failed (check ok()).
  [[nodiscard]] bool recover_worker(std::size_t w, const std::string& why);
  [[nodiscard]] bool restore_worker(std::size_t w);
  /// Latest checkpoint minus keys migrated away since, plus states
  /// installed since — the state worker `w` is responsible for.
  [[nodiscard]] CheckpointPayload effective_checkpoint(std::size_t w) const;
  /// Retry budget exhausted: retire `w`, re-home its checkpointed
  /// states and replay tuples onto the survivors.
  void degrade_worker(std::size_t w);
  /// Fires scheduled driver-side kKill events for `epoch`.
  void inject_kills(std::uint64_t epoch);
  void route_tuple(const Tuple& tuple);
  void flush_batch(InstanceId d);
  void flush_batches();
  /// One bounded ctrl receive from worker `w`. Skips heartbeat frames
  /// (each restarts the deadline and marks liveness). Never calls
  /// fail() — callers decide between recovery and fail-stop.
  [[nodiscard]] CtrlRecv recv_ctrl_any(std::size_t w, FrameHeader& header,
                                       std::vector<std::uint8_t>& payload);
  /// Fail-stop receive requiring `type` (handshake / recovery-disabled
  /// paths): returns false after fail() on anything else.
  [[nodiscard]] bool recv_ctrl(std::size_t w, FrameType type,
                               FrameHeader& header,
                               std::vector<std::uint8_t>& payload);
  /// Human-readable classification of a non-kFrame recv_ctrl_any outcome.
  [[nodiscard]] std::string ctrl_failure_reason(std::size_t w,
                                                CtrlRecv rc) const;
  [[nodiscard]] bool absorb_summaries(std::uint64_t epoch,
                                      NetIntervalReport& report);
  [[nodiscard]] bool execute_migration(const RebalancePlan& plan,
                                       NetIntervalReport& report);
  [[nodiscard]] bool broadcast_heavy_set();
  [[nodiscard]] bool broadcast_expire();
  [[nodiscard]] std::uint64_t wire_bytes_data() const;
  [[nodiscard]] std::uint64_t wire_bytes_ctrl() const;

  NetConfig config_;
  std::shared_ptr<OperatorLogic> logic_;
  std::unique_ptr<Controller> controller_;
  SketchSlabSink* sketch_sink_ = nullptr;
  InstanceId num_workers_ = 0;
  std::vector<Worker> workers_;
  std::vector<std::vector<Tuple>> pending_batches_;
  /// A state kInstall-ed into a worker since its last checkpoint (a
  /// restore must re-deliver it — the checkpoint predates it). Tagged
  /// with the epoch of the boundary that sent it: a checkpoint for
  /// epoch e proves only installs tagged BEFORE e are reflected.
  struct PendingInstall {
    std::uint64_t epoch = 0;
    WireKeyState state;
  };

  /// Per-worker recovery state, indexed like workers_.
  std::vector<CheckpointRing> checkpoints_;
  std::vector<ReplayBuffer> replay_;
  std::vector<std::vector<PendingInstall>> pending_installs_;
  /// Keys kExtract-ed from the worker since its last checkpoint (a
  /// restore must NOT resurrect them).
  std::vector<std::unordered_set<KeyId>> migrated_away_;
  /// InstallAcks owed by each worker for barrier-free degrade installs;
  /// recv_ctrl_any consumes them transparently, like heartbeats.
  std::vector<int> owed_install_acks_;
  /// One flag per fault-plan event: driver-side kills fire once.
  std::vector<bool> fault_fired_;
  /// Reusable decode target for boundary summaries (same geometry as
  /// every worker slab).
  std::unique_ptr<ShardedWorkerSlab> scratch_slab_;
  ByteWriter frame_scratch_;
  std::vector<std::uint8_t> recv_scratch_;

  std::string error_;
  std::uint64_t total_processed_ = 0;
  std::uint64_t total_outputs_ = 0;
  std::uint64_t total_emitted_ = 0;
  std::uint64_t final_checksum_ = 0;
  std::size_t final_state_entries_ = 0;
  IntervalId interval_ = 0;
  Micros engine_epoch_us_ = 0;
  /// The last broadcast heavy set / expiry watermark — a restored
  /// worker needs both re-delivered before its replay.
  std::vector<KeyId> last_heavy_keys_;
  bool heavy_broadcast_done_ = false;
  Micros last_expire_watermark_ = 0;
  bool expire_sent_ = false;
  std::uint64_t recoveries_ = 0;
  bool degraded_ = false;
  double total_recovery_ms_ = 0.0;
  /// Wire-counter snapshots at the open interval's start (per-interval
  /// byte deltas in the report).
  std::uint64_t wire_mark_data_ = 0;
  std::uint64_t wire_mark_ctrl_ = 0;
  /// Byte counters of channels closed by recovery reaps, folded in so
  /// the totals stay monotonic across respawns.
  std::uint64_t wire_retired_data_ = 0;
  std::uint64_t wire_retired_ctrl_ = 0;
  double open_interval_wall_ms_ = 0.0;
  bool interval_open_ = false;
  bool stopped_ = false;
};

}  // namespace skewless
